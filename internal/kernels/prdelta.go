package kernels

import (
	"fmt"
	"math"

	"popt/internal/graph"
	"popt/internal/mem"
)

const (
	prdIters   = 3
	prdEpsilon = 1e-7
)

// NewPRDelta builds the PageRank-Delta workload (Ligra PageRankDelta):
// only vertices whose rank changed by more than epsilon stay in the
// frontier, and the pull phase accumulates deltas of active incoming
// neighbors. Two irregular streams result — the 8 B delta array and the
// 1-bit frontier — matching Table II (8 B & 1 bit, pull-mostly,
// transpose = CSR).
func NewPRDelta(g *graph.Graph) *Workload {
	n := g.NumVertices()
	sp := mem.NewSpace()
	rankArr := sp.AllocBytes("rank", n, 8, false)
	deltaArr := sp.AllocBytes("delta", n, 8, true)
	frontierArr := sp.Alloc("frontier", n, 1, true)
	oaArr := sp.AllocBytes("cscOA", n+1, 8, false)
	naArr := sp.AllocBytes("cscNA", g.NumEdges(), 4, false)

	rank := make([]float64, n)
	delta := make([]float64, n)
	nextDelta := make([]float64, n)
	frontier := make([]bool, n)
	nextFrontier := make([]bool, n)

	w := &Workload{
		Name: "PR-Delta", G: g, Space: sp,
		Irregular:    []*mem.Array{deltaArr, frontierArr},
		RefAdj:       &g.Out,
		Pull:         true,
		UsesFrontier: true,
	}
	w.run = func(r *Runner) {
		base := (1 - prDamping) / float64(n)
		for v := 0; v < n; v++ {
			rank[v] = 0
			delta[v] = 1.0 / float64(n)
			frontier[v] = true
			r.Store(rankArr, v, PCStreamWrite)
			r.Store(deltaArr, v, PCStreamWrite)
		}
		for it := 0; it < prdIters; it++ {
			r.SetMuted(EdgeDensity(frontier, &g.Out) < PullDensityThreshold)
			r.StartIteration()
			cscIt := g.In.IterFrom(0)
			for dst := 0; dst < n; dst++ {
				r.SetVertex(graph.V(dst))
				r.Load(oaArr, dst, PCOffsets)
				sum := 0.0
				srcs, lo := cscIt.Next()
				for i, src := range srcs {
					r.Load(naArr, int(lo)+i, PCNeighbors)
					// Frontier membership is checked for every edge; the
					// delta is fetched only when the source is active.
					r.Load(frontierArr, int(src), PCFrontierRead)
					if frontier[src] {
						r.Load(deltaArr, int(src), PCIrregRead)
						if d := g.Out.Degree(src); d > 0 {
							sum += delta[src] / float64(d)
						}
					}
					r.Tick(1)
				}
				nd := prDamping * sum
				if it == 0 {
					nd += base
				}
				nextDelta[dst] = nd
				active := math.Abs(nd) > prdEpsilon*math.Abs(rank[dst]+nd) || it == 0
				nextFrontier[dst] = active && nd != 0
				if nextFrontier[dst] {
					rank[dst] += nd
					r.Store(rankArr, dst, PCStreamWrite)
				}
				r.Store(frontierArr, dst, PCFrontierWrite)
				r.Tick(3)
			}
			delta, nextDelta = nextDelta, delta
			frontier, nextFrontier = nextFrontier, frontier
			for v := range nextFrontier {
				nextFrontier[v] = false
			}
			// The new deltas are written streaming as part of the pull
			// above (modeled by the rank/frontier stores).
		}
		r.SetMuted(false)
	}
	w.check = func() error {
		got, active := goldenPRDelta(g, prdIters)
		for v := 0; v < n; v++ {
			if math.Abs(got[v]-rank[v]) > 1e-9 {
				return fmt.Errorf("PR-Delta: rank[%d] = %g, golden %g", v, rank[v], got[v])
			}
		}
		for v := 0; v < n; v++ {
			if frontier[v] != active[v] {
				return fmt.Errorf("PR-Delta: frontier[%d] = %v, golden %v", v, frontier[v], active[v])
			}
		}
		return nil
	}
	return w
}

// goldenPRDelta recomputes the same fixed iteration count with independent
// bookkeeping.
func goldenPRDelta(g *graph.Graph, iters int) (rank []float64, frontier []bool) {
	n := g.NumVertices()
	rank = make([]float64, n)
	delta := make([]float64, n)
	nextDelta := make([]float64, n)
	frontier = make([]bool, n)
	next := make([]bool, n)
	for v := 0; v < n; v++ {
		delta[v] = 1.0 / float64(n)
		frontier[v] = true
	}
	base := (1 - prDamping) / float64(n)
	for it := 0; it < iters; it++ {
		cscIt := g.In.IterFrom(0)
		for dst := 0; dst < n; dst++ {
			sum := 0.0
			srcs, _ := cscIt.Next()
			for _, src := range srcs {
				if frontier[src] {
					if d := g.Out.Degree(src); d > 0 {
						sum += delta[src] / float64(d)
					}
				}
			}
			nd := prDamping * sum
			if it == 0 {
				nd += base
			}
			nextDelta[dst] = nd
			active := math.Abs(nd) > prdEpsilon*math.Abs(rank[dst]+nd) || it == 0
			next[dst] = active && nd != 0
			if next[dst] {
				rank[dst] += nd
			}
		}
		delta, nextDelta = nextDelta, delta
		frontier, next = next, frontier
		for v := range next {
			next[v] = false
		}
	}
	return rank, frontier
}
