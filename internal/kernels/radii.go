package kernels

import (
	"fmt"

	"popt/internal/graph"
	"popt/internal/mem"
)

const (
	// radiiSources is the number of concurrent BFS traversals packed into
	// one 64-bit visited word per vertex (Ligra's Radii uses bit-parallel
	// multi-BFS).
	radiiSources = 64
	// radiiMaxRounds caps simulated pull rounds; the paper samples a
	// subset of pull iterations for frontier kernels, and skips Radii on
	// the high-diameter HBUBL input entirely.
	radiiMaxRounds = 8
)

// NewRadii builds the Radii-estimation workload (Ligra Radii): 64
// concurrent BFS traversals from sampled sources, visited sets packed in
// 64-bit masks, frontier as a bit-vector, pull direction. Irregular
// streams: the 8 B visited array and the 1-bit frontier (Table II: 8 B &
// 1 bit, pull-mostly, transpose = CSR).
func NewRadii(g *graph.Graph) *Workload {
	n := g.NumVertices()
	sp := mem.NewSpace()
	visitedArr := sp.AllocBytes("visited", n, 8, true)
	frontierArr := sp.Alloc("frontier", n, 1, true)
	radiiArr := sp.AllocBytes("radii", n, 4, false)
	oaArr := sp.AllocBytes("cscOA", n+1, 8, false)
	naArr := sp.AllocBytes("cscNA", g.NumEdges(), 4, false)

	visited := make([]uint64, n)
	nextVisited := make([]uint64, n)
	radii := make([]int32, n)
	frontier := make([]bool, n)
	nextFrontier := make([]bool, n)
	rounds := 0

	// Deterministic source sampling: spread sources over the ID space.
	sources := make([]graph.V, 0, radiiSources)
	stride := n / radiiSources
	if stride == 0 {
		stride = 1
	}
	for i := 0; i < radiiSources && i*stride < n; i++ {
		sources = append(sources, graph.V(i*stride))
	}

	w := &Workload{
		Name: "Radii", G: g, Space: sp,
		Irregular:    []*mem.Array{visitedArr, frontierArr},
		RefAdj:       &g.Out,
		Pull:         true,
		UsesFrontier: true,
	}
	w.run = func(r *Runner) {
		for v := 0; v < n; v++ {
			visited[v] = 0
			nextVisited[v] = 0
			radii[v] = -1
			frontier[v] = false
		}
		for i, s := range sources {
			visited[s] = 1 << uint(i)
			nextVisited[s] = visited[s]
			radii[s] = 0
			frontier[s] = true
			r.Store(visitedArr, int(s), PCStreamWrite)
		}
		for round := 1; round <= radiiMaxRounds; round++ {
			rounds = round
			any := false
			// Sparse rounds run in push direction under direction
			// switching; only dense pull rounds are simulated in detail,
			// as in the paper's iteration sampling.
			r.SetMuted(EdgeDensity(frontier, &g.Out) < PullDensityThreshold)
			r.StartIteration()
			cscIt := g.In.IterFrom(0)
			for dst := 0; dst < n; dst++ {
				r.SetVertex(graph.V(dst))
				r.Load(oaArr, dst, PCOffsets)
				acc := visited[dst]
				srcs, lo := cscIt.Next()
				for i, src := range srcs {
					r.Load(naArr, int(lo)+i, PCNeighbors)
					r.Load(frontierArr, int(src), PCFrontierRead)
					if frontier[src] {
						r.Load(visitedArr, int(src), PCIrregRead)
						acc |= visited[src]
					}
					r.Tick(1)
				}
				if acc != visited[dst] {
					nextVisited[dst] = acc
					radii[dst] = int32(round)
					nextFrontier[dst] = true
					any = true
					r.Store(visitedArr, int(dst), PCIrregWrite)
					r.Store(radiiArr, dst, PCStreamWrite)
				} else {
					nextVisited[dst] = acc
					nextFrontier[dst] = false
				}
				r.Store(frontierArr, dst, PCFrontierWrite)
				r.Tick(2)
			}
			copy(visited, nextVisited)
			frontier, nextFrontier = nextFrontier, frontier
			if !any {
				break
			}
		}
		r.SetMuted(false)
	}
	w.check = func() error {
		// Golden: per-source BFS distances; radii[v] must equal the round
		// at which v last acquired a new source bit, capped by the
		// simulated rounds.
		golden := goldenRadii(g, sources, rounds)
		for v := 0; v < n; v++ {
			if radii[v] != golden[v] {
				return fmt.Errorf("Radii: radii[%d] = %d, golden %d", v, radii[v], golden[v])
			}
		}
		return nil
	}
	return w
}

// goldenRadii runs plain BFS from each source on the reversed edges (pull
// from in-neighbors means distance along forward edges) and reports, per
// vertex, the latest round <= maxRounds at which a new source reached it.
func goldenRadii(g *graph.Graph, sources []graph.V, maxRounds int) []int32 {
	n := g.NumVertices()
	out := make([]int32, n)
	for i := range out {
		out[i] = -1
	}
	for _, s := range sources {
		dist := bfsForward(g, s, maxRounds)
		for v := 0; v < n; v++ {
			if dist[v] >= 0 && dist[v] > int(out[v]) {
				out[v] = int32(dist[v])
			}
		}
	}
	// A vertex reached at round k by one source and round j>k by another
	// records j — the same "last improvement" semantics as the kernel, as
	// long as improvements are monotone per round, which BFS levels are.
	return out
}

// bfsForward returns forward-BFS distances from s, -1 when unreached
// within maxRounds.
func bfsForward(g *graph.Graph, s graph.V, maxRounds int) []int {
	n := g.NumVertices()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[s] = 0
	cur := []graph.V{s}
	var scratch []graph.V
	for round := 1; len(cur) > 0 && round <= maxRounds; round++ {
		var next []graph.V
		for _, u := range cur {
			for _, v := range g.Out.Neighbors(u, &scratch) {
				if dist[v] < 0 {
					dist[v] = round
					next = append(next, v)
				}
			}
		}
		cur = next
	}
	return dist
}
