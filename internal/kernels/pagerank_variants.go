package kernels

import (
	"fmt"
	"math"

	"popt/internal/graph"
	"popt/internal/mem"
)

// NewPageRankOrdered is PageRank-pull with an explicit outer-loop schedule,
// used for the HATS-BDFS comparison (Fig. 12b): HATS reorders destination
// processing on the fly in hardware; the result is unchanged because the
// pull iteration reads contributions frozen at the iteration start.
func NewPageRankOrdered(g *graph.Graph, order []graph.V) *Workload {
	n := g.NumVertices()
	if len(order) != n {
		panic("kernels: schedule must cover every vertex")
	}
	sp := mem.NewSpace()
	rankArr := sp.AllocBytes("rank", n, 4, false)
	contribArr := sp.AllocBytes("contrib", n, 4, true)
	oaArr := sp.AllocBytes("cscOA", n+1, 8, false)
	naArr := sp.AllocBytes("cscNA", g.NumEdges(), 4, false)

	rank := make([]float64, n)
	contrib := make([]float64, n)
	for i := range rank {
		rank[i] = 1.0 / float64(n)
	}
	base := (1 - prDamping) / float64(n)

	w := &Workload{
		Name: "PR-BDFS", G: g, Space: sp,
		Irregular: []*mem.Array{contribArr},
		RefAdj:    &g.Out,
		Pull:      true,
	}
	w.run = func(r *Runner) {
		// The schedule visits destinations out of order, so the pull phase
		// uses random access (Start + Neighbors) rather than the sequential
		// iterator; the simulated addresses are the same either way.
		var scratch []graph.V
		for it := 0; it < prIters; it++ {
			for v := 0; v < n; v++ {
				r.Load(rankArr, v, PCStreamRead)
				if d := g.Out.Degree(graph.V(v)); d == 0 {
					contrib[v] = 0
				} else {
					contrib[v] = rank[v] / float64(d)
				}
				r.Store(contribArr, v, PCStreamWrite)
				r.Tick(2)
			}
			r.StartIteration()
			for _, dst := range order {
				r.SetVertex(dst)
				r.Load(oaArr, int(dst), PCOffsets)
				sum := 0.0
				lo := g.In.Start(dst)
				for i, src := range g.In.Neighbors(dst, &scratch) {
					r.Load(naArr, int(lo)+i, PCNeighbors)
					r.Load(contribArr, int(src), PCIrregRead)
					sum += contrib[src]
					r.Tick(1)
				}
				rank[dst] = base + prDamping*sum
				r.Store(rankArr, int(dst), PCStreamWrite)
				r.Tick(2)
			}
		}
	}
	w.check = func() error {
		golden := goldenPageRank(g, prIters)
		for v := 0; v < n; v++ {
			if math.Abs(golden[v]-rank[v]) > 1e-12 {
				return fmt.Errorf("PR-BDFS: rank[%d] = %g, golden %g", v, rank[v], golden[v])
			}
		}
		return nil
	}
	return w
}

// NewPageRankTiled is PageRank-pull over a CSR-segmented graph (Fig. 13):
// the pull phase runs once per source-range tile, confining irregular
// contrib accesses to the tile's range; per-destination partial sums
// accumulate across tiles in a streaming array.
func NewPageRankTiled(g *graph.Graph, seg *graph.Segmented) *Workload {
	n := g.NumVertices()
	sp := mem.NewSpace()
	rankArr := sp.AllocBytes("rank", n, 4, false)
	contribArr := sp.AllocBytes("contrib", n, 4, true)
	sumsArr := sp.AllocBytes("sums", n, 8, false)
	oaArr := sp.AllocBytes("cscOA", n+1, 8, false)
	naArr := sp.AllocBytes("cscNA", g.NumEdges(), 4, false)

	rank := make([]float64, n)
	contrib := make([]float64, n)
	sums := make([]float64, n)
	for i := range rank {
		rank[i] = 1.0 / float64(n)
	}
	base := (1 - prDamping) / float64(n)

	w := &Workload{
		Name: fmt.Sprintf("PR-tiled-%d", len(seg.Tiles)), G: g, Space: sp,
		Irregular: []*mem.Array{contribArr},
		RefAdj:    &g.Out,
		Pull:      true,
	}
	w.run = func(r *Runner) {
		for it := 0; it < prIters; it++ {
			for v := 0; v < n; v++ {
				r.Load(rankArr, v, PCStreamRead)
				if d := g.Out.Degree(graph.V(v)); d == 0 {
					contrib[v] = 0
				} else {
					contrib[v] = rank[v] / float64(d)
				}
				r.Store(contribArr, v, PCStreamWrite)
				sums[v] = 0
				r.Store(sumsArr, v, PCStreamWrite)
				r.Tick(2)
			}
			for t := range seg.Tiles {
				r.SetTile(t)
				r.StartIteration()
				tin := &seg.Tiles[t].In
				tinIt := tin.IterFrom(0)
				for dst := 0; dst < n; dst++ {
					r.SetVertex(graph.V(dst))
					r.Load(oaArr, dst, PCOffsets)
					partial := 0.0
					srcs, lo := tinIt.Next()
					for i, src := range srcs {
						r.Load(naArr, int(lo)+i, PCNeighbors)
						r.Load(contribArr, int(src), PCIrregRead)
						partial += contrib[src]
						r.Tick(1)
					}
					if len(srcs) > 0 {
						sums[dst] += partial
						r.Load(sumsArr, dst, PCStreamRead)
						r.Store(sumsArr, dst, PCStreamWrite)
					}
					r.Tick(1)
				}
			}
			for dst := 0; dst < n; dst++ {
				r.Load(sumsArr, dst, PCStreamRead)
				rank[dst] = base + prDamping*sums[dst]
				r.Store(rankArr, dst, PCStreamWrite)
				r.Tick(2)
			}
		}
	}
	w.check = func() error {
		golden := goldenPageRank(g, prIters)
		for v := 0; v < n; v++ {
			if math.Abs(golden[v]-rank[v]) > 1e-9 {
				return fmt.Errorf("PR-tiled: rank[%d] = %g, golden %g", v, rank[v], golden[v])
			}
		}
		return nil
	}
	return w
}
