package kernels

import (
	"fmt"

	"popt/internal/graph"
	"popt/internal/mem"
)

// bfsMaxRounds caps simulated BFS levels (iteration sampling).
const bfsMaxRounds = 10

// noParent marks unreached vertices.
const noParent = ^graph.V(0)

// NewBFS builds a direction-optimizing BFS workload (Beamer et al., the
// optimization the paper cites as motivating CSR+CSC storage). It is not
// part of the paper's Table II but belongs in any release of the
// simulator: BFS's bottom-up (pull) levels read parent/frontier state of
// incoming neighbors — exactly the irregular pattern P-OPT manages.
// Irregular streams: the 4 B parent array and the 1-bit frontier.
// Sparse (top-down) levels run muted, like the other frontier kernels.
func NewBFS(g *graph.Graph) *Workload {
	n := g.NumVertices()
	sp := mem.NewSpace()
	parentArr := sp.AllocBytes("parent", n, 4, true)
	frontierArr := sp.Alloc("frontier", n, 1, true)
	oaArr := sp.AllocBytes("cscOA", n+1, 8, false)
	naArr := sp.AllocBytes("cscNA", g.NumEdges(), 4, false)

	parent := make([]graph.V, n)
	depth := make([]int32, n)
	frontier := make([]bool, n)
	nextFrontier := make([]bool, n)
	rounds := 0
	source := graph.V(0)

	w := &Workload{
		Name: "BFS", G: g, Space: sp,
		Irregular:    []*mem.Array{parentArr, frontierArr},
		RefAdj:       &g.Out,
		Pull:         true,
		UsesFrontier: true,
	}
	w.run = func(r *Runner) {
		for v := 0; v < n; v++ {
			parent[v] = noParent
			depth[v] = -1
			frontier[v] = false
		}
		parent[source] = source
		depth[source] = 0
		frontier[source] = true
		r.Store(parentArr, int(source), PCStreamWrite)
		for round := 1; round <= bfsMaxRounds; round++ {
			rounds = round
			any := false
			// Bottom-up (pull) only pays off on dense frontiers; sparse
			// levels are top-down pushes, not simulated in detail.
			r.SetMuted(EdgeDensity(frontier, &g.Out) < PullDensityThreshold)
			r.StartIteration()
			cscIt := g.In.IterFrom(0)
			for dst := 0; dst < n; dst++ {
				r.SetVertex(graph.V(dst))
				srcs, lo := cscIt.Next()
				nextFrontier[dst] = false
				if parent[dst] != noParent {
					continue
				}
				r.Load(oaArr, dst, PCOffsets)
				for i, src := range srcs {
					r.Load(naArr, int(lo)+i, PCNeighbors)
					r.Load(frontierArr, int(src), PCFrontierRead)
					r.Tick(1)
					if frontier[src] {
						r.Load(parentArr, int(src), PCIrregRead)
						parent[dst] = src
						depth[dst] = int32(round)
						nextFrontier[dst] = true
						any = true
						r.Store(parentArr, dst, PCIrregWrite)
						break // bottom-up stops at the first found parent
					}
				}
				r.Store(frontierArr, dst, PCFrontierWrite)
				r.Tick(2)
			}
			frontier, nextFrontier = nextFrontier, frontier
			if !any {
				break
			}
		}
		r.SetMuted(false)
	}
	w.check = func() error {
		dist := bfsForward(g, source, rounds)
		for v := 0; v < n; v++ {
			switch {
			case parent[v] == noParent:
				if dist[v] >= 0 && dist[v] < rounds {
					return fmt.Errorf("BFS: vertex %d reachable at depth %d but unreached", v, dist[v])
				}
			case graph.V(v) == source:
				if parent[v] != source || depth[v] != 0 {
					return fmt.Errorf("BFS: source state corrupted")
				}
			default:
				if int32(dist[v]) != depth[v] {
					return fmt.Errorf("BFS: depth[%d] = %d, golden %d", v, depth[v], dist[v])
				}
				p := parent[v]
				if dist[p] != int(depth[v])-1 {
					return fmt.Errorf("BFS: parent[%d]=%d is at depth %d, not %d", v, p, dist[p], depth[v]-1)
				}
				// parent must actually be an in-neighbor.
				found := false
				for _, u := range g.In.Neighs(graph.V(v)) {
					if u == p {
						found = true
						break
					}
				}
				if !found {
					return fmt.Errorf("BFS: parent[%d]=%d is not an in-neighbor", v, p)
				}
			}
		}
		return nil
	}
	return w
}
