package kernels

import (
	"fmt"

	"popt/internal/graph"
	"popt/internal/mem"
)

// ssspMaxRounds caps simulated Bellman-Ford rounds (after k rounds the
// distances are exactly the shortest paths using at most k edges, which
// gives a precise golden model even without convergence).
const ssspMaxRounds = 8

// infDist32 marks unreached vertices.
const infDist32 = ^uint32(0)

// EdgeWeight returns the deterministic weight of edge (src, dst) in
// [1, 16]. Weights are a pure hash of the endpoints, so the CSR and CSC
// views agree without storing a weights array per direction.
func EdgeWeight(src, dst graph.V) uint32 {
	x := uint64(src)*0x9E3779B97F4A7C15 ^ uint64(dst)*0xC2B2AE3D27D4EB4F
	x ^= x >> 29
	return uint32(x%16) + 1
}

// NewSSSP builds a frontier-based Bellman-Ford single-source shortest
// paths workload (the round-synchronous core of delta-stepping-style SSSP
// frameworks). Another beyond-Table-II kernel: the pull relaxation reads
// dist of incoming neighbors — irregular, transpose-predictable — plus
// the frontier of recently-improved vertices. Irregular streams: the 4 B
// dist array and the 1-bit frontier.
func NewSSSP(g *graph.Graph) *Workload {
	n := g.NumVertices()
	sp := mem.NewSpace()
	distArr := sp.AllocBytes("dist", n, 4, true)
	frontierArr := sp.Alloc("frontier", n, 1, true)
	oaArr := sp.AllocBytes("cscOA", n+1, 8, false)
	naArr := sp.AllocBytes("cscNA", g.NumEdges(), 4, false)
	wtArr := sp.AllocBytes("weights", g.NumEdges(), 4, false)

	dist := make([]uint32, n)
	next := make([]uint32, n)
	frontier := make([]bool, n)
	nextFrontier := make([]bool, n)
	rounds := 0
	source := graph.V(0)

	w := &Workload{
		Name: "SSSP", G: g, Space: sp,
		Irregular:    []*mem.Array{distArr, frontierArr},
		RefAdj:       &g.Out,
		Pull:         true,
		UsesFrontier: true,
	}
	w.run = func(r *Runner) {
		for v := 0; v < n; v++ {
			dist[v] = infDist32
			frontier[v] = false
		}
		dist[source] = 0
		frontier[source] = true
		r.Store(distArr, int(source), PCStreamWrite)
		for round := 1; round <= ssspMaxRounds; round++ {
			rounds = round
			any := false
			copy(next, dist)
			r.SetMuted(EdgeDensity(frontier, &g.Out) < PullDensityThreshold)
			r.StartIteration()
			cscIt := g.In.IterFrom(0)
			for dst := 0; dst < n; dst++ {
				r.SetVertex(graph.V(dst))
				nextFrontier[dst] = false
				best := dist[dst]
				improved := false
				srcs, lo := cscIt.Next()
				r.Load(oaArr, dst, PCOffsets)
				for i, src := range srcs {
					e := int(lo) + i
					r.Load(naArr, e, PCNeighbors)
					r.Load(frontierArr, int(src), PCFrontierRead)
					r.Tick(1)
					if !frontier[src] || dist[src] == infDist32 {
						continue
					}
					r.Load(distArr, int(src), PCIrregRead)
					r.Load(wtArr, e, PCStreamRead)
					if d := dist[src] + EdgeWeight(src, graph.V(dst)); d < best {
						best = d
						improved = true
					}
					r.Tick(2)
				}
				if improved {
					next[dst] = best
					nextFrontier[dst] = true
					any = true
					r.Store(distArr, dst, PCIrregWrite)
				}
				r.Store(frontierArr, dst, PCFrontierWrite)
				r.Tick(1)
			}
			dist, next = next, dist
			frontier, nextFrontier = nextFrontier, frontier
			if !any {
				break
			}
		}
		r.SetMuted(false)
	}
	w.check = func() error {
		golden := goldenBellmanFord(g, source, rounds)
		for v := 0; v < n; v++ {
			if dist[v] != golden[v] {
				return fmt.Errorf("SSSP: dist[%d] = %d, golden %d", v, dist[v], golden[v])
			}
		}
		return nil
	}
	return w
}

// goldenBellmanFord computes shortest paths using at most `rounds` edges
// with an independent edge-centric relaxation over the out-adjacency.
func goldenBellmanFord(g *graph.Graph, source graph.V, rounds int) []uint32 {
	n := g.NumVertices()
	dist := make([]uint32, n)
	next := make([]uint32, n)
	for v := range dist {
		dist[v] = infDist32
	}
	dist[source] = 0
	var scratch []graph.V
	for round := 0; round < rounds; round++ {
		copy(next, dist)
		changed := false
		for u := 0; u < n; u++ {
			if dist[u] == infDist32 {
				continue
			}
			for _, v := range g.Out.Neighbors(graph.V(u), &scratch) {
				if d := dist[u] + EdgeWeight(graph.V(u), v); d < next[v] {
					next[v] = d
					changed = true
				}
			}
		}
		dist, next = next, dist
		if !changed {
			break
		}
	}
	return dist
}
