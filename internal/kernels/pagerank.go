package kernels

import (
	"fmt"
	"math"

	"popt/internal/graph"
	"popt/internal/mem"
)

// PageRank constants match GAP's defaults.
const (
	prDamping = 0.85
	prIters   = 2 // the paper simulates a single steady-state iteration; we run two for stability
)

// NewPageRank builds the pull-direction PageRank workload (GAP pr.cc). Per
// iteration it first streams contributions (contrib[v] = rank[v]/outdeg)
// and then pulls: for every destination, sum contrib[src] over incoming
// neighbors. contrib is the single irregularly accessed array (Table II:
// 4 B elements, pull-only, transpose = CSR).
func NewPageRank(g *graph.Graph) *Workload {
	n := g.NumVertices()
	sp := mem.NewSpace()
	rankArr := sp.AllocBytes("rank", n, 4, false)
	contribArr := sp.AllocBytes("contrib", n, 4, true)
	oaArr := sp.AllocBytes("cscOA", n+1, 8, false)
	naArr := sp.AllocBytes("cscNA", g.NumEdges(), 4, false)

	rank := make([]float64, n)
	contrib := make([]float64, n)
	for i := range rank {
		rank[i] = 1.0 / float64(n)
	}
	base := (1 - prDamping) / float64(n)

	w := &Workload{
		Name: "PR", G: g, Space: sp,
		Irregular: []*mem.Array{contribArr},
		RefAdj:    &g.Out,
		Pull:      true,
	}
	w.run = func(r *Runner) {
		for it := 0; it < prIters; it++ {
			// Contribution phase: streaming over vertices.
			for v := 0; v < n; v++ {
				r.Load(rankArr, v, PCStreamRead)
				d := g.Out.Degree(graph.V(v))
				if d == 0 {
					contrib[v] = 0
				} else {
					contrib[v] = rank[v] / float64(d)
				}
				r.Store(contribArr, v, PCStreamWrite)
				r.Tick(2)
			}
			// Pull phase: irregular contrib reads guided by the CSC. The
			// iterator yields each destination's sources plus the global
			// edge index its list starts at, so the simulated neighbor-
			// array addresses are identical in either adjacency layout.
			r.StartIteration()
			cscIt := g.In.IterFrom(0)
			for dst := 0; dst < n; dst++ {
				r.SetVertex(graph.V(dst))
				r.Load(oaArr, dst, PCOffsets)
				sum := 0.0
				srcs, lo := cscIt.Next()
				for i, src := range srcs {
					r.Load(naArr, int(lo)+i, PCNeighbors)
					r.Load(contribArr, int(src), PCIrregRead)
					sum += contrib[src]
					r.Tick(1)
				}
				rank[dst] = base + prDamping*sum
				r.Store(rankArr, dst, PCStreamWrite)
				r.Tick(2)
			}
		}
	}
	w.check = func() error {
		golden := goldenPageRank(g, prIters)
		for v := 0; v < n; v++ {
			if math.Abs(golden[v]-rank[v]) > 1e-12 {
				return fmt.Errorf("PR: rank[%d] = %g, golden %g", v, rank[v], golden[v])
			}
		}
		var sum float64
		for _, x := range rank {
			sum += x
		}
		// Dangling mass escapes, so the sum is <= 1 + epsilon.
		if sum > 1+1e-9 || sum <= 0 {
			return fmt.Errorf("PR: rank mass %g out of range", sum)
		}
		return nil
	}
	return w
}

// ConvergedPageRank runs a real (uninstrumented) PageRank to convergence —
// until the L1 rank delta drops below tol or maxIters passes — and returns
// the iteration count. It is the wall-clock baseline of Table IV.
func ConvergedPageRank(g *graph.Graph, tol float64, maxIters int) int {
	n := g.NumVertices()
	rank := make([]float64, n)
	contrib := make([]float64, n)
	for i := range rank {
		rank[i] = 1.0 / float64(n)
	}
	base := (1 - prDamping) / float64(n)
	for it := 1; it <= maxIters; it++ {
		for v := 0; v < n; v++ {
			if d := g.Out.Degree(graph.V(v)); d > 0 {
				contrib[v] = rank[v] / float64(d)
			} else {
				contrib[v] = 0
			}
		}
		delta := 0.0
		cscIt := g.In.IterFrom(0)
		for dst := 0; dst < n; dst++ {
			sum := 0.0
			srcs, _ := cscIt.Next()
			for _, src := range srcs {
				sum += contrib[src]
			}
			nr := base + prDamping*sum
			delta += abs(nr - rank[dst])
			rank[dst] = nr
		}
		if delta < tol {
			return it
		}
	}
	return maxIters
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// goldenPageRank is an independent (uninstrumented, differently structured)
// reference: edge-centric accumulation over the out-adjacency.
func goldenPageRank(g *graph.Graph, iters int) []float64 {
	n := g.NumVertices()
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1.0 / float64(n)
	}
	base := (1 - prDamping) / float64(n)
	for it := 0; it < iters; it++ {
		for i := range next {
			next[i] = base
		}
		csrIt := g.Out.IterFrom(0)
		for u := 0; u < n; u++ {
			vs, _ := csrIt.Next()
			if len(vs) == 0 {
				continue
			}
			share := prDamping * rank[u] / float64(len(vs))
			for _, v := range vs {
				next[v] += share
			}
		}
		rank, next = next, rank
	}
	return rank
}
