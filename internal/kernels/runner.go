// Package kernels implements the paper's five graph applications (Table
// II) — PageRank, Connected Components, PageRank-Delta, Radii, and Maximal
// Independent Set — instrumented to drive the cache simulator with the
// same logical memory reference stream the real kernels generate, while
// simultaneously computing real (verifiable) results.
package kernels

import (
	"popt/internal/cache"
	"popt/internal/core"
	"popt/internal/graph"
	"popt/internal/mem"
	"popt/internal/trace"
)

// PullDensityThreshold is the frontier density below which a
// direction-switching kernel would run the round in push mode; frontier
// kernels mute such rounds (Ligra's dense/sparse switch fires near
// |frontier edges| > |E|/20, approximated here by active-vertex fraction).
const PullDensityThreshold = 0.05

// Density returns the fraction of set entries in a frontier.
func Density(frontier []bool) float64 {
	if len(frontier) == 0 {
		return 0
	}
	n := 0
	for _, b := range frontier {
		if b {
			n++
		}
	}
	return float64(n) / float64(len(frontier))
}

// EdgeDensity returns the fraction of the edge set incident to active
// frontier vertices — Ligra's dense/sparse switching criterion (a few hub
// vertices can make a numerically small frontier edge-dense).
func EdgeDensity(frontier []bool, adj *graph.Adj) float64 {
	if adj.M() == 0 {
		return 0
	}
	var active uint64
	for v, b := range frontier {
		if b {
			active += uint64(adj.Degree(graph.V(v)))
		}
	}
	return float64(active) / float64(adj.M())
}

// PC site identifiers. Each static load/store in a kernel gets a distinct
// PC so PC-indexed policies (SHiP-PC, Hawkeye) see realistic signatures.
const (
	PCOffsets uint16 = iota + 1
	PCNeighbors
	PCIrregRead
	PCIrregWrite
	PCStreamRead
	PCStreamWrite
	PCFrontierRead
	PCFrontierWrite
	PCCompRead
	PCCompWrite
)

// Runner is the kernel-side emitter of the typed event stream: each
// Load/Store/SetVertex/... call becomes one trace.Sink event. The sink
// decides what the stream means — live simulation (trace.Sim), recording
// (trace.Encoder), capture for locality analysis, or a Tee of several. A
// zero Runner (nil sink) performs pure computation: golden-model runs and
// preprocessing timing use it.
type Runner struct {
	sink trace.Sink

	// muted suppresses emission (accesses, instructions, hooks) while
	// computation proceeds. Frontier kernels mute their sparse rounds:
	// direction-switching executes those in push mode, and — like the
	// paper, which samples only pull iterations in detail — we exclude
	// them from the simulated reference stream for every policy alike.
	// Mute/Unmute boundary markers are emitted on each transition so
	// recorded streams keep the round structure visible.
	muted bool
}

// NewRunner builds a runner emitting into a live simulation over h (see
// trace.Sim). hook may be nil. Use NewSinkRunner to emit into any other
// sink; use Sim to reach the live sink's instruction counter and filter.
func NewRunner(h *cache.Hierarchy, hook core.VertexIndexed) *Runner {
	return &Runner{sink: trace.NewSim(h, hook)}
}

// NewSinkRunner builds a runner emitting into s.
func NewSinkRunner(s trace.Sink) *Runner {
	return &Runner{sink: s}
}

// Sim returns the live sink a NewRunner-built runner emits into, or nil
// for sink-less and custom-sink runners.
func (r *Runner) Sim() *trace.Sim {
	s, _ := r.sink.(*trace.Sim)
	return s
}

// SetVertex reports the outer-loop vertex currently being processed.
//
//popt:hot
func (r *Runner) SetVertex(v graph.V) {
	if r.sink != nil && !r.muted {
		r.sink.SetVertex(v)
	}
}

// SetMuted switches emission off (true) or on (false); see muted.
func (r *Runner) SetMuted(m bool) {
	if r.muted == m {
		return
	}
	r.muted = m
	if r.sink == nil {
		return
	}
	if m {
		r.sink.Mute()
	} else {
		r.sink.Unmute()
	}
}

// SetTile reports that a segmented kernel moved to tile t.
func (r *Runner) SetTile(t int) {
	if r.sink != nil {
		r.sink.SetTile(t)
	}
}

// StartIteration marks the beginning of a fresh pass over the vertices.
func (r *Runner) StartIteration() {
	if r.sink != nil && !r.muted {
		r.sink.StartIteration()
	}
}

// Load issues a read of element i of a.
//
//popt:hot
func (r *Runner) Load(a *mem.Array, i int, pc uint16) {
	if r.sink == nil || r.muted {
		return
	}
	r.sink.Access(mem.Access{Addr: a.Addr(i), PC: pc})
}

// Store issues a write of element i of a.
//
//popt:hot
func (r *Runner) Store(a *mem.Array, i int, pc uint16) {
	if r.sink == nil || r.muted {
		return
	}
	r.sink.Access(mem.Access{Addr: a.Addr(i), PC: pc, Write: true})
}

// Tick accounts n non-memory instructions.
//
//popt:hot
func (r *Runner) Tick(n uint64) {
	if r.sink != nil && !r.muted {
		r.sink.Tick(n)
	}
}

// Workload is one (kernel, graph) pair ready to simulate: the address
// space is laid out, the irregular arrays and the transpose that encodes
// their next references are identified, and run/check closures capture the
// kernel state.
type Workload struct {
	// Name is the kernel name ("PR", "CC", ...).
	Name string
	// G is the input graph.
	G *graph.Graph
	// Space is the simulated address space.
	Space *mem.Space
	// Irregular lists the arrays T-OPT/P-OPT manage, in Table II's order
	// (vertex data first, then frontier bits if any).
	Irregular []*mem.Array
	// RefAdj is the transpose of the traversal direction: Out for pull
	// kernels, In for push (Table II's "Transpose" row).
	RefAdj *graph.Adj
	// Pull reports the execution style for Table II.
	Pull bool
	// UsesFrontier reports whether a frontier bit-vector is irregular data.
	UsesFrontier bool

	run   func(r *Runner)
	check func() error
}

// Run simulates the kernel's reference stream through r (and computes the
// kernel's real results as a side effect).
func (w *Workload) Run(r *Runner) { w.run(r) }

// Check validates the computed results against an independent golden
// implementation. It is only meaningful after Run.
func (w *Workload) Check() error { return w.check() }

// Builder constructs a fresh Workload for a graph; the suite of builders
// mirrors Table II.
type Builder struct {
	Name string
	New  func(g *graph.Graph) *Workload
}

// All returns the paper's five applications in Table II order.
func All() []Builder {
	return []Builder{
		{Name: "PR", New: NewPageRank},
		{Name: "CC", New: NewCC},
		{Name: "PR-Delta", New: NewPRDelta},
		{Name: "Radii", New: NewRadii},
		{Name: "MIS", New: NewMIS},
	}
}

// Extensions returns additional kernels beyond the paper's Table II suite
// (direction-optimizing BFS and Bellman-Ford SSSP); they use the same
// pull/frontier structure and are first-class workloads for the
// simulator, just not part of the paper's figures.
func Extensions() []Builder {
	return []Builder{
		{Name: "BFS", New: NewBFS},
		{Name: "SSSP", New: NewSSSP},
	}
}
