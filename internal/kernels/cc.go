package kernels

import (
	"fmt"
	"sort"

	"popt/internal/graph"
	"popt/internal/mem"
)

// ccMaxIters caps Shiloach-Vishkin rounds; real graphs converge in a
// handful (the paper samples iterations the same way for non-PR kernels).
const ccMaxIters = 12

// NewCC builds the Connected Components workload using the
// Shiloach-Vishkin algorithm (GAP cc_sv.cc): alternating hooking passes
// over the edges and pointer-jumping compression. The push traversal scans
// each source's outgoing neighbors and updates comp entries of
// destinations, so comp is the irregular array and the CSC (in-adjacency)
// is the transpose that predicts next references (Table II: CC is
// push-only, transpose = CSC).
func NewCC(g *graph.Graph) *Workload {
	n := g.NumVertices()
	sp := mem.NewSpace()
	compArr := sp.AllocBytes("comp", n, 4, true)
	oaArr := sp.AllocBytes("csrOA", n+1, 8, false)
	naArr := sp.AllocBytes("csrNA", g.NumEdges(), 4, false)

	comp := make([]graph.V, n)

	w := &Workload{
		Name: "CC", G: g, Space: sp,
		Irregular: []*mem.Array{compArr},
		RefAdj:    &g.In,
		Pull:      false,
	}
	w.run = func(r *Runner) {
		for v := range comp {
			comp[v] = graph.V(v)
			r.Store(compArr, v, PCStreamWrite)
		}
		for it := 0; it < ccMaxIters; it++ {
			change := false
			// Hooking: push over out-edges.
			r.StartIteration()
			csrIt := g.Out.IterFrom(0)
			for u := 0; u < n; u++ {
				r.SetVertex(graph.V(u))
				r.Load(oaArr, u, PCOffsets)
				r.Load(compArr, u, PCCompRead) // comp[u] reused across inner loop
				cu := comp[u]
				dsts, lo := csrIt.Next()
				for i, v := range dsts {
					r.Load(naArr, int(lo)+i, PCNeighbors)
					r.Load(compArr, int(v), PCIrregRead)
					cv := comp[v]
					switch {
					case cu < cv && cv == comp[cv]:
						r.Load(compArr, int(cv), PCCompRead)
						comp[cv] = cu
						r.Store(compArr, int(cv), PCIrregWrite)
						change = true
					case cv < cu && cu == comp[cu]:
						r.Load(compArr, int(cu), PCCompRead)
						comp[cu] = cv
						r.Store(compArr, int(cu), PCIrregWrite)
						change = true
						cu = comp[u]
					}
					r.Tick(2)
				}
			}
			// Compression: pointer jumping (streaming outer loop, irregular
			// chase inside).
			for v := 0; v < n; v++ {
				for comp[v] != comp[comp[v]] {
					r.Load(compArr, int(comp[v]), PCCompRead)
					comp[v] = comp[comp[v]]
					r.Store(compArr, v, PCCompWrite)
				}
				r.Tick(1)
			}
			if !change {
				break
			}
		}
	}
	w.check = func() error {
		golden := goldenComponents(g)
		// comp must be a valid labeling consistent with golden: two
		// vertices share a comp label iff they share a golden component,
		// and every vertex's label lies in its own component.
		seen := make(map[graph.V]int)
		for v := 0; v < n; v++ {
			if golden[comp[v]] != golden[v] {
				return fmt.Errorf("CC: comp[%d]=%d crosses components", v, comp[v])
			}
			if prev, ok := seen[comp[v]]; ok {
				if golden[prev] != golden[v] {
					return fmt.Errorf("CC: label %d spans two golden components", comp[v])
				}
			} else {
				seen[comp[v]] = v
			}
		}
		// Converged labeling: one label per golden component.
		labels := make(map[int]map[graph.V]bool)
		for v := 0; v < n; v++ {
			gc := golden[v]
			if labels[gc] == nil {
				labels[gc] = make(map[graph.V]bool)
			}
			labels[gc][comp[v]] = true
		}
		// Sorted iteration so a non-converged run reports the same
		// component every time.
		gcs := make([]int, 0, len(labels))
		for gc := range labels { //lint:ordered
			gcs = append(gcs, gc)
		}
		sort.Ints(gcs)
		for _, gc := range gcs {
			if len(labels[gc]) != 1 {
				return fmt.Errorf("CC: golden component %d carries %d labels (not converged)", gc, len(labels[gc]))
			}
		}
		return nil
	}
	return w
}

// goldenComponents computes weakly connected components by union-find.
func goldenComponents(g *graph.Graph) []int {
	n := g.NumVertices()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	it := g.Out.IterFrom(0)
	for u := 0; u < n; u++ {
		vs, _ := it.Next()
		for _, v := range vs {
			ru, rv := find(u), find(int(v))
			if ru != rv {
				parent[ru] = rv
			}
		}
	}
	comp := make([]int, n)
	for v := range comp {
		comp[v] = find(v)
	}
	return comp
}
