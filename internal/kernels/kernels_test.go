package kernels

import (
	"testing"

	"popt/internal/cache"
	"popt/internal/core"
	"popt/internal/graph"
	"popt/internal/mem"
)

// computeRunner returns a runner that performs no simulation (golden-path
// compute only).
func computeRunner() *Runner { return &Runner{} }

// tinyGraphs returns a small diverse input suite for correctness tests.
func tinyGraphs() []*graph.Graph {
	return []*graph.Graph{
		graph.Kron(9, 6, 1),
		graph.Uniform(512, 4096, 2),
		graph.Mesh(20, 22),
		graph.PowerLaw(512, 6, 2.0, 3),
		graph.Community(512, 8, 32, 0.8, 4),
	}
}

func TestAllKernelsComputeCorrectResults(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			for _, g := range tinyGraphs() {
				w := b.New(g)
				w.Run(computeRunner())
				if err := w.Check(); err != nil {
					t.Errorf("%s on %s: %v", b.Name, g.Name, err)
				}
			}
		})
	}
}

func TestWorkloadMetadataMatchesTableII(t *testing.T) {
	g := graph.Uniform(512, 4096, 5)
	type want struct {
		irregular int
		pull      bool
		frontier  bool
		elemBits  []uint64
	}
	wants := map[string]want{
		"PR":       {1, true, false, []uint64{32}},
		"CC":       {1, false, false, []uint64{32}},
		"PR-Delta": {2, true, true, []uint64{64, 1}},
		"Radii":    {2, true, true, []uint64{64, 1}},
		"MIS":      {2, true, true, []uint64{32, 1}},
	}
	for _, b := range All() {
		w := b.New(g)
		exp := wants[w.Name]
		if len(w.Irregular) != exp.irregular {
			t.Errorf("%s: %d irregular arrays, want %d", w.Name, len(w.Irregular), exp.irregular)
		}
		if w.Pull != exp.pull || w.UsesFrontier != exp.frontier {
			t.Errorf("%s: pull=%v frontier=%v, want %v/%v", w.Name, w.Pull, w.UsesFrontier, exp.pull, exp.frontier)
		}
		for i, a := range w.Irregular {
			if a.ElemBits != exp.elemBits[i] {
				t.Errorf("%s: irregular[%d] elem bits = %d, want %d", w.Name, i, a.ElemBits, exp.elemBits[i])
			}
		}
		// Transpose direction: pull kernels predict with Out, push with In.
		if w.Pull && w.RefAdj != &w.G.Out {
			t.Errorf("%s: pull kernel must use out-adjacency as transpose", w.Name)
		}
		if !w.Pull && w.RefAdj != &w.G.In {
			t.Errorf("%s: push kernel must use in-adjacency as transpose", w.Name)
		}
	}
}

// newTinyHierarchy builds a small hierarchy for integration tests.
func newTinyHierarchy(llc func() cache.Policy) *cache.Hierarchy {
	return cache.NewHierarchy(cache.Config{
		L1Size: 1 << 10, L1Ways: 4,
		L2Size: 4 << 10, L2Ways: 4,
		LLCSize: 16 << 10, LLCWays: 16,
		LLCPolicy: llc,
	})
}

func TestKernelsDriveHierarchy(t *testing.T) {
	g := graph.Uniform(2048, 16384, 7)
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			w := b.New(g)
			h := newTinyHierarchy(func() cache.Policy { return cache.NewDRRIP(1) })
			r := NewRunner(h, nil)
			w.Run(r)
			if err := w.Check(); err != nil {
				t.Fatalf("results corrupted by instrumentation: %v", err)
			}
			if r.Sim().Instructions == 0 || h.L1.Stats.Accesses == 0 {
				t.Fatal("kernel produced no memory trace")
			}
			if h.LLC.Stats.Accesses == 0 {
				t.Fatal("no accesses reached the LLC; working set too small or bug")
			}
		})
	}
}

// TestPOPTAndTOPTIntegration wires the paper's policies end to end and
// checks (a) results stay correct, (b) T-OPT beats DRRIP on LLC misses for
// PageRank, (c) P-OPT lands between DRRIP and T-OPT (allowing slack for
// its reserved-way capacity loss).
func TestPOPTAndTOPTIntegration(t *testing.T) {
	g := graph.Uniform(4096, 32768, 11)

	runWith := func(mk func(w *Workload) (cache.Policy, core.VertexIndexed, int)) (*cache.Hierarchy, *Workload) {
		w := NewPageRank(g)
		var pol cache.Policy
		var hook core.VertexIndexed
		reserve := 0
		pol, hook, reserve = mk(w)
		h := newTinyHierarchy(func() cache.Policy { return pol })
		if reserve > 0 {
			h.LLC.Reserve(reserve)
		}
		r := NewRunner(h, hook)
		w.Run(r)
		return h, w
	}

	hDRRIP, w1 := runWith(func(w *Workload) (cache.Policy, core.VertexIndexed, int) {
		return cache.NewDRRIP(1), nil, 0
	})
	hTOPT, w2 := runWith(func(w *Workload) (cache.Policy, core.VertexIndexed, int) {
		p := core.BuildTOPT(w.RefAdj, w.Irregular...)
		return p, p, 0
	})
	hPOPT, w3 := runWith(func(w *Workload) (cache.Policy, core.VertexIndexed, int) {
		p := core.BuildPOPT(w.RefAdj, w.G.NumVertices(), core.InterIntra, 8, w.Irregular...)
		h := 16 << 10 / (16 * mem.LineSize) // LLC sets in the tiny config
		return p, p, p.ReservedWays(h)
	})

	for i, w := range []*Workload{w1, w2, w3} {
		if err := w.Check(); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}

	d, to, po := hDRRIP.LLC.Stats.Misses, hTOPT.LLC.Stats.Misses, hPOPT.LLC.Stats.Misses
	t.Logf("LLC misses: DRRIP=%d T-OPT=%d P-OPT=%d", d, to, po)
	if to >= d {
		t.Errorf("T-OPT misses (%d) should undercut DRRIP (%d)", to, d)
	}
	if po >= d {
		t.Errorf("P-OPT misses (%d) should undercut DRRIP (%d)", po, d)
	}
	if float64(po) > 1.35*float64(to) {
		t.Errorf("P-OPT (%d) should track T-OPT (%d) within ~35%%", po, to)
	}
}

func TestStartIterationResetsEpochs(t *testing.T) {
	g := graph.Uniform(1024, 8192, 3)
	w := NewPageRank(g)
	p := core.BuildPOPT(w.RefAdj, w.G.NumVertices(), core.InterIntra, 8, w.Irregular...)
	h := newTinyHierarchy(func() cache.Policy { return p })
	r := NewRunner(h, p)
	w.Run(r)
	if p.EpochStreams == 0 {
		t.Fatal("P-OPT never streamed a Rereference Matrix column")
	}
	if err := w.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestSymmetrize(t *testing.T) {
	g := graph.FromEdges("d", 3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 2, Dst: 2}})
	s := Symmetrize(g)
	if s.NumEdges() != 2 { // 0->1, 1->0; self-loop dropped
		t.Fatalf("symmetrized edges = %d, want 2", s.NumEdges())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// In == Out for symmetric graphs.
	for v := 0; v < 3; v++ {
		if s.Out.Degree(graph.V(v)) != s.In.Degree(graph.V(v)) {
			t.Fatal("symmetrized graph is not symmetric")
		}
	}
}

func TestGoldenHelpersAgree(t *testing.T) {
	// Cross-check golden implementations against trivial cases.
	g := graph.Mesh(1, 5) // path of 5 vertices
	comp := goldenComponents(g)
	for v := 1; v < 5; v++ {
		if comp[v] != comp[0] {
			t.Error("path graph must be one component")
		}
	}
	mis := goldenLexFirstMIS(Symmetrize(g))
	want := []bool{true, false, true, false, true}
	for v, x := range want {
		if mis[v] != x {
			t.Errorf("lex-first MIS on path: vertex %d = %v, want %v", v, mis[v], x)
		}
	}
	dist := bfsForward(g, 0, 100)
	for v := 0; v < 5; v++ {
		if dist[v] != v {
			t.Errorf("BFS distance to %d = %d", v, dist[v])
		}
	}
}

func TestRunnerInstructionAccounting(t *testing.T) {
	h := newTinyHierarchy(func() cache.Policy { return cache.NewLRU() })
	r := NewRunner(h, nil)
	sp := mem.NewSpace()
	a := sp.AllocBytes("a", 16, 4, false)
	r.Load(a, 0, 1)
	r.Store(a, 1, 2)
	r.Tick(3)
	if got := r.Sim().Instructions; got != 5 {
		t.Errorf("Instructions = %d, want 5", got)
	}
}

func TestRunnerFilterAbsorbsAccesses(t *testing.T) {
	// Regression: a filter absorbs the reference but the instruction still
	// retires — the MPKI denominator must not depend on what the filter
	// swallows (the PHI model relies on this).
	h := newTinyHierarchy(func() cache.Policy { return cache.NewLRU() })
	r := NewRunner(h, nil)
	r.Sim().Filter = func(acc mem.Access) bool { return acc.Write }
	sp := mem.NewSpace()
	a := sp.AllocBytes("a", 16, 4, false)
	r.Store(a, 0, 1) // absorbed
	r.Load(a, 0, 1)  // passes through
	if h.L1.Stats.Accesses != 1 {
		t.Errorf("L1 accesses = %d, want 1 (write absorbed)", h.L1.Stats.Accesses)
	}
	if got := r.Sim().Instructions; got != 2 {
		t.Errorf("Instructions = %d, want 2", got)
	}
}

func TestTransposePrefetcherReducesDemandMisses(t *testing.T) {
	// End to end: PageRank with the transpose-guided prefetcher (the
	// paper's future-work extension) alongside DRRIP must cut demand LLC
	// misses vs plain DRRIP.
	g := graph.Uniform(4096, 32768, 11)
	run := func(withPrefetch bool) uint64 {
		w := NewPageRank(g)
		h := newTinyHierarchy(func() cache.Policy { return cache.NewDRRIP(1) })
		var hook core.VertexIndexed
		if withPrefetch {
			hook = core.NewTransposePrefetcher(h, &w.G.In, w.Irregular[0], 2)
		}
		w.Run(NewRunner(h, hook))
		if err := w.Check(); err != nil {
			t.Fatal(err)
		}
		return h.LLC.Stats.Misses
	}
	plain := run(false)
	pref := run(true)
	t.Logf("LLC demand misses: DRRIP %d, DRRIP+prefetch %d", plain, pref)
	if pref >= plain {
		t.Errorf("prefetching did not reduce demand misses: %d -> %d", plain, pref)
	}
}

func TestMutedRoundsLeaveResultsIntact(t *testing.T) {
	// Radii/MIS mute sparse rounds; the computation must be identical to
	// an unsimulated run.
	g := graph.Uniform(2048, 16384, 13)
	for _, b := range []Builder{{Name: "Radii", New: NewRadii}, {Name: "MIS", New: NewMIS}} {
		w := b.New(g)
		h := newTinyHierarchy(func() cache.Policy { return cache.NewLRU() })
		w.Run(NewRunner(h, nil))
		if err := w.Check(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
}

func TestExtensionKernelsComputeCorrectResults(t *testing.T) {
	for _, b := range Extensions() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			for _, g := range tinyGraphs() {
				w := b.New(g)
				w.Run(computeRunner())
				if err := w.Check(); err != nil {
					t.Errorf("%s on %s: %v", b.Name, g.Name, err)
				}
			}
		})
	}
}

func TestExtensionKernelsUnderPOPT(t *testing.T) {
	g := graph.Uniform(2048, 16384, 21)
	for _, b := range Extensions() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			w := b.New(g)
			p := core.BuildPOPT(w.RefAdj, w.G.NumVertices(), core.InterIntra, 8, w.Irregular...)
			h := newTinyHierarchy(func() cache.Policy { return p })
			w.Run(NewRunner(h, p))
			if err := w.Check(); err != nil {
				t.Fatalf("instrumentation corrupted results: %v", err)
			}
		})
	}
}

func TestEdgeWeightDeterministicAndBounded(t *testing.T) {
	for s := graph.V(0); s < 100; s++ {
		for d := graph.V(0); d < 10; d++ {
			w1, w2 := EdgeWeight(s, d), EdgeWeight(s, d)
			if w1 != w2 {
				t.Fatal("weight not deterministic")
			}
			if w1 < 1 || w1 > 16 {
				t.Fatalf("weight %d out of [1,16]", w1)
			}
		}
	}
	if EdgeWeight(1, 2) == EdgeWeight(2, 1) && EdgeWeight(3, 4) == EdgeWeight(4, 3) {
		t.Error("weights look symmetric; hash likely broken")
	}
}

func TestBFSStopsAtUnreachable(t *testing.T) {
	// Two disconnected cliques: BFS from vertex 0 must never claim the
	// second component.
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}, {Src: 2, Dst: 3}, {Src: 3, Dst: 2}}
	g := graph.FromEdges("two", 4, edges)
	w := NewBFS(g)
	w.Run(computeRunner())
	if err := w.Check(); err != nil {
		t.Fatal(err)
	}
}
