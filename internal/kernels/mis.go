package kernels

import (
	"fmt"

	"popt/internal/graph"
	"popt/internal/mem"
)

// misMaxRounds caps simulated rounds (iteration sampling, as the paper
// does for frontier kernels; full convergence on high-diameter meshes
// takes O(diameter) rounds).
const misMaxRounds = 8

// Vertex states for MIS.
const (
	misUndecided uint32 = iota
	misIn
	misOut
)

// NewMIS builds the Maximal Independent Set workload (Ligra MIS):
// priority-ordered rounds where a vertex joins the set once all
// higher-priority (lower-ID) neighbors are decided out, and leaves once
// any neighbor joins. Independence is an undirected property, so the
// kernel runs on the symmetrized graph (Ligra assumes symmetric input).
// Irregular streams: the 4 B status array and the 1-bit frontier of
// still-undecided vertices (Table II: 4 B & 1 bit, pull-mostly,
// transpose = CSR).
func NewMIS(gIn *graph.Graph) *Workload {
	g := Symmetrize(gIn)
	n := g.NumVertices()
	sp := mem.NewSpace()
	statusArr := sp.AllocBytes("status", n, 4, true)
	frontierArr := sp.Alloc("frontier", n, 1, true)
	oaArr := sp.AllocBytes("cscOA", n+1, 8, false)
	naArr := sp.AllocBytes("cscNA", g.NumEdges(), 4, false)

	status := make([]uint32, n)
	next := make([]uint32, n)
	frontier := make([]bool, n)
	nextFrontier := make([]bool, n)
	rounds := 0

	w := &Workload{
		Name: "MIS", G: g, Space: sp,
		Irregular:    []*mem.Array{statusArr, frontierArr},
		RefAdj:       &g.Out, // symmetric: Out == In
		Pull:         true,
		UsesFrontier: true,
	}
	w.run = func(r *Runner) {
		for v := 0; v < n; v++ {
			status[v] = misUndecided
			frontier[v] = true
			r.Store(statusArr, v, PCStreamWrite)
		}
		for round := 0; round < misMaxRounds; round++ {
			rounds = round + 1
			any := false
			// Only rounds with a dense undecided frontier are simulated
			// in detail (sparse rounds would run sparse/push under a
			// direction-switching framework).
			r.SetMuted(EdgeDensity(frontier, &g.Out) < PullDensityThreshold)
			r.StartIteration()
			cscIt := g.In.IterFrom(0)
			for dst := 0; dst < n; dst++ {
				r.SetVertex(graph.V(dst))
				srcs, lo := cscIt.Next()
				next[dst] = status[dst]
				nextFrontier[dst] = false
				if status[dst] != misUndecided {
					continue
				}
				r.Load(oaArr, dst, PCOffsets)
				canJoin := true
				mustLeave := false
				for i, src := range srcs {
					r.Load(naArr, int(lo)+i, PCNeighbors)
					r.Load(frontierArr, int(src), PCFrontierRead)
					r.Load(statusArr, int(src), PCIrregRead)
					switch {
					case status[src] == misIn:
						mustLeave = true
					case src < graph.V(dst) && status[src] == misUndecided:
						canJoin = false
					}
					r.Tick(1)
				}
				switch {
				case mustLeave:
					next[dst] = misOut
					any = true
					r.Store(statusArr, dst, PCIrregWrite)
				case canJoin:
					next[dst] = misIn
					any = true
					r.Store(statusArr, dst, PCIrregWrite)
				default:
					nextFrontier[dst] = true // still undecided
				}
				r.Store(frontierArr, dst, PCFrontierWrite)
				r.Tick(2)
			}
			copy(status, next)
			frontier, nextFrontier = nextFrontier, frontier
			if !any {
				break
			}
		}
		r.SetMuted(false)
	}
	w.check = func() error {
		// Golden: the lexicographically-first MIS, which the
		// priority-ordered rounds converge to. Decided vertices must agree
		// with it; undecided vertices are permitted only if the round cap
		// hit before convergence.
		golden := goldenLexFirstMIS(g)
		decided := 0
		for v := 0; v < n; v++ {
			switch status[v] {
			case misIn:
				if !golden[v] {
					return fmt.Errorf("MIS: vertex %d joined but is not in the lex-first MIS", v)
				}
				decided++
			case misOut:
				if golden[v] {
					return fmt.Errorf("MIS: vertex %d left but belongs to the lex-first MIS", v)
				}
				decided++
			}
		}
		if decided == 0 {
			return fmt.Errorf("MIS: nothing decided after %d rounds", rounds)
		}
		// Independence among decided-in vertices.
		for v := 0; v < n; v++ {
			if status[v] != misIn {
				continue
			}
			for _, u := range g.Out.Neighs(graph.V(v)) {
				if u != graph.V(v) && status[u] == misIn {
					return fmt.Errorf("MIS: adjacent vertices %d and %d both in set", v, u)
				}
			}
		}
		return nil
	}
	return w
}

// Symmetrize returns the undirected closure of g (every edge present in
// both directions, self-loops dropped). The result keeps g's adjacency
// layout so a compact input stays compact.
func Symmetrize(g *graph.Graph) *graph.Graph {
	n := g.NumVertices()
	edges := make([]graph.Edge, 0, 2*g.NumEdges())
	it := g.Out.IterFrom(0)
	for u := 0; u < n; u++ {
		vs, _ := it.Next()
		for _, v := range vs {
			if graph.V(u) == v {
				continue
			}
			edges = append(edges, graph.Edge{Src: graph.V(u), Dst: v}, graph.Edge{Src: v, Dst: graph.V(u)})
		}
	}
	sym := graph.FromEdges(g.Name+"-sym", n, edges)
	if g.Out.IsCompact() {
		sym = sym.WithLayout(graph.LayoutCompact)
	}
	return sym
}

// goldenLexFirstMIS computes the lexicographically-first maximal
// independent set greedily.
func goldenLexFirstMIS(g *graph.Graph) []bool {
	n := g.NumVertices()
	in := make([]bool, n)
	blocked := make([]bool, n)
	it := g.Out.IterFrom(0)
	for v := 0; v < n; v++ {
		us, _ := it.Next()
		if blocked[v] {
			continue
		}
		in[v] = true
		for _, u := range us {
			if u != graph.V(v) {
				blocked[u] = true
			}
		}
	}
	return in
}
