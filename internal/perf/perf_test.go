package perf

import (
	"math"
	"testing"

	"popt/internal/cache"
	"popt/internal/graph"
	"popt/internal/kernels"
)

func TestBreakdownArithmetic(t *testing.T) {
	b := Breakdown{ComputeCycles: 10, L2Stall: 5, LLCStall: 5, DRAMStall: 60, StreamCycles: 20}
	if b.Total() != 100 {
		t.Fatalf("Total = %v", b.Total())
	}
	if b.DRAMFraction() != 0.6 {
		t.Fatalf("DRAMFraction = %v", b.DRAMFraction())
	}
	if s := Speedup(Breakdown{ComputeCycles: 200}, b); s != 2 {
		t.Fatalf("Speedup = %v", s)
	}
}

func TestDRAMCycles(t *testing.T) {
	p := Default()
	want := 173 * 2.266
	if math.Abs(p.DRAMCycles()-want) > 1e-9 {
		t.Fatalf("DRAMCycles = %v, want %v", p.DRAMCycles(), want)
	}
}

func TestModelChargesEachComponent(t *testing.T) {
	h := &cache.Hierarchy{
		L1:  cache.NewLevel("L1", 1024, 4, cache.NewLRU()),
		L2:  cache.NewLevel("L2", 2048, 4, cache.NewLRU()),
		LLC: cache.NewLevel("LLC", 4096, 4, cache.NewLRU()),
	}
	h.L2.Stats.Hits = 140  //lint:allow statsdiscipline (test fixture)
	h.LLC.Stats.Hits = 140 //lint:allow statsdiscipline (test fixture)
	h.DRAMReads = 100
	h.DRAMWrites = 20
	p := Default()
	b := Model(h, 2000, 1600, p)
	if b.ComputeCycles != 2000/p.BaseIPC {
		t.Errorf("compute = %v, want %v", b.ComputeCycles, 2000/p.BaseIPC)
	}
	if math.Abs(b.L2Stall-140*p.L2Latency/p.MLP) > 1e-9 {
		t.Errorf("L2 stall = %v", b.L2Stall)
	}
	if math.Abs(b.DRAMStall-110*p.DRAMCycles()/p.MLP) > 1e-9 {
		t.Errorf("DRAM stall = %v", b.DRAMStall)
	}
	if b.StreamCycles != 100 {
		t.Errorf("stream = %v", b.StreamCycles)
	}
}

// TestCalibrationDRAMBound checks the headline calibration: a PageRank run
// at the default experiment scale under LRU must be DRAM-bound in the
// 55-90% band the paper cites (60-80%, prior work).
func TestCalibrationDRAMBound(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration run is slow")
	}
	g := graph.Uniform(1<<15, 8<<15, 5)
	w := kernels.NewPageRank(g)
	h := cache.NewHierarchy(cache.Config{
		L1Size: 8 << 10, L1Ways: 8,
		L2Size: 16 << 10, L2Ways: 8,
		LLCSize: 32 << 10, LLCWays: 16, // ~4x smaller than irregData, like the default scale
		LLCPolicy: func() cache.Policy { return cache.NewLRU() },
	})
	r := kernels.NewRunner(h, nil)
	w.Run(r)
	b := Model(h, r.Sim().Instructions, 0, Default())
	frac := b.DRAMFraction()
	t.Logf("breakdown: %v", b)
	if frac < 0.6 || frac > 0.85 {
		t.Errorf("DRAM fraction = %.2f, want the paper's DRAM-bound regime", frac)
	}
}
