// Package perf is the performance model standing in for the paper's Sniper
// simulations. Graph kernels are DRAM-bound — the paper cites 60-80% of
// time waiting on memory — so end-to-end speedup tracks the reduction in
// DRAM traffic. The model charges each access level its Table I latency,
// divided by an effective memory-level-parallelism factor for the
// out-of-order core's overlap, and adds P-OPT's epoch-boundary streaming
// cost at peak DRAM bandwidth. Absolute cycle counts are not claimed;
// relative numbers (who wins, by what factor) are what Fig. 10 needs.
package perf

import (
	"fmt"

	"popt/internal/cache"
)

// Params are the Table I timing parameters plus model knobs.
type Params struct {
	// FreqGHz is the core clock (Table I: 2.266 GHz).
	FreqGHz float64
	// BaseIPC is the instruction throughput absent L2/LLC/DRAM stalls
	// (4-wide OoO running pointer-chasing code sustains ~2).
	BaseIPC float64
	// L2Latency and LLCLatency are load-to-use cycles beyond the L1
	// (Table I: 8 and 21).
	L2Latency, LLCLatency float64
	// DRAMLatencyNs is the base DRAM access latency (Table I: 173 ns).
	DRAMLatencyNs float64
	// MLP is the effective overlap of outstanding memory stalls: an OoO
	// core with 10 L1 MSHRs overlaps misses, but graph kernels' dependent
	// accesses keep realized MLP well below that.
	MLP float64
	// StreamBytesPerCycle is the streaming engine's bandwidth for
	// Rereference Matrix columns (DDIO-class, peak DRAM bandwidth).
	StreamBytesPerCycle float64
}

// Default returns the model parameters used by all experiments.
func Default() Params {
	// BaseIPC and MLP are calibrated so a PageRank run under LRU at the
	// default scale spends ~75% of modeled time in DRAM stalls — the
	// regime the paper cites (60-80%) and the ratio that makes its 24%
	// miss reduction worth a 22% speedup. MLP folds together OoO overlap,
	// MSHR-level parallelism and DRAM banking.
	return Params{
		FreqGHz:             2.266,
		BaseIPC:             1.0,
		L2Latency:           8,
		LLCLatency:          21,
		DRAMLatencyNs:       173,
		MLP:                 28,
		StreamBytesPerCycle: 16,
	}
}

// DRAMCycles returns the DRAM latency in core cycles.
func (p Params) DRAMCycles() float64 { return p.DRAMLatencyNs * p.FreqGHz }

// Breakdown is the modeled cycle decomposition of a run.
type Breakdown struct {
	ComputeCycles float64
	L2Stall       float64
	LLCStall      float64
	DRAMStall     float64
	// StreamCycles is the stop-the-world cost of stream_nextrefs epoch
	// transfers (zero for every policy but P-OPT).
	StreamCycles float64
}

// Total returns total modeled cycles.
func (b Breakdown) Total() float64 {
	return b.ComputeCycles + b.L2Stall + b.LLCStall + b.DRAMStall + b.StreamCycles
}

// DRAMFraction returns the share of time spent waiting on DRAM, the
// quantity prior work pegs at 60-80% for graph kernels.
func (b Breakdown) DRAMFraction() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return b.DRAMStall / t
}

func (b Breakdown) String() string {
	return fmt.Sprintf("cycles=%.3g (compute %.2g, L2 %.2g, LLC %.2g, DRAM %.2g, stream %.2g; DRAM %.0f%%)",
		b.Total(), b.ComputeCycles, b.L2Stall, b.LLCStall, b.DRAMStall, b.StreamCycles, 100*b.DRAMFraction())
}

// Model computes the cycle breakdown for a finished simulation.
// instructions is the retired-instruction count (owned by the run's
// trace.Sim); streamedBytes is P-OPT's Rereference Matrix traffic (0
// otherwise).
func Model(h *cache.Hierarchy, instructions, streamedBytes uint64, p Params) Breakdown {
	var b Breakdown
	b.ComputeCycles = float64(instructions) / p.BaseIPC
	b.L2Stall = float64(h.L2.Stats.Hits) * p.L2Latency / p.MLP
	b.LLCStall = float64(h.LLC.Stats.Hits) * p.LLCLatency / p.MLP
	// Every DRAM transfer (demand read or writeback) occupies the memory
	// system; writebacks overlap better, so weight them at half.
	dramOps := float64(h.DRAMReads) + 0.5*float64(h.DRAMWrites)
	b.DRAMStall = dramOps * p.DRAMCycles() / p.MLP
	b.StreamCycles = float64(streamedBytes) / p.StreamBytesPerCycle
	return b
}

// Speedup returns how much faster `variant` is than `baseline`.
func Speedup(baseline, variant Breakdown) float64 {
	v := variant.Total()
	if v == 0 {
		return 0
	}
	return baseline.Total() / v
}
