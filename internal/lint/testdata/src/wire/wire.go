// Package wire is a miniature of the real trace codec for the codecpair
// analyzer: stream "w" seeds one violation of each parity rule, and the
// clean opcodes exercise the opcode-variable, PC-nibble, merged-opcode,
// and memoized-branch idioms the extractor must handle without noise.
package wire

const (
	wopA byte = iota + 1 // uvarint payload
	wopB                 // encoded as two varints, decoded as one
	wopC                 // encoded but never dispatched
	wopD                 // dispatched but never encoded
	wopE                 // PC nibble + varint delta
	wopF                 // merged form of wopE: PC nibble + uvarint + varint

	wopMask  byte = 0x0f
	pcEscape byte = 15
	pcInline      = 13
)

type enc struct {
	buf     []byte
	pending uint64
}

func appendUvarint(buf []byte, x uint64) []byte {
	for x >= 0x80 {
		buf = append(buf, byte(x)|0x80)
		x >>= 7
	}
	return append(buf, byte(x))
}

func appendVarint(buf []byte, x int64) []byte {
	return appendUvarint(buf, uint64(x)<<1^uint64(x>>63))
}

// A encodes a single uvarint payload; its decode arm matches.
//
//popt:codec w enc
func (e *enc) A(x uint64) {
	e.buf = append(e.buf, wopA)
	e.buf = appendUvarint(e.buf, x)
}

// B encodes two varints, but the decoder reads only one.
//
//popt:codec w enc
func (e *enc) B(a, b int64) {
	e.buf = append(e.buf, wopB)
	e.buf = appendVarint(e.buf, a)
	e.buf = appendVarint(e.buf, b)
}

// C emits an opcode the decoder never dispatches.
//
//popt:codec w enc
func (e *enc) C() {
	e.buf = append(e.buf, wopC) // want `opcode wopC of stream "w" is encoded by C but never dispatched in decoder replay`
}

// E exercises the tracked opcode variable (one function emitting wopE or
// the merged wopF), the correlated pending branches, and both PC nibble
// forms; both decode arms match.
//
//popt:codec w enc
func (e *enc) E(pc uint16, d int64) {
	op := wopA
	op += wopE - wopA
	pending := e.pending
	if pending != 0 {
		op += wopF - wopE
		e.pending = 0
	}
	if pc <= pcInline {
		e.buf = append(e.buf, op|byte(pc+1)<<4)
	} else {
		e.buf = append(e.buf, op|pcEscape<<4)
		e.buf = appendUvarint(e.buf, uint64(pc))
	}
	if pending != 0 {
		e.buf = appendUvarint(e.buf, pending)
	}
	e.buf = appendVarint(e.buf, d)
}

func uvarint(data []byte, i int) (uint64, int) {
	var x uint64
	var shift uint
	for i < len(data) {
		b := data[i]
		i++
		x |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return x, i
		}
		shift += 7
	}
	panic("wire: truncated varint")
}

func varint(data []byte, i int) (int64, int) {
	ux, n := uvarint(data, i)
	return int64(ux>>1) ^ -int64(ux&1), n
}

// record is an opaque helper call the walker must ignore.
func record(op byte, i int) int { return i }

// replay is stream "w"'s decoder.
//
//popt:codec w dec
func replay(data []byte) {
	i := 0
	for i < len(data) {
		b := data[i]
		i++
		op := b & wopMask
		switch op {
		case wopA:
			_, i = uvarint(data, i)
		case wopB: // want `asymmetric codec for opcode wopB of stream "w": B encodes \[varint varint\] but replay decodes \[varint\]`
			_, i = varint(data, i)
		case wopD: // want `opcode wopD of stream "w" is dispatched in decoder replay but never encoded`
			_, i = uvarint(data, i)
		case wopE, wopF:
			if hi := b >> 4; hi == pcEscape {
				_, i = uvarint(data, i)
			}
			if op == wopF {
				_, i = uvarint(data, i)
			}
			if i < len(data) && data[i] < 0x80 {
				i++
			} else {
				_, i = varint(data, i)
			}
			i = record(op, i)
		default:
			panic("wire: bad opcode")
		}
	}
}

// X is annotated for a stream with no decoder at all.
//
//popt:codec x enc
func (e *enc) X() { // want `stream "x" has encoder annotations but no //popt:codec x dec function`
	e.buf = append(e.buf, wopA)
}
