// Package contract exercises the policycontract analyzer with
// self-contained replicas of the cache package's contract types.
package contract

// Line mirrors cache.Line.
type Line struct {
	Valid bool
	Dirty bool
	Addr  uint64
}

// Geometry mirrors cache.Geometry.
type Geometry struct {
	Sets         int
	Ways         int
	ReservedWays int
}

// Access stands in for mem.Access.
type Access struct{ Addr uint64 }

// Good is a contract-abiding policy: reads ReservedWays, never touches
// lines.
type Good struct{ g Geometry }

func (p *Good) Bind(g Geometry) { p.g = g }
func (p *Good) Victim(set int, lines []Line, acc Access) int {
	for w := p.g.ReservedWays; w < p.g.Ways; w++ {
		if !lines[w].Dirty { // reading lines is fine
			return w
		}
	}
	return p.g.ReservedWays
}

// Mutator writes through the lines parameter.
type Mutator struct{ g Geometry }

func (p *Mutator) Bind(g Geometry) { p.g = g }
func (p *Mutator) Victim(set int, lines []Line, acc Access) int {
	lines[0].Dirty = false // want "Victim writes through the lines parameter"
	lines[1] = Line{}      // want "Victim writes through the lines parameter"
	return p.g.ReservedWays
}

// AliasMutator launders the write through a local alias and a re-slice.
type AliasMutator struct{ g Geometry }

func (p *AliasMutator) Bind(g Geometry) { p.g = g }
func (p *AliasMutator) Victim(set int, lines []Line, acc Access) int {
	ls := lines
	ls[0] = Line{} // want "Victim writes through the lines parameter"
	sub := lines[1:]
	sub[0].Valid = false // want "Victim writes through the lines parameter"
	return p.g.ReservedWays
}

// Retainer stores the borrowed slice past the call.
type Retainer struct {
	g     Geometry
	saved []Line
}

func (p *Retainer) Bind(g Geometry) { p.g = g }
func (p *Retainer) Victim(set int, lines []Line, acc Access) int {
	p.saved = lines // want "Victim stores the lines parameter"
	return p.g.ReservedWays
}

// PtrTaker lets a line pointer escape the read-only borrow.
type PtrTaker struct{ g Geometry }

func (p *PtrTaker) Bind(g Geometry) { p.g = g }
func (p *PtrTaker) Victim(set int, lines []Line, acc Access) int {
	q := &lines[0] // want "Victim takes the address"
	_ = q
	return p.g.ReservedWays
}

// Oblivious never consults ReservedWays anywhere.
type Oblivious struct{ n int }

func (p *Oblivious) Bind(g Geometry) { p.n = g.Ways } // want "no method reads Geometry.ReservedWays"
func (p *Oblivious) Victim(set int, lines []Line, acc Access) int {
	return 0
}

// base holds shared state; embedders inherit its ReservedWays read.
type base struct{ g Geometry }

func (b *base) Bind(g Geometry) { b.g = g }
func (b *base) pick() int       { return b.g.ReservedWays }

// Embedder satisfies the ReservedWays obligation via its embedded base.
type Embedder struct{ base }

func (p *Embedder) Victim(set int, lines []Line, acc Access) int { return p.pick() }

// Delegator forwards victim selection; the delegate carries the
// obligation.
type Delegator struct {
	inner *Good
	n     int
}

func (p *Delegator) Bind(g Geometry) { p.n = g.Ways; p.inner.Bind(g) }
func (p *Delegator) Victim(set int, lines []Line, acc Access) int {
	return p.inner.Victim(set, lines, acc)
}

// NotAPolicy has a Victim-shaped method but no Bind; only the lines
// checks apply, not the ReservedWays obligation.
type NotAPolicy struct{}

func (p *NotAPolicy) Victim(set int, lines []Line, acc Access) int {
	lines[0].Valid = true // want "Victim writes through the lines parameter"
	return 0
}

// Allowed shows directive suppression for a deliberate violation (e.g. a
// test fake built to trip the runtime checker).
type Allowed struct{ g Geometry }

func (p *Allowed) Bind(g Geometry) { p.g = g }
func (p *Allowed) Victim(set int, lines []Line, acc Access) int {
	//lint:allow policycontract
	lines[0].Valid = true
	return p.g.ReservedWays
}
