// Package borrowmiss is the acceptance case for borrowflow: a Victim
// that retains the borrowed lines slice through a helper call. The
// syntactic policycontract analyzer sees only an innocuous call argument
// and reports nothing; borrowflow's helper summaries catch the retention.
// The // want expectations here are borrowflow's — the companion Go test
// also runs policycontract over this package and asserts it stays silent.
package borrowmiss

type Line struct {
	Valid bool
	Dirty bool
	Addr  uint64
}

type Geometry struct {
	Sets, Ways, ReservedWays int
}

type Access struct{ Addr uint64 }

// Hoarder launders the borrow through a same-package helper.
type Hoarder struct {
	g     Geometry
	saved []Line
}

func (h *Hoarder) Name() string         { return "hoarder" }
func (h *Hoarder) Bind(g Geometry)      { h.g = g }
func (h *Hoarder) OnEvict(set, way int) {}

func remember(h *Hoarder, ls []Line) { h.saved = ls }

func (h *Hoarder) Victim(set int, lines []Line, acc Access) int {
	remember(h, lines) // want `passes the borrowed lines slice to remember, which retains it beyond the call`
	return h.g.ReservedWays
}
