// Package freeze exercises the sharefreeze analyzer: Table stands in for
// the Rereference Matrix artifacts (core.Table, core.LineRefs, the graph
// CSR arrays) that sweep cells share read-only.
package freeze

import "sync"

// Table is the shared artifact under test.
//
//popt:frozen
type Table struct {
	entries []uint16
	epochs  int
}

var shared *Table

var registry = map[string]*Table{}

// Build is the legal constructor shape: fill the fresh value directly,
// through a helper, and from a constructor-launched goroutine, then
// return it.
func Build(n int) *Table {
	t := &Table{entries: make([]uint16, n)}
	t.epochs = n
	for i := range t.entries {
		t.entries[i] = uint16(i)
	}
	fill(t, 7)
	done := make(chan struct{})
	go func() {
		t.entries[0] = 1
		close(done)
	}()
	<-done
	return t
}

// fill writes through its parameter; legal only with fresh arguments —
// each call site is judged by this helper's summary.
func fill(t *Table, v uint16) {
	for i := range t.entries {
		t.entries[i] = v
	}
}

// zeroFirst is the bottom of a two-deep helper chain.
func zeroFirst(t *Table) {
	t.entries[0] = 0
}

// scrub delegates to zeroFirst; its summary inherits the write.
func scrub(t *Table) {
	zeroFirst(t)
}

// BuildZero shows the zero-value construction path.
func BuildZero() *Table {
	var t Table
	t.entries = make([]uint16, 4)
	t.entries[2] = 9
	return &t
}

// MutateResult mutates a constructor's return value: the canonical bug.
func MutateResult(n int) {
	t := Build(n)
	t.entries[0] = 9 // want `stores to t\.entries\[\.\.\.\], mutating frozen Table after publication`
}

// MutateShared writes the package-level published table.
func MutateShared() {
	shared.epochs = 3 // want `stores to shared\.epochs, mutating frozen Table after publication`
}

// PublishThenWrite stores a fresh table into a package variable and keeps
// mutating through the local: publication ends the construction window.
func PublishThenWrite(n int) {
	t := &Table{entries: make([]uint16, n)}
	shared = t
	t.entries[1] = 2 // want `stores to t\.entries\[\.\.\.\], mutating frozen Table after publication`
}

// HelperChainWrite passes a published table into a helper chain; the
// diagnostic names the offending store two calls down.
func HelperChainWrite() {
	t := Build(4)
	scrub(t) // want `passes published frozen Table to scrub, which stores to it`
}

// FreshHelperOK is the negative twin: the same helpers on a still-fresh
// value are constructor work.
func FreshHelperOK() *Table {
	t := &Table{entries: make([]uint16, 4)}
	scrub(t)
	fill(t, 3)
	return t
}

// AliasWrite mutates through an alias of the table's interior storage.
func AliasWrite() {
	t := Build(4)
	es := t.entries
	es[0] = 5 // want `writes frozen shared storage through alias es`
}

// AppendAlias appends to aliased frozen storage, which may write the
// shared backing array in place.
func AppendAlias() {
	t := Build(4)
	es := t.entries
	es = append(es, 1) // want `appends to frozen shared storage`
	_ = es
}

// CopyInto overwrites frozen storage with copy.
func CopyInto(src []uint16) {
	t := Build(4)
	copy(t.entries, src) // want `copies into frozen shared storage`
}

// RaceWrite launches a goroutine that mutates an already-published table:
// exactly the race the sweep workers would hit.
func RaceWrite() {
	t := Build(4)
	go func() {
		t.entries[2] = 7 // want `stores to t\.entries\[\.\.\.\], mutating frozen Table after publication`
	}()
}

// MutateRegistry mutates a table pulled out of package-level state.
func MutateRegistry(k string) {
	t := registry[k]
	t.epochs++ // want `stores to t\.epochs, mutating frozen Table after publication`
}

// Register publishes into the registry map; writing the non-frozen map
// itself is fine, and the fresh table may not be touched afterwards.
func Register(k string, n int) {
	t := &Table{entries: make([]uint16, n)}
	registry[k] = t
	t.epochs = 1 // want `stores to t\.epochs, mutating frozen Table after publication`
}

// entry mirrors the artifact-cache value types: lazy construction behind
// the value's own sync.Once.
//
//popt:frozen
type entry struct {
	once sync.Once
	t    *Table
}

var entries = map[string]*entry{}

// lazy initializes the entry inside its own Once: construction by
// definition, so the stores are legal.
func lazy(e *entry, n int) *Table {
	e.once.Do(func() {
		e.t = Build(n)
	})
	return e.t
}

// Lookup exercises the full cache idiom end to end.
func Lookup(k string, n int) *Table {
	e := entries[k]
	if e == nil {
		e = &entry{}
		entries[k] = e
	}
	return lazy(e, n)
}

// MutateEntry writes an entry field outside its Once after pulling it out
// of package-level state.
func MutateEntry(k string) {
	e := entries[k]
	e.t = nil // want `stores to e\.t, mutating frozen entry after publication`
}

// Exported mutators are flagged at the declaration: external callers are
// invisible, so no exported function may write through a frozen
// parameter or receiver.
func Reset(t *Table) { // want `exported Reset writes frozen Table through its parameter t`
	t.epochs = 0
}

// Bump is the method form of the same violation.
func (t *Table) Bump() { // want `exported Bump writes frozen Table through its receiver`
	t.epochs++
}

// Epochs is a legal exported read-only method.
func (t *Table) Epochs() int {
	return t.epochs
}

// allowDirective proves suppression works for deliberate test-fixture
// corruption (the graph Validate tests).
func allowDirective() {
	t := Build(2)
	t.entries[0] = 3 //lint:allow sharefreeze
}
