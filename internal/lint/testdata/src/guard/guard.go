// Package guard exercises the lockguard analyzer with the three guard
// shapes the artifact caches use: a named mutex field, an embedded mutex
// on a package variable, and a per-entry sync.Once.
package guard

import "sync"

type cache struct {
	mu sync.Mutex
	m  map[string]int //popt:guardedby mu
	n  int            //popt:guardedby mu
}

// get is the legal deferred-unlock shape.
func (c *cache) get(k string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[k]
}

// put is the legal paired lock/unlock shape.
func (c *cache) put(k string, v int) {
	c.mu.Lock()
	c.m[k] = v
	c.n++
	c.mu.Unlock()
}

// bad reads the map with no lock at all.
func (c *cache) bad(k string) int {
	return c.m[k] // want `bad accesses c\.m without holding mu`
}

// badAfterUnlock keeps using the map after releasing the lock.
func (c *cache) badAfterUnlock(k string) {
	c.mu.Lock()
	c.m[k] = 1
	c.mu.Unlock()
	c.m[k] = 2 // want `badAfterUnlock accesses c\.m without holding mu`
}

// badGoroutine: the lock held at the go statement is not held by the
// goroutine it launches.
func (c *cache) badGoroutine(k string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.m[k] = 1 // want `badGoroutine accesses c\.m without holding mu`
	}()
	c.n = 0
}

// earlyReturn unlocks on the early-exit path and returns; the fallthrough
// path still holds the lock, so the trailing access is fine.
func (c *cache) earlyReturn(k string, skip bool) {
	c.mu.Lock()
	if skip {
		c.mu.Unlock()
		return
	}
	c.m[k] = 1
	c.mu.Unlock()
}

// branchMerge: a lock taken on only one branch is not held after the
// merge point.
func (c *cache) branchMerge(k string, b bool) {
	if b {
		c.mu.Lock()
		c.m[k] = 1
		c.mu.Unlock()
	}
	c.n++ // want `branchMerge accesses c\.n without holding mu`
}

// registry uses an embedded mutex on a package variable, like the graph
// suite cache.
var registry struct {
	sync.Mutex
	m map[string]int //popt:guardedby Mutex
}

func lookup(k string) int {
	registry.Lock()
	defer registry.Unlock()
	if registry.m == nil {
		registry.m = make(map[string]int)
	}
	return registry.m[k]
}

func badLookup(k string) int {
	return registry.m[k] // want `badLookup accesses registry\.m without holding Mutex`
}

// entry mirrors the artifact-cache entries: fields published by a
// sync.Once are readable only inside or after the Do.
type entry struct {
	once sync.Once
	v    int //popt:guardedby once
}

func lazy(e *entry) int {
	e.once.Do(func() {
		e.v = 42
	})
	return e.v
}

func badLazy(e *entry) int {
	return e.v // want `badLazy accesses e\.v, which is guarded by sync\.Once once, outside its Do`
}

// badAnnotation names a guard that does not exist in the struct.
type badAnnotation struct {
	v int //popt:guardedby gone // want `//popt:guardedby gone on v names no sibling field`
}

// badGuardType names a sibling that is not a sync primitive.
type badGuardType struct {
	g int
	v int //popt:guardedby g // want `not a sync\.Mutex, sync\.RWMutex, or sync\.Once`
}

// allowed demonstrates suppression for single-threaded test asserts.
func (c *cache) allowed(k string) int {
	return c.m[k] //lint:allow lockguard
}
