// Package wireop seeds opexhaust violations: dispatch switches that skip
// a declared opcode, swallow unknown opcodes silently, or have no default
// at all — plus loud decoders (panic helper, error return) that must stay
// clean.
package wireop

import "errors"

const (
	xopA byte = iota + 1
	xopB
	xopC

	xopMask byte = 0x0f
)

var errBad = errors.New("wireop: bad opcode")

// bad panics out of line, like the real codec's badOp.
func bad(op byte) {
	panic("wireop: bad opcode")
}

// decodeMissing has a loud default but no arm for xopC.
//
//popt:codec x dec
func decodeMissing(data []byte) {
	i := 0
	for i < len(data) {
		op := data[i] & xopMask
		i++
		switch op { // want `opcode dispatch in decodeMissing does not handle xopC`
		case xopA:
		case xopB:
		default:
			bad(op)
		}
	}
}

// decodeSilent covers every opcode but swallows unknown ones.
//
//popt:codec x dec
func decodeSilent(data []byte) error {
	for _, b := range data {
		op := b & xopMask
		switch op {
		case xopA, xopB, xopC:
		default: // want `default clause of the opcode dispatch in decodeSilent is silent`
			return nil
		}
	}
	return nil
}

// decodeNoDefault covers every opcode but falls through unknown ones.
//
//popt:codec x dec
func decodeNoDefault(data []byte) {
	for _, b := range data {
		op := b & xopMask
		switch op { // want `opcode dispatch in decodeNoDefault has no default clause`
		case xopA, xopB, xopC:
		}
	}
}

// decodeErr is fully covered with an error-returning default: clean.
//
//popt:codec x dec
func decodeErr(data []byte) error {
	for _, b := range data {
		op := b & xopMask
		switch op {
		case xopA, xopB, xopC:
		default:
			return errBad
		}
	}
	return nil
}
