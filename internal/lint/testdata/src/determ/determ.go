// Package determ exercises the determinism analyzer.
package determ

import (
	"math/rand"
	"sort"
	"time"
)

var m = map[int]string{1: "a", 2: "b"}

// MapRanges covers flagged and allowlisted map iteration.
func MapRanges() int {
	total := 0
	for k := range m { // want "range over map m iterates in randomized order"
		total += k
	}
	//lint:ordered
	for k := range m { // order-insensitive: commutative sum, annotated
		total += k
	}
	for k := range m { //lint:ordered same-line directive also works
		total += k
	}
	keys := make([]int, 0, len(m))
	//lint:ordered
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys { // slice iteration: never flagged
		total += k
	}
	for i := range keys { // index form over slice: never flagged
		total += i
	}
	return total
}

// GlobalRand covers the math/rand global-source checks.
func GlobalRand() int {
	x := rand.Intn(10)                 // want `rand\.Intn draws from the global math/rand source`
	f := rand.Float64()                // want `rand\.Float64 draws from the global math/rand source`
	rand.Shuffle(1, func(i, j int) {}) // want `rand\.Shuffle draws from the global math/rand source`
	return x + int(f)
}

// SeededRand is the sanctioned pattern: an explicit, seeded generator.
func SeededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed)) // constructors are allowed
	z := rand.NewZipf(rng, 1.5, 1, 100)   // NewZipf consumes the explicit rng
	return rng.Intn(10) + int(z.Uint64()) // method calls are allowed
}

// WallClock covers the time.Now check.
func WallClock() time.Time {
	d := time.Duration(3) * time.Second // other time uses are fine
	_ = d
	return time.Now() // want `time\.Now inside a simulation package`
}
