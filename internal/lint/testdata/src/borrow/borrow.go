// Package borrow exercises the borrowflow analyzer: dataflow tracking of
// the borrowed lines slice through locals, helpers, embedding, closures,
// and goroutines.
package borrow

type Line struct {
	Valid bool
	Dirty bool
	Addr  uint64
}

type Geometry struct {
	Sets, Ways, ReservedWays int
}

type Access struct{ Addr uint64 }

// --- delegation through a helper that retains (policycontract misses) ---

type Keeper struct {
	g     Geometry
	saved []Line
}

func (k *Keeper) Bind(g Geometry) { k.g = g }

func (k *Keeper) stash(ls []Line) { k.saved = ls }

func (k *Keeper) Victim(set int, lines []Line, acc Access) int {
	k.stash(lines) // want `passes the borrowed lines slice to stash, which retains it beyond the call`
	return k.g.ReservedWays
}

// --- embedding: the retaining helper lives on an embedded type ---------

type stashBase struct {
	kept []Line
}

func (s *stashBase) keep(ls []Line) { s.kept = ls }

type Embedder struct {
	stashBase
	g Geometry
}

func (e *Embedder) Bind(g Geometry) { e.g = g }

func (e *Embedder) Victim(set int, lines []Line, acc Access) int {
	e.keep(lines) // want `passes the borrowed lines slice to keep, which retains it beyond the call`
	return e.g.ReservedWays
}

// --- helper that writes through its parameter --------------------------

type Scrubber struct {
	g Geometry
}

func (s *Scrubber) Bind(g Geometry) { s.g = g }

func scrub(ls []Line) {
	for i := range ls {
		ls[i].Dirty = false
	}
}

func (s *Scrubber) Victim(set int, lines []Line, acc Access) int {
	scrub(lines) // want `passes the borrowed lines slice to scrub, which writes through it`
	return s.g.ReservedWays
}

// --- helper returning an alias that is then retained --------------------

type Identity struct {
	g    Geometry
	held []Line
}

func (p *Identity) Bind(g Geometry) { p.g = g }

func tail(ls []Line) []Line { return ls[1:] }

func (p *Identity) Victim(set int, lines []Line, acc Access) int {
	t := tail(lines)
	p.held = t // want `stores an alias of the borrowed lines slice in p.held`
	return p.g.ReservedWays
}

// --- reaching-definitions kill: rebound alias is clean ------------------

type Killer struct {
	g    Geometry
	held []Line
}

func (p *Killer) Bind(g Geometry) { p.g = g }

func (p *Killer) Victim(set int, lines []Line, acc Access) int {
	x := lines
	x = nil
	p.held = x // clean: x was rebound before the store
	return p.g.ReservedWays
}

// --- direct writes through chained local aliases ------------------------

type ChainWriter struct {
	g Geometry
}

func (p *ChainWriter) Bind(g Geometry) { p.g = g }

func (p *ChainWriter) Victim(set int, lines []Line, acc Access) int {
	a := lines[p.g.ReservedWays:]
	b := a
	b[0].Dirty = true // want `writes the borrowed lines storage through b`
	return p.g.ReservedWays
}

// --- append and copy into the borrow ------------------------------------

type Appender struct {
	g Geometry
}

func (p *Appender) Bind(g Geometry) { p.g = g }

func (p *Appender) Victim(set int, lines []Line, acc Access) int {
	_ = append(lines[:0], Line{}) // want `appends to the borrowed lines slice`
	scratch := make([]Line, len(lines))
	copy(scratch, lines) // clean: reading the borrow out is fine
	copy(lines, scratch) // want `copies into the borrowed lines slice`
	return p.g.ReservedWays
}

// --- closure capture stored on the policy -------------------------------

type Closer struct {
	g  Geometry
	cb func() int
}

func (p *Closer) Bind(g Geometry) { p.g = g }

func (p *Closer) Victim(set int, lines []Line, acc Access) int {
	p.cb = func() int { return len(lines) } // want `stores an alias of the borrowed lines slice in p.cb`
	return p.g.ReservedWays
}

// --- goroutine escape ----------------------------------------------------

type GoRunner struct {
	g Geometry
}

func (p *GoRunner) Bind(g Geometry) { p.g = g }

func (p *GoRunner) Victim(set int, lines []Line, acc Access) int {
	go func() { // want `hands an alias of the borrowed lines slice to a goroutine`
		for i := range lines {
			_ = lines[i].Addr
		}
	}()
	return p.g.ReservedWays
}

// --- package-level retention ---------------------------------------------

var leaked []Line

type GlobalLeaker struct {
	g Geometry
}

func (p *GlobalLeaker) Bind(g Geometry) { p.g = g }

func (p *GlobalLeaker) Victim(set int, lines []Line, acc Access) int {
	leaked = lines // want `stores an alias of the borrowed lines slice in package variable leaked`
	return p.g.ReservedWays
}

// --- interface delegation transfers the obligation (clean) ---------------

type Policy interface {
	Victim(set int, lines []Line, acc Access) int
}

type Delegator struct {
	g     Geometry
	inner Policy
}

func (p *Delegator) Bind(g Geometry) { p.g = g }

func (p *Delegator) Victim(set int, lines []Line, acc Access) int {
	return p.inner.Victim(set, lines, acc) // clean: the delegate inherits the borrow contract
}

// --- value reads and copies are clean ------------------------------------

type Reader struct {
	g    Geometry
	last uint64
}

func (p *Reader) Bind(g Geometry) { p.g = g }

func degree(ls []Line) int { return len(ls) } // reads only: clean helper

func (p *Reader) Victim(set int, lines []Line, acc Access) int {
	best := p.g.ReservedWays
	for w := p.g.ReservedWays; w < p.g.Ways; w++ {
		ln := lines[w] // value copy, safe
		if !ln.Dirty {
			best = w
		}
	}
	p.last = lines[best].Addr // scalar copy out of the borrow, safe
	_ = degree(lines)
	return best
}

// --- helper chains: retention two hops away ------------------------------

type DeepKeeper struct {
	g    Geometry
	pile [][]Line
}

func (p *DeepKeeper) Bind(g Geometry) { p.g = g }

func (p *DeepKeeper) hoard(ls []Line) { p.pile = append(p.pile, ls) }

func (p *DeepKeeper) relay(ls []Line) { p.hoard(ls) }

func (p *DeepKeeper) Victim(set int, lines []Line, acc Access) int {
	p.relay(lines) // want `passes the borrowed lines slice to relay, which retains it beyond the call`
	return p.g.ReservedWays
}
