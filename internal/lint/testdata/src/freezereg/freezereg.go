// Package freezereg exercises the registry/annotation cross-check: a type
// listed in the analyzer's registry must carry //popt:frozen at its
// declaration.
package freezereg

type MissReg struct { // want `MissReg is registered in lint\.FrozenTypes but its declaration has no //popt:frozen directive`
	n int
}

func mutate(m *MissReg) {
	m.n = 1
}
