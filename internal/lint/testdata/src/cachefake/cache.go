// Package cache (import path "cachefake") replicates the shape of the
// real internal/cache package for statsdiscipline testing: a named Stats
// struct inside a package named "cache".
package cache

// Stats mirrors cache.Stats.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
}

// Add mirrors the sanctioned aggregation API.
func (s *Stats) Add(o Stats) {
	s.Accesses += o.Accesses
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Writebacks += o.Writebacks
}

// Level owns a Stats, like cache.Level.
type Level struct{ Stats Stats }

// Access mutates counters in-package: never flagged.
func (l *Level) Access(hit bool) {
	l.Stats.Accesses++
	if hit {
		l.Stats.Hits++
	} else {
		l.Stats.Misses++
	}
}
