// Package statsclient exercises statsdiscipline from outside the cache
// package.
package statsclient

import cache "cachefake"

// Mutate covers flagged counter writes.
func Mutate(l *cache.Level) {
	l.Stats.Misses++        // want `write to cache\.Stats\.Misses outside the cache package`
	l.Stats.Hits = 7        // want `write to cache\.Stats\.Hits outside the cache package`
	l.Stats.Accesses += 2   // want `write to cache\.Stats\.Accesses outside the cache package`
	l.Stats = cache.Stats{} // want "overwriting a cache.Stats field outside the cache package"
}

// Read covers allowed uses: reading, copying, and Add-based aggregation.
func Read(l *cache.Level) uint64 {
	var total cache.Stats // a local Stats value is fine to declare
	total.Add(l.Stats)    // sanctioned aggregation
	snapshot := l.Stats   // copying out is fine
	return snapshot.Misses + total.Hits
}

// Fixture shows directive suppression for test fixtures.
func Fixture(l *cache.Level) {
	l.Stats.Misses = 42 //lint:allow statsdiscipline (test fixture)
}
