// Package capture exercises the loopcapture analyzer with the goroutine
// shapes the sweep engine and parallel fills use: worker pools draining a
// channel, range-sharded builders passing bounds as arguments, and the
// disjoint-slot error slice.
package capture

import "sync"

func use(int)          {}
func work(i int) error { _ = i; return nil }
func drainOK(cells chan int, errs []error) {
	for i := range cells {
		errs[i] = work(i)
	}
}

// workerPool is the legal sweep shape: the closure captures only the
// WaitGroup, the channel, and the error slice, and touches them through
// calls and channel ops, never direct writes.
func workerPool(workers int, cells chan int, errs []error) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			drainOK(cells, errs)
		}()
	}
	wg.Wait()
}

// argPassing is the legal shard shape: loop-derived bounds enter the
// goroutine as call arguments, so the closure's lo/hi are parameters.
func argPassing(n int) {
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += 8 {
		hi := lo + 8
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			use(lo + hi)
		}(lo, hi)
	}
	wg.Wait()
}

// disjointSlot is the legal per-worker result slot: the slice is shared
// but every goroutine indexes it with its own parameter.
func disjointSlot(n int, errs []error) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = work(i)
		}(i)
	}
	wg.Wait()
}

// capturesLoopVar references the iteration variable from inside the
// closure instead of passing it.
func capturesLoopVar(n int) {
	for i := 0; i < n; i++ {
		go use(i) // evaluated at launch: fine, and not a closure anyway
		go func() {
			use(i) // want `goroutine launched inside a loop captures loop variable i; pass it as a call argument`
		}()
	}
}

// capturesRangeVar is the range-clause form of the same mistake.
func capturesRangeVar(gs []int) {
	for _, g := range gs {
		go func() {
			use(g) // want `goroutine launched inside a loop captures loop variable g`
		}()
	}
}

// sharedCounter: every worker increments one captured slot.
func sharedCounter(n int) {
	count := 0
	for j := 0; j < n; j++ {
		go func() {
			count++ // want `goroutine in a loop assigns to captured variable count`
		}()
	}
	use(count)
}

// mapWrite: even with distinct keys, concurrent map writes fault.
func mapWrite(keys []string) {
	m := map[string]int{}
	var wg sync.WaitGroup
	for _, k := range keys {
		wg.Add(1)
		go func(k string) {
			defer wg.Done()
			m[k] = len(k) // want `goroutine in a loop writes captured map m`
		}(k)
	}
	wg.Wait()
	use(len(m))
}

// badSlotIndex writes a shared slice through an index that lives outside
// the goroutine, so slots are not disjoint.
func badSlotIndex(n int, out []int) {
	next := 0
	for j := 0; j < n; j++ {
		go func() {
			out[next] = 1 // want `writes captured slice out at an index that is not goroutine-local`
		}()
	}
	use(next)
}

type state struct{ count int }

// pointerWrite mutates shared state through a captured pointer.
func pointerWrite(n int, st *state) {
	for j := 0; j < n; j++ {
		go func() {
			st.count = 1 // want `goroutine in a loop writes shared state through captured st`
		}()
	}
}

// localWrite only touches goroutine-private storage: legal.
func localWrite(n int) {
	for i := 0; i < n; i++ {
		go func(i int) {
			buf := make([]int, 4)
			buf[0] = i
			sum := 0
			sum += buf[0]
			use(sum)
		}(i)
	}
}

// outsideLoop: a lone goroutine is out of this analyzer's jurisdiction
// (there is no per-iteration fan-out to race with).
func outsideLoop() {
	flag := 0
	go func() {
		flag = 1
	}()
	use(flag)
}

// allowed demonstrates suppression for deliberate one-shot cases.
func allowed(n int) {
	done := 0
	for j := 0; j < n; j++ {
		go func() {
			done = 1 //lint:allow loopcapture
		}()
	}
	use(done)
}
