// Package wirelock seeds formatlock violations against the checked-in
// testdata/wirelock.baseline: stream "fresh" matches its baseline entry,
// "drift" changed layout without a version bump, "stale" bumped its
// version without regenerating the baseline, and "noentry" is annotated
// but missing from FormatVersions entirely.
package wirelock

var FormatVersions = map[string]byte{
	"fresh": 1,
	"drift": 1, // want `wire fingerprint of stream "drift" changed but FormatVersions\["drift"\] is still 1`
	"stale": 2, // want `wire-format baseline for stream "stale" is stale \(baseline version 1, package declares 2\)`
}

var HeaderFields = map[string][]string{
	"fresh": {"magic:pf", "version:u8"},
}

const (
	fopA byte = iota + 1
)

const (
	dopA byte = iota + 1
)

const (
	sopA byte = iota + 1
)

const (
	nopA byte = iota + 1
)

type enc struct{ buf []byte }

func appendUvarint(buf []byte, x uint64) []byte {
	for x >= 0x80 {
		buf = append(buf, byte(x)|0x80)
		x >>= 7
	}
	return append(buf, byte(x))
}

func appendVarint(buf []byte, x int64) []byte {
	return appendUvarint(buf, uint64(x)<<1^uint64(x>>63))
}

// Fresh matches its baseline entry exactly.
//
//popt:codec fresh enc
func (e *enc) Fresh(x uint64) {
	e.buf = append(e.buf, fopA)
	e.buf = appendUvarint(e.buf, x)
}

// Drift changed its payload from uvarint (what the baseline records) to
// varint without bumping FormatVersions["drift"].
//
//popt:codec drift enc
func (e *enc) Drift(x int64) {
	e.buf = append(e.buf, dopA)
	e.buf = appendVarint(e.buf, x)
}

// Stale bumped FormatVersions["stale"] to 2, but the baseline still
// records version 1.
//
//popt:codec stale enc
func (e *enc) Stale(x uint64) {
	e.buf = append(e.buf, sopA)
	e.buf = appendUvarint(e.buf, x)
}

// NoEntry is annotated but has no FormatVersions entry.
//
//popt:codec noentry enc
func (e *enc) NoEntry() { // want `stream "noentry" has //popt:codec annotations but no FormatVersions entry`
	e.buf = append(e.buf, nopA)
}
