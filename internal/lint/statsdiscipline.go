package lint

import (
	"go/ast"
	"go/types"
)

// statsCounters are the cache.Stats fields only internal/cache may write.
var statsCounters = map[string]bool{
	"Accesses":   true,
	"Hits":       true,
	"Misses":     true,
	"Evictions":  true,
	"Writebacks": true,
}

// StatsDiscipline enforces single-writer statistics: the counters in
// cache.Stats are maintained exclusively by the cache package (Level,
// Hierarchy). Any other package incrementing, assigning, or resetting
// them would skew MPKI/miss-rate results invisibly — experiments read
// those counters as ground truth. Reading is always fine; accumulation
// belongs in Stats.Add.
//
// The Stats type is matched structurally (a named struct "Stats" declared
// in a package named "cache"), so the check applies equally to the real
// internal/cache and to self-contained test fixtures.
var StatsDiscipline = &Analyzer{
	Name: "statsdiscipline",
	Doc: "flags writes to cache.Stats counter fields (and whole-struct " +
		"Stats overwrites through fields) outside the cache package",
	Run: runStatsDiscipline,
}

func runStatsDiscipline(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					checkStatsWrite(pass, lhs)
				}
			case *ast.IncDecStmt:
				checkStatsWrite(pass, n.X)
			}
			return true
		})
	}
	return nil
}

func checkStatsWrite(pass *Pass, lhs ast.Expr) {
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	// Counter field write: base expression must be a foreign Stats.
	if statsCounters[sel.Sel.Name] && isForeignStats(pass, s.Recv()) {
		pass.Reportf(lhs.Pos(),
			"write to cache.Stats.%s outside the cache package; Level/Hierarchy own these counters (use Stats.Add for aggregation)",
			sel.Sel.Name)
		return
	}
	// Whole-struct overwrite through a field (e.g. level.Stats = Stats{}).
	if isForeignStats(pass, s.Type()) {
		pass.Reportf(lhs.Pos(),
			"overwriting a cache.Stats field outside the cache package resets counters the simulator owns")
	}
}

// isForeignStats reports whether t (possibly behind pointers) is a named
// struct Stats declared in a package named "cache" other than the one
// being analyzed.
func isForeignStats(pass *Pass, t types.Type) bool {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Stats" {
		return false
	}
	if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Name() == "cache" && pkg != pass.Pkg
}
