package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the shared engine of the wirecheck family (codecpair,
// formatlock, opexhaust): the analyzers that hold the hand-written
// varint/delta wire codecs in internal/trace to their invariants. A codec
// here is a set of functions annotated
//
//	//popt:codec <stream> enc
//	//popt:codec <stream> dec
//
// in their doc comments. The engine symbolically walks every annotated
// function and reduces each opcode's wire layout to a canonical sequence
// of primitive ops:
//
//	op       an opcode byte append (encoders only; implicit in decoders)
//	pc       the inline-or-escaped PC nibble idiom (see below)
//	uvarint  a LEB128 varint   (appendUvarint / uvarint / uvarintChecked)
//	varint   a zigzag varint   (appendVarint / varint / varintChecked)
//
// The walk is a small abstract interpreter, not a syntax match:
//
//   - Opcode variables are tracked concretely: `op := opAccessR`,
//     `op = opAccessW`, `op += opAccessRT - opAccessR` all evaluate, so
//     one encoder function can emit several opcodes and each is
//     attributed its own payload.
//   - Branches whose condition involves only tracked values evaluate to
//     one side (`if op >= opAccessRT` inside a multi-opcode case arm).
//   - Other branches fork the walk; textually identical conditions are
//     memoized per path, so the two `pending != 0` blocks in an encoder
//     correlate instead of multiplying into impossible paths.
//   - Paths that end in a panic or by returning a non-nil error are
//     decode *failure* paths, not wire layouts, and are discarded.
//
// Two idioms are folded into single ops so both codec sides canonicalize
// identically. A branch whose condition mentions the constant `pcEscape`
// is the PC nibble idiom (inline PC in the opcode's high nibble, or an
// escape marker followed by a uvarint PC) and becomes one `pc` op; on the
// encoder side the same fold applies to `op|...<<4` appends. A branch
// whose condition mentions the literal 0x80 is the one-byte varint fast
// path and becomes one `varint` op.

// wire op kinds.
const (
	wireOp      = "op"
	wirePC      = "pc"
	wireUvarint = "uvarint"
	wireVarint  = "varint"
)

// pcEscapeName is the constant name that identifies the PC nibble idiom;
// pcModeInline/pcModeEscape classify an encoder's opcode-byte append.
const pcEscapeName = "pcEscape"

const (
	pcModeNone = iota
	pcModeInline
	pcModeEscape
)

// wireMaxPaths caps the fork fan-out of one function walk; real codecs
// have a handful of correlated branches, so hitting the cap means the
// function is too tangled to certify and is reported as such.
const wireMaxPaths = 64

// codecFn is one annotated codec function.
type codecFn struct {
	decl   *ast.FuncDecl
	stream string
	enc    bool
}

func (f *codecFn) name() string { return f.decl.Name.Name }

// parseCodecFuncs collects //popt:codec annotations from function doc
// comments. Malformed annotations are reported through report.
func parseCodecFuncs(pass *Pass, report bool) []*codecFn {
	var fns []*codecFn
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil {
				continue
			}
			for _, c := range fn.Doc.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, "//popt:codec") {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, "//popt:codec"))
				if len(fields) != 2 || (fields[1] != "enc" && fields[1] != "dec") {
					if report {
						pass.Reportf(c.Pos(), "malformed codec annotation %q; want //popt:codec <stream> enc|dec", text)
					}
					continue
				}
				fns = append(fns, &codecFn{decl: fn, stream: fields[0], enc: fields[1] == "enc"})
			}
		}
	}
	return fns
}

// opBlock is one const block holding opcode constants. The universe is
// the block's leading iota run (`opX byte = iota + 1` followed by bare
// names): the declared opcode set. Constants after the first explicitly
// re-valued spec (opMask, pcEscape, ...) are members but not opcodes.
type opBlock struct {
	decl      *ast.GenDecl
	universe  []string        // opcode names, declaration order
	values    map[string]int64
	names     map[int64]string // value -> first opcode name
	blockName string           // first opcode name, for messages
}

func (b *opBlock) opName(v int64) string {
	if n, ok := b.names[v]; ok {
		return n
	}
	return fmt.Sprintf("%d", v)
}

// collectOpBlocks finds every const block opening with an iota run and
// maps each member constant object to its block.
func collectOpBlocks(pass *Pass) map[types.Object]*opBlock {
	out := make(map[types.Object]*opBlock)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST || len(gd.Specs) == 0 {
				continue
			}
			first, ok := gd.Specs[0].(*ast.ValueSpec)
			if !ok || len(first.Values) == 0 || !mentionsIdent(first.Values[0], "iota") {
				continue
			}
			block := &opBlock{
				decl:   gd,
				values: make(map[string]int64),
				names:  make(map[int64]string),
			}
			inRun := true
			var members []types.Object
			for i, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if i > 0 && len(vs.Values) > 0 {
					inRun = false // explicit re-valuing ends the opcode run
				}
				for _, name := range vs.Names {
					obj := pass.TypesInfo.Defs[name]
					cst, ok := obj.(*types.Const)
					if !ok {
						continue
					}
					v, ok := constant.Int64Val(constant.ToInt(cst.Val()))
					if !ok {
						continue
					}
					members = append(members, obj)
					block.values[name.Name] = v
					if inRun {
						block.universe = append(block.universe, name.Name)
						if _, seen := block.names[v]; !seen {
							block.names[v] = name.Name
						}
					}
				}
			}
			if len(block.universe) == 0 {
				continue
			}
			block.blockName = block.universe[0]
			for _, obj := range members {
				out[obj] = block
			}
		}
	}
	return out
}

// wireTok is one primitive op observed on a walk path.
type wireTok struct {
	kind   string
	op     int64 // wireOp only
	pcMode int   // wireOp only
	block  *opBlock
	pos    token.Pos
}

// wireEnv is the state of one walk path.
type wireEnv struct {
	vars  map[string]int64 // concretely tracked locals (opcode variables)
	conds map[string]bool  // memoized branch decisions, by condition text
	toks  []wireTok
	done  bool // hit return/continue/break: stop consuming statements
	dead  bool // ended in panic or error return: not a wire layout
}

func (e *wireEnv) clone() *wireEnv {
	c := &wireEnv{
		vars:  make(map[string]int64, len(e.vars)),
		conds: make(map[string]bool, len(e.conds)),
		toks:  append([]wireTok(nil), e.toks...),
	}
	for k, v := range e.vars {
		c.vars[k] = v
	}
	for k, v := range e.conds {
		c.conds[k] = v
	}
	return c
}

func (e *wireEnv) emit(t wireTok) { e.toks = append(e.toks, t) }

// wireIssue is an extraction problem (reported only by codecpair, so the
// other family members don't duplicate it).
type wireIssue struct {
	pos token.Pos
	msg string
}

// wireWalker walks annotated function bodies.
type wireWalker struct {
	pass      *Pass
	blocks    map[types.Object]*opBlock
	funcDecls map[types.Object]*ast.FuncDecl
	issues    []wireIssue
	capped    bool
}

func newWireWalker(pass *Pass) *wireWalker {
	w := &wireWalker{
		pass:      pass,
		blocks:    collectOpBlocks(pass),
		funcDecls: make(map[types.Object]*ast.FuncDecl),
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok {
				if obj := pass.TypesInfo.Defs[fn.Name]; obj != nil {
					w.funcDecls[obj] = fn
				}
			}
		}
	}
	return w
}

func (w *wireWalker) issue(pos token.Pos, format string, args ...any) {
	w.issues = append(w.issues, wireIssue{pos: pos, msg: fmt.Sprintf(format, args...)})
}

// walkBody runs every statement over the live path set.
func (w *wireWalker) walkBody(stmts []ast.Stmt, envs []*wireEnv) []*wireEnv {
	for _, s := range stmts {
		var next []*wireEnv
		for _, e := range envs {
			if e.done {
				next = append(next, e)
				continue
			}
			next = append(next, w.walkStmt(s, e)...)
		}
		if len(next) > wireMaxPaths {
			if !w.capped {
				w.capped = true
				w.issue(s.Pos(), "codec walk exceeds %d paths; simplify the function or split the codec", wireMaxPaths)
			}
			next = next[:wireMaxPaths]
		}
		envs = next
	}
	return envs
}

func (w *wireWalker) walkStmt(s ast.Stmt, env *wireEnv) []*wireEnv {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.walkBody(s.List, []*wireEnv{env})

	case *ast.IfStmt:
		envs := []*wireEnv{env}
		if s.Init != nil {
			envs = w.walkBody([]ast.Stmt{s.Init}, envs)
		}
		var out []*wireEnv
		for _, e := range envs {
			if e.done {
				out = append(out, e)
				continue
			}
			switch {
			case mentionsIdent(s.Cond, pcEscapeName):
				// PC nibble idiom: one branch reads the inline nibble, the
				// other the escaped uvarint. Fold to a single pc op.
				e.emit(wireTok{kind: wirePC, pos: s.Pos()})
				out = append(out, e)
			case mentionsVarintBoundary(s.Cond):
				// One-byte varint fast path: both branches decode the same
				// zigzag varint.
				e.emit(wireTok{kind: wireVarint, pos: s.Pos()})
				out = append(out, e)
			default:
				if v, ok := w.evalBool(s.Cond, e); ok {
					out = append(out, w.walkBranch(s, v, e)...)
					continue
				}
				key := types.ExprString(s.Cond)
				if v, seen := e.conds[key]; seen {
					out = append(out, w.walkBranch(s, v, e)...)
					continue
				}
				t := e.clone()
				t.conds[key] = true
				out = append(out, w.walkBranch(s, true, t)...)
				e.conds[key] = false
				out = append(out, w.walkBranch(s, false, e)...)
			}
		}
		return out

	case *ast.SwitchStmt:
		// Generic (non-dispatch) switch: fork one path per arm. Dispatch
		// switches are handled by extractDec, which walks each case clause
		// with the tag bound to one opcode; a switch reached here inside an
		// arm is treated as opaque control flow.
		envs := []*wireEnv{env}
		if s.Init != nil {
			envs = w.walkBody([]ast.Stmt{s.Init}, envs)
		}
		var out []*wireEnv
		hasDefault := false
		for _, e := range envs {
			for _, cc := range s.Body.List {
				clause := cc.(*ast.CaseClause)
				if clause.List == nil {
					hasDefault = true
				}
				out = append(out, w.walkBody(clause.Body, []*wireEnv{e.clone()})...)
			}
			if !hasDefault {
				out = append(out, e)
			}
		}
		return out

	case *ast.ReturnStmt:
		w.collectCalls(s, env)
		env.done = true
		if w.isErrorReturn(s) {
			env.dead = true
		}
		return []*wireEnv{env}

	case *ast.BranchStmt:
		env.done = true
		return []*wireEnv{env}

	case *ast.ForStmt, *ast.RangeStmt:
		// Loops never carry per-event codec ops in this codebase (the
		// varint primitives own the only loops); treat as opaque.
		return []*wireEnv{env}

	case *ast.AssignStmt:
		w.collectCalls(s, env)
		w.trackAssign(s, env)
		return []*wireEnv{env}

	default:
		w.collectCalls(s, env)
		return []*wireEnv{env}
	}
}

func (w *wireWalker) walkBranch(s *ast.IfStmt, cond bool, env *wireEnv) []*wireEnv {
	if cond {
		return w.walkBody(s.Body.List, []*wireEnv{env})
	}
	if s.Else == nil {
		return []*wireEnv{env}
	}
	return w.walkBody([]ast.Stmt{s.Else}, []*wireEnv{env})
}

// collectCalls scans one non-control statement for codec primitives in
// evaluation order, emitting their ops into env.
func (w *wireWalker) collectCalls(n ast.Node, env *wireEnv) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			name := wireCalleeName(n)
			switch name {
			case "append":
				if len(n.Args) >= 2 {
					for _, arg := range n.Args[1:] {
						w.opTokenFromExpr(arg, env)
					}
				}
				return false
			case "appendUvarint", "uvarint", "uvarintChecked":
				env.emit(wireTok{kind: wireUvarint, pos: n.Pos()})
				return false
			case "appendVarint", "varint", "varintChecked":
				env.emit(wireTok{kind: wireVarint, pos: n.Pos()})
				return false
			case "panic":
				env.done, env.dead = true, true
				return false
			default:
				if w.callPanics(n) {
					env.done, env.dead = true, true
					return false
				}
			}
		}
		return true
	})
}

// opTokenFromExpr classifies one buffer-append argument as an opcode
// byte, with or without the PC nibble idiom.
func (w *wireWalker) opTokenFromExpr(arg ast.Expr, env *wireEnv) {
	expr := ast.Unparen(arg)
	if be, ok := expr.(*ast.BinaryExpr); ok && be.Op == token.OR {
		// op | <nibble>: the left side is the opcode, the right side the
		// PC nibble — an escape marker if it mentions pcEscape.
		v, block, ok := w.evalInt(be.X, env)
		if !ok {
			w.issue(arg.Pos(), "cannot determine the opcode value of this buffer append; codec appends must use opcode constants or concretely tracked opcode variables")
			return
		}
		mode := pcModeInline
		if mentionsIdent(be.Y, pcEscapeName) {
			mode = pcModeEscape
		}
		env.emit(wireTok{kind: wireOp, op: v, pcMode: mode, block: block, pos: arg.Pos()})
		return
	}
	v, block, ok := w.evalInt(expr, env)
	if !ok {
		w.issue(arg.Pos(), "cannot determine the opcode value of this buffer append; codec appends must use opcode constants or concretely tracked opcode variables")
		return
	}
	env.emit(wireTok{kind: wireOp, op: v, block: block, pos: arg.Pos()})
}

// trackAssign keeps opcode variables concrete across assignments.
func (w *wireWalker) trackAssign(s *ast.AssignStmt, env *wireEnv) {
	if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
		id, ok := s.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		switch s.Tok {
		case token.ASSIGN, token.DEFINE:
			if v, _, ok := w.evalInt(s.Rhs[0], env); ok {
				env.vars[id.Name] = v
				return
			}
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
			if cur, have := env.vars[id.Name]; have {
				if d, _, ok := w.evalInt(s.Rhs[0], env); ok {
					switch s.Tok {
					case token.ADD_ASSIGN:
						env.vars[id.Name] = cur + d
					case token.SUB_ASSIGN:
						env.vars[id.Name] = cur - d
					case token.OR_ASSIGN:
						env.vars[id.Name] = cur | d
					case token.AND_ASSIGN:
						env.vars[id.Name] = cur & d
					case token.XOR_ASSIGN:
						env.vars[id.Name] = cur ^ d
					}
					return
				}
			}
		}
		delete(env.vars, id.Name)
		return
	}
	// Multi-assign (pc, i = uvarint(...)): every plain-ident target loses
	// its tracked value.
	for _, lhs := range s.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			delete(env.vars, id.Name)
		}
	}
}

// evalInt evaluates expr to a concrete integer using package constants
// and the path's tracked variables. The returned block is the opcode
// const block of the first block constant the expression references.
func (w *wireWalker) evalInt(expr ast.Expr, env *wireEnv) (int64, *opBlock, bool) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if obj := w.pass.TypesInfo.Uses[e]; obj != nil {
			if cst, ok := obj.(*types.Const); ok {
				if v, ok := constant.Int64Val(constant.ToInt(cst.Val())); ok {
					return v, w.blocks[obj], true
				}
			}
		}
		if v, ok := env.vars[e.Name]; ok {
			return v, nil, true
		}
	case *ast.BasicLit:
		if tv, ok := w.pass.TypesInfo.Types[e]; ok && tv.Value != nil {
			if v, ok := constant.Int64Val(constant.ToInt(tv.Value)); ok {
				return v, nil, true
			}
		}
	case *ast.BinaryExpr:
		x, bx, okx := w.evalInt(e.X, env)
		y, by, oky := w.evalInt(e.Y, env)
		if !okx || !oky {
			return 0, nil, false
		}
		block := bx
		if block == nil {
			block = by
		}
		switch e.Op {
		case token.ADD:
			return x + y, block, true
		case token.SUB:
			return x - y, block, true
		case token.OR:
			return x | y, block, true
		case token.AND:
			return x & y, block, true
		case token.XOR:
			return x ^ y, block, true
		case token.SHL:
			return x << uint(y), block, true
		case token.SHR:
			return x >> uint(y), block, true
		}
	case *ast.UnaryExpr:
		if v, b, ok := w.evalInt(e.X, env); ok {
			switch e.Op {
			case token.SUB:
				return -v, b, true
			case token.ADD:
				return v, b, true
			case token.XOR:
				return ^v, b, true
			}
		}
	case *ast.CallExpr:
		// Type conversion (byte(x), uint64(x)): evaluate the operand.
		if len(e.Args) == 1 {
			if tv, ok := w.pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() {
				return w.evalInt(e.Args[0], env)
			}
		}
	}
	// Whole-expression constant folding (covers selector-qualified
	// constants and anything the type checker already evaluated).
	if tv, ok := w.pass.TypesInfo.Types[expr]; ok && tv.Value != nil {
		if v, ok := constant.Int64Val(constant.ToInt(tv.Value)); ok {
			return v, nil, true
		}
	}
	return 0, nil, false
}

// evalBool evaluates a branch condition over tracked values.
func (w *wireWalker) evalBool(expr ast.Expr, env *wireEnv) (bool, bool) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		switch e.Name {
		case "true":
			return true, true
		case "false":
			return false, true
		}
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			if v, ok := w.evalBool(e.X, env); ok {
				return !v, true
			}
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND, token.LOR:
			x, okx := w.evalBool(e.X, env)
			if okx && ((e.Op == token.LAND && !x) || (e.Op == token.LOR && x)) {
				return x, true
			}
			y, oky := w.evalBool(e.Y, env)
			if okx && oky {
				if e.Op == token.LAND {
					return x && y, true
				}
				return x || y, true
			}
		default:
			x, _, okx := w.evalInt(e.X, env)
			y, _, oky := w.evalInt(e.Y, env)
			if okx && oky {
				switch e.Op {
				case token.EQL:
					return x == y, true
				case token.NEQ:
					return x != y, true
				case token.LSS:
					return x < y, true
				case token.LEQ:
					return x <= y, true
				case token.GTR:
					return x > y, true
				case token.GEQ:
					return x >= y, true
				}
			}
		}
	}
	return false, false
}

// isErrorReturn reports whether the return carries a non-nil error value
// — a decode failure path, not a wire layout.
func (w *wireWalker) isErrorReturn(ret *ast.ReturnStmt) bool {
	for _, r := range ret.Results {
		if id, ok := ast.Unparen(r).(*ast.Ident); ok && id.Name == "nil" {
			continue
		}
		if tv, ok := w.pass.TypesInfo.Types[r]; ok && tv.Type != nil && isErrorType(tv.Type) {
			return true
		}
	}
	return false
}

// callPanics reports whether the call targets a same-package function
// whose body (one level deep) panics — the badOp/badEOF out-of-line
// pattern that keeps hot loops escape-free.
func (w *wireWalker) callPanics(call *ast.CallExpr) bool {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = w.pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = w.pass.TypesInfo.Uses[fun.Sel]
	}
	if obj == nil {
		return false
	}
	decl, ok := w.funcDecls[obj]
	if !ok || decl.Body == nil {
		return false
	}
	panics := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "panic" {
				panics = true
			}
		}
		return !panics
	})
	return panics
}

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if named, ok := t.(*types.Named); ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
		return true
	}
	iface, ok := t.Underlying().(*types.Interface)
	return ok && iface.NumMethods() == 1 && iface.Method(0).Name() == "Error"
}

func wireCalleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

func mentionsIdent(expr ast.Expr, name string) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

// mentionsVarintBoundary reports whether the condition compares against
// the LEB128 continuation boundary (0x80) — the one-byte varint fast path.
func mentionsVarintBoundary(expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if lit, ok := n.(*ast.BasicLit); ok && lit.Kind == token.INT {
			if lit.Value == "0x80" || lit.Value == "128" {
				found = true
			}
		}
		return !found
	})
	return found
}

// ---------------------------------------------------------------------
// Arm extraction
// ---------------------------------------------------------------------

// wireArm is one opcode's canonical payload sequence on one codec side.
type wireArm struct {
	op   int64
	name string
	seq  []string
	pos  token.Pos
	fn   *codecFn
}

func seqString(seq []string) string {
	if len(seq) == 0 {
		return "(empty)"
	}
	return strings.Join(seq, " ")
}

// decCodec is one decoder function's extracted dispatch.
type decCodec struct {
	fn       *codecFn
	arms     map[int64]*wireArm
	switches []*dispatchSwitch
}

// dispatchSwitch is an opcode dispatch switch inside a decoder.
type dispatchSwitch struct {
	sw       *ast.SwitchStmt
	tag      string
	block    *opBlock
	def      *ast.CaseClause // nil when absent
	caseVals map[int64]bool
}

// streamCodec is everything extracted for one annotated stream.
type streamCodec struct {
	name    string
	encArms map[int64]*wireArm
	encFns  []*codecFn
	decs    []*decCodec
	block   *opBlock
}

// wireInfo is the extraction result for one package.
type wireInfo struct {
	streams map[string]*streamCodec
	names   []string // sorted stream names
	issues  []wireIssue
}

// extractWire runs the walker over every annotated function and builds
// per-stream codec summaries. Extraction problems land in issues (only
// codecpair reports them, so the family does not triple-report).
func extractWire(pass *Pass) *wireInfo {
	info := &wireInfo{streams: make(map[string]*streamCodec)}
	fns := parseCodecFuncs(pass, false)
	if len(fns) == 0 {
		return info
	}
	w := newWireWalker(pass)
	for _, fn := range fns {
		st := info.streams[fn.stream]
		if st == nil {
			st = &streamCodec{name: fn.stream, encArms: make(map[int64]*wireArm)}
			info.streams[fn.stream] = st
			info.names = append(info.names, fn.stream)
		}
		if fn.enc {
			st.encFns = append(st.encFns, fn)
			extractEnc(w, fn, st)
		} else {
			st.decs = append(st.decs, extractDec(w, fn))
		}
	}
	sort.Strings(info.names)
	for _, name := range info.names {
		st := info.streams[name]
		if st.block != nil {
			continue
		}
		// Dec-only streams still know their block from the dispatch switch.
		for _, dec := range st.decs {
			for _, ds := range dec.switches {
				st.block = ds.block
			}
		}
	}
	info.issues = w.issues
	return info
}

// extractEnc walks one encoder function and folds its paths into the
// stream's per-opcode arm map.
func extractEnc(w *wireWalker, fn *codecFn, st *streamCodec) {
	if fn.decl.Body == nil {
		return
	}
	env := &wireEnv{vars: make(map[string]int64), conds: make(map[string]bool)}
	envs := w.walkBody(fn.decl.Body.List, []*wireEnv{env})
	for _, e := range envs {
		if e.dead {
			continue
		}
		arms, ok := splitEncArms(w, fn, e.toks)
		if !ok {
			continue
		}
		for _, arm := range arms {
			if st.block == nil {
				st.block = arm.tokBlock
			}
			prev, seen := st.encArms[arm.op]
			if !seen {
				st.encArms[arm.op] = &arm.wireArm
				continue
			}
			if seqString(prev.seq) != seqString(arm.seq) {
				w.issue(arm.pos, "opcode %s is encoded as [%s] here but as [%s] in %s; one opcode must have one payload layout",
					arm.name, seqString(arm.seq), seqString(prev.seq), prev.fn.name())
			}
		}
	}
}

// tokArm is a wireArm plus the opcode const block it was attributed to.
type tokArm struct {
	wireArm
	tokBlock *opBlock
}

// splitEncArms slices one path's op list into per-opcode arms: each op
// byte starts an arm; pc-mode op bytes canonicalize into a leading pc op
// (the escape form consumes its trailing uvarint PC).
func splitEncArms(w *wireWalker, fn *codecFn, toks []wireTok) ([]*tokArm, bool) {
	var arms []*tokArm
	var cur *tokArm
	consumePC := false
	for _, t := range toks {
		if t.kind == wireOp {
			name := fmt.Sprintf("%d", t.op)
			if t.block != nil {
				name = t.block.opName(t.op)
			}
			cur = &tokArm{wireArm: wireArm{op: t.op, name: name, pos: t.pos, fn: fn}, tokBlock: t.block}
			arms = append(arms, cur)
			consumePC = false
			switch t.pcMode {
			case pcModeInline:
				cur.seq = append(cur.seq, wirePC)
			case pcModeEscape:
				cur.seq = append(cur.seq, wirePC)
				consumePC = true
			}
			continue
		}
		if cur == nil {
			w.issue(t.pos, "codec %s emits a %s payload before any opcode byte", fn.name(), t.kind)
			return nil, false
		}
		if consumePC {
			if t.kind != wireUvarint {
				w.issue(t.pos, "escaped-PC opcode byte must be followed by a uvarint PC, found %s", t.kind)
				return nil, false
			}
			consumePC = false
			continue
		}
		cur.seq = append(cur.seq, t.kind)
	}
	if consumePC {
		w.issue(toks[len(toks)-1].pos, "escaped-PC opcode byte is not followed by its uvarint PC")
		return nil, false
	}
	return arms, true
}

// extractDec finds the decoder's opcode dispatch switches and walks each
// case clause once per opcode with the tag bound concretely.
func extractDec(w *wireWalker, fn *codecFn) *decCodec {
	dec := &decCodec{fn: fn, arms: make(map[int64]*wireArm)}
	if fn.decl.Body == nil {
		return dec
	}
	ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok {
			return true
		}
		ds := classifyDispatch(w, sw)
		if ds == nil {
			return true
		}
		dec.switches = append(dec.switches, ds)
		for _, cc := range sw.Body.List {
			clause := cc.(*ast.CaseClause)
			if clause.List == nil {
				continue
			}
			for _, caseExpr := range clause.List {
				v, block, ok := w.evalInt(caseExpr, &wireEnv{})
				if !ok {
					continue
				}
				env := &wireEnv{vars: map[string]int64{ds.tag: v}, conds: make(map[string]bool)}
				envs := w.walkBody(clause.Body, []*wireEnv{env})
				name := opNameFor(block, ds.block, v)
				for _, e := range envs {
					if e.dead {
						continue
					}
					seq := make([]string, 0, len(e.toks))
					for _, t := range e.toks {
						seq = append(seq, t.kind)
					}
					prev, seen := dec.arms[v]
					if !seen {
						dec.arms[v] = &wireArm{op: v, name: name, seq: seq, pos: clause.Pos(), fn: fn}
						continue
					}
					if seqString(prev.seq) != seqString(seq) {
						w.issue(clause.Pos(), "decoder arm for opcode %s in %s is not structurally constant: decodes [%s] on one path and [%s] on another",
							name, fn.name(), seqString(prev.seq), seqString(seq))
					}
				}
			}
		}
		return false // don't re-classify nested switches
	})
	return dec
}

func opNameFor(block, fallback *opBlock, v int64) string {
	if block != nil {
		return block.opName(v)
	}
	if fallback != nil {
		return fallback.opName(v)
	}
	return fmt.Sprintf("%d", v)
}

// classifyDispatch recognizes an opcode dispatch switch: an ident tag
// with at least one case, where every case expression is a constant from
// one opcode const block.
func classifyDispatch(w *wireWalker, sw *ast.SwitchStmt) *dispatchSwitch {
	tag, ok := ast.Unparen(sw.Tag).(*ast.Ident)
	if !ok || sw.Body == nil {
		return nil
	}
	ds := &dispatchSwitch{sw: sw, tag: tag.Name, caseVals: make(map[int64]bool)}
	cases := 0
	for _, cc := range sw.Body.List {
		clause, ok := cc.(*ast.CaseClause)
		if !ok {
			return nil
		}
		if clause.List == nil {
			ds.def = clause
			continue
		}
		for _, e := range clause.List {
			id, ok := ast.Unparen(e).(*ast.Ident)
			if !ok {
				return nil
			}
			obj := w.pass.TypesInfo.Uses[id]
			block, inBlock := w.blocks[obj]
			if !inBlock {
				return nil
			}
			if ds.block == nil {
				ds.block = block
			}
			if ds.block != block {
				return nil
			}
			v, ok := block.values[id.Name]
			if !ok {
				return nil
			}
			ds.caseVals[v] = true
			cases++
		}
	}
	if cases == 0 || ds.block == nil {
		return nil
	}
	return ds
}

// ---------------------------------------------------------------------
// codecpair
// ---------------------------------------------------------------------

// CodecPair verifies encoder/decoder parity for every annotated wire
// stream: each side's per-opcode payload op sequence must match, every
// encoded opcode must be dispatched by every decoder of the stream, and
// every dispatched opcode must be encoded by someone. An asymmetry here
// is a silent corruption bug — the decoder would misread every event
// after the first mismatched payload.
var CodecPair = &Analyzer{
	Name: "codecpair",
	Doc: "verifies //popt:codec encoder/decoder parity per wire stream: " +
		"symmetric per-opcode payload op sequences, no opcode encoded but " +
		"never dispatched, none dispatched but never encoded",
	Run: runCodecPair,
}

func runCodecPair(pass *Pass) error {
	fns := parseCodecFuncs(pass, true)
	if len(fns) == 0 {
		return nil
	}
	info := extractWire(pass)
	for _, iss := range info.issues {
		pass.Reportf(iss.pos, "%s", iss.msg)
	}
	for _, name := range info.names {
		st := info.streams[name]
		if len(st.encFns) == 0 {
			for _, dec := range st.decs {
				pass.Reportf(dec.fn.decl.Pos(), "stream %q has decoder annotations but no //popt:codec %s enc function", name, name)
			}
			continue
		}
		if len(st.decs) == 0 {
			pass.Reportf(st.encFns[0].decl.Pos(), "stream %q has encoder annotations but no //popt:codec %s dec function", name, name)
			continue
		}
		encOps := make([]int64, 0, len(st.encArms))
		for op := range st.encArms {
			encOps = append(encOps, op)
		}
		sort.Slice(encOps, func(i, j int) bool { return encOps[i] < encOps[j] })
		for _, dec := range st.decs {
			if len(dec.switches) == 0 {
				pass.Reportf(dec.fn.decl.Pos(), "decoder %s of stream %q has no opcode dispatch switch; the codecpair contract needs one switch over the opcode constants", dec.fn.name(), name)
				continue
			}
			for _, op := range encOps {
				enc := st.encArms[op]
				d, ok := dec.arms[op]
				if !ok {
					pass.Reportf(enc.pos, "opcode %s of stream %q is encoded by %s but never dispatched in decoder %s",
						enc.name, name, enc.fn.name(), dec.fn.name())
					continue
				}
				if seqString(enc.seq) != seqString(d.seq) {
					pass.Reportf(d.pos, "asymmetric codec for opcode %s of stream %q: %s encodes [%s] but %s decodes [%s]",
						enc.name, name, enc.fn.name(), seqString(enc.seq), dec.fn.name(), seqString(d.seq))
				}
			}
			decOps := make([]int64, 0, len(dec.arms))
			for op := range dec.arms {
				decOps = append(decOps, op)
			}
			sort.Slice(decOps, func(i, j int) bool { return decOps[i] < decOps[j] })
			for _, op := range decOps {
				if _, ok := st.encArms[op]; !ok {
					d := dec.arms[op]
					pass.Reportf(d.pos, "opcode %s of stream %q is dispatched in decoder %s but never encoded",
						d.name, name, dec.fn.name())
				}
			}
		}
	}
	return nil
}
