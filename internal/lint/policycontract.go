package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PolicyContract enforces the statically checkable half of the
// cache.Policy contract (the dynamic half lives in cache.NewCheckedPolicy):
//
//   - Victim(set int, lines []Line, acc ...) int must treat lines as
//     read-only borrowed storage: it aliases the Level's set array, so a
//     write corrupts simulator state and a retained reference lets later
//     fills mutate policy-held data. The analyzer flags writes through
//     the parameter (including via local aliases) and stores of the
//     parameter into anything that outlives the call.
//   - Every type implementing the Policy method set must consult
//     Geometry.ReservedWays somewhere in its own (or embedded) methods,
//     or visibly delegate victim selection to another policy. A policy
//     that never reads ReservedWays will hand out reserved ways the
//     moment a P-OPT configuration pins Rereference Matrix columns.
//
// Matching is structural (parameter/receiver shapes and the type names
// Line and Geometry), so the analyzer works identically on the real
// internal/cache types and on self-contained test fixtures.
var PolicyContract = &Analyzer{
	Name: "policycontract",
	Doc: "flags Policy.Victim implementations that write to or retain the " +
		"borrowed lines slice, and Policy implementations that never consult " +
		"Geometry.ReservedWays",
	Run: runPolicyContract,
}

func runPolicyContract(pass *Pass) error {
	// Collect method declarations grouped by receiver base type name.
	methods := make(map[string][]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			if name := recvTypeName(fd.Recv.List[0].Type); name != "" {
				methods[name] = append(methods[name], fd)
			}
		}
	}
	for typeName, decls := range methods {
		var victim, bind *ast.FuncDecl
		for _, fd := range decls {
			switch {
			case fd.Name.Name == "Victim" && isVictimSig(pass, fd):
				victim = fd
			case fd.Name.Name == "Bind" && isBindSig(pass, fd):
				bind = fd
			}
		}
		if victim == nil {
			continue
		}
		checkVictimBody(pass, victim)
		// The ReservedWays obligation only applies to full Policy
		// implementations (Bind+Victim present).
		if bind != nil && !readsReservedWays(pass, methods, typeName, nil) && !delegatesVictim(pass, victim) {
			pass.Reportf(bind.Name.Pos(),
				"policy %s binds a Geometry but no method reads Geometry.ReservedWays; Victim will return reserved ways when a level pins metadata columns",
				typeName)
		}
	}
	return nil
}

// recvTypeName returns the base type name of a method receiver.
func recvTypeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return recvTypeName(e.X)
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(e.X)
	default:
		return ""
	}
}

// isVictimSig reports whether fd is func(int, []Line, T) int for a named
// struct type called Line.
func isVictimSig(pass *Pass, fd *ast.FuncDecl) bool {
	fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Params().Len() != 3 || sig.Results().Len() != 1 {
		return false
	}
	if b, ok := sig.Params().At(0).Type().(*types.Basic); !ok || b.Kind() != types.Int {
		return false
	}
	if b, ok := sig.Results().At(0).Type().(*types.Basic); !ok || b.Kind() != types.Int {
		return false
	}
	sl, ok := sig.Params().At(1).Type().(*types.Slice)
	if !ok {
		return false
	}
	return isNamedStruct(sl.Elem(), "Line")
}

// isBindSig reports whether fd is func(Geometry) for a named struct type
// called Geometry.
func isBindSig(pass *Pass, fd *ast.FuncDecl) bool {
	fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	return sig.Params().Len() == 1 && isNamedStruct(sig.Params().At(0).Type(), "Geometry")
}

func isNamedStruct(t types.Type, name string) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != name {
		return false
	}
	_, isStruct := named.Underlying().(*types.Struct)
	return isStruct
}

// checkVictimBody flags writes through (or stores of) the lines parameter,
// tracking local slice aliases conservatively.
func checkVictimBody(pass *Pass, fd *ast.FuncDecl) {
	if fd.Body == nil {
		return
	}
	param := victimLinesParam(pass, fd)
	if param == nil {
		return // unnamed or blank parameter: nothing can be misused
	}
	aliases := map[types.Object]bool{param: true}
	isAliasRooted := func(e ast.Expr) bool { return aliasRoot(pass, e, aliases) }
	// Alias discovery runs before the write check so ordering inside the
	// body does not matter for detection (a later write through an alias
	// declared earlier is still caught; the reverse cannot compile).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !isAliasValue(pass, rhs, aliases) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := lhsObject(pass, id); obj != nil {
					aliases[obj] = true
				}
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				// Rebinding the alias variable itself is harmless.
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := lhsObject(pass, id); obj != nil && aliases[obj] {
						continue
					}
				}
				if isAliasRooted(lhs) {
					pass.Reportf(lhs.Pos(),
						"Victim writes through the lines parameter (%s); lines aliases the level's set storage and must not be modified",
						exprString(lhs))
				}
				if i < len(n.Rhs) && isAliasValue(pass, n.Rhs[i], aliases) && !isLocalTarget(pass, lhs, aliases) {
					pass.Reportf(n.Rhs[i].Pos(),
						"Victim stores the lines parameter in %s; lines is borrowed for the duration of the call and must not be retained",
						exprString(lhs))
				}
			}
		case *ast.IncDecStmt:
			if isAliasRooted(n.X) {
				pass.Reportf(n.X.Pos(),
					"Victim writes through the lines parameter (%s); lines aliases the level's set storage and must not be modified",
					exprString(n.X))
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND && isAliasRooted(n.X) {
				pass.Reportf(n.Pos(),
					"Victim takes the address of %s inside the borrowed lines slice; the pointer outlives the contract's read-only borrow",
					exprString(n.X))
			}
		}
		return true
	})
}

// victimLinesParam returns the types.Object of Victim's second parameter.
func victimLinesParam(pass *Pass, fd *ast.FuncDecl) types.Object {
	count := 0
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if count == 1 {
				if name.Name == "_" {
					return nil
				}
				return pass.TypesInfo.Defs[name]
			}
			count++
		}
		if len(field.Names) == 0 {
			count++
		}
	}
	return nil
}

// aliasRoot reports whether e is an index/slice/field/paren chain rooted
// at a tracked alias (i.e. writing to it writes the borrowed storage).
func aliasRoot(pass *Pass, e ast.Expr, aliases map[types.Object]bool) bool {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[x]
			if obj == nil {
				obj = pass.TypesInfo.Defs[x]
			}
			return obj != nil && aliases[obj]
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return false
		}
	}
}

// isAliasValue reports whether evaluating e yields a slice aliasing the
// borrowed storage: the alias itself or a re-slice of it.
func isAliasValue(pass *Pass, e ast.Expr, aliases map[types.Object]bool) bool {
	switch x := e.(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[x]
		return obj != nil && aliases[obj]
	case *ast.SliceExpr:
		return isAliasValue(pass, x.X, aliases)
	case *ast.ParenExpr:
		return isAliasValue(pass, x.X, aliases)
	default:
		return false
	}
}

// isLocalTarget reports whether lhs is a plain local variable (storing an
// alias there only extends tracking, it does not escape the call).
func isLocalTarget(pass *Pass, lhs ast.Expr, aliases map[types.Object]bool) bool {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return false
	}
	obj := lhsObject(pass, id)
	if obj == nil {
		return id.Name == "_"
	}
	if v, ok := obj.(*types.Var); ok {
		// Package-level variables escape; function-scoped ones do not.
		return v.Parent() != v.Pkg().Scope()
	}
	return false
}

func lhsObject(pass *Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

// readsReservedWays reports whether any method of typeName — or of a
// same-package named type it embeds — selects a field called
// ReservedWays. seen guards against embedding cycles.
func readsReservedWays(pass *Pass, methods map[string][]*ast.FuncDecl, typeName string, seen map[string]bool) bool {
	if seen == nil {
		seen = make(map[string]bool)
	}
	if seen[typeName] {
		return false
	}
	seen[typeName] = true
	for _, fd := range methods[typeName] {
		found := false
		ast.Inspect(fd, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "ReservedWays" {
				return true
			}
			if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
				found = true
				return false
			}
			// Unqualified package-scope selection (x.ReservedWays where x
			// is a Geometry value reached without a Selection entry) does
			// not occur for field reads; methods named ReservedWays are
			// deliberately not counted.
			return true
		})
		if found {
			return true
		}
	}
	// Recurse into embedded same-package named types (e.g. rripBase).
	for name := range embeddedTypeNames(pass, typeName) {
		if readsReservedWays(pass, methods, name, seen) {
			return true
		}
	}
	return false
}

// embeddedTypeNames returns names of same-package named struct types
// embedded in typeName.
func embeddedTypeNames(pass *Pass, typeName string) map[string]bool {
	out := make(map[string]bool)
	obj := pass.Pkg.Scope().Lookup(typeName)
	if obj == nil {
		return out
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return out
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return out
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Embedded() {
			continue
		}
		t := f.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok && n.Obj().Pkg() == pass.Pkg {
			out[n.Obj().Name()] = true
		}
	}
	return out
}

// delegatesVictim reports whether Victim's body calls another Victim
// method — delegation moves the ReservedWays obligation to the delegate.
func delegatesVictim(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Body == nil {
		return false
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Victim" {
			return true
		}
		if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.MethodVal {
			found = true
			return false
		}
		return true
	})
	return found
}
