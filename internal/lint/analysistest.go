package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// This file is the testdata-driven test harness, mirroring
// golang.org/x/tools/go/analysis/analysistest: test packages live under
// testdata/src/<pkg>/, and every line that should produce a finding
// carries a trailing comment of the form
//
//	// want "regexp"
//	// want "first" "second"        (two findings on one line)
//
// RunTest loads the package (resolving imports of sibling testdata
// packages and the standard library), runs the analyzer, and fails the
// test on any unmatched expectation or unexpected finding.

// TB is the subset of *testing.T the harness needs (kept as an interface
// so the harness itself stays testable and testing stays unimported).
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// A want payload is one or more patterns, each either "double-quoted"
// (backslash escapes) or `backtick-quoted` (verbatim), like analysistest.
var (
	wantPattern = "(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)"
	wantRe      = regexp.MustCompile(`// want ((?:` + wantPattern + `\s*)+)$`)
	wantQuoted  = regexp.MustCompile(wantPattern)
)

// RunTest runs a on the testdata package at dir/src/<pkg> and checks the
// findings against the package's // want comments.
func RunTest(t TB, testdata string, a *Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		runTestPkg(t, testdata, a, pkg)
	}
}

type testLoader struct {
	root string
	fset *token.FileSet
	std  types.ImporterFrom
	pkgs map[string]*types.Package
}

func (l *testLoader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if dir := filepath.Join(l.root, "src", path); dirExists(dir) {
		files, _, err := parseTestDir(l.fset, dir)
		if err != nil {
			return nil, err
		}
		conf := types.Config{Importer: l}
		pkg, err := conf.Check(path, l.fset, files, nil)
		if err != nil {
			return nil, err
		}
		l.pkgs[path] = pkg
		return pkg, nil
	}
	return l.std.Import(path)
}

func dirExists(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}

func parseTestDir(fset *token.FileSet, dir string) ([]*ast.File, []string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	var paths []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
		paths = append(paths, path)
	}
	sort.Strings(paths)
	return files, paths, nil
}

func runTestPkg(t TB, testdata string, a *Analyzer, pkgPath string) {
	t.Helper()
	fset := token.NewFileSet()
	loader := &testLoader{
		root: testdata,
		fset: fset,
		std:  importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs: make(map[string]*types.Package),
	}
	dir := filepath.Join(testdata, "src", pkgPath)
	files, _, err := parseTestDir(fset, dir)
	if err != nil {
		t.Fatalf("parsing %s: %v", dir, err)
		return
	}
	if len(files) == 0 {
		t.Fatalf("no Go files in %s", dir)
		return
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: loader}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking %s: %v", pkgPath, err)
		return
	}

	// Collect expectations from // want comments.
	type expectation struct {
		re      *regexp.Regexp
		raw     string
		matched bool
	}
	wants := make(map[string][]*expectation) // "file:line" -> expectations
	key := func(pos token.Position) string {
		return fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range wantQuoted.FindAllString(m[1], -1) {
					pattern, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want literal %s: %v", key(pos), q, err)
						return
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", key(pos), pattern, err)
						return
					}
					wants[key(pos)] = append(wants[key(pos)], &expectation{re: re, raw: pattern})
				}
			}
		}
	}

	pass := &Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
		directives: collectDirectives(fset, files),
	}
	var unexpected []string
	pass.Report = func(d Diagnostic) {
		pos := fset.Position(d.Pos)
		for _, exp := range wants[key(pos)] {
			if !exp.matched && exp.re.MatchString(d.Message) {
				exp.matched = true
				return
			}
		}
		unexpected = append(unexpected, fmt.Sprintf("%s: unexpected finding: %s", key(pos), d.Message))
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s on %s: %v", a.Name, pkgPath, err)
		return
	}
	for _, msg := range unexpected {
		t.Errorf("%s", msg)
	}
	var keys []string
	for k := range wants { //lint:ordered
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, exp := range wants[k] {
			if !exp.matched {
				t.Errorf("%s: no finding matched %q", k, exp.raw)
			}
		}
	}
}
