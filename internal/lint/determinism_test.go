package lint

import (
	"fmt"
	"strings"
	"testing"
)

func TestDeterminism(t *testing.T) {
	// The testdata package "determ" plays the role of a simulation
	// package, so the analyzer is constructed with it in scope.
	RunTest(t, "testdata", NewDeterminism("determ"), "determ")
}

func TestDeterminismOutOfScope(t *testing.T) {
	// With the default simulator scope the testdata package is exempt:
	// every // want expectation must go unmatched, which we verify by
	// swapping in a recording TB.
	rec := &recordingTB{}
	RunTest(rec, "testdata", NewDeterminism(SimPackages...), "determ")
	if rec.fatals != 0 {
		t.Fatalf("unexpected fatal: %v", rec.msgs)
	}
	if rec.errors == 0 {
		t.Fatalf("expected unmatched // want expectations when determ is out of scope")
	}
	for _, m := range rec.msgs {
		if !strings.Contains(m, "no finding matched") {
			t.Errorf("unexpected failure kind: %s", m)
		}
	}
}

type recordingTB struct {
	errors int
	fatals int
	msgs   []string
}

func (r *recordingTB) Helper() {}
func (r *recordingTB) Errorf(format string, args ...any) {
	r.errors++
	r.msgs = append(r.msgs, fmt.Sprintf(format, args...))
}
func (r *recordingTB) Fatalf(format string, args ...any) {
	r.fatals++
	r.msgs = append(r.msgs, fmt.Sprintf(format, args...))
}
