// Package lint is a self-contained static-analysis framework plus the
// poptlint analyzer suite that enforces this repository's simulator
// invariants: bit-reproducible execution (the determinism analyzer), the
// cache.Policy contract (the policycontract analyzer), and single-writer
// statistics counters (the statsdiscipline analyzer).
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis —
// Analyzer, Pass, Diagnostic, a testdata-driven test harness with
// `// want "regexp"` expectations — but is built only on the standard
// library (go/ast, go/types, go/importer, `go list`), so the module keeps
// zero external dependencies. If the repo ever vendors x/tools, each
// Analyzer here ports mechanically: Run already receives the same
// (files, type info, report func) surface.
//
// Findings can be suppressed at a specific line with a directive comment
// on the flagged line or the line directly above it:
//
//	//lint:allow <analyzer>   suppress one analyzer's finding
//	//lint:ordered            shorthand for //lint:allow determinism,
//	                          asserting a map iteration is order-insensitive
//
// Directives are deliberately per-line so an annotation cannot silently
// cover new code added nearby.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check, mirroring analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in findings and in //lint:allow
	// directives.
	Name string
	// Doc is a one-paragraph description shown by `poptlint -help`.
	Doc string
	// Run analyzes one package and reports findings via pass.Report.
	Run func(pass *Pass) error
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one type-checked package through one analyzer, mirroring
// analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)

	// directives maps file base name -> line -> analyzer names allowed
	// there ("*" entries match every analyzer). Populated by the driver.
	directives map[string]map[int][]string
}

// Reportf reports a formatted finding unless a directive suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.suppressed(pos) {
		return
	}
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// suppressed reports whether a //lint directive on the finding's line (or
// the line above) allows this analyzer.
func (p *Pass) suppressed(pos token.Pos) bool {
	if p.directives == nil {
		return false
	}
	position := p.Fset.Position(pos)
	lines := p.directives[position.Filename]
	for _, line := range []int{position.Line, position.Line - 1} {
		for _, name := range lines[line] {
			if name == "*" || name == p.Analyzer.Name {
				return true
			}
		}
	}
	return false
}

// collectDirectives scans the package's comments for //lint directives.
func collectDirectives(fset *token.FileSet, files []*ast.File) map[string]map[int][]string {
	out := make(map[string]map[int][]string)
	add := func(pos token.Pos, names ...string) {
		position := fset.Position(pos)
		if out[position.Filename] == nil {
			out[position.Filename] = make(map[int][]string)
		}
		out[position.Filename][position.Line] = append(out[position.Filename][position.Line], names...)
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				switch {
				case text == "//lint:ordered" || strings.HasPrefix(text, "//lint:ordered "):
					add(c.Pos(), "determinism")
				case strings.HasPrefix(text, "//lint:allow"):
					rest := strings.TrimPrefix(text, "//lint:allow")
					names := strings.FieldsFunc(rest, func(r rune) bool { return r == ' ' || r == ',' || r == '\t' })
					if len(names) == 0 {
						names = []string{"*"}
					}
					add(c.Pos(), names...)
				}
			}
		}
	}
	return out
}

// Finding is a rendered diagnostic from a driver run.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Pos, f.Message, f.Analyzer)
}

// RunAnalyzers applies every analyzer to every package and returns the
// findings sorted by file, line, column, and analyzer name, so driver
// output is itself deterministic.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		directives := collectDirectives(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				TypesInfo:  pkg.Info,
				directives: directives,
			}
			pass.Report = func(d Diagnostic) {
				findings = append(findings, Finding{
					Analyzer: a.Name,
					Pos:      pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: analyzer %s: %w", pkg.Path, a.Name, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
