package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SimPackages are the packages whose execution must be bit-reproducible:
// every access the simulator observes, every victim a policy picks, and
// every statistic the experiments report flows through them. A prefix
// matches the package itself and everything below it, plus its external
// test packages.
var SimPackages = []string{
	"popt/internal/cache",
	"popt/internal/core",
	"popt/internal/kernels",
	"popt/internal/graph",
	"popt/internal/mem",
	"popt/internal/perf",
	"popt/internal/sched",
	"popt/internal/multicore",
	"popt/internal/bench",
	"popt/internal/trace",
	"popt/internal/analysis",
	"popt/internal/corpus",
}

// randSourceless are math/rand package-level functions that do NOT draw
// from the process-global source and are therefore always allowed.
var randSourceless = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true, // consumes an explicit *rand.Rand
}

// NewDeterminism builds the determinism analyzer scoped to packages whose
// import path starts with one of simPrefixes (default: SimPackages). It
// flags, inside those packages:
//
//   - `for range` over a map: Go randomizes map iteration order, so any
//     observable effect of the loop body is run-to-run nondeterministic.
//     Sites proven order-insensitive carry a //lint:ordered directive.
//   - math/rand package-level draws (rand.Intn, rand.Shuffle, ...): they
//     consume the shared global source, so results depend on what else
//     ran before. Policies must hold an explicitly seeded *rand.Rand.
//   - time.Now: wall-clock reads make simulated results time-dependent;
//     simulation time must be modeled, never sampled.
func NewDeterminism(simPrefixes ...string) *Analyzer {
	if len(simPrefixes) == 0 {
		simPrefixes = SimPackages
	}
	a := &Analyzer{
		Name: "determinism",
		Doc: "flags nondeterminism inside simulation packages: map iteration, " +
			"global-source math/rand draws, and time.Now; suppress a proven " +
			"order-insensitive site with //lint:ordered",
	}
	a.Run = func(pass *Pass) error {
		if !inScope(pass.Pkg.Path(), simPrefixes) {
			return nil
		}
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.RangeStmt:
					checkMapRange(pass, n)
				case *ast.CallExpr:
					checkCall(pass, n)
				}
				return true
			})
		}
		return nil
	}
	return a
}

func inScope(path string, prefixes []string) bool {
	// External test packages share their library's scope.
	path = strings.TrimSuffix(path, "_test")
	for _, p := range prefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func checkMapRange(pass *Pass, rs *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	pass.Reportf(rs.For,
		"range over map %s iterates in randomized order; iterate sorted keys or a slice, or annotate a proven order-insensitive loop with //lint:ordered",
		exprString(rs.X))
}

func checkCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return // methods (e.g. (*rand.Rand).Intn) are the sanctioned form
	}
	switch fn.Pkg().Path() {
	case "math/rand", "math/rand/v2":
		if !randSourceless[fn.Name()] {
			pass.Reportf(call.Pos(),
				"%s.%s draws from the global math/rand source; use an explicitly seeded *rand.Rand so simulations replay bit-identically",
				fn.Pkg().Name(), fn.Name())
		}
	case "time":
		if fn.Name() == "Now" {
			pass.Reportf(call.Pos(),
				"time.Now inside a simulation package makes results wall-clock dependent; model time explicitly or move timing to a reporting package")
		}
	}
}

// exprString renders a short source-like form of an expression for
// diagnostics (identifiers and selector chains; anything else degrades to
// a placeholder).
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.ParenExpr:
		return "(" + exprString(e.X) + ")"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.CompositeLit:
		return "literal"
	default:
		return "expression"
	}
}
