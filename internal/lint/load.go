package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis. For
// packages with in-package test files, Files includes them (analyzers see
// the test code), while importers of the package see the library view.
type Package struct {
	// Path is the import path ("popt/internal/cache"); external test
	// packages carry the go convention suffix (".test" files' package,
	// e.g. "popt [popt.test]" is reported as "popt_test").
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath   string
	Dir          string
	Name         string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Imports      []string
	TestImports  []string
	XTestImports []string
}

// Loader type-checks the module's packages without golang.org/x/tools:
// package metadata comes from `go list -json`, in-module dependencies are
// type-checked recursively from source, and standard-library imports go
// through go/importer's source importer (which needs no precompiled
// export data, so it works in hermetic build environments).
type Loader struct {
	Dir  string // module root; "" = current directory
	fset *token.FileSet

	std  types.ImporterFrom
	meta map[string]*listedPackage
	libs map[string]*types.Package // import-path -> library view (no test files)
	work map[string]bool           // in-progress set for cycle detection
}

// NewLoader returns a loader rooted at dir.
func NewLoader(dir string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Dir:  dir,
		fset: fset,
		std:  importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		meta: make(map[string]*listedPackage),
		libs: make(map[string]*types.Package),
		work: make(map[string]bool),
	}
}

// Load lists the packages matching patterns (e.g. "./...") and returns an
// analysis view of each: library + in-package test files, plus a separate
// entry for any external (_test package) files. Results are sorted by
// import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	listed, err := l.goList(patterns)
	if err != nil {
		return nil, err
	}
	for _, p := range listed {
		l.meta[p.ImportPath] = p
	}
	var pkgs []*Package
	for _, p := range listed {
		if len(p.GoFiles)+len(p.TestGoFiles) > 0 {
			pkg, err := l.checkFiles(p.ImportPath, p.Name, p.Dir, append(append([]string{}, p.GoFiles...), p.TestGoFiles...))
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, pkg)
		}
		if len(p.XTestGoFiles) > 0 {
			xname := ""
			if p.Name != "" {
				xname = p.Name + "_test"
			}
			pkg, err := l.checkFiles(p.ImportPath+"_test", xname, p.Dir, p.XTestGoFiles)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, pkg)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// goList shells out to the go command for package metadata; it is the
// only part of the loader that is module-aware.
func (l *Loader) goList(patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var listed []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		listed = append(listed, &p)
	}
	return listed, nil
}

// Import implements types.Importer for the analysis type-checks: module
// packages resolve to their library view, everything else to the stdlib
// source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if p, ok := l.meta[path]; ok {
		return l.lib(p)
	}
	return l.std.Import(path)
}

// lib returns (building on demand) the library view of a module package.
func (l *Loader) lib(p *listedPackage) (*types.Package, error) {
	if pkg, ok := l.libs[p.ImportPath]; ok {
		return pkg, nil
	}
	if l.work[p.ImportPath] {
		return nil, fmt.Errorf("import cycle through %s", p.ImportPath)
	}
	l.work[p.ImportPath] = true
	defer delete(l.work, p.ImportPath)
	files, err := l.parse(p.Dir, p.GoFiles)
	if err != nil {
		return nil, err
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(p.ImportPath, l.fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
	}
	l.libs[p.ImportPath] = pkg
	return pkg, nil
}

// checkFiles parses and type-checks one analysis view with full type
// information recorded.
func (l *Loader) checkFiles(path, name, dir string, fileNames []string) (*Package, error) {
	files, err := l.parse(dir, fileNames)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	if pkg.Name() != name && name != "" {
		// go list names xtest packages "foo_test" already; this is a
		// consistency check, not a user-visible condition.
		return nil, fmt.Errorf("package %s: declared name %s, go list says %s", path, pkg.Name(), name)
	}
	return &Package{Path: path, Fset: l.fset, Files: files, Types: pkg, Info: info}, nil
}

// parse parses the named files with comments (directives live there).
func (l *Loader) parse(dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}
