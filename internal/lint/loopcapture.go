package lint

import (
	"go/ast"
	"go/types"
)

// NewLoopCapture builds the capture analyzer scoped to packages whose
// import path starts with one of simPrefixes (default: SimPackages). It
// inspects every goroutine launched lexically inside a for/range loop —
// the sweep worker-pool and parallel-fill shape — and flags:
//
//   - references to an enclosing loop's iteration variables. Go 1.22
//     gives each iteration its own variable, so this is memory-safe, but
//     the sweep engine's determinism contract wants the dataflow explicit:
//     pass the value as a call argument (`go func(lo, hi int){...}(lo,
//     hi)`), never implicitly through the closure.
//   - assignments to variables captured from the enclosing function: N
//     loop goroutines writing one captured variable is a data race (or at
//     best a scheduling-dependent result). Writes into a captured map are
//     flagged unconditionally (concurrent map writes fault); writes into
//     a captured slice are allowed only when every index is
//     goroutine-local — the disjoint-slot idiom (`errs[i] = ...` with i a
//     closure parameter) that the worker pool relies on — and writes
//     through captured pointers/selectors are flagged because the target
//     is shared unless proven frozen-fresh, which is the sharefreeze
//     analyzer's job, not a capture's.
//
// Method calls on captured values are deliberately not flagged: the sweep
// workers call s.drain/s.runCell on a shared *Sweep whose internal writes
// are lock-guarded (lockguard's jurisdiction) and read shared frozen
// artifacts (sharefreeze's jurisdiction).
func NewLoopCapture(simPrefixes ...string) *Analyzer {
	if len(simPrefixes) == 0 {
		simPrefixes = SimPackages
	}
	a := &Analyzer{
		Name: "loopcapture",
		Doc: "flags goroutines launched inside loops that capture loop " +
			"variables by reference or write captured shared state; loop " +
			"data must flow through call arguments or disjoint slice slots",
	}
	a.Run = func(pass *Pass) error {
		if !inScope(pass.Pkg.Path(), simPrefixes) {
			return nil
		}
		for _, file := range pass.Files {
			ast.Walk(&capVisitor{pass: pass, loopVars: map[types.Object]bool{}}, file)
		}
		return nil
	}
	return a
}

// capVisitor walks a file carrying the lexical loop context: how many
// loops enclose the current node and which iteration variables they
// declare. ast.Walk gives each loop's subtree a child visitor, so the
// context pops automatically.
type capVisitor struct {
	pass     *Pass
	depth    int
	loopVars map[types.Object]bool
}

func (v *capVisitor) Visit(n ast.Node) ast.Visitor {
	switch n := n.(type) {
	case *ast.ForStmt:
		return v.push(forInitVars(v.pass, n))
	case *ast.RangeStmt:
		return v.push(rangeVars(v.pass, n))
	case *ast.GoStmt:
		if v.depth > 0 {
			if fl, ok := n.Call.Fun.(*ast.FuncLit); ok {
				v.checkClosure(fl)
			}
		}
	}
	return v
}

func (v *capVisitor) push(vars []types.Object) *capVisitor {
	c := &capVisitor{pass: v.pass, depth: v.depth + 1, loopVars: make(map[types.Object]bool, len(v.loopVars)+len(vars))}
	for o := range v.loopVars { //lint:ordered
		c.loopVars[o] = true
	}
	for _, o := range vars {
		c.loopVars[o] = true
	}
	return c
}

// forInitVars returns the iteration variables a `for i := ...` header
// declares.
func forInitVars(pass *Pass, fs *ast.ForStmt) []types.Object {
	as, ok := fs.Init.(*ast.AssignStmt)
	if !ok {
		return nil
	}
	var out []types.Object
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

// rangeVars returns the key/value variables a range header declares.
func rangeVars(pass *Pass, rs *ast.RangeStmt) []types.Object {
	var out []types.Object
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

// checkClosure inspects one loop-launched goroutine closure for loop-var
// references and captured-state writes.
func (v *capVisitor) checkClosure(fl *ast.FuncLit) {
	reportedVars := map[types.Object]bool{}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			obj := v.pass.TypesInfo.Uses[n]
			if obj != nil && v.loopVars[obj] && !reportedVars[obj] {
				reportedVars[obj] = true
				v.pass.Reportf(n.Pos(),
					"goroutine launched inside a loop captures loop variable %s; pass it as a call argument so the per-iteration dataflow is explicit",
					n.Name)
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				v.checkCapturedWrite(lhs, fl)
			}
		case *ast.IncDecStmt:
			v.checkCapturedWrite(n.X, fl)
		}
		return true
	})
}

// localTo reports whether obj is declared inside the closure (parameters
// and locals), making writes through it goroutine-private.
func localTo(fl *ast.FuncLit, obj types.Object) bool {
	return obj != nil && obj.Pos() >= fl.Pos() && obj.Pos() <= fl.End()
}

// checkCapturedWrite flags an assignment target that reaches state
// captured from outside the goroutine closure.
func (v *capVisitor) checkCapturedWrite(lhs ast.Expr, fl *ast.FuncLit) {
	pass := v.pass
	switch x := lhs.(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return
		}
		obj := lhsObject(pass, x)
		if obj == nil || localTo(fl, obj) {
			return
		}
		if _, ok := obj.(*types.Var); !ok {
			return
		}
		pass.Reportf(lhs.Pos(),
			"goroutine in a loop assigns to captured variable %s; every worker shares one slot, so the result depends on scheduling — use a per-iteration variable or a channel",
			x.Name)
	case *ast.IndexExpr:
		root, _ := writeRoot(pass, x)
		if root == nil || localTo(fl, root) {
			return
		}
		if _, ok := root.(*types.Var); !ok {
			return
		}
		tv, ok := pass.TypesInfo.Types[x.X]
		if !ok {
			return
		}
		switch tv.Type.Underlying().(type) {
		case *types.Map:
			pass.Reportf(lhs.Pos(),
				"goroutine in a loop writes captured map %s; concurrent map writes fault — collect per-goroutine results and merge after the join",
				exprString(x.X))
		case *types.Slice, *types.Array, *types.Pointer:
			if !v.indexIsLocal(x.Index, fl) {
				pass.Reportf(lhs.Pos(),
					"goroutine in a loop writes captured slice %s at an index that is not goroutine-local; disjoint-slot writes must index with a closure parameter or local",
					exprString(x.X))
			}
		}
	case *ast.SelectorExpr, *ast.StarExpr:
		root, _ := writeRoot(pass, lhs)
		if root == nil || localTo(fl, root) {
			return
		}
		if _, ok := root.(*types.Var); !ok {
			return
		}
		pass.Reportf(lhs.Pos(),
			"goroutine in a loop writes shared state through captured %s; shared mutation from loop workers needs a lock (lockguard) or a frozen constructor (sharefreeze), not a bare captured pointer",
			root.Name())
	case *ast.ParenExpr:
		v.checkCapturedWrite(x.X, fl)
	}
}

// indexIsLocal reports whether every variable in an index expression is
// declared inside the closure — the disjoint-slot proof.
func (v *capVisitor) indexIsLocal(index ast.Expr, fl *ast.FuncLit) bool {
	local := true
	ast.Inspect(index, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := v.pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return true
		}
		if !localTo(fl, obj) {
			local = false
		}
		return true
	})
	return local
}
