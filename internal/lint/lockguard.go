package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockGuard enforces `//popt:guardedby <field>` annotations: every access
// to an annotated struct field must occur on a path that holds the named
// sibling guard — a sync.Mutex/RWMutex acquired by Lock/RLock, or a
// sync.Once whose Do has been entered (inside the Do closure) or has
// completed (any statement sequenced after the Do call). The analyzer is
// flow-sensitive within a function: branches merge by intersection, a
// branch that returns does not merge at all, and `defer mu.Unlock()`
// keeps the guard held to the end of the function. Goroutine closures
// start with an empty held set — a lock held at the `go` statement is not
// held by the goroutine it launches — while ordinary closures and
// deferred calls inherit the current state.
//
// This is the static twin of `go test -race` for the artifact caches: the
// dynamic detector only reports an unlocked access when two goroutines
// actually collide during a run, while lockguard flags the access on
// every path, every build.
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc: "checks that every access to a //popt:guardedby field happens " +
		"while the named sync.Mutex is held or after/inside the named " +
		"sync.Once's Do",
	Run: runLockGuard,
}

// guardSpec resolves one annotated field to its guard.
type guardSpec struct {
	guard *types.Var // the sibling guard field
	once  bool       // guard is a sync.Once (held after Do) vs a mutex
	name  string     // the annotation text, for diagnostics
}

// guardKey identifies one held guard: the root object the access chain
// bottoms out in (a local, a receiver, a package variable) plus the guard
// field within it.
type guardKey struct {
	root  types.Object
	guard *types.Var
}

type guardAnalysis struct {
	pass   *Pass
	guards map[*types.Var]guardSpec
}

func runLockGuard(pass *Pass) error {
	an := &guardAnalysis{
		pass:   pass,
		guards: make(map[*types.Var]guardSpec),
	}
	an.collectAnnotations()
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &guardWalker{an: an, fd: fd, held: map[guardKey]bool{}}
			w.walkBlock(fd.Body.List)
		}
	}
	return nil
}

// collectAnnotations finds every //popt:guardedby field in every struct
// type (named or anonymous) and resolves the guard sibling. Bad
// annotations — no such sibling, or a sibling that is not a sync
// primitive — are diagnosed at the field.
func (an *guardAnalysis) collectAnnotations() {
	for _, file := range an.pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			tv, ok := an.pass.TypesInfo.Types[st]
			if !ok {
				return true
			}
			str, ok := tv.Type.(*types.Struct)
			if !ok {
				return true
			}
			idx := 0
			for _, field := range st.Fields.List {
				n := len(field.Names)
				if n == 0 {
					n = 1 // embedded
				}
				ann := guardAnnotation(field.Doc)
				if ann == "" {
					ann = guardAnnotation(field.Comment)
				}
				for j := 0; j < n; j++ {
					if idx >= str.NumFields() {
						break
					}
					fv := str.Field(idx)
					idx++
					if ann == "" {
						continue
					}
					guard := findField(str, ann)
					switch {
					case guard == nil:
						an.pass.Reportf(field.Pos(),
							"//popt:guardedby %s on %s names no sibling field; the guard must be declared in the same struct",
							ann, fv.Name())
					case !isSyncGuard(guard.Type()):
						an.pass.Reportf(field.Pos(),
							"//popt:guardedby %s on %s: %s is %s, not a sync.Mutex, sync.RWMutex, or sync.Once",
							ann, fv.Name(), ann, guard.Type().String())
					default:
						an.guards[fv] = guardSpec{
							guard: guard,
							once:  isSyncOnce(guard.Type()),
							name:  ann,
						}
					}
				}
			}
			return true
		})
	}
}

// guardAnnotation extracts the field name from a //popt:guardedby comment.
func guardAnnotation(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(c.Text)
		if rest, ok := strings.CutPrefix(text, "//popt:guardedby"); ok {
			if fields := strings.Fields(rest); len(fields) > 0 {
				return fields[0]
			}
		}
	}
	return ""
}

func findField(str *types.Struct, name string) *types.Var {
	for i := 0; i < str.NumFields(); i++ {
		if f := str.Field(i); f.Name() == name {
			return f
		}
	}
	return nil
}

func isSyncGuard(t types.Type) bool {
	return syncTypeName(t) == "Mutex" || syncTypeName(t) == "RWMutex" || syncTypeName(t) == "Once"
}

func isSyncOnce(t types.Type) bool {
	return syncTypeName(t) == "Once"
}

func syncTypeName(t types.Type) string {
	named, ok := derefAll(t).(*types.Named)
	if !ok {
		return ""
	}
	tn := named.Obj()
	if tn.Pkg() == nil || tn.Pkg().Path() != "sync" {
		return ""
	}
	return tn.Name()
}

// guardWalker tracks the set of held guards through one function body.
type guardWalker struct {
	an   *guardAnalysis
	fd   *ast.FuncDecl
	held map[guardKey]bool
}

func (w *guardWalker) fork() *guardWalker {
	c := *w
	c.held = make(map[guardKey]bool, len(w.held))
	for k := range w.held { //lint:ordered
		c.held[k] = true
	}
	return &c
}

// mergeBranch joins a conditional path by intersection: a guard survives
// only if every merged path still holds it. terminated paths (ending in
// return) contribute nothing.
func (w *guardWalker) mergeBranch(c *guardWalker, terminated bool) {
	if terminated {
		return
	}
	for k := range w.held { //lint:ordered
		if !c.held[k] {
			delete(w.held, k)
		}
	}
}

// terminates reports whether the statement (usually a branch body) ends in
// a return — control never rejoins, so its guard state must not merge.
func terminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BlockStmt:
		if len(s.List) == 0 {
			return false
		}
		return terminates(s.List[len(s.List)-1])
	case *ast.LabeledStmt:
		return terminates(s.Stmt)
	}
	return false
}

func (w *guardWalker) walkBlock(stmts []ast.Stmt) {
	for _, s := range stmts {
		w.walkStmt(s)
	}
}

func (w *guardWalker) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.walkBlock(s.List)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.walkExpr(e)
		}
		for _, e := range s.Lhs {
			w.walkExpr(e)
		}
	case *ast.IncDecStmt:
		w.walkExpr(s.X)
	case *ast.ExprStmt:
		w.walkExpr(s.X)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.walkExpr(r)
		}
	case *ast.SendStmt:
		w.walkExpr(s.Chan)
		w.walkExpr(s.Value)
	case *ast.GoStmt:
		w.walkCall(s.Call, true, false)
	case *ast.DeferStmt:
		w.walkCall(s.Call, false, true)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.walkExpr(s.Cond)
		then := w.fork()
		then.walkStmt(s.Body)
		if s.Else != nil {
			els := w.fork()
			els.walkStmt(s.Else)
			thenEnds, elseEnds := terminates(s.Body), terminates(s.Else)
			switch {
			case thenEnds && elseEnds:
				// Nothing rejoins; keep the pre-branch state (unreachable
				// afterwards anyway).
			case thenEnds:
				w.held = els.held
			case elseEnds:
				w.held = then.held
			default:
				w.mergeBranch(then, false)
				w.mergeBranch(els, false)
			}
			return
		}
		if terminates(s.Body) {
			// The then-path leaves the function: fall through with the
			// pre-branch state.
			return
		}
		w.mergeBranch(then, false)
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		if s.Cond != nil {
			w.walkExpr(s.Cond)
		}
		it := w.fork()
		it.walkStmt(s.Body)
		if s.Post != nil {
			it.walkStmt(s.Post)
		}
		w.mergeBranch(it, false)
	case *ast.RangeStmt:
		w.walkExpr(s.X)
		it := w.fork()
		it.walkStmt(s.Body)
		w.mergeBranch(it, false)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		if s.Tag != nil {
			w.walkExpr(s.Tag)
		}
		w.walkCaseBodies(s.Body)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.walkCaseBodies(s.Body)
	case *ast.SelectStmt:
		w.walkCaseBodies(s.Body)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			if vs, ok := spec.(*ast.ValueSpec); ok {
				for _, v := range vs.Values {
					w.walkExpr(v)
				}
			}
		}
	}
}

func (w *guardWalker) walkCaseBodies(body *ast.BlockStmt) {
	for _, clause := range body.List {
		c := w.fork()
		var stmts []ast.Stmt
		switch cl := clause.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				c.walkExpr(e)
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm != nil {
				c.walkStmt(cl.Comm)
			}
			stmts = cl.Body
		}
		c.walkBlock(stmts)
		term := len(stmts) > 0 && terminates(stmts[len(stmts)-1])
		w.mergeBranch(c, term)
	}
}

func (w *guardWalker) walkExpr(e ast.Expr) {
	switch x := e.(type) {
	case nil:
	case *ast.Ident, *ast.BasicLit:
	case *ast.ParenExpr:
		w.walkExpr(x.X)
	case *ast.SelectorExpr:
		w.checkAccess(x)
		w.walkExpr(x.X)
	case *ast.IndexExpr:
		w.walkExpr(x.X)
		w.walkExpr(x.Index)
	case *ast.SliceExpr:
		w.walkExpr(x.X)
		w.walkExpr(x.Low)
		w.walkExpr(x.High)
		w.walkExpr(x.Max)
	case *ast.StarExpr:
		w.walkExpr(x.X)
	case *ast.UnaryExpr:
		w.walkExpr(x.X)
	case *ast.BinaryExpr:
		w.walkExpr(x.X)
		w.walkExpr(x.Y)
	case *ast.KeyValueExpr:
		w.walkExpr(x.Value)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			w.walkExpr(el)
		}
	case *ast.TypeAssertExpr:
		w.walkExpr(x.X)
	case *ast.FuncLit:
		// An ordinary closure is assumed to run synchronously on this
		// goroutine (callback idiom); goroutine launches are handled by
		// GoStmt with an empty held set.
		c := w.fork()
		c.walkStmt(x.Body)
	case *ast.CallExpr:
		w.walkCall(x, false, false)
	}
}

// walkCall handles one call: sync.Mutex Lock/Unlock transitions, the
// sync.Once Do construction window, and ordinary calls. goMode walks
// closure bodies with an empty held set (a new goroutine holds nothing);
// deferMode suppresses Unlock (it runs at function exit, so the guard
// stays held for the rest of the body).
func (w *guardWalker) walkCall(call *ast.CallExpr, goMode, deferMode bool) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if method := w.syncMethod(sel); method != "" {
			key, ok := w.guardKeyOf(sel)
			if ok {
				switch method {
				case "Lock", "RLock":
					if !deferMode {
						w.held[key] = true
					}
				case "Unlock", "RUnlock":
					if !deferMode {
						delete(w.held, key)
					}
				case "Do":
					w.walkOnceDo(call, key, goMode)
					return
				}
			}
			// Still visit the receiver chain for guarded accesses.
			w.walkExpr(sel.X)
			for _, arg := range call.Args {
				w.walkExpr(arg)
			}
			return
		}
	}
	w.walkExpr(call.Fun)
	for _, arg := range call.Args {
		if fl, ok := arg.(*ast.FuncLit); ok {
			c := w.fork()
			if goMode {
				c.held = map[guardKey]bool{}
			}
			c.walkStmt(fl.Body)
			continue
		}
		w.walkExpr(arg)
	}
	if fl, ok := call.Fun.(*ast.FuncLit); ok {
		c := w.fork()
		if goMode {
			c.held = map[guardKey]bool{}
		}
		c.walkStmt(fl.Body)
	}
}

// walkOnceDo walks once.Do(f): inside f the once-guard is held (this IS
// the construction), and after the call it stays held — Do's
// happens-before edge means every later read is properly sequenced.
func (w *guardWalker) walkOnceDo(call *ast.CallExpr, key guardKey, goMode bool) {
	if len(call.Args) == 1 {
		if fl, ok := call.Args[0].(*ast.FuncLit); ok {
			c := w.fork()
			if goMode {
				c.held = map[guardKey]bool{}
			}
			c.held[key] = true
			c.walkStmt(fl.Body)
		} else {
			w.walkExpr(call.Args[0])
		}
	}
	w.held[key] = true
}

// syncMethod reports the method name if sel resolves to a method of
// sync.Mutex, sync.RWMutex, or sync.Once.
func (w *guardWalker) syncMethod(sel *ast.SelectorExpr) string {
	fn, ok := w.an.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	if !isSyncGuard(sig.Recv().Type()) {
		return ""
	}
	return fn.Name()
}

// guardKeyOf resolves the receiver chain of a sync method call to a
// (root, guard-field) key. `a.mu.Lock()` yields (a, mu); the embedded
// form `suiteCache.Lock()` resolves the promoted Mutex field through the
// method selection's index path; a plain package-level `mu.Lock()` uses
// the variable itself as both root and guard.
func (w *guardWalker) guardKeyOf(sel *ast.SelectorExpr) (guardKey, bool) {
	pass := w.an.pass
	if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.MethodVal {
		if idx := s.Index(); len(idx) > 1 {
			// Promoted method: walk the field prefix to the guard field.
			t := s.Recv()
			var guard *types.Var
			for _, i := range idx[:len(idx)-1] {
				str, ok := derefAll(t).Underlying().(*types.Struct)
				if !ok {
					return guardKey{}, false
				}
				guard = str.Field(i)
				t = guard.Type()
			}
			root, _ := writeRoot(pass, sel.X)
			if root == nil || guard == nil {
				return guardKey{}, false
			}
			return guardKey{root: root, guard: guard}, true
		}
	}
	switch x := sel.X.(type) {
	case *ast.SelectorExpr:
		s, ok := pass.TypesInfo.Selections[x]
		if !ok || s.Kind() != types.FieldVal {
			return guardKey{}, false
		}
		guard, ok := s.Obj().(*types.Var)
		if !ok {
			return guardKey{}, false
		}
		root, _ := writeRoot(pass, x.X)
		if root == nil {
			return guardKey{}, false
		}
		return guardKey{root: root, guard: guard}, true
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[x]
		v, ok := obj.(*types.Var)
		if !ok {
			return guardKey{}, false
		}
		return guardKey{root: v, guard: v}, true
	}
	return guardKey{}, false
}

// checkAccess flags a use of a //popt:guardedby field on a path that does
// not hold the guard.
func (w *guardWalker) checkAccess(sel *ast.SelectorExpr) {
	pass := w.an.pass
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	fv, ok := s.Obj().(*types.Var)
	if !ok {
		return
	}
	spec, ok := w.an.guards[fv]
	if !ok {
		return
	}
	root, _ := writeRoot(pass, sel.X)
	if root != nil && w.held[guardKey{root: root, guard: spec.guard}] {
		return
	}
	if spec.once {
		pass.Reportf(sel.Pos(),
			"%s accesses %s, which is guarded by sync.Once %s, outside its Do; read it inside the Do closure or after the Do call",
			w.fd.Name.Name, exprString(sel), spec.name)
		return
	}
	pass.Reportf(sel.Pos(),
		"%s accesses %s without holding %s (//popt:guardedby); lock %s around the access",
		w.fd.Name.Name, exprString(sel), spec.name, spec.name)
}
