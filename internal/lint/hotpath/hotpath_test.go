package hotpath

import (
	"strings"
	"testing"
)

func fact(pkg, fn, kind, detail string) Fact {
	return Fact{Pkg: pkg, Func: fn, Kind: kind, Detail: detail}
}

func TestBaselineRoundTrip(t *testing.T) {
	facts := []Fact{
		fact("popt/internal/cache", "(*Level).Fill", KindInline, "no"),
		fact("popt/internal/cache", "(*Level).Fill", KindBounds, "4"),
		fact("popt/internal/mem", "Access.LineAddr", KindInline, "ok"),
		fact("popt/internal/mem", "(*Array).Addr", KindEscape, "i escapes to heap"),
	}
	// Notes must not survive serialization: they carry positions, which
	// would churn the baseline on unrelated edits.
	facts[1].Note = "cache.go:204:13"
	got, err := ParseBaseline(strings.NewReader(FormatBaseline(facts)))
	if err != nil {
		t.Fatal(err)
	}
	SortFacts(facts)
	if len(got) != len(facts) {
		t.Fatalf("round trip: %d facts, want %d", len(got), len(facts))
	}
	for i := range got {
		want := facts[i]
		want.Note = ""
		if got[i] != want {
			t.Errorf("fact %d: got %+v, want %+v", i, got[i], want)
		}
	}
}

func TestParseBaselineRejectsMalformedLine(t *testing.T) {
	if _, err := ParseBaseline(strings.NewReader("a\tb\tc\n")); err == nil {
		t.Fatal("3-field line parsed without error")
	}
}

func TestDiffEmptyOnIdenticalFacts(t *testing.T) {
	facts := []Fact{
		fact("p", "F", KindInline, "ok"),
		fact("p", "F", KindBounds, "2"),
		fact("p", "G", KindInline, "no"),
		fact("p", "G", KindBounds, "0"),
		fact("p", "G", KindEscape, "x escapes to heap"),
	}
	if d := Diff(facts, facts); len(d) != 0 {
		t.Fatalf("identical facts diff non-empty: %v", d)
	}
}

func TestDiffClassifiesRegressionsAndDrift(t *testing.T) {
	base := []Fact{
		fact("p", "F", KindInline, "ok"),
		fact("p", "F", KindBounds, "1"),
		fact("p", "G", KindInline, "no"),
		fact("p", "G", KindBounds, "3"),
		fact("p", "G", KindEscape, "x escapes to heap"),
	}
	cur := []Fact{
		// F: lost inlining (regression), extra bounds check (regression),
		// new escape (regression).
		fact("p", "F", KindInline, "no"),
		fact("p", "F", KindBounds, "2"),
		fact("p", "F", KindEscape, "y escapes to heap"),
		// G: newly inlinable, fewer bounds checks, escape removed — all
		// drift, still gate-failing until -update.
		fact("p", "G", KindInline, "ok"),
		fact("p", "G", KindBounds, "0"),
		// H: newly annotated (drift).
		fact("p", "H", KindInline, "ok"),
		fact("p", "H", KindBounds, "0"),
	}
	diff := Diff(base, cur)
	var regressions, drift []string
	for _, d := range diff {
		if d.Regression {
			regressions = append(regressions, d.Msg)
		} else {
			drift = append(drift, d.Msg)
		}
	}
	wantRegression := []string{"lost inlining", "bounds checks 1 -> 2", "new heap escape"}
	if len(regressions) != len(wantRegression) {
		t.Fatalf("got %d regressions %v, want %d", len(regressions), regressions, len(wantRegression))
	}
	for i, want := range wantRegression {
		if !strings.Contains(regressions[i], want) {
			t.Errorf("regression %d = %q, want it to mention %q", i, regressions[i], want)
		}
	}
	wantDrift := []string{"newly inlinable", "bounds checks 3 -> 0", "heap escape removed", "not in baseline"}
	if len(drift) != len(wantDrift) {
		t.Fatalf("got %d drift lines %v, want %d", len(drift), drift, len(wantDrift))
	}
	for _, want := range wantDrift {
		found := false
		for _, msg := range drift {
			if strings.Contains(msg, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no drift line mentions %q in %v", want, drift)
		}
	}
}

func TestDiffCountsDuplicateEscapes(t *testing.T) {
	esc := fact("p", "F", KindEscape, "make([]int, n) escapes to heap")
	base := []Fact{fact("p", "F", KindInline, "no"), fact("p", "F", KindBounds, "0"), esc}
	cur := append(append([]Fact(nil), base...), esc)
	diff := Diff(base, cur)
	if len(diff) != 1 || !diff[0].Regression || !strings.Contains(diff[0].Msg, "(1 -> 2)") {
		t.Fatalf("second identical escape not flagged as regression: %v", diff)
	}
}

func TestDiffLineString(t *testing.T) {
	if got := (DiffLine{true, "x"}).String(); got != "regression: x" {
		t.Errorf("regression line = %q", got)
	}
	if got := (DiffLine{false, "x"}).String(); got != "baseline-drift: x" {
		t.Errorf("drift line = %q", got)
	}
}
