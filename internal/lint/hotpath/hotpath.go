// Package hotpath is the compiler-diagnostics half of the poptlint
// performance gate. Functions annotated with a `//popt:hot` directive in
// their doc comment are the simulator's hot paths: the inner loops of
// Level.Access, Policy.Victim, Rereference Matrix lookups, and kernel
// traversals that the P-OPT paper's "practical" claim rests on. For those
// functions this package asks the real Go compiler what it proved —
// escape analysis (`-m`), bounds-check elimination
// (`-d=ssa/check_bce/debug=1`), and inlining — and distills the
// diagnostics into a stable set of Facts that is diffed against a
// checked-in baseline.
//
// The contract: any *new* heap escape, lost inline, or extra bounds check
// inside a hot function is a regression and fails the gate. Improvements
// (an escape removed, a bounds check eliminated) also show up in the diff
// so the baseline is regenerated deliberately (`poptlint -hotpath
// -update`) and stays an exact record, never a stale lower bound.
//
// Facts are keyed by package, function, and normalized message — never by
// line number — so editing unrelated code in the same file does not churn
// the baseline.
package hotpath

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Directive is the doc-comment annotation that marks a hot function.
const Directive = "//popt:hot"

// GCFlags are the compiler flags whose diagnostics the harness parses.
const GCFlags = "-m -d=ssa/check_bce/debug=1"

// Fact kinds. A hot function always carries exactly one "inline" fact and
// one "bounds" fact; it carries one "escape" fact per heap allocation the
// compiler reports inside it (duplicates kept: two allocations with the
// same shape are two facts).
const (
	KindInline = "inline" // detail: "ok" or "no"
	KindBounds = "bounds" // detail: decimal count of distinct bounds checks
	KindEscape = "escape" // detail: normalized compiler message
)

// Fact is one performance-relevant compiler observation attributed to a
// //popt:hot function.
type Fact struct {
	Pkg    string // import path
	Func   string // compiler-style name: Foo, (*T).M, or T.M
	Kind   string // KindInline, KindBounds, or KindEscape
	Detail string // see the Kind constants

	// Note carries extra context for diff messages (e.g. the compiler's
	// cannot-inline reason, or source positions of bounds checks). It is
	// not serialized into baselines and not compared.
	Note string
}

// key is the identity under which facts are compared and serialized.
func (f Fact) key() string {
	return f.Pkg + "\t" + f.Func + "\t" + f.Kind + "\t" + f.Detail
}

// Function is one discovered //popt:hot function.
type Function struct {
	Pkg       string // import path
	Name      string // compiler-style name
	File      string // absolute path
	StartLine int
	EndLine   int
}

// Report is the result of one Collect run.
type Report struct {
	Functions []Function
	Facts     []Fact
}

// Options configures Collect.
type Options struct {
	// Dir is the module root the go tool runs in ("" = current directory).
	Dir string
	// Patterns are the package patterns scanned for //popt:hot functions
	// (default: ./...).
	Patterns []string
}

// listedPackage is the subset of `go list -json` output Collect needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
}

// Collect discovers the //popt:hot functions under opts.Patterns, compiles
// their packages with GCFlags, and returns the attributed facts. The
// returned facts are sorted and deterministic.
func Collect(opts Options) (*Report, error) {
	patterns := opts.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(opts.Dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var funcs []Function
	hotPkgs := make(map[string]bool)
	for _, p := range pkgs {
		for _, name := range p.GoFiles {
			path := filepath.Join(p.Dir, name)
			fns, err := hotFuncsInFile(fset, path, p.ImportPath)
			if err != nil {
				return nil, err
			}
			if len(fns) > 0 {
				hotPkgs[p.ImportPath] = true
				funcs = append(funcs, fns...)
			}
		}
	}
	sort.Slice(funcs, func(i, j int) bool {
		if funcs[i].Pkg != funcs[j].Pkg {
			return funcs[i].Pkg < funcs[j].Pkg
		}
		return funcs[i].Name < funcs[j].Name
	})
	report := &Report{Functions: funcs}
	if len(funcs) == 0 {
		return report, nil
	}

	var buildPkgs []string
	for p := range hotPkgs { //lint:ordered
		buildPkgs = append(buildPkgs, p)
	}
	sort.Strings(buildPkgs)
	diags, err := compileDiagnostics(opts.Dir, buildPkgs)
	if err != nil {
		return nil, err
	}
	report.Facts = attribute(funcs, diags, opts.Dir)
	return report, nil
}

// goList shells out for package metadata.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// hotFuncsInFile parses one file and returns its //popt:hot functions.
func hotFuncsInFile(fset *token.FileSet, path, pkg string) ([]Function, error) {
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []Function
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || !isHot(fd.Doc) {
			continue
		}
		out = append(out, Function{
			Pkg:       pkg,
			Name:      compilerName(fd),
			File:      path,
			StartLine: fset.Position(fd.Pos()).Line,
			EndLine:   fset.Position(fd.End()).Line,
		})
	}
	return out, nil
}

// isHot reports whether a doc comment carries the //popt:hot directive.
func isHot(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == Directive || strings.HasPrefix(text, Directive+" ") {
			return true
		}
	}
	return false
}

// compilerName renders the function name the way gc diagnostics spell it.
func compilerName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	star := false
	if se, ok := recv.(*ast.StarExpr); ok {
		star = true
		recv = se.X
	}
	// Strip type parameters of a generic receiver.
	if ix, ok := recv.(*ast.IndexExpr); ok {
		recv = ix.X
	}
	base := "?"
	if id, ok := recv.(*ast.Ident); ok {
		base = id.Name
	}
	if star {
		return "(*" + base + ")." + fd.Name.Name
	}
	return base + "." + fd.Name.Name
}

// diagnostic is one parsed compiler message.
type diagnostic struct {
	File      string // as printed (possibly relative to the build dir)
	Line, Col int
	Msg       string
}

var diagRe = regexp.MustCompile(`^(.+?):(\d+):(\d+): (.*)$`)

// compileDiagnostics builds pkgs with GCFlags and parses the diagnostic
// stream. The go build cache replays compiler output, so repeated runs are
// cheap and still produce diagnostics.
func compileDiagnostics(dir string, pkgs []string) ([]diagnostic, error) {
	args := append([]string{"build", "-gcflags=" + GCFlags}, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	var diags []diagnostic
	sc := bufio.NewScanner(bytes.NewReader(out))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		m := diagRe.FindStringSubmatch(line)
		if m == nil {
			continue // "# pkg" headers, blank lines
		}
		ln, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		diags = append(diags, diagnostic{File: m[1], Line: ln, Col: col, Msg: m[4]})
	}
	if err != nil {
		// A failed build means the diagnostics are incomplete; surface the
		// compiler error rather than a misleading baseline diff.
		return nil, fmt.Errorf("go build -gcflags=%q %s: %v\n%s", GCFlags, strings.Join(pkgs, " "), err, out)
	}
	return diags, nil
}

var (
	canInlineRe    = regexp.MustCompile(`^can inline (\S+)`)
	cannotInlineRe = regexp.MustCompile(`^cannot inline (\S+): (.*)$`)
)

// attribute maps raw diagnostics onto the hot functions and distills the
// Fact set.
func attribute(funcs []Function, diags []diagnostic, dir string) []Fact {
	absDir, err := filepath.Abs(dir)
	if err != nil {
		absDir = dir
	}
	// Index hot functions by file for range attribution and by (file,
	// name) for inline attribution.
	byFile := make(map[string][]*hotState)
	states := make([]*hotState, len(funcs))
	for i := range funcs {
		st := &hotState{fn: funcs[i]}
		states[i] = st
		byFile[funcs[i].File] = append(byFile[funcs[i].File], st)
	}
	boundsSeen := make(map[string]bool) // dedupe repeated BCE reports at one position
	for _, d := range diags {
		path := d.File
		if !filepath.IsAbs(path) {
			path = filepath.Join(absDir, path)
		}
		hosts := byFile[path]
		if hosts == nil {
			continue
		}
		if m := canInlineRe.FindStringSubmatch(d.Msg); m != nil {
			for _, st := range hosts {
				if st.fn.Name == m[1] {
					st.inlineOK = true
				}
			}
			continue
		}
		if m := cannotInlineRe.FindStringSubmatch(d.Msg); m != nil {
			for _, st := range hosts {
				if st.fn.Name == m[1] {
					st.inlineReason = m[2]
				}
			}
			continue
		}
		for _, st := range hosts {
			if d.Line < st.fn.StartLine || d.Line > st.fn.EndLine {
				continue
			}
			switch {
			case d.Msg == "Found IsInBounds" || d.Msg == "Found IsSliceInBounds":
				key := fmt.Sprintf("%s:%d:%d", path, d.Line, d.Col)
				if !boundsSeen[key] {
					boundsSeen[key] = true
					st.bounds++
					st.boundsAt = append(st.boundsAt, fmt.Sprintf("%s:%d:%d", filepath.Base(path), d.Line, d.Col))
				}
			case isEscapeMsg(d.Msg):
				st.escapes = append(st.escapes, d.Msg)
			}
		}
	}
	var facts []Fact
	for _, st := range states {
		fn := st.fn
		inlineDetail, note := "no", st.inlineReason
		if st.inlineOK {
			inlineDetail, note = "ok", ""
		}
		facts = append(facts, Fact{Pkg: fn.Pkg, Func: fn.Name, Kind: KindInline, Detail: inlineDetail, Note: note})
		facts = append(facts, Fact{Pkg: fn.Pkg, Func: fn.Name, Kind: KindBounds,
			Detail: strconv.Itoa(st.bounds), Note: strings.Join(st.boundsAt, " ")})
		sort.Strings(st.escapes)
		for _, msg := range st.escapes {
			facts = append(facts, Fact{Pkg: fn.Pkg, Func: fn.Name, Kind: KindEscape, Detail: msg})
		}
	}
	SortFacts(facts)
	return facts
}

// hotState accumulates diagnostics for one hot function.
type hotState struct {
	fn           Function
	inlineOK     bool
	inlineReason string
	bounds       int
	boundsAt     []string
	escapes      []string
}

// isEscapeMsg reports whether a -m message describes a heap allocation.
// "does not escape" and parameter-leak notes are informational, not
// allocations.
func isEscapeMsg(msg string) bool {
	if strings.Contains(msg, "does not escape") {
		return false
	}
	return strings.HasSuffix(msg, "escapes to heap") ||
		strings.Contains(msg, "escapes to heap:") ||
		strings.HasPrefix(msg, "moved to heap:")
}

// SortFacts sorts facts into baseline order.
func SortFacts(facts []Fact) {
	sort.Slice(facts, func(i, j int) bool { return facts[i].key() < facts[j].key() })
}

// FormatBaseline renders facts as the checked-in baseline file.
func FormatBaseline(facts []Fact) string {
	var b strings.Builder
	b.WriteString("# poptlint hot-path baseline: compiler facts for every //popt:hot function.\n")
	b.WriteString("# One line per fact: <package>\t<function>\t<kind>\t<detail>.\n")
	b.WriteString("# Regenerate deliberately with: go run ./cmd/poptlint -hotpath -update\n")
	sorted := append([]Fact(nil), facts...)
	SortFacts(sorted)
	for _, f := range sorted {
		b.WriteString(f.key())
		b.WriteString("\n")
	}
	return b.String()
}

// ParseBaseline reads a baseline produced by FormatBaseline.
func ParseBaseline(r io.Reader) ([]Fact, error) {
	var facts []Fact
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" || strings.HasPrefix(strings.TrimSpace(line), "#") {
			continue
		}
		parts := strings.Split(line, "\t")
		if len(parts) != 4 {
			return nil, fmt.Errorf("baseline line %d: want 4 tab-separated fields, got %d", lineNo, len(parts))
		}
		facts = append(facts, Fact{Pkg: parts[0], Func: parts[1], Kind: parts[2], Detail: parts[3]})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return facts, nil
}

// ReadBaselineFile loads a baseline from disk.
func ReadBaselineFile(path string) ([]Fact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseBaseline(f)
}

// WriteBaselineFile writes facts to path, creating parent directories.
func WriteBaselineFile(path string, facts []Fact) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, []byte(FormatBaseline(facts)), 0o644)
}

// DiffLine is one human-readable baseline divergence.
type DiffLine struct {
	// Regression is true for changes that make a hot path slower (new
	// escape, lost inline, more bounds checks) and false for improvements
	// and baseline drift — either way the baseline must be regenerated.
	Regression bool
	Msg        string
}

func (d DiffLine) String() string {
	if d.Regression {
		return "regression: " + d.Msg
	}
	return "baseline-drift: " + d.Msg
}

// Diff compares the current facts against the baseline, per hot function.
// An empty result means the tree matches the baseline exactly. Any
// non-empty result fails the gate: regressions must be fixed, drift
// (improvements, added/removed hot functions) must be captured with
// -update so the baseline never goes stale.
func Diff(baseline, current []Fact) []DiffLine {
	type funcKey struct{ pkg, fn string }
	type funcFacts struct {
		inline  string
		bounds  int
		escapes map[string]int
		note    map[string]string // kind -> note (current side only)
	}
	gather := func(facts []Fact) map[funcKey]*funcFacts {
		out := make(map[funcKey]*funcFacts)
		for _, f := range facts {
			k := funcKey{f.Pkg, f.Func}
			ff := out[k]
			if ff == nil {
				ff = &funcFacts{escapes: make(map[string]int), note: make(map[string]string)}
				out[k] = ff
			}
			switch f.Kind {
			case KindInline:
				ff.inline = f.Detail
			case KindBounds:
				ff.bounds, _ = strconv.Atoi(f.Detail)
			case KindEscape:
				ff.escapes[f.Detail]++
			}
			if f.Note != "" {
				ff.note[f.Kind] = f.Note
			}
		}
		return out
	}
	base, cur := gather(baseline), gather(current)

	var keys []funcKey
	seen := make(map[funcKey]bool)
	for k := range base { //lint:ordered
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	for k := range cur { //lint:ordered
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].pkg != keys[j].pkg {
			return keys[i].pkg < keys[j].pkg
		}
		return keys[i].fn < keys[j].fn
	})

	var out []DiffLine
	for _, k := range keys {
		name := k.pkg + "." + k.fn
		b, c := base[k], cur[k]
		switch {
		case b == nil:
			out = append(out, DiffLine{false, fmt.Sprintf("%s: hot function not in baseline (new annotation?); run -update", name)})
			continue
		case c == nil:
			out = append(out, DiffLine{false, fmt.Sprintf("%s: in baseline but no longer annotated //popt:hot; run -update", name)})
			continue
		}
		if b.inline != c.inline {
			if b.inline == "ok" {
				msg := fmt.Sprintf("%s: lost inlining (was inlinable, now is not)", name)
				if r := c.note[KindInline]; r != "" {
					msg += ": " + r
				}
				out = append(out, DiffLine{true, msg})
			} else {
				out = append(out, DiffLine{false, fmt.Sprintf("%s: newly inlinable; run -update to capture the improvement", name)})
			}
		}
		if b.bounds != c.bounds {
			msg := fmt.Sprintf("%s: bounds checks %d -> %d", name, b.bounds, c.bounds)
			if at := c.note[KindBounds]; at != "" {
				msg += " (now at " + at + ")"
			}
			if c.bounds > b.bounds {
				out = append(out, DiffLine{true, msg})
			} else {
				out = append(out, DiffLine{false, msg + "; run -update to capture the improvement"})
			}
		}
		msgs := make(map[string]bool)
		for m := range b.escapes { //lint:ordered
			msgs[m] = true
		}
		for m := range c.escapes { //lint:ordered
			msgs[m] = true
		}
		var sortedMsgs []string
		for m := range msgs { //lint:ordered
			sortedMsgs = append(sortedMsgs, m)
		}
		sort.Strings(sortedMsgs)
		for _, m := range sortedMsgs {
			nb, nc := b.escapes[m], c.escapes[m]
			switch {
			case nc > nb:
				out = append(out, DiffLine{true, fmt.Sprintf("%s: new heap escape (%d -> %d): %s", name, nb, nc, m)})
			case nc < nb:
				out = append(out, DiffLine{false, fmt.Sprintf("%s: heap escape removed (%d -> %d): %s; run -update to capture the improvement", name, nb, nc, m)})
			}
		}
	}
	return out
}
