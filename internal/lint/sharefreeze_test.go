package lint

import "testing"

func TestShareFreeze(t *testing.T) {
	RunTest(t, "testdata", NewShareFreeze(), "freeze")
}

// TestShareFreezeRegistryConsistency pins the cross-check that keeps the
// central registry and the //popt:frozen declarations in sync.
func TestShareFreezeRegistryConsistency(t *testing.T) {
	RunTest(t, "testdata", NewShareFreeze("freezereg.MissReg"), "freezereg")
}
