package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"os"
	"sort"
	"strconv"
	"strings"
)

// FormatLock pins each wire stream's layout to a checked-in fingerprint
// baseline. The fingerprint is a canonical text rendering of everything
// that defines the encoded bytes: the stream's declared format version
// (its trace.FormatVersions entry), its fixed-width header fields (the
// trace.HeaderFields entry), and every opcode's payload op sequence as
// extracted by the wirecheck engine. Evolving a format is a deliberate
// two-step: bump the stream's FormatVersions entry, then regenerate the
// baseline with `poptlint -wirecheck -update`. Drift without a bump is
// refused in both modes — old encoded bytes would otherwise be misread
// by a decoder that believes nothing changed.

// wireBaselineHeader is written atop generated baseline files.
const wireBaselineHeader = `# poptlint wirecheck fingerprint baseline.
# One section per //popt:codec stream: the declared format version, the
# fixed-width header fields, and each opcode's payload op sequence.
# Regenerate deliberately with: go run ./cmd/poptlint -wirecheck -update ./...
`

// NewFormatLock builds the formatlock analyzer against the baseline file
// at path. With update set, drifted streams whose version was bumped are
// rewritten in place instead of reported; drift without a version bump is
// refused either way.
func NewFormatLock(path string, update bool) *Analyzer {
	a := &Analyzer{
		Name: "formatlock",
		Doc: "diffs each wire stream's canonical fingerprint (FormatVersions " +
			"entry, header fields, per-opcode payload ops) against the checked-in " +
			"baseline; layout drift requires a version bump plus -update",
	}
	a.Run = func(pass *Pass) error {
		return runFormatLock(pass, path, update)
	}
	return a
}

// baselineEntry is one stream section of the baseline file.
type baselineEntry struct {
	version int64
	body    []string // "header ..." and "op ..." lines, canonical order
}

func runFormatLock(pass *Pass, path string, update bool) error {
	fns := parseCodecFuncs(pass, false)
	if len(fns) == 0 {
		return nil
	}
	info := extractWire(pass)
	versions, versionPos := wireRegistry(pass, "FormatVersions")
	headers := wireHeaderFields(pass)

	baseline, haveFile, err := readWireBaseline(path)
	if err != nil {
		return err
	}
	changed := false
	for _, name := range info.names {
		st := info.streams[name]
		if len(st.encArms) == 0 {
			// Dec-only stream: codecpair owns that report; nothing to lock.
			continue
		}
		ver, declared := versions[name]
		if !declared {
			pass.Reportf(st.encFns[0].decl.Pos(),
				"stream %q has //popt:codec annotations but no FormatVersions entry; add one so the wire layout is versioned", name)
			continue
		}
		pos := versionPos[name]
		entry := &baselineEntry{version: ver, body: fingerprintBody(st, headers[name])}
		base, inBaseline := baseline[name]
		switch {
		case !inBaseline:
			if update {
				baseline[name] = entry
				changed = true
			} else {
				pass.Reportf(pos,
					"stream %q has no entry in the wire-format baseline %s; run `poptlint -wirecheck -update` to record it", name, path)
			}
		case entry.version == base.version && sameLines(entry.body, base.body):
			// Locked and matching.
		case entry.version == base.version:
			pass.Reportf(pos,
				"wire fingerprint of stream %q changed but FormatVersions[%q] is still %d; bump the version, then regenerate the baseline with `poptlint -wirecheck -update`",
				name, name, ver)
		default:
			if update {
				baseline[name] = entry
				changed = true
			} else {
				pass.Reportf(pos,
					"wire-format baseline for stream %q is stale (baseline version %d, package declares %d); regenerate it with `poptlint -wirecheck -update`",
					name, base.version, entry.version)
			}
		}
	}
	if update && (changed || !haveFile) {
		if err := writeWireBaseline(path, baseline); err != nil {
			return fmt.Errorf("writing wire baseline %s: %w", path, err)
		}
	}
	return nil
}

// fingerprintBody renders the canonical lines for one stream: header
// fields in declared order, then opcodes sorted by value.
func fingerprintBody(st *streamCodec, headerFields []string) []string {
	var body []string
	for _, f := range headerFields {
		body = append(body, "header "+f)
	}
	ops := make([]int64, 0, len(st.encArms))
	for op := range st.encArms {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	for _, op := range ops {
		arm := st.encArms[op]
		// Arms whose opcode came from a tracked variable carry no const
		// block attribution; the stream's block still names them.
		name := arm.name
		if st.block != nil {
			if n, ok := st.block.names[op]; ok {
				name = n
			}
		}
		body = append(body, fmt.Sprintf("op %d %s %s", op, name, seqString(arm.seq)))
	}
	return body
}

func sameLines(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// readWireBaseline parses the baseline file. A missing file is not an
// error (check mode reports per stream; update mode creates it).
func readWireBaseline(path string) (map[string]*baselineEntry, bool, error) {
	out := make(map[string]*baselineEntry)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return out, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	var cur *baselineEntry
	for lineNo, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
		case strings.HasPrefix(line, "stream "):
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[2] != "version" {
				return nil, false, fmt.Errorf("%s:%d: malformed stream line %q", path, lineNo+1, line)
			}
			v, err := strconv.ParseInt(fields[3], 10, 64)
			if err != nil {
				return nil, false, fmt.Errorf("%s:%d: bad version in %q", path, lineNo+1, line)
			}
			cur = &baselineEntry{version: v}
			out[fields[1]] = cur
		case line == "end":
			cur = nil
		default:
			if cur == nil {
				return nil, false, fmt.Errorf("%s:%d: line %q outside a stream section", path, lineNo+1, line)
			}
			cur.body = append(cur.body, line)
		}
	}
	return out, true, nil
}

// writeWireBaseline renders the baseline deterministically: streams
// sorted by name, one section each.
func writeWireBaseline(path string, entries map[string]*baselineEntry) error {
	names := make([]string, 0, len(entries))
	for name := range entries {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString(wireBaselineHeader)
	for _, name := range names {
		e := entries[name]
		fmt.Fprintf(&b, "stream %s version %d\n", name, e.version)
		for _, line := range e.body {
			b.WriteString(line)
			b.WriteByte('\n')
		}
		b.WriteString("end\n")
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// wireRegistry extracts a package-level `var <name> = map[string]byte{...}`
// registry: stream name -> value, plus each entry's source position.
func wireRegistry(pass *Pass, varName string) (map[string]int64, map[string]token.Pos) {
	values := make(map[string]int64)
	positions := make(map[string]token.Pos)
	forEachRegistryEntry(pass, varName, func(key string, kv *ast.KeyValueExpr) {
		if tv, ok := pass.TypesInfo.Types[kv.Value]; ok && tv.Value != nil {
			if v, ok := constant.Int64Val(constant.ToInt(tv.Value)); ok {
				values[key] = v
				positions[key] = kv.Pos()
			}
		}
	})
	return values, positions
}

// wireHeaderFields extracts the `var HeaderFields = map[string][]string`
// declaration: stream name -> header field names in declared order.
func wireHeaderFields(pass *Pass) map[string][]string {
	out := make(map[string][]string)
	forEachRegistryEntry(pass, "HeaderFields", func(key string, kv *ast.KeyValueExpr) {
		lit, ok := kv.Value.(*ast.CompositeLit)
		if !ok {
			return
		}
		var fields []string
		for _, el := range lit.Elts {
			if tv, ok := pass.TypesInfo.Types[el]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
				fields = append(fields, constant.StringVal(tv.Value))
			}
		}
		out[key] = fields
	})
	return out
}

// forEachRegistryEntry visits the key/value entries of a package-level
// map-literal var with the given name.
func forEachRegistryEntry(pass *Pass, varName string, visit func(key string, kv *ast.KeyValueExpr)) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != varName || i >= len(vs.Values) {
						continue
					}
					lit, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					for _, el := range lit.Elts {
						kv, ok := el.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						tv, ok := pass.TypesInfo.Types[kv.Key]
						if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
							continue
						}
						visit(constant.StringVal(tv.Value), kv)
					}
				}
			}
		}
	}
}
