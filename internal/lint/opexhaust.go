package lint

import (
	"go/ast"
	"sort"
	"strings"
)

// OpExhaust verifies that every opcode dispatch switch inside an
// annotated decoder covers the full declared opcode set, and that its
// default clause fails loudly. The opcode set is the leading iota run of
// the constants' block (`opX byte = iota + 1` followed by bare names);
// derived masks and markers declared after an explicit re-valuing
// (opMask, pcEscape) are not opcodes. A switch that silently skips an
// opcode — or swallows an unknown one — turns stream corruption into
// quiet misdecoding, which is exactly what the panic-based hot replay
// and the error-returning validating decoders exist to prevent.
var OpExhaust = &Analyzer{
	Name: "opexhaust",
	Doc: "checks opcode dispatch switches in //popt:codec dec functions: " +
		"every opcode of the const block's iota run must be handled and the " +
		"default clause must panic or return an error",
	Run: runOpExhaust,
}

func runOpExhaust(pass *Pass) error {
	fns := parseCodecFuncs(pass, false)
	var decs []*codecFn
	for _, fn := range fns {
		if !fn.enc {
			decs = append(decs, fn)
		}
	}
	if len(decs) == 0 {
		return nil
	}
	w := newWireWalker(pass)
	for _, fn := range decs {
		if fn.decl.Body == nil {
			continue
		}
		ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok {
				return true
			}
			ds := classifyDispatch(w, sw)
			if ds == nil {
				return true
			}
			checkDispatch(pass, w, fn, ds)
			return false
		})
	}
	return nil
}

func checkDispatch(pass *Pass, w *wireWalker, fn *codecFn, ds *dispatchSwitch) {
	var missing []string
	for _, name := range ds.block.universe {
		if !ds.caseVals[ds.block.values[name]] {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	if len(missing) > 0 {
		pass.Reportf(ds.sw.Pos(),
			"opcode dispatch in %s does not handle %s (declared in the %s opcode block); every opcode must have an arm",
			fn.name(), strings.Join(missing, ", "), ds.block.blockName)
	}
	switch {
	case ds.def == nil:
		pass.Reportf(ds.sw.Pos(),
			"opcode dispatch in %s has no default clause; an unknown opcode must panic or return an error, not fall through silently",
			fn.name())
	case !loudStmts(w, ds.def.Body):
		pass.Reportf(ds.def.Pos(),
			"default clause of the opcode dispatch in %s is silent; corrupt opcodes must panic (badOp) or return an error",
			fn.name())
	}
}

// loudStmts reports whether the statements reach a panic (directly or via
// a same-package panicking helper like badOp) or return a non-nil error.
func loudStmts(w *wireWalker, stmts []ast.Stmt) bool {
	loud := false
	for _, s := range stmts {
		ast.Inspect(s, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if wireCalleeName(n) == "panic" || w.callPanics(n) {
					loud = true
				}
			case *ast.ReturnStmt:
				if w.isErrorReturn(n) {
					loud = true
				}
			}
			return !loud
		})
		if loud {
			return true
		}
	}
	return false
}
