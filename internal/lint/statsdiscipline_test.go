package lint

import "testing"

func TestStatsDiscipline(t *testing.T) {
	// statsclient imports the fake cache package and must trip the
	// analyzer; cachefake itself mutates its own counters in-package and
	// must stay clean (it has no // want comments).
	RunTest(t, "testdata", StatsDiscipline, "statsclient", "cachefake")
}
