package lint

import "testing"

func TestLockGuard(t *testing.T) {
	RunTest(t, "testdata", LockGuard, "guard")
}
