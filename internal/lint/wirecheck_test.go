package lint

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestCodecPair(t *testing.T) {
	RunTest(t, "testdata", CodecPair, "wire")
}

func TestOpExhaust(t *testing.T) {
	RunTest(t, "testdata", OpExhaust, "wireop")
}

func TestFormatLock(t *testing.T) {
	RunTest(t, "testdata", NewFormatLock(filepath.Join("testdata", "wirelock.baseline"), false), "wirelock")
}

// TestWireBaselineRoundTrip pins the baseline file format: write, read
// back, and re-write must be lossless and byte-identical, or -update
// would churn the checked-in file.
func TestWireBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wire.baseline")
	entries := map[string]*baselineEntry{
		"llc":   {version: 2, body: []string{"header magic:pl", "header version:u8", "op 1 lopAccessR pc varint"}},
		"trace": {version: 1, body: []string{"header magic:pt", "op 3 opSetVertex varint", "op 4 opStartIteration (empty)"}},
	}
	if err := writeWireBaseline(path, entries); err != nil {
		t.Fatal(err)
	}
	got, haveFile, err := readWireBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if !haveFile {
		t.Fatal("readWireBaseline did not see the file it was given")
	}
	if !reflect.DeepEqual(got, entries) {
		t.Fatalf("baseline did not round trip:\n got %+v\nwant %+v", got, entries)
	}
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeWireBaseline(path, got); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Fatalf("re-written baseline is not byte-identical:\n%s\nvs\n%s", first, second)
	}
}

// TestWireBaselineMissingFile pins the missing-file contract: not an
// error, so check mode reports per stream and update mode creates it.
func TestWireBaselineMissingFile(t *testing.T) {
	entries, haveFile, err := readWireBaseline(filepath.Join(t.TempDir(), "absent.baseline"))
	if err != nil {
		t.Fatalf("missing baseline must not be an error, got %v", err)
	}
	if haveFile || len(entries) != 0 {
		t.Fatalf("missing baseline reported haveFile=%v entries=%v", haveFile, entries)
	}
}
