package lint

import "testing"

func TestPolicyContract(t *testing.T) {
	RunTest(t, "testdata", PolicyContract, "contract")
}
