package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FrozenTypes is the registry of shared-artifact types whose values are
// immutable once published: every concurrent sweep cell (and, per the
// roadmap, every distributed sweep process) reads them without
// synchronization, so a single post-publication store is a data race the
// dynamic detector only catches probabilistically. Each listed type must
// carry a `//popt:frozen` directive on its declaration (the sharefreeze
// analyzer cross-checks registry and annotation), and unexported frozen
// types are picked up from their annotation alone — the registry exists so
// packages that only *import* a frozen type (where the declaration's
// comments are invisible) still get stores through it flagged.
var FrozenTypes = []string{
	"popt/internal/core.Table",
	"popt/internal/core.LineRefs",
	"popt/internal/graph.Graph",
	"popt/internal/graph.Adj",
	"popt/internal/trace.Trace",
	"popt/internal/trace.LLCTrace",
	"popt/internal/corpus.Entry",
}

// NewShareFreeze builds the freeze analyzer over the given registry
// (default: FrozenTypes). A type is frozen if it is in the registry or its
// declaration in the analyzed package carries `//popt:frozen`. The
// analyzer enforces the shared-artifact freeze contract (DESIGN.md §9):
//
//   - A frozen value is mutable only while it is *fresh* — locally
//     constructed (composite literal, new) and not yet published. Field
//     stores, element stores, and append/copy into its storage are allowed
//     while fresh, including through same-package helpers, closures, and
//     goroutines launched during construction (the parallel table fills).
//   - Publication — storing the value into a package variable, a field or
//     element of a non-fresh value, or a channel, or passing it to a
//     function the analyzer cannot see into — ends construction. Any store
//     reachable through the value afterwards is flagged, interprocedurally:
//     same-package helpers get per-parameter (and per-receiver) summaries
//     recording whether they write through or publish the argument, and
//     call sites with published arguments inherit the helper's offending
//     store chain in the diagnostic.
//   - Aliases of a published value's interior storage (a field slice, a
//     pointer into it) are tracked like borrowflow's borrowed slice:
//     writes through them, appends to them, and copies into them are
//     stores to frozen memory and are flagged wherever they occur.
//   - Lazy initialization inside the value's own sync.Once is construction
//     by definition: stores to e's fields inside e.once.Do(func(){...})
//     are allowed (the artifact-cache entry idiom). The lockguard analyzer
//     separately checks that readers sequence after the Do.
//   - An exported function or method that writes through a frozen-typed
//     parameter or receiver is flagged at its declaration: callers outside
//     the package cannot be analyzed, so no such mutator may exist.
//     Unexported helpers are judged at their call sites instead, so
//     constructors may freely delegate to fill helpers.
func NewShareFreeze(registry ...string) *Analyzer {
	if len(registry) == 0 {
		registry = FrozenTypes
	}
	a := &Analyzer{
		Name: "sharefreeze",
		Doc: "flags stores to //popt:frozen shared-artifact types after the " +
			"value escapes its constructor, tracking aliases and helper calls " +
			"interprocedurally; frozen values may only be mutated while fresh " +
			"or inside their own sync.Once.Do",
	}
	a.Run = func(pass *Pass) error {
		return runShareFreeze(pass, registry)
	}
	return a
}

// freezeKind classifies how an expression relates to frozen memory.
type freezeKind int

const (
	fkNone freezeKind = iota
	// fkFresh: an under-construction frozen value (or storage inside one);
	// stores are constructor work and allowed.
	fkFresh
	// fkPub: a published frozen value; stores through it are violations.
	fkPub
	// fkStore: interior storage (slice/map/pointer) of a published frozen
	// value; writes through it mutate frozen memory.
	fkStore
)

func runShareFreeze(pass *Pass, registry []string) error {
	an := &freezeAnalysis{
		pass:      pass,
		frozen:    make(map[*types.TypeName]bool),
		decls:     make(map[*types.Func]*ast.FuncDecl),
		summaries: make(map[freezeSumKey]freezeSummary),
		inFlight:  make(map[freezeSumKey]bool),
	}
	reg := make(map[string]bool, len(registry))
	for _, name := range registry {
		reg[name] = true
	}
	an.registry = reg

	// Pass 1: frozen type set = registry entries + locally annotated types;
	// cross-check that registry types declared here carry the annotation.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				annotated := hasFrozenDirective(gd.Doc) || hasFrozenDirective(ts.Doc) || hasFrozenDirective(ts.Comment)
				switch {
				case annotated:
					an.frozen[tn] = true
				case reg[qualifiedTypeName(tn)]:
					pass.Reportf(ts.Name.Pos(),
						"%s is registered in lint.FrozenTypes but its declaration has no //popt:frozen directive; annotate the type so the freeze contract is visible at the definition",
						tn.Name())
					an.frozen[tn] = true
				}
			}
		}
	}

	// Index declarations for helper summaries.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					an.decls[fn] = fd
				}
			}
		}
	}

	// Pass 2: walk every function as an entry point.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := newFreezeWalker(an, fd)
			w.walkBlock(fd.Body.List)
			an.checkExportedMutator(fd)
		}
	}
	return nil
}

// hasFrozenDirective reports whether a comment group contains //popt:frozen.
func hasFrozenDirective(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(c.Text)
		if text == "//popt:frozen" || strings.HasPrefix(text, "//popt:frozen ") {
			return true
		}
	}
	return false
}

func qualifiedTypeName(tn *types.TypeName) string {
	if tn.Pkg() == nil {
		return tn.Name()
	}
	return tn.Pkg().Path() + "." + tn.Name()
}

// freezeAnalysis carries per-package state: the frozen type set, the
// declaration index, and memoized helper summaries.
type freezeAnalysis struct {
	pass      *Pass
	registry  map[string]bool
	frozen    map[*types.TypeName]bool
	decls     map[*types.Func]*ast.FuncDecl
	summaries map[freezeSumKey]freezeSummary
	inFlight  map[freezeSumKey]bool
}

// freezeSumKey identifies one (function, parameter) summary; param -1 is
// the receiver.
type freezeSumKey struct {
	fn    *types.Func
	param int
}

// freezeSummary describes what a helper does when the given parameter (or
// receiver) is a published frozen value.
type freezeSummary struct {
	writes    bool   // stores into frozen memory reachable from the param
	publishes bool   // stores the param where it outlives the call
	where     string // offending store chain, e.g. "t.entries[i] at file.go:12"
	known     bool
}

// isFrozen reports whether t (after stripping pointers) is a frozen named
// type: locally annotated or in the registry.
func (an *freezeAnalysis) isFrozen(t types.Type) bool {
	named, ok := derefAll(t).(*types.Named)
	if !ok {
		return false
	}
	tn := named.Obj()
	return an.frozen[tn] || an.registry[qualifiedTypeName(tn)]
}

func derefAll(t types.Type) types.Type {
	for {
		p, ok := t.Underlying().(*types.Pointer)
		if !ok {
			return t
		}
		t = p.Elem()
	}
}

// refLike reports whether a value of type t can reference memory (rather
// than copy it): writing through such a value can reach frozen storage.
func refLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer, *types.Chan:
		return true
	}
	return false
}

// checkExportedMutator flags exported functions whose summary writes
// frozen memory through a parameter or receiver: external callers cannot
// be analyzed, so the frozen contract forbids exported mutators outright.
func (an *freezeAnalysis) checkExportedMutator(fd *ast.FuncDecl) {
	if !fd.Name.IsExported() {
		return
	}
	fn, ok := an.pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	check := func(idx int, v *types.Var, what string) {
		if v == nil || !an.isFrozen(v.Type()) {
			return
		}
		s := an.summaryFor(fn, idx)
		if s.writes {
			an.pass.Reportf(fd.Name.Pos(),
				"exported %s writes frozen %s through its %s (%s); frozen types may only be mutated inside their constructors",
				fd.Name.Name, typeShort(v.Type()), what, s.where)
		}
	}
	if recv := sig.Recv(); recv != nil {
		check(-1, recv, "receiver")
	}
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		check(i, p, "parameter "+p.Name())
	}
}

// typeShort renders a type's base name for diagnostics.
func typeShort(t types.Type) string {
	t = derefAll(t)
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

// summaryFor computes (memoized) what fn does with its param-th parameter
// (-1 = receiver) when that argument is a published frozen value.
// Recursive cycles resolve optimistically, like borrowflow.
func (an *freezeAnalysis) summaryFor(fn *types.Func, param int) freezeSummary {
	key := freezeSumKey{fn, param}
	if s, ok := an.summaries[key]; ok {
		return s
	}
	if an.inFlight[key] {
		return freezeSummary{known: true}
	}
	fd := an.decls[fn]
	if fd == nil || fd.Body == nil {
		return freezeSummary{} // external or bodyless: unknown
	}
	var obj types.Object
	if param < 0 {
		if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
			name := fd.Recv.List[0].Names[0]
			if name.Name != "_" {
				obj = an.pass.TypesInfo.Defs[name]
			}
		}
	} else {
		obj = paramObject(an.pass, fd, param)
	}
	if obj == nil {
		s := freezeSummary{known: true}
		an.summaries[key] = s
		return s
	}
	an.inFlight[key] = true
	w := newFreezeWalker(an, fd)
	w.summary = &freezeSummary{known: true}
	w.pub[obj] = true
	w.walkBlock(fd.Body.List)
	delete(an.inFlight, key)
	an.summaries[key] = *w.summary
	return *w.summary
}

// freezeWalker is one flow-sensitive pass over a function body. In entry
// mode (summary == nil) locally constructed frozen values are tracked as
// fresh, published ones as pub, and violations are reported; parameters
// are deliberately untracked — writes through them are judged at call
// sites via summaries (and at the declaration for exported functions). In
// summary mode only the subject parameter starts in pub and problems set
// summary bits instead of reporting.
type freezeWalker struct {
	an    *freezeAnalysis
	fd    *ast.FuncDecl
	fresh map[types.Object]bool
	store map[types.Object]bool
	pub   map[types.Object]bool

	summary *freezeSummary

	reported map[string]bool
}

func newFreezeWalker(an *freezeAnalysis, fd *ast.FuncDecl) *freezeWalker {
	return &freezeWalker{
		an:       an,
		fd:       fd,
		fresh:    map[types.Object]bool{},
		store:    map[types.Object]bool{},
		pub:      map[types.Object]bool{},
		reported: map[string]bool{},
	}
}

const (
	fproblemWrite = iota
	fproblemPublish
)

// problem records a violation as a diagnostic (entry mode) or summary bits
// (summary mode). where is the store-chain rendering carried by summaries
// so call-site diagnostics can name the offending store.
func (w *freezeWalker) problem(kind int, pos token.Pos, where string, format string, args ...any) {
	if w.summary != nil {
		if kind == fproblemWrite {
			w.summary.writes = true
			if w.summary.where == "" {
				w.summary.where = where + " at " + w.an.pass.Fset.Position(pos).String()
			}
		} else {
			w.summary.publishes = true
		}
		return
	}
	position := w.an.pass.Fset.Position(pos)
	key := position.String() + "|" + format
	if w.reported[key] {
		return
	}
	w.reported[key] = true
	w.an.pass.Reportf(pos, format, args...)
}

// --- statement walking -------------------------------------------------

func (w *freezeWalker) walkBlock(stmts []ast.Stmt) {
	for _, s := range stmts {
		w.walkStmt(s)
	}
}

func (w *freezeWalker) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.walkBlock(s.List)
	case *ast.AssignStmt:
		w.walkAssign(s)
	case *ast.IncDecStmt:
		w.checkWrite(s.X)
	case *ast.ExprStmt:
		w.eval(s.X)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.eval(r)
		}
	case *ast.SendStmt:
		w.eval(s.Chan)
		if k, root := w.eval(s.Value); k == fkFresh {
			// Sending the fresh value publishes it to the receiver.
			w.publish(root)
		}
	case *ast.GoStmt:
		// The goroutine body runs under the current construction state:
		// writes to fresh values are constructor parallelism (the table
		// fills), writes to published values are races and flagged.
		w.evalCall(s.Call)
	case *ast.DeferStmt:
		w.evalCall(s.Call)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.eval(s.Cond)
		then := w.fork()
		then.walkStmt(s.Body)
		w.merge(then)
		if s.Else != nil {
			els := w.fork()
			els.walkStmt(s.Else)
			w.merge(els)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		if s.Cond != nil {
			w.eval(s.Cond)
		}
		w.loopBody(func(it *freezeWalker) {
			it.walkStmt(s.Body)
			if s.Post != nil {
				it.walkStmt(s.Post)
			}
		})
	case *ast.RangeStmt:
		xKind, _ := w.eval(s.X)
		w.loopBody(func(it *freezeWalker) {
			it.bindRange(s.Key, fkNone)
			vk := fkNone
			if s.Value != nil && xKind != fkNone {
				if tv, ok := w.an.pass.TypesInfo.Types[s.Value]; ok {
					switch {
					case w.an.isFrozen(tv.Type):
						if xKind == fkFresh {
							vk = fkFresh
						} else {
							vk = fkPub
						}
					case refLike(tv.Type):
						if xKind == fkFresh {
							vk = fkFresh
						} else {
							vk = fkStore
						}
					}
				}
			}
			it.bindRange(s.Value, vk)
			it.walkStmt(s.Body)
		})
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		if s.Tag != nil {
			w.eval(s.Tag)
		}
		w.walkClauses(s.Body)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.walkClauses(s.Body)
	case *ast.SelectStmt:
		w.walkClauses(s.Body)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				kind := fkNone
				if i < len(vs.Values) {
					kind, _ = w.eval(vs.Values[i])
				} else if len(vs.Values) == 1 && len(vs.Names) > 1 {
					if i == 0 {
						kind, _ = w.eval(vs.Values[0])
					}
				} else if len(vs.Values) == 0 && w.summary == nil {
					// var t Table: the zero value is fresh.
					if obj := w.an.pass.TypesInfo.Defs[name]; obj != nil && w.an.isFrozen(obj.Type()) {
						kind = fkFresh
					}
				}
				if obj := w.an.pass.TypesInfo.Defs[name]; obj != nil {
					w.bind(obj, kind)
				}
			}
		}
	}
}

func (w *freezeWalker) walkClauses(body *ast.BlockStmt) {
	for _, clause := range body.List {
		c := w.fork()
		switch cl := clause.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				c.eval(e)
			}
			c.walkBlock(cl.Body)
		case *ast.CommClause:
			if cl.Comm != nil {
				c.walkStmt(cl.Comm)
			}
			c.walkBlock(cl.Body)
		}
		w.merge(c)
	}
}

// loopBody reaches a bounded fixpoint so aliases created in one iteration
// are live in the next; findings are deduplicated, so re-walking is safe.
func (w *freezeWalker) loopBody(body func(*freezeWalker)) {
	for i := 0; i < 4; i++ {
		before := len(w.fresh) + len(w.store) + len(w.pub)
		it := w.fork()
		body(it)
		w.merge(it)
		if len(w.fresh)+len(w.store)+len(w.pub) == before {
			return
		}
	}
}

func (w *freezeWalker) bindRange(e ast.Expr, kind freezeKind) {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	if obj := lhsObject(w.an.pass, id); obj != nil {
		w.bind(obj, kind)
	}
}

func (w *freezeWalker) fork() *freezeWalker {
	c := *w
	c.fresh = copySet(w.fresh)
	c.store = copySet(w.store)
	c.pub = copySet(w.pub)
	return &c
}

func copySet(m map[types.Object]bool) map[types.Object]bool {
	c := make(map[types.Object]bool, len(m))
	for k := range m { //lint:ordered
		c[k] = true
	}
	return c
}

// merge joins a branch path-insensitively: published state and aliases
// union in, but freshness must survive on BOTH paths — a branch that
// publishes or rebinds the value ends its construction window.
func (w *freezeWalker) merge(c *freezeWalker) {
	for k := range w.fresh { //lint:ordered
		if !c.fresh[k] {
			delete(w.fresh, k)
		}
	}
	for k := range c.store { //lint:ordered
		w.store[k] = true
	}
	for k := range c.pub { //lint:ordered
		if !w.fresh[k] {
			w.pub[k] = true
		}
	}
}

func (w *freezeWalker) bind(obj types.Object, kind freezeKind) {
	delete(w.fresh, obj)
	delete(w.store, obj)
	delete(w.pub, obj)
	switch kind {
	case fkFresh:
		w.fresh[obj] = true
	case fkStore:
		w.store[obj] = true
	case fkPub:
		w.pub[obj] = true
	}
}

// publish ends a value's construction window: the local now names a
// published value and later stores through it are violations.
func (w *freezeWalker) publish(root types.Object) {
	if root == nil {
		return
	}
	if w.fresh[root] {
		delete(w.fresh, root)
		w.pub[root] = true
	}
}

// --- assignments -------------------------------------------------------

func (w *freezeWalker) walkAssign(as *ast.AssignStmt) {
	kinds := make([]freezeKind, len(as.Lhs))
	roots := make([]types.Object, len(as.Lhs))
	if len(as.Rhs) == len(as.Lhs) {
		for i, rhs := range as.Rhs {
			kinds[i], roots[i] = w.eval(rhs)
		}
	} else if len(as.Rhs) == 1 {
		k, r := w.eval(as.Rhs[0])
		for i := range as.Lhs {
			kinds[i], roots[i] = k, r
		}
	}
	for i, lhs := range as.Lhs {
		w.assignTo(lhs, kinds[i], roots[i])
	}
}

func (w *freezeWalker) assignTo(lhs ast.Expr, kind freezeKind, rhsRoot types.Object) {
	if id, ok := lhs.(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		obj := lhsObject(w.an.pass, id)
		if obj == nil {
			return
		}
		if kind == fkFresh && isPackageLevel(obj) {
			// Assigning to a package variable publishes the value. The
			// package variable itself classifies as published by type on
			// every later use.
			w.publish(rhsRoot)
			return
		}
		w.bind(obj, kind)
		return
	}
	// Structured target: first, is the write itself legal?
	w.checkWrite(lhs)
	// Second, does the store publish a fresh RHS? Storing into a fresh
	// container keeps construction open; anything else ends it.
	if kind == fkFresh && rhsRoot != nil {
		root, _ := writeRoot(w.an.pass, lhs)
		if root == nil || !w.fresh[root] {
			w.publish(rhsRoot)
		}
	}
}

// checkWrite flags a structured store whose target memory belongs to a
// published frozen value. It peels the LHS chain outside-in: a field
// selection owned by a frozen struct is judged by its owner's
// classification, and any base classifying as published frozen (or
// interior storage of one) is a violation.
func (w *freezeWalker) checkWrite(lhs ast.Expr) {
	e := lhs
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			if owner, ok := w.frozenFieldOwner(x); ok {
				switch k, _ := w.eval(x.X); k {
				case fkFresh:
					// Constructor work on an under-construction value.
				case fkPub, fkStore:
					w.problem(fproblemWrite, lhs.Pos(), exprString(lhs),
						"%s stores to %s, mutating frozen %s after publication; frozen shared artifacts are immutable once they escape their constructor",
						w.fd.Name.Name, exprString(lhs), owner)
				}
				// fkNone: untracked base (e.g. a parameter) — the write is
				// judged at this function's call sites via its summary.
				return
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.Ident:
			if e == lhs {
				return // plain rebind, handled by bind
			}
			obj := lhsObject(w.an.pass, x)
			if obj == nil {
				return
			}
			switch {
			case w.fresh[obj]:
			case w.store[obj]:
				w.problem(fproblemWrite, lhs.Pos(), exprString(lhs),
					"%s writes frozen shared storage through alias %s; copy the data out instead of mutating the shared artifact",
					w.fd.Name.Name, x.Name)
			case w.pub[obj] || w.pkgLevelFrozen(obj):
				w.problem(fproblemWrite, lhs.Pos(), exprString(lhs),
					"%s stores to %s, mutating frozen %s after publication; frozen shared artifacts are immutable once they escape their constructor",
					w.fd.Name.Name, exprString(lhs), typeShort(obj.Type()))
			}
			return
		default:
			// Call results, etc.: classify and judge.
			if k, _ := w.eval(e); k == fkPub || k == fkStore {
				w.problem(fproblemWrite, lhs.Pos(), exprString(lhs),
					"%s stores to %s, which reaches frozen shared memory; frozen artifacts are immutable once published",
					w.fd.Name.Name, exprString(lhs))
			}
			return
		}
	}
}

// pkgLevelFrozen reports whether obj is a package-level variable of frozen
// type: such a variable is published by construction. Only meaningful in
// entry mode — summaries blame exactly their subject.
func (w *freezeWalker) pkgLevelFrozen(obj types.Object) bool {
	if w.summary != nil {
		return false
	}
	if _, ok := obj.(*types.Var); !ok {
		return false
	}
	return isPackageLevel(obj) && w.an.isFrozen(obj.Type())
}

// frozenFieldOwner reports whether sel selects a field whose owning struct
// is frozen, returning the owner's name. Promoted selections (reaching the
// field through embedding) count: the embedded frozen value is shared
// whatever wrapper it rides in.
func (w *freezeWalker) frozenFieldOwner(sel *ast.SelectorExpr) (string, bool) {
	s, ok := w.an.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", false
	}
	// Walk the selection index through the receiver type to find the
	// struct that declares the field.
	t := s.Recv()
	index := s.Index()
	for depth, i := range index {
		t = derefAll(t)
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			return "", false
		}
		if depth == len(index)-1 {
			if w.an.isFrozen(t) {
				return typeShort(t), true
			}
			return "", false
		}
		t = st.Field(i).Type()
	}
	return "", false
}

// --- expression evaluation --------------------------------------------

// eval classifies e and returns its kind plus, when the value is rooted at
// a tracked object, that root (used for publication kills).
func (w *freezeWalker) eval(e ast.Expr) (freezeKind, types.Object) {
	switch x := e.(type) {
	case nil:
		return fkNone, nil
	case *ast.Ident:
		obj := w.an.pass.TypesInfo.Uses[x]
		if obj == nil {
			obj = w.an.pass.TypesInfo.Defs[x]
		}
		switch {
		case obj == nil || isTypeOrFunc(obj):
			return fkNone, nil
		case w.fresh[obj]:
			return fkFresh, obj
		case w.store[obj]:
			return fkStore, obj
		case w.pub[obj]:
			return fkPub, obj
		case w.pkgLevelFrozen(obj):
			return fkPub, obj
		}
		return fkNone, nil
	case *ast.ParenExpr:
		return w.eval(x.X)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			w.eval(el)
		}
		if w.summary == nil {
			if tv, ok := w.an.pass.TypesInfo.Types[x]; ok && w.an.isFrozen(tv.Type) {
				return fkFresh, nil
			}
		}
		return fkNone, nil
	case *ast.KeyValueExpr:
		return w.eval(x.Value)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			if cl, ok := x.X.(*ast.CompositeLit); ok {
				return w.eval(cl)
			}
			k, root := w.eval(x.X)
			switch k {
			case fkFresh:
				return fkFresh, root
			case fkPub, fkStore:
				return fkStore, root
			}
			// &expr where a prefix of expr is frozen: pointer into frozen
			// storage (e.g. &g.In on a published Graph).
			if w.chainTouchesFrozen(x.X) {
				return fkStore, nil
			}
			return fkNone, nil
		}
		w.eval(x.X)
		return fkNone, nil
	case *ast.StarExpr:
		k, root := w.eval(x.X)
		return w.project(e, k), root
	case *ast.SelectorExpr:
		baseKind, baseRoot := w.eval(x.X)
		// A frozen-typed selection inherits the base: fresh stays fresh,
		// published stays published; untracked bases stay untracked (a
		// helper's writes through its parameters are judged at call
		// sites).
		if tv, ok := w.an.pass.TypesInfo.Types[e]; ok && w.an.isFrozen(tv.Type) {
			switch baseKind {
			case fkFresh:
				return fkFresh, baseRoot
			case fkPub, fkStore:
				return fkPub, nil
			}
			// A frozen value reached through package-level state is
			// published even when the container itself is not frozen.
			if w.summary == nil && w.rootedAtPackageLevel(x.X) {
				return fkPub, nil
			}
			return fkNone, nil
		}
		if _, isFrozenField := w.frozenFieldOwner(x); isFrozenField {
			switch baseKind {
			case fkFresh:
				return fkFresh, baseRoot
			case fkPub, fkStore:
				if tv, ok := w.an.pass.TypesInfo.Types[e]; ok && refLike(tv.Type) {
					return fkStore, nil
				}
			}
			return fkNone, nil
		}
		return w.project(e, baseKind), baseRoot
	case *ast.IndexExpr:
		w.eval(x.Index)
		k, root := w.eval(x.X)
		if pk := w.project(e, k); pk != fkNone {
			return pk, root
		}
		// A frozen element pulled out of package-level state (a registry
		// map, a cached suite) is published even when the container is
		// not itself frozen.
		if w.summary == nil {
			if tv, ok := w.an.pass.TypesInfo.Types[e]; ok && w.an.isFrozen(tv.Type) && w.rootedAtPackageLevel(x.X) {
				return fkPub, nil
			}
		}
		return fkNone, nil
	case *ast.SliceExpr:
		if x.Low != nil {
			w.eval(x.Low)
		}
		if x.High != nil {
			w.eval(x.High)
		}
		if x.Max != nil {
			w.eval(x.Max)
		}
		return w.eval(x.X)
	case *ast.TypeAssertExpr:
		k, root := w.eval(x.X)
		return w.project(e, k), root
	case *ast.BinaryExpr:
		w.eval(x.X)
		w.eval(x.Y)
		return fkNone, nil
	case *ast.FuncLit:
		// The closure body runs under the current state at some point;
		// violations inside it are violations whenever it runs. Writes to
		// currently-fresh values are constructor parallelism and allowed.
		c := w.fork()
		c.walkStmt(x.Body)
		w.merge(c)
		return fkNone, nil
	case *ast.CallExpr:
		return w.evalCall(x)
	}
	return fkNone, nil
}

// isTypeOrFunc filters non-value identifiers out of frozen classification.
func isTypeOrFunc(obj types.Object) bool {
	switch obj.(type) {
	case *types.TypeName, *types.Func, *types.Builtin, *types.PkgName:
		return true
	}
	return false
}

// project classifies a projection (field/index/deref/assert) of a base
// value.
func (w *freezeWalker) project(e ast.Expr, base freezeKind) freezeKind {
	if base == fkNone {
		return fkNone
	}
	tv, ok := w.an.pass.TypesInfo.Types[e]
	if !ok {
		return base
	}
	if w.an.isFrozen(tv.Type) {
		if base == fkFresh {
			return fkFresh
		}
		return fkPub
	}
	if base == fkFresh {
		if refLike(tv.Type) {
			return fkFresh
		}
		return fkNone
	}
	if refLike(tv.Type) {
		return fkStore
	}
	return fkNone
}

// rootedAtPackageLevel reports whether e's access chain bottoms out in a
// package-level variable (and is therefore reachable by every goroutine).
func (w *freezeWalker) rootedAtPackageLevel(e ast.Expr) bool {
	root, _ := writeRoot(w.an.pass, e)
	if root == nil {
		return false
	}
	if _, ok := root.(*types.Var); !ok {
		return false
	}
	return isPackageLevel(root)
}

// chainTouchesFrozen reports whether any selection in e's chain is a field
// of a published frozen owner (for &-of-interior classification).
func (w *freezeWalker) chainTouchesFrozen(e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			if _, ok := w.frozenFieldOwner(x); ok {
				k, _ := w.eval(x.X)
				return k == fkPub || k == fkStore
			}
			e = x.X
		default:
			return false
		}
	}
}

// --- calls -------------------------------------------------------------

func (w *freezeWalker) evalCall(call *ast.CallExpr) (freezeKind, types.Object) {
	pass := w.an.pass

	// Type conversions propagate their operand.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		var k freezeKind
		var root types.Object
		for _, arg := range call.Args {
			if ak, ar := w.eval(arg); ak > k {
				k, root = ak, ar
			}
		}
		return k, root
	}

	// Builtins: new(Frozen) is fresh; append/copy can write frozen storage.
	if name, ok := builtinName(pass, call.Fun); ok {
		return w.evalBuiltin(name, call)
	}

	// sync.Once lazy construction: stores to e's fields inside
	// e.once.Do(func(){...}) are constructor work by definition.
	if w.onceDoConstruction(call) {
		return fkNone, nil
	}

	// Immediately-invoked closure (including `go func(...){...}(...)`):
	// arguments are evaluated, then the body runs under the current state.
	if fl, ok := call.Fun.(*ast.FuncLit); ok {
		for _, arg := range call.Args {
			w.eval(arg)
		}
		c := w.fork()
		c.walkStmt(fl.Body)
		w.merge(c)
		return fkNone, nil
	}

	// Resolve the callee and receiver.
	var callee *types.Func
	var recvExpr ast.Expr
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		callee, _ = pass.TypesInfo.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		callee, _ = pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		if s, ok := pass.TypesInfo.Selections[fun]; ok && s.Kind() == types.MethodVal {
			recvExpr = fun.X
		} else {
			w.eval(fun.X)
		}
	default:
		w.eval(call.Fun)
	}

	known := callee != nil && w.an.decls[callee] != nil

	// Receiver first (summary index -1), then flat arguments.
	if recvExpr != nil {
		k, root := w.eval(recvExpr)
		w.checkCallArg(callee, known, -1, recvExpr, k, root)
	}
	for i, arg := range call.Args {
		k, root := w.eval(arg)
		w.checkCallArg(callee, known, i, arg, k, root)
	}

	// A call result of frozen type is a finished, published artifact:
	// mutating a constructor's return value is exactly the bug to catch.
	if w.summary == nil {
		if tv, ok := pass.TypesInfo.Types[call]; ok && w.an.isFrozen(tv.Type) {
			return fkPub, nil
		}
	}
	return fkNone, nil
}

// checkCallArg applies a callee's summary to one frozen-relevant argument.
func (w *freezeWalker) checkCallArg(callee *types.Func, known bool, idx int, arg ast.Expr, kind freezeKind, root types.Object) {
	if kind == fkNone {
		return
	}
	if !known {
		// Unknown callee (other package, interface, stdlib): reads are the
		// norm for shared artifacts, so passing a published value is fine.
		// A FRESH value handed to an unknown callee may be retained — end
		// its construction window conservatively.
		if kind == fkFresh {
			w.publish(root)
		}
		return
	}
	s := w.an.summaryFor(callee, idx)
	switch kind {
	case fkFresh:
		if s.publishes {
			w.publish(root)
		}
	case fkPub:
		if s.writes {
			w.problem(fproblemWrite, arg.Pos(), "via "+callee.Name()+": "+s.where,
				"%s passes published frozen %s to %s, which stores to it (%s); frozen shared artifacts are immutable once they escape their constructor",
				w.fd.Name.Name, typeShort(typeOf(w.an.pass, arg)), callee.Name(), s.where)
		}
	case fkStore:
		if s.writes {
			w.problem(fproblemWrite, arg.Pos(), "via "+callee.Name()+": "+s.where,
				"%s passes an alias of frozen shared storage to %s, which writes through it (%s)",
				w.fd.Name.Name, callee.Name(), s.where)
		}
	}
}

func typeOf(pass *Pass, e ast.Expr) types.Type {
	if tv, ok := pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return types.Typ[types.Invalid]
}

// onceDoConstruction recognizes e.once.Do(func(){...}) where once is a
// sync.Once field of e, and walks the closure with e treated as fresh: the
// Do body is the value's lazy constructor, run exactly once before any
// reader sequences after the Do. Returns true if the call was handled.
func (w *freezeWalker) onceDoConstruction(call *ast.CallExpr) bool {
	fun, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || fun.Sel.Name != "Do" {
		return false
	}
	callee, ok := w.an.pass.TypesInfo.Uses[fun.Sel].(*types.Func)
	if !ok || callee.Pkg() == nil || callee.Pkg().Path() != "sync" {
		return false
	}
	// fun.X must be <base>.once (a field selection on a plain identifier);
	// the lazily constructed value is that identifier.
	onceSel, ok := fun.X.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	baseIdent, ok := onceSel.X.(*ast.Ident)
	if !ok {
		return false
	}
	obj := w.an.pass.TypesInfo.Uses[baseIdent]
	if obj == nil || len(call.Args) != 1 {
		return false
	}
	fl, ok := call.Args[0].(*ast.FuncLit)
	if !ok {
		// Do(name): evaluate conservatively and move on.
		w.eval(call.Args[0])
		return true
	}
	c := w.fork()
	delete(c.pub, obj)
	delete(c.store, obj)
	c.fresh[obj] = true
	c.walkStmt(fl.Body)
	// State discovered inside the Do body stays local — the value is only
	// fresh within its own once — but summary bits found there propagate.
	if w.summary != nil {
		w.summary.writes = w.summary.writes || c.summary.writes
		w.summary.publishes = w.summary.publishes || c.summary.publishes
	}
	return true
}

func (w *freezeWalker) evalBuiltin(name string, call *ast.CallExpr) (freezeKind, types.Object) {
	switch name {
	case "new":
		if w.summary == nil && len(call.Args) == 1 {
			if tv, ok := w.an.pass.TypesInfo.Types[call.Args[0]]; ok && tv.IsType() && w.an.isFrozen(tv.Type) {
				return fkFresh, nil
			}
		}
		return fkNone, nil
	case "append":
		var k freezeKind
		var root types.Object
		for i, arg := range call.Args {
			ak, ar := w.eval(arg)
			if i == 0 {
				k, root = ak, ar
				if ak == fkStore || ak == fkPub {
					w.problem(fproblemWrite, arg.Pos(), "append("+exprString(arg)+", ...)",
						"%s appends to frozen shared storage (%s); append may write the shared backing array in place",
						w.fd.Name.Name, exprString(arg))
				}
			}
		}
		return k, root
	case "copy":
		if len(call.Args) == 2 {
			if dk, _ := w.eval(call.Args[0]); dk == fkStore || dk == fkPub {
				w.problem(fproblemWrite, call.Args[0].Pos(), "copy("+exprString(call.Args[0])+", ...)",
					"%s copies into frozen shared storage (%s); frozen artifacts are immutable once published",
					w.fd.Name.Name, exprString(call.Args[0]))
			}
			w.eval(call.Args[1])
		}
		return fkNone, nil
	default:
		for _, arg := range call.Args {
			w.eval(arg)
		}
		return fkNone, nil
	}
}

// writeRoot walks an LHS chain to its root object, reporting whether the
// chain dereferences (index/field/star) on the way.
func writeRoot(pass *Pass, e ast.Expr) (types.Object, bool) {
	deref := false
	for {
		switch x := e.(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[x]
			if obj == nil {
				obj = pass.TypesInfo.Defs[x]
			}
			return obj, deref
		case *ast.IndexExpr:
			e, deref = x.X, true
		case *ast.SelectorExpr:
			e, deref = x.X, true
		case *ast.StarExpr:
			e, deref = x.X, true
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil, deref
		}
	}
}
