package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BorrowFlow is the dataflow half of the Policy borrow contract. The
// syntactic policycontract analyzer catches direct writes through and
// stores of the `lines` slice inside Victim; BorrowFlow goes further with
// a reaching-definitions pass that follows aliases of the borrowed slice
//
//   - through local assignments, with kills on reassignment (x := lines;
//     x = nil; p.f = x is clean — the alias no longer reaches the store),
//   - into struct-field stores, composite literals, closures, channel
//     sends, and goroutines, flagging any path where borrowed storage
//     outlives the call,
//   - and across same-package helper calls: every helper reachable from
//     Victim/Touch gets a per-parameter summary (writes through it /
//     retains it / returns an alias of it), so delegation and embedding
//     shapes the syntactic checker cannot see through are still caught at
//     the Victim call site.
//
// Delegating the borrow to another Policy's Victim (an interface call to
// a method named Victim with the same shape) is allowed: the borrow
// obligation transfers to the delegate, which is itself analyzed when its
// package is. Passing an alias to any other function the analyzer cannot
// see is flagged — copy the needed data out instead.
var BorrowFlow = &Analyzer{
	Name: "borrowflow",
	Doc: "reaching-definitions analysis of the borrowed lines slice in " +
		"Policy.Victim/Touch: follows aliases through locals, struct fields, " +
		"and helper calls, flagging writes to and retention of the borrow",
	Run: runBorrowFlow,
}

// aliasKind classifies how an expression relates to the borrowed storage.
type aliasKind int

const (
	notAlias aliasKind = iota
	// storageAlias values point directly into the borrowed backing array:
	// the lines slice itself, re-slices, and &lines[i] pointers. Writing
	// through one corrupts simulator state.
	storageAlias
	// containerAlias values (structs, nested slices, maps, closures) hold
	// a storage alias indirectly. Writing through one is harmless, but
	// letting one outlive the call retains the borrow.
	containerAlias
)

func runBorrowFlow(pass *Pass) error {
	an := &borrowAnalysis{
		pass:       pass,
		decls:      make(map[*types.Func]*ast.FuncDecl),
		summaries:  make(map[summaryKey]paramSummary),
		inProgress: make(map[summaryKey]bool),
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					an.decls[fn] = fd
				}
			}
		}
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if fd.Name.Name != "Victim" && fd.Name.Name != "Touch" {
				continue
			}
			for _, param := range borrowedParams(pass, fd) {
				w := &borrowWalker{
					an:       an,
					fd:       fd,
					storage:  map[types.Object]bool{param: true},
					contain:  map[types.Object]bool{},
					reported: map[string]bool{},
				}
				w.walkBlock(fd.Body.List)
			}
		}
	}
	return nil
}

// borrowedParams returns the objects of every []Line parameter of fd.
func borrowedParams(pass *Pass, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj == nil || name.Name == "_" {
				continue
			}
			if sl, ok := obj.Type().(*types.Slice); ok && isNamedStruct(sl.Elem(), "Line") {
				out = append(out, obj)
			}
		}
	}
	return out
}

// borrowAnalysis carries per-package state shared across walkers: the
// declaration index and memoized helper summaries.
type borrowAnalysis struct {
	pass       *Pass
	decls      map[*types.Func]*ast.FuncDecl
	summaries  map[summaryKey]paramSummary
	inProgress map[summaryKey]bool
}

type summaryKey struct {
	fn    *types.Func
	param int
}

// paramSummary describes what a helper does with one parameter when that
// parameter aliases borrowed storage.
type paramSummary struct {
	writes       bool // writes through the parameter's backing storage
	retains      bool // stores the parameter where it outlives the call
	returnsAlias bool // some result aliases the parameter
	known        bool // body was available for analysis
}

// summaryFor computes (memoized) the summary of fn's param-th parameter.
// Recursive cycles resolve optimistically: the fixpoint of a self-call
// adds nothing beyond what the body itself does.
func (an *borrowAnalysis) summaryFor(fn *types.Func, param int) paramSummary {
	key := summaryKey{fn, param}
	if s, ok := an.summaries[key]; ok {
		return s
	}
	if an.inProgress[key] {
		return paramSummary{known: true}
	}
	fd := an.decls[fn]
	if fd == nil || fd.Body == nil {
		return paramSummary{} // external or bodyless: unknown
	}
	obj := paramObject(an.pass, fd, param)
	if obj == nil {
		// Unnamed/blank parameter cannot be used by the body.
		s := paramSummary{known: true}
		an.summaries[key] = s
		return s
	}
	an.inProgress[key] = true
	w := &borrowWalker{
		an:      an,
		fd:      fd,
		storage: map[types.Object]bool{obj: true},
		contain: map[types.Object]bool{},
		summary: &paramSummary{known: true},
	}
	w.walkBlock(fd.Body.List)
	delete(an.inProgress, key)
	an.summaries[key] = *w.summary
	return *w.summary
}

// paramObject returns the object of fd's i-th parameter (flat index).
func paramObject(pass *Pass, fd *ast.FuncDecl, i int) types.Object {
	idx := 0
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			if idx == i {
				return nil
			}
			idx++
			continue
		}
		for _, name := range field.Names {
			if idx == i {
				if name.Name == "_" {
					return nil
				}
				return pass.TypesInfo.Defs[name]
			}
			idx++
		}
	}
	return nil
}

// borrowWalker is one flow-sensitive pass over a function body. In entry
// mode (summary == nil) problems are reported as diagnostics; in summary
// mode they set the summary bits instead.
type borrowWalker struct {
	an      *borrowAnalysis
	fd      *ast.FuncDecl
	storage map[types.Object]bool
	contain map[types.Object]bool
	summary *paramSummary

	reported map[string]bool // entry-mode finding dedupe across loop re-walks
}

const (
	problemWrite = iota
	problemRetain
)

// problem records a write/retention either as a diagnostic (entry mode)
// or as summary bits.
func (w *borrowWalker) problem(kind int, pos token.Pos, format string, args ...any) {
	if w.summary != nil {
		if kind == problemWrite {
			w.summary.writes = true
		} else {
			w.summary.retains = true
		}
		return
	}
	position := w.an.pass.Fset.Position(pos)
	key := position.String() + "|" + format
	if w.reported[key] {
		return
	}
	w.reported[key] = true
	w.an.pass.Reportf(pos, format, args...)
}

// --- statement walking -------------------------------------------------

func (w *borrowWalker) walkBlock(stmts []ast.Stmt) {
	for _, s := range stmts {
		w.walkStmt(s)
	}
}

func (w *borrowWalker) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.walkBlock(s.List)
	case *ast.AssignStmt:
		w.walkAssign(s)
	case *ast.IncDecStmt:
		if root, deref := w.rootOf(s.X); deref && root != nil && w.storage[root] {
			w.problem(problemWrite, s.X.Pos(),
				"%s writes the borrowed lines storage through %s; lines aliases the level's set array and must not be modified",
				w.fd.Name.Name, exprString(s.X))
		}
	case *ast.ExprStmt:
		w.eval(s.X)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if w.eval(r) != notAlias && w.summary != nil {
				w.summary.returnsAlias = true
			}
		}
	case *ast.SendStmt:
		w.eval(s.Chan)
		if w.eval(s.Value) != notAlias {
			w.problem(problemRetain, s.Value.Pos(),
				"%s sends an alias of the borrowed lines slice on a channel; the receiver outlives the call's read-only borrow",
				w.fd.Name.Name)
		}
	case *ast.GoStmt:
		w.goCall(s.Call)
	case *ast.DeferStmt:
		// A deferred call still runs before the borrow ends; analyze it
		// like a normal call.
		w.eval(s.Call)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.eval(s.Cond)
		then := w.fork()
		then.walkStmt(s.Body)
		w.merge(then)
		if s.Else != nil {
			els := w.fork()
			els.walkStmt(s.Else)
			w.merge(els)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		if s.Cond != nil {
			w.eval(s.Cond)
		}
		w.loopBody(func(it *borrowWalker) {
			it.walkStmt(s.Body)
			if s.Post != nil {
				it.walkStmt(s.Post)
			}
		})
	case *ast.RangeStmt:
		xKind := w.eval(s.X)
		w.loopBody(func(it *borrowWalker) {
			it.bindRangeVar(s.Key, notAlias)
			// The value variable copies one element; the copy is only an
			// alias when the element itself is indirect borrowed storage
			// (e.g. ranging over [][]Line).
			vk := notAlias
			if xKind != notAlias && s.Value != nil {
				if tv, ok := w.an.pass.TypesInfo.Types[s.Value]; ok && borrowStorageType(tv.Type) {
					vk = storageAlias
				}
			}
			it.bindRangeVar(s.Value, vk)
			it.walkStmt(s.Body)
		})
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		if s.Tag != nil {
			w.eval(s.Tag)
		}
		w.walkClauses(s.Body)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.walkClauses(s.Body)
	case *ast.SelectStmt:
		w.walkClauses(s.Body)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					kind := notAlias
					if i < len(vs.Values) {
						kind = w.eval(vs.Values[i])
					}
					if obj := w.an.pass.TypesInfo.Defs[name]; obj != nil {
						w.bind(obj, kind)
					}
				}
			}
		}
	}
}

// walkClauses analyzes each clause of a switch/select body from a fork of
// the current state and merges the outcomes.
func (w *borrowWalker) walkClauses(body *ast.BlockStmt) {
	for _, clause := range body.List {
		c := w.fork()
		switch cl := clause.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				c.eval(e)
			}
			c.walkBlock(cl.Body)
		case *ast.CommClause:
			if cl.Comm != nil {
				c.walkStmt(cl.Comm)
			}
			c.walkBlock(cl.Body)
		}
		w.merge(c)
	}
}

// loopBody runs body repeatedly until the alias state stops growing (a
// bounded fixpoint), so aliases created in one iteration are live in the
// next. Findings are deduplicated, so re-walking is safe.
func (w *borrowWalker) loopBody(body func(*borrowWalker)) {
	for i := 0; i < 4; i++ {
		before := len(w.storage) + len(w.contain)
		it := w.fork()
		body(it)
		w.merge(it)
		if len(w.storage)+len(w.contain) == before {
			return
		}
	}
}

// bindRangeVar tracks a range key/value variable.
func (w *borrowWalker) bindRangeVar(e ast.Expr, kind aliasKind) {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	if obj := lhsObject(w.an.pass, id); obj != nil {
		w.bind(obj, kind)
	}
}

// fork clones the alias state for one branch; findings stay shared.
func (w *borrowWalker) fork() *borrowWalker {
	c := *w
	c.storage = make(map[types.Object]bool, len(w.storage))
	for k, v := range w.storage { //lint:ordered
		c.storage[k] = v
	}
	c.contain = make(map[types.Object]bool, len(w.contain))
	for k, v := range w.contain { //lint:ordered
		c.contain[k] = v
	}
	return &c
}

// merge unions a branch's alias state back in (path-insensitive join).
func (w *borrowWalker) merge(c *borrowWalker) {
	for k := range c.storage { //lint:ordered
		w.storage[k] = true
	}
	for k := range c.contain { //lint:ordered
		w.contain[k] = true
	}
	if w.summary != nil && c.summary != w.summary {
		w.summary.writes = w.summary.writes || c.summary.writes
		w.summary.retains = w.summary.retains || c.summary.retains
		w.summary.returnsAlias = w.summary.returnsAlias || c.summary.returnsAlias
	}
}

// bind records that obj now holds a value of the given kind, killing any
// previous alias fact (the reaching-definitions kill).
func (w *borrowWalker) bind(obj types.Object, kind aliasKind) {
	delete(w.storage, obj)
	delete(w.contain, obj)
	switch kind {
	case storageAlias:
		w.storage[obj] = true
	case containerAlias:
		w.contain[obj] = true
	}
}

// --- assignments -------------------------------------------------------

func (w *borrowWalker) walkAssign(as *ast.AssignStmt) {
	// Evaluate all RHS first (Go semantics), collecting kinds.
	kinds := make([]aliasKind, len(as.Lhs))
	if len(as.Rhs) == len(as.Lhs) {
		for i, rhs := range as.Rhs {
			kinds[i] = w.eval(rhs)
		}
	} else if len(as.Rhs) == 1 {
		// Multi-value call/type-assert: apply the single kind to every LHS
		// whose static type can hold borrowed storage.
		k := w.eval(as.Rhs[0])
		for i, lhs := range as.Lhs {
			if tv, ok := w.an.pass.TypesInfo.Types[lhs]; ok && !borrowStorageType(tv.Type) && k == storageAlias {
				kinds[i] = notAlias
			} else {
				kinds[i] = k
			}
		}
	}
	for i, lhs := range as.Lhs {
		w.assignTo(lhs, kinds[i], as)
	}
}

// assignTo processes one LHS of an assignment whose RHS has the given
// alias kind.
func (w *borrowWalker) assignTo(lhs ast.Expr, kind aliasKind, as *ast.AssignStmt) {
	if id, ok := lhs.(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		obj := lhsObject(w.an.pass, id)
		if obj == nil {
			return
		}
		if kind != notAlias && isPackageLevel(obj) {
			w.problem(problemRetain, lhs.Pos(),
				"%s stores an alias of the borrowed lines slice in package variable %s; lines is borrowed for the duration of the call",
				w.fd.Name.Name, id.Name)
			return
		}
		w.bind(obj, kind)
		return
	}

	root, _ := w.rootOf(lhs)
	switch {
	case root != nil && w.storage[root]:
		// Any write through a storage alias mutates borrowed memory,
		// whatever is being stored.
		w.problem(problemWrite, lhs.Pos(),
			"%s writes the borrowed lines storage through %s; lines aliases the level's set array and must not be modified",
			w.fd.Name.Name, exprString(lhs))
	case kind == notAlias:
		// Storing a non-alias somewhere: nothing to track.
	case root == nil || isPackageLevel(root) || outlivesCall(root):
		w.problem(problemRetain, lhs.Pos(),
			"%s stores an alias of the borrowed lines slice in %s, which outlives the call; copy the data instead of retaining the borrow",
			w.fd.Name.Name, exprString(lhs))
	default:
		// Alias stored into a body-local composite (struct field, map or
		// slice element): the local becomes a container.
		w.contain[root] = true
	}
}

// rootOf walks an index/field/deref chain to its root object. deref
// reports whether the chain goes through at least one indexing, field
// selection, or pointer dereference (i.e. the LHS writes *through* the
// root rather than rebinding it).
func (w *borrowWalker) rootOf(e ast.Expr) (root types.Object, deref bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			obj := w.an.pass.TypesInfo.Uses[x]
			if obj == nil {
				obj = w.an.pass.TypesInfo.Defs[x]
			}
			return obj, deref
		case *ast.IndexExpr:
			e, deref = x.X, true
		case *ast.SelectorExpr:
			e, deref = x.X, true
		case *ast.StarExpr:
			e, deref = x.X, true
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil, deref
		}
	}
}

// isPackageLevel reports whether obj is a package-scope variable.
func isPackageLevel(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return false
	}
	return v.Parent() == v.Pkg().Scope()
}

// outlivesCall reports whether writing through obj reaches memory that
// survives the call: pointer-typed variables (including pointer receivers
// and pointer parameters) point at caller-owned state.
func outlivesCall(obj types.Object) bool {
	if obj == nil {
		return true
	}
	t := obj.Type()
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Interface:
		return true
	}
	return false
}

// --- expression evaluation --------------------------------------------

// eval classifies e's value and analyzes any calls/closures inside it.
func (w *borrowWalker) eval(e ast.Expr) aliasKind {
	switch x := e.(type) {
	case nil:
		return notAlias
	case *ast.Ident:
		obj := w.an.pass.TypesInfo.Uses[x]
		if obj == nil {
			obj = w.an.pass.TypesInfo.Defs[x]
		}
		switch {
		case obj == nil:
			return notAlias
		case w.storage[obj]:
			return storageAlias
		case w.contain[obj]:
			return containerAlias
		}
		return notAlias
	case *ast.ParenExpr:
		return w.eval(x.X)
	case *ast.SliceExpr:
		if x.Low != nil {
			w.eval(x.Low)
		}
		if x.High != nil {
			w.eval(x.High)
		}
		if x.Max != nil {
			w.eval(x.Max)
		}
		return w.eval(x.X)
	case *ast.IndexExpr:
		w.eval(x.Index)
		base := w.eval(x.X)
		if base == notAlias {
			return notAlias
		}
		// lines[i] copies a Line value (safe); container[i] may hand back
		// the stored slice.
		return w.kindByType(e, base)
	case *ast.SelectorExpr:
		base := w.eval(x.X)
		if base == notAlias {
			return notAlias
		}
		return w.kindByType(e, base)
	case *ast.StarExpr:
		base := w.eval(x.X)
		if base == notAlias {
			return notAlias
		}
		return w.kindByType(e, base)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			root, _ := w.rootOf(x.X)
			switch {
			case root != nil && w.storage[root]:
				return storageAlias // &lines[i]: pointer into borrowed storage
			case root != nil && w.contain[root]:
				return containerAlias
			}
			return w.eval(x.X)
		}
		w.eval(x.X)
		return notAlias
	case *ast.BinaryExpr:
		w.eval(x.X)
		w.eval(x.Y)
		return notAlias
	case *ast.KeyValueExpr:
		return w.eval(x.Value)
	case *ast.TypeAssertExpr:
		base := w.eval(x.X)
		if base == notAlias {
			return notAlias
		}
		return w.kindByType(e, base)
	case *ast.CompositeLit:
		kind := notAlias
		for _, el := range x.Elts {
			if w.eval(el) != notAlias {
				kind = containerAlias
			}
		}
		return kind
	case *ast.FuncLit:
		if w.capturesAlias(x) {
			// The closure value holds the borrow; whether that is a
			// problem depends on where the closure goes, so treat it as a
			// container and let stores/calls decide.
			return containerAlias
		}
		return notAlias
	case *ast.CallExpr:
		return w.evalCall(x)
	}
	return notAlias
}

// kindByType refines an alias derived from base projection (index, field,
// deref): the projected value is only dangerous if its own type can hold
// borrowed storage.
func (w *borrowWalker) kindByType(e ast.Expr, base aliasKind) aliasKind {
	tv, ok := w.an.pass.TypesInfo.Types[e]
	if !ok {
		return base
	}
	if borrowStorageType(tv.Type) {
		return storageAlias
	}
	if base == containerAlias && mayHoldStorage(tv.Type) {
		return containerAlias
	}
	return notAlias
}

// borrowStorageType reports whether t directly aliases Line storage:
// []Line, *Line, *[]Line, or [][]Line.
func borrowStorageType(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		if isNamedStruct(u.Elem(), "Line") {
			return true
		}
		return borrowStorageType(u.Elem())
	case *types.Pointer:
		if isNamedStruct(u.Elem(), "Line") {
			return true
		}
		return borrowStorageType(u.Elem())
	}
	return false
}

// mayHoldStorage reports whether t could transitively contain borrowed
// storage (structs, maps, slices, funcs, interfaces — anything but plain
// scalars and Line values themselves).
func mayHoldStorage(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Basic:
		return false
	}
	return true
}

// capturesAlias reports whether a closure body references any tracked
// alias variable.
func (w *borrowWalker) capturesAlias(fl *ast.FuncLit) bool {
	found := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := w.an.pass.TypesInfo.Uses[id]; obj != nil && (w.storage[obj] || w.contain[obj]) {
			found = true
			return false
		}
		return !found
	})
	return found
}

// --- calls -------------------------------------------------------------

// evalCall analyzes a call's effect on tracked aliases and classifies its
// result.
func (w *borrowWalker) evalCall(call *ast.CallExpr) aliasKind {
	pass := w.an.pass

	// Type conversions propagate the operand's kind.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		kind := notAlias
		for _, arg := range call.Args {
			if k := w.eval(arg); k > kind {
				kind = k
			}
		}
		return kind
	}

	// Builtins.
	if name, ok := builtinName(pass, call.Fun); ok {
		return w.evalBuiltin(name, call)
	}

	// Immediately-invoked closure: its body runs now, under the current
	// alias state.
	if fl, ok := call.Fun.(*ast.FuncLit); ok {
		for _, arg := range call.Args {
			w.eval(arg)
		}
		w.walkStmt(fl.Body)
		return notAlias
	}

	// Resolve the callee.
	var callee *types.Func
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		callee, _ = pass.TypesInfo.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		w.eval(fun.X)
		callee, _ = pass.TypesInfo.Uses[fun.Sel].(*types.Func)
	default:
		w.eval(call.Fun)
	}

	result := notAlias
	for i, arg := range call.Args {
		kind := w.eval(arg)
		if kind == notAlias {
			continue
		}
		// A spread `lines...` into a variadic copies Line values: safe.
		if call.Ellipsis.IsValid() && i == len(call.Args)-1 && kind == storageAlias {
			if sl, ok := pass.TypesInfo.Types[arg]; ok {
				if s, ok2 := sl.Type.Underlying().(*types.Slice); ok2 && isNamedStruct(s.Elem(), "Line") {
					continue
				}
			}
		}
		switch {
		case callee != nil && w.an.decls[callee] != nil:
			// Same-package helper with a body: consult its summary.
			s := w.an.summaryFor(callee, i)
			if s.writes && kind == storageAlias {
				w.problem(problemWrite, arg.Pos(),
					"%s passes the borrowed lines slice to %s, which writes through it; lines aliases the level's set array and must not be modified",
					w.fd.Name.Name, callee.Name())
			}
			if s.retains {
				w.problem(problemRetain, arg.Pos(),
					"%s passes the borrowed lines slice to %s, which retains it beyond the call; copy the data instead of storing the borrow",
					w.fd.Name.Name, callee.Name())
			}
			if s.returnsAlias && result == notAlias {
				result = kind
			}
		case isVictimDelegate(pass, call, callee):
			// Delegating the borrow to another Policy's Victim transfers
			// the obligation; the delegate is analyzed in its own package.
		default:
			w.problem(problemRetain, arg.Pos(),
				"%s passes an alias of the borrowed lines slice to %s, which poptlint cannot analyze; copy the needed data out of lines instead",
				w.fd.Name.Name, calleeName(call.Fun, callee))
		}
	}
	return result
}

// goCall flags aliases escaping into a goroutine, which by construction
// outlives the borrow discipline.
func (w *borrowWalker) goCall(call *ast.CallExpr) {
	escapes := false
	if fl, ok := call.Fun.(*ast.FuncLit); ok && w.capturesAlias(fl) {
		escapes = true
	}
	for _, arg := range call.Args {
		if w.eval(arg) != notAlias {
			escapes = true
		}
	}
	if escapes {
		w.problem(problemRetain, call.Pos(),
			"%s hands an alias of the borrowed lines slice to a goroutine; the goroutine outlives the call's read-only borrow",
			w.fd.Name.Name)
	}
}

// evalBuiltin handles append/copy specially: appending to or copying into
// borrowed storage writes it.
func (w *borrowWalker) evalBuiltin(name string, call *ast.CallExpr) aliasKind {
	switch name {
	case "append":
		result := notAlias
		for i, arg := range call.Args {
			kind := w.eval(arg)
			if kind == notAlias {
				continue
			}
			if i == 0 && kind == storageAlias {
				w.problem(problemWrite, arg.Pos(),
					"%s appends to the borrowed lines slice; append may write the level's backing array in place",
					w.fd.Name.Name)
				result = storageAlias
				continue
			}
			if call.Ellipsis.IsValid() && i == len(call.Args)-1 && kind == storageAlias {
				continue // spread copies Line values out: safe
			}
			if result == notAlias {
				result = containerAlias
			}
		}
		return result
	case "copy":
		if len(call.Args) == 2 {
			if w.eval(call.Args[0]) == storageAlias {
				w.problem(problemWrite, call.Args[0].Pos(),
					"%s copies into the borrowed lines slice; lines aliases the level's set array and must not be modified",
					w.fd.Name.Name)
			}
			w.eval(call.Args[1]) // reading out of the borrow is fine
		}
		return notAlias
	default:
		for _, arg := range call.Args {
			w.eval(arg)
		}
		return notAlias
	}
}

// builtinName resolves call.Fun to a builtin's name, if it is one.
func builtinName(pass *Pass, fun ast.Expr) (string, bool) {
	id, ok := fun.(*ast.Ident)
	if !ok {
		return "", false
	}
	if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
		return id.Name, true
	}
	return "", false
}

// isVictimDelegate reports whether call forwards the borrow to another
// Policy's Victim/Touch method (same contract, obligation transfers).
func isVictimDelegate(pass *Pass, call *ast.CallExpr, callee *types.Func) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Victim" && sel.Sel.Name != "Touch") {
		return false
	}
	s, ok := pass.TypesInfo.Selections[sel]
	return ok && s.Kind() == types.MethodVal
}

// calleeName renders the callee for diagnostics.
func calleeName(fun ast.Expr, callee *types.Func) string {
	if callee != nil {
		return callee.Name()
	}
	return exprString(fun)
}
