package lint

import "testing"

func TestLoopCapture(t *testing.T) {
	RunTest(t, "testdata", NewLoopCapture("capture"), "capture")
}
