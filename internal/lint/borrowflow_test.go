package lint

import (
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
	"testing"
)

func TestBorrowFlow(t *testing.T) {
	RunTest(t, "testdata", BorrowFlow, "borrow", "borrowmiss")
}

// TestPolicyContractMissesHelperRetention pins the gap that motivates
// borrowflow: a Victim that launders the borrowed lines slice through a
// helper is invisible to the syntactic policycontract analyzer but caught
// by borrowflow's helper summaries.
func TestPolicyContractMissesHelperRetention(t *testing.T) {
	if got := collectFindings(t, "testdata", PolicyContract, "borrowmiss"); len(got) != 0 {
		t.Fatalf("policycontract unexpectedly reports on borrowmiss (the fixture no longer demonstrates the gap): %v", got)
	}
	got := collectFindings(t, "testdata", BorrowFlow, "borrowmiss")
	if len(got) == 0 {
		t.Fatal("borrowflow reports nothing on borrowmiss; the helper-retention case is unprotected")
	}
	for _, msg := range got {
		if !strings.Contains(msg, "retains it beyond the call") {
			t.Errorf("unexpected borrowflow finding: %s", msg)
		}
	}
}

// collectFindings loads a testdata package and returns the analyzer's raw
// finding messages, ignoring // want expectations entirely.
func collectFindings(t *testing.T, testdata string, a *Analyzer, pkgPath string) []string {
	t.Helper()
	fset := token.NewFileSet()
	loader := &testLoader{
		root: testdata,
		fset: fset,
		std:  importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs: make(map[string]*types.Package),
	}
	dir := filepath.Join(testdata, "src", pkgPath)
	files, _, err := parseTestDir(fset, dir)
	if err != nil {
		t.Fatalf("parsing %s: %v", dir, err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: loader}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking %s: %v", pkgPath, err)
	}
	pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}
	var msgs []string
	pass.Report = func(d Diagnostic) { msgs = append(msgs, d.Message) }
	if err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}
	return msgs
}
