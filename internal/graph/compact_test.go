package graph

import (
	"bytes"
	"testing"
)

// compactShapes returns the equivalence-test corpus: one graph per
// generator family (the structural shapes the suite exercises — skew,
// community locality, uniform randomness, bounded-degree mesh), plus
// degenerate and escape-stressing shapes (degrees straddling the 0xFF
// exception threshold) and a radix-partitioned build.
func compactShapes(t testing.TB, includeRadix bool) []*Graph {
	t.Helper()
	hub := func(n, d int) *Graph {
		// One hub of degree d (exception-table path when d >= 255), the
		// rest sparse.
		edges := make([]Edge, 0, d+n)
		for i := 1; i <= d; i++ {
			edges = append(edges, Edge{0, V(i % (n - 1) * 1)}, Edge{V(i % n), V((i * 7) % n)})
		}
		return FromEdges("hub", n, edges)
	}
	shapes := []*Graph{
		PowerLaw(1<<11, 8, 2.0, 42),
		Community(1<<11, 12, 64, 0.8, 43),
		Kron(12, 4, 44),
		Uniform(1<<12, 4<<12, 45),
		MeshScrambled(48, 48, 46),
		FromEdges("empty", 4, nil),
		FromEdges("loops", 1, []Edge{{0, 0}}),
		hub(1024, 254),
		hub(1024, 255),
		hub(1024, 300),
	}
	if includeRadix {
		n := radixMinVerts + 999
		shapes = append(shapes, FromEdges("radix", n, synthEdges(n, 3*n+777, 11)))
	}
	return shapes
}

// TestCompactPlainEquivalence is the property test pinning the compact
// layout to the plain one: degree, Start, full iteration (IterFrom from
// several origins), Neighbors/CopyNeighbors/Neighs, and NextAfter at
// every boundary (below the first neighbor, at and between every
// neighbor, past the last) must agree vertex for vertex. It runs in the
// CI race job (-race -count=2), so the chunk-parallel encoder's
// disjoint-range claims are raced too.
func TestCompactPlainEquivalence(t *testing.T) {
	for _, plain := range compactShapes(t, !testing.Short()) {
		plain := plain
		t.Run(plain.Name, func(t *testing.T) {
			comp := plain.WithLayout(LayoutCompact)
			if !comp.Out.IsCompact() || !comp.In.IsCompact() {
				t.Fatal("WithLayout(LayoutCompact) left a plain direction")
			}
			// Sampled vertices get the expensive exhaustive probes on the
			// big radix graph; small graphs check every vertex.
			stride := 1
			if plain.NumVertices() > 1<<16 {
				stride = 17
			}
			for dir, pair := range []struct{ p, c *Adj }{
				{&plain.Out, &comp.Out}, {&plain.In, &comp.In},
			} {
				p, c := pair.p, pair.c
				if p.N() != c.N() || p.M() != c.M() {
					t.Fatalf("dir %d: dims (%d,%d) != (%d,%d)", dir, c.N(), c.M(), p.N(), p.M())
				}
				n := p.N()
				it := c.IterFrom(0)
				var buf, cbuf []V
				for v := 0; v < n; v++ {
					want := p.Neighs(V(v))
					ns, start := it.Next()
					if start != p.OA[v] {
						t.Fatalf("dir %d v %d: iter start %d, want %d", dir, v, start, p.OA[v])
					}
					if !equalV(ns, want) {
						t.Fatalf("dir %d v %d: iter neighbors diverge", dir, v)
					}
					if v%stride != 0 {
						continue
					}
					if got := c.Degree(V(v)); got != len(want) {
						t.Fatalf("dir %d v %d: degree %d, want %d", dir, v, got, len(want))
					}
					if got := c.Start(V(v)); got != p.OA[v] {
						t.Fatalf("dir %d v %d: start %d, want %d", dir, v, got, p.OA[v])
					}
					if got := c.Neighbors(V(v), &buf); !equalV(got, want) {
						t.Fatalf("dir %d v %d: Neighbors diverges", dir, v)
					}
					if cap(cbuf) < len(want) {
						cbuf = make([]V, len(want))
					}
					if k := c.CopyNeighbors(cbuf[:cap(cbuf)], V(v)); k != len(want) || !equalV(cbuf[:k], want) {
						t.Fatalf("dir %d v %d: CopyNeighbors diverges", dir, v)
					}
					if got := c.Neighs(V(v)); !equalV(got, want) {
						t.Fatalf("dir %d v %d: Neighs diverges", dir, v)
					}
					// NextAfter at every boundary.
					probes := []V{0}
					if len(want) > 0 {
						first := want[0]
						if first > 0 {
							probes = append(probes, first-1)
						}
						for _, u := range want {
							probes = append(probes, u)
							if u+1 != 0 {
								probes = append(probes, u+1)
							}
						}
					}
					for _, cur := range probes {
						gn, gok := c.NextAfter(V(v), cur)
						wn, wok := p.NextAfter(V(v), cur)
						if gn != wn || gok != wok {
							t.Fatalf("dir %d v %d: NextAfter(%d) = (%d,%v), want (%d,%v)",
								dir, v, cur, gn, gok, wn, wok)
						}
					}
				}
				if got := c.Start(V(n)); got != uint64(p.M()) {
					t.Fatalf("dir %d: Start(n) = %d, want %d", dir, got, p.M())
				}
				// Iteration must also be resumable from mid-graph offsets,
				// including mid-block ones (the per-worker entry points of
				// fillLines/mergeLines).
				for _, from := range []int{n / 3, n/2 + 1, n - 1} {
					if from < 0 || from >= n {
						continue
					}
					it := c.IterFrom(V(from))
					pit := p.IterFrom(V(from))
					for v := from; v < n && v < from+2*compactBlock; v++ {
						ns, start := it.Next()
						wns, wstart := pit.Next()
						if start != wstart || !equalV(ns, wns) {
							t.Fatalf("dir %d IterFrom(%d) v %d diverges", dir, from, v)
						}
					}
				}
			}
			// Checksums embed in corpus stream keys and must not depend on
			// the layout.
			if plain.Checksum() != comp.Checksum() {
				t.Fatal("checksum depends on layout")
			}
			// Round trips: compact -> plain materialization, and the POPTG2
			// serialization (with its fully validating decoder).
			back := comp.WithLayout(LayoutPlain)
			if !equalU64(back.Out.OA, plain.Out.OA) || !equalV(back.Out.NA, plain.Out.NA) ||
				!equalU64(back.In.OA, plain.In.OA) || !equalV(back.In.NA, plain.In.NA) {
				t.Fatal("materializePlain does not invert compactFromPlain")
			}
			var sink bytes.Buffer
			if err := Write(&sink, comp); err != nil {
				t.Fatalf("write compact: %v", err)
			}
			rg, err := Read(&sink)
			if err != nil {
				t.Fatalf("read compact: %v", err)
			}
			if rg.Checksum() != plain.Checksum() {
				t.Fatal("POPTG2 round trip changed the graph")
			}
			if !rg.Out.IsCompact() {
				t.Fatal("POPTG2 round trip lost the compact layout")
			}
			// The compact layout must actually be smaller on every
			// non-degenerate shape (the claim -memstats reports).
			if plain.NumEdges() > 1000 {
				if comp.Out.MemBytes() >= plain.Out.MemBytes() {
					t.Errorf("compact out-adjacency not smaller: %d >= %d",
						comp.Out.MemBytes(), plain.Out.MemBytes())
				}
			}
		})
	}
}

// TestCompactEncoderWorkerInvariance pins the chunk-parallel encoder: the
// compact bytes are identical at every worker count.
func TestCompactEncoderWorkerInvariance(t *testing.T) {
	n := 1 << 13
	plain := FromEdges("inv", n, synthEdges(n, 6*minEdgesPerWorker, 5))
	var want *adjCompact
	for _, p := range []int{1, 2, 4} {
		var got *adjCompact
		atGOMAXPROCS(p, func() { got = compactFromPlain(&plain.Out) })
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(got.data, want.data) || !bytes.Equal(got.deg, want.deg) ||
			!equalU64(got.byteBase, want.byteBase) || !equalU64(got.edgeBase, want.edgeBase) {
			t.Fatalf("GOMAXPROCS=%d: encoder output differs", p)
		}
	}
}

// FuzzAdjBlocks drives the validating compact-adjacency decoder with
// corrupted real encodings: truncated blocks, corrupt varints, wrapped
// (non-monotone) neighbor accumulations, exception-table disagreements.
// The decoder must error on anything inconsistent and never panic; on
// acceptance, random access must agree with sequential iteration over the
// decoded structure.
func FuzzAdjBlocks(f *testing.F) {
	for _, g := range compactShapes(f, false) {
		c := compactFromPlain(&g.Out)
		f.Add(appendCompactAdj(nil, c))
	}
	// Targeted corruptions of one real encoding.
	base := appendCompactAdj(nil, compactFromPlain(&Kron(10, 4, 7).Out))
	f.Add(base[:len(base)/2])                  // truncated data
	f.Add(append([]byte{0xff, 0xff}, base...)) // absurd header varint
	mut := append([]byte(nil), base...)
	mut[len(mut)-1] |= 0x80 // final varint never terminates
	f.Add(mut)
	f.Fuzz(func(t *testing.T, data []byte) {
		c, _, err := decodeCompactAdj(data)
		if err != nil {
			return
		}
		// Accepted payloads must behave: sequential iteration and random
		// access agree everywhere, within the validated bounds.
		a := Adj{c: c}
		n := a.N()
		it := a.IterFrom(0)
		var edges uint64
		for v := 0; v < n; v++ {
			ns, start := it.Next()
			if start != a.Start(V(v)) {
				t.Fatalf("vertex %d: iter start %d != Start %d", v, start, a.Start(V(v)))
			}
			if len(ns) != a.Degree(V(v)) {
				t.Fatalf("vertex %d: iter degree %d != Degree %d", v, len(ns), a.Degree(V(v)))
			}
			for i := 1; i < len(ns); i++ {
				if ns[i] <= ns[i-1] {
					t.Fatalf("vertex %d: accepted non-monotone neighbors", v)
				}
			}
			edges += uint64(len(ns))
		}
		if edges != uint64(a.M()) {
			t.Fatalf("degrees sum to %d, M() = %d", edges, a.M())
		}
	})
}

// BenchmarkCompactEncode tracks the final build phase the compact layout
// adds (chunk-parallel block encoding of a built CSR).
func BenchmarkCompactEncode(b *testing.B) {
	n := 1 << 16
	g := FromEdges("bench", n, synthEdges(n, 8*n, 3))
	b.SetBytes(int64(8*(n+1) + 4*g.NumEdges()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compactFromPlain(&g.Out)
	}
}

// BenchmarkNeighborIter compares the layout-neutral inner loop on both
// layouts: the decode cost per edge is the honest overhead the compact
// layout pays for its footprint.
func BenchmarkNeighborIter(b *testing.B) {
	n := 1 << 16
	g := FromEdges("bench", n, synthEdges(n, 8*n, 3))
	comp := g.WithLayout(LayoutCompact)
	for _, tc := range []struct {
		name string
		a    *Adj
	}{{"plain", &g.Out}, {"compact", &comp.Out}} {
		b.Run(tc.name, func(b *testing.B) {
			b.SetBytes(int64(4 * g.NumEdges()))
			var sink uint64
			for i := 0; i < b.N; i++ {
				it := tc.a.IterFrom(0)
				for v := 0; v < n; v++ {
					ns, start := it.Next()
					sink += start
					for _, u := range ns {
						sink += uint64(u)
					}
				}
			}
			_ = sink
		})
	}
}
