package graph

import "fmt"

// CSR-Segmenting (Zhang et al., "Making Caches Work for Graph Analytics")
// is 1-D tiling for pull executions: the source-vertex range is split into
// numTiles contiguous segments and a separate CSC is built per segment
// containing only the edges whose source lies in that segment. A pull
// kernel then runs once per tile, so its irregular srcData accesses are
// confined to the tile's source range (which can be sized to fit in the
// LLC). The paper shows tiling and P-OPT are mutually enabling (Fig. 13):
// tiling shrinks the Rereference Matrix column P-OPT must pin, and P-OPT
// reaches a given miss rate with fewer tiles than DRRIP needs.

// Tile is one segment of a segmented graph: a CSC restricted to sources in
// [SrcLo, SrcHi).
type Tile struct {
	SrcLo, SrcHi V
	In           Adj // incoming neighbors of every destination, filtered to this source range
}

// Segmented is a graph partitioned into tiles for a pull execution.
type Segmented struct {
	G     *Graph
	Tiles []Tile
}

// Segment splits g into numTiles source-range tiles of near-equal vertex
// count. Each tile's CSC preserves sorted neighbor order.
func Segment(g *Graph, numTiles int) *Segmented {
	n := g.NumVertices()
	if numTiles < 1 {
		numTiles = 1
	}
	if numTiles > n {
		numTiles = n
	}
	s := &Segmented{G: g, Tiles: make([]Tile, numTiles)}
	for t := 0; t < numTiles; t++ {
		lo := V(t * n / numTiles)
		hi := V((t + 1) * n / numTiles)
		s.Tiles[t] = Tile{SrcLo: lo, SrcHi: hi, In: filterAdjBySource(&g.In, lo, hi)}
	}
	return s
}

// filterAdjBySource keeps only neighbors in [lo, hi) of each vertex list.
// Because lists are sorted, each filtered list is a contiguous sub-slice.
// Both passes run through the sequential iterator, so a compact input is
// decoded streaming rather than per-vertex.
func filterAdjBySource(in *Adj, lo, hi V) Adj {
	n := in.N()
	oa := make([]uint64, n+1)
	var total uint64
	it := in.IterFrom(0)
	for d := 0; d < n; d++ {
		oa[d] = total
		ns, _ := it.Next()
		a, b := lowerBound(ns, lo), lowerBound(ns, hi)
		total += uint64(b - a)
	}
	oa[n] = total
	na := make([]V, total)
	var w uint64
	it = in.IterFrom(0)
	for d := 0; d < n; d++ {
		ns, _ := it.Next()
		a, b := lowerBound(ns, lo), lowerBound(ns, hi)
		w += uint64(copy(na[w:], ns[a:b]))
	}
	return Adj{OA: oa, NA: na}
}

func lowerBound(sorted []V, x V) int {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		if sorted[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Validate checks that the tiles partition the edge set exactly.
func (s *Segmented) Validate() error {
	total := 0
	for i, t := range s.Tiles {
		if t.In.N() != s.G.NumVertices() {
			return fmt.Errorf("tile %d: has %d vertices, want %d", i, t.In.N(), s.G.NumVertices())
		}
		for d := 0; d < t.In.N(); d++ {
			for _, src := range t.In.Neighs(V(d)) {
				if src < t.SrcLo || src >= t.SrcHi {
					return fmt.Errorf("tile %d [%d,%d): edge src %d out of range", i, t.SrcLo, t.SrcHi, src)
				}
			}
		}
		total += t.In.M()
	}
	if total != s.G.NumEdges() {
		return fmt.Errorf("tiles hold %d edges, graph has %d", total, s.G.NumEdges())
	}
	return nil
}

// TileTranspose builds the out-direction adjacency restricted to sources in
// the tile's range, needed by T-OPT/P-OPT when simulating a tiled pull
// execution (next references only within the tile's edges). Vertices
// outside [SrcLo, SrcHi) get empty lists.
func (s *Segmented) TileTranspose(i int) Adj {
	t := s.Tiles[i]
	n := s.G.NumVertices()
	oa := make([]uint64, n+1)
	var total uint64
	for v := V(0); int(v) < n; v++ {
		oa[v] = total
		if v >= t.SrcLo && v < t.SrcHi {
			// All out-edges of v appear in this tile (tile filters by src).
			total += uint64(s.G.Out.Degree(v))
		}
	}
	oa[n] = total
	na := make([]V, total)
	var w uint64
	it := s.G.Out.IterFrom(t.SrcLo)
	for v := t.SrcLo; v < t.SrcHi; v++ {
		ns, _ := it.Next()
		w += uint64(copy(na[w:], ns))
	}
	return Adj{OA: oa, NA: na}
}
