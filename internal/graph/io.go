package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strings"
)

// Serialization uses a small binary container holding the name and both
// adjacency directions, so generated suites can be saved by cmd/graphgen
// and reloaded by the benchmark harness without regeneration. Plain graphs
// write the historical "POPTG1" form, byte-identical to every file written
// before the compact layout existed; graphs holding a compact direction
// write "POPTG2", which prefixes each adjacency with a layout byte and
// stores compact directions in their encoded form (they load without a
// decode-reencode round trip, and Read validates the payload fully). Read
// accepts both.

const (
	magic   = "POPTG1"
	magicV2 = "POPTG2"

	adjLayoutPlain   = 0
	adjLayoutCompact = 1
)

// Write serializes g to w.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	v2 := g.Out.IsCompact() || g.In.IsCompact()
	head := magic
	if v2 {
		head = magicV2
	}
	if _, err := bw.WriteString(head); err != nil {
		return err
	}
	if err := writeString(bw, g.Name); err != nil {
		return err
	}
	for _, a := range []*Adj{&g.Out, &g.In} {
		if v2 {
			if err := writeAdjV2(bw, a); err != nil {
				return err
			}
		} else if err := writeAdj(bw, a); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes a graph written by Write.
func Read(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	v2 := false
	switch string(head) {
	case magic:
	case magicV2:
		v2 = true
	default:
		return nil, fmt.Errorf("graph: bad magic %q", head)
	}
	name, err := readString(br)
	if err != nil {
		return nil, err
	}
	g := &Graph{Name: name}
	for _, a := range []*Adj{&g.Out, &g.In} {
		if v2 {
			if err := readAdjV2(br, a); err != nil {
				return nil, err
			}
		} else if err := readAdj(br, a); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// writeAdjV2 writes a layout byte, then either the POPTG1 array form or
// the length-prefixed compact payload.
func writeAdjV2(w io.Writer, a *Adj) error {
	if !a.IsCompact() {
		if _, err := w.Write([]byte{adjLayoutPlain}); err != nil {
			return err
		}
		return writeAdj(w, a)
	}
	if _, err := w.Write([]byte{adjLayoutCompact}); err != nil {
		return err
	}
	payload := appendCompactAdj(nil, a.c)
	if err := binary.Write(w, binary.LittleEndian, uint64(len(payload))); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readAdjV2(r io.Reader, a *Adj) error {
	var lay [1]byte
	if _, err := io.ReadFull(r, lay[:]); err != nil {
		return err
	}
	switch lay[0] {
	case adjLayoutPlain:
		return readAdj(r, a)
	case adjLayoutCompact:
		var size uint64
		if err := binary.Read(r, binary.LittleEndian, &size); err != nil {
			return err
		}
		if size > 1<<40 {
			return fmt.Errorf("graph: unreasonable compact payload size %d", size)
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(r, payload); err != nil {
			return err
		}
		c, rest, err := decodeCompactAdj(payload)
		if err != nil {
			return err
		}
		if len(rest) != 0 {
			return fmt.Errorf("graph: %d trailing bytes after compact adjacency", len(rest))
		}
		*a = Adj{c: c}
		return nil
	}
	return fmt.Errorf("graph: unknown adjacency layout %d", lay[0])
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("graph: unreasonable string length %d", n)
	}
	var sb strings.Builder
	if _, err := io.CopyN(&sb, r, int64(n)); err != nil {
		return "", err
	}
	return sb.String(), nil
}

func writeAdj(w io.Writer, a *Adj) error {
	if err := binary.Write(w, binary.LittleEndian, uint64(len(a.OA))); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, a.OA); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(len(a.NA))); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, a.NA)
}

func readAdj(r io.Reader, a *Adj) error {
	var n uint64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return err
	}
	a.OA = make([]uint64, n)
	if err := binary.Read(r, binary.LittleEndian, a.OA); err != nil {
		return err
	}
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return err
	}
	a.NA = make([]V, n)
	return binary.Read(r, binary.LittleEndian, a.NA)
}

// ParseEdgeList parses a whitespace-separated "src dst" edge list (one edge
// per line, '#' comments allowed) with n vertices, for loading external
// graphs through cmd/graphgen.
func ParseEdgeList(r io.Reader, name string, n int) (*Graph, error) {
	var edges []Edge
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var s, d int
		if _, err := fmt.Sscan(line, &s, &d); err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
		}
		if s < 0 || d < 0 || s >= n || d >= n {
			return nil, fmt.Errorf("graph: line %d: endpoint out of range [0,%d)", lineNo, n)
		}
		edges = append(edges, Edge{V(s), V(d)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return FromEdges(name, n, edges), nil
}
