package graph

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"
)

// The paper evaluates on five inputs (Table III): DBP (DBpedia, power-law
// with moderate skew), UK-02 (web crawl, strong community structure), KRON
// (synthetic Kronecker, extreme skew), URAND (uniform random), and HBUBL
// (hugebubbles, a bounded-degree, high-diameter mesh). Those graphs are not
// redistributable here, so each generator below reproduces the structural
// property that drives the paper's cache behaviour: degree distribution,
// skew, community locality, and diameter. DESIGN.md records this
// substitution.

// Edge generation is chunk-parallel: genEdges (below) fills the edge
// slice in fixed genChunk-sized granules, each granule drawing from its
// own deterministic RNG stream, so the byte output depends only on the
// generator parameters and never on GOMAXPROCS. Chunk 0 always draws
// from the historical rand.NewSource(seed) stream, which keeps every
// single-chunk graph — the whole tiny and default suites, pinned by the
// sweep and determinism goldens — byte-identical to the old serial
// generators; only graphs above genChunk edges (the large suite) get the
// new multi-stream layout.

// genChunk is the fixed generation granule in edges. It must never
// change without regenerating every golden that records a graph larger
// than one chunk (none are checked in today).
const genChunk = 1 << 21

// chunkSeed derives the RNG seed of generation chunk c from the
// generator's seed. Chunk 0 is the legacy stream; later chunks mix the
// chunk index through splitmix64 so streams are uncorrelated even for
// adjacent seeds.
func chunkSeed(seed int64, c int) int64 {
	if c == 0 {
		return seed
	}
	return int64(splitmix64(uint64(seed) + uint64(c)*0x9e3779b97f4a7c15))
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-distributed
// 64-bit mixer (Steele et al., "Fast splittable pseudorandom number
// generators").
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fastSource is a SplitMix64-sequence rand.Source64 used for non-legacy
// generation chunks: a counter stepped by the golden gamma and pushed
// through the finalizer per draw. Several times cheaper than math/rand's
// default lagged-Fibonacci source (no feedback array, no Seed scan), with
// the statistical quality SplitMix64 is known for — large-suite
// generation is RNG-bound on few cores, so the source is on the measured
// path. Chunk 0 never uses it: the legacy default source is what the
// tiny/default golden streams were recorded against.
type fastSource struct{ state uint64 }

//popt:hot
func (s *fastSource) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *fastSource) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *fastSource) Seed(seed int64) { s.state = uint64(seed) }

// Float64 and Intn mirror rand.Rand's draws on the concrete source, so
// generator inner loops inline them instead of paying an interface call
// per draw (the draws are the dominant cost of large-suite generation
// on few cores). Intn uses the Lemire multiply-shift reduction: the
// bias against a true uniform is under n/2^64 — immaterial for
// synthetic-graph streams, and non-legacy chunks are new streams anyway.
//
//popt:hot
func (s *fastSource) Float64() float64 { return float64(s.Uint64()>>11) / (1 << 53) }

//popt:hot
func (s *fastSource) Intn(n int) int {
	hi, _ := bits.Mul64(s.Uint64(), uint64(n))
	return int(hi)
}

// zipfTable is the cumulative distribution of a bounded Zipf(s, v, imax)
// variate: a drop-in replacement for rand.Zipf draws on non-legacy
// generation chunks. rand.Zipf's rejection-inversion pays two Exps and a
// Log per draw; for the small domains the generators use, one Float64
// plus an in-cache binary search draws from the same family of
// distributions at a fraction of the cost. (The table is the exact
// discrete Zipf CDF, not rand.Zipf's continuous approximation of it, so
// the two draw paths agree in distribution shape but not sample-for-
// sample — fine for non-legacy chunks, whose streams are new anyway.)
type zipfTable []float64

// newZipfTable builds the CDF of P(k) ∝ (v+k)^-s for k in [0, imax].
func newZipfTable(s, v float64, imax int) zipfTable {
	cdf := make(zipfTable, imax+1)
	sum := 0.0
	for k := 0; k <= imax; k++ {
		sum += math.Pow(v+float64(k), -s)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	return cdf
}

// locate inverts the CDF at r (a uniform [0,1) draw): the
// inverse-transform sample.
//
//popt:hot
func (t zipfTable) locate(r float64) uint64 {
	lo, hi := 0, len(t)-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t[mid] < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return uint64(lo)
}

// genEdges runs fill over [0, m) in genChunk granules. rng0 is the
// generator's legacy RNG — possibly already advanced by setup draws —
// and is used verbatim for chunk 0 (with fs == nil); every later chunk
// gets a fresh fastSource, handed to fill both wrapped in a rand.Rand
// (for rand.Zipf and friends) and directly — inner loops that draw
// through the concrete fs inline the draw, skipping an interface call
// per random number. Single-chunk generations run inline on the calling
// goroutine; larger ones fan the chunks out over GOMAXPROCS workers
// (each chunk's RNG is private to the one worker that processes it).
func genEdges(m int, rng0 *rand.Rand, seed int64, fill func(rng *rand.Rand, fs *fastSource, lo, hi int)) {
	chunks := (m + genChunk - 1) / genChunk
	if chunks <= 1 {
		fill(rng0, nil, 0, m)
		return
	}
	w := runtime.GOMAXPROCS(0)
	if w > chunks {
		w = chunks
	}
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for c := k; c < chunks; c += w {
				rng, fs := rng0, (*fastSource)(nil)
				if c > 0 {
					fs = &fastSource{state: uint64(chunkSeed(seed, c))}
					rng = rand.New(fs)
				}
				lo := c * genChunk
				hi := lo + genChunk
				if hi > m {
					hi = m
				}
				fill(rng, fs, lo, hi)
			}
		}(k)
	}
	wg.Wait()
}

// Kron generates an R-MAT/Kronecker graph with 2^scale vertices and
// edgeFactor*2^scale directed edges using the Graph500 partition
// probabilities (0.57, 0.19, 0.19, 0.05). These graphs have the extremely
// skewed degree distribution the paper observes makes hub vertices hit by
// chance ("KRON" in the paper).
func Kron(scale, edgeFactor int, seed int64) *Graph {
	rng0 := rand.New(rand.NewSource(seed))
	n := 1 << scale
	m := edgeFactor * n
	edges := make([]Edge, m)
	const a, b, c = 0.57, 0.19, 0.19
	// Integer thresholds of the partition probabilities scaled to 2^32:
	// non-legacy chunks compare 32-bit halves of one raw Uint64 against
	// these, drawing two recursion levels per source call instead of one
	// Float64 per level — the R-MAT loop is scale (23 at ScaleLarge)
	// draws per edge, the hottest loop of KRON generation. Quantizing the
	// partition probabilities to 2^-32 shifts them by under 2.4e-10;
	// non-legacy streams are new in any case.
	twoTo32 := float64(1 << 32)
	ta := uint32(a * twoTo32)
	tb := uint32((a + b) * twoTo32)
	tc := uint32((a + b + c) * twoTo32)
	genEdges(m, rng0, seed, func(rng *rand.Rand, fs *fastSource, lo, hi int) {
		if fs == nil {
			// Legacy chunk: the Float64 draw sequence the tiny/default
			// goldens were recorded against.
			for i := lo; i < hi; i++ {
				var src, dst int
				for bit := scale - 1; bit >= 0; bit-- {
					r := rng.Float64()
					switch {
					case r < a: // top-left: neither bit set
					case r < a+b:
						dst |= 1 << bit
					case r < a+b+c:
						src |= 1 << bit
					default:
						src |= 1 << bit
						dst |= 1 << bit
					}
				}
				edges[i] = Edge{V(src), V(dst)}
			}
			return
		}
		for i := lo; i < hi; i++ {
			var src, dst int
			var r uint64
			have := 0
			for bit := scale - 1; bit >= 0; bit-- {
				if have == 0 {
					r = fs.Uint64()
					have = 2
				}
				r32 := uint32(r)
				r >>= 32
				have--
				switch {
				case r32 < ta: // top-left: neither bit set
				case r32 < tb:
					dst |= 1 << bit
				case r32 < tc:
					src |= 1 << bit
				default:
					src |= 1 << bit
					dst |= 1 << bit
				}
			}
			edges[i] = Edge{V(src), V(dst)}
		}
	})
	return FromEdges(fmt.Sprintf("KRON-%d", scale), n, edges)
}

// Uniform generates an Erdős–Rényi-style graph with n vertices and m
// directed edges whose endpoints are drawn uniformly ("URAND" in the
// paper). Uniform graphs have no exploitable skew or community structure,
// which is where heuristic policies struggle most.
func Uniform(n, m int, seed int64) *Graph {
	rng0 := rand.New(rand.NewSource(seed))
	edges := make([]Edge, m)
	genEdges(m, rng0, seed, func(rng *rand.Rand, fs *fastSource, lo, hi int) {
		if fs != nil {
			for i := lo; i < hi; i++ {
				edges[i] = Edge{V(fs.Intn(n)), V(fs.Intn(n))}
			}
			return
		}
		for i := lo; i < hi; i++ {
			edges[i] = Edge{V(rng.Intn(n)), V(rng.Intn(n))}
		}
	})
	return FromEdges(fmt.Sprintf("URAND-%d", log2ceil(n)), n, edges)
}

// PowerLaw generates a graph whose out-degrees follow a Zipf distribution
// with the given exponent (typical web/social exponents are 1.7-2.2) and
// whose endpoints are chosen preferentially, yielding correlated in-degree
// skew. With exponent around 2 and no locality this resembles "DBP".
func PowerLaw(n, avgDeg int, exponent float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	// Draw out-degrees from a truncated Zipf, rescaled to hit avgDeg.
	zipf := rand.NewZipf(rng, exponent, 1, uint64(n-1))
	degs := make([]int, n)
	total := 0
	for i := range degs {
		degs[i] = int(zipf.Uint64()) + 1
		total += degs[i]
	}
	scale := float64(avgDeg*n) / float64(total)
	m := 0
	for i := range degs {
		degs[i] = int(math.Round(float64(degs[i]) * scale))
		if degs[i] == 0 {
			degs[i] = 1
		}
		m += degs[i]
	}
	// Destination selection: preferential by sampling an edge endpoint from
	// a vertex-repeated pool approximated by sampling another Zipf draw and
	// mapping it to a random permutation so hubs are spread over the ID
	// space (real graph IDs are not degree-sorted).
	perm := rng.Perm(n)
	// Edge index e belongs to the source vertex whose degree-prefix range
	// contains e; the prefix array lets each generation chunk find its
	// first source with a binary search and walk forward from there.
	prefix := make([]uint64, n+1)
	for i, d := range degs {
		prefix[i+1] = prefix[i] + uint64(d)
	}
	edges := make([]Edge, m)
	genEdges(m, rng, seed, func(rng *rand.Rand, _ *fastSource, lo, hi int) {
		// rand.Zipf keeps no state of its own (all state is in rng), so a
		// fresh Zipf over chunk 0's legacy rng continues the historical
		// draw sequence exactly. (The unbounded-domain Zipf needs
		// rand.Zipf's rejection-inversion, so this generator draws through
		// rand.Rand on every chunk.)
		z := rand.NewZipf(rng, exponent, 1, uint64(n-1))
		src := sort.Search(n, func(s int) bool { return prefix[s+1] > uint64(lo) })
		for e := lo; e < hi; e++ {
			for prefix[src+1] <= uint64(e) {
				src++
			}
			dst := perm[int(z.Uint64())%n]
			edges[e] = Edge{V(src), V(dst)}
		}
	})
	return FromEdges(fmt.Sprintf("DBP-%d", log2ceil(n)), n, edges)
}

// Community generates a graph with block community structure plus power-law
// degrees: vertices are grouped into communities of the given size and each
// edge stays inside its community with probability pIntra, otherwise it
// goes to a uniformly random vertex. Contiguous community IDs give the
// spatial locality of web crawls ("UK-02" in the paper), which is the
// structure HATS-BDFS exploits.
func Community(n, avgDeg, communitySize int, pIntra float64, seed int64) *Graph {
	rng0 := rand.New(rand.NewSource(seed))
	m := n * avgDeg
	edges := make([]Edge, m)
	ztab := newZipfTable(1.8, 1, 63)
	genEdges(m, rng0, seed, func(rng *rand.Rand, fs *fastSource, lo, hi int) {
		if fs == nil {
			// Legacy chunk: rand.Zipf hub skew on the legacy stream, in the
			// historical draw order — the sequence the tiny/default goldens
			// were recorded against.
			zipf := rand.NewZipf(rng, 1.8, 1, 63)
			for i := lo; i < hi; i++ {
				src := rng.Intn(n)
				var dst int
				if rng.Float64() < pIntra {
					base := (src / communitySize) * communitySize
					span := communitySize
					if base+span > n {
						span = n - base
					}
					dst = base + rng.Intn(span)
				} else {
					dst = rng.Intn(n)
				}
				// Skew the intra-community choice toward community-local hubs.
				if h := int(zipf.Uint64()); h > 0 && rng.Float64() < 0.3 {
					dst = (dst/communitySize)*communitySize + h%communitySize
					if dst >= n {
						dst = n - 1
					}
				}
				edges[i] = Edge{V(src), V(dst)}
			}
			return
		}
		// Non-legacy chunks draw everything through the concrete source,
		// take hub skew from the CDF table (one Float64 and a 6-step
		// in-cache search instead of rand.Zipf's per-draw Exp/Exp/Log),
		// and draw the cheap 0.3 acceptance gate before the table — the
		// same joint distribution (the draws are independent) with ~70%
		// fewer table draws. This loop dominates generation of the
		// 115 M-edge large-scale UK input; sample-exact match to the
		// legacy stream is not required off chunk 0.
		for i := lo; i < hi; i++ {
			src := fs.Intn(n)
			var dst int
			if fs.Float64() < pIntra {
				base := (src / communitySize) * communitySize
				span := communitySize
				if base+span > n {
					span = n - base
				}
				dst = base + fs.Intn(span)
			} else {
				dst = fs.Intn(n)
			}
			if fs.Float64() < 0.3 {
				if h := int(ztab.locate(fs.Float64())); h > 0 {
					dst = (dst/communitySize)*communitySize + h%communitySize
					if dst >= n {
						dst = n - 1
					}
				}
			}
			edges[i] = Edge{V(src), V(dst)}
		}
	})
	return FromEdges(fmt.Sprintf("UK-%d", log2ceil(n)), n, edges)
}

// Mesh generates a rows×cols 2-D grid with bidirectional edges to the right
// and down neighbors. Grids are bounded-degree (≤4) and have diameter
// O(rows+cols): the high-diameter, normal-degree structure of "HBUBL"
// (hugebubbles). Its Radii behaviour matches the paper's: direction
// switching never flips to pull, so Radii is skipped for it.
func Mesh(rows, cols int) *Graph {
	n := rows * cols
	edges := make([]Edge, 0, 4*n)
	id := func(r, c int) V { return V(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, Edge{id(r, c), id(r, c+1)}, Edge{id(r, c+1), id(r, c)})
			}
			if r+1 < rows {
				edges = append(edges, Edge{id(r, c), id(r+1, c)}, Edge{id(r+1, c), id(r, c)})
			}
		}
	}
	return FromEdges(fmt.Sprintf("HBUBL-%dx%d", rows, cols), n, edges)
}

// Scramble relabels g's vertices with a uniformly random permutation,
// destroying any locality the ID order encodes while preserving structure
// (degrees, diameter, communities). The name is kept.
func Scramble(g *Graph, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	p := make(Permutation, g.NumVertices())
	for i, x := range rng.Perm(g.NumVertices()) {
		p[i] = V(x)
	}
	return p.Apply(g).Renamed(g.Name)
}

// MeshScrambled is Mesh with vertex labels permuted uniformly at random.
// Row-major labeling gives a mesh near-perfect ID locality (neighbors
// share or adjoin cache lines), which real unstructured meshes like
// hugebubbles do not have; scrambling restores the irregularity the paper
// observes on HBUBL while preserving degree and diameter.
func MeshScrambled(rows, cols int, seed int64) *Graph {
	return Scramble(Mesh(rows, cols), seed)
}

func log2ceil(n int) int {
	b := 0
	for x := n - 1; x > 0; x >>= 1 {
		b++
	}
	return b
}

// Scale selects the size of the generated input suite.
type Scale int

const (
	// ScaleTiny is for unit tests: a few thousand vertices.
	ScaleTiny Scale = iota
	// ScaleDefault is the default experiment scale (~64-128K vertices),
	// sized so the irregular working set exceeds the scaled LLC by the same
	// ratio as the paper's graphs exceed a 24 MB LLC.
	ScaleDefault
	// ScaleLarge approaches paper-sized inputs (millions of vertices); used
	// only when explicitly requested because simulation time grows linearly.
	ScaleLarge
)

// String names the scale; corpus keys embed it, so the names are part of
// the on-disk contract and must stay stable.
func (s Scale) String() string {
	switch s {
	case ScaleTiny:
		return "tiny"
	case ScaleDefault:
		return "default"
	case ScaleLarge:
		return "large"
	}
	return "scale" + strconv.Itoa(int(s))
}

// Suite returns the five-input suite mirroring Table III at the requested
// scale, in the plain layout. The order matches the paper's tables: DBP,
// UK, KRON, URAND, HBUBL. Suites are memoized per (scale, seed, layout):
// the first call generates the graphs, later calls share the same
// immutable *Graph values. The returned slice is a fresh copy, so callers
// may append to or reorder it freely.
func Suite(s Scale, seed int64) []*Graph {
	return SuiteLayout(s, seed, LayoutPlain)
}

// SuiteLayout is Suite with an adjacency-layout knob. LayoutAuto resolves
// per scale (compact at ScaleLarge, plain below); the resolved layout is
// part of the memoization key, so plain and compact suites coexist.
func SuiteLayout(s Scale, seed int64, lay Layout) []*Graph {
	cached := cachedSuiteLayout(s, seed, lay)
	out := make([]*Graph, len(cached))
	copy(out, cached)
	return out
}

// SuiteProgress, when non-nil, receives one event per suite graph as it
// finishes building — the poptbench/graphgen -progress heartbeat for
// large-scale runs, where a single graph takes seconds to minutes. It is
// host-side observability only (never simulated state) and must be
// installed before the first Suite call; buildSuite runs under the suite
// cache lock, so the callback is never invoked concurrently.
var SuiteProgress func(g *Graph, elapsed time.Duration)

// buildSuite generates the suite; Suite memoizes it. lay must already be
// resolved (plain or compact); compact conversion happens inside the
// per-graph loop so each plain intermediate is dropped before the next
// graph generates.
func buildSuite(s Scale, seed int64, lay Layout) []*Graph {
	var gens []func() *Graph
	switch s {
	case ScaleTiny:
		gens = []func() *Graph{
			func() *Graph { return PowerLaw(1<<11, 8, 2.0, seed) },
			func() *Graph { return Community(1<<11, 12, 64, 0.8, seed+1) },
			func() *Graph { return Kron(12, 4, seed+2) },
			func() *Graph { return Uniform(1<<12, 4<<12, seed+3) },
			func() *Graph { return MeshScrambled(48, 48, seed+4) },
		}
	case ScaleLarge:
		// 8M vertices: 32 MB of 4-byte irregular data against the Table I
		// 24 MB LLC, the same exceeds-the-LLC regime as the paper's
		// 18-34 M-vertex inputs. Expect minutes per simulation.
		gens = []func() *Graph{
			func() *Graph { return PowerLaw(1<<23, 7, 2.0, seed) },
			func() *Graph { return Community(1<<23, 14, 4096, 0.85, seed+1) },
			func() *Graph { return Kron(23, 4, seed+2) },
			func() *Graph { return Uniform(1<<23, 4<<23, seed+3) },
			func() *Graph { return MeshScrambled(2900, 2893, seed+4) },
		}
	default: // ScaleDefault
		// Average degrees mirror Table III: DBP 7.5, UK-02 15.8, KRON 4.0,
		// URAND 4.0, HBUBL 3.0 — degree density shapes the next-reference
		// distance distribution and hence P-OPT's tie rate.
		gens = []func() *Graph{
			func() *Graph { return PowerLaw(1<<17, 7, 2.0, seed) },
			func() *Graph { return Community(1<<17, 14, 1024, 0.85, seed+1) },
			func() *Graph { return Kron(17, 4, seed+2) },
			func() *Graph { return Uniform(1<<17, 4<<17, seed+3) },
			func() *Graph { return MeshScrambled(360, 360, seed+4) },
		}
	}
	out := make([]*Graph, len(gens))
	for i, gen := range gens {
		build := gen
		if lay == LayoutCompact {
			build = func() *Graph { return gen().WithLayout(LayoutCompact) }
		}
		if SuiteProgress != nil {
			start := time.Now() //lint:allow determinism (host-side progress timing, not simulated state)
			out[i] = build()
			SuiteProgress(out[i], time.Since(start)) //lint:allow determinism (host-side progress timing)
		} else {
			out[i] = build()
		}
	}
	return out
}
