package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// The paper evaluates on five inputs (Table III): DBP (DBpedia, power-law
// with moderate skew), UK-02 (web crawl, strong community structure), KRON
// (synthetic Kronecker, extreme skew), URAND (uniform random), and HBUBL
// (hugebubbles, a bounded-degree, high-diameter mesh). Those graphs are not
// redistributable here, so each generator below reproduces the structural
// property that drives the paper's cache behaviour: degree distribution,
// skew, community locality, and diameter. DESIGN.md records this
// substitution.

// Kron generates an R-MAT/Kronecker graph with 2^scale vertices and
// edgeFactor*2^scale directed edges using the Graph500 partition
// probabilities (0.57, 0.19, 0.19, 0.05). These graphs have the extremely
// skewed degree distribution the paper observes makes hub vertices hit by
// chance ("KRON" in the paper).
func Kron(scale, edgeFactor int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 1 << scale
	m := edgeFactor * n
	edges := make([]Edge, 0, m)
	const a, b, c = 0.57, 0.19, 0.19
	for i := 0; i < m; i++ {
		var src, dst int
		for bit := scale - 1; bit >= 0; bit-- {
			r := rng.Float64()
			switch {
			case r < a: // top-left: neither bit set
			case r < a+b:
				dst |= 1 << bit
			case r < a+b+c:
				src |= 1 << bit
			default:
				src |= 1 << bit
				dst |= 1 << bit
			}
		}
		edges = append(edges, Edge{V(src), V(dst)})
	}
	return FromEdges(fmt.Sprintf("KRON-%d", scale), n, edges)
}

// Uniform generates an Erdős–Rényi-style graph with n vertices and m
// directed edges whose endpoints are drawn uniformly ("URAND" in the
// paper). Uniform graphs have no exploitable skew or community structure,
// which is where heuristic policies struggle most.
func Uniform(n, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{V(rng.Intn(n)), V(rng.Intn(n))}
	}
	return FromEdges(fmt.Sprintf("URAND-%d", log2ceil(n)), n, edges)
}

// PowerLaw generates a graph whose out-degrees follow a Zipf distribution
// with the given exponent (typical web/social exponents are 1.7-2.2) and
// whose endpoints are chosen preferentially, yielding correlated in-degree
// skew. With exponent around 2 and no locality this resembles "DBP".
func PowerLaw(n, avgDeg int, exponent float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	// Draw out-degrees from a truncated Zipf, rescaled to hit avgDeg.
	zipf := rand.NewZipf(rng, exponent, 1, uint64(n-1))
	degs := make([]int, n)
	total := 0
	for i := range degs {
		degs[i] = int(zipf.Uint64()) + 1
		total += degs[i]
	}
	scale := float64(avgDeg*n) / float64(total)
	m := 0
	for i := range degs {
		degs[i] = int(math.Round(float64(degs[i]) * scale))
		if degs[i] == 0 {
			degs[i] = 1
		}
		m += degs[i]
	}
	// Destination selection: preferential by sampling an edge endpoint from
	// a vertex-repeated pool approximated by sampling another Zipf draw and
	// mapping it to a random permutation so hubs are spread over the ID
	// space (real graph IDs are not degree-sorted).
	perm := rng.Perm(n)
	edges := make([]Edge, 0, m)
	for src, d := range degs {
		for k := 0; k < d; k++ {
			dst := perm[int(zipf.Uint64())%n]
			edges = append(edges, Edge{V(src), V(dst)})
		}
	}
	return FromEdges(fmt.Sprintf("DBP-%d", log2ceil(n)), n, edges)
}

// Community generates a graph with block community structure plus power-law
// degrees: vertices are grouped into communities of the given size and each
// edge stays inside its community with probability pIntra, otherwise it
// goes to a uniformly random vertex. Contiguous community IDs give the
// spatial locality of web crawls ("UK-02" in the paper), which is the
// structure HATS-BDFS exploits.
func Community(n, avgDeg, communitySize int, pIntra float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.8, 1, 63)
	m := n * avgDeg
	edges := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		src := rng.Intn(n)
		var dst int
		if rng.Float64() < pIntra {
			base := (src / communitySize) * communitySize
			span := communitySize
			if base+span > n {
				span = n - base
			}
			dst = base + rng.Intn(span)
		} else {
			dst = rng.Intn(n)
		}
		// Skew the intra-community choice toward community-local hubs.
		if h := int(zipf.Uint64()); h > 0 && rng.Float64() < 0.3 {
			dst = (dst / communitySize) * communitySize
			dst += h % communitySize
			if dst >= n {
				dst = n - 1
			}
		}
		edges = append(edges, Edge{V(src), V(dst)})
	}
	return FromEdges(fmt.Sprintf("UK-%d", log2ceil(n)), n, edges)
}

// Mesh generates a rows×cols 2-D grid with bidirectional edges to the right
// and down neighbors. Grids are bounded-degree (≤4) and have diameter
// O(rows+cols): the high-diameter, normal-degree structure of "HBUBL"
// (hugebubbles). Its Radii behaviour matches the paper's: direction
// switching never flips to pull, so Radii is skipped for it.
func Mesh(rows, cols int) *Graph {
	n := rows * cols
	edges := make([]Edge, 0, 4*n)
	id := func(r, c int) V { return V(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, Edge{id(r, c), id(r, c+1)}, Edge{id(r, c+1), id(r, c)})
			}
			if r+1 < rows {
				edges = append(edges, Edge{id(r, c), id(r+1, c)}, Edge{id(r+1, c), id(r, c)})
			}
		}
	}
	return FromEdges(fmt.Sprintf("HBUBL-%dx%d", rows, cols), n, edges)
}

// Scramble relabels g's vertices with a uniformly random permutation,
// destroying any locality the ID order encodes while preserving structure
// (degrees, diameter, communities). The name is kept.
func Scramble(g *Graph, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	p := make(Permutation, g.NumVertices())
	for i, x := range rng.Perm(g.NumVertices()) {
		p[i] = V(x)
	}
	return p.Apply(g).Renamed(g.Name)
}

// MeshScrambled is Mesh with vertex labels permuted uniformly at random.
// Row-major labeling gives a mesh near-perfect ID locality (neighbors
// share or adjoin cache lines), which real unstructured meshes like
// hugebubbles do not have; scrambling restores the irregularity the paper
// observes on HBUBL while preserving degree and diameter.
func MeshScrambled(rows, cols int, seed int64) *Graph {
	return Scramble(Mesh(rows, cols), seed)
}

func log2ceil(n int) int {
	b := 0
	for x := n - 1; x > 0; x >>= 1 {
		b++
	}
	return b
}

// Scale selects the size of the generated input suite.
type Scale int

const (
	// ScaleTiny is for unit tests: a few thousand vertices.
	ScaleTiny Scale = iota
	// ScaleDefault is the default experiment scale (~64-128K vertices),
	// sized so the irregular working set exceeds the scaled LLC by the same
	// ratio as the paper's graphs exceed a 24 MB LLC.
	ScaleDefault
	// ScaleLarge approaches paper-sized inputs (millions of vertices); used
	// only when explicitly requested because simulation time grows linearly.
	ScaleLarge
)

// Suite returns the five-input suite mirroring Table III at the requested
// scale. The order matches the paper's tables: DBP, UK, KRON, URAND, HBUBL.
// Suites are memoized per (scale, seed): the first call generates the
// graphs, later calls share the same immutable *Graph values. The returned
// slice is a fresh copy, so callers may append to or reorder it freely.
func Suite(s Scale, seed int64) []*Graph {
	cached := cachedSuite(s, seed)
	out := make([]*Graph, len(cached))
	copy(out, cached)
	return out
}

// buildSuite generates the suite; Suite memoizes it.
func buildSuite(s Scale, seed int64) []*Graph {
	switch s {
	case ScaleTiny:
		return []*Graph{
			PowerLaw(1<<11, 8, 2.0, seed),
			Community(1<<11, 12, 64, 0.8, seed+1),
			Kron(12, 4, seed+2),
			Uniform(1<<12, 4<<12, seed+3),
			MeshScrambled(48, 48, seed+4),
		}
	case ScaleLarge:
		// 8M vertices: 32 MB of 4-byte irregular data against the Table I
		// 24 MB LLC, the same exceeds-the-LLC regime as the paper's
		// 18-34 M-vertex inputs. Expect minutes per simulation.
		return []*Graph{
			PowerLaw(1<<23, 7, 2.0, seed),
			Community(1<<23, 14, 4096, 0.85, seed+1),
			Kron(23, 4, seed+2),
			Uniform(1<<23, 4<<23, seed+3),
			MeshScrambled(2900, 2893, seed+4),
		}
	default: // ScaleDefault
		// Average degrees mirror Table III: DBP 7.5, UK-02 15.8, KRON 4.0,
		// URAND 4.0, HBUBL 3.0 — degree density shapes the next-reference
		// distance distribution and hence P-OPT's tie rate.
		return []*Graph{
			PowerLaw(1<<17, 7, 2.0, seed),
			Community(1<<17, 14, 1024, 0.85, seed+1),
			Kron(17, 4, seed+2),
			Uniform(1<<17, 4<<17, seed+3),
			MeshScrambled(360, 360, seed+4),
		}
	}
}
