// Package graph provides the compressed sparse graph representations,
// builders, generators, reorderings, and tilings used throughout the P-OPT
// reproduction.
//
// A Graph stores both traversal directions of its adjacency matrix: the
// Compressed Sparse Row (CSR) encodes outgoing neighbors of each source
// vertex and the Compressed Sparse Column (CSC) encodes incoming neighbors
// of each destination vertex. Keeping both is the norm in graph frameworks
// (GAP, Ligra) and is the property that T-OPT/P-OPT exploit: the transpose
// of the traversal direction encodes every vertex's next reference.
package graph

import (
	"fmt"
)

// V is the vertex identifier type. Real-world frameworks use 32-bit IDs; so
// does the paper (the full vertex-ID space that P-OPT quantizes is 32 bits).
type V = uint32

// Adj is one traversal direction of the adjacency matrix in compressed
// sparse form, in one of two layouts. The plain layout is the classic
// two-array CSR: OA (Offsets Array) has length N+1 and the neighbors of
// vertex v occupy NA[OA[v]:OA[v+1]], sorted ascending. The compact layout
// (see compact.go) stores the same lists blocked and delta-compressed
// behind the same API; OA and NA are nil and c carries the storage.
// Sorted neighbor lists are what make transpose-based next-reference
// lookups cheap in either layout.
//
// Every accessor dispatches on the layout, and the global edge indexing —
// the value Start/IterFrom report, which kernels use as the simulated
// neighbor-array index — is identical across layouts, so the simulated
// address stream does not depend on the host representation.
//
//popt:frozen
type Adj struct {
	OA []uint64
	NA []V
	c  *adjCompact
}

// IsCompact reports whether a uses the blocked compressed layout.
func (a *Adj) IsCompact() bool { return a.c != nil }

// N returns the number of vertices.
func (a *Adj) N() int {
	if a.c != nil {
		return a.c.n
	}
	return len(a.OA) - 1
}

// M returns the number of directed edges.
func (a *Adj) M() int {
	if a.c != nil {
		return int(a.c.m)
	}
	return len(a.NA)
}

// MemBytes returns the resident byte footprint of the adjacency storage.
func (a *Adj) MemBytes() uint64 {
	if a.c != nil {
		return a.c.memBytes()
	}
	return 8*uint64(len(a.OA)) + 4*uint64(len(a.NA))
}

// Degree returns the number of neighbors of v.
//
//popt:hot
func (a *Adj) Degree(v V) int {
	if a.c != nil {
		return a.c.degree(v)
	}
	return int(a.OA[v+1] - a.OA[v])
}

// Start returns the global edge index of v's first neighbor — OA[v] on the
// plain layout. v == N() is allowed and returns M().
//
//popt:hot
func (a *Adj) Start(v V) uint64 {
	if a.c != nil {
		return a.c.start(v)
	}
	return a.OA[v]
}

// Neighs returns the (sorted) neighbor list of v. On the plain layout the
// slice aliases the underlying NA storage and must not be modified; on the
// compact layout it is freshly decoded per call, so hot paths should use
// IterFrom, Neighbors, or CopyNeighbors instead.
//
//popt:hot
func (a *Adj) Neighs(v V) []V {
	if a.c != nil {
		return a.c.neighsAlloc(v)
	}
	return a.NA[a.OA[v]:a.OA[v+1]]
}

// Neighbors returns the sorted neighbor list of v without allocating: the
// plain layout returns the NA alias, the compact layout decodes into *buf
// (growing it as needed) and returns the filled prefix. The result is
// invalidated by the next call with the same buf and must not be modified.
//
//popt:hot
func (a *Adj) Neighbors(v V, buf *[]V) []V {
	if a.c == nil {
		return a.NA[a.OA[v]:a.OA[v+1]]
	}
	d := a.c.degree(v)
	if cap(*buf) < d {
		*buf = growV(*buf, d)
	}
	dst := (*buf)[:d]
	a.c.decodeInto(v, dst)
	return dst
}

// growV is the cold buffer-growth path of Neighbors and NeighborIter,
// kept out of their inlining budget.
//
//go:noinline
func growV(buf []V, d int) []V {
	if c := cap(buf); c*2 > d {
		d = c * 2
	}
	return make([]V, d)
}

// CopyNeighbors copies v's neighbors into dst (which must have room for
// Degree(v) elements) and returns the count.
//
//popt:hot
func (a *Adj) CopyNeighbors(dst []V, v V) int {
	if a.c != nil {
		return a.c.decodeInto(v, dst)
	}
	return copy(dst, a.NA[a.OA[v]:a.OA[v+1]])
}

// NextAfter returns the smallest neighbor of v that is strictly greater
// than cur, and ok=false if no such neighbor exists. In a pull execution
// that is the outer-loop iteration at which srcData[v] is next referenced;
// it is the primitive on which T-OPT is built. The plain layout binary
// searches (hand rolled: sort.Search's closure costs an indirect call per
// probe on what is a per-eviction-candidate operation); the compact layout
// decode-scans forward with early exit.
//
//popt:hot
func (a *Adj) NextAfter(v V, cur V) (next V, ok bool) {
	if a.c != nil {
		return a.c.nextAfter(v, cur)
	}
	ns := a.NA[a.OA[v]:a.OA[v+1]]
	lo, hi := 0, len(ns)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ns[mid] > cur {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == len(ns) {
		return 0, false
	}
	return ns[lo], true
}

// NeighborIter walks vertices in ascending order, yielding each vertex's
// sorted neighbor list and the global edge index of its first neighbor.
// It is the layout-neutral form of the canonical CSR inner loop
//
//	for e := OA[v]; e < OA[v+1]; e++ { ... NA[e] ... }
//
// On the plain layout Next is two loads and a subslice; on the compact
// layout it decodes each list in one forward pass, never paying the
// random-access block prefix. The returned slice is invalidated by the
// next call and must not be modified.
type NeighborIter struct {
	// Plain layout cursors.
	oa []uint64
	na []V
	// Compact layout cursors.
	c    *adjCompact
	buf  []V
	pos  uint64 // byte offset of vertex v's encoded list
	edge uint64 // global edge index of vertex v's first neighbor
	exc  int    // exception-table cursor (first entry at vertex >= v)
	v    V      // next vertex to yield
}

// IterFrom returns an iterator positioned at vertex v.
func (a *Adj) IterFrom(v V) NeighborIter {
	if a.c == nil {
		return NeighborIter{oa: a.OA[v:], na: a.NA}
	}
	return NeighborIter{
		c:    a.c,
		pos:  a.c.vpos(v),
		edge: a.c.start(v),
		exc:  a.c.excIndex(v),
		v:    v,
	}
}

// Next yields the neighbors of the current vertex and the global edge
// index of its first neighbor, then advances. Calling Next more than
// N()-v times after IterFrom(v) is invalid.
//
//popt:hot
func (it *NeighborIter) Next() (ns []V, start uint64) {
	if it.c == nil {
		lo := it.oa[0]
		hi := it.oa[1]
		it.oa = it.oa[1:]
		return it.na[lo:hi:hi], lo
	}
	return it.nextCompact()
}

// nextCompact is the compact-layout decode step: one varint per neighbor,
// sequential in the data array.
//
//popt:hot
func (it *NeighborIter) nextCompact() (ns []V, start uint64) {
	c := it.c
	d := int(c.deg[it.v])
	if d == degEscape {
		d = int(c.excDeg[it.exc])
		it.exc++
	}
	if cap(it.buf) < d {
		it.buf = growV(it.buf, d)
	}
	dst := it.buf[:d]
	pos := it.pos
	if d > 0 {
		data := c.data
		x, p := uvarintAt(data, pos)
		prev := V(x)
		dst[0] = prev
		for i := 1; i < d; i++ {
			gap, p2 := uvarintAt(data, p)
			prev += V(gap) + 1
			dst[i] = prev
			p = p2
		}
		pos = p
	}
	it.pos = pos
	start = it.edge
	it.edge += uint64(d)
	it.v++
	return dst, start
}

// Graph is an immutable directed graph stored in both traversal directions.
//
//popt:frozen
type Graph struct {
	// Out is the CSR: Out.Neighs(s) are the destinations of edges leaving s.
	Out Adj
	// In is the CSC: In.Neighs(d) are the sources of edges entering d.
	In Adj
	// Name labels the graph in reports ("KRON-20", "URAND-18", ...).
	Name string
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return g.Out.N() }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return g.Out.M() }

// AvgDegree returns the mean out-degree.
func (g *Graph) AvgDegree() float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	return float64(g.NumEdges()) / float64(n)
}

func (g *Graph) String() string {
	return fmt.Sprintf("%s{n=%d m=%d avgDeg=%.1f}", g.Name, g.NumVertices(), g.NumEdges(), g.AvgDegree())
}

// Renamed returns a graph that shares g's adjacency storage but carries a
// different report label. The copy is a fresh value, so callers can
// relabel a published graph without mutating it.
func (g *Graph) Renamed(name string) *Graph {
	return &Graph{Out: g.Out, In: g.In, Name: name}
}

// Edge is a directed edge used by builders and generators.
type Edge struct {
	Src, Dst V
}

// FromEdges builds a Graph (both CSR and CSC) from a directed edge list.
// Self-loops are kept, duplicate edges are removed, and neighbor lists come
// out sorted. n is the number of vertices; every endpoint must be < n.
func FromEdges(name string, n int, edges []Edge) *Graph {
	out := adjFromEdges(n, edges, false)
	// The in-adjacency is derived from the built CSR rather than from the
	// raw edges: a stable scatter of the sorted-unique pairs needs no
	// per-vertex sort, dedup, or compaction (see adjTranspose), roughly
	// halving construction cost versus two full builds. The bytes are
	// identical to adjFromEdges(n, edges, true).
	in := adjTranspose(n, out)
	return &Graph{Out: out, In: in, Name: name}
}

// Transpose returns a graph with Out and In swapped (edges reversed). The
// underlying arrays are shared, not copied.
func (g *Graph) Transpose() *Graph {
	return &Graph{Out: g.In, In: g.Out, Name: g.Name + "-T"}
}

// MaxDegree returns the maximum out-degree and the vertex attaining it.
func (g *Graph) MaxDegree() (deg int, at V) {
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Out.Degree(V(v)); d > deg {
			deg, at = d, V(v)
		}
	}
	return deg, at
}

// DegreeHistogram returns counts of out-degrees bucketed by powers of two:
// bucket i counts vertices with degree in [2^i, 2^(i+1)). Bucket 0 also
// includes degree-0 vertices.
func (g *Graph) DegreeHistogram() []int {
	var hist []int
	for v := 0; v < g.NumVertices(); v++ {
		d := g.Out.Degree(V(v))
		b := 0
		for x := d; x > 1; x >>= 1 {
			b++
		}
		for len(hist) <= b {
			hist = append(hist, 0)
		}
		hist[b]++
	}
	return hist
}

// Validate checks structural invariants (monotone offsets, sorted unique
// neighbor lists, in/out edge counts matching, endpoints in range) and
// returns a descriptive error on the first violation. It exists for tests
// and for validating externally loaded graphs.
func (g *Graph) Validate() error {
	if g.Out.N() != g.In.N() {
		return fmt.Errorf("graph %s: out has %d vertices, in has %d", g.Name, g.Out.N(), g.In.N())
	}
	if g.Out.M() != g.In.M() {
		return fmt.Errorf("graph %s: out has %d edges, in has %d", g.Name, g.Out.M(), g.In.M())
	}
	for _, da := range []struct {
		dir string
		a   *Adj
	}{{"out", &g.Out}, {"in", &g.In}} {
		dir, a := da.dir, da.a
		n := a.N()
		if a.Start(0) != 0 || a.Start(V(n)) != uint64(a.M()) {
			return fmt.Errorf("graph %s %s: offsets must span [0,%d], got [%d,%d]", g.Name, dir, a.M(), a.Start(0), a.Start(V(n)))
		}
		it := a.IterFrom(0)
		for v := 0; v < n; v++ {
			ns, start := it.Next()
			if start != a.Start(V(v)) || len(ns) != a.Degree(V(v)) {
				return fmt.Errorf("graph %s %s: iterator disagrees with random access at vertex %d", g.Name, dir, v)
			}
			for i, u := range ns {
				if int(u) >= n {
					return fmt.Errorf("graph %s %s: vertex %d has out-of-range neighbor %d", g.Name, dir, v, u)
				}
				if i > 0 && ns[i-1] >= u {
					return fmt.Errorf("graph %s %s: neighbors of %d not sorted/unique at %d", g.Name, dir, v, i)
				}
			}
		}
	}
	// Every out-edge must appear as an in-edge and vice versa. Membership
	// goes through NextAfter so the compact layout is not decoded per
	// probe: v is an in-neighbor of u iff the smallest in-neighbor
	// strictly greater than v-1 is v (v == 0 checks the first neighbor
	// directly, since cur would wrap).
	var scratch, first []V
	for v := 0; v < g.Out.N(); v++ {
		for _, u := range g.Out.Neighbors(V(v), &scratch) {
			present := false
			if v == 0 {
				ns := g.In.Neighbors(u, &first)
				present = len(ns) > 0 && ns[0] == 0
			} else if next, ok := g.In.NextAfter(u, V(v)-1); ok {
				present = next == V(v)
			}
			if !present {
				return fmt.Errorf("graph %s: edge %d->%d missing from CSC", g.Name, v, u)
			}
		}
	}
	return nil
}

// contains reports whether x occurs in a sorted slice.
func contains(sorted []V, x V) bool {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if sorted[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(sorted) && sorted[lo] == x
}
