// Package graph provides the compressed sparse graph representations,
// builders, generators, reorderings, and tilings used throughout the P-OPT
// reproduction.
//
// A Graph stores both traversal directions of its adjacency matrix: the
// Compressed Sparse Row (CSR) encodes outgoing neighbors of each source
// vertex and the Compressed Sparse Column (CSC) encodes incoming neighbors
// of each destination vertex. Keeping both is the norm in graph frameworks
// (GAP, Ligra) and is the property that T-OPT/P-OPT exploit: the transpose
// of the traversal direction encodes every vertex's next reference.
package graph

import (
	"fmt"
	"sort"
)

// V is the vertex identifier type. Real-world frameworks use 32-bit IDs; so
// does the paper (the full vertex-ID space that P-OPT quantizes is 32 bits).
type V = uint32

// Adj is one traversal direction of the adjacency matrix in compressed
// sparse form. OA (Offsets Array) has length N+1; the neighbors of vertex v
// occupy NA[OA[v]:OA[v+1]] and are sorted in ascending order. Sorted
// neighbor lists are what make transpose-based next-reference lookups a
// binary search instead of a scan.
//
//popt:frozen
type Adj struct {
	OA []uint64
	NA []V
}

// N returns the number of vertices.
func (a *Adj) N() int { return len(a.OA) - 1 }

// M returns the number of directed edges.
func (a *Adj) M() int { return len(a.NA) }

// Degree returns the number of neighbors of v.
//
//popt:hot
func (a *Adj) Degree(v V) int { return int(a.OA[v+1] - a.OA[v]) }

// Neighs returns the (sorted) neighbor slice of v. The slice aliases the
// underlying NA storage and must not be modified.
//
//popt:hot
func (a *Adj) Neighs(v V) []V { return a.NA[a.OA[v]:a.OA[v+1]] }

// NextAfter returns the smallest neighbor of v that is strictly greater
// than cur, and ok=false if no such neighbor exists. In a pull execution
// that is the outer-loop iteration at which srcData[v] is next referenced;
// it is the primitive on which T-OPT is built. The binary search is hand
// rolled: sort.Search's closure costs an indirect call per probe on what
// is a per-eviction-candidate operation.
//
//popt:hot
func (a *Adj) NextAfter(v V, cur V) (next V, ok bool) {
	ns := a.Neighs(v)
	lo, hi := 0, len(ns)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ns[mid] > cur {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == len(ns) {
		return 0, false
	}
	return ns[lo], true
}

// Graph is an immutable directed graph stored in both traversal directions.
//
//popt:frozen
type Graph struct {
	// Out is the CSR: Out.Neighs(s) are the destinations of edges leaving s.
	Out Adj
	// In is the CSC: In.Neighs(d) are the sources of edges entering d.
	In Adj
	// Name labels the graph in reports ("KRON-20", "URAND-18", ...).
	Name string
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return g.Out.N() }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return g.Out.M() }

// AvgDegree returns the mean out-degree.
func (g *Graph) AvgDegree() float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	return float64(g.NumEdges()) / float64(n)
}

func (g *Graph) String() string {
	return fmt.Sprintf("%s{n=%d m=%d avgDeg=%.1f}", g.Name, g.NumVertices(), g.NumEdges(), g.AvgDegree())
}

// Renamed returns a graph that shares g's adjacency storage but carries a
// different report label. The copy is a fresh value, so callers can
// relabel a published graph without mutating it.
func (g *Graph) Renamed(name string) *Graph {
	return &Graph{Out: g.Out, In: g.In, Name: name}
}

// Edge is a directed edge used by builders and generators.
type Edge struct {
	Src, Dst V
}

// FromEdges builds a Graph (both CSR and CSC) from a directed edge list.
// Self-loops are kept, duplicate edges are removed, and neighbor lists come
// out sorted. n is the number of vertices; every endpoint must be < n.
func FromEdges(name string, n int, edges []Edge) *Graph {
	out := adjFromEdges(n, edges, false)
	// The in-adjacency is derived from the built CSR rather than from the
	// raw edges: a stable scatter of the sorted-unique pairs needs no
	// per-vertex sort, dedup, or compaction (see adjTranspose), roughly
	// halving construction cost versus two full builds. The bytes are
	// identical to adjFromEdges(n, edges, true).
	in := adjTranspose(n, out)
	return &Graph{Out: out, In: in, Name: name}
}

// Transpose returns a graph with Out and In swapped (edges reversed). The
// underlying arrays are shared, not copied.
func (g *Graph) Transpose() *Graph {
	return &Graph{Out: g.In, In: g.Out, Name: g.Name + "-T"}
}

// MaxDegree returns the maximum out-degree and the vertex attaining it.
func (g *Graph) MaxDegree() (deg int, at V) {
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Out.Degree(V(v)); d > deg {
			deg, at = d, V(v)
		}
	}
	return deg, at
}

// DegreeHistogram returns counts of out-degrees bucketed by powers of two:
// bucket i counts vertices with degree in [2^i, 2^(i+1)). Bucket 0 also
// includes degree-0 vertices.
func (g *Graph) DegreeHistogram() []int {
	var hist []int
	for v := 0; v < g.NumVertices(); v++ {
		d := g.Out.Degree(V(v))
		b := 0
		for x := d; x > 1; x >>= 1 {
			b++
		}
		for len(hist) <= b {
			hist = append(hist, 0)
		}
		hist[b]++
	}
	return hist
}

// Validate checks structural invariants (monotone offsets, sorted unique
// neighbor lists, in/out edge counts matching, endpoints in range) and
// returns a descriptive error on the first violation. It exists for tests
// and for validating externally loaded graphs.
func (g *Graph) Validate() error {
	if g.Out.N() != g.In.N() {
		return fmt.Errorf("graph %s: out has %d vertices, in has %d", g.Name, g.Out.N(), g.In.N())
	}
	if g.Out.M() != g.In.M() {
		return fmt.Errorf("graph %s: out has %d edges, in has %d", g.Name, g.Out.M(), g.In.M())
	}
	for _, da := range []struct {
		dir string
		a   *Adj
	}{{"out", &g.Out}, {"in", &g.In}} {
		dir, a := da.dir, da.a
		n := a.N()
		if a.OA[0] != 0 || a.OA[n] != uint64(len(a.NA)) {
			return fmt.Errorf("graph %s %s: offsets must span [0,%d], got [%d,%d]", g.Name, dir, len(a.NA), a.OA[0], a.OA[n])
		}
		for v := 0; v < n; v++ {
			if a.OA[v] > a.OA[v+1] {
				return fmt.Errorf("graph %s %s: offsets not monotone at vertex %d", g.Name, dir, v)
			}
			ns := a.Neighs(V(v))
			for i, u := range ns {
				if int(u) >= n {
					return fmt.Errorf("graph %s %s: vertex %d has out-of-range neighbor %d", g.Name, dir, v, u)
				}
				if i > 0 && ns[i-1] >= u {
					return fmt.Errorf("graph %s %s: neighbors of %d not sorted/unique at %d", g.Name, dir, v, i)
				}
			}
		}
	}
	// Every out-edge must appear as an in-edge and vice versa.
	for v := 0; v < g.Out.N(); v++ {
		for _, u := range g.Out.Neighs(V(v)) {
			if !contains(g.In.Neighs(u), V(v)) {
				return fmt.Errorf("graph %s: edge %d->%d missing from CSC", g.Name, v, u)
			}
		}
	}
	return nil
}

func contains(sorted []V, x V) bool {
	i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= x })
	return i < len(sorted) && sorted[i] == x
}
