package graph

// Allocation-free sorting for neighbor segments. adjFromEdges sorts one
// segment per vertex — millions of tiny slices per build — and
// sort.Slice charges every one of them a closure allocation, an
// interface dispatch per comparison, and a reflect-based swapper. A
// hand-rolled sort over the concrete []V type removes all three, which
// is what lets the build loops join the escape-free //popt:hot baseline.

// insertionCut is the segment length below which insertion sort beats
// partitioning. Generated graphs have single-digit average degrees, so
// the overwhelming majority of segments never partition at all.
const insertionCut = 24

// SortV sorts a in ascending order in place without allocating:
// insertion sort for short segments, median-of-three Hoare quicksort
// (recursing on the smaller half, so stack depth is O(log n)) above
// insertionCut. It is the build-path replacement for
// sort.Slice(a, func(i, j int) bool { return a[i] < a[j] }).
//
//popt:hot
func SortV(a []V) {
	for len(a) > insertionCut {
		j := hoareV(a)
		if j+1 < len(a)-(j+1) {
			SortV(a[:j+1])
			a = a[j+1:]
		} else {
			SortV(a[j+1:])
			a = a[:j+1]
		}
	}
	for i := 1; i < len(a); i++ {
		x := a[i]
		j := i - 1
		for j >= 0 && a[j] > x {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = x
	}
}

// hoareV partitions a around a median-of-three pivot and returns j such
// that every element of a[:j+1] is <= every element of a[j+1:], with
// j < len(a)-1 so both sides make progress. Hoare's scheme (rather than
// Lomuto's) keeps duplicate-heavy segments — hub neighbor lists before
// dedup — near the balanced split instead of degenerating quadratic.
//
//popt:hot
func hoareV(a []V) int {
	mid, hi := len(a)/2, len(a)-1
	if a[mid] < a[0] {
		a[mid], a[0] = a[0], a[mid]
	}
	if a[hi] < a[0] {
		a[hi], a[0] = a[0], a[hi]
	}
	if a[hi] < a[mid] {
		a[hi], a[mid] = a[mid], a[hi]
	}
	a[0], a[mid] = a[mid], a[0]
	p := a[0]
	i, j := -1, len(a)
	for {
		for {
			j--
			if a[j] <= p {
				break
			}
		}
		for {
			i++
			if a[i] >= p {
				break
			}
		}
		if i >= j {
			return j
		}
		a[i], a[j] = a[j], a[i]
	}
}

// dedupV compacts a sorted slice in place, keeping the first of each run
// of equal values, and returns the unique count. a[:count] holds the
// sorted unique values afterwards.
//
//popt:hot
func dedupV(a []V) int {
	if len(a) == 0 {
		return 0
	}
	w := 1
	for i := 1; i < len(a); i++ {
		if a[i] != a[w-1] {
			a[w] = a[i]
			w++
		}
	}
	return w
}
