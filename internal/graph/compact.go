package graph

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Blocked, delta-compressed CSR. Plain Adj spends 8 bytes per vertex on
// offsets and 4 bytes per edge on neighbor IDs; at paper scale the neighbor
// array alone is hundreds of megabytes of DRAM-bound traffic. The compact
// layout stores each (sorted, unique) neighbor list as LEB128 varints — the
// first neighbor absolute, every later one as (gap-1) from its predecessor
// — and replaces the 8-byte offsets array with one degree byte per vertex
// plus two small per-block arrays (the segmented-layout idea of Cagra,
// arXiv 1608.01362, applied to storage rather than traversal):
//
//	deg       one byte per vertex; 0xFF escapes to a sorted exception
//	          table holding the rare >= 255 degrees (hubs)
//	edgeBase  per block of 32 vertices, the global edge index of the
//	          block's first neighbor — kernels keep emitting simulated
//	          loads at the same global edge indices as the plain layout
//	byteBase  per block, the byte offset of the block's data
//
// Random access recovers a vertex's edge start by summing at most 31
// degree bytes (word-wise, with a pairwise-widening byte sum) and skips to
// its bytes by counting varint terminators (one per neighbor) with a
// popcount. Sequential access — every kernel inner loop — goes through
// NeighborIter and never pays the block prefix at all.
//
// The layout is behind the Adj API: Degree/Neighbors/NextAfter/IterFrom
// dispatch on which representation is present, so kernels, schedules, and
// the Rereference Matrix builders run unmodified and tiny/default goldens
// stay byte-identical (those scales stay plain unless forced).

// Layout selects the in-memory adjacency representation of a suite graph.
type Layout int

const (
	// LayoutAuto picks per scale: compact at ScaleLarge (where resident
	// graph bytes dominate), plain otherwise (tiny/default goldens were
	// recorded against plain decode-free iteration).
	LayoutAuto Layout = iota
	// LayoutPlain is the historical two-array CSR.
	LayoutPlain
	// LayoutCompact is the blocked delta-compressed CSR above.
	LayoutCompact
)

func (l Layout) String() string {
	switch l {
	case LayoutAuto:
		return "auto"
	case LayoutPlain:
		return "plain"
	case LayoutCompact:
		return "compact"
	}
	return fmt.Sprintf("layout(%d)", int(l))
}

// ParseLayout parses the -layout flag values.
func ParseLayout(s string) (Layout, error) {
	switch s {
	case "auto", "":
		return LayoutAuto, nil
	case "plain":
		return LayoutPlain, nil
	case "compact":
		return LayoutCompact, nil
	}
	return LayoutAuto, fmt.Errorf("graph: unknown layout %q (want auto, plain, or compact)", s)
}

// Resolve maps LayoutAuto to the concrete layout for a scale.
func (l Layout) Resolve(s Scale) Layout {
	if l != LayoutAuto {
		return l
	}
	if s == ScaleLarge {
		return LayoutCompact
	}
	return LayoutPlain
}

const (
	// compactBlockLog: vertices per block. 32 bounds the random-access
	// prefix sum to four words of degree bytes while keeping the two
	// 8-byte per-block arrays at half a byte per vertex.
	compactBlockLog = 5
	compactBlock    = 1 << compactBlockLog
	// degEscape marks a vertex whose degree does not fit the byte and
	// lives in the exception table instead.
	degEscape = 0xFF
)

// adjCompact is the storage behind a compact Adj. Immutable after
// construction, like the Adj that owns it.
//
//popt:frozen
type adjCompact struct {
	n        int
	m        uint64
	deg      []uint8
	edgeBase []uint64 // len nb+1; edgeBase[nb] == m
	byteBase []uint64 // len nb+1; byteBase[nb] == len(data)
	excV     []V      // sorted vertices with degree >= degEscape
	excDeg   []uint64 // excDeg[i] is excV[i]'s degree
	data     []byte
}

// memBytes is the resident footprint of the compact storage.
func (c *adjCompact) memBytes() uint64 {
	return uint64(len(c.deg)) + 8*uint64(len(c.edgeBase)+len(c.byteBase)) +
		4*uint64(len(c.excV)) + 8*uint64(len(c.excDeg)) + uint64(len(c.data))
}

// degree returns the neighbor count of v.
//
//popt:hot
func (c *adjCompact) degree(v V) int {
	d := c.deg[v]
	if d != degEscape {
		return int(d)
	}
	return int(c.excDeg[c.excIndex(v)])
}

// excIndex locates v in the (sorted) exception table. Callers only reach
// it through a degEscape byte, so the entry exists.
func (c *adjCompact) excIndex(v V) int {
	lo, hi := 0, len(c.excV)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.excV[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// hasFF reports whether any byte of w is 0xFF (an escaped degree).
func hasFF(w uint64) bool {
	x := ^w
	return (x-0x0101010101010101)&^x&0x8080808080808080 != 0
}

// byteSum adds the eight bytes of w by pairwise widening; the multiply
// trick would overflow (a word of degree bytes can sum past 255).
func byteSum(w uint64) uint64 {
	w = (w & 0x00ff00ff00ff00ff) + ((w >> 8) & 0x00ff00ff00ff00ff)
	w = (w & 0x0000ffff0000ffff) + ((w >> 16) & 0x0000ffff0000ffff)
	return (w + (w >> 32)) & 0xffffffff
}

// start returns the global edge index of v's first neighbor: the block's
// edgeBase plus the sum of the preceding degree bytes in the block.
// v == n is allowed and returns m, mirroring OA[n] on the plain layout.
//
//popt:hot
func (c *adjCompact) start(v V) uint64 {
	b := int(v) >> compactBlockLog
	if b >= len(c.edgeBase)-1 {
		return c.m
	}
	sum := c.edgeBase[b]
	j := b << compactBlockLog
	for ; j+8 <= int(v); j += 8 {
		w := binary.LittleEndian.Uint64(c.deg[j:])
		if hasFF(w) {
			return c.startSlow(v)
		}
		sum += byteSum(w)
	}
	for ; j < int(v); j++ {
		d := c.deg[j]
		if d == degEscape {
			return c.startSlow(v)
		}
		sum += uint64(d)
	}
	return sum
}

// startSlow is the escape-handling prefix sum, taken only for blocks that
// contain a hub vertex.
//
//go:noinline
func (c *adjCompact) startSlow(v V) uint64 {
	b := int(v) >> compactBlockLog
	sum := c.edgeBase[b]
	for j := b << compactBlockLog; j < int(v); j++ {
		d := c.deg[j]
		if d == degEscape {
			sum += c.excDeg[c.excIndex(V(j))]
		} else {
			sum += uint64(d)
		}
	}
	return sum
}

// vpos returns the byte offset of v's encoded neighbor list. Every
// neighbor is exactly one varint, so the varints to skip from the block's
// data start equal the edges between the block start and v.
//
//popt:hot
func (c *adjCompact) vpos(v V) uint64 {
	b := int(v) >> compactBlockLog
	return skipVarints(c.data, c.byteBase[b], c.start(v)-c.edgeBase[b])
}

// skipVarints advances pos past k varints by counting terminator bytes
// (high bit clear), a word at a time while k is large.
//
//popt:hot
func skipVarints(data []byte, pos, k uint64) uint64 {
	for k >= 8 && pos+8 <= uint64(len(data)) {
		w := binary.LittleEndian.Uint64(data[pos:])
		t := uint64(bits.OnesCount64(^w & 0x8080808080808080))
		if t >= k {
			// The k-th terminator is inside this word, possibly followed
			// by the next varint's continuation bytes; finish byte-wise.
			break
		}
		k -= t
		pos += 8
	}
	for k > 0 {
		if data[pos] < 0x80 {
			k--
		}
		pos++
	}
	return pos
}

// uvarintAt decodes one LEB128 varint at pos. The single-byte case — the
// overwhelming majority for delta-compressed sorted lists — is the
// branch-light fast path, mirroring the trace decoders.
//
//popt:hot
func uvarintAt(data []byte, pos uint64) (uint64, uint64) {
	b := data[pos]
	if b < 0x80 {
		return uint64(b), pos + 1
	}
	return uvarintSlowAt(data, pos)
}

// uvarintSlowAt is the multi-byte continuation loop, kept out of the fast
// path's inlining budget.
//
//go:noinline
func uvarintSlowAt(data []byte, pos uint64) (uint64, uint64) {
	var x uint64
	var shift uint
	for {
		b := data[pos]
		pos++
		x |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return x, pos
		}
		shift += 7
	}
}

// uvarintLen returns the encoded size of x in bytes.
func uvarintLen(x uint64) int {
	return (bits.Len64(x|1) + 6) / 7
}

// putUvarint writes x at data[pos:] and returns the next position.
func putUvarint(data []byte, pos uint64, x uint64) uint64 {
	for x >= 0x80 {
		data[pos] = byte(x) | 0x80
		x >>= 7
		pos++
	}
	data[pos] = byte(x)
	return pos + 1
}

// decodeInto decodes v's neighbors into dst, which must have room for
// degree(v) elements. Returns the count.
//
//popt:hot
func (c *adjCompact) decodeInto(v V, dst []V) int {
	d := c.degree(v)
	if d == 0 {
		return 0
	}
	pos := c.vpos(v)
	x, pos := uvarintAt(c.data, pos)
	prev := V(x)
	dst[0] = prev
	for i := 1; i < d; i++ {
		gap, p := uvarintAt(c.data, pos)
		prev += V(gap) + 1
		dst[i] = prev
		pos = p
	}
	return d
}

// neighsAlloc decodes v's neighbors into a fresh slice (the compact
// backing of Adj.Neighs, for cold callers that want an owned list).
func (c *adjCompact) neighsAlloc(v V) []V {
	d := c.degree(v)
	if d == 0 {
		return nil
	}
	out := make([]V, d)
	c.decodeInto(v, out)
	return out
}

// nextAfter is NextAfter on the compact layout: a forward decode with
// early exit. Sorted gaps mean the scan stops at the first neighbor past
// cur; the plain layout's binary search is not available without
// materializing the list, and eviction candidates in the simulated
// policies are served from Rereference structures, not this path.
//
//popt:hot
func (c *adjCompact) nextAfter(v V, cur V) (V, bool) {
	d := c.degree(v)
	if d == 0 {
		return 0, false
	}
	pos := c.vpos(v)
	x, pos := uvarintAt(c.data, pos)
	prev := V(x)
	if prev > cur {
		return prev, true
	}
	for i := 1; i < d; i++ {
		gap, p := uvarintAt(c.data, pos)
		prev += V(gap) + 1
		if prev > cur {
			return prev, true
		}
		pos = p
	}
	return 0, false
}

// compactFromPlain encodes a plain Adj into the blocked compressed form.
// It runs as a final phase of the parallel build pipeline: per-block
// encoded sizes in parallel, a serial prefix over blocks, then parallel
// encoding into each block's disjoint byte range (same
// disjoint-range-per-worker discipline as compactNA).
func compactFromPlain(a *Adj) *adjCompact {
	n := len(a.OA) - 1
	m := uint64(len(a.NA))
	nb := (n + compactBlock - 1) >> compactBlockLog
	c := &adjCompact{
		n:        n,
		m:        m,
		deg:      make([]uint8, n),
		edgeBase: make([]uint64, nb+1),
		byteBase: make([]uint64, nb+1),
	}
	w := buildWorkers(int(m))

	// Degree bytes and per-worker exception lists. Worker ranges are
	// contiguous and ascending, so concatenating in worker order keeps the
	// exception table sorted.
	excParts := make([][]V, w)
	parallelRanges(n, w, func(worker, lo, hi int) {
		var exc []V
		for v := lo; v < hi; v++ {
			d := a.OA[v+1] - a.OA[v]
			if d >= degEscape {
				c.deg[v] = degEscape
				exc = append(exc, V(v))
			} else {
				c.deg[v] = uint8(d)
			}
		}
		excParts[worker] = exc
	})
	for _, part := range excParts {
		for _, v := range part {
			c.excV = append(c.excV, v)
			c.excDeg = append(c.excDeg, a.OA[v+1]-a.OA[v])
		}
	}

	// Per-block encoded sizes, then the serial block prefix.
	sizes := make([]uint64, nb)
	parallelRanges(nb, w, func(_, blo, bhi int) {
		for b := blo; b < bhi; b++ {
			vlo := b << compactBlockLog
			vhi := vlo + compactBlock
			if vhi > n {
				vhi = n
			}
			var sz uint64
			for v := vlo; v < vhi; v++ {
				ns := a.NA[a.OA[v]:a.OA[v+1]]
				if len(ns) == 0 {
					continue
				}
				sz += uint64(uvarintLen(uint64(ns[0])))
				for i := 1; i < len(ns); i++ {
					sz += uint64(uvarintLen(uint64(ns[i] - ns[i-1] - 1)))
				}
			}
			sizes[b] = sz
		}
	})
	var total uint64
	for b := 0; b < nb; b++ {
		c.byteBase[b] = total
		total += sizes[b]
		c.edgeBase[b] = a.OA[b<<compactBlockLog]
	}
	c.byteBase[nb] = total
	c.edgeBase[nb] = m

	// Parallel encode into disjoint per-block byte ranges.
	c.data = make([]byte, total)
	parallelRanges(nb, w, func(_, blo, bhi int) {
		for b := blo; b < bhi; b++ {
			pos := c.byteBase[b]
			vlo := b << compactBlockLog
			vhi := vlo + compactBlock
			if vhi > n {
				vhi = n
			}
			for v := vlo; v < vhi; v++ {
				ns := a.NA[a.OA[v]:a.OA[v+1]]
				if len(ns) == 0 {
					continue
				}
				pos = putUvarint(c.data, pos, uint64(ns[0]))
				for i := 1; i < len(ns); i++ {
					pos = putUvarint(c.data, pos, uint64(ns[i]-ns[i-1]-1))
				}
			}
		}
	})
	return c
}

// materializePlain decodes a compact Adj back into the two-array CSR (used
// by SubAdj on compact inputs and by WithLayout(LayoutPlain)).
func materializePlain(c *adjCompact) Adj {
	oa := make([]uint64, c.n+1)
	na := make([]V, c.m)
	w := buildWorkers(int(c.m))
	nb := len(c.edgeBase) - 1
	parallelRanges(nb, w, func(_, blo, bhi int) {
		for b := blo; b < bhi; b++ {
			vlo := b << compactBlockLog
			vhi := vlo + compactBlock
			if vhi > c.n {
				vhi = c.n
			}
			edge := c.edgeBase[b]
			pos := c.byteBase[b]
			for v := vlo; v < vhi; v++ {
				oa[v] = edge
				d := c.degree(V(v))
				if d == 0 {
					continue
				}
				x, p := uvarintAt(c.data, pos)
				prev := V(x)
				na[edge] = prev
				for i := 1; i < d; i++ {
					gap, p2 := uvarintAt(c.data, p)
					prev += V(gap) + 1
					na[edge+uint64(i)] = prev
					p = p2
				}
				pos = p
				edge += uint64(d)
			}
		}
	})
	oa[c.n] = c.m
	return Adj{OA: oa, NA: na}
}

// WithLayout returns g in the requested concrete layout, sharing nothing
// mutable with g (the returned graph is a fresh value over immutable
// storage). LayoutAuto and an already-matching layout return g itself.
func (g *Graph) WithLayout(l Layout) *Graph {
	switch l {
	case LayoutCompact:
		if g.Out.c != nil && g.In.c != nil {
			return g
		}
		return &Graph{
			Out:  Adj{c: compactFromPlain(&g.Out)},
			In:   Adj{c: compactFromPlain(&g.In)},
			Name: g.Name,
		}
	case LayoutPlain:
		if g.Out.c == nil && g.In.c == nil {
			return g
		}
		out, in := g.Out, g.In
		if out.c != nil {
			out = materializePlain(out.c)
		}
		if in.c != nil {
			in = materializePlain(in.c)
		}
		return &Graph{Out: out, In: in, Name: g.Name}
	}
	return g
}

// appendCompactAdj serializes c for the POPTG2 container:
//
//	uvarint n, uvarint m
//	uvarint nexc, nexc x (uvarint vertex, uvarint degree)
//	n raw degree bytes
//	uvarint len(data), data
//
// Block arrays are reconstructed (and the payload fully validated) by
// decodeCompactAdj.
func appendCompactAdj(dst []byte, c *adjCompact) []byte {
	dst = binary.AppendUvarint(dst, uint64(c.n))
	dst = binary.AppendUvarint(dst, c.m)
	dst = binary.AppendUvarint(dst, uint64(len(c.excV)))
	for i, v := range c.excV {
		dst = binary.AppendUvarint(dst, uint64(v))
		dst = binary.AppendUvarint(dst, c.excDeg[i])
	}
	dst = append(dst, c.deg...)
	dst = binary.AppendUvarint(dst, uint64(len(c.data)))
	dst = append(dst, c.data...)
	return dst
}

// decodeCompactAdj parses and fully validates a payload produced by
// appendCompactAdj, reconstructing the block arrays. Every failure mode —
// truncated blocks, corrupt varints, out-of-range or wrapped (non-monotone)
// neighbors, degree/edge-count disagreements — returns an error; the
// decoder never panics and never allocates proportionally to claimed (as
// opposed to present) sizes. FuzzAdjBlocks drives it from corrupted real
// encodings.
func decodeCompactAdj(src []byte) (c *adjCompact, rest []byte, err error) {
	off := 0
	u := func(what string) (uint64, bool) {
		x, k := binary.Uvarint(src[off:])
		if k <= 0 {
			err = fmt.Errorf("graph: compact adj: bad %s varint at %d", what, off)
			return 0, false
		}
		off += k
		return x, true
	}
	n64, ok := u("vertex count")
	if !ok {
		return nil, nil, err
	}
	if n64 > uint64(len(src)) {
		return nil, nil, fmt.Errorf("graph: compact adj: %d vertices exceeds %d payload bytes", n64, len(src))
	}
	n := int(n64)
	m, ok := u("edge count")
	if !ok {
		return nil, nil, err
	}
	nexc, ok := u("exception count")
	if !ok {
		return nil, nil, err
	}
	if nexc > n64 {
		return nil, nil, fmt.Errorf("graph: compact adj: %d exceptions for %d vertices", nexc, n)
	}
	excV := make([]V, 0, nexc)
	excDeg := make([]uint64, 0, nexc)
	for i := uint64(0); i < nexc; i++ {
		v, ok := u("exception vertex")
		if !ok {
			return nil, nil, err
		}
		d, ok := u("exception degree")
		if !ok {
			return nil, nil, err
		}
		if v >= n64 {
			return nil, nil, fmt.Errorf("graph: compact adj: exception vertex %d out of range", v)
		}
		if len(excV) > 0 && V(v) <= excV[len(excV)-1] {
			return nil, nil, fmt.Errorf("graph: compact adj: exception table not sorted at vertex %d", v)
		}
		if d < degEscape {
			return nil, nil, fmt.Errorf("graph: compact adj: exception degree %d below escape threshold", d)
		}
		if d > m {
			return nil, nil, fmt.Errorf("graph: compact adj: exception degree %d exceeds edge count %d", d, m)
		}
		excV = append(excV, V(v))
		excDeg = append(excDeg, d)
	}
	if off+n > len(src) {
		return nil, nil, fmt.Errorf("graph: compact adj: truncated degree array")
	}
	deg := src[off : off+n : off+n]
	off += n
	dataLen, ok := u("data length")
	if !ok {
		return nil, nil, err
	}
	if dataLen > uint64(len(src)-off) {
		return nil, nil, fmt.Errorf("graph: compact adj: data length %d exceeds remaining %d bytes", dataLen, len(src)-off)
	}
	data := src[off : off+int(dataLen) : off+int(dataLen)]
	off += int(dataLen)

	c = &adjCompact{n: n, m: m, deg: deg, excV: excV, excDeg: excDeg, data: data}
	nb := (n + compactBlock - 1) >> compactBlockLog
	c.edgeBase = make([]uint64, nb+1)
	c.byteBase = make([]uint64, nb+1)

	// One streaming walk validates everything at once — every degree byte
	// against the exception table, every varint against truncation and
	// monotonicity (neighbors accumulate in uint64, so a wrapped gap shows
	// up as out-of-range) — while filling the block arrays.
	var edge, pos uint64
	exc := 0
	for v := 0; v < n; v++ {
		if v&(compactBlock-1) == 0 {
			b := v >> compactBlockLog
			c.edgeBase[b] = edge
			c.byteBase[b] = pos
		}
		var d uint64
		if deg[v] == degEscape {
			if exc >= len(excV) || excV[exc] != V(v) {
				return nil, nil, fmt.Errorf("graph: compact adj: vertex %d escaped with no exception entry", v)
			}
			d = excDeg[exc]
			exc++
		} else {
			d = uint64(deg[v])
		}
		if d > m-edge {
			return nil, nil, fmt.Errorf("graph: compact adj: degrees exceed edge count %d at vertex %d", m, v)
		}
		edge += d
		var prev uint64
		for i := uint64(0); i < d; i++ {
			x, k := binary.Uvarint(data[pos:])
			if k <= 0 {
				return nil, nil, fmt.Errorf("graph: compact adj: truncated or corrupt neighbor varint for vertex %d", v)
			}
			pos += uint64(k)
			if i == 0 {
				prev = x
			} else {
				prev += x + 1
			}
			if prev >= n64 {
				return nil, nil, fmt.Errorf("graph: compact adj: vertex %d neighbor %d out of range [0,%d)", v, prev, n)
			}
		}
	}
	if exc != len(excV) {
		return nil, nil, fmt.Errorf("graph: compact adj: %d unused exception entries", len(excV)-exc)
	}
	if edge != m {
		return nil, nil, fmt.Errorf("graph: compact adj: degrees sum to %d, header says %d", edge, m)
	}
	if pos != uint64(len(data)) {
		return nil, nil, fmt.Errorf("graph: compact adj: %d trailing data bytes", uint64(len(data))-pos)
	}
	c.edgeBase[nb] = m
	c.byteBase[nb] = pos
	return c, src[off:], nil
}
