package graph

import (
	"encoding/binary"
	"hash/fnv"
	"sync"
)

// The experiment harness asks for the same five-graph suite over and over
// — every fig2..fig16 driver starts from Suite(scale, seed) — and graphs
// are immutable once FromEdges returns. Building each (scale, seed) suite
// once and sharing the *Graph pointers across experiments (and across the
// concurrent cells of a parallel sweep) removes the single largest
// redundant cost of a `poptbench all` run. Nothing is ever invalidated:
// a cached suite is exactly as valid as a rebuilt one, byte for byte.

var suiteCache struct {
	sync.Mutex
	m map[suiteKey][]*Graph //popt:guardedby Mutex
}

type suiteKey struct {
	scale Scale
	seed  int64
}

// cachedSuite returns the memoized suite for (s, seed), building it on
// first use. The build happens under the lock so concurrent first callers
// do not duplicate the work; afterwards every caller gets the same
// immutable graphs.
func cachedSuite(s Scale, seed int64) []*Graph {
	key := suiteKey{s, seed}
	suiteCache.Lock()
	defer suiteCache.Unlock()
	if g, ok := suiteCache.m[key]; ok {
		return g
	}
	if suiteCache.m == nil {
		suiteCache.m = make(map[suiteKey][]*Graph)
	}
	g := buildSuite(s, seed)
	suiteCache.m[key] = g
	return g
}

// Checksum returns an FNV-1a hash over both adjacency directions (offsets
// and neighbor arrays). Graphs are immutable after construction; tests
// hash a suite graph before and after a concurrent sweep to prove no cell
// wrote through the shared pointers.
func (g *Graph) Checksum() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, a := range []*Adj{&g.Out, &g.In} {
		for _, x := range a.OA {
			binary.LittleEndian.PutUint64(buf[:], x)
			h.Write(buf[:])
		}
		for _, v := range a.NA {
			binary.LittleEndian.PutUint32(buf[:4], uint32(v))
			h.Write(buf[:4])
		}
	}
	return h.Sum64()
}
