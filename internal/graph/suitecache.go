package graph

import (
	"encoding/binary"
	"hash/fnv"
	"sync"
)

// The experiment harness asks for the same five-graph suite over and over
// — every fig2..fig16 driver starts from Suite(scale, seed) — and graphs
// are immutable once FromEdges returns. Building each (scale, seed) suite
// once and sharing the *Graph pointers across experiments (and across the
// concurrent cells of a parallel sweep) removes the single largest
// redundant cost of a `poptbench all` run. Nothing is ever invalidated:
// a cached suite is exactly as valid as a rebuilt one, byte for byte.

var suiteCache struct {
	sync.Mutex
	m map[suiteKey][]*Graph //popt:guardedby Mutex
}

type suiteKey struct {
	scale  Scale
	seed   int64
	layout Layout // resolved: LayoutPlain or LayoutCompact, never LayoutAuto
}

// cachedSuite returns the memoized plain suite for (s, seed), building it
// on first use. The build happens under the lock so concurrent first
// callers do not duplicate the work; afterwards every caller gets the
// same immutable graphs.
func cachedSuite(s Scale, seed int64) []*Graph {
	return cachedSuiteLayout(s, seed, LayoutPlain)
}

// cachedSuiteLayout memoizes per (scale, seed, resolved layout). A compact
// suite is built graph by graph — each plain graph is encoded and dropped
// before the next generates — so peak residency during construction is one
// plain graph plus the compact results, not a whole retained plain suite.
func cachedSuiteLayout(s Scale, seed int64, lay Layout) []*Graph {
	key := suiteKey{s, seed, lay.Resolve(s)}
	suiteCache.Lock()
	defer suiteCache.Unlock()
	if g, ok := suiteCache.m[key]; ok {
		return g
	}
	if suiteCache.m == nil {
		suiteCache.m = make(map[suiteKey][]*Graph)
	}
	g := buildSuite(s, seed, key.layout)
	suiteCache.m[key] = g
	return g
}

// Checksum returns an FNV-1a hash over both adjacency directions (offsets
// and neighbor arrays). Graphs are immutable after construction; tests
// hash a suite graph before and after a concurrent sweep to prove no cell
// wrote through the shared pointers. The hash is layout-invariant — a
// compact graph hashes its logical offsets and neighbor values in the
// same order and width the plain arrays serialize to — so corpus stream
// keys (which embed the checksum) match across layouts and a warm corpus
// recorded under either layout serves both.
func (g *Graph) Checksum() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, a := range []*Adj{&g.Out, &g.In} {
		if a.c == nil {
			for _, x := range a.OA {
				binary.LittleEndian.PutUint64(buf[:], x)
				h.Write(buf[:])
			}
			for _, v := range a.NA {
				binary.LittleEndian.PutUint32(buf[:4], uint32(v))
				h.Write(buf[:4])
			}
			continue
		}
		n := a.N()
		it := a.IterFrom(0)
		for v := 0; v < n; v++ {
			_, start := it.Next()
			binary.LittleEndian.PutUint64(buf[:], start)
			h.Write(buf[:])
		}
		binary.LittleEndian.PutUint64(buf[:], uint64(a.M()))
		h.Write(buf[:])
		it = a.IterFrom(0)
		for v := 0; v < n; v++ {
			ns, _ := it.Next()
			for _, u := range ns {
				binary.LittleEndian.PutUint32(buf[:4], uint32(u))
				h.Write(buf[:4])
			}
		}
	}
	return h.Sum64()
}
