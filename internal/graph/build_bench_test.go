package graph

import (
	"fmt"
	"runtime"
	"testing"
)

// Construction benchmarks in the style of cache's datapath_bench_test.go:
// fixed synthetic inputs, the measured loop doing exactly the operation
// named. CI uploads the output next to the datapath numbers so build-path
// regressions are visible per PR.

// BenchmarkFromEdges measures the phase-parallel CSR+CSC build on a
// 256 K-edge pseudo-random edge list (large enough to fork at
// GOMAXPROCS > 1, so the parallel phases are on the measured path).
func BenchmarkFromEdges(b *testing.B) {
	const n = 1 << 14
	edges := synthEdges(n, 1<<18, 42)
	b.SetBytes(int64(len(edges) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromEdges("bench", n, edges)
	}
}

// BenchmarkFromEdgesSerial is BenchmarkFromEdges pinned to one worker:
// the before/after of the sort.Slice -> SortV and exact-size-NA changes,
// independent of available cores.
func BenchmarkFromEdgesSerial(b *testing.B) {
	const n = 1 << 14
	edges := synthEdges(n, 1<<18, 42)
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	b.SetBytes(int64(len(edges) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromEdges("bench", n, edges)
	}
}

// BenchmarkKron measures end-to-end generation (chunked R-MAT edge draws
// plus the parallel build) at a size past one genChunk granule so the
// multi-stream layout is exercised.
func BenchmarkKron(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Kron(19, 4, int64(i))
	}
}

// BenchmarkSortV measures the manual segment sort against the degree
// shapes the build sees: short power-law-ish segments re-sorted from a
// shuffled pool.
func BenchmarkSortV(b *testing.B) {
	for _, segLen := range []int{8, 64, 1024} {
		b.Run(fmt.Sprintf("seg=%d", segLen), func(b *testing.B) {
			src := synthEdges(1<<20, segLen, uint64(segLen))
			seg := make([]V, segLen)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range seg {
					seg[j] = src[j].Dst
				}
				SortV(seg)
			}
		})
	}
}
