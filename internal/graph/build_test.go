package graph

import (
	"math/rand"
	"runtime"
	"sort"
	"testing"
)

// synthEdges builds a deterministic pseudo-random edge list big enough to
// engage the parallel build phases (m > minEdgesPerWorker forks at
// GOMAXPROCS >= 2) without a generator in the loop.
func synthEdges(n, m int, seed uint64) []Edge {
	edges := make([]Edge, m)
	x := seed | 1
	for i := range edges {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		src := V(x % uint64(n))
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		edges[i] = Edge{src, V(x % uint64(n))}
	}
	return edges
}

// atGOMAXPROCS runs fn with the given GOMAXPROCS, restoring the old value.
func atGOMAXPROCS(p int, fn func()) {
	old := runtime.GOMAXPROCS(p)
	defer runtime.GOMAXPROCS(old)
	fn()
}

// TestBuildWorkerInvariance pins the tentpole property of the parallel
// build: the Graph bytes are identical at every worker count and across
// repeated runs. It runs in the CI race job, so the disjoint-range claims
// of the placement and sort phases are also checked by the race detector.
func TestBuildWorkerInvariance(t *testing.T) {
	// The second shape crosses radixMinVerts (with a vertex count that is
	// not a bucket multiple), so the radix build's disjoint-bucket claims
	// run under the race detector too.
	for _, tc := range []struct {
		name string
		n, m int
	}{
		{"counting-sort", 1 << 14, 4*minEdgesPerWorker + 12345},
		{"radix", radixMinVerts + 12345, 3*(radixMinVerts+12345) + 999},
	} {
		t.Run(tc.name, func(t *testing.T) {
			edges := synthEdges(tc.n, tc.m, 99)
			var want uint64
			for _, p := range []int{1, 2, runtime.GOMAXPROCS(0)} {
				for run := 0; run < 2; run++ {
					var g *Graph
					atGOMAXPROCS(p, func() { g = FromEdges("inv", tc.n, edges) })
					if err := g.Validate(); err != nil {
						t.Fatalf("GOMAXPROCS=%d run=%d: %v", p, run, err)
					}
					sum := g.Checksum()
					if want == 0 {
						want = sum
					} else if sum != want {
						t.Fatalf("GOMAXPROCS=%d run=%d: checksum %#x, want %#x", p, run, sum, want)
					}
				}
			}
		})
	}
}

// TestBuildMatchesSerialReference checks the parallel build against a
// straightforward serial counting-sort + sort.Slice reference on edge
// lists crossing the worker grain, including degenerate shapes (empty,
// single vertex, all-duplicate).
func TestBuildMatchesSerialReference(t *testing.T) {
	refAdj := func(n int, edges []Edge, transpose bool) Adj {
		counts := make([]uint64, n+1)
		for _, e := range edges {
			k := e.Src
			if transpose {
				k = e.Dst
			}
			counts[k+1]++
		}
		for i := 0; i < n; i++ {
			counts[i+1] += counts[i]
		}
		na := make([]V, len(edges))
		cursor := make([]uint64, n)
		for _, e := range edges {
			k, v := e.Src, e.Dst
			if transpose {
				k, v = e.Dst, e.Src
			}
			na[counts[k]+cursor[k]] = v
			cursor[k]++
		}
		w := uint64(0)
		newOA := make([]uint64, n+1)
		for v := 0; v < n; v++ {
			seg := na[counts[v]:counts[v+1]]
			sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })
			newOA[v] = w
			for i, u := range seg {
				if i > 0 && u == seg[i-1] {
					continue
				}
				na[w] = u
				w++
			}
		}
		newOA[n] = w
		return Adj{OA: newOA, NA: na[:w:w]}
	}
	cases := []struct {
		name  string
		n     int
		edges []Edge
	}{
		{"empty", 4, nil},
		{"single-vertex-loops", 1, []Edge{{0, 0}, {0, 0}, {0, 0}}},
		{"all-duplicates", 8, func() []Edge {
			e := make([]Edge, 3*minEdgesPerWorker)
			for i := range e {
				e[i] = Edge{2, 5}
			}
			return e
		}()},
		{"random-multigrain", 1 << 12, synthEdges(1<<12, 2*minEdgesPerWorker+777, 7)},
		// Crosses radixMinVerts with a ragged final bucket: the radix path
		// must produce the counting-sort reference's bytes exactly.
		{"radix-large-verts", radixMinVerts + 999, synthEdges(radixMinVerts+999, 3*(radixMinVerts+999)+777, 11)},
	}
	for _, tc := range cases {
		for _, transpose := range []bool{false, true} {
			want := refAdj(tc.n, tc.edges, transpose)
			var got Adj
			atGOMAXPROCS(4, func() { got = adjFromEdges(tc.n, tc.edges, transpose) })
			if !equalU64(got.OA, want.OA) {
				t.Fatalf("%s transpose=%v: OA mismatch", tc.name, transpose)
			}
			if !equalV(got.NA, want.NA) {
				t.Fatalf("%s transpose=%v: NA mismatch", tc.name, transpose)
			}
		}
	}
}

// TestAdjTransposeMatchesDirect pins the transpose fast path: deriving
// the in-adjacency from the built CSR (stable scatter, no sort/dedup)
// must produce exactly the bytes of a full transpose build over the raw
// edge list, on both the direct and radix shapes and at several worker
// counts.
func TestAdjTransposeMatchesDirect(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		edges []Edge
	}{
		{"empty", 4, nil},
		{"single-vertex-loops", 1, []Edge{{0, 0}, {0, 0}, {0, 0}}},
		{"random-multigrain", 1 << 12, synthEdges(1<<12, 2*minEdgesPerWorker+777, 7)},
		{"radix-large-verts", radixMinVerts + 999, synthEdges(radixMinVerts+999, 3*(radixMinVerts+999)+777, 11)},
	}
	for _, tc := range cases {
		out := adjFromEdges(tc.n, tc.edges, false)
		want := adjFromEdges(tc.n, tc.edges, true)
		for _, p := range []int{1, 4} {
			var got Adj
			atGOMAXPROCS(p, func() { got = adjTranspose(tc.n, out) })
			if !equalU64(got.OA, want.OA) {
				t.Fatalf("%s GOMAXPROCS=%d: OA mismatch", tc.name, p)
			}
			if !equalV(got.NA, want.NA) {
				t.Fatalf("%s GOMAXPROCS=%d: NA mismatch", tc.name, p)
			}
		}
	}
}

// TestGeneratorWorkerInvariance pins chunk-parallel generation: a graph
// larger than one genChunk granule comes out byte-identical at every
// GOMAXPROCS. Uniform is the cheap generator, so it carries the
// multi-chunk case.
func TestGeneratorWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-chunk generation is a few hundred ms")
	}
	const n = 1 << 14
	const m = genChunk + genChunk/2
	var want uint64
	for _, p := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		var g *Graph
		atGOMAXPROCS(p, func() { g = Uniform(n, m, 42) })
		sum := g.Checksum()
		if want == 0 {
			want = sum
		} else if sum != want {
			t.Fatalf("GOMAXPROCS=%d: checksum %#x, want %#x", p, sum, want)
		}
	}
}

// TestGeneratorChecksumsPinned hardcodes the checksum of one small graph
// per generator. Single-chunk generations must keep drawing from the
// historical rand.NewSource(seed) stream (chunkSeed(seed, 0) == seed);
// any accidental change to the draw order or the chunk layout shows up
// here before it silently invalidates the sweep goldens downstream.
func TestGeneratorChecksumsPinned(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want uint64
	}{
		{"PowerLaw", PowerLaw(1<<11, 8, 2.0, 42), 0x85402465d20e788f},
		{"Community", Community(1<<11, 12, 64, 0.8, 43), 0xf1a674bbbb8e34c1},
		{"Kron", Kron(12, 4, 44), 0x393f625f5a1a6e19},
		{"Uniform", Uniform(1<<12, 4<<12, 45), 0x508e356e90e7226f},
		{"MeshScrambled", MeshScrambled(48, 48, 46), 0xb4336678244fb71d},
	}
	for _, tc := range cases {
		if got := tc.g.Checksum(); got != tc.want {
			t.Errorf("%s: checksum %#x, want %#x (legacy single-chunk stream changed?)", tc.name, got, tc.want)
		}
	}
}

// TestSortV checks the manual sort against the library sort across
// shapes that stress each code path: short insertion-sorted runs, long
// partitioned runs, duplicates, sorted, reversed, organ-pipe.
func TestSortV(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	check := func(name string, a []V) {
		t.Helper()
		want := append([]V(nil), a...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		SortV(a)
		if !equalV(a, want) {
			t.Fatalf("%s: SortV diverges from sort.Slice (len=%d)", name, len(a))
		}
	}
	for _, size := range []int{0, 1, 2, 3, insertionCut, insertionCut + 1, 100, 1000, 65537} {
		a := make([]V, size)
		for i := range a {
			a[i] = V(rng.Intn(size + 1))
		}
		check("random", a)
		for i := range a {
			a[i] = V(i)
		}
		check("sorted", a)
		for i := range a {
			a[i] = V(size - i)
		}
		check("reversed", a)
		for i := range a {
			a[i] = V(i % 7)
		}
		check("dup-heavy", a)
		for i := range a {
			if i < size/2 {
				a[i] = V(i)
			} else {
				a[i] = V(size - i)
			}
		}
		check("organ-pipe", a)
	}
}

// TestDedupV checks in-place dedup on sorted inputs.
func TestDedupV(t *testing.T) {
	cases := []struct {
		in   []V
		want []V
	}{
		{nil, nil},
		{[]V{5}, []V{5}},
		{[]V{1, 1, 1, 1}, []V{1}},
		{[]V{1, 2, 3}, []V{1, 2, 3}},
		{[]V{0, 0, 1, 3, 3, 3, 9, 9}, []V{0, 1, 3, 9}},
	}
	for _, tc := range cases {
		a := append([]V(nil), tc.in...)
		n := dedupV(a)
		if n != len(tc.want) || !equalV(a[:n], tc.want) {
			t.Fatalf("dedupV(%v) = %v (n=%d), want %v", tc.in, a[:n], n, tc.want)
		}
	}
}
