package graph

import "sort"

// This file implements vertex reorderings. Degree-Based Grouping (DBG,
// Faldu et al., IISWC 2019) is required by the GRASP replacement policy
// (Fig. 12a): GRASP expects the input graph's hottest vertices packed at
// the front of the vertex ID space, which DBG achieves by grouping vertices
// into power-of-two degree classes ordered by descending degree while
// preserving relative order within a class (preserving intra-class
// locality of the original ordering).

// Permutation maps old vertex IDs to new vertex IDs: newID := p[oldID].
type Permutation []V

// Inverse returns the inverse permutation (new -> old).
func (p Permutation) Inverse() Permutation {
	inv := make(Permutation, len(p))
	for old, nw := range p {
		inv[nw] = V(old)
	}
	return inv
}

// DBG computes the Degree-Based Grouping permutation of g using total
// (in+out) degree. Group k holds vertices with degree in [2^k, 2^(k+1));
// groups are laid out from highest class to lowest, so hub vertices end up
// in a small dense prefix of the ID space.
func DBG(g *Graph) Permutation {
	n := g.NumVertices()
	class := make([]int, n)
	maxClass := 0
	for v := 0; v < n; v++ {
		d := g.Out.Degree(V(v)) + g.In.Degree(V(v))
		c := 0
		for x := d; x > 1; x >>= 1 {
			c++
		}
		class[v] = c
		if c > maxClass {
			maxClass = c
		}
	}
	// Stable counting layout: highest class first, original order within.
	counts := make([]int, maxClass+2)
	for _, c := range class {
		counts[maxClass-c]++ // bucket 0 = highest class
	}
	start := make([]int, maxClass+2)
	for i := 1; i <= maxClass+1; i++ {
		start[i] = start[i-1] + counts[i-1]
	}
	p := make(Permutation, n)
	cursor := make([]int, maxClass+1)
	for v := 0; v < n; v++ {
		b := maxClass - class[v]
		p[v] = V(start[b] + cursor[b])
		cursor[b]++
	}
	return p
}

// HotPrefixLines returns how many vertices of the DBG-ordered graph fall in
// the "hot" degree classes that GRASP should pin: the smallest prefix of
// classes whose per-vertex data fits in the given budget of bytes, given
// elemSize bytes per vertex. GRASP's own heuristic sizes the hot region to
// a fraction of the LLC.
func HotPrefixLines(g *Graph, p Permutation, elemSize, budgetBytes int) int {
	maxVerts := budgetBytes / elemSize
	if maxVerts > g.NumVertices() {
		maxVerts = g.NumVertices()
	}
	return maxVerts
}

// Apply relabels g's vertices with p and rebuilds both directions. The
// result is a new graph; g is unmodified.
func (p Permutation) Apply(g *Graph) *Graph {
	n := g.NumVertices()
	edges := make([]Edge, 0, g.NumEdges())
	it := g.Out.IterFrom(0)
	for s := 0; s < n; s++ {
		ns, _ := it.Next()
		for _, d := range ns {
			edges = append(edges, Edge{p[s], p[d]})
		}
	}
	return FromEdges(g.Name+"-dbg", n, edges)
}

// SortByDegree returns a permutation placing vertices in strictly
// descending order of out-degree (ties by original ID). It is a harsher
// reordering than DBG, used in tests as a reference point.
func SortByDegree(g *Graph) Permutation {
	n := g.NumVertices()
	order := make([]V, n)
	for i := range order {
		order[i] = V(i)
	}
	sort.SliceStable(order, func(i, j int) bool {
		return g.Out.Degree(order[i]) > g.Out.Degree(order[j])
	})
	p := make(Permutation, n)
	for nw, old := range order {
		p[old] = V(nw)
	}
	return p
}
