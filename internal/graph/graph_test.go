package graph

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// paperExample is the 5-vertex graph from Figure 1 of the paper. Its CSC is
//
//	OA: 0 3 5 7 8;  NA: 1 2 4 | 2 3 | 0 4 | 2 | 1 3
//
// and its CSR is
//
//	OA: 0 1 3 6 8;  NA: 2 | 0 4 | 0 1 3 | 1 4 | 0 2
func paperExample() *Graph {
	edges := []Edge{
		{0, 2},
		{1, 0}, {1, 4},
		{2, 0}, {2, 1}, {2, 3},
		{3, 1}, {3, 4},
		{4, 0}, {4, 2},
	}
	return FromEdges("fig1", 5, edges)
}

func TestPaperExampleCSRAndCSC(t *testing.T) {
	g := paperExample()
	wantOutOA := []uint64{0, 1, 3, 6, 8, 10}
	wantOutNA := []V{2, 0, 4, 0, 1, 3, 1, 4, 0, 2}
	if !equalU64(g.Out.OA, wantOutOA) {
		t.Errorf("CSR OA = %v, want %v", g.Out.OA, wantOutOA)
	}
	if !equalV(g.Out.NA, wantOutNA) {
		t.Errorf("CSR NA = %v, want %v", g.Out.NA, wantOutNA)
	}
	wantInOA := []uint64{0, 3, 5, 7, 8, 10}
	wantInNA := []V{1, 2, 4, 2, 3, 0, 4, 2, 1, 3}
	if !equalU64(g.In.OA, wantInOA) {
		t.Errorf("CSC OA = %v, want %v", g.In.OA, wantInOA)
	}
	if !equalV(g.In.NA, wantInNA) {
		t.Errorf("CSC NA = %v, want %v", g.In.NA, wantInNA)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNextAfterMatchesPaperScenarios(t *testing.T) {
	g := paperExample()
	// Replacement scenario A (Fig. 3): while processing D0, S1's next
	// reference is D4 and S2's next reference is D1.
	if next, ok := g.Out.NextAfter(1, 0); !ok || next != 4 {
		t.Errorf("NextAfter(S1, D0) = %d,%v want 4,true", next, ok)
	}
	if next, ok := g.Out.NextAfter(2, 0); !ok || next != 1 {
		t.Errorf("NextAfter(S2, D0) = %d,%v want 1,true", next, ok)
	}
	// Scenario B: while processing D1, S4's next ref is D2, S2's is D3.
	if next, ok := g.Out.NextAfter(4, 1); !ok || next != 2 {
		t.Errorf("NextAfter(S4, D1) = %d,%v want 2,true", next, ok)
	}
	if next, ok := g.Out.NextAfter(2, 1); !ok || next != 3 {
		t.Errorf("NextAfter(S2, D1) = %d,%v want 3,true", next, ok)
	}
	// S0's only out-neighbor is D2; past that there is no next reference.
	if _, ok := g.Out.NextAfter(0, 2); ok {
		t.Error("NextAfter(S0, D2) should have no next reference")
	}
}

func TestFromEdgesDeduplicates(t *testing.T) {
	g := FromEdges("dup", 3, []Edge{{0, 1}, {0, 1}, {0, 2}, {1, 0}, {1, 0}})
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3 after dedup", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeSwapsDirections(t *testing.T) {
	g := paperExample()
	tr := g.Transpose()
	if !equalU64(tr.Out.OA, g.In.OA) || !equalV(tr.Out.NA, g.In.NA) {
		t.Error("transpose Out should equal original In")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorsProduceValidGraphs(t *testing.T) {
	for _, g := range Suite(ScaleTiny, 42) {
		g := g
		t.Run(g.Name, func(t *testing.T) {
			if err := g.Validate(); err != nil {
				t.Fatal(err)
			}
			if g.NumVertices() == 0 || g.NumEdges() == 0 {
				t.Fatalf("degenerate graph: %v", g)
			}
		})
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := Kron(10, 4, 7)
	b := Kron(10, 4, 7)
	if a.NumEdges() != b.NumEdges() || !equalV(a.Out.NA, b.Out.NA) {
		t.Error("Kron with the same seed should be reproducible")
	}
	c := Kron(10, 4, 8)
	if equalV(a.Out.NA, c.Out.NA) {
		t.Error("Kron with different seeds should differ")
	}
}

func TestKronIsSkewedUniformIsNot(t *testing.T) {
	k := Kron(12, 8, 1)
	u := Uniform(1<<12, 8<<12, 1)
	kmax, _ := k.MaxDegree()
	umax, _ := u.MaxDegree()
	if kmax < 4*umax {
		t.Errorf("Kron max degree %d should dwarf uniform max degree %d", kmax, umax)
	}
}

func TestMeshProperties(t *testing.T) {
	g := Mesh(10, 12)
	if g.NumVertices() != 120 {
		t.Fatalf("vertices = %d, want 120", g.NumVertices())
	}
	if deg, _ := g.MaxDegree(); deg > 4 {
		t.Errorf("mesh max degree = %d, want <= 4", deg)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Mesh is symmetric: In and Out must match.
	if !equalV(g.In.NA, g.Out.NA) || !equalU64(g.In.OA, g.Out.OA) {
		t.Error("mesh should be symmetric")
	}
}

func TestDBGPlacesHubsFirst(t *testing.T) {
	g := Kron(12, 8, 3)
	p := DBG(g)
	rg := p.Apply(g)
	if err := rg.Validate(); err != nil {
		t.Fatal(err)
	}
	if rg.NumEdges() != g.NumEdges() {
		t.Fatalf("reordering changed edge count: %d vs %d", rg.NumEdges(), g.NumEdges())
	}
	// Average degree of the first 10% of IDs should exceed that of the
	// last 10% by a wide margin after DBG.
	n := rg.NumVertices()
	tenth := n / 10
	sumDeg := func(lo, hi int) int {
		s := 0
		for v := lo; v < hi; v++ {
			s += rg.Out.Degree(V(v)) + rg.In.Degree(V(v))
		}
		return s
	}
	front, back := sumDeg(0, tenth), sumDeg(n-tenth, n)
	if front <= 4*back {
		t.Errorf("DBG front-degree sum %d should dominate back %d", front, back)
	}
}

func TestDBGPreservesIntraClassOrder(t *testing.T) {
	// All same degree -> DBG must be the identity.
	g := Mesh(1, 10) // path graph: interior vertices degree 2 each way
	p := DBG(g)
	// Vertices 1..8 all have total degree 4, vertices 0 and 9 degree 2. The
	// degree-4 class precedes the degree-2 class, and within each class the
	// original order is preserved.
	for v := 2; v <= 8; v++ {
		if p[v] != p[v-1]+1 {
			t.Errorf("intra-class order broken at %d: %v", v, p)
		}
	}
	if p[0] != p[9]-0 && p[0] >= p[9] {
		t.Errorf("endpoints should stay in original relative order: %v", p)
	}
}

func TestPermutationInverse(t *testing.T) {
	g := Kron(10, 4, 5)
	p := DBG(g)
	inv := p.Inverse()
	for v := range p {
		if int(inv[p[v]]) != v {
			t.Fatalf("inverse broken at %d", v)
		}
	}
}

func TestSortByDegree(t *testing.T) {
	g := Kron(10, 8, 5)
	p := SortByDegree(g)
	inv := p.Inverse()
	for nw := 1; nw < len(inv); nw++ {
		if g.Out.Degree(inv[nw-1]) < g.Out.Degree(inv[nw]) {
			t.Fatalf("degree order violated at position %d", nw)
		}
	}
}

func TestSegmentPartitionsEdges(t *testing.T) {
	g := Uniform(1<<10, 8<<10, 9)
	for _, tiles := range []int{1, 2, 3, 7, 16} {
		s := Segment(g, tiles)
		if err := s.Validate(); err != nil {
			t.Fatalf("tiles=%d: %v", tiles, err)
		}
	}
}

func TestSegmentTileTranspose(t *testing.T) {
	g := paperExample()
	s := Segment(g, 2)
	for i := range s.Tiles {
		tr := s.TileTranspose(i)
		// Total edges in tile transpose equals edges in tile CSC.
		if tr.M() != s.Tiles[i].In.M() {
			t.Errorf("tile %d transpose has %d edges, CSC has %d", i, tr.M(), s.Tiles[i].In.M())
		}
		// Every (src,dst) in the transpose appears in the tile's CSC.
		for v := V(0); int(v) < g.NumVertices(); v++ {
			for _, d := range tr.Neighs(v) {
				if !contains(s.Tiles[i].In.Neighs(d), v) {
					t.Errorf("tile %d: edge %d->%d missing from tile CSC", i, v, d)
				}
			}
		}
	}
}

func TestRoundTripSerialization(t *testing.T) {
	g := Kron(10, 4, 11)
	var buf testBuffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != g.Name || !equalV(got.Out.NA, g.Out.NA) || !equalU64(got.In.OA, g.In.OA) {
		t.Error("round trip mismatch")
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseEdgeList(t *testing.T) {
	src := "# comment\n0 1\n1 2\n\n2 0\n"
	g, err := ParseEdgeList(stringsReader(src), "tri", 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d, want 3", g.NumEdges())
	}
	if _, err := ParseEdgeList(stringsReader("0 99\n"), "bad", 3); err == nil {
		t.Error("out-of-range endpoint should error")
	}
}

// Property: NextAfter agrees with a linear scan of the neighbor list.
func TestNextAfterProperty(t *testing.T) {
	g := Uniform(256, 2048, 13)
	f := func(vRaw, curRaw uint16) bool {
		v := V(vRaw) % 256
		cur := V(curRaw) % 256
		got, gotOK := g.Out.NextAfter(v, cur)
		var want V
		wantOK := false
		for _, u := range g.Out.Neighs(v) {
			if u > cur {
				want, wantOK = u, true
				break
			}
		}
		return got == want && gotOK == wantOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: FromEdges -> Validate holds for arbitrary random edge lists.
func TestFromEdgesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(64)
		m := rng.Intn(256)
		edges := make([]Edge, m)
		for i := range edges {
			edges[i] = Edge{V(rng.Intn(n)), V(rng.Intn(n))}
		}
		g := FromEdges("prop", n, edges)
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := paperExample()
	hist := g.DegreeHistogram()
	total := 0
	for _, c := range hist {
		total += c
	}
	if total != g.NumVertices() {
		t.Errorf("histogram sums to %d, want %d", total, g.NumVertices())
	}
}

// --- small helpers ---

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalV(a, b []V) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

type testBuffer = bytes.Buffer

func stringsReader(s string) io.Reader { return strings.NewReader(s) }

func TestValidateCatchesCorruption(t *testing.T) {
	// Failure injection: each corruption must be caught by Validate.
	fresh := func() *Graph { return paperExample() }

	g := fresh()
	g.Out.OA[2], g.Out.OA[3] = g.Out.OA[3], g.Out.OA[2] //lint:allow sharefreeze (inject non-monotone offsets)
	if g.Validate() == nil {
		t.Error("non-monotone offsets not detected")
	}

	g = fresh()
	g.Out.NA[0] = 99 //lint:allow sharefreeze (inject out-of-range neighbor)
	if g.Validate() == nil {
		t.Error("out-of-range neighbor not detected")
	}

	g = fresh()
	g.Out.NA[4], g.Out.NA[5] = g.Out.NA[5], g.Out.NA[4] //lint:allow sharefreeze (inject unsorted neighbors)
	if g.Validate() == nil {
		t.Error("unsorted neighbors not detected")
	}

	g = fresh()
	// Replace an out-edge so the CSC no longer matches the CSR.
	g.Out.NA[0] = 3 //lint:allow sharefreeze (0->2 becomes 0->3, CSC still encodes 0->2)
	if g.Validate() == nil {
		t.Error("CSR/CSC mismatch not detected")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not a graph at all")); err == nil {
		t.Error("garbage magic accepted")
	}
	if _, err := Read(strings.NewReader("POPTG1")); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestDBGIsPermutationProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := Uniform(128, 512, seed)
		p := DBG(g)
		seen := make([]bool, len(p))
		for _, v := range p {
			if int(v) >= len(p) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestParseMatrixMarket(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate pattern general
% a comment
3 3 3
1 2
2 3
3 1
`
	g, err := ParseMatrixMarket(strings.NewReader(src), "tri")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %v", g)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseMatrixMarketSymmetric(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real symmetric
2 2 2
1 2 3.5
2 2 1.0
`
	g, err := ParseMatrixMarket(strings.NewReader(src), "sym")
	if err != nil {
		t.Fatal(err)
	}
	// 1-2 expands to both directions; the 2-2 self-loop does not double.
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d, want 3", g.NumEdges())
	}
	if _, ok := g.Out.NextAfter(1, 0); !ok {
		t.Error("reverse edge 2->1 missing")
	}
}

func TestParseMatrixMarketErrors(t *testing.T) {
	bad := []string{
		"",
		"%%MatrixMarket matrix array real general\n2 2\n",
		"%%MatrixMarket matrix coordinate pattern general\n2 2 1\n5 1\n",
		"%%MatrixMarket matrix coordinate pattern general\n2 2 3\n1 1\n",
	}
	for i, src := range bad {
		if _, err := ParseMatrixMarket(strings.NewReader(src), "bad"); err == nil {
			t.Errorf("case %d: accepted malformed input", i)
		}
	}
}

func TestMatrixMarketRoundTrip(t *testing.T) {
	g := Kron(9, 4, 3)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ParseMatrixMarket(&buf, g.Name)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != g.NumEdges() || !equalV(got.Out.NA, g.Out.NA) {
		t.Error("round trip mismatch")
	}
}
