package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// MatrixMarket support: real-world graph suites (SuiteSparse, LAW) ship as
// .mtx coordinate files; ParseMatrixMarket loads the "coordinate" variants
// (pattern/integer/real values are accepted and ignored — only structure
// matters for cache studies). Symmetric matrices are expanded to both
// directions. Indices are 1-based per the format.

// ParseMatrixMarket reads a MatrixMarket coordinate file into a Graph.
func ParseMatrixMarket(r io.Reader, name string) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	// Header: %%MatrixMarket matrix coordinate <field> <symmetry>
	if !sc.Scan() {
		return nil, fmt.Errorf("mtx: empty input")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
		return nil, fmt.Errorf("mtx: bad header %q", sc.Text())
	}
	if header[2] != "coordinate" {
		return nil, fmt.Errorf("mtx: only coordinate format is supported, got %q", header[2])
	}
	symmetric := header[4] == "symmetric" || header[4] == "skew-symmetric"

	// Skip comments; then the size line: rows cols entries.
	var rows, cols, entries int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &rows, &cols, &entries); err != nil {
			return nil, fmt.Errorf("mtx: bad size line %q: %w", line, err)
		}
		break
	}
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("mtx: bad dimensions %dx%d", rows, cols)
	}
	n := rows
	if cols > n {
		n = cols
	}
	edges := make([]Edge, 0, entries*2)
	read := 0
	for sc.Scan() && read < entries {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		var i, j int
		// Values after the indices (real/integer fields) are ignored.
		if _, err := fmt.Sscan(line, &i, &j); err != nil {
			return nil, fmt.Errorf("mtx: bad entry %q: %w", line, err)
		}
		if i < 1 || j < 1 || i > n || j > n {
			return nil, fmt.Errorf("mtx: entry (%d,%d) out of range for %d vertices", i, j, n)
		}
		read++
		edges = append(edges, Edge{V(i - 1), V(j - 1)})
		if symmetric && i != j {
			edges = append(edges, Edge{V(j - 1), V(i - 1)})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if read < entries {
		return nil, fmt.Errorf("mtx: expected %d entries, found %d", entries, read)
	}
	return FromEdges(name, n, edges), nil
}

// WriteMatrixMarket writes g as a general coordinate pattern matrix.
func WriteMatrixMarket(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "%%MatrixMarket matrix coordinate pattern general")
	fmt.Fprintf(bw, "%% graph %s\n", g.Name)
	fmt.Fprintf(bw, "%d %d %d\n", g.NumVertices(), g.NumVertices(), g.NumEdges())
	it := g.Out.IterFrom(0)
	for u := 0; u < g.NumVertices(); u++ {
		ns, _ := it.Next()
		for _, v := range ns {
			fmt.Fprintf(bw, "%d %d\n", u+1, v+1)
		}
	}
	return bw.Flush()
}
