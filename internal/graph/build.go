package graph

import (
	"runtime"
	"sync"
)

// Phase-parallel adjacency construction. The serial builder this
// replaces did a counting sort (count, prefix, place) followed by a
// per-vertex sort.Slice + dedup; every phase of that pipeline is
// embarrassingly parallel over either edges or vertices, and the final
// Adj is a pure function of the edge multiset (sorting and deduping
// canonicalizes each neighbor list), so any placement order produces
// byte-identical output. That property is what makes the parallel build
// bit-reproducible at every GOMAXPROCS — and identical to the historical
// serial build, which the paper-example and golden tests pin.
//
// The phases:
//  1. sharded degree counting: each worker counts its contiguous edge
//     range into a private per-vertex array;
//  2. shared prefix-sum: a two-level scan turns the shard counts into
//     the offsets array and, in the same pass, rewrites each shard cell
//     into the absolute start cursor of that shard's disjoint sub-range
//     of the vertex's segment;
//  3. parallel placement: each worker re-reads its edge range and writes
//     neighbors through its own cursors — ranges are disjoint by
//     construction, so no synchronization;
//  4. parallel per-vertex sort + in-place dedup (SortV/dedupV, no
//     closures, no allocations);
//  5. exclusive prefix over unique counts and a parallel compacting copy
//     into an exact-size NA (the serial builder retained the full
//     pre-dedup backing array; at large scale that over-retention is
//     tens of megabytes per direction).

// minEdgesPerWorker is the parallelism grain: a build forks only when
// every worker gets at least this many edges, so tiny graphs (the unit
// test suite) run the phases inline on the calling goroutine. Same
// grain-control idea as core.fillEntries' minLinesPerWorker, scaled to
// the cheaper per-edge work.
const minEdgesPerWorker = 1 << 16

// buildWorkers returns the worker count for a build phase over m edges.
func buildWorkers(m int) int {
	w := runtime.GOMAXPROCS(0)
	if lim := m / minEdgesPerWorker; w > lim {
		w = lim
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parallelRanges splits [0, total) into w contiguous ranges and runs
// fn(worker, lo, hi) for each — inline when w == 1, on one goroutine per
// range otherwise. Every worker index in [0, w) is invoked exactly once
// (possibly with an empty range), so callers may index per-worker state
// by worker. fn receives its range as arguments, never via capture.
func parallelRanges(total, w int, fn func(worker, lo, hi int)) {
	if w <= 1 {
		fn(0, 0, total)
		return
	}
	chunk := (total + w - 1) / w
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		lo := k * chunk
		hi := lo + chunk
		if lo > total {
			lo = total
		}
		if hi > total {
			hi = total
		}
		wg.Add(1)
		go func(worker, lo, hi int) {
			defer wg.Done()
			fn(worker, lo, hi)
		}(k, lo, hi)
	}
	wg.Wait()
}

// Radix-partitioned build thresholds. The counting-sort path above
// random-accesses an n-sized cursor array per edge (degree count and
// placement); once those cursors outgrow the cache every edge is a
// miss, and at paper scale (8 M vertices, 64 MB of cursors) the misses
// dominate construction. The radix path (cache-conscious transposition
// in the spirit of arXiv 2501.06872) first partitions edges into
// vertex-contiguous buckets with two sequential passes, then builds
// each bucket against a bucket-sized, cache-resident working set. The
// output is byte-identical either way: per-vertex sort + dedup
// canonicalizes any placement order.
const (
	// radixMinVerts: below this the cursor array is cache-sized and the
	// direct counting sort wins (no scratch pass).
	radixMinVerts = 1 << 20
	// radixBucketLog: vertices per bucket; 1<<15 keeps a bucket's cursors
	// (256 KB) L2-resident while bounding the scatter to a few hundred
	// concurrent output streams.
	radixBucketLog = 15
)

// adjFromEdges builds one traversal direction from the edge list. See
// the phase description at the top of this file; output is identical to
// a serial counting sort + per-vertex sort/dedup regardless of worker
// count. Large, dense-enough builds dispatch to the radix-partitioned
// variant, which produces the same bytes (the per-vertex sort+dedup
// canonicalizes both); the density floor (m ≥ 3n) keeps very sparse
// graphs — where the radix path's per-vertex bucket passes rival the
// random-access savings on so few edges — on the direct path.
func adjFromEdges(n int, edges []Edge, transpose bool) Adj {
	if n >= radixMinVerts && len(edges) >= 3*n {
		return adjFromEdgesRadix(n, edges, transpose)
	}
	m := len(edges)
	w := buildWorkers(m)

	// Phase 1: sharded degree counting over contiguous edge ranges.
	shard := make([][]uint64, w)
	parallelRanges(m, w, func(worker, lo, hi int) {
		c := make([]uint64, n+1)
		if transpose {
			for _, e := range edges[lo:hi] {
				c[e.Dst]++
			}
		} else {
			for _, e := range edges[lo:hi] {
				c[e.Src]++
			}
		}
		shard[worker] = c
	})

	// Phase 2: two-level prefix sum shared across shards. Level one scans
	// a vertex range per worker, rewriting each shard cell to a
	// range-local cursor and recording the range total; level two is a
	// serial exclusive prefix over the w range totals; level three adds
	// each range's base back into its cursors and fills OA. After this
	// phase shard[k][v] is the absolute NA index where worker k's slice
	// of v's segment begins — disjoint sub-ranges, in worker order, so
	// placement below needs no synchronization.
	oa := make([]uint64, n+1)
	rangeTotal := make([]uint64, w)
	parallelRanges(n, w, func(worker, lo, hi int) {
		cur := uint64(0)
		for v := lo; v < hi; v++ {
			for k := 0; k < w; k++ {
				c := shard[k][v]
				shard[k][v] = cur
				cur += c
			}
			oa[v+1] = cur
		}
		rangeTotal[worker] = cur
	})
	base := uint64(0)
	rangeBase := rangeTotal // reuse: totals become exclusive-prefix bases
	for k := 0; k < w; k++ {
		t := rangeTotal[k]
		rangeBase[k] = base
		base += t
	}
	parallelRanges(n, w, func(worker, lo, hi int) {
		b := rangeBase[worker]
		if b == 0 {
			return
		}
		for v := lo; v < hi; v++ {
			for k := 0; k < w; k++ {
				shard[k][v] += b
			}
			oa[v+1] += b
		}
	})

	// Phase 3: parallel placement into disjoint cursor ranges.
	na := make([]V, m)
	parallelRanges(m, w, func(worker, lo, hi int) {
		cur := shard[worker]
		if transpose {
			for _, e := range edges[lo:hi] {
				na[cur[e.Dst]] = e.Src
				cur[e.Dst]++
			}
		} else {
			for _, e := range edges[lo:hi] {
				na[cur[e.Src]] = e.Dst
				cur[e.Src]++
			}
		}
	})

	// Phase 4: parallel per-vertex sort + in-place dedup. The shard-0
	// count array is dead after placement; reuse it for unique counts.
	uniq := shard[0]
	parallelRanges(n, w, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			seg := na[oa[v]:oa[v+1]]
			SortV(seg)
			uniq[v] = uint64(dedupV(seg))
		}
	})

	// Phase 5: compact into an exact-size NA.
	return compactNA(n, w, oa, uniq, na)
}

// compactNA is the shared final phase of both build paths: an exclusive
// prefix over the unique counts followed by a parallel compacting copy
// into an exact-size NA. oa[v] must be the start of v's (sorted,
// deduped) segment in na and uniq[v] its unique length.
func compactNA(n, w int, oa, uniq []uint64, na []V) Adj {
	newOA := make([]uint64, n+1)
	total := uint64(0)
	for v := 0; v < n; v++ {
		newOA[v] = total
		total += uniq[v]
	}
	newOA[n] = total
	out := make([]V, total)
	parallelRanges(n, w, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			copy(out[newOA[v]:newOA[v+1]], na[oa[v]:oa[v]+uniq[v]])
		}
	})
	return Adj{OA: newOA, NA: out}
}

// adjTranspose builds the reverse traversal direction from an
// already-built Adj instead of re-running the full build over the raw
// edge list. The input's segments are sorted and unique, so a scatter
// that visits sources in ascending order writes every in-segment
// already sorted (sources arrive ascending) and already deduplicated
// ((src, dst) pairs are unique in a CSR) — no per-vertex sort, no
// dedup, no compaction pass, and the output NA is exact-size up front.
// The bytes are identical to adjFromEdges(n, edges, true): both are
// "for each vertex, the sorted unique set of in-neighbors".
func adjTranspose(n int, a Adj) Adj {
	m := len(a.NA)
	if n >= radixMinVerts && m >= 3*n {
		return adjTransposeRadix(n, a)
	}
	w := buildWorkers(m)

	// In-degree count, sharded over NA ranges, then a serial prefix.
	shard := make([][]uint64, w)
	parallelRanges(m, w, func(worker, lo, hi int) {
		c := make([]uint64, n)
		for _, d := range a.NA[lo:hi] {
			c[d]++
		}
		shard[worker] = c
	})
	counts := shard[0]
	for k := 1; k < w; k++ {
		for v, c := range shard[k] {
			counts[v] += c
		}
	}
	oa := make([]uint64, n+1)
	cur := uint64(0)
	for v := 0; v < n; v++ {
		oa[v] = cur
		cur += counts[v]
	}
	oa[n] = cur

	// Placement, partitioned by destination range: every worker scans the
	// whole CSR in source order but places only destinations in its own
	// range, through cursors no other worker touches. The duplicated
	// scans are sequential reads; the random writes — which dominate —
	// run in parallel over disjoint ranges, and each worker visiting
	// sources in ascending order is exactly the stability the sortedness
	// argument above needs.
	na := make([]V, m)
	parallelRanges(n, w, func(_, dlo, dhi int) {
		if dlo == dhi {
			return
		}
		cursor := make([]uint64, dhi-dlo)
		copy(cursor, oa[dlo:dhi])
		for src := 0; src < n; src++ {
			for _, d := range a.NA[a.OA[src]:a.OA[src+1]] {
				if int(d) >= dlo && int(d) < dhi {
					i := int(d) - dlo
					na[cursor[i]] = V(src)
					cursor[i]++
				}
			}
		}
	})
	return Adj{OA: oa, NA: na}
}

// adjTransposeRadix is adjTranspose above the radix thresholds: the
// same bucket partition as adjFromEdgesRadix (scatter normalized to
// (dst, src) through write-combining buffers, then a per-bucket
// counting pass against cache-resident cursors), minus the sort, dedup,
// and compaction the sorted-unique input makes unnecessary. Stability
// is preserved end to end — workers take contiguous source ranges, the
// (bucket, worker) prefix concatenates their slices in worker order,
// and the write-combining buffers flush in arrival order — so each
// bucket's scratch holds its edges in global source order and the
// per-bucket placement writes sorted segments.
func adjTransposeRadix(n int, a Adj) Adj {
	m := len(a.NA)
	w := buildWorkers(m)
	nb := (n + (1 << radixBucketLog) - 1) >> radixBucketLog

	// Pass A: sharded bucket counting over contiguous source ranges (the
	// ranges the scatter below reuses, so its per-worker cursor prefixes
	// line up).
	shard := make([][]uint64, w)
	parallelRanges(n, w, func(worker, lo, hi int) {
		c := make([]uint64, nb)
		for _, d := range a.NA[a.OA[lo]:a.OA[hi]] {
			c[d>>radixBucketLog]++
		}
		shard[worker] = c
	})
	bucketStart := make([]uint64, nb+1)
	cur := uint64(0)
	for b := 0; b < nb; b++ {
		bucketStart[b] = cur
		for k := 0; k < w; k++ {
			c := shard[k][b]
			shard[k][b] = cur
			cur += c
		}
	}
	bucketStart[nb] = cur

	// Pass B: scatter (dst, src) pairs into bucket-contiguous scratch in
	// source order, write-combined as in adjFromEdgesRadix.
	const wcLen = 16
	scratch := make([]Edge, m)
	parallelRanges(n, w, func(worker, lo, hi int) {
		cur := shard[worker]
		buf := make([]Edge, nb*wcLen)
		fill := make([]uint16, nb)
		for src := lo; src < hi; src++ {
			for _, d := range a.NA[a.OA[src]:a.OA[src+1]] {
				b := int(d >> radixBucketLog)
				f := fill[b]
				buf[b*wcLen+int(f)] = Edge{Src: d, Dst: V(src)}
				f++
				if f == wcLen {
					copy(scratch[cur[b]:cur[b]+wcLen], buf[b*wcLen:(b+1)*wcLen])
					cur[b] += wcLen
					f = 0
				}
				fill[b] = f
			}
		}
		for b := 0; b < nb; b++ {
			if f := int(fill[b]); f > 0 {
				copy(scratch[cur[b]:cur[b]+uint64(f)], buf[b*wcLen:b*wcLen+f])
				cur[b] += uint64(f)
			}
		}
	})

	// Pass C: per bucket — in-degree count, exclusive prefix, in-order
	// placement. Scratch order is global source order, so segments come
	// out sorted and (by pair uniqueness) deduplicated.
	oa := make([]uint64, n+1)
	na := make([]V, m)
	parallelRanges(nb, w, func(_, blo, bhi int) {
		cursor := make([]uint64, 1<<radixBucketLog)
		for b := blo; b < bhi; b++ {
			vlo := b << radixBucketLog
			vhi := vlo + (1 << radixBucketLog)
			if vhi > n {
				vhi = n
			}
			base := bucketStart[b]
			seg := scratch[base:bucketStart[b+1]]
			cnt := cursor[:vhi-vlo]
			for i := range cnt {
				cnt[i] = 0
			}
			for _, e := range seg {
				cnt[int(e.Src)-vlo]++
			}
			c := base
			for i := range cnt {
				oa[vlo+i] = c
				d := cnt[i]
				cnt[i] = c
				c += d
			}
			for _, e := range seg {
				i := int(e.Src) - vlo
				na[cnt[i]] = e.Dst
				cnt[i]++
			}
		}
	})
	oa[n] = uint64(m)
	return Adj{OA: oa, NA: na}
}

// adjFromEdgesRadix is the large-vertex build: two sequential passes
// partition the edges into vertex-contiguous buckets (sharded bucket
// counting, then a scatter through per-worker cursors into
// bucket-contiguous scratch), and each bucket is then built entirely —
// degree count, local prefix, placement, per-vertex sort + dedup —
// against its own cache-resident cursor window while its edges are
// still hot. Every random access of the counting-sort path becomes
// either sequential or bucket-local. Buckets own disjoint vertex, NA,
// and OA ranges, so the per-bucket pass parallelizes without
// synchronization; placement order differs from the counting-sort path
// but the canonicalizing sort+dedup makes the output bytes identical.
func adjFromEdgesRadix(n int, edges []Edge, transpose bool) Adj {
	m := len(edges)
	w := buildWorkers(m)
	nb := (n + (1 << radixBucketLog) - 1) >> radixBucketLog

	// Pass A: sharded bucket counting — nb counters per worker, resident.
	shard := make([][]uint64, w)
	parallelRanges(m, w, func(worker, lo, hi int) {
		c := make([]uint64, nb)
		if transpose {
			for _, e := range edges[lo:hi] {
				c[e.Dst>>radixBucketLog]++
			}
		} else {
			for _, e := range edges[lo:hi] {
				c[e.Src>>radixBucketLog]++
			}
		}
		shard[worker] = c
	})

	// Exclusive prefix in (bucket, worker) order: shard[k][b] becomes the
	// absolute scatter cursor of worker k's slice of bucket b, and
	// bucketStart[b] the bucket's range start in scratch and na.
	bucketStart := make([]uint64, nb+1)
	cur := uint64(0)
	for b := 0; b < nb; b++ {
		bucketStart[b] = cur
		for k := 0; k < w; k++ {
			c := shard[k][b]
			shard[k][b] = cur
			cur += c
		}
	}
	bucketStart[nb] = cur

	// Pass B: scatter into bucket-contiguous scratch, normalized to
	// (key, neighbor) so the per-bucket pass is direction-free. Cursor
	// sub-ranges are disjoint by construction. Edges stage in a
	// bucket-indexed write-combining buffer (wcLen entries per bucket,
	// the whole buffer cache-resident) and land in scratch in contiguous
	// wcLen-sized bursts — the propagation-blocking trick: the scatter's
	// few hundred output streams cost full-line bursts instead of one
	// cache/TLB touch per edge.
	const wcLen = 16
	scratch := make([]Edge, m)
	parallelRanges(m, w, func(worker, lo, hi int) {
		cur := shard[worker]
		buf := make([]Edge, nb*wcLen)
		fill := make([]uint16, nb)
		for _, e := range edges[lo:hi] {
			if transpose {
				e = Edge{Src: e.Dst, Dst: e.Src}
			}
			b := int(e.Src >> radixBucketLog)
			f := fill[b]
			buf[b*wcLen+int(f)] = e
			f++
			if f == wcLen {
				copy(scratch[cur[b]:cur[b]+wcLen], buf[b*wcLen:(b+1)*wcLen])
				cur[b] += wcLen
				f = 0
			}
			fill[b] = f
		}
		for b := 0; b < nb; b++ {
			if f := int(fill[b]); f > 0 {
				copy(scratch[cur[b]:cur[b]+uint64(f)], buf[b*wcLen:b*wcLen+f])
				cur[b] += uint64(f)
			}
		}
	})

	// Pass C: per bucket — degree count, exclusive prefix, placement,
	// per-vertex sort + dedup — all within the bucket's cursor window and
	// NA range, touched while the bucket's scratch edges are cache-hot.
	oa := make([]uint64, n+1)
	uniq := make([]uint64, n)
	na := make([]V, m)
	parallelRanges(nb, w, func(_, blo, bhi int) {
		cursor := make([]uint64, 1<<radixBucketLog)
		for b := blo; b < bhi; b++ {
			vlo := b << radixBucketLog
			vhi := vlo + (1 << radixBucketLog)
			if vhi > n {
				vhi = n
			}
			base := bucketStart[b]
			seg := scratch[base:bucketStart[b+1]]
			cnt := cursor[:vhi-vlo]
			for i := range cnt {
				cnt[i] = 0
			}
			for _, e := range seg {
				cnt[int(e.Src)-vlo]++
			}
			c := base
			for i := range cnt {
				oa[vlo+i] = c
				d := cnt[i]
				cnt[i] = c
				c += d
			}
			for _, e := range seg {
				i := int(e.Src) - vlo
				na[cnt[i]] = e.Dst
				cnt[i]++
			}
			// After placement cnt[i] is the end of vertex vlo+i's segment.
			for i := range cnt {
				s := na[oa[vlo+i]:cnt[i]]
				SortV(s)
				uniq[vlo+i] = uint64(dedupV(s))
			}
		}
	})
	oa[n] = uint64(m)

	return compactNA(n, w, oa, uniq, na)
}
