package analysis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"popt/internal/cache"
	"popt/internal/graph"
	"popt/internal/kernels"
	"popt/internal/mem"
)

func lineTrace(ids ...int) []uint64 {
	t := make([]uint64, len(ids))
	for i, id := range ids {
		t[i] = uint64(id) * mem.LineSize
	}
	return t
}

func TestStackDistancesHandExample(t *testing.T) {
	// a b c a b b a: distances Cold Cold Cold 2 2 0 1
	got := StackDistances(lineTrace(0, 1, 2, 0, 1, 1, 0))
	want := []int{Cold, Cold, Cold, 2, 2, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dist[%d] = %d, want %d (full %v)", i, got[i], want[i], got)
		}
	}
}

func TestStackDistancesSubLineAccesses(t *testing.T) {
	// Two addresses in the same line are the same stack entry.
	got := StackDistances([]uint64{0, 8, 64, 16})
	want := []int{Cold, 0, Cold, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dist = %v, want %v", got, want)
		}
	}
}

// TestStackDistancePredictsLRU is the key cross-validation: a fully
// associative LRU cache of capacity c must hit exactly the accesses with
// stack distance < c.
func TestStackDistancePredictsLRU(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	trace := make([]uint64, 4000)
	for i := range trace {
		trace[i] = uint64(rng.Intn(96)) * mem.LineSize
	}
	dists := StackDistances(trace)
	for _, capacity := range []int{1, 2, 8, 16, 64} {
		wantHits := 0
		for _, d := range dists {
			if d != Cold && d < capacity {
				wantHits++
			}
		}
		l := cache.NewLevel("FA", capacity*mem.LineSize, capacity, cache.NewLRU())
		stats := cache.SimulateTrace(l, trace)
		if int(stats.Hits) != wantHits {
			t.Errorf("capacity %d: LRU hits %d, stack-distance prediction %d", capacity, stats.Hits, wantHits)
		}
	}
}

func TestMRCMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	trace := make([]uint64, 5000)
	for i := range trace {
		trace[i] = uint64(rng.Intn(256)) * mem.LineSize
	}
	caps := []int{1, 4, 16, 64, 256, 1024}
	mrc := ComputeMRC(trace, caps)
	for i := 1; i < len(mrc.MissRatio); i++ {
		if mrc.MissRatio[i] > mrc.MissRatio[i-1]+1e-12 {
			t.Fatalf("MRC not monotone: %v", mrc.MissRatio)
		}
	}
	// At capacity >= footprint only cold misses remain.
	lastMR := mrc.MissRatio[len(mrc.MissRatio)-1]
	wantCold := float64(mrc.ColdMisses) / float64(mrc.Accesses)
	if lastMR != wantCold {
		t.Errorf("full-capacity miss ratio %v, want cold-only %v", lastMR, wantCold)
	}
	if mrc.DistinctLines != 256 {
		t.Errorf("DistinctLines = %d, want 256", mrc.DistinctLines)
	}
}

func TestReuseHistogramSums(t *testing.T) {
	trace := lineTrace(0, 1, 2, 0, 1, 1, 0)
	hist := ReuseHistogram(trace)
	total := 0
	for _, h := range hist {
		total += h
	}
	if total != len(trace) {
		t.Fatalf("histogram sums to %d, want %d", total, len(trace))
	}
	if hist[len(hist)-1] != 3 {
		t.Errorf("cold count = %d, want 3", hist[len(hist)-1])
	}
}

func TestWorkingSetLines(t *testing.T) {
	// Cyclic trace over 10 lines: capacity 10 gives only cold misses.
	var trace []uint64
	for round := 0; round < 20; round++ {
		for i := 0; i < 10; i++ {
			trace = append(trace, uint64(i)*mem.LineSize)
		}
	}
	ws := WorkingSetLines(trace, 0.06)
	if ws != 10 {
		t.Errorf("WorkingSetLines = %d, want 10", ws)
	}
	// Impossible target: footprint is the answer.
	if ws := WorkingSetLines(trace, 0.0); ws != 10 {
		t.Errorf("WorkingSetLines(0) = %d, want footprint 10", ws)
	}
}

// Property: distances are always >= 0 or Cold, and an immediate
// re-reference has distance 0.
func TestStackDistanceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 200 + rng.Intn(200)
		trace := make([]uint64, n)
		for i := range trace {
			trace[i] = uint64(rng.Intn(32)) * mem.LineSize
		}
		dists := StackDistances(trace)
		for i := 1; i < n; i++ {
			if trace[i] == trace[i-1] && dists[i] != 0 {
				return false
			}
			if dists[i] < Cold {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCaptureIrregularOnly(t *testing.T) {
	g := graph.Uniform(512, 4096, 3)
	w := kernels.NewPageRank(g)
	trace := Capture(w, true)
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	// PR's irregular reads equal the edge count per pull iteration (plus
	// the streaming contrib writes land in the same array; Capture keeps
	// them because they touch the irregular array).
	arr := w.Irregular[0]
	for _, a := range trace {
		if !arr.Contains(a) {
			t.Fatalf("trace leaked non-irregular address %#x", a)
		}
	}
	if err := w.Check(); err != nil {
		t.Fatal(err)
	}
	full := Capture(kernels.NewPageRank(g), false)
	if len(full) <= len(trace) {
		t.Error("full trace should exceed irregular-only trace")
	}
}

// TestPaperMotivation reproduces the paper's Section II observation on our
// inputs: the irregular stream of PageRank has a working set far beyond
// any practical LLC while the MRC stays high until capacity approaches the
// full vertex data footprint.
func TestPaperMotivation(t *testing.T) {
	g := graph.Kron(13, 4, 5)
	w := kernels.NewPageRank(g)
	trace := Capture(w, true)
	lines := w.Irregular[0].NumLines()
	mrc := ComputeMRC(trace, []int{lines / 32, lines / 8, lines / 2, lines})
	t.Logf("\n%v", mrc)
	if mrc.MissRatio[0] < 2*mrc.MissRatio[2] {
		t.Errorf("MRC should fall steeply only near the full footprint: %v", mrc.MissRatio)
	}
}
