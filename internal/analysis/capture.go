package analysis

import (
	"popt/internal/kernels"
	"popt/internal/mem"
	"popt/internal/trace"
)

// captureSink records access addresses and ignores every other event.
type captureSink struct {
	trace.Nop
	addrs []uint64
	// keep, when non-nil, restricts recording to matching addresses.
	keep func(addr uint64) bool
}

// Access implements trace.Sink.
func (s *captureSink) Access(acc mem.Access) {
	if s.keep != nil && !s.keep(acc.Addr) {
		return
	}
	s.addrs = append(s.addrs, acc.Addr)
}

// Capture runs a workload and records its memory reference trace without
// simulating a cache: the runner emits into a recording sink and no
// hierarchy exists at all. onlyIrregular restricts the trace to the
// workload's irregular arrays — the stream whose locality P-OPT manages.
func Capture(w *kernels.Workload, onlyIrregular bool) []uint64 {
	s := &captureSink{}
	if onlyIrregular {
		s.keep = func(addr uint64) bool {
			for _, a := range w.Irregular {
				if a.Contains(addr) {
					return true
				}
			}
			return false
		}
	}
	w.Run(kernels.NewSinkRunner(s))
	return s.addrs
}
