package analysis

import (
	"popt/internal/cache"
	"popt/internal/kernels"
	"popt/internal/mem"
)

// Capture runs a workload and records its memory reference trace without
// simulating a cache (the runner's filter absorbs every access after
// recording it). onlyIrregular restricts the trace to the workload's
// irregular arrays — the stream whose locality P-OPT manages.
func Capture(w *kernels.Workload, onlyIrregular bool) []uint64 {
	var trace []uint64
	// The runner requires a hierarchy for accounting; a minimal one is
	// never touched because the filter absorbs everything.
	h := cache.NewHierarchy(cache.Config{
		L1Size: mem.LineSize * 2, L1Ways: 2,
		L2Size: mem.LineSize * 2, L2Ways: 2,
		LLCSize: mem.LineSize * 2, LLCWays: 2,
		LLCPolicy: func() cache.Policy { return cache.NewLRU() },
	})
	r := kernels.NewRunner(h, nil)
	r.Filter = func(acc mem.Access) bool {
		if onlyIrregular {
			keep := false
			for _, a := range w.Irregular {
				if a.Contains(acc.Addr) {
					keep = true
					break
				}
			}
			if !keep {
				return true
			}
		}
		trace = append(trace, acc.Addr)
		return true
	}
	w.Run(r)
	return trace
}
