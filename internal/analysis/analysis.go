// Package analysis provides trace-based locality analysis: LRU stack
// distances (Mattson's algorithm), miss-ratio curves, and reuse-distance
// histograms. These are the measurements behind the paper's motivation —
// graph reuse is dynamically variable and graph-structure-dependent — and
// behind capacity planning for the simulator configurations (choosing an
// LLC the working set meaningfully exceeds).
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"popt/internal/mem"
)

// Cold marks a first-touch access in distance vectors.
const Cold = -1

// StackDistances computes, for each access in a line-address trace, its
// LRU stack distance: the number of distinct lines referenced since the
// previous access to the same line (0 = immediate re-reference of the
// MRU line; Cold = first touch). A fully-associative LRU cache of
// capacity c hits exactly the accesses with distance < c.
//
// Implementation: Mattson via a Fenwick tree over trace positions holding
// a 1 at each line's most recent occurrence; the distance of access i
// with previous occurrence j is the number of 1s strictly between them.
// O(n log n) time, O(n) space.
func StackDistances(trace []uint64) []int {
	n := len(trace)
	dist := make([]int, n)
	bit := newFenwick(n + 1)
	last := make(map[uint64]int, 1024)
	for i, addr := range trace {
		la := addr &^ (mem.LineSize - 1)
		if j, ok := last[la]; ok {
			// Distinct lines touched strictly between j and i: ones at
			// 1-based BIT positions j+2..i (excluding the line's own
			// most-recent marker at j+1).
			dist[i] = bit.prefix(i) - bit.prefix(j+1)
			bit.add(j+1, -1)
		} else {
			dist[i] = Cold
		}
		bit.add(i+1, 1)
		last[la] = i
	}
	return dist
}

type fenwick struct{ tree []int }

func newFenwick(n int) *fenwick { return &fenwick{tree: make([]int, n+1)} }

// add adds delta at 1-based position i.
func (f *fenwick) add(i, delta int) {
	for ; i < len(f.tree); i += i & (-i) {
		f.tree[i] += delta
	}
}

// prefix sums positions 1..i.
func (f *fenwick) prefix(i int) int {
	s := 0
	for ; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}

// MRC is a miss-ratio curve: MissRatio[i] is the fraction of accesses that
// miss in a fully-associative LRU cache of Capacities[i] lines.
type MRC struct {
	Capacities []int
	MissRatio  []float64
	Accesses   int
	ColdMisses int
	// DistinctLines is the trace's line footprint (the capacity at which
	// only cold misses remain).
	DistinctLines int
}

// ComputeMRC evaluates the miss ratio at the given capacities (in lines;
// must be positive). Capacities are reported sorted ascending.
func ComputeMRC(trace []uint64, capacities []int) MRC {
	dists := StackDistances(trace)
	caps := append([]int(nil), capacities...)
	sort.Ints(caps)
	mrc := MRC{Capacities: caps, MissRatio: make([]float64, len(caps)), Accesses: len(trace)}
	// Histogram of finite distances.
	maxD := 0
	for _, d := range dists {
		if d > maxD {
			maxD = d
		}
	}
	hist := make([]int, maxD+2)
	seen := make(map[uint64]bool, 1024)
	for i, d := range dists {
		if d == Cold {
			mrc.ColdMisses++
		} else {
			hist[d]++
		}
		seen[trace[i]&^(mem.LineSize-1)] = true
	}
	mrc.DistinctLines = len(seen)
	// Cumulative hits for capacity c = sum of hist[d] for d < c.
	cum := make([]int, len(hist)+1)
	for d, h := range hist {
		cum[d+1] = cum[d] + h
	}
	for i, c := range caps {
		hits := 0
		if c > len(hist) {
			hits = cum[len(hist)]
		} else if c > 0 {
			hits = cum[c]
		}
		if mrc.Accesses > 0 {
			mrc.MissRatio[i] = float64(mrc.Accesses-hits) / float64(mrc.Accesses)
		}
	}
	return mrc
}

func (m MRC) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "accesses=%d distinctLines=%d coldMisses=%d\n", m.Accesses, m.DistinctLines, m.ColdMisses)
	fmt.Fprintf(&sb, "%12s  %10s  %9s\n", "lines", "bytes", "miss%")
	for i, c := range m.Capacities {
		fmt.Fprintf(&sb, "%12d  %10d  %8.1f%%\n", c, c*mem.LineSize, 100*m.MissRatio[i])
	}
	return sb.String()
}

// ReuseHistogram buckets finite stack distances by powers of two: bucket i
// counts accesses with distance in [2^i, 2^(i+1)) (bucket 0 includes
// distance 0). The last returned element counts cold misses.
func ReuseHistogram(trace []uint64) []int {
	dists := StackDistances(trace)
	var hist []int
	cold := 0
	for _, d := range dists {
		if d == Cold {
			cold++
			continue
		}
		b := 0
		for x := d; x > 1; x >>= 1 {
			b++
		}
		for len(hist) <= b {
			hist = append(hist, 0)
		}
		hist[b]++
	}
	return append(hist, cold)
}

// WorkingSetLines returns the smallest LRU capacity (in lines) at which
// the miss ratio drops to at most target (counting cold misses); it
// returns DistinctLines when even full residency cannot reach the target.
// Useful for sizing simulated LLCs against a workload.
func WorkingSetLines(trace []uint64, target float64) int {
	dists := StackDistances(trace)
	maxD := 0
	for _, d := range dists {
		if d > maxD {
			maxD = d
		}
	}
	hist := make([]int, maxD+2)
	cold := 0
	for _, d := range dists {
		if d == Cold {
			cold++
		} else {
			hist[d]++
		}
	}
	misses := len(dists)
	for c := 0; c <= maxD+1; c++ {
		if float64(misses)/float64(len(dists)) <= target {
			return c
		}
		if c <= maxD {
			misses -= hist[c]
		}
	}
	seen := make(map[uint64]bool, 1024)
	for _, a := range trace {
		seen[a&^(mem.LineSize-1)] = true
	}
	return len(seen)
}
