// Package multicore models the paper's parallel execution platform
// (Table I: 8 OoO cores, private L1/L2, shared S-NUCA LLC): the side of
// the evaluation the paper runs in Sniper. A parallel pull kernel
// partitions each epoch's vertices across cores, cores interleave their
// reference streams round-robin into private caches and the shared banked
// LLC, and epochs execute serially (the restructuring P-OPT requires so
// all threads share the resident Rereference Matrix columns). The paper's
// NUCA details are modeled: per-bank occupancy, contention between demand
// and Rereference Matrix accesses, and the designated-main-thread
// currVertex policy (Section V-F).
package multicore

import (
	"fmt"

	"popt/internal/cache"
	"popt/internal/core"
	"popt/internal/mem"
	"popt/internal/perf"
)

// Config describes the machine.
type Config struct {
	Cores int
	Banks int
	// L1Size/L1Ways, L2Size/L2Ways are per-core private caches; LLCSize /
	// LLCWays is the shared cache (total, not per-core).
	L1Size, L1Ways   int
	L2Size, L2Ways   int
	LLCSize, LLCWays int
	// BankCycle is the NUCA bank service time (Table I: 7 cycles).
	BankCycle float64
}

// Default8Core returns the scaled 8-core configuration. Private caches
// shrink with the LLC so their aggregate stays well below the shared
// cache, as in Table I (8×288 KB private vs 24 MB shared ≈ 10%); a
// laptop-scale L1 cannot shrink below a handful of lines, so the ratio
// lands at ~25%.
func Default8Core() Config {
	return Config{
		Cores: 8, Banks: 8,
		L1Size: 1 << 10, L1Ways: 4,
		L2Size: 4 << 10, L2Ways: 8,
		LLCSize: 160 << 10, LLCWays: 16,
		BankCycle: 7,
	}
}

// Core is one processor with private L1/L2.
type Core struct {
	ID           int
	L1, L2       *cache.Level
	Instructions uint64
	LLCAccesses  uint64
}

// Machine is the simulated multiprocessor.
type Machine struct {
	Cfg   Config
	Cores []*Core
	LLC   *cache.Level
	// Policy is the LLC replacement policy (shared across banks, as the
	// replacement state in a real S-NUCA LLC is per-bank but our set
	// indexing already spreads sets across banks).
	Policy cache.Policy
	// Bank occupancy counters (in accesses) for demand and Rereference
	// Matrix traffic.
	BankDemand []uint64
	BankMatrix []uint64
	// DRAM traffic.
	DRAMReads, DRAMWrites uint64
	// EpochBarriers counts serialized epoch boundaries.
	EpochBarriers uint64
	// popt is set when Policy is a P-OPT instance (enables matrix-access
	// contention accounting and epoch serialization semantics).
	popt *core.POPT
	nuca cache.NUCA
}

// NewMachine builds the machine with the given shared-LLC policy.
func NewMachine(cfg Config, pol cache.Policy, reservedWays int) *Machine {
	m := &Machine{
		Cfg:        cfg,
		LLC:        cache.NewLevel("LLC", cfg.LLCSize, cfg.LLCWays, pol),
		Policy:     pol,
		BankDemand: make([]uint64, cfg.Banks),
		BankMatrix: make([]uint64, cfg.Banks),
	}
	if reservedWays > 0 {
		// The LLC is cold here, but keep the traffic accounting honest if
		// that ever changes: displaced dirty lines go back to DRAM.
		m.DRAMWrites += uint64(len(m.LLC.Reserve(reservedWays)))
	}
	if p, ok := pol.(*core.POPT); ok {
		m.popt = p
	}
	for i := 0; i < cfg.Cores; i++ {
		m.Cores = append(m.Cores, &Core{
			ID: i,
			L1: cache.NewLevel(fmt.Sprintf("L1-%d", i), cfg.L1Size, cfg.L1Ways, cache.NewBitPLRU()),
			L2: cache.NewLevel(fmt.Sprintf("L2-%d", i), cfg.L2Size, cfg.L2Ways, cache.NewBitPLRU()),
		})
	}
	m.nuca = cache.NUCA{Banks: cfg.Banks}
	return m
}

// SetIrregRange configures the NUCA block-interleaved range (the irregData
// huge page) for bank mapping.
func (m *Machine) SetIrregRange(base, bound uint64) {
	m.nuca.IrregBase, m.nuca.IrregBound = base, bound
}

// access runs one reference from one core through its private caches and
// the shared LLC.
func (m *Machine) access(c *Core, acc mem.Access) {
	c.Instructions++
	if c.L1.Access(acc) {
		return
	}
	if c.L2.Access(acc) {
		m.fillPrivate(c, acc, false)
		return
	}
	c.LLCAccesses++
	bank := m.nuca.BankOf(acc.Addr)
	m.BankDemand[bank]++
	if !m.LLC.Access(acc) {
		m.DRAMReads++
		if ev, ok := m.LLC.Fill(acc); ok && ev.Dirty {
			m.DRAMWrites++
		}
		// A P-OPT victim search reads Rereference Matrix entries in the
		// same bank (the Section V-E mapping guarantees bank locality);
		// that contends with demand traffic within the bank.
		if m.popt != nil {
			m.BankMatrix[bank]++
		}
	}
	m.fillPrivate(c, acc, true)
}

// fillPrivate installs the line into the core's L2 (when missed there) and
// L1, propagating dirty writebacks.
func (m *Machine) fillPrivate(c *Core, acc mem.Access, intoL2 bool) {
	if intoL2 {
		if ev, ok := c.L2.Fill(acc); ok && ev.Dirty {
			if !m.LLC.MarkDirty(ev.Addr) {
				m.DRAMWrites++
			}
		}
	}
	if ev, ok := c.L1.Fill(acc); ok && ev.Dirty {
		if !c.L2.MarkDirty(ev.Addr) {
			if !m.LLC.MarkDirty(ev.Addr) {
				m.DRAMWrites++
			}
		}
	}
}

// Tick adds non-memory instructions to a core.
func (m *Machine) Tick(c *Core, n uint64) { c.Instructions += n }

// Stats aggregates the run for reporting.
type Stats struct {
	LLCMisses             uint64
	LLCAccesses           uint64
	DRAMReads, DRAMWrites uint64
	// MaxBankShare is the hottest bank's share of bank traffic (0.125 =
	// perfectly balanced on 8 banks).
	MaxBankShare float64
	// MatrixBankAccesses is P-OPT's metadata traffic within banks.
	MatrixBankAccesses uint64
	// CoreInstructions per core, for load-balance checks.
	CoreInstructions []uint64
	// Cycles is the modeled parallel execution time.
	Cycles float64
}

// Collect computes Stats, modeling time as the slowest core's cycle count
// (epoch barriers make the critical path per-epoch; aggregating over the
// whole run is the same sum when partitions are static) plus bank
// contention: each bank serves demand + matrix accesses at BankCycle
// cycles each, and the busiest bank's occupancy lower-bounds memory time.
func (m *Machine) Collect(streamedBytes uint64) Stats {
	var s Stats
	s.LLCMisses = m.LLC.Stats.Misses
	s.LLCAccesses = m.LLC.Stats.Accesses
	s.DRAMReads, s.DRAMWrites = m.DRAMReads, m.DRAMWrites
	// Matrix reads are single-byte, bank-local, and pipelined under the
	// in-flight DRAM fetch (Section V-C), so they occupy the bank for a
	// fraction of a demand access's service time.
	const matrixWeight = 0.25
	var bankTotal, bankMaxF float64
	for b := range m.BankDemand {
		t := float64(m.BankDemand[b]) + matrixWeight*float64(m.BankMatrix[b])
		bankTotal += t
		if t > bankMaxF {
			bankMaxF = t
		}
		s.MatrixBankAccesses += m.BankMatrix[b]
	}
	if bankTotal > 0 {
		s.MaxBankShare = bankMaxF / bankTotal
	}
	p := perf.Default()
	var worst float64
	for _, c := range m.Cores {
		s.CoreInstructions = append(s.CoreInstructions, c.Instructions)
		// Per-core view: its private misses that hit LLC or DRAM.
		compute := float64(c.Instructions) / p.BaseIPC
		l2hits := float64(c.L2.Stats.Hits) * p.L2Latency / p.MLP
		// Attribute shared traffic proportionally to the core's LLC use.
		frac := 0.0
		if s.LLCAccesses > 0 {
			frac = float64(c.LLCAccesses) / float64(s.LLCAccesses)
		}
		llcHits := frac * float64(m.LLC.Stats.Hits) * p.LLCLatency / p.MLP
		dram := frac * (float64(m.DRAMReads) + 0.5*float64(m.DRAMWrites)) * p.DRAMCycles() / p.MLP
		if t := compute + l2hits + llcHits + dram; t > worst {
			worst = t
		}
	}
	// Bank serialization: the hottest bank's service occupancy bounds the
	// memory system's throughput.
	bankBound := bankMaxF * m.Cfg.BankCycle
	if bankBound > worst {
		worst = bankBound
	}
	// DRAM bandwidth: eight cores saturate the memory controller — the
	// reason graph kernels are DRAM-bound in the first place. Random
	// demand misses achieve roughly half of the sequential peak the
	// streaming engine gets.
	demandBytesPerCycle := p.StreamBytesPerCycle / 2
	dramBound := float64(m.DRAMReads+m.DRAMWrites) * mem.LineSize / demandBytesPerCycle
	if dramBound > worst {
		worst = dramBound
	}
	s.Cycles = worst + float64(streamedBytes)/p.StreamBytesPerCycle
	return s
}
