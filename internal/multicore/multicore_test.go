package multicore

import (
	"math"
	"testing"

	"popt/internal/cache"
	"popt/internal/core"
	"popt/internal/graph"
	"popt/internal/kernels"
	"popt/internal/mem"
)

func tinyCfg() Config {
	return Config{
		Cores: 4, Banks: 4,
		L1Size: 1 << 10, L1Ways: 4,
		L2Size: 2 << 10, L2Ways: 4,
		LLCSize: 16 << 10, LLCWays: 16,
		BankCycle: 7,
	}
}

// runPR builds the machine and runs the parallel kernel under a policy.
func runPR(t *testing.T, g *graph.Graph, mk func(w fakeWorkload) (cache.Policy, core.VertexIndexed, int), serial bool) PRResult {
	t.Helper()
	// Pre-plan the irregular array geometry the same way ParallelPageRank
	// will (fresh Space, same allocation order), so policies can be built
	// against matching addresses.
	sp := mem.NewSpace()
	sp.AllocBytes("rank", g.NumVertices(), 4, false)
	contrib := sp.AllocBytes("contrib", g.NumVertices(), 4, true)
	fw := fakeWorkload{g: g, contrib: contrib}
	pol, hook, reserve := mk(fw)
	m := NewMachine(tinyCfg(), pol, reserve)
	epochSize := (g.NumVertices() + 255) / 256
	return ParallelPageRank(m, g, hook, 2, epochSize, serial)
}

type fakeWorkload struct {
	g       *graph.Graph
	contrib *mem.Array
}

func TestParallelPageRankMatchesSerialValues(t *testing.T) {
	g := graph.Uniform(2048, 8192, 3)
	res := runPR(t, g, func(fakeWorkload) (cache.Policy, core.VertexIndexed, int) {
		return cache.NewDRRIP(1), nil, 0
	}, false)
	// Golden: the serial kernel's verified math.
	w := kernels.NewPageRank(g)
	w.Run(&kernels.Runner{})
	if err := w.Check(); err != nil {
		t.Fatal(err)
	}
	golden := goldenRanks(g, 2)
	for v := 0; v < g.NumVertices(); v++ {
		if math.Abs(res.Ranks[v]-golden[v]) > 1e-12 {
			t.Fatalf("parallel rank[%d] = %g, golden %g", v, res.Ranks[v], golden[v])
		}
	}
}

// goldenRanks is an independent synchronous PageRank.
func goldenRanks(g *graph.Graph, iters int) []float64 {
	n := g.NumVertices()
	rank := make([]float64, n)
	contrib := make([]float64, n)
	for i := range rank {
		rank[i] = 1.0 / float64(n)
	}
	base := 0.15 / float64(n)
	for it := 0; it < iters; it++ {
		for v := 0; v < n; v++ {
			if d := g.Out.Degree(graph.V(v)); d > 0 {
				contrib[v] = rank[v] / float64(d)
			} else {
				contrib[v] = 0
			}
		}
		for dst := 0; dst < n; dst++ {
			sum := 0.0
			for _, src := range g.In.Neighs(graph.V(dst)) {
				sum += contrib[src]
			}
			rank[dst] = base + 0.85*sum
		}
	}
	return rank
}

func TestParallelLoadBalance(t *testing.T) {
	g := graph.Uniform(4096, 16384, 5)
	res := runPR(t, g, func(fakeWorkload) (cache.Policy, core.VertexIndexed, int) {
		return cache.NewDRRIP(1), nil, 0
	}, false)
	var min, max uint64 = math.MaxUint64, 0
	for _, in := range res.Stats.CoreInstructions {
		if in < min {
			min = in
		}
		if in > max {
			max = in
		}
	}
	if float64(max) > 1.5*float64(min) {
		t.Errorf("core imbalance: instructions %v", res.Stats.CoreInstructions)
	}
}

func TestParallelPOPTBeatsDRRIPMisses(t *testing.T) {
	g := graph.Uniform(4096, 16384, 7)
	drrip := runPR(t, g, func(fakeWorkload) (cache.Policy, core.VertexIndexed, int) {
		return cache.NewDRRIP(1), nil, 0
	}, false)
	popt := runPR(t, g, func(fw fakeWorkload) (cache.Policy, core.VertexIndexed, int) {
		p := core.BuildPOPT(&fw.g.Out, fw.g.NumVertices(), core.InterIntra, 8, fw.contrib)
		sets := tinyCfg().LLCSize / (tinyCfg().LLCWays * mem.LineSize)
		return p, p, p.ReservedWays(sets)
	}, true)
	t.Logf("parallel LLC misses: DRRIP=%d P-OPT=%d; cycles %g vs %g; maxBankShare %.3f",
		drrip.Stats.LLCMisses, popt.Stats.LLCMisses, drrip.Stats.Cycles, popt.Stats.Cycles, popt.Stats.MaxBankShare)
	if popt.Stats.LLCMisses >= drrip.Stats.LLCMisses {
		t.Errorf("parallel P-OPT misses %d should undercut DRRIP %d", popt.Stats.LLCMisses, drrip.Stats.LLCMisses)
	}
	// P-OPT executions serialize epochs.
	if popt.Stats.Cycles <= 0 || drrip.Stats.Cycles <= 0 {
		t.Error("cycle model returned nonpositive time")
	}
	if popt.Stats.MatrixBankAccesses == 0 {
		t.Error("P-OPT bank contention accounting missing")
	}
	// Parallel results still correct.
	golden := goldenRanks(g, 2)
	for v := 0; v < g.NumVertices(); v += 97 {
		if math.Abs(popt.Ranks[v]-golden[v]) > 1e-12 {
			t.Fatalf("P-OPT parallel rank[%d] diverged", v)
		}
	}
}

func TestEpochBarriersCounted(t *testing.T) {
	g := graph.Uniform(1024, 4096, 9)
	res := runPR(t, g, func(fw fakeWorkload) (cache.Policy, core.VertexIndexed, int) {
		p := core.BuildPOPT(&fw.g.Out, fw.g.NumVertices(), core.InterIntra, 8, fw.contrib)
		return p, p, 0
	}, true)
	_ = res
	// 2 iterations x 256 epochs (1024 vertices / epochSize 4).
	// EpochBarriers live on the machine, which runPR hides; re-run inline.
	sp := mem.NewSpace()
	sp.AllocBytes("rank", g.NumVertices(), 4, false)
	contrib := sp.AllocBytes("contrib", g.NumVertices(), 4, true)
	p := core.BuildPOPT(&g.Out, g.NumVertices(), core.InterIntra, 8, contrib)
	m := NewMachine(tinyCfg(), p, 0)
	ParallelPageRank(m, g, p, 1, 4, true)
	if m.EpochBarriers != 256 {
		t.Errorf("EpochBarriers = %d, want 256", m.EpochBarriers)
	}
}

func TestBankTrafficSpread(t *testing.T) {
	g := graph.Uniform(2048, 8192, 11)
	sp := mem.NewSpace()
	sp.AllocBytes("rank", g.NumVertices(), 4, false)
	contrib := sp.AllocBytes("contrib", g.NumVertices(), 4, true)
	_ = contrib
	m := NewMachine(tinyCfg(), cache.NewDRRIP(1), 0)
	res := ParallelPageRank(m, g, nil, 1, 64, false)
	if res.Stats.MaxBankShare > 0.6 {
		t.Errorf("one bank absorbs %.0f%% of traffic; striping broken", 100*res.Stats.MaxBankShare)
	}
	var total uint64
	for _, b := range m.BankDemand {
		total += b
	}
	if total != res.Stats.LLCAccesses {
		t.Errorf("bank demand sums to %d, LLC saw %d", total, res.Stats.LLCAccesses)
	}
}
