package multicore

import (
	"popt/internal/core"
	"popt/internal/graph"
	"popt/internal/kernels"
	"popt/internal/mem"
)

// coreStream is one core's pending reference stream for the current
// parallel region, replayed round-robin against the machine.
type coreStream struct {
	accs  []mem.Access
	ticks []uint64 // non-memory instructions after each access
	// mainVertex, for core 0, tracks the outer-loop vertex of each access
	// so the designated-main-thread currVertex register can be updated as
	// the interleaving progresses.
	mainVertex []graph.V
}

func (cs *coreStream) push(acc mem.Access, tick uint64, v graph.V) {
	cs.accs = append(cs.accs, acc)
	cs.ticks = append(cs.ticks, tick)
	cs.mainVertex = append(cs.mainVertex, v)
}

// replay interleaves the per-core streams round-robin, one access per core
// per turn — the cycle-approximate interleaving of symmetric cores. Core
// 0's outer-loop position drives update_index (the paper's
// designated-main-thread policy).
func replay(m *Machine, streams []*coreStream, hook core.VertexIndexed) {
	idx := make([]int, len(streams))
	for {
		done := true
		for ci, cs := range streams {
			if idx[ci] >= len(cs.accs) {
				continue
			}
			done = false
			i := idx[ci]
			if ci == 0 && hook != nil {
				hook.UpdateIndex(cs.mainVertex[i])
			}
			m.access(m.Cores[ci], cs.accs[i])
			m.Tick(m.Cores[ci], cs.ticks[i])
			idx[ci]++
		}
		if done {
			return
		}
	}
}

// PRResult carries the parallel PageRank outcome.
type PRResult struct {
	Ranks []float64
	Stats Stats
}

// ParallelPageRank simulates iters iterations of parallel pull PageRank on
// the machine. When epochSerial is true (required by P-OPT), epochs of
// epochSize vertices execute serially with vertices within each epoch
// partitioned across cores; otherwise the whole iteration is partitioned
// once (free-running parallel execution, as non-P-OPT policies allow).
func ParallelPageRank(m *Machine, g *graph.Graph, hook core.VertexIndexed, iters, epochSize int, epochSerial bool) PRResult {
	n := g.NumVertices()
	sp := mem.NewSpace()
	rankArr := sp.AllocBytes("rank", n, 4, false)
	contribArr := sp.AllocBytes("contrib", n, 4, true)
	oaArr := sp.AllocBytes("cscOA", n+1, 8, false)
	naArr := sp.AllocBytes("cscNA", g.NumEdges(), 4, false)
	m.SetIrregRange(contribArr.Base, contribArr.Bound())

	rank := make([]float64, n)
	contrib := make([]float64, n)
	for i := range rank {
		rank[i] = 1.0 / float64(n)
	}
	const damping = 0.85
	base := (1 - damping) / float64(n)
	cores := m.Cfg.Cores

	// pullRegion builds per-core streams for destinations [lo, hi) and
	// replays them.
	pullRegion := func(lo, hi int) {
		streams := make([]*coreStream, cores)
		for i := range streams {
			streams[i] = &coreStream{}
		}
		span := hi - lo
		for ci := 0; ci < cores; ci++ {
			from := lo + ci*span/cores
			to := lo + (ci+1)*span/cores
			cscIt := g.In.IterFrom(graph.V(from))
			for dst := from; dst < to; dst++ {
				streams[ci].push(mem.Access{Addr: oaArr.Addr(dst), PC: kernels.PCOffsets}, 0, graph.V(dst))
				sum := 0.0
				srcs, eLo := cscIt.Next()
				for i, src := range srcs {
					streams[ci].push(mem.Access{Addr: naArr.Addr(int(eLo) + i), PC: kernels.PCNeighbors}, 0, graph.V(dst))
					streams[ci].push(mem.Access{Addr: contribArr.Addr(int(src)), PC: kernels.PCIrregRead}, 1, graph.V(dst))
					sum += contrib[src]
				}
				rank[dst] = base + damping*sum
				streams[ci].push(mem.Access{Addr: rankArr.Addr(dst), PC: kernels.PCStreamWrite, Write: true}, 2, graph.V(dst))
			}
		}
		replay(m, streams, hook)
	}

	for it := 0; it < iters; it++ {
		// Contribution phase (streaming, partitioned once).
		streams := make([]*coreStream, cores)
		for i := range streams {
			streams[i] = &coreStream{}
		}
		for ci := 0; ci < cores; ci++ {
			for v := ci * n / cores; v < (ci+1)*n/cores; v++ {
				if d := g.Out.Degree(graph.V(v)); d > 0 {
					contrib[v] = rank[v] / float64(d)
				} else {
					contrib[v] = 0
				}
				streams[ci].push(mem.Access{Addr: rankArr.Addr(v), PC: kernels.PCStreamRead}, 1, 0)
				streams[ci].push(mem.Access{Addr: contribArr.Addr(v), PC: kernels.PCStreamWrite, Write: true}, 1, 0)
			}
		}
		replay(m, streams, nil)

		if er, ok := hook.(interface{ ResetEpoch() }); ok {
			er.ResetEpoch()
		}
		if epochSerial {
			for lo := 0; lo < n; lo += epochSize {
				hi := lo + epochSize
				if hi > n {
					hi = n
				}
				if hook != nil {
					hook.UpdateIndex(graph.V(lo))
				}
				pullRegion(lo, hi)
				m.EpochBarriers++
			}
		} else {
			pullRegion(0, n)
		}
	}
	var streamed uint64
	if m.popt != nil {
		streamed = m.popt.BytesStreamed
	}
	return PRResult{Ranks: rank, Stats: m.Collect(streamed)}
}
