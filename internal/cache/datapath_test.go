package cache

import (
	"math/rand"
	"testing"

	"popt/internal/mem"
)

// checkSoACoherence asserts the invariants tying the SoA index to the
// canonical line array: tags mirror Addr exactly where a line is valid
// (tagSentinel everywhere else), the valid/dirty bitmasks mirror the
// per-line flags (dirty is a subset of valid), reserved ways never hold
// lines, and Occupancy's popcount agrees with a direct walk.
func checkSoACoherence(t *testing.T, l *Level) {
	t.Helper()
	walked := 0
	for s := 0; s < l.sets; s++ {
		for w := 0; w < l.ways; w++ {
			ln := l.lines[s*l.ways+w]
			bit := uint64(1) << uint(w)
			if ln.Valid {
				walked++
				if w < l.resvd {
					t.Fatalf("set %d way %d: valid line in reserved way (resvd=%d)", s, w, l.resvd)
				}
				if got := l.tags[s*l.ways+w]; got != ln.Addr {
					t.Fatalf("set %d way %d: tag %#x != line addr %#x", s, w, got, ln.Addr)
				}
				if l.valid[s]&bit == 0 {
					t.Fatalf("set %d way %d: valid line but valid bit clear", s, w)
				}
			} else {
				if got := l.tags[s*l.ways+w]; got != tagSentinel {
					t.Fatalf("set %d way %d: invalid line but tag %#x != sentinel", s, w, got)
				}
				if l.valid[s]&bit != 0 {
					t.Fatalf("set %d way %d: invalid line but valid bit set", s, w)
				}
				if ln != (Line{}) {
					t.Fatalf("set %d way %d: invalid line not zeroed: %+v", s, w, ln)
				}
			}
			if dirtyBit := l.dirty[s]&bit != 0; dirtyBit != ln.Dirty {
				t.Fatalf("set %d way %d: dirty bit %v != line dirty %v", s, w, dirtyBit, ln.Dirty)
			}
		}
		if l.dirty[s]&^l.valid[s] != 0 {
			t.Fatalf("set %d: dirty mask %#x not a subset of valid mask %#x", s, l.dirty[s], l.valid[s])
		}
	}
	if occ := l.Occupancy(); occ != walked {
		t.Fatalf("Occupancy() = %d, walk counted %d", occ, walked)
	}
}

// TestSoAAoSCoherence drives every mutating entry point of a Level with a
// randomized operation mix and cross-checks the SoA index (tags, bitmasks,
// Occupancy) against the canonical []Line array after every step.
func TestSoAAoSCoherence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// 12 sets x 4 ways (non-power-of-two set count) with a 3x-capacity
	// address pool so fills, evictions and misses all occur constantly.
	const ways = 4
	l := NewLevel("prop", 12*ways*mem.LineSize, ways, NewLRU())
	pool := make([]uint64, 3*12*ways)
	for i := range pool {
		pool[i] = uint64(i) * mem.LineSize
	}
	addr := func() uint64 { return pool[rng.Intn(len(pool))] }

	for step := 0; step < 20000; step++ {
		switch op := rng.Intn(100); {
		case op < 55: // demand access, fill on miss (mirrors Hierarchy)
			acc := mem.Access{Addr: addr(), PC: uint16(rng.Intn(4)), Write: rng.Intn(3) == 0}
			if !l.Access(acc) {
				l.Fill(acc)
			}
		case op < 70: // writeback sink
			l.MarkDirty(addr())
		case op < 85: // invalidation
			l.Invalidate(addr())
		case op < 97: // lookup is read-only; also exercise SetIndex range
			if set, way, ok := l.Lookup(addr()); ok {
				if set < 0 || set >= l.sets || way < l.resvd || way >= l.ways {
					t.Fatalf("Lookup returned out-of-range (set=%d, way=%d)", set, way)
				}
			}
		case op < 99: // repartition
			l.Reserve(rng.Intn(ways))
		default:
			l.Flush()
		}
		checkSoACoherence(t, l)
	}
}

// TestSetIndexMatchesModulo pins the fastmod set mapping to the footnote-3
// modulo it strength-reduces, on non-power-of-two and power-of-two set
// counts alike.
func TestSetIndexMatchesModulo(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, size := range []int{24 << 20, 160 << 10, 1 << 20, 3 << 20} {
		l := NewLevel("mod", size, 16, NewLRU())
		for i := 0; i < 10000; i++ {
			la := rng.Uint64() &^ (mem.LineSize - 1)
			want := int((la >> mem.LineShift) % uint64(l.Sets()))
			if got := l.SetIndex(la); got != want {
				t.Fatalf("sets=%d: SetIndex(%#x) = %d, want %d", l.Sets(), la, got, want)
			}
		}
	}
}

// bindCounter wraps a policy and counts Bind calls; Flush must re-bind so
// replacement metadata does not survive an invalidated cache.
type bindCounter struct {
	Policy
	binds int
}

func (b *bindCounter) Bind(g Geometry) {
	b.binds++
	b.Policy.Bind(g)
}

func TestFlushRebindsPolicy(t *testing.T) {
	pol := &bindCounter{Policy: NewLRU()}
	l := NewLevel("flush", 4*2*mem.LineSize, 2, pol)
	if pol.binds != 1 {
		t.Fatalf("NewLevel bound policy %d times, want 1", pol.binds)
	}
	for i := 0; i < 16; i++ {
		acc := mem.Access{Addr: uint64(i) * mem.LineSize, Write: i%2 == 0}
		if !l.Access(acc) {
			l.Fill(acc)
		}
	}
	l.Flush()
	if pol.binds != 2 {
		t.Fatalf("Flush left policy binds at %d, want 2 (flush must reset replacement metadata)", pol.binds)
	}
	if occ := l.Occupancy(); occ != 0 {
		t.Fatalf("Occupancy after flush = %d, want 0", occ)
	}
	if _, _, ok := l.Lookup(0); ok {
		t.Fatal("Lookup hit after flush")
	}
	// The re-bind must preserve the reservation geometry.
	l.Reserve(1)
	l.Flush()
	if got := l.ReservedWays(); got != 1 {
		t.Fatalf("ReservedWays after flush = %d, want 1", got)
	}
	if pol.binds != 4 { // +1 reserve, +1 flush
		t.Fatalf("binds after reserve+flush = %d, want 4", pol.binds)
	}
}
