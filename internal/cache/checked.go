package cache

import (
	"fmt"

	"popt/internal/mem"
)

// CheckedPolicy is a runtime complement to the static policycontract
// analyzer: it wraps any Policy and panics on the contract violations the
// analyzer cannot prove — a Victim outside [ReservedWays, Ways), mutation
// of the borrowed lines slice, use before Bind, or callbacks arriving out
// of protocol order (Victim → OnEvict → OnFill on an evicting miss,
// OnFill alone on a free-way fill, OnHit only when no eviction is in
// flight).
//
// CheckedPolicy deliberately implements only the core Policy interface.
// Optional hook interfaces (epoch resets, tile switches, index updates)
// are dispatched by type assertion at the call sites, so forwarding them
// unconditionally would change behavior for wrapped policies that lack
// them; callers that need hooks keep a reference to the unwrapped policy
// (see Unwrap).
type CheckedPolicy struct {
	inner Policy
	g     Geometry
	bound bool

	// One eviction transaction may be in flight per level at a time:
	// Victim opens it, OnEvict acknowledges it, OnFill closes it.
	pending  bool
	sawEvict bool
	pSet     int
	pWay     int

	snap []Line // scratch copy of lines for the mutation check
}

// NewCheckedPolicy wraps p with runtime contract assertions. Name is
// passed through unchanged so reports are identical with checking on or
// off.
func NewCheckedPolicy(p Policy) *CheckedPolicy {
	if p == nil {
		panic("cache: contract violation: NewCheckedPolicy(nil)")
	}
	if c, ok := p.(*CheckedPolicy); ok {
		return c // idempotent: don't stack checkers
	}
	return &CheckedPolicy{inner: p}
}

// Unwrap returns the policy being checked.
func (c *CheckedPolicy) Unwrap() Policy { return c.inner }

// Name reports the wrapped policy's name.
func (c *CheckedPolicy) Name() string { return c.inner.Name() }

func (c *CheckedPolicy) violatef(format string, args ...any) {
	panic(fmt.Sprintf("cache: contract violation: policy %s: %s",
		c.inner.Name(), fmt.Sprintf(format, args...)))
}

// Bind validates the geometry and forwards it. Rebinding (cf.
// Level.Reserve) aborts any in-flight eviction transaction.
func (c *CheckedPolicy) Bind(g Geometry) {
	if g.Sets <= 0 || g.Ways <= 0 {
		c.violatef("Bind with nonpositive geometry %+v", g)
	}
	if g.ReservedWays < 0 || g.ReservedWays >= g.Ways {
		c.violatef("Bind with ReservedWays=%d outside [0, Ways=%d)", g.ReservedWays, g.Ways)
	}
	c.g = g
	c.bound = true
	c.pending = false
	c.sawEvict = false
	c.inner.Bind(g)
}

func (c *CheckedPolicy) requireBound(op string) {
	if !c.bound {
		c.violatef("%s before Bind", op)
	}
}

func (c *CheckedPolicy) checkSetWay(op string, set, way int) {
	if set < 0 || set >= c.g.Sets {
		c.violatef("%s with set %d outside [0, %d)", op, set, c.g.Sets)
	}
	if way < 0 || way >= c.g.Ways {
		c.violatef("%s with way %d outside [0, %d)", op, way, c.g.Ways)
	}
}

// OnHit forwards a hit; no eviction may be in flight.
func (c *CheckedPolicy) OnHit(set, way int, acc mem.Access) {
	c.requireBound("OnHit")
	c.checkSetWay("OnHit", set, way)
	if c.pending {
		c.violatef("OnHit(set=%d, way=%d) while eviction of (set=%d, way=%d) is in flight", set, way, c.pSet, c.pWay)
	}
	if way < c.g.ReservedWays {
		c.violatef("OnHit in reserved way %d (ReservedWays=%d)", way, c.g.ReservedWays)
	}
	c.inner.OnHit(set, way, acc)
}

// Victim forwards victim selection, asserting the returned way is legal
// and the borrowed lines slice comes back byte-identical.
func (c *CheckedPolicy) Victim(set int, lines []Line, acc mem.Access) int {
	c.requireBound("Victim")
	if set < 0 || set >= c.g.Sets {
		c.violatef("Victim with set %d outside [0, %d)", set, c.g.Sets)
	}
	if len(lines) != c.g.Ways {
		c.violatef("Victim with %d lines for %d ways", len(lines), c.g.Ways)
	}
	if c.pending {
		c.violatef("Victim(set=%d) while eviction of (set=%d, way=%d) is in flight", set, c.pSet, c.pWay)
	}
	for w := c.g.ReservedWays; w < len(lines); w++ {
		if !lines[w].Valid {
			c.violatef("Victim(set=%d) with invalid line in way %d; Victim is only called on full sets", set, w)
		}
	}
	c.snap = append(c.snap[:0], lines...)
	way := c.inner.Victim(set, lines, acc)
	for i := range lines {
		if lines[i] != c.snap[i] {
			c.violatef("Victim(set=%d) mutated lines[%d]: %+v -> %+v (lines aliases cache storage and is read-only)",
				set, i, c.snap[i], lines[i])
		}
	}
	if way < c.g.ReservedWays || way >= c.g.Ways {
		c.violatef("Victim(set=%d) returned way %d outside [ReservedWays=%d, Ways=%d)",
			set, way, c.g.ReservedWays, c.g.Ways)
	}
	c.pending = true
	c.sawEvict = false
	c.pSet, c.pWay = set, way
	return way
}

// OnEvict forwards an eviction; it must acknowledge the victim just
// selected.
func (c *CheckedPolicy) OnEvict(set, way int) {
	c.requireBound("OnEvict")
	c.checkSetWay("OnEvict", set, way)
	if !c.pending {
		c.violatef("OnEvict(set=%d, way=%d) with no preceding Victim", set, way)
	}
	if c.sawEvict {
		c.violatef("duplicate OnEvict(set=%d, way=%d)", set, way)
	}
	if set != c.pSet || way != c.pWay {
		c.violatef("OnEvict(set=%d, way=%d) does not match Victim's choice (set=%d, way=%d)", set, way, c.pSet, c.pWay)
	}
	c.sawEvict = true
	c.inner.OnEvict(set, way)
}

// OnFill forwards a fill; it either closes the in-flight eviction
// transaction or records a free-way fill.
func (c *CheckedPolicy) OnFill(set, way int, acc mem.Access) {
	c.requireBound("OnFill")
	c.checkSetWay("OnFill", set, way)
	if way < c.g.ReservedWays {
		c.violatef("OnFill in reserved way %d (ReservedWays=%d)", way, c.g.ReservedWays)
	}
	if c.pending {
		if !c.sawEvict {
			c.violatef("OnFill(set=%d, way=%d) before OnEvict for victim (set=%d, way=%d)", set, way, c.pSet, c.pWay)
		}
		if set != c.pSet || way != c.pWay {
			c.violatef("OnFill(set=%d, way=%d) does not match Victim's choice (set=%d, way=%d)", set, way, c.pSet, c.pWay)
		}
		c.pending = false
		c.sawEvict = false
	}
	c.inner.OnFill(set, way, acc)
}
