package cache

import (
	"math/rand"

	"popt/internal/mem"
)

// DIP is Dynamic Insertion Policy (Qureshi et al., ISCA 2007), the
// adaptive-insertion ancestor of DRRIP that the paper cites for shared
// cache management: set dueling between traditional LRU insertion and BIP
// (insert at LRU position, promoting to MRU with probability 1/32), which
// protects a fraction of a thrashing working set.
type DIP struct {
	g       Geometry
	clock   uint64
	ts      []uint64
	rng     *rand.Rand
	psel    int
	pselMax int
	pitch   int
}

// NewDIP returns a DIP with a 10-bit PSEL and 1-in-32 leader sets.
func NewDIP(seed int64) *DIP {
	return &DIP{rng: rand.New(rand.NewSource(seed)), psel: 512, pselMax: 1023, pitch: 32}
}

// Name implements Policy.
func (p *DIP) Name() string { return "DIP" }

// Bind implements Policy.
func (p *DIP) Bind(g Geometry) {
	p.g = g
	p.ts = make([]uint64, g.Sets*g.Ways)
}

// leader classifies a set: +1 LRU leader, -1 BIP leader, 0 follower.
func (p *DIP) leader(set int) int {
	switch set % p.pitch {
	case 0:
		return 1
	case 1:
		return -1
	}
	return 0
}

func (p *DIP) useBIP(set int) bool {
	switch p.leader(set) {
	case 1:
		return false
	case -1:
		return true
	}
	return p.psel > p.pselMax/2
}

// OnHit implements Policy: standard MRU promotion.
func (p *DIP) OnHit(set, way int, _ mem.Access) {
	p.clock++
	p.ts[set*p.g.Ways+way] = p.clock
}

// OnFill implements Policy: a fill is a miss — leader misses steer PSEL —
// and the insertion position depends on the winning policy.
func (p *DIP) OnFill(set, way int, _ mem.Access) {
	switch p.leader(set) {
	case 1: // LRU leader missed
		if p.psel < p.pselMax {
			p.psel++
		}
	case -1: // BIP leader missed
		if p.psel > 0 {
			p.psel--
		}
	}
	p.clock++
	idx := set*p.g.Ways + way
	if p.useBIP(set) && p.rng.Intn(32) != 0 {
		// Insert at LRU position: pretend it is the oldest line.
		p.ts[idx] = 0
	} else {
		p.ts[idx] = p.clock
	}
}

// OnEvict implements Policy.
func (p *DIP) OnEvict(int, int) {}

// Victim implements Policy: oldest timestamp.
func (p *DIP) Victim(set int, _ []Line, _ mem.Access) int {
	base := set * p.g.Ways
	best, bestTS := p.g.ReservedWays, p.ts[base+p.g.ReservedWays]
	for w := p.g.ReservedWays + 1; w < p.g.Ways; w++ {
		if p.ts[base+w] < bestTS {
			best, bestTS = w, p.ts[base+w]
		}
	}
	return best
}
