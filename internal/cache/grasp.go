package cache

import "popt/internal/mem"

// GRASP (Faldu et al., HPCA 2020) is the domain-specialized baseline of
// Fig. 12a. It expects the input graph reordered with Degree-Based Grouping
// so that hot (high-degree) vertices occupy a dense prefix of the vertex ID
// space, and then protects the address region holding that prefix:
// hot-region lines insert near-MRU and promote fully on hit, while all
// other lines insert at distant RRPV and promote weakly. GRASP is a
// heuristic — vertices of similar degree are assumed to have similar reuse
// — which is exactly where P-OPT's precise next-reference information wins.

// GRASP implements Policy.
type GRASP struct {
	rripBase
	// HotBase/HotBound delimit the pinned high-degree region of the
	// irregular data array (software-configured registers in GRASP).
	HotBase, HotBound uint64
	// WarmBound extends past the hot region: lines there insert at long
	// (not distant) RRPV, mirroring GRASP's intermediate region.
	WarmBound uint64
}

// NewGRASP returns a GRASP policy managing the given hot/warm address
// ranges.
func NewGRASP(hotBase, hotBound, warmBound uint64) *GRASP {
	p := &GRASP{HotBase: hotBase, HotBound: hotBound, WarmBound: warmBound}
	p.bits = 2
	return p
}

// Name implements Policy.
func (p *GRASP) Name() string { return "GRASP" }

func (p *GRASP) region(addr uint64) int {
	switch {
	case addr >= p.HotBase && addr < p.HotBound:
		return 2 // hot
	case addr >= p.HotBound && addr < p.WarmBound:
		return 1 // warm
	default:
		return 0 // cold
	}
}

// OnHit implements Policy: hot lines promote to MRU; others promote one
// step, so streaming data cannot displace the pinned region.
func (p *GRASP) OnHit(set, way int, acc mem.Access) {
	idx := set*p.g.Ways + way
	switch p.region(acc.Addr) {
	case 2:
		p.rrpv[idx] = 0
	default:
		if p.rrpv[idx] > 0 {
			p.rrpv[idx]--
		}
	}
}

// OnFill implements Policy.
func (p *GRASP) OnFill(set, way int, acc mem.Access) {
	switch p.region(acc.Addr) {
	case 2:
		p.insert(set, way, 0)
	case 1:
		p.insert(set, way, p.max-1)
	default:
		p.insert(set, way, p.max)
	}
}

// OnEvict implements Policy.
func (p *GRASP) OnEvict(int, int) {}

// Victim implements Policy.
func (p *GRASP) Victim(set int, _ []Line, _ mem.Access) int { return p.victim(set) }
