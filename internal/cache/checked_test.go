package cache

import (
	"strings"
	"testing"

	"popt/internal/mem"
)

// fakePolicy is a configurable misbehaving policy for exercising
// CheckedPolicy. victim decides the returned way; mutate optionally
// scribbles on the borrowed lines slice.
type fakePolicy struct {
	g      Geometry
	victim func(g Geometry) int
	mutate func(lines []Line)
}

func (f *fakePolicy) Name() string { return "fake" }

//lint:allow policycontract (the victim closure decides ReservedWays handling per test case)
func (f *fakePolicy) Bind(g Geometry)                   { f.g = g }
func (f *fakePolicy) OnHit(set, way int, a mem.Access)  {}
func (f *fakePolicy) OnFill(set, way int, a mem.Access) {}
func (f *fakePolicy) OnEvict(set, way int)              {}

func (f *fakePolicy) Victim(set int, lines []Line, a mem.Access) int {
	if f.mutate != nil {
		//lint:allow policycontract,borrowflow (deliberately misbehaving test fake)
		f.mutate(lines)
	}
	return f.victim(f.g)
}

func mustViolate(t *testing.T, substr string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected contract-violation panic containing %q, got none", substr)
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %v (%T), want string", r, r)
		}
		if !strings.HasPrefix(msg, "cache: contract violation:") {
			t.Fatalf("panic %q does not carry the contract-violation prefix", msg)
		}
		if !strings.Contains(msg, substr) {
			t.Fatalf("panic %q does not mention %q", msg, substr)
		}
	}()
	fn()
}

// boundChecked returns a checker bound to a small geometry with two
// reserved ways, plus a full set of valid lines for Victim calls.
func boundChecked(f *fakePolicy) (*CheckedPolicy, []Line) {
	c := NewCheckedPolicy(f)
	c.Bind(Geometry{Sets: 4, Ways: 4, ReservedWays: 2})
	lines := make([]Line, 4)
	for i := range lines {
		lines[i] = Line{Valid: true, Addr: uint64(i) * mem.LineSize}
	}
	return c, lines
}

func TestCheckedPolicyPassthrough(t *testing.T) {
	f := &fakePolicy{victim: func(g Geometry) int { return g.ReservedWays }}
	c, lines := boundChecked(f)
	if c.Name() != "fake" {
		t.Fatalf("Name() = %q, want passthrough", c.Name())
	}
	if c.Unwrap() != Policy(f) {
		t.Fatal("Unwrap() lost the inner policy")
	}
	if NewCheckedPolicy(c) != c {
		t.Fatal("NewCheckedPolicy must be idempotent")
	}
	a := mem.Access{Addr: 42 * mem.LineSize}
	// Free-way fill, hit, then a full eviction transaction: all legal.
	c.OnFill(1, 2, a)
	c.OnHit(1, 2, a)
	w := c.Victim(0, lines, a)
	if w != 2 {
		t.Fatalf("Victim = %d, want 2", w)
	}
	c.OnEvict(0, w)
	c.OnFill(0, w, a)
	// The transaction closed: another hit is legal again.
	c.OnHit(0, w, a)
}

func TestCheckedPolicyVictimOutOfRange(t *testing.T) {
	f := &fakePolicy{victim: func(g Geometry) int { return g.Ways }}
	c, lines := boundChecked(f)
	mustViolate(t, "outside [ReservedWays=2, Ways=4)", func() {
		c.Victim(0, lines, mem.Access{})
	})
}

func TestCheckedPolicyVictimInReservedWay(t *testing.T) {
	f := &fakePolicy{victim: func(g Geometry) int { return 0 }}
	c, lines := boundChecked(f)
	mustViolate(t, "outside [ReservedWays=2, Ways=4)", func() {
		c.Victim(0, lines, mem.Access{})
	})
}

func TestCheckedPolicyVictimMutatesLines(t *testing.T) {
	f := &fakePolicy{
		victim: func(g Geometry) int { return g.ReservedWays },
		mutate: func(lines []Line) { lines[3].Dirty = true },
	}
	c, lines := boundChecked(f)
	mustViolate(t, "mutated lines[3]", func() {
		c.Victim(0, lines, mem.Access{})
	})
}

func TestCheckedPolicyUseBeforeBind(t *testing.T) {
	f := &fakePolicy{victim: func(g Geometry) int { return 0 }}
	c := NewCheckedPolicy(f)
	mustViolate(t, "Victim before Bind", func() {
		c.Victim(0, make([]Line, 4), mem.Access{})
	})
	mustViolate(t, "OnHit before Bind", func() {
		c.OnHit(0, 0, mem.Access{})
	})
}

func TestCheckedPolicyBadGeometry(t *testing.T) {
	f := &fakePolicy{victim: func(g Geometry) int { return 0 }}
	mustViolate(t, "ReservedWays=4 outside [0, Ways=4)", func() {
		NewCheckedPolicy(f).Bind(Geometry{Sets: 4, Ways: 4, ReservedWays: 4})
	})
	mustViolate(t, "nonpositive geometry", func() {
		NewCheckedPolicy(f).Bind(Geometry{Sets: 0, Ways: 4})
	})
}

func TestCheckedPolicyCallbackOrder(t *testing.T) {
	mk := func() (*CheckedPolicy, []Line) {
		return boundChecked(&fakePolicy{victim: func(g Geometry) int { return g.ReservedWays }})
	}
	a := mem.Access{}

	t.Run("EvictWithoutVictim", func(t *testing.T) {
		c, _ := mk()
		mustViolate(t, "no preceding Victim", func() { c.OnEvict(0, 2) })
	})
	t.Run("FillBeforeEvict", func(t *testing.T) {
		c, lines := mk()
		w := c.Victim(0, lines, a)
		mustViolate(t, "before OnEvict", func() { c.OnFill(0, w, a) })
	})
	t.Run("EvictWrongWay", func(t *testing.T) {
		c, lines := mk()
		c.Victim(0, lines, a)
		mustViolate(t, "does not match Victim's choice", func() { c.OnEvict(0, 3) })
	})
	t.Run("DuplicateEvict", func(t *testing.T) {
		c, lines := mk()
		w := c.Victim(0, lines, a)
		c.OnEvict(0, w)
		mustViolate(t, "duplicate OnEvict", func() { c.OnEvict(0, w) })
	})
	t.Run("HitDuringEviction", func(t *testing.T) {
		c, lines := mk()
		c.Victim(0, lines, a)
		mustViolate(t, "while eviction", func() { c.OnHit(1, 2, a) })
	})
	t.Run("VictimDuringEviction", func(t *testing.T) {
		c, lines := mk()
		c.Victim(0, lines, a)
		mustViolate(t, "while eviction", func() { c.Victim(1, lines, a) })
	})
	t.Run("FillWrongWay", func(t *testing.T) {
		c, lines := mk()
		w := c.Victim(0, lines, a)
		c.OnEvict(0, w)
		mustViolate(t, "does not match Victim's choice", func() { c.OnFill(0, 3, a) })
	})
	t.Run("VictimOnPartialSet", func(t *testing.T) {
		c, lines := mk()
		lines[3].Valid = false
		mustViolate(t, "invalid line in way 3", func() { c.Victim(0, lines, a) })
	})
	t.Run("FillReservedWay", func(t *testing.T) {
		c, _ := mk()
		mustViolate(t, "reserved way 1", func() { c.OnFill(0, 1, a) })
	})
	t.Run("RebindAbortsTransaction", func(t *testing.T) {
		c, lines := mk()
		c.Victim(0, lines, a)
		c.Bind(Geometry{Sets: 4, Ways: 4, ReservedWays: 2}) // Reserve re-binds
		c.OnHit(0, 2, a)                                    // legal again: the transaction was dropped
	})
}

func TestCheckedPolicyUnderLevel(t *testing.T) {
	// A checked LRU behind a real Level over a random torture run: the
	// Level's call protocol must never trip the checker.
	c := NewCheckedPolicy(NewLRU())
	l := NewLevel("chk", 8*4*mem.LineSize, 4, c)
	l.Reserve(1)
	for i := 0; i < 4000; i++ {
		a := mem.Access{Addr: uint64(i*37%256) * mem.LineSize, Write: i%5 == 0}
		if !l.Access(a) {
			l.Fill(a)
		}
	}
	if l.Stats.Accesses != 4000 {
		t.Fatalf("accesses = %d, want 4000", l.Stats.Accesses)
	}
}
