package cache

import "popt/internal/mem"

// S-NUCA bank mapping (Section V-E). A typical static-NUCA LLC stripes
// consecutive cache lines across banks. P-OPT instead needs every
// irregData line to live in the same bank as the Rereference Matrix line
// holding its entry; since one 64 B matrix line covers 64 irregData lines,
// irregData must be interleaved in 64-line blocks. These helpers compute
// both mappings and verify the bank-local property; the performance effect
// (bank contention from matrix lookups) is modeled in internal/perf.

// BankMapping selects how line addresses map to NUCA banks.
type BankMapping int

const (
	// StripeLines is the default S-NUCA policy: bank = (addr >> 6) % banks.
	StripeLines BankMapping = iota
	// StripeBlocks interleaves 64-line blocks: bank = (addr >> 12) % banks.
	// P-OPT applies this mapping (via Reactive-NUCA page-level support) to
	// the irregData huge page only.
	StripeBlocks
)

// Bank returns the NUCA bank for a byte address under mapping m.
func (m BankMapping) Bank(addr uint64, banks int) int {
	switch m {
	case StripeBlocks:
		return int((addr >> (mem.LineShift + 6)) % uint64(banks))
	default:
		return int((addr >> mem.LineShift) % uint64(banks))
	}
}

// NUCA models the bank layout of a distributed LLC for P-OPT's purposes:
// irregData uses block interleaving while everything else (including the
// Rereference Matrix, which is "other data") stripes by line.
type NUCA struct {
	Banks int
	// IrregBase/IrregBound delimit the irregData huge page that uses
	// StripeBlocks; all other addresses use StripeLines.
	IrregBase, IrregBound uint64
	// div caches the fastmod reciprocal of Banks (bank counts, like set
	// counts, need not be powers of two). It is rebuilt lazily whenever
	// Banks changes, which keeps the zero-value/struct-literal NUCA usable.
	div mem.Divider
}

// banksDiv returns the cached reciprocal for the current bank count.
func (n *NUCA) banksDiv() mem.Divider {
	if n.div.Divisor() != uint64(n.Banks) {
		n.div = mem.NewDivider(uint64(n.Banks))
	}
	return n.div
}

// BankOf returns the bank holding the line of addr.
func (n *NUCA) BankOf(addr uint64) int {
	d := n.banksDiv()
	if addr >= n.IrregBase && addr < n.IrregBound {
		return int(d.Mod((addr - n.IrregBase) >> (mem.LineShift + 6)))
	}
	return int(d.Mod(addr >> mem.LineShift))
}

// MatrixLineBank returns the bank of the Rereference Matrix line holding
// entries for irregData lines [64*k, 64*k+64), where the matrix column is a
// contiguous array starting at matrixBase. Matrix data uses line striping.
func (n *NUCA) MatrixLineBank(matrixBase uint64, k int) int {
	return int(n.banksDiv().Mod((matrixBase + uint64(k)*mem.LineSize) >> mem.LineShift))
}

// BankLocal reports whether every irregData line's matrix entry resides in
// the same bank as the line itself, for a matrix column at matrixBase
// covering numLines irregData lines. This is the invariant Section V-E's
// modified mapping establishes; it holds exactly when the matrix column
// base is bank-aligned with the irregData base.
func (n *NUCA) BankLocal(matrixBase uint64, numLines int) bool {
	for k := 0; k*64 < numLines; k++ {
		matrixBank := n.MatrixLineBank(matrixBase, k)
		for j := 0; j < 64 && k*64+j < numLines; j++ {
			lineAddr := n.IrregBase + uint64(k*64+j)*mem.LineSize
			if n.BankOf(lineAddr) != matrixBank {
				return false
			}
		}
	}
	return true
}
