package cache

import (
	"testing"

	"popt/internal/mem"
)

// probeStream builds a deterministic pseudo-random mixed stream of
// demand reads/writes and writebacks over a footprint of lines.
func probeStream(events int, footprintLines uint64, seed uint64) []Probe {
	ps := make([]Probe, events)
	x := seed | 1
	for i := range ps {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		addr := (x % footprintLines) * mem.LineSize
		switch x % 10 {
		case 0, 1: // writebacks are the rarest event in real streams
			ps[i] = Probe{Addr: addr, Kind: ProbeWB}
		case 2, 3, 4:
			ps[i] = Probe{Addr: addr + x%mem.LineSize, PC: uint16(x % 7), Kind: ProbeWrite}
		default:
			ps[i] = Probe{Addr: addr + x%mem.LineSize, PC: uint16(x % 7), Kind: ProbeRead}
		}
	}
	return ps
}

// applySequential issues one probe through the one-event-at-a-time API
// exactly as Hierarchy.Access's LLC arm / LLCTrace's old replay loop
// would, returning the DRAM traffic.
func applySequential(l *Level, p Probe) (dramReads, dramWrites uint64) {
	if p.Kind == ProbeWB {
		if !l.MarkDirty(p.Addr &^ uint64(mem.LineSize-1)) {
			dramWrites++
		}
		return
	}
	acc := mem.Access{Addr: p.Addr, PC: p.PC, Write: p.Kind == ProbeWrite}
	if !l.Access(acc) {
		dramReads++
		if ev, ok := l.Fill(acc); ok && ev.Dirty {
			dramWrites++
		}
	}
	return
}

// levelStateEqual compares the complete replacement-visible state of two
// levels: statistics, SoA tag index, valid/dirty masks, and the
// canonical line storage.
func levelStateEqual(t *testing.T, a, b *Level) {
	t.Helper()
	if a.Stats != b.Stats {
		t.Fatalf("stats diverge: %+v vs %+v", a.Stats, b.Stats)
	}
	for i := range a.tags {
		if a.tags[i] != b.tags[i] {
			t.Fatalf("tag %d diverges: %#x vs %#x", i, a.tags[i], b.tags[i])
		}
		if a.lines[i] != b.lines[i] {
			t.Fatalf("line %d diverges: %+v vs %+v", i, a.lines[i], b.lines[i])
		}
	}
	for s := range a.valid {
		if a.valid[s] != b.valid[s] || a.dirty[s] != b.dirty[s] {
			t.Fatalf("set %d masks diverge: valid %#x/%#x dirty %#x/%#x",
				s, a.valid[s], b.valid[s], a.dirty[s], b.dirty[s])
		}
	}
}

// TestAccessBatchMatchesSequential is the batch-probe equivalence
// property: for mixed demand/writeback streams, every batch partition of
// the stream leaves the level in exactly the state — counters, tags,
// dirty bits, policy-visible line storage — that per-event
// Access/Fill/MarkDirty calls produce, and reports the same DRAM
// traffic. Covered across the set-mapping split (power-of-two mask vs
// fastmod), policy dispatch split (devirtualized BitPLRU vs interface),
// and reserved ways (the P-OPT partitioning case).
func TestAccessBatchMatchesSequential(t *testing.T) {
	configs := []struct {
		name    string
		size    int // 48 KB -> 48 sets (fastmod); 64 KB -> 64 sets (mask)
		pol     func() Policy
		reserve int
	}{
		{"fastmod-lru", 48 << 10, func() Policy { return NewLRU() }, 0},
		{"mask-lru", 64 << 10, func() Policy { return NewLRU() }, 0},
		{"fastmod-plru", 48 << 10, func() Policy { return NewBitPLRU() }, 0},
		{"fastmod-drrip", 48 << 10, func() Policy { return NewDRRIP(1) }, 0},
		{"fastmod-lru-reserved", 48 << 10, func() Policy { return NewLRU() }, 3},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			// Footprint 4x capacity so misses, evictions and dirty victims
			// are all frequent.
			stream := probeStream(1<<15, uint64(4*cfg.size/mem.LineSize), 7)
			for _, batchSize := range []int{1, 3, BatchMax, len(stream)} {
				seq := NewLevel("seq", cfg.size, 16, cfg.pol())
				bat := NewLevel("bat", cfg.size, 16, cfg.pol())
				if cfg.reserve > 0 {
					seq.Reserve(cfg.reserve)
					bat.Reserve(cfg.reserve)
				}
				var seqR, seqW, batR, batW uint64
				for _, p := range stream {
					dr, dw := applySequential(seq, p)
					seqR += dr
					seqW += dw
				}
				for lo := 0; lo < len(stream); lo += batchSize {
					hi := lo + batchSize
					if hi > len(stream) {
						hi = len(stream)
					}
					// AccessBatch scribbles set indices into the probes; copy
					// so every batch size sees the same input.
					batch := append([]Probe(nil), stream[lo:hi]...)
					dr, dw := bat.AccessBatch(batch)
					batR += dr
					batW += dw
				}
				if seqR != batR || seqW != batW {
					t.Fatalf("batchSize=%d: DRAM traffic diverges: seq %d/%d, batch %d/%d",
						batchSize, seqR, seqW, batR, batW)
				}
				levelStateEqual(t, seq, bat)
			}
		})
	}
}

// BenchmarkLevelAccessBatch measures the batch-probe path on the same
// warmed hit-dominated level as BenchmarkLevelAccess, so the two numbers
// are directly comparable: the difference is the per-event overhead the
// batch amortizes.
func BenchmarkLevelAccessBatch(b *testing.B) {
	l, addrs := benchLevel(1, 2)
	for _, a := range addrs {
		acc := mem.Access{Addr: a}
		if !l.Access(acc) {
			l.Fill(acc)
		}
	}
	var batch [BatchMax]Probe
	b.ResetTimer()
	for i := 0; i < b.N; i += BatchMax {
		for j := 0; j < BatchMax; j++ {
			batch[j] = Probe{Addr: addrs[(i+j)&(len(addrs)-1)]}
		}
		l.AccessBatch(batch[:])
	}
}
