package cache

import (
	"math/rand"
	"testing"

	"popt/internal/mem"
)

func lineTrace(ids ...int) []uint64 {
	t := make([]uint64, len(ids))
	for i, id := range ids {
		t[i] = uint64(id) * mem.LineSize
	}
	return t
}

func TestBeladyMINClassicExample(t *testing.T) {
	// Textbook MIN example on a fully-associative 3-line cache:
	// trace a b c d a b e a b c d e -> MIN misses: a,b,c,d(evict c),e(evict a or b? next uses: a@7,b@8 -> evict the one furthest... after d at pos 3, set {a,b,d}; e at 6 evicts d (next use 10, furthest)... Let's just assert MIN <= LRU.
	trace := lineTrace(0, 1, 2, 3, 0, 1, 4, 0, 1, 2, 3, 4)
	min := SimulateTrace(NewLevel("MIN", 3*mem.LineSize, 3, NewBeladyMIN(trace)), trace)
	lru := SimulateTrace(NewLevel("LRU", 3*mem.LineSize, 3, NewLRU()), trace)
	if min.Misses > lru.Misses {
		t.Fatalf("MIN misses %d exceed LRU %d", min.Misses, lru.Misses)
	}
	// Known optimum for this trace and capacity 3 is 7 misses
	// (Belady's original style example).
	if min.Misses != 7 {
		t.Errorf("MIN misses = %d, want 7", min.Misses)
	}
}

func TestBeladyMINIsLowerBoundProperty(t *testing.T) {
	// MIN must never lose to any online policy on random traces.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		n := 2000
		trace := make([]uint64, n)
		for i := range trace {
			trace[i] = uint64(rng.Intn(64)) * mem.LineSize
		}
		min := SimulateTrace(NewLevel("MIN", 8*mem.LineSize, 8, NewBeladyMIN(trace)), trace)
		for _, mk := range []func() Policy{
			func() Policy { return NewLRU() },
			func() Policy { return NewSRRIP() },
			func() Policy { return NewDRRIP(int64(trial)) },
			func() Policy { return NewRandom(int64(trial)) },
		} {
			p := NewCheckedPolicy(mk())
			s := SimulateTrace(NewLevel("X", 8*mem.LineSize, 8, p), trace)
			if min.Misses > s.Misses {
				t.Fatalf("trial %d: MIN (%d misses) lost to %s (%d)", trial, min.Misses, p.Name(), s.Misses)
			}
		}
	}
}

func TestBeladyMINDetectsTraceDivergence(t *testing.T) {
	trace := lineTrace(0, 1, 2)
	l := NewLevel("MIN", 2*mem.LineSize, 2, NewBeladyMIN(trace))
	defer func() {
		if recover() == nil {
			t.Error("diverging access should panic")
		}
	}()
	a := mem.Access{Addr: 9 * mem.LineSize}
	l.Access(a)
	l.Fill(a)
}
