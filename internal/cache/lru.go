package cache

import (
	"math/bits"
	"math/rand"

	"popt/internal/mem"
)

// LRU is true least-recently-used replacement, the paper's simple baseline.
type LRU struct {
	g     Geometry
	clock uint64
	ts    []uint64 // per line, last-touch time
}

// NewLRU returns an LRU policy.
func NewLRU() *LRU { return &LRU{} }

// Name implements Policy.
func (p *LRU) Name() string { return "LRU" }

// Bind implements Policy.
func (p *LRU) Bind(g Geometry) {
	p.g = g
	p.ts = make([]uint64, g.Sets*g.Ways)
}

func (p *LRU) touch(set, way int) {
	p.clock++
	p.ts[set*p.g.Ways+way] = p.clock
}

// OnHit implements Policy.
func (p *LRU) OnHit(set, way int, _ mem.Access) { p.touch(set, way) }

// OnFill implements Policy.
func (p *LRU) OnFill(set, way int, _ mem.Access) { p.touch(set, way) }

// OnEvict implements Policy.
func (p *LRU) OnEvict(set, way int) {}

// Victim implements Policy: the stalest way.
//
//popt:hot
func (p *LRU) Victim(set int, _ []Line, _ mem.Access) int {
	base := set * p.g.Ways
	best, bestTS := p.g.ReservedWays, p.ts[base+p.g.ReservedWays]
	for w := p.g.ReservedWays + 1; w < p.g.Ways; w++ {
		if p.ts[base+w] < bestTS {
			best, bestTS = w, p.ts[base+w]
		}
	}
	return best
}

// Random evicts a uniformly random way; a sanity baseline for tests.
type Random struct {
	g   Geometry
	rng *rand.Rand
}

// NewRandom returns a Random policy with a fixed seed for reproducibility.
func NewRandom(seed int64) *Random { return &Random{rng: rand.New(rand.NewSource(seed))} }

// Name implements Policy.
func (p *Random) Name() string { return "Random" }

// Bind implements Policy.
func (p *Random) Bind(g Geometry) { p.g = g }

// OnHit implements Policy.
func (p *Random) OnHit(int, int, mem.Access) {}

// OnFill implements Policy.
func (p *Random) OnFill(int, int, mem.Access) {}

// OnEvict implements Policy.
func (p *Random) OnEvict(int, int) {}

// Victim implements Policy.
func (p *Random) Victim(int, []Line, mem.Access) int {
	return p.g.ReservedWays + p.rng.Intn(p.g.Ways-p.g.ReservedWays)
}

// BitPLRU is the bit-pseudo-LRU policy Table I assigns to L1 and L2: one
// MRU bit per way; a touch sets the way's bit, and when the last zero bit
// would disappear all other bits reset. The victim is the first way with a
// zero bit.
//
// The MRU bits live in one uint64 per set, so a touch is a mask-or plus a
// saturation compare and Victim is a single TrailingZeros64 — the same
// bitmask datapath the Level uses for its valid/dirty state. Since L1 and
// L2 run this policy on every access, the O(ways) bit walk this replaces
// was on the hierarchy's hottest path.
type BitPLRU struct {
	g   Geometry
	mru []uint64 // per set; bit w set = way w touched since the last reset
	// demand masks ways [ReservedWays, Ways), the ways the MRU walk covers.
	demand uint64
}

// NewBitPLRU returns a Bit-PLRU policy.
func NewBitPLRU() *BitPLRU { return &BitPLRU{} }

// Name implements Policy.
func (p *BitPLRU) Name() string { return "Bit-PLRU" }

// Bind implements Policy.
func (p *BitPLRU) Bind(g Geometry) {
	if g.Ways > 64 {
		panic("cache: Bit-PLRU bitmask datapath supports at most 64 ways")
	}
	p.g = g
	p.mru = make([]uint64, g.Sets)
	p.demand = lowWays(g.Ways) &^ lowWays(g.ReservedWays)
}

//popt:hot
func (p *BitPLRU) touch(set, way int) {
	m := p.mru[set] | 1<<uint(way)
	if m&p.demand == p.demand {
		// The last zero bit disappeared: reset every demand way but this
		// one (reserved-way bits, never consulted, are left as-is).
		m = (m &^ p.demand) | 1<<uint(way)
	}
	p.mru[set] = m
}

// OnHit implements Policy.
//
//popt:hot
func (p *BitPLRU) OnHit(set, way int, _ mem.Access) { p.touch(set, way) }

// OnFill implements Policy.
//
//popt:hot
func (p *BitPLRU) OnFill(set, way int, _ mem.Access) { p.touch(set, way) }

// OnEvict implements Policy.
func (p *BitPLRU) OnEvict(int, int) {}

// Victim implements Policy: the lowest demand way whose MRU bit is clear
// (the touch saturation rule guarantees one exists; the fallback covers a
// never-touched set only).
//
//popt:hot
func (p *BitPLRU) Victim(set int, _ []Line, _ mem.Access) int {
	if free := ^p.mru[set] & p.demand; free != 0 {
		return bits.TrailingZeros64(free)
	}
	return p.g.ReservedWays
}
