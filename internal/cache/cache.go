// Package cache is a trace-driven, multi-level, set-associative cache
// hierarchy simulator with pluggable replacement policies. It plays the
// role of the Pin-based cache simulator the paper uses for all locality
// results: kernels feed it the logical memory reference stream and it
// reports per-level hit/miss statistics.
//
// The package provides the baseline policy zoo the paper compares against —
// LRU, Bit-PLRU, Random, SRRIP/BRRIP/DRRIP, SHiP-PC, SHiP-Mem, Hawkeye and
// GRASP — while the paper's own T-OPT and P-OPT policies live in
// internal/core and plug into the same Policy interface.
package cache

import (
	"fmt"

	"popt/internal/mem"
)

// Line is one cache line's bookkeeping. Addr is the full line-aligned
// address (a simulator convenience standing in for tag+index).
type Line struct {
	Valid bool
	Dirty bool
	Addr  uint64
	PC    uint16
}

// Geometry describes a cache level to a policy at bind time.
type Geometry struct {
	Sets int
	Ways int
	// ReservedWays [0, ReservedWays) never hold demand data; P-OPT pins
	// Rereference Matrix columns there. Victim must not return them.
	ReservedWays int
}

// Policy decides replacement within one cache level. Implementations keep
// per-line metadata sized at Bind time. The Level calls OnHit for every
// hit, Victim+OnEvict+OnFill for every miss fill (Victim is skipped when an
// invalid way exists), all with the triggering access.
type Policy interface {
	Name() string
	Bind(g Geometry)
	OnHit(set, way int, acc mem.Access)
	OnFill(set, way int, acc mem.Access)
	// OnEvict is called just before a valid line at (set, way) is replaced.
	OnEvict(set, way int)
	// Victim selects the way to replace in set; every way in
	// [ReservedWays, Ways) holds a valid line when called. lines aliases
	// the set's storage and must not be modified.
	Victim(set int, lines []Line, acc mem.Access) int
}

// Stats accumulates per-level counters.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
}

// MissRate returns Misses/Accesses (0 when idle).
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Accesses += other.Accesses
	s.Hits += other.Hits
	s.Misses += other.Misses
	s.Evictions += other.Evictions
	s.Writebacks += other.Writebacks
}

// Level is one set-associative cache level.
type Level struct {
	Name  string
	sets  int
	ways  int
	resvd int
	lines []Line // sets*ways, row-major by set
	pol   Policy
	Stats Stats
}

// NewLevel builds a level of the given total size with the given
// associativity and policy. The set count need not be a power of two
// (the paper's 24 MB/16-way LLC has 24576 sets; its footnote 3 gives the
// modulo mapping for non-power-of-two set counts, which is used here).
func NewLevel(name string, sizeBytes, ways int, pol Policy) *Level {
	sets := sizeBytes / (ways * mem.LineSize)
	if sets <= 0 {
		panic(fmt.Sprintf("cache %s: nonpositive set count (size=%d ways=%d)", name, sizeBytes, ways))
	}
	l := &Level{Name: name, sets: sets, ways: ways, lines: make([]Line, sets*ways), pol: pol}
	pol.Bind(Geometry{Sets: sets, Ways: ways})
	return l
}

// Sets returns the number of sets.
func (l *Level) Sets() int { return l.sets }

// Ways returns the associativity.
func (l *Level) Ways() int { return l.ways }

// ReservedWays returns how many ways are reserved for metadata.
func (l *Level) ReservedWays() int { return l.resvd }

// Reserve removes the first n ways from demand use (Intel CAT-style way
// partitioning, used by P-OPT to pin Rereference Matrix columns). Any
// demand lines currently in reserved ways are invalidated; dirty ones are
// returned so the caller can write them back (a real CAT repartition
// flushes displaced dirty lines to the next level — dropping them would
// silently lose stores). Evicted valid lines count as evictions.
// The policy is re-bound with the new geometry.
func (l *Level) Reserve(n int) (dirty []Line) {
	if n < 0 || n >= l.ways {
		panic(fmt.Sprintf("cache %s: cannot reserve %d of %d ways", l.Name, n, l.ways))
	}
	l.resvd = n
	for s := 0; s < l.sets; s++ {
		for w := 0; w < n; w++ {
			ln := &l.lines[s*l.ways+w]
			if ln.Valid {
				l.Stats.Evictions++
				if ln.Dirty {
					dirty = append(dirty, *ln)
					l.Stats.Writebacks++
				}
			}
			*ln = Line{}
		}
	}
	l.pol.Bind(Geometry{Sets: l.sets, Ways: l.ways, ReservedWays: n})
	return dirty
}

// Policy returns the bound replacement policy.
func (l *Level) Policy() Policy { return l.pol }

// SetIndex maps a line address to its set.
func (l *Level) SetIndex(lineAddr uint64) int {
	return int((lineAddr >> mem.LineShift) % uint64(l.sets))
}

// set returns the slice of ways for set s.
func (l *Level) set(s int) []Line { return l.lines[s*l.ways : (s+1)*l.ways] }

// Lookup probes for the line of acc without updating statistics or
// replacement state; it reports presence (used by writeback handling).
//
//popt:hot
func (l *Level) Lookup(lineAddr uint64) (set, way int, ok bool) {
	set = l.SetIndex(lineAddr)
	ws := l.set(set)
	for w := l.resvd; w < l.ways; w++ {
		if ws[w].Valid && ws[w].Addr == lineAddr {
			return set, w, true
		}
	}
	return set, -1, false
}

// Access performs a demand access. It returns true on hit. On miss the
// caller is responsible for filling (after resolving lower levels).
//
//popt:hot
func (l *Level) Access(acc mem.Access) bool {
	l.Stats.Accesses++
	la := acc.LineAddr()
	set, way, ok := l.Lookup(la)
	if ok {
		l.Stats.Hits++
		if acc.Write {
			l.set(set)[way].Dirty = true
		}
		l.pol.OnHit(set, way, acc)
		return true
	}
	l.Stats.Misses++
	return false
}

// Fill installs the line of acc, returning the evicted line if a valid one
// was displaced.
//
//popt:hot
func (l *Level) Fill(acc mem.Access) (evicted Line, wasEvicted bool) {
	la := acc.LineAddr()
	set := l.SetIndex(la)
	ws := l.set(set)
	way := -1
	for w := l.resvd; w < l.ways; w++ {
		if !ws[w].Valid {
			way = w
			break
		}
	}
	if way < 0 {
		way = l.pol.Victim(set, ws, acc)
		if way < l.resvd || way >= l.ways {
			l.badVictim(way)
		}
		evicted, wasEvicted = ws[way], true
		l.Stats.Evictions++
		l.pol.OnEvict(set, way)
	}
	ws[way] = Line{Valid: true, Dirty: acc.Write, Addr: la, PC: acc.PC}
	l.pol.OnFill(set, way, acc)
	return evicted, wasEvicted
}

// badVictim panics with the invalid-victim message. The panic (and its fmt
// boxing) lives here rather than in Fill so nothing escapes on Fill's hot
// path and the hot-path baseline stays escape-free; noinline stops the
// compiler from folding the boxing back into the caller.
//
//go:noinline
func (l *Level) badVictim(way int) {
	panic(fmt.Sprintf("cache %s: policy %s returned invalid victim way %d (reserved=%d ways=%d)",
		l.Name, l.pol.Name(), way, l.resvd, l.ways))
}

// MarkDirty sets the dirty bit if the line is present, reporting presence.
// Used to sink writebacks from an upper level.
func (l *Level) MarkDirty(lineAddr uint64) bool {
	set, way, ok := l.Lookup(lineAddr)
	if ok {
		l.set(set)[way].Dirty = true
		l.Stats.Writebacks++
	}
	return ok
}

// Invalidate drops the line if present, returning whether it was dirty.
func (l *Level) Invalidate(lineAddr uint64) (dirty, present bool) {
	set, way, ok := l.Lookup(lineAddr)
	if !ok {
		return false, false
	}
	ws := l.set(set)
	dirty = ws[way].Dirty
	ws[way] = Line{}
	return dirty, true
}

// Occupancy returns the number of valid demand lines (diagnostics/tests).
func (l *Level) Occupancy() int {
	n := 0
	for i := range l.lines {
		if l.lines[i].Valid {
			n++
		}
	}
	return n
}

// Flush invalidates every line and resets nothing else (stats retained).
func (l *Level) Flush() {
	for i := range l.lines {
		l.lines[i] = Line{}
	}
}
