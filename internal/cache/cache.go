// Package cache is a trace-driven, multi-level, set-associative cache
// hierarchy simulator with pluggable replacement policies. It plays the
// role of the Pin-based cache simulator the paper uses for all locality
// results: kernels feed it the logical memory reference stream and it
// reports per-level hit/miss statistics.
//
// The package provides the baseline policy zoo the paper compares against —
// LRU, Bit-PLRU, Random, SRRIP/BRRIP/DRRIP, SHiP-PC, SHiP-Mem, Hawkeye and
// GRASP — while the paper's own T-OPT and P-OPT policies live in
// internal/core and plug into the same Policy interface.
package cache

import (
	"fmt"
	"math/bits"

	"popt/internal/mem"
)

// Line is one cache line's bookkeeping. Addr is the full line-aligned
// address (a simulator convenience standing in for tag+index).
type Line struct {
	Valid bool
	Dirty bool
	Addr  uint64
	PC    uint16
}

// Geometry describes a cache level to a policy at bind time.
type Geometry struct {
	Sets int
	Ways int
	// ReservedWays [0, ReservedWays) never hold demand data; P-OPT pins
	// Rereference Matrix columns there. Victim must not return them.
	ReservedWays int
}

// Policy decides replacement within one cache level. Implementations keep
// per-line metadata sized at Bind time. The Level calls OnHit for every
// hit, Victim+OnEvict+OnFill for every miss fill (Victim is skipped when an
// invalid way exists), all with the triggering access.
type Policy interface {
	Name() string
	Bind(g Geometry)
	OnHit(set, way int, acc mem.Access)
	OnFill(set, way int, acc mem.Access)
	// OnEvict is called just before a valid line at (set, way) is replaced.
	OnEvict(set, way int)
	// Victim selects the way to replace in set; every way in
	// [ReservedWays, Ways) holds a valid line when called. lines aliases
	// the set's storage and must not be modified.
	Victim(set int, lines []Line, acc mem.Access) int
}

// Stats accumulates per-level counters.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
}

// MissRate returns Misses/Accesses (0 when idle).
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Accesses += other.Accesses
	s.Hits += other.Hits
	s.Misses += other.Misses
	s.Evictions += other.Evictions
	s.Writebacks += other.Writebacks
}

// tagSentinel marks an invalid or reserved way in the SoA tag index. Every
// probe key is a line-aligned address (low LineShift bits zero), so the
// all-ones pattern can never equal a real tag and Lookup's scan needs no
// separate validity branch.
const tagSentinel = ^uint64(0)

// Level is one set-associative cache level.
//
// Storage is kept in two synchronized forms. The canonical form is lines,
// an array-of-structs that policies borrow in Victim (the borrow contract
// enforced by policycontract/borrowflow/NewCheckedPolicy is expressed over
// []Line and is untouched by the datapath layout). The probe path never
// reads it: a structure-of-arrays index — tags, holding each way's
// line-aligned address or tagSentinel, plus per-set valid/dirty bitmasks —
// serves Lookup with a single-compare scan over a contiguous uint64 slice,
// Fill's free-way pick with one TrailingZeros64, and Occupancy/Reserve
// scans with popcounts. Every mutation (Fill, Invalidate, Reserve, Flush,
// dirty-bit updates) writes both forms.
type Level struct {
	Name  string
	sets  int
	ways  int
	resvd int
	lines []Line   // canonical AoS storage, sets*ways, row-major by set
	tags  []uint64 // SoA index: Addr of valid demand ways, else tagSentinel
	valid []uint64 // per-set way bitmask: bit w set iff way w holds a line
	dirty []uint64 // per-set way bitmask: bit w set iff way w is dirty
	// demand masks ways [resvd, ways): the ways Fill may allocate into.
	demand uint64
	// setMask is sets-1 when the set count is a power of two (the L1/L2
	// geometries); the all-ones sentinel selects the fastmod path instead,
	// covering general counts like the paper LLC's 24576 sets.
	setMask uint64
	// setDiv strength-reduces SetIndex's modulo by a non-power-of-two set
	// count to a precomputed Lemire reciprocal.
	setDiv mem.Divider
	pol    Policy
	// plru is non-nil when pol is the fixed L1/L2 Bit-PLRU, devirtualizing
	// (and inlining) its callbacks on the access path. Wrapped policies
	// (NewCheckedPolicy) fall back to the interface calls.
	plru  *BitPLRU
	Stats Stats
}

// lowWays returns the bitmask of ways [0, n).
func lowWays(n int) uint64 { return ^uint64(0) >> (64 - uint(n)) }

// NewLevel builds a level of the given total size with the given
// associativity and policy. The set count need not be a power of two
// (the paper's 24 MB/16-way LLC has 24576 sets; its footnote 3 gives the
// modulo mapping for non-power-of-two set counts, which is used here).
func NewLevel(name string, sizeBytes, ways int, pol Policy) *Level {
	sets := sizeBytes / (ways * mem.LineSize)
	if sets <= 0 {
		panic(fmt.Sprintf("cache %s: nonpositive set count (size=%d ways=%d)", name, sizeBytes, ways))
	}
	if ways > 64 {
		panic(fmt.Sprintf("cache %s: associativity %d exceeds the 64-way bitmask datapath", name, ways))
	}
	l := &Level{
		Name:    name,
		sets:    sets,
		ways:    ways,
		lines:   make([]Line, sets*ways),
		tags:    make([]uint64, sets*ways),
		valid:   make([]uint64, sets),
		dirty:   make([]uint64, sets),
		demand:  lowWays(ways),
		setMask: ^uint64(0),
		setDiv:  mem.NewDivider(uint64(sets)),
		pol:     pol,
	}
	if sets&(sets-1) == 0 {
		l.setMask = uint64(sets - 1)
	}
	if bp, ok := pol.(*BitPLRU); ok {
		l.plru = bp
	}
	for i := range l.tags {
		l.tags[i] = tagSentinel
	}
	pol.Bind(Geometry{Sets: sets, Ways: ways})
	return l
}

// Sets returns the number of sets.
func (l *Level) Sets() int { return l.sets }

// Ways returns the associativity.
func (l *Level) Ways() int { return l.ways }

// ReservedWays returns how many ways are reserved for metadata.
func (l *Level) ReservedWays() int { return l.resvd }

// Reserve removes the first n ways from demand use (Intel CAT-style way
// partitioning, used by P-OPT to pin Rereference Matrix columns). Any
// demand lines currently in reserved ways are invalidated; dirty ones are
// returned so the caller can write them back (a real CAT repartition
// flushes displaced dirty lines to the next level — dropping them would
// silently lose stores). Evicted valid lines count as evictions.
// The policy is re-bound with the new geometry.
func (l *Level) Reserve(n int) (dirty []Line) {
	if n < 0 || n >= l.ways {
		panic(fmt.Sprintf("cache %s: cannot reserve %d of %d ways", l.Name, n, l.ways))
	}
	l.resvd = n
	l.demand = lowWays(l.ways) &^ lowWays(n)
	resMask := lowWays(n)
	for s := 0; s < l.sets; s++ {
		occupied := l.valid[s] & resMask
		l.Stats.Evictions += uint64(bits.OnesCount64(occupied))
		for m := l.dirty[s] & occupied; m != 0; m &= m - 1 {
			w := bits.TrailingZeros64(m)
			dirty = append(dirty, l.lines[s*l.ways+w])
			l.Stats.Writebacks++
		}
		for w := 0; w < n; w++ {
			l.lines[s*l.ways+w] = Line{}
			l.tags[s*l.ways+w] = tagSentinel
		}
		l.valid[s] &^= resMask
		l.dirty[s] &^= resMask
	}
	l.pol.Bind(Geometry{Sets: l.sets, Ways: l.ways, ReservedWays: n})
	return dirty
}

// Policy returns the bound replacement policy.
func (l *Level) Policy() Policy { return l.pol }

// SetIndex maps a line address to its set: a mask when the set count is a
// power of two, the fastmod reciprocal otherwise. The branch is perfectly
// predicted per level.
//
//popt:hot
func (l *Level) SetIndex(lineAddr uint64) int {
	if l.setMask != ^uint64(0) {
		return int((lineAddr >> mem.LineShift) & l.setMask)
	}
	return int(l.setDiv.Mod(lineAddr >> mem.LineShift))
}

// set returns the slice of ways for set s.
func (l *Level) set(s int) []Line { return l.lines[s*l.ways : (s+1)*l.ways] }

// probe scans set's tag row for lineAddr, returning the way or -1. The
// scan covers the whole row: reserved and invalid ways hold tagSentinel,
// which no line-aligned address can equal, so each way costs exactly one
// compare. Kept as a leaf under the inlining budget so Access, Fill,
// MarkDirty and Invalidate absorb it (and SetIndex) without a call.
func (l *Level) probe(set int, lineAddr uint64) int {
	base := set * l.ways
	tags := l.tags[base : base+l.ways]
	for w := range tags {
		if tags[w] == lineAddr {
			return w
		}
	}
	return -1
}

// Lookup probes for the line with the given line-aligned address without
// updating statistics or replacement state; it reports presence (used by
// writeback handling).
//
//popt:hot
func (l *Level) Lookup(lineAddr uint64) (set, way int, ok bool) {
	set = l.SetIndex(lineAddr)
	way = l.probe(set, lineAddr)
	return set, way, way >= 0
}

// Access performs a demand access. It returns true on hit. On miss the
// caller is responsible for filling (after resolving lower levels).
//
//popt:hot
func (l *Level) Access(acc mem.Access) bool {
	l.Stats.Accesses++
	la := acc.LineAddr()
	set := l.SetIndex(la)
	if way := l.probe(set, la); way >= 0 {
		l.Stats.Hits++
		if acc.Write {
			l.lines[set*l.ways+way].Dirty = true
			l.dirty[set] |= 1 << uint(way)
		}
		if l.plru != nil {
			l.plru.OnHit(set, way, acc)
		} else {
			l.pol.OnHit(set, way, acc)
		}
		return true
	}
	l.Stats.Misses++
	return false
}

// Fill installs the line of acc, returning the evicted line if a valid one
// was displaced. A free way, when one exists, is found with a single
// TrailingZeros64 over the set's inverted valid mask (lowest free demand
// way first, matching the AoS scan this replaced).
//
//popt:hot
func (l *Level) Fill(acc mem.Access) (evicted Line, wasEvicted bool) {
	la := acc.LineAddr()
	return l.fillAt(l.SetIndex(la), la, acc)
}

// badVictim panics with the invalid-victim message. The panic (and its fmt
// boxing) lives here rather than in Fill so nothing escapes on Fill's hot
// path and the hot-path baseline stays escape-free; noinline stops the
// compiler from folding the boxing back into the caller.
//
//go:noinline
func (l *Level) badVictim(way int) {
	panic(fmt.Sprintf("cache %s: policy %s returned invalid victim way %d (reserved=%d ways=%d)",
		l.Name, l.pol.Name(), way, l.resvd, l.ways))
}

// MarkDirty sets the dirty bit if the line is present, reporting presence.
// Used to sink writebacks from an upper level.
//
//popt:hot
func (l *Level) MarkDirty(lineAddr uint64) bool {
	set := l.SetIndex(lineAddr)
	way := l.probe(set, lineAddr)
	if way < 0 {
		return false
	}
	l.lines[set*l.ways+way].Dirty = true
	l.dirty[set] |= 1 << uint(way)
	l.Stats.Writebacks++
	return true
}

// Invalidate drops the line if present, returning whether it was dirty.
func (l *Level) Invalidate(lineAddr uint64) (dirty, present bool) {
	set := l.SetIndex(lineAddr)
	way := l.probe(set, lineAddr)
	if way < 0 {
		return false, false
	}
	dirty = l.dirty[set]&(1<<uint(way)) != 0
	l.lines[set*l.ways+way] = Line{}
	l.tags[set*l.ways+way] = tagSentinel
	l.valid[set] &^= 1 << uint(way)
	l.dirty[set] &^= 1 << uint(way)
	return dirty, true
}

// Occupancy returns the number of valid demand lines (diagnostics/tests):
// a popcount over the per-set valid masks rather than a walk of the line
// array.
func (l *Level) Occupancy() int {
	n := 0
	for _, v := range l.valid {
		n += bits.OnesCount64(v)
	}
	return n
}

// Flush invalidates every line (stats retained) and re-binds the policy so
// replacement metadata for the dropped lines — LRU stacks, RRPVs, SHiP
// outcome bits — does not survive into the empty cache. Without the
// re-bind a post-flush fill could inherit the flushed working set's
// recency state.
func (l *Level) Flush() {
	for i := range l.lines {
		l.lines[i] = Line{}
	}
	for i := range l.tags {
		l.tags[i] = tagSentinel
	}
	for s := range l.valid {
		l.valid[s] = 0
		l.dirty[s] = 0
	}
	l.pol.Bind(Geometry{Sets: l.sets, Ways: l.ways, ReservedWays: l.resvd})
}
