package cache

import "popt/internal/mem"

// SDBP is Sampling Dead Block Prediction (Khan, Tian & Jiménez, MICRO
// 2010), one of the dead-block predictors the paper's related work covers
// (Section VIII: P-OPT identifies dead lines more accurately because it
// has next references rather than PC heuristics). A small set sampler
// observes which PCs' blocks die after their last touch; a skewed
// saturating-counter predictor then marks predicted-dead lines as
// preferred victims in the main cache.
type SDBP struct {
	g Geometry
	// Predictor: three skewed tables of 2-bit counters indexed by hashes
	// of the last-touch PC; predicted dead when the summed vote passes a
	// threshold.
	tables [3][]uint8
	// Per-line state in the main cache.
	lastPC []uint16
	dead   []bool
	// Sampler: a handful of sampled sets with their own LRU stacks and
	// last-touch PCs; an eviction of an untouched-since line trains
	// "dead", a hit trains "live".
	samplerSets  map[int]*sdbpSampler
	samplerPitch int
	// lru provides the baseline victim ordering among non-dead lines.
	lru *LRU
}

const (
	sdbpTableSize = 1 << 12
	sdbpThreshold = 8 // of max 9 (3 tables x 3)
)

type sdbpSampler struct {
	addrs []uint64
	pcs   []uint16
	ts    []uint64
	clock uint64
}

// NewSDBP returns an SDBP policy with 1-in-16 set sampling.
func NewSDBP() *SDBP { return &SDBP{samplerPitch: 16, lru: NewLRU()} }

// Name implements Policy.
func (p *SDBP) Name() string { return "SDBP" }

// Bind implements Policy.
func (p *SDBP) Bind(g Geometry) {
	p.g = g
	for i := range p.tables {
		if p.tables[i] == nil {
			p.tables[i] = make([]uint8, sdbpTableSize)
		}
	}
	p.lastPC = make([]uint16, g.Sets*g.Ways)
	p.dead = make([]bool, g.Sets*g.Ways)
	p.samplerSets = make(map[int]*sdbpSampler)
	p.lru.Bind(g)
}

func (p *SDBP) hash(pc uint16, t int) int {
	x := uint32(pc) * [3]uint32{0x9E37, 0x85EB, 0xC2B2}[t]
	return int(x>>4) % sdbpTableSize
}

func (p *SDBP) predictDead(pc uint16) bool {
	sum := 0
	for t := range p.tables {
		sum += int(p.tables[t][p.hash(pc, t)])
	}
	return sum >= sdbpThreshold
}

func (p *SDBP) train(pc uint16, dead bool) {
	for t := range p.tables {
		i := p.hash(pc, t)
		if dead {
			if p.tables[t][i] < 3 {
				p.tables[t][i]++
			}
		} else if p.tables[t][i] > 0 {
			p.tables[t][i]--
		}
	}
}

// sampler returns the sampler for a sampled set (nil otherwise).
func (p *SDBP) sampler(set int) *sdbpSampler {
	if set%p.samplerPitch != 0 {
		return nil
	}
	s := p.samplerSets[set]
	if s == nil {
		w := p.g.Ways
		s = &sdbpSampler{
			addrs: make([]uint64, w), pcs: make([]uint16, w),
			ts: make([]uint64, w),
		}
		p.samplerSets[set] = s
	}
	return s
}

// observe feeds the sampler: hits train "live" for the previous touch's
// PC; evictions of lines whose last touch was never followed train "dead".
func (p *SDBP) observe(set int, acc mem.Access, train func(pc uint16, dead bool)) {
	s := p.sampler(set)
	if s == nil {
		return
	}
	la := acc.LineAddr()
	s.clock++
	for w := range s.addrs {
		if s.addrs[w] == la {
			// Re-touch: the previous touch was not the last -> live.
			train(s.pcs[w], false)
			s.pcs[w] = acc.PC
			s.ts[w] = s.clock
			return
		}
	}
	// Miss in sampler: evict its LRU entry; its last touch was final.
	victim, oldest := 0, s.ts[0]
	for w := 1; w < len(s.addrs); w++ {
		if s.ts[w] < oldest {
			victim, oldest = w, s.ts[w]
		}
	}
	if s.addrs[victim] != 0 {
		train(s.pcs[victim], true)
	}
	s.addrs[victim] = la
	s.pcs[victim] = acc.PC
	s.ts[victim] = s.clock
}

// OnHit implements Policy.
func (p *SDBP) OnHit(set, way int, acc mem.Access) {
	p.observe(set, acc, p.train)
	idx := set*p.g.Ways + way
	p.lastPC[idx] = acc.PC
	p.dead[idx] = p.predictDead(acc.PC)
	p.lru.OnHit(set, way, acc)
}

// OnFill implements Policy.
func (p *SDBP) OnFill(set, way int, acc mem.Access) {
	p.observe(set, acc, p.train)
	idx := set*p.g.Ways + way
	p.lastPC[idx] = acc.PC
	p.dead[idx] = p.predictDead(acc.PC)
	p.lru.OnFill(set, way, acc)
}

// OnEvict implements Policy.
func (p *SDBP) OnEvict(set, way int) { p.lru.OnEvict(set, way) }

// Victim implements Policy: predicted-dead lines first, then LRU.
func (p *SDBP) Victim(set int, lines []Line, acc mem.Access) int {
	base := set * p.g.Ways
	for w := p.g.ReservedWays; w < p.g.Ways; w++ {
		if p.dead[base+w] {
			return w
		}
	}
	return p.lru.Victim(set, lines, acc)
}
