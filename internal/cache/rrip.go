package cache

import (
	"math/rand"

	"popt/internal/mem"
)

// This file implements the RRIP family (Jaleel et al., ISCA 2010). DRRIP is
// the paper's representative high-performance baseline: server-class Intel
// parts ship a DRRIP variant, and the paper reports all headline numbers
// relative to it.

// rripBase holds RRPV state shared by SRRIP, BRRIP and DRRIP.
type rripBase struct {
	g    Geometry
	bits uint  // RRPV width (2 for the classic policy)
	max  uint8 // distant value = 2^bits - 1
	rrpv []uint8
}

func (p *rripBase) Bind(g Geometry) {
	p.g = g
	p.max = uint8(1<<p.bits - 1)
	p.rrpv = make([]uint8, g.Sets*g.Ways)
	for i := range p.rrpv {
		p.rrpv[i] = p.max
	}
}

// victim finds the first way at distant RRPV, aging the set until one
// exists.
//
//popt:hot
func (p *rripBase) victim(set int) int {
	base := set * p.g.Ways
	for {
		for w := p.g.ReservedWays; w < p.g.Ways; w++ {
			if p.rrpv[base+w] == p.max {
				return w
			}
		}
		for w := p.g.ReservedWays; w < p.g.Ways; w++ {
			p.rrpv[base+w]++
		}
	}
}

func (p *rripBase) promote(set, way int) { p.rrpv[set*p.g.Ways+way] = 0 }

func (p *rripBase) insert(set, way int, v uint8) { p.rrpv[set*p.g.Ways+way] = v }

// SRRIP inserts at long re-reference interval (max-1) and promotes to 0 on
// hit, giving scan resistance.
type SRRIP struct{ rripBase }

// NewSRRIP returns a 2-bit SRRIP policy.
func NewSRRIP() *SRRIP {
	p := &SRRIP{}
	p.bits = 2
	return p
}

// Name implements Policy.
func (p *SRRIP) Name() string { return "SRRIP" }

// OnHit implements Policy.
func (p *SRRIP) OnHit(set, way int, _ mem.Access) { p.promote(set, way) }

// OnFill implements Policy.
func (p *SRRIP) OnFill(set, way int, _ mem.Access) { p.insert(set, way, p.max-1) }

// OnEvict implements Policy.
func (p *SRRIP) OnEvict(int, int) {}

// Victim implements Policy.
func (p *SRRIP) Victim(set int, _ []Line, _ mem.Access) int { return p.victim(set) }

// BRRIP inserts at distant RRPV most of the time and long RRPV with
// probability 1/32, giving thrash resistance.
type BRRIP struct {
	rripBase
	rng *rand.Rand
}

// NewBRRIP returns a 2-bit BRRIP policy.
func NewBRRIP(seed int64) *BRRIP {
	p := &BRRIP{rng: rand.New(rand.NewSource(seed))}
	p.bits = 2
	return p
}

// Name implements Policy.
func (p *BRRIP) Name() string { return "BRRIP" }

// OnHit implements Policy.
func (p *BRRIP) OnHit(set, way int, _ mem.Access) { p.promote(set, way) }

// OnFill implements Policy.
func (p *BRRIP) OnFill(set, way int, _ mem.Access) {
	v := p.max
	if p.rng.Intn(32) == 0 {
		v = p.max - 1
	}
	p.insert(set, way, v)
}

// OnEvict implements Policy.
func (p *BRRIP) OnEvict(int, int) {}

// Victim implements Policy.
func (p *BRRIP) Victim(set int, _ []Line, _ mem.Access) int { return p.victim(set) }

// DRRIP set-duels SRRIP against BRRIP: a handful of leader sets are pinned
// to each policy and a saturating PSEL counter steers follower sets to
// whichever leader is missing less.
type DRRIP struct {
	rripBase
	rng       *rand.Rand
	psel      int
	pselMax   int
	duelPitch int // every duelPitch-th set leads SRRIP; the next leads BRRIP
}

// NewDRRIP returns a 2-bit DRRIP with a 10-bit PSEL and 32+32 leader sets
// (for typical set counts).
func NewDRRIP(seed int64) *DRRIP {
	p := &DRRIP{rng: rand.New(rand.NewSource(seed)), pselMax: 1023, duelPitch: 32}
	p.bits = 2
	p.psel = 512
	return p
}

// Name implements Policy.
func (p *DRRIP) Name() string { return "DRRIP" }

// leader classifies a set: +1 SRRIP leader, -1 BRRIP leader, 0 follower.
func (p *DRRIP) leader(set int) int {
	switch set % p.duelPitch {
	case 0:
		return 1
	case 1:
		return -1
	}
	return 0
}

// useBRRIP reports the policy a set should use for insertion.
func (p *DRRIP) useBRRIP(set int) bool {
	switch p.leader(set) {
	case 1:
		return false
	case -1:
		return true
	}
	return p.psel > p.pselMax/2
}

// OnHit implements Policy.
func (p *DRRIP) OnHit(set, way int, _ mem.Access) { p.promote(set, way) }

// OnFill implements Policy. A fill implies a miss: leader-set misses move
// PSEL toward the rival policy.
func (p *DRRIP) OnFill(set, way int, _ mem.Access) {
	switch p.leader(set) {
	case 1: // SRRIP leader missed: discredit SRRIP
		if p.psel < p.pselMax {
			p.psel++
		}
	case -1: // BRRIP leader missed: discredit BRRIP
		if p.psel > 0 {
			p.psel--
		}
	}
	if p.useBRRIP(set) {
		v := p.max
		if p.rng.Intn(32) == 0 {
			v = p.max - 1
		}
		p.insert(set, way, v)
	} else {
		p.insert(set, way, p.max-1)
	}
}

// OnEvict implements Policy.
func (p *DRRIP) OnEvict(int, int) {}

// Victim implements Policy.
func (p *DRRIP) Victim(set int, _ []Line, _ mem.Access) int { return p.victim(set) }

// RRPV exposes a line's re-reference prediction value so higher-level
// policies (P-OPT, T-OPT) can use DRRIP state to settle next-reference
// ties, as Section V-C prescribes.
//
//popt:hot
func (p *DRRIP) RRPV(set, way int) uint8 { return p.rrpv[set*p.g.Ways+way] }
