package cache

import "popt/internal/mem"

// Hawkeye (Jain & Lin, ISCA 2016; 2019 cache replacement championship
// winner) retroactively applies Belady's MIN to a sampled access history
// (OPTgen) and trains a PC-indexed predictor with the outcome: PCs whose
// past accesses would have hit under OPT are "cache-friendly" and insert
// near-MRU; the rest insert distant. Graph kernels defeat it because one PC
// touches both hot and cold vertices (Section II-B).

const (
	hawkeyeRRPVBits  = 3
	hawkeyeMaxRRPV   = 1<<hawkeyeRRPVBits - 1
	hawkeyePredSize  = 1 << 13
	hawkeyePredMax   = 7 // 3-bit counters
	hawkeyeSamplePct = 8 // every 8th set is sampled
	hawkeyeHistScale = 8 // history window = 8x ways accesses per sampled set
)

// hawkeyeSample is the per-sampled-set OPTgen state: a sliding occupancy
// vector over recent accesses plus the last access time/PC per line.
type hawkeyeSample struct {
	time      uint64            // accesses seen by this set
	occupancy []uint8           // ring buffer indexed by time % len
	lastTime  map[uint64]uint64 // line addr -> last access time
	lastPC    map[uint64]uint16 // line addr -> PC of last access
}

// Hawkeye implements Policy.
type Hawkeye struct {
	g       Geometry
	rrpv    []uint8
	linePC  []uint16
	lineFr  []bool // inserted as cache-friendly
	pred    []uint8
	samples map[int]*hawkeyeSample
	window  uint64
}

// NewHawkeye returns a Hawkeye policy.
func NewHawkeye() *Hawkeye { return &Hawkeye{} }

// Name implements Policy.
func (p *Hawkeye) Name() string { return "Hawkeye" }

// Bind implements Policy.
func (p *Hawkeye) Bind(g Geometry) {
	p.g = g
	p.rrpv = make([]uint8, g.Sets*g.Ways)
	for i := range p.rrpv {
		p.rrpv[i] = hawkeyeMaxRRPV
	}
	p.linePC = make([]uint16, g.Sets*g.Ways)
	p.lineFr = make([]bool, g.Sets*g.Ways)
	if p.pred == nil {
		p.pred = make([]uint8, hawkeyePredSize)
		for i := range p.pred {
			p.pred[i] = hawkeyePredMax/2 + 1 // weakly friendly
		}
	}
	p.samples = make(map[int]*hawkeyeSample)
	p.window = uint64(hawkeyeHistScale * (g.Ways - g.ReservedWays))
	if p.window == 0 {
		p.window = 8
	}
}

func (p *Hawkeye) predIndex(pc uint16) int { return int(pc) % hawkeyePredSize }

func (p *Hawkeye) friendly(pc uint16) bool { return p.pred[p.predIndex(pc)] > hawkeyePredMax/2 }

func (p *Hawkeye) train(pc uint16, hit bool) {
	i := p.predIndex(pc)
	if hit {
		if p.pred[i] < hawkeyePredMax {
			p.pred[i]++
		}
	} else if p.pred[i] > 0 {
		p.pred[i]--
	}
}

// observe runs OPTgen for sampled sets: on a reuse of lineAddr, decide
// whether Belady's MIN would have kept it across the interval and train the
// PC that loaded it accordingly.
func (p *Hawkeye) observe(set int, acc mem.Access) {
	if set%hawkeyeSamplePct != 0 {
		return
	}
	s := p.samples[set]
	if s == nil {
		s = &hawkeyeSample{
			occupancy: make([]uint8, p.window),
			lastTime:  make(map[uint64]uint64),
			lastPC:    make(map[uint64]uint16),
		}
		p.samples[set] = s
	}
	la := acc.LineAddr()
	now := s.time
	s.time++
	// Expire the slot we are about to reuse in the ring.
	s.occupancy[now%p.window] = 0
	capacity := uint8(p.g.Ways - p.g.ReservedWays)
	if t0, seen := s.lastTime[la]; seen && now-t0 < p.window {
		// Would OPT have hit? Only if every quantum in [t0, now) has spare
		// occupancy.
		optHit := true
		for t := t0; t < now; t++ {
			if s.occupancy[t%p.window] >= capacity {
				optHit = false
				break
			}
		}
		if optHit {
			for t := t0; t < now; t++ {
				s.occupancy[t%p.window]++
			}
		}
		p.train(s.lastPC[la], optHit)
	}
	s.lastTime[la] = now
	s.lastPC[la] = acc.PC
	// Garbage-collect entries older than the window occasionally. The
	// iteration order is immaterial: every expired entry is deleted and
	// no policy state is read or written here.
	if len(s.lastTime) > 4*int(p.window) {
		//lint:ordered
		for a, t := range s.lastTime {
			if now-t >= p.window {
				delete(s.lastTime, a)
				delete(s.lastPC, a)
			}
		}
	}
}

// OnHit implements Policy.
func (p *Hawkeye) OnHit(set, way int, acc mem.Access) {
	p.observe(set, acc)
	idx := set*p.g.Ways + way
	p.linePC[idx] = acc.PC
	if p.friendly(acc.PC) {
		p.rrpv[idx] = 0
		p.lineFr[idx] = true
	} else {
		p.rrpv[idx] = hawkeyeMaxRRPV
		p.lineFr[idx] = false
	}
}

// OnFill implements Policy: friendly lines insert at 0 and age their
// peers; averse lines insert distant.
func (p *Hawkeye) OnFill(set, way int, acc mem.Access) {
	p.observe(set, acc)
	idx := set*p.g.Ways + way
	p.linePC[idx] = acc.PC
	if p.friendly(acc.PC) {
		// Age other friendly lines to keep relative order.
		base := set * p.g.Ways
		for w := p.g.ReservedWays; w < p.g.Ways; w++ {
			if w != way && p.lineFr[base+w] && p.rrpv[base+w] < hawkeyeMaxRRPV-1 {
				p.rrpv[base+w]++
			}
		}
		p.rrpv[idx] = 0
		p.lineFr[idx] = true
	} else {
		p.rrpv[idx] = hawkeyeMaxRRPV
		p.lineFr[idx] = false
	}
}

// OnEvict implements Policy: evicting a friendly line that a PC loaded
// means the predictor overcommitted; detrain it.
func (p *Hawkeye) OnEvict(set, way int) {
	idx := set*p.g.Ways + way
	if p.lineFr[idx] {
		p.train(p.linePC[idx], false)
	}
}

// Victim implements Policy: prefer an averse (distant) line; otherwise the
// oldest friendly line.
func (p *Hawkeye) Victim(set int, _ []Line, _ mem.Access) int {
	base := set * p.g.Ways
	best, bestRRPV := -1, -1
	for w := p.g.ReservedWays; w < p.g.Ways; w++ {
		if int(p.rrpv[base+w]) > bestRRPV {
			best, bestRRPV = w, int(p.rrpv[base+w])
		}
	}
	return best
}
