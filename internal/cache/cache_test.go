package cache

import (
	"math/rand"
	"testing"

	"popt/internal/mem"
)

// acc builds a read access.
func acc(addr uint64) mem.Access { return mem.Access{Addr: addr} }

// accPC builds a read access with a PC.
func accPC(addr uint64, pc uint16) mem.Access { return mem.Access{Addr: addr, PC: pc} }

// write builds a write access.
func write(addr uint64) mem.Access { return mem.Access{Addr: addr, Write: true} }

// tinyLevel is a 4-set, 4-way cache (1 KB).
func tinyLevel(p Policy) *Level { return NewLevel("T", 4*4*mem.LineSize, 4, p) }

// lineInSet returns the i-th distinct line address mapping to set s of l.
func lineInSet(l *Level, s, i int) uint64 {
	return uint64(s+i*l.Sets()) * mem.LineSize
}

func TestLevelHitMiss(t *testing.T) {
	l := tinyLevel(NewLRU())
	a := acc(0x1000)
	if l.Access(a) {
		t.Fatal("cold access should miss")
	}
	l.Fill(a)
	if !l.Access(a) {
		t.Fatal("second access should hit")
	}
	if l.Stats.Accesses != 2 || l.Stats.Hits != 1 || l.Stats.Misses != 1 {
		t.Fatalf("stats = %+v", l.Stats)
	}
}

func TestLRUEvictsOldest(t *testing.T) {
	l := tinyLevel(NewLRU())
	// Fill set 0 with 4 lines, touching them in order.
	for i := 0; i < 4; i++ {
		a := acc(lineInSet(l, 0, i))
		l.Access(a)
		l.Fill(a)
	}
	// Touch line 0 to refresh it; line 1 is now LRU.
	l.Access(acc(lineInSet(l, 0, 0)))
	a := acc(lineInSet(l, 0, 4))
	l.Access(a)
	ev, was := l.Fill(a)
	if !was || ev.Addr != lineInSet(l, 0, 1) {
		t.Fatalf("evicted %#x, want line 1 %#x", ev.Addr, lineInSet(l, 0, 1))
	}
}

func TestBitPLRUNeverEvictsMRU(t *testing.T) {
	l := tinyLevel(NewBitPLRU())
	for i := 0; i < 4; i++ {
		a := acc(lineInSet(l, 0, i))
		l.Access(a)
		l.Fill(a)
	}
	mru := acc(lineInSet(l, 0, 3))
	l.Access(mru) // refresh way 3
	a := acc(lineInSet(l, 0, 4))
	l.Access(a)
	ev, was := l.Fill(a)
	if !was {
		t.Fatal("expected eviction")
	}
	if ev.Addr == mru.LineAddr() {
		t.Fatal("Bit-PLRU evicted the MRU line")
	}
}

func TestDirtyEvictionReported(t *testing.T) {
	l := tinyLevel(NewLRU())
	w := write(lineInSet(l, 1, 0))
	l.Access(w)
	l.Fill(w)
	for i := 1; i <= 4; i++ {
		a := acc(lineInSet(l, 1, i))
		l.Access(a)
		if ev, was := l.Fill(a); was {
			if ev.Addr != w.LineAddr() || !ev.Dirty {
				t.Fatalf("expected dirty eviction of %#x, got %+v", w.LineAddr(), ev)
			}
			return
		}
	}
	t.Fatal("no eviction occurred")
}

func TestReserveShrinksCapacity(t *testing.T) {
	l := tinyLevel(NewLRU())
	l.Reserve(2)
	// Only 2 ways usable per set now.
	for i := 0; i < 3; i++ {
		a := acc(lineInSet(l, 0, i))
		l.Access(a)
		l.Fill(a)
	}
	if got := l.Occupancy(); got != 2 {
		t.Fatalf("occupancy = %d, want 2 with 2 reserved ways", got)
	}
	// Victim must never be a reserved way: Fill panics otherwise, and the
	// loop above already exercised it.
	if l.ReservedWays() != 2 {
		t.Fatalf("ReservedWays = %d", l.ReservedWays())
	}
}

func TestReserveReturnsDisplacedDirtyLines(t *testing.T) {
	l := tinyLevel(NewLRU())
	// Warm every way of every set; make way 0's line of each set dirty by
	// writing it first (fills claim ways in order on a cold cache).
	for s := 0; s < l.Sets(); s++ {
		wr := write(lineInSet(l, s, 0))
		l.Access(wr)
		l.Fill(wr)
		for i := 1; i < l.Ways(); i++ {
			a := acc(lineInSet(l, s, i))
			l.Access(a)
			l.Fill(a)
		}
	}
	evBefore, wbBefore := l.Stats.Evictions, l.Stats.Writebacks
	dirty := l.Reserve(2)
	// Way 0 of each set held a dirty line; way 1 a clean one. Both were
	// displaced, only the dirty ones must come back.
	if len(dirty) != l.Sets() {
		t.Fatalf("Reserve returned %d dirty lines, want %d", len(dirty), l.Sets())
	}
	for _, ln := range dirty {
		if !ln.Valid || !ln.Dirty {
			t.Fatalf("Reserve returned a non-dirty line: %+v", ln)
		}
	}
	if got := l.Stats.Evictions - evBefore; got != uint64(2*l.Sets()) {
		t.Fatalf("Reserve counted %d evictions, want %d", got, 2*l.Sets())
	}
	if got := l.Stats.Writebacks - wbBefore; got != uint64(l.Sets()) {
		t.Fatalf("Reserve counted %d writebacks, want %d", got, l.Sets())
	}
	// A cold-cache Reserve displaces nothing.
	if extra := tinyLevel(NewLRU()).Reserve(2); len(extra) != 0 {
		t.Fatalf("cold Reserve returned %d dirty lines", len(extra))
	}
}

func TestHierarchyReserveLLCCountsDRAMWrites(t *testing.T) {
	h := NewHierarchy(Config{
		L1Size: 1 << 10, L1Ways: 4,
		L2Size: 1 << 10, L2Ways: 4,
		LLCSize: 4 * 4 * mem.LineSize, LLCWays: 4,
		LLCPolicy: func() Policy { return NewLRU() },
	})
	// Dirty one LLC line per set directly (writes through the hierarchy
	// would land in L1; fill the LLC level itself).
	for s := 0; s < h.LLC.Sets(); s++ {
		wr := write(lineInSet(h.LLC, s, 0))
		h.LLC.Access(wr)
		h.LLC.Fill(wr)
	}
	h.ReserveLLC(1)
	if h.DRAMWrites != uint64(h.LLC.Sets()) {
		t.Fatalf("DRAMWrites = %d after ReserveLLC, want %d", h.DRAMWrites, h.LLC.Sets())
	}
}

func TestAllPoliciesRespectReservedWays(t *testing.T) {
	policies := []func() Policy{
		func() Policy { return NewLRU() },
		func() Policy { return NewRandom(1) },
		func() Policy { return NewBitPLRU() },
		func() Policy { return NewSRRIP() },
		func() Policy { return NewBRRIP(1) },
		func() Policy { return NewDRRIP(1) },
		func() Policy { return NewSHiPPC() },
		func() Policy { return NewSHiPMem() },
		func() Policy { return NewHawkeye() },
		func() Policy { return NewGRASP(0, 1<<20, 1<<21) },
	}
	for _, mk := range policies {
		// NewCheckedPolicy additionally asserts the full Policy contract
		// (victim range, lines immutability, callback order) on every call.
		p := NewCheckedPolicy(mk())
		t.Run(p.Name(), func(t *testing.T) {
			l := tinyLevel(p)
			l.Reserve(2)
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 5000; i++ {
				a := accPC(uint64(rng.Intn(256))*mem.LineSize, uint16(rng.Intn(8)))
				if !l.Access(a) {
					l.Fill(a) // panics if the victim is reserved
				}
			}
			for s := 0; s < l.Sets(); s++ {
				for w := 0; w < 2; w++ {
					if _, _, ok := l.Lookup(lineInSet(l, s, 0)); ok && w < l.ReservedWays() {
						// Lookup skips reserved ways by construction; check
						// raw state instead.
						break
					}
				}
			}
		})
	}
}

func TestAllPoliciesBasicSanity(t *testing.T) {
	// Every policy must (a) hit on immediate re-reference, (b) survive a
	// random torture run, (c) not exceed capacity.
	policies := []func() Policy{
		func() Policy { return NewLRU() },
		func() Policy { return NewRandom(2) },
		func() Policy { return NewBitPLRU() },
		func() Policy { return NewSRRIP() },
		func() Policy { return NewBRRIP(2) },
		func() Policy { return NewDRRIP(2) },
		func() Policy { return NewSHiPPC() },
		func() Policy { return NewSHiPMem() },
		func() Policy { return NewHawkeye() },
		func() Policy { return NewGRASP(0, 64*mem.LineSize, 128*mem.LineSize) },
	}
	for _, mk := range policies {
		p := NewCheckedPolicy(mk())
		t.Run(p.Name(), func(t *testing.T) {
			l := NewLevel("S", 16*8*mem.LineSize, 8, p)
			rng := rand.New(rand.NewSource(99))
			for i := 0; i < 20000; i++ {
				a := accPC(uint64(rng.Intn(1024))*mem.LineSize, uint16(rng.Intn(16)))
				if !l.Access(a) {
					l.Fill(a)
				}
				if !l.Access(a) {
					t.Fatal("immediate re-reference must hit")
				}
			}
			if l.Occupancy() > l.Sets()*l.Ways() {
				t.Fatal("occupancy exceeds capacity")
			}
		})
	}
}

func TestSRRIPScanResistance(t *testing.T) {
	// A working set that fits plus a long scan: SRRIP should keep more of
	// the working set than LRU.
	run := func(p Policy) uint64 {
		l := NewLevel("S", 16*mem.LineSize, 16, p) // 1 set, 16 ways
		work := make([]mem.Access, 8)
		for i := range work {
			work[i] = acc(uint64(i) * mem.LineSize)
		}
		var hits uint64
		for round := 0; round < 200; round++ {
			// Two passes over the working set: the second promotes lines so
			// reuse is visible to RRIP state.
			for pass := 0; pass < 2; pass++ {
				for _, a := range work {
					if l.Access(a) {
						hits++
					} else {
						l.Fill(a)
					}
				}
			}
			// Scan 12 one-shot lines (enough to thrash LRU's 16 ways but
			// few enough that promoted SRRIP lines survive).
			for j := 0; j < 12; j++ {
				a := acc(uint64(1000+round*12+j) * mem.LineSize)
				if !l.Access(a) {
					l.Fill(a)
				}
			}
		}
		return hits
	}
	lruHits := run(NewLRU())
	srripHits := run(NewSRRIP())
	if srripHits <= lruHits {
		t.Errorf("SRRIP hits %d should exceed LRU hits %d under scanning", srripHits, lruHits)
	}
}

func TestBRRIPThrashResistance(t *testing.T) {
	// Cyclic working set slightly larger than the cache: LRU gets zero
	// hits; BRRIP keeps a subset resident.
	run := func(p Policy) uint64 {
		l := NewLevel("S", 16*mem.LineSize, 16, p)
		var hits uint64
		for round := 0; round < 300; round++ {
			for i := 0; i < 20; i++ { // 20 lines > 16 ways
				a := acc(uint64(i) * mem.LineSize)
				if l.Access(a) {
					hits++
				} else {
					l.Fill(a)
				}
			}
		}
		return hits
	}
	lruHits := run(NewLRU())
	brripHits := run(NewBRRIP(3))
	if brripHits <= lruHits+100 {
		t.Errorf("BRRIP hits %d should exceed LRU hits %d under thrashing", brripHits, lruHits)
	}
}

func TestDRRIPTracksBetterPolicy(t *testing.T) {
	// Under pure thrashing DRRIP should approach BRRIP, beating SRRIP-only
	// insertion... and under a friendly pattern it must not collapse.
	thrash := func(p Policy) uint64 {
		l := NewLevel("S", 64*16*mem.LineSize, 16, p)
		var hits uint64
		for round := 0; round < 60; round++ {
			for i := 0; i < 64*20; i++ {
				a := acc(uint64(i) * mem.LineSize)
				if l.Access(a) {
					hits++
				} else {
					l.Fill(a)
				}
			}
		}
		return hits
	}
	d, lru := thrash(NewDRRIP(4)), thrash(NewLRU())
	if d <= lru {
		t.Errorf("DRRIP hits %d should exceed LRU hits %d under thrash", d, lru)
	}
}

func TestSHiPPCLearnsDeadPC(t *testing.T) {
	// PC 1 streams (never reuses); PC 2 has a small hot set. SHiP-PC should
	// learn to insert PC 1 lines dead and protect PC 2's.
	p := NewSHiPPC()
	l := NewLevel("S", 16*mem.LineSize, 16, p)
	hot := make([]mem.Access, 4)
	for i := range hot {
		hot[i] = accPC(uint64(i)*mem.LineSize, 2)
	}
	var hotHits, hotAccesses uint64
	for round := 0; round < 500; round++ {
		// Double pass: in-round reuse trains the SHCT for PC 2 even while
		// the hot set is still being thrashed by the scan.
		for pass := 0; pass < 2; pass++ {
			for _, a := range hot {
				hotAccesses++
				if l.Access(a) {
					hotHits++
				} else {
					l.Fill(a)
				}
			}
		}
		for j := 0; j < 24; j++ {
			a := accPC(uint64(10000+round*24+j)*mem.LineSize, 1)
			if !l.Access(a) {
				l.Fill(a)
			}
		}
	}
	if rate := float64(hotHits) / float64(hotAccesses); rate < 0.9 {
		t.Errorf("SHiP-PC hot hit rate = %.2f, want >= 0.9", rate)
	}
}

func TestHawkeyeBeatsLRUOnMixedPCs(t *testing.T) {
	run := func(p Policy) uint64 {
		l := NewLevel("S", 8*8*mem.LineSize, 8, p)
		var hits uint64
		rng := rand.New(rand.NewSource(5))
		hot := 32 // lines, fits in half the cache
		for i := 0; i < 60000; i++ {
			var a mem.Access
			if rng.Intn(2) == 0 {
				a = accPC(uint64(rng.Intn(hot))*mem.LineSize, 7) // reused
			} else {
				a = accPC(uint64(100000+i)*mem.LineSize, 9) // one-shot
			}
			if l.Access(a) {
				hits++
			} else {
				l.Fill(a)
			}
		}
		return hits
	}
	hk, lru := run(NewHawkeye()), run(NewLRU())
	if hk <= lru {
		t.Errorf("Hawkeye hits %d should exceed LRU hits %d when PCs separate reuse", hk, lru)
	}
}

func TestGRASPProtectsHotRegion(t *testing.T) {
	hotLines := 8
	base := uint64(0)
	hotBound := base + uint64(hotLines)*mem.LineSize
	run := func(p Policy) uint64 {
		l := NewLevel("S", 16*mem.LineSize, 16, p)
		var hits uint64
		rng := rand.New(rand.NewSource(6))
		for i := 0; i < 40000; i++ {
			var a mem.Access
			if rng.Intn(3) == 0 {
				a = acc(base + uint64(rng.Intn(hotLines))*mem.LineSize)
			} else {
				a = acc(1<<30 + uint64(rng.Intn(512))*mem.LineSize) // cold spray
			}
			if l.Access(a) {
				hits++
			} else {
				l.Fill(a)
			}
		}
		return hits
	}
	g := run(NewGRASP(base, hotBound, hotBound+64*mem.LineSize))
	lru := run(NewLRU())
	if g <= lru {
		t.Errorf("GRASP hits %d should exceed LRU hits %d with a pinnable hot region", g, lru)
	}
}

func TestHierarchyLevels(t *testing.T) {
	h := NewHierarchy(Config{
		L1Size: 2 * mem.LineSize, L1Ways: 2,
		L2Size: 8 * mem.LineSize, L2Ways: 2,
		LLCSize: 64 * mem.LineSize, LLCWays: 4,
		LLCPolicy: func() Policy { return NewLRU() },
	})
	a := acc(0x4000)
	if lvl := h.Access(a); lvl != HitDRAM {
		t.Fatalf("cold access = %v, want DRAM", lvl)
	}
	if lvl := h.Access(a); lvl != HitL1 {
		t.Fatalf("hot access = %v, want L1", lvl)
	}
	if h.DRAMReads != 1 {
		t.Fatalf("DRAMReads = %d, want 1", h.DRAMReads)
	}
	// Evict from tiny L1 with conflicting lines; next access should hit L2.
	h.Access(acc(0x4000 + 2*mem.LineSize))
	h.Access(acc(0x4000 + 4*mem.LineSize))
	if lvl := h.Access(a); lvl != HitL2 {
		t.Fatalf("access after L1 eviction = %v, want L2", lvl)
	}
}

func TestHierarchyWritebackReachesDRAM(t *testing.T) {
	h := NewHierarchy(Config{
		L1Size: 2 * mem.LineSize, L1Ways: 2,
		L2Size: 4 * mem.LineSize, L2Ways: 2,
		LLCSize: 8 * mem.LineSize, LLCWays: 2,
		LLCPolicy: func() Policy { return NewLRU() },
	})
	h.Access(write(0))
	// Spray enough distinct conflicting lines to push the dirty line out of
	// every level.
	for i := 1; i < 64; i++ {
		h.Access(acc(uint64(i) * 1024))
	}
	if h.DRAMWrites == 0 {
		t.Error("dirty line never wrote back to DRAM")
	}
}

func TestNUCABankLocality(t *testing.T) {
	banks := 8
	irregBase := uint64(1) << 30
	numLines := 64 * 64 * 4 // several full blocks
	n := &NUCA{Banks: banks, IrregBase: irregBase, IrregBound: irregBase + uint64(numLines)*mem.LineSize}
	// A bank-aligned matrix base preserves bank locality.
	alignedBase := uint64(banks) * mem.LineSize * 100 * uint64(banks) // multiple of banks*64
	if !n.BankLocal(alignedBase, numLines) {
		t.Error("aligned matrix base should be bank-local")
	}
	// Under plain line striping of irregData, matrix locality breaks.
	misaligned := alignedBase + mem.LineSize
	if n.BankLocal(misaligned, numLines) {
		t.Error("misaligned matrix base cannot be bank-local")
	}
}

func TestNUCAStripeMappings(t *testing.T) {
	if StripeLines.Bank(64, 8) != 1 || StripeLines.Bank(0, 8) != 0 {
		t.Error("line striping broken")
	}
	// 64 consecutive lines share a bank under block striping.
	b0 := StripeBlocks.Bank(0, 8)
	for i := 0; i < 64; i++ {
		if StripeBlocks.Bank(uint64(i)*mem.LineSize, 8) != b0 {
			t.Fatal("block striping must keep 64-line blocks together")
		}
	}
	if StripeBlocks.Bank(64*mem.LineSize, 8) == b0 {
		t.Error("next block should map to the next bank")
	}
}

func TestInvalidateAndFlush(t *testing.T) {
	l := tinyLevel(NewLRU())
	w := write(0x2000)
	l.Access(w)
	l.Fill(w)
	dirty, present := l.Invalidate(w.LineAddr())
	if !present || !dirty {
		t.Fatalf("Invalidate = dirty %v present %v", dirty, present)
	}
	if _, present := l.Invalidate(w.LineAddr()); present {
		t.Fatal("double invalidate should miss")
	}
	l.Fill(acc(0x3000))
	l.Flush()
	if l.Occupancy() != 0 {
		t.Fatal("flush left valid lines")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Accesses: 10, Hits: 6, Misses: 4, Evictions: 2, Writebacks: 1}
	b := Stats{Accesses: 5, Hits: 1, Misses: 4}
	a.Add(b)
	if a.Accesses != 15 || a.Hits != 7 || a.Misses != 8 {
		t.Errorf("Add result = %+v", a)
	}
	if mr := a.MissRate(); mr != 8.0/15 {
		t.Errorf("MissRate = %v", mr)
	}
}

func TestHierarchyPrefetch(t *testing.T) {
	h := NewHierarchy(Config{
		L1Size: 2 * mem.LineSize, L1Ways: 2,
		L2Size: 4 * mem.LineSize, L2Ways: 2,
		LLCSize: 16 * mem.LineSize, LLCWays: 4,
		LLCPolicy: func() Policy { return NewLRU() },
	})
	h.Prefetch(acc(0x8000))
	if h.PrefetchIssued != 1 || h.PrefetchFills != 1 || h.DRAMReads != 1 {
		t.Fatalf("prefetch counters: issued=%d fills=%d dram=%d", h.PrefetchIssued, h.PrefetchFills, h.DRAMReads)
	}
	// Demand access after prefetch hits in the LLC, not DRAM.
	if lvl := h.Access(acc(0x8000)); lvl != HitLLC {
		t.Fatalf("post-prefetch access hit %v, want LLC", lvl)
	}
	// Duplicate prefetch is a no-op fill.
	h.Prefetch(acc(0x8000))
	if h.PrefetchFills != 1 {
		t.Fatal("resident prefetch refilled")
	}
	// Demand stats untouched by prefetches beyond the one real access.
	if h.LLC.Stats.Accesses != 1 {
		t.Fatalf("LLC demand accesses = %d, want 1", h.LLC.Stats.Accesses)
	}
}

func TestLevelGeometryAccessors(t *testing.T) {
	l := NewLevel("X", 32*mem.LineSize, 4, NewLRU())
	if l.Sets() != 8 || l.Ways() != 4 || l.ReservedWays() != 0 {
		t.Fatalf("geometry: sets=%d ways=%d resvd=%d", l.Sets(), l.Ways(), l.ReservedWays())
	}
	if l.Policy().Name() != "LRU" {
		t.Fatal("policy accessor broken")
	}
}

func TestNonPowerOfTwoSetCount(t *testing.T) {
	// The paper's 24 MB 16-way LLC has 24576 sets; modulo indexing must
	// spread lines across all of them.
	l := NewLevel("LLC", 3*16*mem.LineSize, 16, NewLRU()) // 3 sets
	seen := map[int]bool{}
	for i := 0; i < 30; i++ {
		seen[l.SetIndex(uint64(i)*mem.LineSize)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("line addresses reached %d sets, want 3", len(seen))
	}
}

func TestDRRIPRRPVAccessor(t *testing.T) {
	p := NewDRRIP(1)
	l := tinyLevel(p)
	a := acc(lineInSet(l, 0, 0))
	l.Access(a)
	l.Fill(a)
	_, way, ok := l.Lookup(a.LineAddr())
	if !ok {
		t.Fatal("fill lost")
	}
	before := p.RRPV(0, way)
	l.Access(a) // hit promotes to 0
	if p.RRPV(0, way) != 0 || before == 0 {
		t.Fatalf("RRPV promote: before=%d after=%d", before, p.RRPV(0, way))
	}
}

func TestSDBPLearnsDeadPC(t *testing.T) {
	// PC 1 streams one-shot lines; PC 2 keeps a hot set. SDBP should
	// learn PC 1's blocks die and evict them first, protecting PC 2.
	p := NewSDBP()
	l := NewLevel("S", 16*16*mem.LineSize, 16, p) // 16 sets so set 0 samples
	hot := make([]mem.Access, 32)
	for i := range hot {
		hot[i] = accPC(uint64(i)*mem.LineSize, 2)
	}
	var hotHits, hotAccesses uint64
	for round := 0; round < 400; round++ {
		for pass := 0; pass < 2; pass++ {
			for _, a := range hot {
				hotAccesses++
				if l.Access(a) {
					hotHits++
				} else {
					l.Fill(a)
				}
			}
		}
		for j := 0; j < 256; j++ {
			a := accPC(uint64(100000+round*256+j)*mem.LineSize, 1)
			if !l.Access(a) {
				l.Fill(a)
			}
		}
	}
	lruHits := func() uint64 {
		l := NewLevel("S", 16*16*mem.LineSize, 16, NewLRU())
		var hits uint64
		for round := 0; round < 400; round++ {
			for pass := 0; pass < 2; pass++ {
				for _, a := range hot {
					if l.Access(a) {
						hits++
					} else {
						l.Fill(a)
					}
				}
			}
			for j := 0; j < 256; j++ {
				a := accPC(uint64(100000+round*256+j)*mem.LineSize, 1)
				if !l.Access(a) {
					l.Fill(a)
				}
			}
		}
		return hits
	}()
	if hotHits <= lruHits {
		t.Errorf("SDBP hot hits %d should exceed LRU %d", hotHits, lruHits)
	}
	_ = hotAccesses
}

func TestSDBPBasicSanityAndReservedWays(t *testing.T) {
	p := NewSDBP()
	l := tinyLevel(p)
	l.Reserve(1)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		a := accPC(uint64(rng.Intn(512))*mem.LineSize, uint16(rng.Intn(8)))
		if !l.Access(a) {
			l.Fill(a)
		}
		if !l.Access(a) {
			t.Fatal("immediate re-reference must hit")
		}
	}
}

func TestDIPThrashResistance(t *testing.T) {
	// Cyclic working set larger than the cache: LRU thrashes; DIP's BIP
	// side retains a fraction.
	run := func(p Policy) uint64 {
		l := NewLevel("S", 64*16*mem.LineSize, 16, p)
		var hits uint64
		for round := 0; round < 100; round++ {
			for i := 0; i < 64*20; i++ {
				a := acc(uint64(i) * mem.LineSize)
				if l.Access(a) {
					hits++
				} else {
					l.Fill(a)
				}
			}
		}
		return hits
	}
	lru, dip := run(NewLRU()), run(NewDIP(5))
	if dip <= lru {
		t.Errorf("DIP hits %d should exceed LRU %d under thrashing", dip, lru)
	}
}

func TestDIPSanityAndReservedWays(t *testing.T) {
	p := NewDIP(9)
	l := tinyLevel(p)
	l.Reserve(1)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 10000; i++ {
		a := acc(uint64(rng.Intn(512)) * mem.LineSize)
		if !l.Access(a) {
			l.Fill(a)
		}
		if !l.Access(a) {
			t.Fatal("immediate re-reference must hit")
		}
	}
}

// TestHierarchyInvariants drives random traffic and checks the structural
// accounting invariants that every level and the DRAM counters must obey.
func TestHierarchyInvariants(t *testing.T) {
	h := NewHierarchy(Config{
		L1Size: 1 << 10, L1Ways: 4,
		L2Size: 4 << 10, L2Ways: 4,
		LLCSize: 16 << 10, LLCWays: 8,
		LLCPolicy: func() Policy { return NewDRRIP(1) },
	})
	rng := rand.New(rand.NewSource(12))
	var l1Hits, l2Hits, llcHits, dram uint64
	for i := 0; i < 100000; i++ {
		a := mem.Access{Addr: uint64(rng.Intn(4096)) * mem.LineSize, Write: rng.Intn(4) == 0}
		switch h.Access(a) {
		case HitL1:
			l1Hits++
		case HitL2:
			l2Hits++
		case HitLLC:
			llcHits++
		default:
			dram++
		}
	}
	if h.L1.Stats.Accesses != 100000 {
		t.Errorf("L1 accesses = %d", h.L1.Stats.Accesses)
	}
	for _, l := range []*Level{h.L1, h.L2, h.LLC} {
		if l.Stats.Hits+l.Stats.Misses != l.Stats.Accesses {
			t.Errorf("%s: hits+misses != accesses", l.Name)
		}
	}
	if h.L2.Stats.Accesses != h.L1.Stats.Misses {
		t.Error("L2 accesses must equal L1 misses")
	}
	if h.LLC.Stats.Accesses != h.L2.Stats.Misses {
		t.Error("LLC accesses must equal L2 misses")
	}
	if h.DRAMReads != h.LLC.Stats.Misses {
		t.Error("DRAM reads must equal LLC misses (no prefetching here)")
	}
	if l1Hits != h.L1.Stats.Hits || l2Hits != h.L2.Stats.Hits || llcHits != h.LLC.Stats.Hits || dram != h.DRAMReads {
		t.Error("HitLevel classification disagrees with level stats")
	}
}

// TestHitLevelString covers the formatting helper.
func TestHitLevelString(t *testing.T) {
	want := []struct {
		lvl HitLevel
		s   string
	}{{HitL1, "L1"}, {HitL2, "L2"}, {HitLLC, "LLC"}, {HitDRAM, "DRAM"}}
	for _, tc := range want {
		lvl, s := tc.lvl, tc.s
		if lvl.String() != s {
			t.Errorf("%d.String() = %q, want %q", lvl, lvl.String(), s)
		}
	}
}
