package cache

import (
	"testing"

	"popt/internal/mem"
)

// benchLevel builds a 3 MB/16-way level (3072 sets — non-power-of-two, so
// the set mapping exercises the fastmod path like the paper's 24576-set
// LLC) and a pseudo-random line-address stream over a footprint of
// footprintNum/footprintDen times the capacity.
func benchLevel(footprintNum, footprintDen int) (*Level, []uint64) {
	l := NewLevel("bench", 3<<20, 16, NewLRU())
	footprint := uint64(footprintNum * 3 << 20 / footprintDen / mem.LineSize)
	addrs := make([]uint64, 1<<16)
	x := uint64(12345)
	for i := range addrs {
		// xorshift keeps the stream cheap and aperiodic.
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		addrs[i] = (x % footprint) * mem.LineSize
	}
	return l, addrs
}

// BenchmarkLevelAccess measures the probe path (SetIndex + tag scan +
// policy OnHit) on a warmed level whose working set fits in half the
// capacity: hits dominate and the sentinel-tag scan is the measured loop.
func BenchmarkLevelAccess(b *testing.B) {
	l, addrs := benchLevel(1, 2)
	for _, a := range addrs {
		acc := mem.Access{Addr: a}
		if !l.Access(acc) {
			l.Fill(acc)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc := mem.Access{Addr: addrs[i&(len(addrs)-1)]}
		if !l.Access(acc) {
			l.Fill(acc)
		}
	}
}

// BenchmarkLevelFill measures the miss/fill path (free-way bitmask pick or
// Victim + SoA/AoS update) by thrashing a footprint 4x the capacity with
// writes, so evictions and dirty-bit maintenance are on the measured loop.
func BenchmarkLevelFill(b *testing.B) {
	l, addrs := benchLevel(4, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc := mem.Access{Addr: addrs[i&(len(addrs)-1)], Write: i&1 == 0}
		if !l.Access(acc) {
			l.Fill(acc)
		}
	}
}
