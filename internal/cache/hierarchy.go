package cache

import (
	"fmt"
	"strings"

	"popt/internal/mem"
)

// Config describes the simulated hierarchy. The paper's Table I platform is
// an 8-core Nehalem-like part: 32 KB/8-way L1, 256 KB/8-way L2 (Bit-PLRU),
// 3 MB/core 16-way LLC (24 MB total, DRRIP). The cache-only simulator (like
// the paper's) models a serial execution, so the default here is a
// single-core slice scaled so that the scaled input graphs exceed the LLC
// by the same ratio as the paper's graphs exceed 24 MB.
type Config struct {
	L1Size, L1Ways   int
	L2Size, L2Ways   int
	LLCSize, LLCWays int
	// LLCPolicy builds the LLC replacement policy. L1/L2 always use
	// Bit-PLRU per Table I.
	LLCPolicy func() Policy
}

// TableI returns the paper's full-size configuration (24 MB shared LLC)
// with the given LLC policy.
func TableI(llc func() Policy) Config {
	return Config{
		L1Size: 32 << 10, L1Ways: 8,
		L2Size: 256 << 10, L2Ways: 8,
		LLCSize: 24 << 20, LLCWays: 16,
		LLCPolicy: llc,
	}
}

// Scaled returns the default experiment configuration: the Table I shape
// shrunk so that the default ~128 K-vertex graphs stand in the same
// relation to the LLC as the paper's 18-34 M-vertex graphs to 24 MB:
// 4-byte irregular data is ~3.2× the LLC (misses dominate) and P-OPT's
// reserved ways land at 2/16 for single-stream kernels and 3-4/16 for
// frontier kernels, matching the paper's range (Fig. 11's annotations).
// The odd 160 KB size avoids a degenerate fit where a Rereference Matrix
// column is exactly a whole way and the tiny frontier column forces an
// extra way — rounding slack the paper's 1.5 MB ways naturally have.
func Scaled(llc func() Policy) Config {
	return Config{
		L1Size: 8 << 10, L1Ways: 8,
		L2Size: 32 << 10, L2Ways: 8,
		LLCSize: 160 << 10, LLCWays: 16,
		LLCPolicy: llc,
	}
}

// HitLevel identifies where an access was satisfied.
type HitLevel int

const (
	HitL1 HitLevel = iota
	HitL2
	HitLLC
	HitDRAM
)

func (h HitLevel) String() string {
	switch h {
	case HitL1:
		return "L1"
	case HitL2:
		return "L2"
	case HitLLC:
		return "LLC"
	default:
		return "DRAM"
	}
}

// Hierarchy is a three-level cache plus DRAM traffic counters. Writebacks
// propagate downward without allocating (non-inclusive, writeback,
// no-write-allocate-on-writeback), which keeps eviction handling simple
// while preserving DRAM write traffic accounting. Every probe below —
// demand lookups, fills, and the MarkDirty writeback sinks — runs on the
// Level's SoA datapath: sentinel-tag scans, bitmask free-way selection,
// and fastmod set mapping (see Level), so the hierarchy itself adds no
// per-access division or per-way branching.
type Hierarchy struct {
	L1, L2, LLC *Level
	// DRAMReads counts demand fills from memory, DRAMWrites counts dirty
	// writebacks that reached memory. Their sum is the paper's "DRAM
	// traffic". Instruction accounting (the MPKI denominator) lives with
	// the event sink (trace.Sim), not here: the hierarchy only ever sees
	// the references that reach it, and filters may absorb some.
	DRAMReads, DRAMWrites uint64
	// PrefetchIssued/PrefetchFills count software/hardware prefetches
	// (issued vs. actually fetched from DRAM); prefetch traffic is kept
	// out of the demand Stats but adds to DRAMReads.
	PrefetchIssued, PrefetchFills uint64
	// Tap, when non-nil, observes the LLC-visible reference stream: every
	// demand access that missed L2 (before the LLC sees it) and every
	// writeback arriving at the LLC. Because L1 and L2 run fixed Bit-PLRU
	// and the hierarchy is non-inclusive (the LLC never back-invalidates
	// them), this stream is independent of the LLC policy — the trace
	// package records it once and replays it into any policy's LLC.
	Tap LLCTap
}

// LLCTap receives the LLC-visible stream during a live run; see
// Hierarchy.Tap.
type LLCTap interface {
	// LLCAccess observes a demand access about to reach the LLC.
	LLCAccess(acc mem.Access)
	// LLCWriteback observes an upper-level dirty victim (line address)
	// about to be offered to the LLC.
	LLCWriteback(lineAddr uint64)
}

// NewHierarchy builds a hierarchy from cfg.
func NewHierarchy(cfg Config) *Hierarchy {
	if cfg.LLCPolicy == nil {
		panic("cache: Config.LLCPolicy is required")
	}
	return &Hierarchy{
		L1:  NewLevel("L1", cfg.L1Size, cfg.L1Ways, NewBitPLRU()),
		L2:  NewLevel("L2", cfg.L2Size, cfg.L2Ways, NewBitPLRU()),
		LLC: NewLevel("LLC", cfg.LLCSize, cfg.LLCWays, cfg.LLCPolicy()),
	}
}

// Access runs one memory reference through the hierarchy and reports the
// level that satisfied it.
//
//popt:hot
func (h *Hierarchy) Access(acc mem.Access) HitLevel {
	if h.L1.Access(acc) {
		return HitL1
	}
	level := HitDRAM
	if h.L2.Access(acc) {
		level = HitL2
	} else {
		if h.Tap != nil {
			h.Tap.LLCAccess(acc)
		}
		if h.LLC.Access(acc) {
			level = HitLLC
		} else {
			h.DRAMReads++
			// Fill LLC; its victim may write back to DRAM.
			if ev, ok := h.LLC.Fill(acc); ok && ev.Dirty {
				h.DRAMWrites++
			}
		}
	}
	if level == HitDRAM || level == HitLLC {
		// Fill L2; victim writes back into LLC if present there.
		if ev, ok := h.L2.Fill(acc); ok && ev.Dirty {
			if h.Tap != nil {
				h.Tap.LLCWriteback(ev.Addr)
			}
			if !h.LLC.MarkDirty(ev.Addr) {
				h.DRAMWrites++
			}
		}
	}
	if ev, ok := h.L1.Fill(acc); ok && ev.Dirty {
		if !h.L2.MarkDirty(ev.Addr) {
			if h.Tap != nil {
				h.Tap.LLCWriteback(ev.Addr)
			}
			if !h.LLC.MarkDirty(ev.Addr) {
				h.DRAMWrites++
			}
		}
	}
	return level
}

// ReserveLLC partitions n LLC ways away from demand use and writes any
// displaced dirty lines back to memory, keeping DRAM traffic accounting
// honest when repartitioning a warm cache.
func (h *Hierarchy) ReserveLLC(n int) {
	dirty := h.LLC.Reserve(n)
	h.DRAMWrites += uint64(len(dirty))
}

// Prefetch brings the line of acc into the LLC without touching demand
// statistics (beyond eviction bookkeeping and DRAM traffic). Prefetchers
// in the literature targeting graph irregular data (IMP, DROPLET) fill at
// LLC or L2; this models LLC fill.
func (h *Hierarchy) Prefetch(acc mem.Access) {
	h.PrefetchIssued++
	la := acc.LineAddr()
	if _, _, ok := h.LLC.Lookup(la); ok {
		return
	}
	h.PrefetchFills++
	h.DRAMReads++
	if ev, wasEv := h.LLC.Fill(acc); wasEv && ev.Dirty {
		h.DRAMWrites++
	}
}

// LLCMissRate returns the LLC local miss ratio.
func (h *Hierarchy) LLCMissRate() float64 { return h.LLC.Stats.MissRate() }

// Summary renders a compact multi-line report of all levels. Formatting
// lives here, entirely off the access path, and builds the report in a
// single buffer rather than by string concatenation.
func (h *Hierarchy) Summary() string {
	var out strings.Builder
	for _, l := range []*Level{h.L1, h.L2, h.LLC} {
		fmt.Fprintf(&out, "%-4s accesses=%-12d misses=%-12d missRate=%5.1f%%\n",
			l.Name, l.Stats.Accesses, l.Stats.Misses, 100*l.Stats.MissRate())
	}
	fmt.Fprintf(&out, "DRAM reads=%d writes=%d\n", h.DRAMReads, h.DRAMWrites)
	return out.String()
}
