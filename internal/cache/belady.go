package cache

import "popt/internal/mem"

// BeladyMIN is true offline MIN replacement: given the exact future access
// trace, it evicts the line referenced furthest in the future. It exists
// as the gold standard to validate T-OPT against — Section III's claim is
// precisely that the graph transpose lets T-OPT reproduce MIN's decisions
// for irregular graph data without recording a trace. MIN is usable only
// on a single level fed the full trace (a policy below filtering levels
// would see a different stream than the one it was primed with).
type BeladyMIN struct {
	g Geometry
	// nextOcc[i] is the trace index of the next access to the same line
	// after position i (len(trace) if none).
	nextOcc []int
	// lineNext maps a resident line to the trace index of its next use.
	lineNext map[uint64]int
	pos      int
	trace    []uint64
}

// NewBeladyMIN precomputes next-occurrence indexes for a line-address
// trace. Every subsequent Access against the level MUST present exactly
// this trace in order.
func NewBeladyMIN(trace []uint64) *BeladyMIN {
	n := len(trace)
	next := make([]int, n)
	last := make(map[uint64]int, 1024)
	for i := n - 1; i >= 0; i-- {
		la := trace[i] &^ (mem.LineSize - 1)
		if j, ok := last[la]; ok {
			next[i] = j
		} else {
			next[i] = n
		}
		last[la] = i
	}
	return &BeladyMIN{nextOcc: next, trace: trace, lineNext: make(map[uint64]int, 1024)}
}

// Name implements Policy.
func (p *BeladyMIN) Name() string { return "Belady-MIN" }

// Bind implements Policy.
func (p *BeladyMIN) Bind(g Geometry) { p.g = g }

// step records that the trace advanced by one access for line la.
func (p *BeladyMIN) step(la uint64) {
	if p.pos < len(p.trace) {
		want := p.trace[p.pos] &^ (mem.LineSize - 1)
		if want != la {
			panic("cache: BeladyMIN fed an access that diverges from its priming trace")
		}
		p.lineNext[la] = p.nextOcc[p.pos]
	}
	p.pos++
}

// OnHit implements Policy.
func (p *BeladyMIN) OnHit(set, way int, acc mem.Access) { p.step(acc.LineAddr()) }

// OnFill implements Policy.
func (p *BeladyMIN) OnFill(set, way int, acc mem.Access) { p.step(acc.LineAddr()) }

// OnEvict implements Policy.
func (p *BeladyMIN) OnEvict(set, way int) {}

// Victim implements Policy: furthest next use wins.
func (p *BeladyMIN) Victim(set int, lines []Line, _ mem.Access) int {
	best, bestNext := p.g.ReservedWays, -1
	for w := p.g.ReservedWays; w < p.g.Ways; w++ {
		next, ok := p.lineNext[lines[w].Addr]
		if !ok {
			next = len(p.trace) // never primed: treat as dead
		}
		if next > bestNext {
			best, bestNext = w, next
		}
	}
	return best
}

// SimulateTrace replays a line-address trace through a single level,
// returning its stats. It is the harness for offline-policy studies.
func SimulateTrace(l *Level, trace []uint64) Stats {
	for _, addr := range trace {
		a := mem.Access{Addr: addr}
		if !l.Access(a) {
			l.Fill(a)
		}
	}
	return l.Stats
}
