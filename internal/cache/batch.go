package cache

import (
	"math/bits"

	"popt/internal/mem"
)

// Batch-probe datapath. Trace replay delivers millions of decoded events
// to one cache level; paying a full exported-method call — set-index
// branch, statistics read-modify-writes against memory — per event is
// measurable overhead once PR 5's SoA layout made the per-probe work
// itself cheap. The replay loops therefore decode events into a small
// fixed-size batch of Probes and hand the whole batch to AccessBatch,
// which resolves the set-mapping strategy once per batch, keeps the
// statistics deltas in registers until the batch ends, and processes the
// probes strictly in decoded order — so every policy callback, fill,
// eviction and counter lands exactly as the one-event-at-a-time path
// would. The batch buffer is the caller's (a stack array in the replay
// loop); AccessBatch borrows it for the call and retains nothing, so it
// never aliases policy-borrowed line storage.

// BatchMax is the fixed capacity of a replay probe batch. Small enough
// to live on the replay loop's stack and stay L1-resident, large enough
// to amortize the per-batch setup over the common long runs between
// hook events.
const BatchMax = 64

// ProbeKind distinguishes the three event shapes a cache level sees
// during LLC-trace replay.
type ProbeKind uint8

const (
	// ProbeRead and ProbeWrite are demand accesses (Addr is the full
	// address, PC the access site): on miss the level fills from DRAM.
	ProbeRead ProbeKind = iota
	ProbeWrite
	// ProbeWB is an upper-level dirty victim offered to the level (Addr
	// is the line address): present lines are marked dirty, absent ones
	// write through to DRAM.
	ProbeWB
)

// Probe is one decoded replay event. set is scratch space AccessBatch
// fills during its set-index pass; callers construct Probes with the
// exported fields only.
type Probe struct {
	Addr uint64
	set  uint32
	PC   uint16
	Kind ProbeKind
}

// setIndexBatch computes every probe's set index with the set-mapping
// branch resolved once for the whole batch instead of once per event.
//
//popt:hot
func (l *Level) setIndexBatch(ps []Probe) {
	if l.setMask != ^uint64(0) {
		mask := l.setMask
		for i := range ps {
			ps[i].set = uint32((ps[i].Addr >> mem.LineShift) & mask)
		}
	} else {
		div := l.setDiv
		for i := range ps {
			ps[i].set = uint32(div.Mod(ps[i].Addr >> mem.LineShift))
		}
	}
}

// AccessBatch runs a batch of decoded replay events through the level in
// order and returns the DRAM traffic they generated. It implements
// exactly the hierarchy's LLC arm: a demand probe that hits updates
// dirty state and the policy's hit metadata; one that misses counts a
// DRAM read, fills (fillAt), and charges a DRAM write if the fill
// displaced a dirty victim; a writeback probe marks a present line dirty
// and writes through to DRAM otherwise. Because the probes are processed
// strictly in order with unchanged per-event semantics, every counter
// and every policy decision is byte-identical to issuing the same events
// through Access/Fill/MarkDirty one at a time — the batch only hoists
// the set-index branch and the statistics memory traffic out of the
// per-event path. ps is borrowed for the call; nothing in it is
// retained.
//
//popt:hot
func (l *Level) AccessBatch(ps []Probe) (dramReads, dramWrites uint64) {
	l.setIndexBatch(ps)
	var accesses, hits, misses, wbHits uint64
	ways := l.ways
	for i := range ps {
		p := &ps[i]
		set := int(p.set)
		la := p.Addr &^ uint64(mem.LineSize-1)
		base := set * ways
		tags := l.tags[base : base+ways]
		way := -1
		for w := range tags {
			if tags[w] == la {
				way = w
				break
			}
		}
		if p.Kind == ProbeWB {
			if way < 0 {
				dramWrites++
			} else {
				l.lines[base+way].Dirty = true
				l.dirty[set] |= 1 << uint(way)
				wbHits++
			}
			continue
		}
		accesses++
		acc := mem.Access{Addr: p.Addr, PC: p.PC, Write: p.Kind == ProbeWrite}
		if way >= 0 {
			hits++
			if acc.Write {
				l.lines[base+way].Dirty = true
				l.dirty[set] |= 1 << uint(way)
			}
			if l.plru != nil {
				l.plru.OnHit(set, way, acc)
			} else {
				l.pol.OnHit(set, way, acc)
			}
			continue
		}
		misses++
		dramReads++
		if ev, ok := l.fillAt(set, la, acc); ok && ev.Dirty {
			dramWrites++
		}
	}
	l.Stats.Accesses += accesses
	l.Stats.Hits += hits
	l.Stats.Misses += misses
	l.Stats.Writebacks += wbHits
	return dramReads, dramWrites
}

// fillAt is Fill with the address mapping already done: it installs the
// line with address la (the line-aligned form of acc's address) into
// set. Batch callers resolve the set once per probe; Fill wraps it for
// the one-event path.
//
//popt:hot
func (l *Level) fillAt(set int, la uint64, acc mem.Access) (evicted Line, wasEvicted bool) {
	base := set * l.ways
	var way int
	if free := ^l.valid[set] & l.demand; free != 0 {
		way = bits.TrailingZeros64(free)
	} else {
		ws := l.lines[base : base+l.ways]
		if l.plru != nil {
			way = l.plru.Victim(set, ws, acc)
		} else {
			way = l.pol.Victim(set, ws, acc)
		}
		if way < l.resvd || way >= l.ways {
			l.badVictim(way)
		}
		evicted, wasEvicted = ws[way], true
		l.Stats.Evictions++
		l.pol.OnEvict(set, way)
	}
	l.lines[base+way] = Line{Valid: true, Dirty: acc.Write, Addr: la, PC: acc.PC}
	l.tags[base+way] = la
	bit := uint64(1) << uint(way)
	l.valid[set] |= bit
	if acc.Write {
		l.dirty[set] |= bit
	} else {
		l.dirty[set] &^= bit
	}
	if l.plru != nil {
		l.plru.OnFill(set, way, acc)
	} else {
		l.pol.OnFill(set, way, acc)
	}
	return evicted, wasEvicted
}

// AccessBatch runs a batch of demand references through the full
// hierarchy in order. It is the bulk entry point for full-stream replay:
// per-event results (the HitLevel) are not reported, but every counter
// and state change is identical to calling Access per reference.
//
//popt:hot
func (h *Hierarchy) AccessBatch(accs []mem.Access) {
	for i := range accs {
		h.Access(accs[i])
	}
}
