package cache

import "popt/internal/mem"

// SHiP (Wu et al., MICRO 2011) predicts re-reference from a signature: a
// Signature History Counter Table (SHCT) of saturating counters learns
// whether lines inserted under a signature were reused before eviction.
// The paper evaluates two variants: SHiP-PC (signature = instruction
// address) and SHiP-Mem (signature = memory region). Both fail on graph
// data because the same instruction — and the same address range — mixes
// hot hub vertices and cold tail vertices (Section II-B).

// shipSignature extracts a table index from an access.
type shipSignature func(acc mem.Access) uint32

// SHiP layers signature-based insertion on an SRRIP backend.
type SHiP struct {
	rripBase
	name    string
	sig     shipSignature
	shct    []uint8 // 2-bit saturating counters
	lineSig []uint32
	reused  []bool
}

const (
	shctSize = 1 << 14
	shctMax  = 3
)

// NewSHiPPC returns SHiP with PC-indexed signatures.
func NewSHiPPC() *SHiP {
	p := &SHiP{name: "SHiP-PC", sig: func(a mem.Access) uint32 { return uint32(a.PC) % shctSize }}
	p.bits = 2
	return p
}

// NewSHiPMem returns SHiP with memory-region signatures. The paper's
// idealized variant tracks individual cache lines with infinite storage; we
// match that by hashing the line address over a table large enough that
// collisions are rare at simulated scales.
func NewSHiPMem() *SHiP {
	const memTable = 1 << 22
	p := &SHiP{name: "SHiP-Mem", sig: func(a mem.Access) uint32 {
		return uint32((a.Addr >> mem.LineShift) % memTable)
	}}
	p.bits = 2
	return p
}

// Name implements Policy.
func (p *SHiP) Name() string { return p.name }

// Bind implements Policy.
func (p *SHiP) Bind(g Geometry) {
	p.rripBase.Bind(g)
	size := shctSize
	if p.name == "SHiP-Mem" {
		size = 1 << 22
	}
	if len(p.shct) != size {
		p.shct = make([]uint8, size)
		for i := range p.shct {
			p.shct[i] = 1 // weakly not-reused
		}
	}
	p.lineSig = make([]uint32, g.Sets*g.Ways)
	p.reused = make([]bool, g.Sets*g.Ways)
}

// OnHit implements Policy: mark the line reused and credit its signature.
func (p *SHiP) OnHit(set, way int, acc mem.Access) {
	p.promote(set, way)
	idx := set*p.g.Ways + way
	if !p.reused[idx] {
		p.reused[idx] = true
		if s := p.lineSig[idx]; p.shct[s] < shctMax {
			p.shct[s]++
		}
	}
}

// OnFill implements Policy: insertion RRPV depends on the signature's
// learned reuse.
func (p *SHiP) OnFill(set, way int, acc mem.Access) {
	idx := set*p.g.Ways + way
	s := p.sig(acc)
	p.lineSig[idx] = s
	p.reused[idx] = false
	if p.shct[s] == 0 {
		p.insert(set, way, p.max) // predicted dead: distant
	} else {
		p.insert(set, way, p.max-1)
	}
}

// OnEvict implements Policy: an un-reused eviction debits the signature.
func (p *SHiP) OnEvict(set, way int) {
	idx := set*p.g.Ways + way
	if !p.reused[idx] {
		if s := p.lineSig[idx]; p.shct[s] > 0 {
			p.shct[s]--
		}
	}
}

// Victim implements Policy.
func (p *SHiP) Victim(set int, _ []Line, _ mem.Access) int { return p.victim(set) }
