package core

import (
	"popt/internal/graph"
	"popt/internal/mem"
)

// This file models the bookkeeping hardware of Section V: the next-ref
// engine's buffers and the convenience wiring from kernel arrays to
// policies.

// NextRefBufferBytes returns the worst-case storage for next-ref buffers
// (Section V-G): one buffer per concurrently outstanding LLC access, each
// tracking one byte per LLC way. The paper's example — 8 cores × 10 L1
// MSHRs × 16 ways — comes to 1.25 KB.
func NextRefBufferBytes(cores, l1MSHRs, llcWays int) int {
	return cores * l1MSHRs * llcWays
}

// BuildPOPT builds a Rereference Matrix per irregular array and wires them
// into a P-OPT policy. refAdj is the transpose of the traversal direction
// (out-adjacency for pull kernels, in-adjacency for push), numVertices the
// outer-loop trip count. Arrays with the same elements-per-line share one
// matrix, the optimization Section V-F allows ("if the irregular data
// structures span different number of cache lines, otherwise a single
// Rereference Matrix can be shared") — it halves both the build cost and
// the pinned-column footprint when, e.g., two 4 B per-vertex arrays are
// tracked.
func BuildPOPT(refAdj *graph.Adj, numVertices int, kind Kind, bits uint, arrs ...*mem.Array) *POPT {
	streams := make([]Stream, len(arrs))
	byEPL := make(map[int]*Matrix)
	for i, a := range arrs {
		epl := a.ElemsPerLine()
		m := byEPL[epl]
		if m == nil {
			m = BuildMatrix(refAdj, numVertices, epl, kind, bits)
			byEPL[epl] = m
		}
		streams[i] = Stream{Arr: a, M: m}
	}
	return NewPOPT(streams...)
}

// BuildTOPT wires irregular arrays into a T-OPT policy sharing refAdj.
func BuildTOPT(refAdj *graph.Adj, arrs ...*mem.Array) *TOPT {
	streams := make([]OracleStream, len(arrs))
	for i, a := range arrs {
		streams[i] = OracleStream{Arr: a, Ref: refAdj}
	}
	return NewTOPT(streams...)
}

// VertexIndexed is implemented by policies that consume the update_index
// instruction (P-OPT and T-OPT); kernel runners feed every policy that
// implements it.
type VertexIndexed interface {
	UpdateIndex(v graph.V)
}
