package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"popt/internal/graph"
	"popt/internal/mem"
)

// fig1Graph is the 5-vertex example from Figures 1-5 of the paper.
func fig1Graph() *graph.Graph {
	edges := []graph.Edge{
		{Src: 0, Dst: 2},
		{Src: 1, Dst: 0}, {Src: 1, Dst: 4},
		{Src: 2, Dst: 0}, {Src: 2, Dst: 1}, {Src: 2, Dst: 3},
		{Src: 3, Dst: 1}, {Src: 3, Dst: 4},
		{Src: 4, Dst: 0}, {Src: 4, Dst: 2},
	}
	return graph.FromEdges("fig1", 5, edges)
}

// buildFig5Matrix reproduces Figure 5's setting: one srcData element per
// cache line (elemsPerLine=1), three epochs of two vertices each. We force
// that epoch geometry by hand.
func buildFig5Matrix(kind Kind) *Matrix {
	g := fig1Graph()
	// 4-bit quantization on 5 vertices yields epochSize 1; Figure 5 uses
	// epochSize 2 (3 epochs), so pin that geometry explicitly.
	return rebuildWithEpochSize(&g.Out, 5, 1, kind, 4, 2)
}

// rebuildWithEpochSize is a test helper that builds a matrix with a pinned
// epoch size (the public builder derives epoch size from the quantization
// width).
func rebuildWithEpochSize(ref *graph.Adj, numVertices, epl int, kind Kind, bits uint, epochSize int) *Matrix {
	tt := &Table{Kind: kind, Bits: bits, ElemsPerLine: epl}
	tt.EpochSize = epochSize
	tt.NumEpochs = (numVertices + epochSize - 1) / epochSize
	tt.SubEpochs = 1<<kind.distBits(bits) - 1
	if tt.SubEpochs < 1 {
		tt.SubEpochs = 1
	}
	tt.SubEpochSize = (epochSize + tt.SubEpochs - 1) / tt.SubEpochs
	tt.NumLines = (ref.N() + epl - 1) / epl
	tt.entries = make([]uint16, tt.NumLines*tt.NumEpochs)
	tt.initDividers()
	fillEntries(tt, ref, numVertices)
	return tt.NewMatrix()
}

// newTestSpace shortens mem.NewSpace in tests.
func newTestSpace() *mem.Space { return mem.NewSpace() }

func TestFig5InterOnlyMatrix(t *testing.T) {
	m := buildFig5Matrix(InterOnly)
	// Figure 5's Rereference Matrix (M = sentinel = MaxDist):
	//        E0 E1 E2
	//   C0 [  1  0  M ]   (S0 referenced only at D2)
	//   C1 [  0  2  0 ]   (S1 at D0 and D4)
	//   C2 [  0  0  0 ]   (S2 at D0, D1, D3)
	//   C3 [  0  1  0 ]   (S3 at D1 and D4)
	//   C4 [  1  1  0 ]   (S4 at D2 and D4... D2 is epoch 1, D4 epoch 2)
	M := uint16(m.MaxDist())
	want := [][]uint16{
		{1, 0, M},
		{0, 2, 0},
		{0, 0, 0},
		{0, 1, 0},
		{1, 0, 1},
	}
	// S4's out-neighbors are D0 and D2 (edges 4->0, 4->2): epoch 0 and 1.
	want[4] = []uint16{0, 0, M}
	// Recompute expectations directly from the graph to avoid hand errors:
	g := fig1Graph()
	for line := 0; line < 5; line++ {
		for e := 0; e < 3; e++ {
			// next referencing epoch >= e for vertex `line`
			dist := int(M)
			for _, d := range g.Out.Neighs(graph.V(line)) {
				de := int(d) / 2
				if de >= e {
					if dd := de - e; dd < dist {
						dist = dd
					}
				}
			}
			want[line][e] = uint16(dist)
		}
	}
	for line := range want {
		for e := range want[line] {
			if got := m.Entry(line, e); got != want[line][e] {
				t.Errorf("entry[C%d][E%d] = %d, want %d", line, e, got, want[line][e])
			}
		}
	}
	// Spot-check the three values the paper calls out for C0 (S0, whose
	// only reference is at D2 in epoch 1): 1 at E0, 0 at E1, M at E2.
	if m.Entry(0, 0) != 1 || m.Entry(0, 1) != 0 || m.Entry(0, 2) != M {
		t.Errorf("C0 row = [%d %d %d], want [1 0 %d]", m.Entry(0, 0), m.Entry(0, 1), m.Entry(0, 2), M)
	}
}

func TestInterIntraEncodingFields(t *testing.T) {
	m := buildFig5Matrix(InterIntra)
	msb := uint16(1) << 3 // 4-bit entries
	// S0 (line 0) is referenced at D2 only (epoch 1).
	// E0: not referenced -> MSB set, distance 1.
	if got := m.Entry(0, 0); got != msb|1 {
		t.Errorf("C0E0 = %#x, want MSB|1", got)
	}
	// E1: referenced -> MSB clear, low bits = final-access sub-epoch.
	if got := m.Entry(0, 1); got&msb != 0 {
		t.Errorf("C0E1 = %#x, want MSB clear", got)
	}
	// E2: never referenced again -> MSB set, sentinel distance.
	if got := m.Entry(0, 2); got != msb|uint16(m.MaxDist()) {
		t.Errorf("C0E2 = %#x, want MSB|sentinel", got)
	}
}

func TestAlgorithm2NextRef(t *testing.T) {
	g := fig1Graph()
	m := rebuildWithEpochSize(&g.Out, 5, 1, InterIntra, 8, 2)
	// Epoch 0 = {D0,D1}, epoch 1 = {D2,D3}, epoch 2 = {D4}.
	// S1 (line 1) is referenced at D0 and D4.
	// At cur=D0 (sub-epoch of D0 <= lastSub since D0 is its last access in
	// epoch 0): distance 0.
	if got := m.NextRef(1, 0); got != 0 {
		t.Errorf("NextRef(S1, D0) = %d, want 0 (still referenced this epoch)", got)
	}
	// At cur=D1, past S1's final access in epoch 0; next epoch (1) has no
	// reference, so Algorithm 2 line 16 returns 1 + dist stored in E1.
	// S1's E1 entry: not referenced, next ref at epoch 2 -> dist 1. So 2.
	if got := m.NextRef(1, 1); got != 2 {
		t.Errorf("NextRef(S1, D1) = %d, want 2 (next use in epoch 2)", got)
	}
	// S2 (line 2) referenced at D0, D1, D3: at D1 still current (lastSub
	// covers D1): 0.
	if got := m.NextRef(2, 1); got != 0 {
		t.Errorf("NextRef(S2, D1) = %d, want 0", got)
	}
	// S0 (line 0) at D4 (epoch 2): no further use -> sentinel distance.
	if got := m.NextRef(0, 4); got < m.MaxDist() {
		t.Errorf("NextRef(S0, D4) = %d, want >= sentinel %d", got, m.MaxDist())
	}
}

func TestInterOnlyQuantizationLoss(t *testing.T) {
	// The inter-only encoding cannot see past the final access within an
	// epoch: after S1's last use at D0, it still reports 0 for cur=D1.
	g := fig1Graph()
	io := rebuildWithEpochSize(&g.Out, 5, 1, InterOnly, 8, 2)
	ii := rebuildWithEpochSize(&g.Out, 5, 1, InterIntra, 8, 2)
	if got := io.NextRef(1, 1); got != 0 {
		t.Errorf("inter-only NextRef(S1, D1) = %d, want 0 (the documented loss)", got)
	}
	if got := ii.NextRef(1, 1); got == 0 {
		t.Error("inter+intra should see past the final access in the epoch")
	}
}

func TestSingleEpochEncoding(t *testing.T) {
	g := fig1Graph()
	m := rebuildWithEpochSize(&g.Out, 5, 1, SingleEpoch, 8, 2)
	// S1 referenced at D0 (epoch 0) and D4 (epoch 2). Next-epoch bit for
	// E0 must be clear (no use in epoch 1), so past the final access the
	// best SE can say is "2".
	if got := m.NextRef(1, 1); got != 2 {
		t.Errorf("SE NextRef(S1, D1) = %d, want coarse 2", got)
	}
	// S4 referenced at D0 and D2: next-epoch bit set at E0 -> past final
	// access it reports 1.
	if got := m.NextRef(4, 1); got != 1 {
		t.Errorf("SE NextRef(S4, D1) = %d, want 1", got)
	}
	if m.ResidentColumns() != 1 {
		t.Error("single-epoch must pin one column")
	}
	if ii := rebuildWithEpochSize(&g.Out, 5, 1, InterIntra, 8, 2); ii.ResidentColumns() != 2 {
		t.Error("inter+intra must pin two columns")
	}
}

func TestMatrixGeometryDefaults(t *testing.T) {
	g := graph.Uniform(10000, 80000, 3)
	m := BuildMatrix(&g.Out, 10000, 16, InterIntra, 8)
	if m.NumEpochs > 256 {
		t.Errorf("NumEpochs = %d, want <= 256 for 8-bit", m.NumEpochs)
	}
	if m.EpochSize != (10000+255)/256 {
		t.Errorf("EpochSize = %d, want ceil(n/256)", m.EpochSize)
	}
	if m.SubEpochs != 127 {
		t.Errorf("SubEpochs = %d, want 127", m.SubEpochs)
	}
	if m.NumLines != (10000+15)/16 {
		t.Errorf("NumLines = %d", m.NumLines)
	}
	if m.ColumnBytes() != m.NumLines {
		t.Errorf("ColumnBytes = %d, want %d for 8-bit entries", m.ColumnBytes(), m.NumLines)
	}
}

func TestMatrixQuantizationWidths(t *testing.T) {
	g := graph.Uniform(4096, 32768, 5)
	for _, bits := range []uint{4, 8, 16} {
		m := BuildMatrix(&g.Out, 4096, 16, InterIntra, bits)
		if m.NumEpochs > 1<<bits {
			t.Errorf("bits=%d: NumEpochs %d exceeds 2^bits", bits, m.NumEpochs)
		}
		if m.MaxDist() != 1<<(bits-1)-1 {
			t.Errorf("bits=%d: MaxDist = %d", bits, m.MaxDist())
		}
		// Every entry must fit in `bits` bits.
		limit := 1 << int(bits)
		for line := 0; line < m.NumLines; line += 17 {
			for e := 0; e < m.NumEpochs; e++ {
				if int(m.Entry(line, e)) >= limit {
					t.Fatalf("bits=%d: entry overflow %#x", bits, m.Entry(line, e))
				}
			}
		}
	}
}

// TestNextRefAgainstOracle is the central property test: for random graphs
// and positions, the quantized next reference must agree with the exact
// transpose oracle at epoch granularity. InterIntra's value is exact when
// the oracle distance is expressed in epochs (up to saturation), except for
// the documented sub-epoch rounding inside the current epoch.
func TestNextRefAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := graph.Uniform(2048, 16384, 21)
	n := 2048
	m := BuildMatrix(&g.Out, n, 16, InterIntra, 8)
	for trial := 0; trial < 5000; trial++ {
		line := rng.Intn(m.NumLines)
		cur := graph.V(rng.Intn(n))
		got := m.NextRef(line, cur)

		// Oracle: exact next reference over the line's vertices, plus
		// whether any reference (past or future) lands in the current
		// epoch at a sub-epoch >= cur's — in that case Algorithm 2
		// legitimately answers 0 (sub-epoch granularity; a reference at
		// cur itself keeps lastSub >= currSub).
		lo, hi := line*16, (line+1)*16
		if hi > n {
			hi = n
		}
		curEpoch := int(cur) / m.EpochSize
		currSub := (int(cur) - curEpoch*m.EpochSize) / m.SubEpochSize
		oracle := -1
		zeroAllowed := false
		for v := lo; v < hi; v++ {
			if next, ok := g.Out.NextAfter(graph.V(v), cur); ok {
				if oracle == -1 || int(next) < oracle {
					oracle = int(next)
				}
			}
			for _, d := range g.Out.Neighs(graph.V(v)) {
				if int(d)/m.EpochSize == curEpoch {
					sub := (int(d) - curEpoch*m.EpochSize) / m.SubEpochSize
					if sub >= m.SubEpochs {
						sub = m.SubEpochs - 1
					}
					if sub >= currSub {
						zeroAllowed = true
					}
				}
			}
		}
		if oracle == -1 {
			// No future use: must report at least the current-epoch
			// boundary; exact value depends on stale intra bits only when
			// a past use exists in this epoch before cur — Algorithm 2
			// handles that with the sub-epoch check, which can be off by
			// at most the sub-epoch rounding. Distances must still be
			// large unless rounding hides it.
			if got == 0 {
				// Permitted only if the final access shares cur's
				// sub-epoch (rounding).
				e := m.Entry(line, curEpoch)
				if e>>(m.Bits-1) != 0 {
					t.Fatalf("no future use but NextRef=0 with inter entry")
				}
			}
			continue
		}
		oracleEpochDist := oracle/m.EpochSize - curEpoch
		maxD := m.MaxDist()
		wantMin, wantMax := oracleEpochDist, oracleEpochDist
		if oracleEpochDist > maxD {
			wantMin, wantMax = maxD, maxD+1 // saturated
		}
		ok := got >= wantMin && got <= wantMax || got == 0 && zeroAllowed
		if !ok {
			t.Fatalf("line %d cur %d: NextRef=%d oracle epoch dist=%d (allowed [%d,%d], zeroAllowed=%v)",
				line, cur, got, oracleEpochDist, wantMin, wantMax, zeroAllowed)
		}
	}
}

// Property: rows are internally consistent — an entry with distance d>0 at
// epoch e implies the entry at epoch e+d shows a reference this epoch (for
// inter+intra encoding, MSB clear).
func TestMatrixRowConsistencyProperty(t *testing.T) {
	g := graph.Kron(11, 6, 9)
	n := g.NumVertices()
	m := BuildMatrix(&g.Out, n, 16, InterIntra, 8)
	msb := uint16(1) << 7
	f := func(lineRaw uint16, eRaw uint8) bool {
		line := int(lineRaw) % m.NumLines
		e := int(eRaw) % m.NumEpochs
		entry := m.Entry(line, e)
		if entry&msb == 0 {
			return true // referenced this epoch
		}
		d := int(entry &^ msb)
		if d == 0 || d >= m.MaxDist() || e+d >= m.NumEpochs {
			return true // sentinel or saturated
		}
		target := m.Entry(line, e+d)
		return target&msb == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestBuildPOPTAndReservedWays(t *testing.T) {
	g := graph.Uniform(1<<15, 8<<15, 2)
	sp := newTestSpace()
	src := sp.AllocBytes("srcData", g.NumVertices(), 4, true)
	fr := sp.Alloc("frontier", g.NumVertices(), 1, true)
	p := BuildPOPT(&g.Out, g.NumVertices(), InterIntra, 8, src, fr)
	// srcData: 32768 verts / 16 per line = 2048 lines -> 2048 B/column.
	// frontier: 32768 bits / 512 per line = 64 lines -> 64 B/column.
	// Two resident columns each: 2*(2048+64) = 4224 B.
	sets := 128
	want := (4224 + sets*64 - 1) / (sets * 64) // = 1
	if got := p.ReservedWays(sets); got != want {
		t.Errorf("ReservedWays(%d sets) = %d, want %d", sets, got, want)
	}
	if p.Name() != "P-OPT" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestEpochStreamAccounting(t *testing.T) {
	g := graph.Uniform(1<<12, 8<<12, 2)
	sp := newTestSpace()
	src := sp.AllocBytes("srcData", g.NumVertices(), 4, true)
	p := BuildPOPT(&g.Out, g.NumVertices(), InterIntra, 8, src)
	p.ResetEpoch()
	if p.EpochStreams != 1 {
		t.Fatalf("ResetEpoch should stream one column, got %d", p.EpochStreams)
	}
	es := p.streams[0].M.EpochSize
	p.UpdateIndex(graph.V(es)) // cross into epoch 1
	p.UpdateIndex(graph.V(es + 1))
	if p.EpochStreams != 2 {
		t.Fatalf("EpochStreams = %d, want 2 (no re-stream within epoch)", p.EpochStreams)
	}
	wantBytes := uint64(2 * p.streams[0].M.ColumnBytes())
	if p.BytesStreamed != wantBytes {
		t.Fatalf("BytesStreamed = %d, want %d", p.BytesStreamed, wantBytes)
	}
}

func TestNextRefBufferBytes(t *testing.T) {
	// The paper's worked example: 8 cores, 10 L1 MSHRs, 16-way LLC = 1.25KB.
	if got := NextRefBufferBytes(8, 10, 16); got != 1280 {
		t.Errorf("NextRefBufferBytes = %d, want 1280", got)
	}
}

func TestMatrixSharingBetweenSameGeometryStreams(t *testing.T) {
	g := graph.Uniform(1<<12, 8<<12, 2)
	sp := newTestSpace()
	a := sp.AllocBytes("a", g.NumVertices(), 4, true)
	b := sp.AllocBytes("b", g.NumVertices(), 4, true) // same elems/line as a
	fr := sp.Alloc("fr", g.NumVertices(), 1, true)    // different geometry
	p := BuildPOPT(&g.Out, g.NumVertices(), InterIntra, 8, a, b, fr)
	if p.streams[0].M != p.streams[1].M {
		t.Error("same-geometry streams must share one matrix (Section V-F)")
	}
	if p.streams[0].M == p.streams[2].M {
		t.Error("bit-vector stream cannot share the 4B stream's matrix")
	}
	// Reservation counts the shared matrix once: equal to a P-OPT with
	// only streams a and fr.
	ref := BuildPOPT(&g.Out, g.NumVertices(), InterIntra, 8, a, fr)
	if p.ReservedWays(128) != ref.ReservedWays(128) {
		t.Errorf("shared matrix double-counted: %d vs %d ways", p.ReservedWays(128), ref.ReservedWays(128))
	}
	// Epoch streaming also counts it once: 2 distinct matrices per epoch.
	p.ResetEpoch()
	if p.EpochStreams != 2 {
		t.Errorf("EpochStreams = %d, want 2 distinct columns", p.EpochStreams)
	}
}

func TestContextSwitchRefetchesColumns(t *testing.T) {
	g := graph.Uniform(1<<12, 8<<12, 2)
	sp := newTestSpace()
	a := sp.AllocBytes("a", g.NumVertices(), 4, true)
	p := BuildPOPT(&g.Out, g.NumVertices(), InterIntra, 8, a)
	p.ContextSwitch()
	want := uint64(p.streams[0].M.ResidentBytes())
	if p.BytesStreamed != want {
		t.Errorf("context switch streamed %d bytes, want resident %d", p.BytesStreamed, want)
	}
}
