package core

import (
	"popt/internal/cache"
	"popt/internal/graph"
	"popt/internal/mem"
)

// Tiling support (Fig. 13): with CSR-segmenting, a pull execution runs
// once per source-range tile, so P-OPT only needs Rereference Matrix
// columns for the tile's slice of the irregular array — fewer reserved
// ways — while each tile's smaller address range also improves raw
// locality. TilePolicy holds one P-OPT instance per tile and switches
// between them as the kernel advances.

// SubArray returns a view of the irregular array restricted to vertices
// [lo, hi): the address sub-range a tiled P-OPT manages.
func SubArray(a *mem.Array, lo, hi int) *mem.Array {
	return &mem.Array{
		Name:      a.Name,
		Base:      a.Addr(lo),
		ElemBits:  a.ElemBits,
		Len:       hi - lo,
		Irregular: true,
	}
}

// SubAdj restricts an adjacency to vertices [lo, hi), renumbering vertices
// to start at zero while keeping neighbor IDs absolute (they are outer-loop
// positions). For a plain adjacency OA is rebuilt and NA shared; a compact
// one decodes its slice into a small plain sub-adjacency (tiles are
// short-lived matrix-build inputs, not resident state).
func SubAdj(a *graph.Adj, lo, hi graph.V) graph.Adj {
	oa := make([]uint64, hi-lo+1)
	base := a.Start(lo)
	if !a.IsCompact() {
		for v := lo; v <= hi; v++ {
			oa[v-lo] = a.OA[v] - base
		}
		return graph.Adj{OA: oa, NA: a.NA[base:a.OA[hi]]}
	}
	na := make([]graph.V, a.Start(hi)-base)
	it := a.IterFrom(lo)
	w := 0
	for v := lo; v < hi; v++ {
		ns, start := it.Next()
		oa[v-lo] = start - base
		w += copy(na[w:], ns)
	}
	oa[hi-lo] = uint64(w)
	return graph.Adj{OA: oa, NA: na}
}

// TilePolicy is a P-OPT per tile behind one cache.Policy facade.
type TilePolicy struct {
	tiles  []*POPT
	active int
	g      cache.Geometry
}

// NewTiledPOPT builds per-tile P-OPT instances for a segmented pull
// execution over the irregular array irreg: tile i manages the sub-range
// [SrcLo, SrcHi) with a matrix built from the tile's transpose slice.
func NewTiledPOPT(seg *graph.Segmented, irreg *mem.Array, kind Kind, bits uint) *TilePolicy {
	n := seg.G.NumVertices()
	tp := &TilePolicy{tiles: make([]*POPT, len(seg.Tiles))}
	for i, t := range seg.Tiles {
		sub := SubArray(irreg, int(t.SrcLo), int(t.SrcHi))
		adj := SubAdj(&seg.G.Out, t.SrcLo, t.SrcHi)
		m := BuildMatrix(&adj, n, sub.ElemsPerLine(), kind, bits)
		tp.tiles[i] = NewPOPT(Stream{Arr: sub, M: m})
	}
	return tp
}

// SetTile switches the active tile; kernels call it at tile boundaries.
func (tp *TilePolicy) SetTile(i int) { tp.active = i }

// ReservedWays returns the ways needed for the largest tile's columns
// (tiles run one at a time, so the reservation is the max, not the sum).
func (tp *TilePolicy) ReservedWays(sets int) int {
	max := 0
	for _, t := range tp.tiles {
		if w := t.ReservedWays(sets); w > max {
			max = w
		}
	}
	return max
}

// BytesStreamed totals Rereference Matrix streaming traffic over tiles.
func (tp *TilePolicy) BytesStreamed() uint64 {
	var total uint64
	for _, t := range tp.tiles {
		total += t.BytesStreamed
	}
	return total
}

// Name implements cache.Policy.
func (tp *TilePolicy) Name() string { return "P-OPT-tiled" }

// Bind implements cache.Policy.
func (tp *TilePolicy) Bind(g cache.Geometry) {
	tp.g = g
	for _, t := range tp.tiles {
		t.Bind(g)
	}
}

// OnHit implements cache.Policy.
func (tp *TilePolicy) OnHit(set, way int, acc mem.Access) { tp.tiles[tp.active].OnHit(set, way, acc) }

// OnFill implements cache.Policy.
func (tp *TilePolicy) OnFill(set, way int, acc mem.Access) {
	tp.tiles[tp.active].OnFill(set, way, acc)
}

// OnEvict implements cache.Policy.
func (tp *TilePolicy) OnEvict(set, way int) { tp.tiles[tp.active].OnEvict(set, way) }

// Victim implements cache.Policy.
func (tp *TilePolicy) Victim(set int, lines []cache.Line, acc mem.Access) int {
	return tp.tiles[tp.active].Victim(set, lines, acc)
}

// UpdateIndex implements VertexIndexed.
func (tp *TilePolicy) UpdateIndex(v graph.V) { tp.tiles[tp.active].UpdateIndex(v) }

// ResetEpoch restarts the active tile's epoch tracking.
func (tp *TilePolicy) ResetEpoch() { tp.tiles[tp.active].ResetEpoch() }
