package core

import (
	"popt/internal/cache"
	"popt/internal/graph"
	"popt/internal/mem"
)

// Stream pairs an irregularly accessed array with its Rereference Matrix.
type Stream struct {
	Arr *mem.Array
	M   *Matrix
}

// POPT is the practical transpose-based policy (Sections IV-V). It looks
// up quantized next references in Rereference Matrix columns pinned in
// reserved LLC ways, pays the costs the paper models — reduced effective
// LLC capacity and an epoch-boundary column stream — and breaks
// next-reference ties with DRRIP.
type POPT struct {
	g       cache.Geometry
	streams []Stream
	cur     graph.V
	epoch   int
	tie     *cache.DRRIP
	// TieFirst disables the DRRIP tie-breaker (Section V-C) and keeps the
	// first candidate instead; an ablation knob for how much the
	// tie-breaking policy matters at a given quantization width.
	TieFirst bool

	// Ties counts replacements decided by the tie-breaker; Fig. 15 reports
	// the tie rate per quantization width. Lookups counts replacements
	// that consulted the matrix.
	Ties    uint64
	Lookups uint64
	// EpochStreams counts stream_nextrefs invocations and BytesStreamed
	// the Rereference Matrix bytes moved by the streaming engine; the
	// timing model charges them at peak DRAM bandwidth.
	EpochStreams  uint64
	BytesStreamed uint64
}

// NewPOPT builds a P-OPT policy over the given streams. All streams must
// share the same epoch geometry (they do by construction, since epoch
// count depends only on quantization width and vertex count).
func NewPOPT(streams ...Stream) *POPT {
	if len(streams) == 0 {
		panic("core: P-OPT needs at least one irregular stream")
	}
	for _, s := range streams[1:] {
		if s.M.NumEpochs != streams[0].M.NumEpochs || s.M.EpochSize != streams[0].M.EpochSize {
			panic("core: P-OPT streams must share epoch geometry")
		}
	}
	return &POPT{streams: streams, tie: cache.NewDRRIP(1)}
}

// Name implements cache.Policy.
func (p *POPT) Name() string {
	switch p.streams[0].M.Kind {
	case InterOnly:
		return "P-OPT-inter-only"
	case SingleEpoch:
		return "P-OPT-SE"
	default:
		return "P-OPT"
	}
}

// Bind implements cache.Policy.
func (p *POPT) Bind(g cache.Geometry) {
	p.g = g
	p.tie.Bind(g)
}

// matrices returns the distinct Rereference Matrices behind the streams,
// deduplicated by their shared immutable Table (streams with identical
// line geometry share one table; see BuildPOPT): the streaming engine
// moves each encoded table's column once however many views exist.
func (p *POPT) matrices() []*Matrix {
	var ms []*Matrix
	for _, s := range p.streams {
		shared := false
		for _, m := range ms {
			if m.Table == s.M.Table {
				shared = true
				break
			}
		}
		if !shared {
			ms = append(ms, s.M)
		}
	}
	return ms
}

// UpdateIndex models the update_index instruction. Crossing into a new
// epoch triggers the streaming engine (stream_nextrefs): one column per
// distinct matrix is fetched into the reserved ways.
func (p *POPT) UpdateIndex(v graph.V) {
	p.cur = v
	if e := p.streams[0].M.EpochOf(v); e != p.epoch {
		p.epoch = e
		p.streamColumns()
	}
}

func (p *POPT) streamColumns() {
	for _, m := range p.matrices() {
		p.EpochStreams++
		p.BytesStreamed += uint64(m.ColumnBytes())
	}
}

// ResetEpoch restarts epoch tracking at the top of a traversal (a new
// kernel iteration re-streams the first column).
func (p *POPT) ResetEpoch() {
	p.epoch = 0
	p.streamColumns()
}

// ContextSwitch models Section V-F's context-switch support: the
// architectural registers travel with the process context, and on
// resumption the streaming engine refetches the resident columns of every
// distinct matrix into the reserved ways.
func (p *POPT) ContextSwitch() {
	for _, m := range p.matrices() {
		p.EpochStreams++
		p.BytesStreamed += uint64(m.ResidentBytes())
	}
}

// ReservedWays returns how many LLC ways must be reserved to pin the
// resident Rereference Matrix columns of every distinct matrix, for an
// LLC with the given set count (Section V-A: enough ways to hold
// 2*numLines*1B with the default encoding).
func (p *POPT) ReservedWays(sets int) int {
	total := 0
	for _, m := range p.matrices() {
		total += m.ResidentBytes()
	}
	wayBytes := sets * mem.LineSize
	return (total + wayBytes - 1) / wayBytes
}

// OnHit implements cache.Policy.
func (p *POPT) OnHit(set, way int, acc mem.Access) { p.tie.OnHit(set, way, acc) }

// OnFill implements cache.Policy.
func (p *POPT) OnFill(set, way int, acc mem.Access) { p.tie.OnFill(set, way, acc) }

// OnEvict implements cache.Policy.
func (p *POPT) OnEvict(set, way int) { p.tie.OnEvict(set, way) }

func (p *POPT) stream(addr uint64) *Stream {
	for i := range p.streams {
		if p.streams[i].Arr.Contains(addr) {
			return &p.streams[i]
		}
	}
	return nil
}

// Victim implements cache.Policy: the next-ref engine's candidate search
// (Section V-C). Streaming lines evict first; otherwise every way's
// quantized next reference comes from the Rereference Matrix (Algorithm 2)
// and the furthest wins, DRRIP settling ties.
//
//popt:hot
func (p *POPT) Victim(set int, lines []cache.Line, acc mem.Access) int {
	best, bestDist, tied := -1, -1, false
	for w := p.g.ReservedWays; w < p.g.Ways; w++ {
		s := p.stream(lines[w].Addr)
		if s == nil {
			return w
		}
		d := s.M.NextRef(s.Arr.LineID(lines[w].Addr), p.cur)
		switch {
		case d > bestDist:
			best, bestDist, tied = w, d, false
		case d == bestDist:
			tied = true
			if !p.TieFirst && p.tie.RRPV(set, w) > p.tie.RRPV(set, best) {
				best = w
			}
		}
	}
	p.Lookups++
	if tied {
		p.Ties++
	}
	return best
}

// TieRate returns the fraction of matrix-guided replacements that ended in
// a tie (Section VII-D reports ~41%/12%/0% for 4/8/16-bit quantization).
func (p *POPT) TieRate() float64 {
	if p.Lookups == 0 {
		return 0
	}
	return float64(p.Ties) / float64(p.Lookups)
}
