package core

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"runtime"
	"sync"

	"popt/internal/cache"
	"popt/internal/graph"
	"popt/internal/mem"
)

// infDist marks "no future reference" in victim scans.
const infDist = math.MaxInt64

// OracleStream describes one irregularly accessed array to T-OPT: the
// array's address range plus the adjacency that encodes its references.
// For a pull kernel over the CSC, Ref is the graph's out-adjacency (its
// transpose); for push over the CSR, Ref is the in-adjacency.
type OracleStream struct {
	Arr *mem.Array
	Ref *graph.Adj

	// LR is the per-cache-line merge of the vertices' sorted reference
	// lists, so a next-reference query is one binary search instead of a
	// scan per vertex. NewTOPT builds it when nil; callers that simulate
	// the same (transpose, line geometry) many times can build it once
	// with BuildLineRefs and share it read-only across runs. This is a
	// simulator-speed optimization only: hardware T-OPT would scan the
	// transpose, and the paper charges it nothing either way (T-OPT is
	// the idealized bound).
	LR *LineRefs
}

// LineRefs is the immutable merged-transpose table behind an
// OracleStream: for each cache line of the irregular array, the sorted
// union of its vertices' reference positions. Like core.Table it never
// changes after construction and is safe to share across concurrent
// simulations.
//
//popt:frozen
type LineRefs struct {
	oa   []uint64
	refs []graph.V
}

// BuildLineRefs merges the sorted neighbor lists of the vertices sharing
// each cache line (elemsPerLine of them) into one sorted list per line.
// Lines are independent, so the merge is partitioned across GOMAXPROCS
// workers; the result is identical at every worker count.
func BuildLineRefs(ref *graph.Adj, elemsPerLine int) *LineRefs {
	n := ref.N()
	numLines := (n + elemsPerLine - 1) / elemsPerLine
	lr := &LineRefs{oa: make([]uint64, numLines+1)}
	total := uint64(0)
	for l := 0; l < numLines; l++ {
		lr.oa[l] = total
		lo, hi := l*elemsPerLine, (l+1)*elemsPerLine
		if hi > n {
			hi = n
		}
		for v := lo; v < hi; v++ {
			total += uint64(ref.Degree(graph.V(v)))
		}
	}
	lr.oa[numLines] = total
	lr.refs = make([]graph.V, total)
	workers := runtime.GOMAXPROCS(0)
	if max := numLines / minLinesPerWorker; workers > max {
		workers = max
	}
	if workers <= 1 {
		lr.mergeLines(ref, elemsPerLine, 0, numLines)
		return lr
	}
	var wg sync.WaitGroup
	chunk := (numLines + workers - 1) / workers
	for lo := 0; lo < numLines; lo += chunk {
		hi := lo + chunk
		if hi > numLines {
			hi = numLines
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			lr.mergeLines(ref, elemsPerLine, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return lr
}

// mergeLines fills and sorts the reference segments of lines [lineLo,
// lineHi); each worker of the parallel build owns a disjoint range. The
// per-line sort is graph.SortV rather than sort.Slice: one closure
// allocation and reflect swapper per cache line adds up over a
// million-line table, and the manual sort keeps this loop escape-free.
//
//popt:hot
func (lr *LineRefs) mergeLines(ref *graph.Adj, elemsPerLine, lineLo, lineHi int) {
	n := ref.N()
	for l := lineLo; l < lineHi; l++ {
		w := lr.oa[l]
		lo, hi := l*elemsPerLine, (l+1)*elemsPerLine
		if hi > n {
			hi = n
		}
		for v := lo; v < hi; v++ {
			w += uint64(ref.CopyNeighbors(lr.refs[w:], graph.V(v)))
		}
		graph.SortV(lr.refs[lr.oa[l]:w])
	}
}

// MemBytes returns the resident size of the merged reference table, for
// footprint reports (-memstats).
func (lr *LineRefs) MemBytes() uint64 {
	return uint64(8*len(lr.oa)) + uint64(4*len(lr.refs))
}

// Checksum returns an FNV-1a hash of the merged reference table; tests
// use it to assert immutability under concurrent sharing.
func (lr *LineRefs) Checksum() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, x := range lr.oa {
		binary.LittleEndian.PutUint64(buf[:], x)
		h.Write(buf[:])
	}
	for _, r := range lr.refs {
		binary.LittleEndian.PutUint32(buf[:4], uint32(r))
		h.Write(buf[:4])
	}
	return h.Sum64()
}

// next returns the smallest reference position of line l strictly greater
// than cur, or ok=false. The binary search is written out by hand rather
// than through sort.Search: this runs once per candidate way per LLC
// eviction, and the closure-based form costs an indirect call per probe
// and defeats bounds-check elimination on the segment.
//
//popt:hot
func (lr *LineRefs) next(l int, cur graph.V) (graph.V, bool) {
	seg := lr.refs[lr.oa[l]:lr.oa[l+1]]
	lo, hi := 0, len(seg)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if seg[mid] > cur {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == len(seg) {
		return 0, false
	}
	return seg[lo], true
}

// TOPT is transpose-based optimal replacement (Section III): at eviction
// time it scans the transpose neighbor lists of every vertex in each
// candidate line to find exact next references, evicting the line used
// furthest in the future. It is idealized — the simulator charges nothing
// for the transpose lookups — so it upper-bounds P-OPT (Fig. 4, 7, 10).
type TOPT struct {
	g       cache.Geometry
	streams []OracleStream
	cur     graph.V
	tie     *cache.DRRIP
	// Ties counts victim selections where multiple lines shared the
	// maximal next reference and the tie-breaker decided.
	Ties uint64
}

// NewTOPT builds a T-OPT policy over the given irregular streams,
// building any merged-transpose tables the caller did not supply.
func NewTOPT(streams ...OracleStream) *TOPT {
	p := &TOPT{streams: streams, tie: cache.NewDRRIP(1)}
	for i := range p.streams {
		if p.streams[i].LR == nil {
			p.streams[i].LR = BuildLineRefs(p.streams[i].Ref, p.streams[i].Arr.ElemsPerLine())
		}
	}
	return p
}

// Name implements cache.Policy.
func (p *TOPT) Name() string { return "T-OPT" }

// Bind implements cache.Policy.
func (p *TOPT) Bind(g cache.Geometry) {
	p.g = g
	p.tie.Bind(g)
}

// UpdateIndex models the paper's update_index instruction: the kernel
// reports the outer-loop vertex it is currently processing.
func (p *TOPT) UpdateIndex(v graph.V) { p.cur = v }

// OnHit implements cache.Policy (tie-breaker state piggybacks on DRRIP).
func (p *TOPT) OnHit(set, way int, acc mem.Access) { p.tie.OnHit(set, way, acc) }

// OnFill implements cache.Policy.
func (p *TOPT) OnFill(set, way int, acc mem.Access) { p.tie.OnFill(set, way, acc) }

// OnEvict implements cache.Policy.
func (p *TOPT) OnEvict(set, way int) { p.tie.OnEvict(set, way) }

// stream returns the irregular stream containing addr, or nil (streaming
// data), i.e. the irreg_base/irreg_bound register comparison.
func (p *TOPT) stream(addr uint64) *OracleStream {
	for i := range p.streams {
		if p.streams[i].Arr.Contains(addr) {
			return &p.streams[i]
		}
	}
	return nil
}

// nextRef returns the exact distance (in outer-loop vertices) to the next
// reference of the line at addr within s, or infDist.
//
//popt:hot
func (p *TOPT) nextRef(s *OracleStream, addr uint64) int64 {
	if next, ok := s.LR.next(s.Arr.LineID(addr), p.cur); ok {
		return int64(next) - int64(p.cur)
	}
	return infDist
}

// Victim implements cache.Policy following Section V-C's candidate search:
// prefer any way holding streaming (non-irregular) data; otherwise evict
// the irregular line referenced furthest in the future, breaking ties with
// DRRIP.
//
//popt:hot
func (p *TOPT) Victim(set int, lines []cache.Line, acc mem.Access) int {
	best, bestDist, tied := -1, int64(-1), false
	for w := p.g.ReservedWays; w < p.g.Ways; w++ {
		s := p.stream(lines[w].Addr)
		if s == nil {
			return w // streaming data has re-reference distance infinity
		}
		d := p.nextRef(s, lines[w].Addr)
		switch {
		case d > bestDist:
			best, bestDist, tied = w, d, false
		case d == bestDist:
			tied = true
			if p.tie.RRPV(set, w) > p.tie.RRPV(set, best) {
				best = w
			}
		}
	}
	if tied {
		p.Ties++
	}
	return best
}
