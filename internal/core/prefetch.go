package core

import (
	"popt/internal/cache"
	"popt/internal/graph"
	"popt/internal/mem"
)

// TransposePrefetcher is the extension the paper's related-work section
// sketches and leaves open: "next references in a graph's transpose could
// also be used for timely prefetching of irregular data." For a pull
// kernel, the traversal adjacency (CSC) lists exactly which irregular
// elements the kernel will touch while processing each upcoming
// destination, so when the outer loop reaches vertex v the prefetcher
// issues the irregular lines needed at v+Depth — perfectly accurate,
// structure-driven lookahead (unlike stride prefetchers, which the paper
// disables as useless for graph data).
//
// It implements VertexIndexed and composes with any replacement policy via
// CombineHooks.
type TransposePrefetcher struct {
	H *cache.Hierarchy
	// Trav is the traversal-direction adjacency: In for pull kernels
	// (in-neighbors of upcoming destinations index srcData).
	Trav *graph.Adj
	// Arr is the irregular array to prefetch.
	Arr *mem.Array
	// Depth is the lookahead distance in outer-loop vertices.
	Depth int

	last    graph.V
	started bool
	scratch []graph.V
}

// NewTransposePrefetcher wires a prefetcher with the given lookahead.
func NewTransposePrefetcher(h *cache.Hierarchy, trav *graph.Adj, arr *mem.Array, depth int) *TransposePrefetcher {
	if depth < 1 {
		depth = 1
	}
	return &TransposePrefetcher{H: h, Trav: trav, Arr: arr, Depth: depth}
}

// prefetchPC marks prefetch accesses in the reference stream.
const prefetchPC uint16 = 0x7E

// UpdateIndex implements VertexIndexed: on outer-loop progress, prefetch
// the irregular lines referenced at vertex v+Depth (covering any skipped
// vertices so no target is missed).
func (p *TransposePrefetcher) UpdateIndex(v graph.V) {
	n := graph.V(p.Trav.N())
	from := v + graph.V(p.Depth)
	if p.started && p.last < v {
		from = p.last + graph.V(p.Depth) + 1
		if from <= v {
			from = v + 1
		}
	}
	p.started = true
	to := v + graph.V(p.Depth)
	p.last = v
	for target := from; target <= to && target < n; target++ {
		for _, u := range p.Trav.Neighbors(target, &p.scratch) {
			if int(u) < p.Arr.Len {
				p.H.Prefetch(mem.Access{Addr: p.Arr.Addr(int(u)), PC: prefetchPC})
			}
		}
	}
}

// ResetEpoch restarts lookahead at a new traversal.
func (p *TransposePrefetcher) ResetEpoch() { p.started = false }

// CombineHooks fans update_index (and epoch/tile events) out to several
// vertex-indexed consumers, letting a prefetcher ride alongside a
// replacement policy.
func CombineHooks(hooks ...VertexIndexed) VertexIndexed { return multiHook(hooks) }

type multiHook []VertexIndexed

// UpdateIndex implements VertexIndexed.
func (m multiHook) UpdateIndex(v graph.V) {
	for _, h := range m {
		h.UpdateIndex(v)
	}
}

// ResetEpoch forwards to members that track epochs.
func (m multiHook) ResetEpoch() {
	for _, h := range m {
		if er, ok := h.(interface{ ResetEpoch() }); ok {
			er.ResetEpoch()
		}
	}
}

// SetTile forwards to members that track tiles.
func (m multiHook) SetTile(t int) {
	for _, h := range m {
		if ts, ok := h.(interface{ SetTile(int) }); ok {
			ts.SetTile(t)
		}
	}
}
