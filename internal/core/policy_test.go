package core

import (
	"testing"

	"popt/internal/cache"
	"popt/internal/graph"
	"popt/internal/mem"
)

// fig3Setup builds the paper's Figure 3 scenario: the example graph, a
// srcData array with ONE element per cache line (so vertices and lines
// coincide), and a 2-way fully-associative cache holding srcData lines.
func fig3Setup(t *testing.T) (*graph.Graph, *mem.Array) {
	t.Helper()
	g := fig1Graph()
	sp := mem.NewSpace()
	// 64-byte elements -> one vertex per line, as in the figure.
	src := sp.AllocBytes("srcData", g.NumVertices(), 64, true)
	return g, src
}

func lineFor(a *mem.Array, v int) cache.Line {
	return cache.Line{Valid: true, Addr: a.Addr(v)}
}

func TestTOPTReplacementScenarioA(t *testing.T) {
	// Scenario A (Fig. 3, center): processing D0, cache holds
	// srcData[S1] and srcData[S2]; srcData[S4] needs a slot. S1's next
	// reference is D4, S2's is D1 -> evict S1.
	g, src := fig3Setup(t)
	p := BuildTOPT(&g.Out, src)
	p.Bind(cache.Geometry{Sets: 1, Ways: 2})
	p.UpdateIndex(0) // processing D0
	lines := []cache.Line{lineFor(src, 1), lineFor(src, 2)}
	victim := p.Victim(0, lines, mem.Access{Addr: src.Addr(4)})
	if victim != 0 {
		t.Errorf("scenario A: evicted way %d (S%d), want way 0 (S1)", victim, victim+1)
	}
}

func TestTOPTReplacementScenarioB(t *testing.T) {
	// Scenario B (Fig. 3, right): processing D1, cache holds srcData[S4]
	// and srcData[S2]; srcData[S3] arrives. S4's next ref is D2, S2's is
	// D3 -> evict S2.
	g, src := fig3Setup(t)
	p := BuildTOPT(&g.Out, src)
	p.Bind(cache.Geometry{Sets: 1, Ways: 2})
	p.UpdateIndex(1) // processing D1
	lines := []cache.Line{lineFor(src, 4), lineFor(src, 2)}
	victim := p.Victim(0, lines, mem.Access{Addr: src.Addr(3)})
	if victim != 1 {
		t.Errorf("scenario B: evicted way %d, want way 1 (S2)", victim)
	}
}

func TestTOPTPrefersStreamingData(t *testing.T) {
	// Section V-C: a way holding non-irregular (streaming) data is always
	// the replacement candidate, regardless of irregular next references.
	g, src := fig3Setup(t)
	p := BuildTOPT(&g.Out, src)
	p.Bind(cache.Geometry{Sets: 1, Ways: 3})
	p.UpdateIndex(0)
	lines := []cache.Line{
		lineFor(src, 1),
		{Valid: true, Addr: 0x10}, // outside srcData: streaming
		lineFor(src, 2),
	}
	if victim := p.Victim(0, lines, mem.Access{Addr: src.Addr(4)}); victim != 1 {
		t.Errorf("victim = %d, want the streaming way 1", victim)
	}
}

func TestTOPTEvictsNoFutureUseFirst(t *testing.T) {
	// S0's only out-neighbor is D2; past D2 it is dead and must lose to
	// any vertex with a future reference.
	g, src := fig3Setup(t)
	p := BuildTOPT(&g.Out, src)
	p.Bind(cache.Geometry{Sets: 1, Ways: 2})
	p.UpdateIndex(2)                                        // past D2's processing start; S0 next ref gone after D2
	lines := []cache.Line{lineFor(src, 0), lineFor(src, 2)} // S2 referenced at D3
	if victim := p.Victim(0, lines, mem.Access{Addr: src.Addr(4)}); victim != 0 {
		t.Errorf("victim = %d, want dead S0 at way 0", victim)
	}
}

func TestPOPTReplacementMatchesScenarios(t *testing.T) {
	// With fine quantization (epoch size 1 via many epochs), P-OPT's
	// decisions reproduce T-OPT's on the Figure 3 scenarios.
	g, src := fig3Setup(t)
	p := BuildPOPT(&g.Out, g.NumVertices(), InterIntra, 8, src)
	p.Bind(cache.Geometry{Sets: 1, Ways: 2})
	p.UpdateIndex(0)
	lines := []cache.Line{lineFor(src, 1), lineFor(src, 2)}
	if victim := p.Victim(0, lines, mem.Access{Addr: src.Addr(4)}); victim != 0 {
		t.Errorf("scenario A under P-OPT: victim %d, want 0 (S1)", victim)
	}
	// Scenario B exhibits the documented quantization boundary: with one
	// vertex per epoch, S2's reference AT D1 is indistinguishable from a
	// later reference within the epoch, so Algorithm 2 reports distance 0
	// for S2 and 1 for S4 and evicts S4 — a legal approximation where
	// T-OPT (strictly-future references) would evict S2. Assert the
	// Algorithm 2 semantics.
	p.UpdateIndex(1)
	lines = []cache.Line{lineFor(src, 4), lineFor(src, 2)}
	if victim := p.Victim(0, lines, mem.Access{Addr: src.Addr(3)}); victim != 0 {
		t.Errorf("scenario B under P-OPT: victim %d, want 0 (S4, quantized view)", victim)
	}
}

func TestPOPTPrefersStreamingData(t *testing.T) {
	g, src := fig3Setup(t)
	p := BuildPOPT(&g.Out, g.NumVertices(), InterIntra, 8, src)
	p.Bind(cache.Geometry{Sets: 1, Ways: 2})
	p.UpdateIndex(0)
	lines := []cache.Line{{Valid: true, Addr: 0x40}, lineFor(src, 1)}
	if victim := p.Victim(0, lines, mem.Access{Addr: src.Addr(4)}); victim != 0 {
		t.Errorf("victim = %d, want streaming way 0", victim)
	}
}

func TestPOPTRespectsReservedWaysInVictim(t *testing.T) {
	g, src := fig3Setup(t)
	p := BuildPOPT(&g.Out, g.NumVertices(), InterIntra, 8, src)
	p.Bind(cache.Geometry{Sets: 1, Ways: 3, ReservedWays: 1})
	p.UpdateIndex(0)
	lines := []cache.Line{
		{Valid: true, Addr: 0x40}, // reserved way: must never be chosen
		lineFor(src, 1),
		lineFor(src, 2),
	}
	for i := 0; i < 4; i++ {
		if victim := p.Victim(0, lines, mem.Access{Addr: src.Addr(4)}); victim == 0 {
			t.Fatal("P-OPT chose a reserved way")
		}
	}
}

func TestPOPTMultipleStreams(t *testing.T) {
	// Two irregular arrays with different element widths share one P-OPT;
	// victim lookups must route each address to its own matrix.
	g := graph.Uniform(2048, 16384, 3)
	sp := mem.NewSpace()
	src := sp.AllocBytes("srcData", 2048, 4, true)
	fr := sp.Alloc("frontier", 2048, 1, true)
	p := BuildPOPT(&g.Out, 2048, InterIntra, 8, src, fr)
	p.Bind(cache.Geometry{Sets: 1, Ways: 2})
	p.UpdateIndex(0)
	lines := []cache.Line{
		{Valid: true, Addr: src.Addr(16)},
		{Valid: true, Addr: fr.Addr(1024)},
	}
	// Just exercise the path; the assertion is absence of panics plus a
	// valid way.
	if v := p.Victim(0, lines, mem.Access{Addr: src.Addr(512)}); v != 0 && v != 1 {
		t.Fatalf("invalid victim %d", v)
	}
	if p.Lookups != 1 {
		t.Fatalf("Lookups = %d, want 1", p.Lookups)
	}
}

func TestTiledPOPTSwitchesTiles(t *testing.T) {
	g := graph.Uniform(4096, 32768, 9)
	seg := graph.Segment(g, 4)
	sp := mem.NewSpace()
	irr := sp.AllocBytes("contrib", 4096, 4, true)
	tp := NewTiledPOPT(seg, irr, InterIntra, 8)
	tp.Bind(cache.Geometry{Sets: 4, Ways: 4})

	// Reserved ways must reflect the max single tile, which is smaller
	// than the whole-graph reservation.
	whole := BuildPOPT(&g.Out, 4096, InterIntra, 8, irr)
	if tp.ReservedWays(16) > whole.ReservedWays(16) {
		t.Errorf("tiled reservation %d exceeds untiled %d", tp.ReservedWays(16), whole.ReservedWays(16))
	}

	// Lines outside the active tile's range count as streaming (dead) and
	// evict first.
	tp.SetTile(0)
	tp.UpdateIndex(0)
	lo3 := int(seg.Tiles[3].SrcLo)
	lines := []cache.Line{
		{Valid: true, Addr: irr.Addr(lo3)}, // belongs to tile 3, dead now
		{Valid: true, Addr: irr.Addr(0)},
		{Valid: true, Addr: irr.Addr(16)},
		{Valid: true, Addr: irr.Addr(32)},
	}
	if v := tp.Victim(0, lines, mem.Access{Addr: irr.Addr(48)}); v != 0 {
		t.Errorf("victim = %d, want the out-of-tile way 0", v)
	}
}

func TestSubAdjSharesNeighborStorage(t *testing.T) {
	g := graph.Uniform(1024, 8192, 4)
	sub := SubAdj(&g.Out, 256, 512)
	if sub.N() != 256 {
		t.Fatalf("sub vertices = %d, want 256", sub.N())
	}
	for v := graph.V(0); v < 256; v++ {
		want := g.Out.Neighs(v + 256)
		got := sub.Neighs(v)
		if len(want) != len(got) {
			t.Fatalf("vertex %d: %d neighbors, want %d", v, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("vertex %d neighbor %d mismatch", v, i)
			}
		}
	}
}

func TestSubArrayGeometry(t *testing.T) {
	sp := mem.NewSpace()
	a := sp.AllocBytes("x", 1024, 4, true)
	s := SubArray(a, 256, 768)
	if s.Base != a.Addr(256) || s.Len != 512 {
		t.Fatalf("SubArray = base %#x len %d", s.Base, s.Len)
	}
	if !s.Contains(a.Addr(700)) || s.Contains(a.Addr(100)) || s.Contains(a.Addr(800)) {
		t.Error("SubArray Contains is wrong")
	}
}

func TestTOPTTieCounting(t *testing.T) {
	// Two vertices with identical next references tie; the counter must
	// move and the result must be a legal way.
	edges := []graph.Edge{{Src: 0, Dst: 3}, {Src: 1, Dst: 3}}
	g := graph.FromEdges("tie", 4, edges)
	sp := mem.NewSpace()
	src := sp.AllocBytes("srcData", 4, 64, true)
	p := BuildTOPT(&g.Out, src)
	p.Bind(cache.Geometry{Sets: 1, Ways: 2})
	p.UpdateIndex(0)
	lines := []cache.Line{lineFor(src, 0), lineFor(src, 1)}
	v := p.Victim(0, lines, mem.Access{Addr: src.Addr(2)})
	if v != 0 && v != 1 {
		t.Fatalf("invalid victim %d", v)
	}
	if p.Ties != 1 {
		t.Errorf("Ties = %d, want 1", p.Ties)
	}
}
