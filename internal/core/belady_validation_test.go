package core

import (
	"testing"

	"popt/internal/cache"
	"popt/internal/graph"
	"popt/internal/mem"
)

// TestTOPTMatchesBeladyMIN validates the paper's central claim (Section
// III): for a pull traversal's irregular accesses, replacement guided by
// the graph transpose closely emulates true offline Belady MIN. T-OPT
// operates at outer-loop-vertex granularity — it cannot see position
// within the current vertex's neighbor list, so (a) lines next used at the
// same future vertex tie, and (b) a line about to be reused later within
// the current vertex reads as "next used at a later vertex". Those are the
// only gaps, and they cost a bounded sliver of misses; MIN must never
// lose.
func TestTOPTMatchesBeladyMIN(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Uniform(512, 4096, 3),
		graph.Kron(9, 6, 4),
		graph.Community(512, 8, 32, 0.8, 5),
	} {
		g := g
		t.Run(g.Name, func(t *testing.T) {
			n := g.NumVertices()
			sp := mem.NewSpace()
			src := sp.AllocBytes("srcData", n, 64, true) // one vertex per line

			// The pull traversal's irregular reference stream.
			var trace []uint64
			var vertexAt []graph.V // outer-loop vertex of each access
			for dst := 0; dst < n; dst++ {
				for _, s := range g.In.Neighs(graph.V(dst)) {
					trace = append(trace, src.Addr(int(s)))
					vertexAt = append(vertexAt, graph.V(dst))
				}
			}

			const ways = 16
			min := cache.NewLevel("MIN", ways*mem.LineSize, ways, cache.NewBeladyMIN(trace))
			minStats := cache.SimulateTrace(min, trace)

			topt := BuildTOPT(&g.Out, src)
			lvl := cache.NewLevel("TOPT", ways*mem.LineSize, ways, topt)
			for i, addr := range trace {
				topt.UpdateIndex(vertexAt[i])
				a := mem.Access{Addr: addr}
				if !lvl.Access(a) {
					lvl.Fill(a)
				}
			}

			t.Logf("%s: MIN misses=%d T-OPT misses=%d ties=%d", g.Name, minStats.Misses, lvl.Stats.Misses, topt.Ties)
			// MIN is optimal on this single (fully-associative) set, so
			// T-OPT can never beat it; vertex granularity costs ~10% extra
			// misses at this tiny scale (shrinking as vertices-per-epoch
			// of real traversals grow), so require within 15%.
			if lvl.Stats.Misses < minStats.Misses {
				t.Fatalf("T-OPT (%d) beat MIN (%d): MIN broken", lvl.Stats.Misses, minStats.Misses)
			}
			if float64(lvl.Stats.Misses) > 1.15*float64(minStats.Misses) {
				t.Errorf("T-OPT misses %d stray more than 15%% from MIN %d", lvl.Stats.Misses, minStats.Misses)
			}
		})
	}
}

// TestPOPTApproachesBeladyMIN quantifies quantization loss end to end:
// 8-bit P-OPT (no reserved-way cost, single-level) should stay within ~15%
// of MIN's miss count on the same stream.
func TestPOPTApproachesBeladyMIN(t *testing.T) {
	g := graph.Uniform(1024, 8192, 9)
	n := g.NumVertices()
	sp := mem.NewSpace()
	src := sp.AllocBytes("srcData", n, 64, true)

	var trace []uint64
	var vertexAt []graph.V
	for dst := 0; dst < n; dst++ {
		for _, s := range g.In.Neighs(graph.V(dst)) {
			trace = append(trace, src.Addr(int(s)))
			vertexAt = append(vertexAt, graph.V(dst))
		}
	}
	const ways = 16
	minStats := cache.SimulateTrace(cache.NewLevel("MIN", ways*mem.LineSize, ways, cache.NewBeladyMIN(trace)), trace)

	popt := BuildPOPT(&g.Out, n, InterIntra, 8, src)
	lvl := cache.NewLevel("POPT", ways*mem.LineSize, ways, popt)
	for i, addr := range trace {
		popt.UpdateIndex(vertexAt[i])
		a := mem.Access{Addr: addr}
		if !lvl.Access(a) {
			lvl.Fill(a)
		}
	}
	t.Logf("MIN=%d P-OPT=%d (tie rate %.0f%%)", minStats.Misses, lvl.Stats.Misses, 100*popt.TieRate())
	if float64(lvl.Stats.Misses) > 1.15*float64(minStats.Misses) {
		t.Errorf("P-OPT misses %d stray more than 15%% from MIN %d", lvl.Stats.Misses, minStats.Misses)
	}
}
