// Package core implements the paper's contribution: transpose-based
// optimal cache replacement (T-OPT) and its practical architecture P-OPT,
// built around the quantized Rereference Matrix (Sections III-V).
//
// Both policies plug into the internal/cache Policy interface and manage
// the irregularly accessed arrays of a graph kernel (srcData/dstData and
// frontiers). T-OPT consults the graph's transpose directly and is the
// idealized, zero-overhead upper bound; P-OPT consults the Rereference
// Matrix, pays for it with reserved LLC ways and epoch-boundary column
// streaming, and approaches T-OPT closely (Fig. 7, 10).
package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"

	"popt/internal/graph"
	"popt/internal/mem"
)

// Kind selects the Rereference Matrix entry encoding.
type Kind int

const (
	// InterOnly entries store only the distance (in epochs) to the epoch
	// of the line's next reference (Fig. 5). Cheap but lossy: after the
	// final access within an epoch the entry still reads 0.
	InterOnly Kind = iota
	// InterIntra is the paper's default (Fig. 6): the MSB selects between
	// inter-epoch distance and the intra-epoch sub-epoch of the line's
	// final access, eliminating most quantization loss at the cost of one
	// bit of distance range.
	InterIntra
	// SingleEpoch is P-OPT-SE (Section VII-B): only the current epoch's
	// column is kept resident; a second reserved bit records whether the
	// line is referenced in the next epoch. Halves the metadata footprint
	// and the tracked distance range again.
	SingleEpoch
)

func (k Kind) String() string {
	switch k {
	case InterOnly:
		return "inter-only"
	case InterIntra:
		return "inter+intra"
	default:
		return "single-epoch"
	}
}

// Table is the immutable half of a Rereference Matrix: the epoch geometry
// plus the quantized next-reference entries — one row per cache line of
// the irregular array, one column per epoch of the outer traversal loop.
// A Table never changes after BuildTable returns, so one Table can back
// any number of concurrent simulations; per-run state lives in Matrix.
//
//popt:frozen
type Table struct {
	Kind Kind
	// Bits is the entry width (4, 8 or 16; the paper's default is 8).
	Bits uint
	// NumLines is the number of cache lines spanned by the array.
	NumLines int
	// ElemsPerLine is how many vertices share one cache line of the array.
	ElemsPerLine int
	// NumEpochs, EpochSize: the outer loop's vertex range is cut into
	// NumEpochs epochs of EpochSize vertices (last one ragged).
	NumEpochs int
	EpochSize int
	// SubEpochs, SubEpochSize: within an epoch, intra encodings quantize
	// the final access into SubEpochs partitions.
	SubEpochs    int
	SubEpochSize int
	// entries is row-major: entries[line*NumEpochs+epoch].
	entries []uint16
	// epochDiv/subDiv are precomputed fastdiv reciprocals for EpochSize
	// and SubEpochSize: EpochOf and NextRef sit on P-OPT's victim-search
	// hot path (one lookup per candidate way per replacement) and the
	// epoch sizes are runtime values, so the hardware division they would
	// otherwise cost is strength-reduced once at build time. initDividers
	// must run after the geometry fields are final.
	epochDiv mem.Divider
	subDiv   mem.Divider
}

// MemBytes returns the resident size of the table's entry matrix, for
// footprint reports (-memstats); geometry fields and dividers are noise
// beside it.
func (t *Table) MemBytes() uint64 {
	return 2 * uint64(len(t.entries))
}

// initDividers precomputes the reciprocals of the epoch geometry; every
// constructor of a Table must call it once EpochSize and SubEpochSize are
// set (BuildTable does; so does the test helper that pins geometry by
// hand).
func (t *Table) initDividers() {
	t.epochDiv = mem.NewDivider(uint64(t.EpochSize))
	t.subDiv = mem.NewDivider(uint64(t.SubEpochSize))
}

// Matrix is one run's view of a Rereference Matrix: the shared immutable
// Table plus whatever per-run mutable state a simulation accumulates.
// Sharing a Matrix between concurrent simulations is a data race; sharing
// the Table behind any number of NewMatrix views is free and safe, which
// is what lets a parallel sweep build each table once and hand every cell
// its own cheap view.
type Matrix struct {
	*Table
	// Queries counts NextRef consultations through this view (one per
	// candidate way per matrix-guided replacement).
	Queries uint64
}

// NewMatrix returns a fresh per-run view of the table. Views are cheap:
// they share the encoded entries and differ only in per-run counters.
func (t *Table) NewMatrix() *Matrix { return &Matrix{Table: t} }

// distBits returns the width of the distance field for the encoding.
func (k Kind) distBits(bits uint) uint {
	switch k {
	case InterOnly:
		return bits
	case InterIntra:
		return bits - 1
	default: // SingleEpoch reserves MSB (intra flag) and next-epoch bit
		return bits - 2
	}
}

// MaxDist returns the saturating/sentinel distance value: entries at
// MaxDist mean "next reference at least this many epochs away (possibly
// never)".
func (t *Table) MaxDist() int { return 1<<t.Kind.distBits(t.Bits) - 1 }

// BuildMatrix constructs the Rereference Matrix for an irregular array
// whose element for vertex v is referenced once per occurrence of v in the
// inner loop of a traversal, i.e. at every outer-loop vertex in refAdj's
// neighbor list of v. For a pull kernel refAdj is the graph's out-adjacency
// (the transpose of the traversed CSC); for push it is the in-adjacency.
//
// It is BuildTable plus a fresh per-run view; callers that want to share
// one build across runs keep the Table and call NewMatrix per run.
func BuildMatrix(refAdj *graph.Adj, numVertices, elemsPerLine int, kind Kind, bits uint) *Matrix {
	return BuildTable(refAdj, numVertices, elemsPerLine, kind, bits).NewMatrix()
}

// BuildTable constructs the immutable encoded table of a Rereference
// Matrix. numVertices is the outer loop trip count, elemsPerLine how many
// vertices share a line of the array (16 for 4 B data, 8 for 8 B, 512 for
// bit frontiers). This is the preprocessing step Table IV measures; rows
// are filled in parallel across GOMAXPROCS workers (each row's column
// scan touches only that row's slice of the transpose), and the resulting
// entries are bit-identical at every worker count.
func BuildTable(refAdj *graph.Adj, numVertices, elemsPerLine int, kind Kind, bits uint) *Table {
	if bits < 4 || bits > 16 {
		panic(fmt.Sprintf("core: unsupported quantization width %d", bits))
	}
	if kind == SingleEpoch && bits < 5 {
		panic("core: single-epoch encoding needs at least 5 bits")
	}
	t := &Table{Kind: kind, Bits: bits, ElemsPerLine: elemsPerLine}
	// The number of epochs is bounded by the representable ID range
	// (2^bits; the paper's 8-bit default gives 256 epochs with
	// EpochSize = ceil(numVertices/256)) and by the vertex count itself.
	quantEpochs := 1 << bits
	if quantEpochs > numVertices {
		quantEpochs = numVertices
	}
	if quantEpochs < 1 {
		quantEpochs = 1
	}
	t.EpochSize = (numVertices + quantEpochs - 1) / quantEpochs
	t.NumEpochs = (numVertices + t.EpochSize - 1) / t.EpochSize
	t.SubEpochs = 1<<kind.distBits(bits) - 1
	if t.SubEpochs < 1 {
		t.SubEpochs = 1
	}
	t.SubEpochSize = (t.EpochSize + t.SubEpochs - 1) / t.SubEpochs
	t.NumLines = (refAdj.N() + elemsPerLine - 1) / elemsPerLine
	t.entries = make([]uint16, t.NumLines*t.NumEpochs)
	t.initDividers()
	fillEntries(t, refAdj, numVertices)
	return t
}

// minLinesPerWorker bounds the parallel-fill grain: below this many rows
// per worker the goroutine fan-out costs more than the column scans.
const minLinesPerWorker = 256

// fillEntries populates a Table whose geometry fields are already set,
// partitioning rows across workers. Every row is computed from only its
// own vertices' transpose lists and written to its own entries slice, so
// the result is independent of the partitioning.
func fillEntries(t *Table, refAdj *graph.Adj, numVertices int) {
	workers := runtime.GOMAXPROCS(0)
	if max := t.NumLines / minLinesPerWorker; workers > max {
		workers = max
	}
	if workers <= 1 {
		t.fillLines(refAdj, numVertices, 0, t.NumLines,
			make([]bool, t.NumEpochs), make([]uint16, t.NumEpochs))
		return
	}
	var wg sync.WaitGroup
	chunk := (t.NumLines + workers - 1) / workers
	for lo := 0; lo < t.NumLines; lo += chunk {
		hi := lo + chunk
		if hi > t.NumLines {
			hi = t.NumLines
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			t.fillLines(refAdj, numVertices, lo, hi,
				make([]bool, t.NumEpochs), make([]uint16, t.NumEpochs))
		}(lo, hi)
	}
	wg.Wait()
}

// fillLines is the row worker of the parallel matrix build: it encodes the
// rows [lo, hi) into t.entries. hasRef and lastSub are caller-provided
// per-worker scratch of length NumEpochs (allocated outside so this inner
// loop stays allocation-free).
//
//popt:hot
func (t *Table) fillLines(refAdj *graph.Adj, numVertices, lo, hi int, hasRef []bool, lastSub []uint16) {
	kind, bits, elemsPerLine := t.Kind, t.Bits, t.ElemsPerLine
	maxDist := uint16(t.MaxDist())
	msbMask := uint16(1) << (bits - 1)
	nextBitMask := uint16(0)
	if kind == SingleEpoch {
		nextBitMask = 1 << (bits - 2)
	}
	n := refAdj.N()
	vstart := lo * elemsPerLine
	if vstart > n {
		vstart = n
	}
	it := refAdj.IterFrom(graph.V(vstart))
	for line := lo; line < hi; line++ {
		for e := range hasRef {
			hasRef[e] = false
			lastSub[e] = 0
		}
		vlo := line * elemsPerLine
		vhi := vlo + elemsPerLine
		if vhi > n {
			vhi = n
		}
		// A line is next referenced at the earliest outer-loop position
		// among its vertices; for epoch bookkeeping we need, per epoch,
		// whether any reference lands there and the sub-epoch of the LAST
		// reference in that epoch.
		for v := vlo; v < vhi; v++ {
			ds, _ := it.Next()
			for _, d := range ds {
				if int(d) >= numVertices {
					continue // outer loop never reaches it
				}
				e := int(t.epochDiv.Div(uint64(d)))
				sub := int(t.subDiv.Div(uint64(int(d) - e*t.EpochSize)))
				if sub >= t.SubEpochs {
					sub = t.SubEpochs - 1
				}
				if !hasRef[e] || uint16(sub) > lastSub[e] {
					lastSub[e] = uint16(sub)
				}
				hasRef[e] = true
			}
		}
		// Walk epochs backward, tracking the next referencing epoch.
		next := -1 // -1 = no further reference
		row := t.entries[line*t.NumEpochs : (line+1)*t.NumEpochs]
		for e := t.NumEpochs - 1; e >= 0; e-- {
			dist := int(maxDist)
			if hasRef[e] {
				dist = 0
			} else if next >= 0 {
				if d := next - e; d < dist {
					dist = d
				}
			}
			switch kind {
			case InterOnly:
				row[e] = uint16(dist)
			case InterIntra:
				if hasRef[e] {
					row[e] = lastSub[e] // MSB 0: intra info
				} else {
					row[e] = msbMask | uint16(dist)
				}
			case SingleEpoch:
				if hasRef[e] {
					row[e] = lastSub[e]
					if e+1 < t.NumEpochs && hasRef[e+1] {
						row[e] |= nextBitMask
					}
				} else {
					row[e] = msbMask | uint16(dist)
				}
			}
			if hasRef[e] {
				next = e
			}
		}
	}
}

// Entry exposes the raw encoded entry for tests and diagnostics.
func (t *Table) Entry(line, epoch int) uint16 { return t.entries[line*t.NumEpochs+epoch] }

// Checksum returns an FNV-1a hash of the table's geometry and entries.
// Tests use it to assert that tables shared across concurrent sweep cells
// are never written after construction.
func (t *Table) Checksum() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, x := range []uint64{
		uint64(t.Kind), uint64(t.Bits), uint64(t.NumLines), uint64(t.ElemsPerLine),
		uint64(t.NumEpochs), uint64(t.EpochSize), uint64(t.SubEpochs), uint64(t.SubEpochSize),
	} {
		binary.LittleEndian.PutUint64(buf[:], x)
		h.Write(buf[:])
	}
	for _, e := range t.entries {
		binary.LittleEndian.PutUint16(buf[:2], e)
		h.Write(buf[:2])
	}
	return h.Sum64()
}

// EpochOf maps an outer-loop vertex to its epoch. The division by the
// runtime epoch size runs on the precomputed fastdiv reciprocal.
//
//popt:hot
func (t *Table) EpochOf(v graph.V) int {
	e := int(t.epochDiv.Div(uint64(v)))
	if e >= t.NumEpochs {
		e = t.NumEpochs - 1
	}
	return e
}

// NextRef implements Algorithm 2: given a cache line of the array and the
// outer-loop vertex currently being processed, return the distance (in
// epochs) to the line's next reference. 0 means "again within this epoch";
// MaxDist()+1 saturates "no known future use".
//
//popt:hot
func (m *Matrix) NextRef(line int, cur graph.V) int {
	m.Queries++
	e := m.EpochOf(cur)
	curr := m.entries[line*m.NumEpochs+e]
	msbMask := uint16(1) << (m.Bits - 1)
	lowMask := msbMask - 1

	if m.Kind == InterOnly {
		// No intra-epoch information: the entry is the distance, reading 0
		// for the whole epoch even after the line's final access.
		return int(curr)
	}

	if curr&msbMask != 0 {
		// Not referenced this epoch; low bits are the distance.
		return int(curr & lowMask)
	}
	// Referenced this epoch: have we passed its final access?
	var lastSub int
	if m.Kind == SingleEpoch {
		lastSub = int(curr & (1<<(m.Bits-2) - 1))
	} else {
		lastSub = int(curr & lowMask)
	}
	epochStart := e * m.EpochSize
	currSub := int(m.subDiv.Div(uint64(int(cur) - epochStart)))
	if currSub <= lastSub {
		return 0
	}
	// Past the final access: consult next-epoch information.
	if m.Kind == SingleEpoch {
		// Only one bit of lookahead survives the footprint reduction.
		if curr&(1<<(m.Bits-2)) != 0 {
			return 1
		}
		// Beyond the next epoch the distance is unknown; report the
		// coarsest non-adjacent guess. This is P-OPT-SE's quality loss.
		return 2
	}
	if e+1 >= m.NumEpochs {
		return m.MaxDist() + 1
	}
	next := m.entries[line*m.NumEpochs+e+1]
	if next&msbMask != 0 {
		return 1 + int(next&lowMask)
	}
	return 1
}

// ColumnBytes returns the storage of one epoch column, the unit streamed
// into the LLC at epoch boundaries.
func (t *Table) ColumnBytes() int { return (t.NumLines*int(t.Bits) + 7) / 8 }

// ResidentColumns returns how many columns P-OPT pins in the LLC for this
// encoding: current+next normally, current only for single-epoch.
func (t *Table) ResidentColumns() int {
	if t.Kind == SingleEpoch {
		return 1
	}
	return 2
}

// ResidentBytes returns the LLC footprint of the pinned columns.
func (t *Table) ResidentBytes() int { return t.ResidentColumns() * t.ColumnBytes() }

// TotalBytes returns the full Rereference Matrix size in memory.
func (t *Table) TotalBytes() int { return (len(t.entries)*int(t.Bits) + 7) / 8 }
