package core

import (
	"testing"

	"popt/internal/cache"
	"popt/internal/graph"
	"popt/internal/mem"
)

func prefetchHierarchy(pol func() cache.Policy) *cache.Hierarchy {
	return cache.NewHierarchy(cache.Config{
		L1Size: 1 << 10, L1Ways: 4,
		L2Size: 4 << 10, L2Ways: 4,
		LLCSize: 16 << 10, LLCWays: 16,
		LLCPolicy: pol,
	})
}

func TestPrefetcherIssuesTransposeTargets(t *testing.T) {
	g := fig1Graph()
	h := prefetchHierarchy(func() cache.Policy { return cache.NewLRU() })
	sp := mem.NewSpace()
	src := sp.AllocBytes("srcData", 5, 64, true) // one vertex per line
	p := NewTransposePrefetcher(h, &g.In, src, 1)

	// Processing D0 with depth 1 prefetches the in-neighbors of D1: S2, S3.
	p.UpdateIndex(0)
	if h.PrefetchIssued != 2 {
		t.Fatalf("issued %d prefetches, want 2 (in-neighbors of D1)", h.PrefetchIssued)
	}
	if _, _, ok := h.LLC.Lookup(mem.Access{Addr: src.Addr(2)}.LineAddr()); !ok {
		t.Error("srcData[S2] not prefetched into LLC")
	}
	if _, _, ok := h.LLC.Lookup(mem.Access{Addr: src.Addr(3)}.LineAddr()); !ok {
		t.Error("srcData[S3] not prefetched into LLC")
	}

	// Advance to D1: prefetch in-neighbors of D2 (S0, S4).
	p.UpdateIndex(1)
	if h.PrefetchIssued != 4 {
		t.Fatalf("issued %d prefetches after second step, want 4", h.PrefetchIssued)
	}
}

func TestPrefetcherSkipsResidentLines(t *testing.T) {
	g := fig1Graph()
	h := prefetchHierarchy(func() cache.Policy { return cache.NewLRU() })
	sp := mem.NewSpace()
	src := sp.AllocBytes("srcData", 5, 64, true)
	p := NewTransposePrefetcher(h, &g.In, src, 1)
	p.UpdateIndex(0)
	fills := h.PrefetchFills
	p.ResetEpoch()
	p.UpdateIndex(0) // same targets, now resident
	if h.PrefetchFills != fills {
		t.Errorf("resident lines refetched: fills %d -> %d", fills, h.PrefetchFills)
	}
	if h.PrefetchIssued <= fills {
		t.Error("issued counter should still advance")
	}
}

func TestPrefetcherCoversSkippedVertices(t *testing.T) {
	// Jumping the outer loop from D0 to D3: targets D1-D3 are already in
	// the past (useless to prefetch), so only D4 is fetched; nothing is
	// fetched twice and nothing in the live window is missed.
	g := graph.Uniform(64, 512, 3)
	h := prefetchHierarchy(func() cache.Policy { return cache.NewLRU() })
	sp := mem.NewSpace()
	src := sp.AllocBytes("srcData", 64, 4, true)
	p := NewTransposePrefetcher(h, &g.In, src, 1)
	p.UpdateIndex(0) // window {D1}
	p.UpdateIndex(3) // window {D4}; D1-D3 already passed
	want := uint64(g.In.Degree(1) + g.In.Degree(4))
	if h.PrefetchIssued != want {
		t.Errorf("issued = %d, want %d (neighbors of D1 and D4)", h.PrefetchIssued, want)
	}
	// Sequential stepping covers each target exactly once.
	h2 := prefetchHierarchy(func() cache.Policy { return cache.NewLRU() })
	p2 := NewTransposePrefetcher(h2, &g.In, src, 2)
	for v := graph.V(0); v < 8; v++ {
		p2.UpdateIndex(v)
	}
	var wantSeq uint64
	for d := graph.V(2); d <= 9; d++ {
		wantSeq += uint64(g.In.Degree(d))
	}
	if h2.PrefetchIssued != wantSeq {
		t.Errorf("sequential issued = %d, want %d (neighbors of D2..D9 once each)", h2.PrefetchIssued, wantSeq)
	}
}

func TestCombineHooksFansOut(t *testing.T) {
	g := graph.Uniform(512, 4096, 5)
	sp := mem.NewSpace()
	src := sp.AllocBytes("srcData", 512, 4, true)
	popt := BuildPOPT(&g.Out, 512, InterIntra, 8, src)
	h := prefetchHierarchy(func() cache.Policy { return cache.NewLRU() })
	pref := NewTransposePrefetcher(h, &g.In, src, 1)
	combo := CombineHooks(popt, pref)
	combo.UpdateIndex(10)
	if h.PrefetchIssued == 0 {
		t.Error("prefetcher did not receive the update")
	}
	// P-OPT's epoch state also advanced: crossing an epoch boundary later
	// must stream (epoch of 10 is 0 here, so force a crossing).
	combo.UpdateIndex(graph.V(popt.streams[0].M.EpochSize))
	if popt.EpochStreams == 0 {
		t.Error("P-OPT did not receive the update")
	}
	// ResetEpoch must reach P-OPT through the combiner.
	before := popt.EpochStreams
	if er, ok := combo.(interface{ ResetEpoch() }); ok {
		er.ResetEpoch()
	} else {
		t.Fatal("combined hook lost ResetEpoch")
	}
	if popt.EpochStreams != before+1 {
		t.Error("ResetEpoch not forwarded")
	}
}
