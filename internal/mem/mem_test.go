package mem

import (
	"testing"
	"testing/quick"
)

func TestArrayAddressing(t *testing.T) {
	s := NewSpace()
	a := s.AllocBytes("srcData", 100, 4, true)
	if a.Addr(0) != a.Base {
		t.Errorf("Addr(0) = %#x, want base %#x", a.Addr(0), a.Base)
	}
	if got := a.Addr(1) - a.Addr(0); got != 4 {
		t.Errorf("element stride = %d, want 4", got)
	}
	if a.ElemsPerLine() != 16 {
		t.Errorf("ElemsPerLine = %d, want 16 (64B/4B)", a.ElemsPerLine())
	}
	if a.SizeBytes() != 400 {
		t.Errorf("SizeBytes = %d, want 400", a.SizeBytes())
	}
	if a.NumLines() != 7 {
		t.Errorf("NumLines = %d, want ceil(400/64)=7", a.NumLines())
	}
}

func TestBitVectorAddressing(t *testing.T) {
	s := NewSpace()
	f := s.Alloc("frontier", 1000, 1, true)
	if f.ElemsPerLine() != 512 {
		t.Errorf("bit-vector ElemsPerLine = %d, want 512", f.ElemsPerLine())
	}
	if f.SizeBytes() != 125 {
		t.Errorf("SizeBytes = %d, want 125", f.SizeBytes())
	}
	// Bits 0..7 share a byte; bit 8 starts the next byte.
	if f.Addr(7) != f.Addr(0) {
		t.Error("bits 0 and 7 should share an address")
	}
	if f.Addr(8) != f.Addr(0)+1 {
		t.Error("bit 8 should live in the next byte")
	}
}

func TestArraysDoNotShareLines(t *testing.T) {
	s := NewSpace()
	a := s.AllocBytes("a", 3, 4, false) // 12 bytes, partial line
	b := s.AllocBytes("b", 3, 4, false)
	if a.Bound() > b.Base {
		t.Fatal("arrays overlap")
	}
	if (a.Bound()-1)>>LineShift == b.Base>>LineShift {
		t.Error("arrays share a cache line")
	}
}

func TestContainsAndLineID(t *testing.T) {
	s := NewSpace()
	a := s.AllocBytes("x", 64, 4, true) // 256 bytes = 4 lines
	if !a.Contains(a.Addr(63)) || a.Contains(a.Bound()) {
		t.Error("Contains boundary conditions wrong")
	}
	if a.LineID(a.Addr(0)) != 0 || a.LineID(a.Addr(16)) != 1 || a.LineID(a.Addr(63)) != 3 {
		t.Error("LineID arithmetic wrong")
	}
}

func TestFind(t *testing.T) {
	s := NewSpace()
	a := s.AllocBytes("a", 10, 4, false)
	b := s.AllocBytes("b", 10, 8, true)
	if s.Find(a.Addr(5)) != a || s.Find(b.Addr(5)) != b {
		t.Error("Find returned wrong array")
	}
	if s.Find(42) != nil {
		t.Error("Find of unmapped address should be nil")
	}
}

func TestIrregularFootprint(t *testing.T) {
	s := NewSpace()
	s.AllocBytes("stream", 1000, 4, false)
	s.AllocBytes("irr1", 100, 4, true)
	s.Alloc("irrBits", 800, 1, true)
	if got := s.IrregularFootprint(); got != 400+100 {
		t.Errorf("IrregularFootprint = %d, want 500", got)
	}
}

func TestAccessLineAddr(t *testing.T) {
	a := Access{Addr: 0x12345}
	if a.LineAddr() != 0x12340 {
		t.Errorf("LineAddr = %#x, want 0x12340", a.LineAddr())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on out-of-range index")
		}
	}()
	s := NewSpace()
	a := s.AllocBytes("a", 10, 4, false)
	_ = a.Addr(10)
}

// Property: every element address lies within [Base, Bound) and LineID is
// consistent with address arithmetic.
func TestAddressingProperty(t *testing.T) {
	s := NewSpace()
	arr := s.AllocBytes("p", 4096, 4, true)
	f := func(iRaw uint16) bool {
		i := int(iRaw) % arr.Len
		addr := arr.Addr(i)
		if !arr.Contains(addr) {
			return false
		}
		return arr.LineID(addr) == i*4/LineSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
