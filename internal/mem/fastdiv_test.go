package mem

import (
	"math/rand"
	"testing"
)

// interestingDivisors are the divisors the simulator actually uses plus
// the scheme's edge cases: 1 (wrapped reciprocal), small primes, the
// paper's 24576-set LLC and the scaled configs' set counts, powers of
// two (exact reciprocal), and values near 2^32 and 2^64.
var interestingDivisors = []uint64{
	1, 2, 3, 5, 7, 13, 64, 160, 256, 24576, 1 << 20,
	(24 << 20) / (16 * 64),   // Table I LLC sets
	(160 << 10) / (16 * 64),  // Scaled LLC sets
	(1 << 32) - 1, 1 << 32, (1 << 32) + 1,
	(1 << 63) - 25, 1 << 63, ^uint64(0),
}

func interestingValues(rng *rand.Rand) []uint64 {
	vals := []uint64{0, 1, 2, 63, 64, 65, 1 << 30, (1 << 32) - 1, 1 << 32,
		(1 << 62) + 12345, ^uint64(0), ^uint64(0) - 1}
	for i := 0; i < 4096; i++ {
		vals = append(vals, rng.Uint64())
	}
	return vals
}

func TestDividerMatchesHardwareDivision(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := interestingValues(rng)
	divs := append([]uint64{}, interestingDivisors...)
	for i := 0; i < 64; i++ {
		divs = append(divs, rng.Uint64()|1, rng.Uint64()%(1<<34)+2)
	}
	for _, d := range divs {
		dv := NewDivider(d)
		if dv.Divisor() != d {
			t.Fatalf("Divisor() = %d, want %d", dv.Divisor(), d)
		}
		for _, x := range vals {
			if got, want := dv.Mod(x), x%d; got != want {
				t.Fatalf("Divider(%d).Mod(%d) = %d, want %d", d, x, got, want)
			}
			if got, want := dv.Div(x), x/d; got != want {
				t.Fatalf("Divider(%d).Div(%d) = %d, want %d", d, x, got, want)
			}
		}
	}
}

func TestDividerZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDivider(0) did not panic")
		}
	}()
	NewDivider(0)
}

func BenchmarkDividerMod(b *testing.B) {
	dv := NewDivider(24576)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += dv.Mod(uint64(i) * 2654435761)
	}
	benchSink = sink
}

// hardwareModDivisor is a package-level variable so the compiler cannot
// strength-reduce the benchmark's % into a compile-time reciprocal — the
// Level's set count is likewise a runtime value, so this is the DIV the
// fastmod path actually replaces.
var hardwareModDivisor = uint64(24576)

func BenchmarkHardwareMod(b *testing.B) {
	d := hardwareModDivisor
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += uint64(i) * 2654435761 % d
	}
	benchSink = sink
}

var benchSink uint64
