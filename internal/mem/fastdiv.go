package mem

import "math/bits"

// Divider computes x/d and x%d for a fixed divisor d without hardware
// division, using the Lemire-Kaser "faster remainder by direct
// computation" scheme: M = ceil(2^128/d) is precomputed once, after which
// a remainder is four multiplies and an add — an order of magnitude
// cheaper than the 64-bit DIV the compiler must otherwise emit when d is
// not a compile-time constant. The cache simulator's set mapping is the
// motivating user: the paper's 24 MB/16-way LLC has 24576 sets (footnote
// 3's modulo mapping for non-power-of-two set counts), so every probe of
// every level pays this operation.
//
// With the 128-bit reciprocal, Mod is exact for every 64-bit x and every
// divisor (the sufficient condition 2^128 >= 2^64*d always holds); Div is
// exact for every 64-bit x with the single special case d == 1, where the
// reciprocal does not fit in 128 bits. Powers of two need no special
// case: M is then exactly 2^128/d and the identity still holds.
type Divider struct {
	d      uint64
	mHi    uint64 // M = ceil(2^128 / d), high word
	mLo    uint64 // ... low word (M wraps to 0 when d == 1)
}

// NewDivider precomputes the reciprocal of d. d must be nonzero.
func NewDivider(d uint64) Divider {
	if d == 0 {
		panic("mem: Divider with zero divisor")
	}
	// M = floor((2^128-1)/d) + 1, which equals ceil(2^128/d) for every
	// d >= 2 (and wraps to 0 for d == 1, which Mod handles for free and
	// Div special-cases). The 128-by-64 division runs in two halves.
	hi := ^uint64(0) / d
	rem := ^uint64(0) % d
	lo, _ := bits.Div64(rem, ^uint64(0), d)
	lo, carry := bits.Add64(lo, 1, 0)
	return Divider{d: d, mHi: hi + carry, mLo: lo}
}

// Divisor returns d.
func (dv Divider) Divisor() uint64 { return dv.d }

// Mod returns x % d.
//
//popt:hot
func (dv Divider) Mod(x uint64) uint64 {
	// lowbits = M*x mod 2^128; the remainder is the high 64 bits of
	// lowbits*d, i.e. floor(lowbits*d / 2^128).
	lHi, lLo := bits.Mul64(dv.mLo, x)
	lHi += dv.mHi * x
	pHi, _ := bits.Mul64(lLo, dv.d)
	qHi, qLo := bits.Mul64(lHi, dv.d)
	_, carry := bits.Add64(qLo, pHi, 0)
	return qHi + carry
}

// Div returns x / d.
//
//popt:hot
func (dv Divider) Div(x uint64) uint64 {
	if dv.d == 1 {
		return x
	}
	// floor(x/d) is the high 64 bits of the 192-bit product M*x.
	lHi, _ := bits.Mul64(dv.mLo, x)
	qHi, qLo := bits.Mul64(dv.mHi, x)
	_, carry := bits.Add64(qLo, lHi, 0)
	return qHi + carry
}
