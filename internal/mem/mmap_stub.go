//go:build !unix

package mem

import (
	"fmt"
	"os"
)

// Mapping is a read-only memory mapping of a file. On platforms without
// mmap support this build never produces one; MapFile always errors and
// callers use their pread path.
type Mapping struct {
	Data []byte
}

// MapFile reports that mapping is unsupported on this platform.
func MapFile(f *os.File) (*Mapping, error) {
	return nil, fmt.Errorf("mem: file mapping not supported on this platform")
}

// Close is a no-op on the stub.
func (m *Mapping) Close() error { return nil }
