// Package mem models the logical address space of a simulated graph
// application. Kernels allocate named arrays in this space and emit memory
// accesses against them; the cache simulator consumes those accesses. The
// layout mirrors what the paper's architecture assumes: each irregularly
// accessed array ("irregData") occupies one contiguous region — the paper
// pins it in a single 1 GB huge page so the irreg_base/irreg_bound
// registers can classify lines by physical address.
package mem

import "fmt"

// LineSize is the cache line size in bytes. The paper assumes 64 B lines
// everywhere (64 Rereference Matrix entries per line, address arithmetic by
// >> 6).
const LineSize = 64

// LineShift is log2(LineSize).
const LineShift = 6

// Access is a single memory reference. PC is a small site identifier, not a
// real program counter: each static load/store in a kernel gets its own PC,
// which is what PC-indexed policies (SHiP-PC, Hawkeye) key on.
type Access struct {
	Addr  uint64
	PC    uint16
	Write bool
}

// LineAddr returns the address of the cache line containing a.
//
//popt:hot
func (a Access) LineAddr() uint64 { return a.Addr &^ (LineSize - 1) }

// Array is a contiguous region of the simulated address space.
type Array struct {
	Name string
	Base uint64
	// ElemBits is the element size in bits. Graph data is 4 B or 8 B;
	// frontiers are bit-vectors (1 bit per vertex), hence bits not bytes.
	ElemBits uint64
	// Len is the number of elements.
	Len int
	// Irregular marks arrays accessed in a graph-dependent pattern
	// (srcData/dstData/frontier), the data P-OPT manages.
	Irregular bool
}

// Addr returns the byte address of element i. Sub-byte elements (bit
// vectors) return the address of the byte containing the bit, which is what
// the cache sees.
//
//popt:hot
func (a *Array) Addr(i int) uint64 {
	if i < 0 || i >= a.Len {
		a.badIndex(i)
	}
	return a.Base + uint64(i)*a.ElemBits/8
}

// badIndex panics with the out-of-range message. The panic (and its fmt
// boxing) lives here rather than in Addr so nothing escapes on Addr's hot
// path and the hot-path baseline stays escape-free; noinline stops the
// compiler from folding the boxing back into the caller.
//
//go:noinline
func (a *Array) badIndex(i int) {
	panic(fmt.Sprintf("mem: %s[%d] out of range [0,%d)", a.Name, i, a.Len))
}

// SizeBytes returns the footprint of the array, rounded up to whole bytes.
func (a *Array) SizeBytes() uint64 { return (uint64(a.Len)*a.ElemBits + 7) / 8 }

// NumLines returns the number of cache lines the array spans.
func (a *Array) NumLines() int { return int((a.SizeBytes() + LineSize - 1) / LineSize) }

// Bound returns one past the last byte address of the array.
func (a *Array) Bound() uint64 { return a.Base + a.SizeBytes() }

// Contains reports whether addr falls inside the array, i.e. the
// irreg_base/irreg_bound register comparison from the paper.
//
//popt:hot
func (a *Array) Contains(addr uint64) bool { return addr >= a.Base && addr < a.Bound() }

// LineID returns the 0-based cache line index of addr within the array:
// cachelineID = (addr - irreg_base) >> 6 in the paper's next-ref engine.
//
//popt:hot
func (a *Array) LineID(addr uint64) int { return int((addr - a.Base) >> LineShift) }

// ElemsPerLine returns how many elements share one cache line.
func (a *Array) ElemsPerLine() int { return int(LineSize * 8 / a.ElemBits) }

// Space allocates arrays at line-aligned, gap-separated addresses. The gap
// keeps distinct arrays from sharing lines, as the huge-page placement in
// the paper guarantees.
type Space struct {
	next   uint64
	arrays []*Array
}

// NewSpace returns an empty address space. Allocation starts away from
// address zero so a zero Addr is never a valid reference.
func NewSpace() *Space { return &Space{next: 1 << 30} }

// Alloc places a new array of n elements of elemBits bits each.
func (s *Space) Alloc(name string, n int, elemBits uint64, irregular bool) *Array {
	a := &Array{Name: name, Base: s.next, ElemBits: elemBits, Len: n, Irregular: irregular}
	s.arrays = append(s.arrays, a)
	// Advance past the array plus a guard page, keeping line alignment.
	s.next = (a.Bound() + 4096 + LineSize - 1) &^ (LineSize - 1)
	return a
}

// AllocBytes places an array of n byte-sized elements (elemBytes each).
func (s *Space) AllocBytes(name string, n int, elemBytes uint64, irregular bool) *Array {
	return s.Alloc(name, n, elemBytes*8, irregular)
}

// Arrays returns all allocations in order.
func (s *Space) Arrays() []*Array { return s.arrays }

// Find returns the array containing addr, or nil.
func (s *Space) Find(addr uint64) *Array {
	for _, a := range s.arrays {
		if a.Contains(addr) {
			return a
		}
	}
	return nil
}

// IrregularFootprint sums the bytes of all irregular arrays; this is what
// determines how many LLC ways P-OPT must reserve.
func (s *Space) IrregularFootprint() uint64 {
	var total uint64
	for _, a := range s.arrays {
		if a.Irregular {
			total += a.SizeBytes()
		}
	}
	return total
}
