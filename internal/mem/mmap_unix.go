//go:build unix

package mem

import (
	"fmt"
	"os"
	"syscall"
)

// Mapping is a read-only memory mapping of a file. Data aliases the page
// cache directly, so consumers read container bytes with zero copies; the
// kernel keeps resident only the pages actually touched, which is what
// lets the trace replay window count mapped bytes instead of heap copies.
type Mapping struct {
	Data []byte
}

// MapFile maps f read-only in its entirety. Empty files cannot be mapped
// (mmap of length 0 is an error on most systems); callers fall back to
// pread. The file descriptor may be closed after MapFile returns — the
// mapping keeps the pages alive.
func MapFile(f *os.File) (*Mapping, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, fmt.Errorf("mem: cannot map empty file %s", f.Name())
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("mem: file %s too large to map (%d bytes)", f.Name(), size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("mem: mmap %s: %w", f.Name(), err)
	}
	return &Mapping{Data: data}, nil
}

// Close unmaps the file. The Data slice (and every subslice handed out)
// must not be touched afterwards.
func (m *Mapping) Close() error {
	if m.Data == nil {
		return nil
	}
	data := m.Data
	m.Data = nil
	return syscall.Munmap(data)
}
