package trace

import (
	"fmt"
	"math"

	"popt/internal/cache"
	"popt/internal/graph"
	"popt/internal/mem"
)

// Event opcodes of the encoded stream, in the low nibble of the first
// byte, followed by the event's varint payload (if any). For access
// events the high nibble inlines the PC: hi = PC+1 for PC <= 13, hi = 15
// marks an escaped uvarint PC before the delta. Kernel PC site ids are
// single digits (kernels.PCOffsets..PCCompWrite), so in practice every
// access costs one opcode byte plus its address delta.
const (
	opAccessR byte = iota + 1 // [hi: PC+1 | escape] zigzag delta address
	opAccessW                 // [hi: PC+1 | escape] zigzag delta address
	opSetVertex               // zigzag delta vertex
	opStartIteration
	opSetTile // uvarint tile
	opMute
	opUnmute
	opTick // uvarint coalesced instruction count

	// Kernels alternate Tick(compute) with Load/Store, so pending ticks
	// usually flush right before an access. These merged opcodes carry
	// the tick count inside the access event ([escaped PC,] uvarint
	// ticks, zigzag delta), halving both the opcode bytes and the decode
	// iterations of the dominant event pattern. Replay delivers them as
	// Tick(n) then Access, exactly like the unmerged pair.
	opAccessRT // Tick + read access
	opAccessWT // Tick + write access

	opMask   byte = 0x0f
	pcEscape byte = 15 // high-nibble marker: uvarint PC follows
	pcInline      = 13 // largest PC the high nibble can carry
)

// Stats describes a recorded stream for reporting (poptsim -dumptrace).
type Stats struct {
	// Accesses counts Access events; Writes of them are stores.
	Accesses uint64
	Writes   uint64
	// VertexUpdates counts SetVertex events (update_index instructions).
	VertexUpdates uint64
	// Iterations counts StartIteration events.
	Iterations uint64
	// TileSwitches counts SetTile events.
	TileSwitches uint64
	// MutedRegions counts Mute markers (sparse rounds excluded from
	// detailed simulation).
	MutedRegions uint64
	// TickEvents counts Tick events after coalescing, whether encoded
	// standalone or carried by a merged tick+access opcode; TickedInstrs
	// is the sum of their arguments (adjacent ticks merge, the totals
	// are preserved).
	TickEvents   uint64
	TickedInstrs uint64
}

// Events returns the total encoded event count.
func (s Stats) Events() uint64 {
	return s.Accesses + s.VertexUpdates + s.Iterations + s.TileSwitches +
		2*s.MutedRegions + s.TickEvents
}

// Encoder is a Sink that serializes the event stream into a compact
// in-memory byte form. Addresses are delta-encoded against the previous
// access from the same PC slot (each static load/store site walks its own
// array, so same-site deltas are tiny even though sites interleave);
// vertices are delta-encoded against the previous vertex; all integers are
// zigzag/LEB128 varints. Adjacent Tick events coalesce into one, which
// preserves instruction totals — the only thing ticks feed — while
// shrinking the stream by the dominant event class.
type Encoder struct {
	buf     []byte
	last    [pcSlots]uint64 // previous address per PC slot
	lastV   graph.V
	pending uint64 // coalesced ticks not yet flushed
	stats   Stats

	// Chunked mode (NewChunkedEncoder): buf holds one headerless chunk
	// payload that flushes to cw at the first event boundary past the
	// byte target, with delta state reset so every chunk decodes
	// independently. Nil cw (the in-memory form) skips all of it.
	cw              *ContainerWriter
	chunkBytes      int
	chunkStartEvnts uint64 // stats.Events() snapshot at chunk start
	chunkFirstPC    uint64 // first access PC in the chunk + 1; 0 = none
}

// pcSlots is the size of the per-PC delta context. PCs above the slot
// count share slot pc%pcSlots — encoder and decoder apply the same rule,
// so collisions only cost larger deltas, never correctness. pcSlots is a
// power of two so the slot map is a single AND with pcSlotMask (a
// constant power-of-two modulo needs no fastmod reciprocal); the encode
// and decode hot loops below and in llc.go all take this path, while the
// non-constant set-count modulo the replayed accesses hit inside the LLC
// runs on the Level's fastmod datapath.
const pcSlots = 256

// pcSlotMask masks a PC into its delta slot.
const pcSlotMask = pcSlots - 1

// Compile-time guard that pcSlots stays a power of two: the array length
// goes negative (a compile error) otherwise.
var _ = [1 - pcSlots&(pcSlots-1)]struct{}{}

// NewEncoder returns an empty encoder. The buffer starts at 64 KiB —
// around two bytes per event, even short kernel runs emit tens of
// thousands of events, so this skips the noisy small-growth copies. The
// stream header (magic + format version, see format.go) is written up
// front; every event the sink methods encode lands after it.
func NewEncoder() *Encoder {
	// chunkBytes is a sentinel no buffer reaches, so the hot per-event
	// chunk check is one compare with no chunked/in-memory branch.
	e := &Encoder{buf: make([]byte, 0, 64<<10), chunkBytes: math.MaxInt}
	e.buf = append(e.buf, magic0, magicTrace1, TraceFormatVersion)
	return e
}

// NewChunkedEncoder returns an encoder that streams chunk frames through
// cw instead of accumulating one in-memory byte slice: resident encode
// memory stays O(one chunk) no matter the stream length. Finalize with
// Finish (Trace is invalid in this mode); the owner then calls cw.Finish
// to seal the container.
func NewChunkedEncoder(cw *ContainerWriter) *Encoder {
	return &Encoder{
		buf:        make([]byte, 0, cw.chunkBytes+16),
		cw:         cw,
		chunkBytes: cw.chunkBytes,
	}
}

// maybeChunk closes the current chunk once the payload passes the byte
// target. Called at the end of every fully-encoded event so chunk
// boundaries always fall between events.
//
//popt:hot
func (e *Encoder) maybeChunk() {
	// In-memory encoders carry a sentinel threshold; see LLCEncoder.
	if len(e.buf) >= e.chunkBytes {
		e.flushChunk()
	}
}

// flushChunk emits the pending chunk frame and resets the delta state the
// next chunk must not depend on. Out of line: it runs once per ~64K
// events and its frame writes must not burden the per-event encoders.
//
//go:noinline
func (e *Encoder) flushChunk() {
	if len(e.buf) == 0 {
		return
	}
	events := e.stats.Events() - e.chunkStartEvnts
	e.cw.writeChunk(events, e.chunkFirstPC, e.buf)
	e.buf = e.buf[:0]
	e.chunkStartEvnts = e.stats.Events()
	e.chunkFirstPC = 0
	e.last = [pcSlots]uint64{}
	e.lastV = 0
}

// Finish flushes the trailing ticks and chunk and installs the stream
// totals on the container writer. Chunked encoders must end with Finish;
// the encoder must not be used afterwards.
func (e *Encoder) Finish() error {
	if e.cw == nil {
		panic("trace: Encoder.Finish without a container writer; use Trace")
	}
	e.flushTicks()
	e.flushChunk()
	e.cw.setStats(encodeTraceStats(e.stats, e.cw.streamCRC))
	return e.cw.Err()
}

// appendUvarint appends x in LEB128 form.
//
//popt:hot
func appendUvarint(buf []byte, x uint64) []byte {
	for x >= 0x80 {
		buf = append(buf, byte(x)|0x80)
		x >>= 7
	}
	return append(buf, byte(x))
}

// appendVarint appends x zigzag-encoded.
//
//popt:hot
func appendVarint(buf []byte, x int64) []byte {
	return appendUvarint(buf, uint64(x)<<1^uint64(x>>63))
}

// flushTicks emits the pending coalesced Tick event, if any.
//
//popt:codec trace enc
func (e *Encoder) flushTicks() {
	if e.pending == 0 {
		return
	}
	e.buf = append(e.buf, opTick)
	e.buf = appendUvarint(e.buf, e.pending)
	e.stats.TickEvents++
	e.pending = 0
}

// Access implements Sink.
//
//popt:hot
//popt:codec trace enc
func (e *Encoder) Access(acc mem.Access) {
	op := opAccessR
	if acc.Write {
		op = opAccessW
		e.stats.Writes++
	}
	e.stats.Accesses++
	pending := e.pending
	if pending != 0 {
		op += opAccessRT - opAccessR
		e.stats.TickEvents++
		e.pending = 0
	}
	if acc.PC <= pcInline {
		e.buf = append(e.buf, op|byte(acc.PC+1)<<4)
	} else {
		e.buf = append(e.buf, op|pcEscape<<4)
		e.buf = appendUvarint(e.buf, uint64(acc.PC))
	}
	if pending != 0 {
		e.buf = appendUvarint(e.buf, pending)
	}
	slot := acc.PC & pcSlotMask
	e.buf = appendVarint(e.buf, int64(acc.Addr - e.last[slot]))
	e.last[slot] = acc.Addr
	if e.cw != nil && e.chunkFirstPC == 0 {
		e.chunkFirstPC = uint64(acc.PC) + 1
	}
	e.maybeChunk()
}

// SetVertex implements Sink.
//
//popt:hot
//popt:codec trace enc
func (e *Encoder) SetVertex(v graph.V) {
	if e.pending != 0 {
		e.flushTicks()
	}
	e.stats.VertexUpdates++
	e.buf = append(e.buf, opSetVertex)
	e.buf = appendVarint(e.buf, int64(v) - int64(e.lastV))
	e.lastV = v
	e.maybeChunk()
}

// StartIteration implements Sink.
//
//popt:codec trace enc
func (e *Encoder) StartIteration() {
	e.flushTicks()
	e.stats.Iterations++
	e.buf = append(e.buf, opStartIteration)
	e.maybeChunk()
}

// SetTile implements Sink.
//
//popt:codec trace enc
func (e *Encoder) SetTile(t int) {
	e.flushTicks()
	e.stats.TileSwitches++
	e.buf = append(e.buf, opSetTile)
	e.buf = appendUvarint(e.buf, uint64(t))
	e.maybeChunk()
}

// Mute implements Sink.
//
//popt:codec trace enc
func (e *Encoder) Mute() {
	e.flushTicks()
	e.stats.MutedRegions++
	e.buf = append(e.buf, opMute)
	e.maybeChunk()
}

// Unmute implements Sink.
//
//popt:codec trace enc
func (e *Encoder) Unmute() {
	e.flushTicks()
	e.buf = append(e.buf, opUnmute)
	e.maybeChunk()
}

// Tick implements Sink: adjacent ticks coalesce until the next non-tick
// event.
//
//popt:hot
func (e *Encoder) Tick(n uint64) {
	e.pending += n
	e.stats.TickedInstrs += n
}

// Trace finalizes the encoder and returns the encoded stream. The encoder
// must not be used after Trace is called.
func (e *Encoder) Trace() *Trace {
	if e.cw != nil {
		panic("trace: Trace on a chunked encoder; finalize with Finish")
	}
	e.flushTicks()
	return &Trace{data: e.buf, stats: e.stats}
}

// Trace is an immutable encoded reference stream. It is safe to replay
// from multiple goroutines concurrently (each Replay carries its own
// decode state).
//
//popt:frozen
type Trace struct {
	data  []byte
	stats Stats
}

// Size returns the encoded size in bytes.
func (t *Trace) Size() int { return len(t.data) }

// Stats returns the stream's event statistics.
func (t *Trace) Stats() Stats { return t.stats }

// BytesPerEvent returns the encoded density.
func (t *Trace) BytesPerEvent() float64 {
	n := t.stats.Events()
	if n == 0 {
		return 0
	}
	return float64(len(t.data)) / float64(n)
}

// Replay decodes the stream and delivers every event to s in recorded
// order. Replaying into a live Sim is byte-identical to the live run that
// recorded the trace (the replay-equivalence golden pins this for the
// whole policy zoo). The stream header is checked once up front: a magic
// or format-version mismatch fails loudly (badTraceHeader) instead of
// misdecoding bytes laid out under another version.
//
//popt:hot
func (t *Trace) Replay(s Sink) {
	if sim, ok := s.(*Sim); ok && sim.H != nil {
		// Production replays always land in a live Sim; the specialized
		// loop devirtualizes the per-event dispatch and keeps the
		// instruction counter in a register.
		t.replaySim(sim)
		return
	}
	replayTraceEvents(t.data, checkTraceHeader(t.data), s)
}

// replayTraceEvents is the generic decode loop behind Replay, shared with
// the container reader's per-chunk path (each chunk payload decodes
// independently: the encoder reset its delta state at the boundary, so
// fresh zero-valued state here reconstructs the same absolute values).
//
//popt:hot
//popt:codec trace dec
func replayTraceEvents(data []byte, i int, s Sink) {
	var last [pcSlots]uint64
	var lastV graph.V
	for i < len(data) {
		b := data[i]
		i++
		op := b & opMask
		switch op {
		case opAccessR, opAccessW, opAccessRT, opAccessWT:
			var pc uint64
			if hi := b >> 4; hi != pcEscape {
				pc = uint64(hi - 1)
			} else {
				pc, i = uvarint(data, i)
			}
			if op >= opAccessRT {
				var ticks uint64
				ticks, i = uvarint(data, i)
				s.Tick(ticks)
			}
			// Inline the one-byte zigzag fast path: same-site strides
			// are small, so most deltas fit seven bits.
			var d int64
			if i < len(data) && data[i] < 0x80 {
				ux := uint64(data[i])
				d = int64(ux>>1) ^ -int64(ux&1)
				i++
			} else {
				d, i = varint(data, i)
			}
			slot := uint16(pc) & pcSlotMask
			addr := last[slot] + uint64(d)
			last[slot] = addr
			s.Access(mem.Access{Addr: addr, PC: uint16(pc), Write: op == opAccessW || op == opAccessWT})
		case opSetVertex:
			d, n := varint(data, i)
			i = n
			lastV = graph.V(int64(lastV) + d)
			s.SetVertex(lastV)
		case opStartIteration:
			s.StartIteration()
		case opSetTile:
			tl, n := uvarint(data, i)
			i = n
			s.SetTile(int(tl))
		case opMute:
			s.Mute()
		case opUnmute:
			s.Unmute()
		case opTick:
			ticks, n := uvarint(data, i)
			i = n
			s.Tick(ticks)
		default:
			badOp(op, i-1)
		}
	}
}

// replaySim is Replay specialized for a live *Sim sink with a hierarchy:
// hierarchy accesses become direct calls and instruction accounting stays
// local until the end. Unfiltered sims (every production replay except
// the PHI coalescing model) batch decoded accesses into a fixed-size
// buffer drained through cache.Hierarchy.AccessBatch; filtered sims keep
// the one-at-a-time path because the filter must observe each access in
// stream position. Hook events flush the pending batch only when a hook
// is installed — they are no-ops otherwise and must not break up the
// batch. The decode logic must stay in lockstep with the generic loop
// above; the replay-equivalence golden (internal/bench) exercises this
// path against live runs while the encoder round-trip test exercises the
// generic one against raw event lists.
//
//popt:hot
//popt:codec trace dec
func (t *Trace) replaySim(s *Sim) {
	var last [pcSlots]uint64
	var lastV graph.V
	h := s.H
	filter := s.Filter
	hooked := s.Hook != nil
	instr := s.Instructions
	var batch [cache.BatchMax]mem.Access
	n := 0
	data := t.data
	i := checkTraceHeader(data)
	for i < len(data) {
		b := data[i]
		i++
		op := b & opMask
		switch op {
		case opAccessR, opAccessW, opAccessRT, opAccessWT:
			var pc uint64
			if hi := b >> 4; hi != pcEscape {
				pc = uint64(hi - 1)
			} else {
				pc, i = uvarint(data, i)
			}
			if op >= opAccessRT {
				var ticks uint64
				ticks, i = uvarint(data, i)
				instr += ticks
			}
			var d int64
			if i < len(data) && data[i] < 0x80 {
				ux := uint64(data[i])
				d = int64(ux>>1) ^ -int64(ux&1)
				i++
			} else {
				d, i = varint(data, i)
			}
			slot := uint16(pc) & pcSlotMask
			addr := last[slot] + uint64(d)
			last[slot] = addr
			acc := mem.Access{Addr: addr, PC: uint16(pc), Write: op == opAccessW || op == opAccessWT}
			instr++
			if filter != nil {
				if !filter(acc) {
					h.Access(acc)
				}
				continue
			}
			if n == cache.BatchMax {
				n = flushAccesses(h, &batch, n)
			}
			// The mask is a no-op (the flush above keeps n < BatchMax) that
			// lets the compiler drop the bounds check from the event loop.
			batch[n&(cache.BatchMax-1)] = acc
			n++
		case opSetVertex:
			d, nn := varint(data, i)
			i = nn
			lastV = graph.V(int64(lastV) + d)
			if hooked {
				n = flushAccesses(h, &batch, n)
				s.SetVertex(lastV)
			}
		case opStartIteration:
			if hooked {
				n = flushAccesses(h, &batch, n)
				s.StartIteration()
			}
		case opSetTile:
			tl, nn := uvarint(data, i)
			i = nn
			if hooked {
				n = flushAccesses(h, &batch, n)
				s.SetTile(int(tl))
			}
		case opMute, opUnmute:
			// The live sink has nothing to do at mute boundaries.
		case opTick:
			ticks, nn := uvarint(data, i)
			i = nn
			instr += ticks
		default:
			badOp(op, i-1)
		}
	}
	flushAccesses(h, &batch, n)
	s.Instructions = instr
}

// flushAccesses drains the pending access batch through the hierarchy's
// bulk path, returning the new (empty) batch length. A plain function
// taking the batch array by pointer — not a closure — so the batch stays
// on replaySim's stack; noinline keeps its once-per-batch bounds check
// from folding back into the per-event decode loop.
//
//go:noinline
//popt:hot
func flushAccesses(h *cache.Hierarchy, batch *[cache.BatchMax]mem.Access, n int) int {
	if n > 0 {
		h.AccessBatch(batch[:n])
	}
	return 0
}

// checkTraceHeader validates the full-stream header and returns the index
// of the first event byte. Mismatches panic out of line; replays of
// untrusted bytes go through DecodeTrace, which rejects them with an
// error before this hot path ever runs.
//
//popt:hot
func checkTraceHeader(data []byte) int {
	if len(data) < traceHeaderLen || data[0] != magic0 || data[1] != magicTrace1 || data[2] != TraceFormatVersion {
		var m0, m1, v byte
		if len(data) >= traceHeaderLen {
			m0, m1, v = data[0], data[1], data[2]
		}
		badTraceHeader(m0, m1, v)
	}
	return traceHeaderLen
}

// uvarint decodes a LEB128 varint at data[i:], returning the value and the
// index past it.
//
//popt:hot
func uvarint(data []byte, i int) (uint64, int) {
	var x uint64
	var shift uint
	for i < len(data) {
		b := data[i]
		i++
		x |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return x, i
		}
		shift += 7
	}
	badEOF(i)
	return 0, i
}

// varint decodes a zigzag varint.
//
//popt:hot
func varint(data []byte, i int) (int64, int) {
	ux, n := uvarint(data, i)
	return int64(ux>>1) ^ -int64(ux&1), n
}

// badOp panics on a corrupt opcode; a Trace is only ever produced by
// Encoder, so this is a programming error, not an input error. The panic
// (and its fmt boxing) lives out of line so Replay's frame stays
// escape-free.
//
//go:noinline
func badOp(op byte, at int) {
	panic(fmt.Sprintf("trace: corrupt stream: opcode %d at byte %d", op, at))
}

//go:noinline
func badEOF(at int) {
	panic(fmt.Sprintf("trace: corrupt stream: truncated varint at byte %d", at))
}
