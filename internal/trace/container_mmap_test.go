package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"popt/internal/cache"
)

// writeTempContainer materializes a container stream to a temp file and
// returns its path.
func writeTempContainer(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "stream.poptc")
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestContainerMappedReplay pins the zero-copy mapped window mode against
// the pread path: the same file opened both ways (OpenContainerFile's
// mmap, and OpenContainer over the raw file, which forces pread copies)
// must verify clean and replay the identical event sequence, and the
// bounded-window accounting must report the same high-water mark whether
// the windows are mapped views or heap copies.
func TestContainerMappedReplay(t *testing.T) {
	tr := encodeRandomStream(11, 2000)
	var buf bytes.Buffer
	if err := WriteTraceContainer(tr, &buf, testMeta(), 512); err != nil {
		t.Fatal(err)
	}
	path := writeTempContainer(t, buf.Bytes())

	mapped, err := OpenContainerFile(path)
	if err != nil {
		t.Fatalf("OpenContainerFile: %v", err)
	}
	defer mapped.Close()

	// Forced pread: open the same bytes through the io.ReaderAt
	// constructor, which never maps.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	copied, err := OpenContainer(f, fi.Size())
	if err != nil {
		t.Fatalf("OpenContainer (pread): %v", err)
	}
	if got := copied.WindowMode(); got != "copied" {
		t.Fatalf("pread reader WindowMode = %q, want %q", got, "copied")
	}

	if mapped.Meta() != copied.Meta() || mapped.Events() != copied.Events() || mapped.Chunks() != copied.Chunks() {
		t.Fatal("mapped and pread readers disagree on footer metadata")
	}
	if err := mapped.Verify(); err != nil {
		t.Fatalf("Verify (mapped): %v", err)
	}
	if err := copied.Verify(); err != nil {
		t.Fatalf("Verify (pread): %v", err)
	}
	a, b := &recordSink{}, &recordSink{}
	if err := mapped.ReplayTrace(a, ReplayOptions{}); err != nil {
		t.Fatalf("ReplayTrace (mapped): %v", err)
	}
	if err := copied.ReplayTrace(b, ReplayOptions{}); err != nil {
		t.Fatalf("ReplayTrace (pread): %v", err)
	}
	if !reflect.DeepEqual(a.evs, b.evs) {
		t.Fatal("mapped replay diverges from the pread replay")
	}
	if mapped.MaxResidentBytes() != copied.MaxResidentBytes() {
		t.Fatalf("window accounting differs by mode: mapped %d, pread %d",
			mapped.MaxResidentBytes(), copied.MaxResidentBytes())
	}
	if mapped.MaxResidentBytes() > mapped.MaxChunkBytes() {
		t.Fatalf("sequential replay resident %d exceeds one chunk (%d)",
			mapped.MaxResidentBytes(), mapped.MaxChunkBytes())
	}
}

// TestContainerMappedLLCParallel exercises the parallel LLC decode over
// mapped chunk views: concurrent workers reading disjoint subslices of
// one mapping must reproduce the pread replay counter for counter.
func TestContainerMappedLLCParallel(t *testing.T) {
	tr := encodeRandomLLCStream(13, 3000)
	var buf bytes.Buffer
	if err := WriteLLCContainer(tr, &buf, testMeta(), 512); err != nil {
		t.Fatal(err)
	}
	path := writeTempContainer(t, buf.Bytes())
	run := func(r *Reader) llcCounters {
		sim := NewSim(cache.NewHierarchy(tinyConfig()), nil)
		if err := r.ReplayLLC(sim, ReplayOptions{Workers: 4, Window: 3}); err != nil {
			t.Fatalf("ReplayLLC: %v", err)
		}
		return countersOf(sim)
	}

	mapped, err := OpenContainerFile(path)
	if err != nil {
		t.Fatalf("OpenContainerFile: %v", err)
	}
	defer mapped.Close()
	got := run(mapped)

	copied, err := OpenContainerBytes(buf.Bytes())
	if err != nil {
		t.Fatalf("OpenContainerBytes: %v", err)
	}
	if copied.WindowMode() != "mapped" {
		t.Fatalf("in-memory reader WindowMode = %q, want %q", copied.WindowMode(), "mapped")
	}
	if want := run(copied); got != want {
		t.Fatalf("mapped parallel replay %+v != in-memory replay %+v", got, want)
	}
}

// BenchmarkContainerWindowModes compares the two chunk-window paths on a
// full-container walk (Verify: CRC plus structural scan of every chunk,
// no simulation): "mapped" serves capacity-capped views of one mapping,
// "pread" copies each chunk into a pooled heap window.
func BenchmarkContainerWindowModes(b *testing.B) {
	tr := encodeRandomLLCStream(7, 200_000)
	var buf bytes.Buffer
	if err := WriteLLCContainer(tr, &buf, testMeta(), 64<<10); err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "bench.poptc")
	if err := os.WriteFile(path, buf.Bytes(), 0o666); err != nil {
		b.Fatal(err)
	}
	b.Run("mapped", func(b *testing.B) {
		r, err := OpenContainerFile(path)
		if err != nil {
			b.Fatal(err)
		}
		defer r.Close()
		b.SetBytes(int64(r.Size()))
		for i := 0; i < b.N; i++ {
			if err := r.Verify(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pread", func(b *testing.B) {
		f, err := os.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		defer f.Close()
		fi, err := f.Stat()
		if err != nil {
			b.Fatal(err)
		}
		r, err := OpenContainer(f, fi.Size())
		if err != nil {
			b.Fatal(err)
		}
		if r.WindowMode() != "copied" {
			b.Fatalf("WindowMode = %q, want copied", r.WindowMode())
		}
		b.SetBytes(int64(r.Size()))
		for i := 0; i < b.N; i++ {
			if err := r.Verify(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestContainerMappedClose pins Close semantics: closing a mapped reader
// releases the mapping exactly once, and a reader over a caller-owned
// ReaderAt treats Close as a no-op.
func TestContainerMappedClose(t *testing.T) {
	tr := encodeRandomStream(17, 200)
	var buf bytes.Buffer
	if err := WriteTraceContainer(tr, &buf, testMeta(), 0); err != nil {
		t.Fatal(err)
	}
	path := writeTempContainer(t, buf.Bytes())
	r, err := OpenContainerFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	plain, err := OpenContainer(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Close(); err != nil {
		t.Fatalf("Close on caller-owned reader: %v", err)
	}
	if err := plain.Verify(); err != nil {
		t.Fatalf("Verify after no-op Close: %v", err)
	}
}
