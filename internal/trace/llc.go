package trace

import (
	"encoding/binary"
	"math"

	"popt/internal/cache"
	"popt/internal/graph"
	"popt/internal/mem"
)

// This file implements the LLC-visible trace, the form the paper's own
// pipeline records (Section VI: the Pin tool logs the reference stream
// the LLC observes, and each policy is simulated against that one log).
// L1 and L2 run fixed Bit-PLRU and the hierarchy never back-invalidates
// them, so the stream of demand accesses that miss L2 — plus the dirty
// victims those misses push down — is identical under every LLC policy.
// Recording it once per workload lets each additional policy setup
// replay against only the LLC: the upper levels are neither re-simulated
// nor rebuilt, which is where the sweep engine's wall-clock win comes
// from. Hook events (SetVertex, StartIteration, SetTile) stay in the
// stream because vertex-indexed policies consume them; instruction
// counts and the L1/L2 statistics are totals, invariant across setups,
// and ride in the trace header instead of the event stream.

// LLC-stream opcodes, in the low nibble of the first byte. Access events
// carry the PC in the high nibble exactly like the full-stream format
// (hi = PC+1, pcEscape = explicit uvarint PC).
const (
	lopAccessR byte = iota + 1 // [hi: PC+1 | escape] zigzag delta address
	lopAccessW                 // [hi: PC+1 | escape] zigzag delta address
	lopWB                      // zigzag delta line address
	lopSetVertex               // zigzag delta vertex
	lopStartIteration
	lopSetTile // uvarint tile
)

// LLCStats describes a recorded LLC-visible stream.
type LLCStats struct {
	// Accesses counts demand references that reached the LLC; Writes of
	// them are stores.
	Accesses uint64
	Writes   uint64
	// Writebacks counts upper-level dirty victims offered to the LLC.
	Writebacks uint64
	// VertexUpdates, Iterations and TileSwitches count hook events.
	VertexUpdates uint64
	Iterations    uint64
	TileSwitches  uint64
}

// Events returns the total encoded event count.
func (s LLCStats) Events() uint64 {
	return s.Accesses + s.Writebacks + s.VertexUpdates + s.Iterations + s.TileSwitches
}

// LLCEncoder records the LLC-visible stream of one live run. It plugs
// into two observation points at once: as the hierarchy's Tap it sees
// LLC accesses and writebacks, and as a Sink (teed behind the live Sim)
// it sees the hook events that must stay ordered relative to them. The
// Sink-side Access/Tick/Mute events carry no LLC-visible information and
// are dropped — their one consumer, the instruction counter, is a total
// the finished trace copies from the recording Sim.
type LLCEncoder struct {
	Nop
	buf    []byte
	last   [pcSlots]uint64 // previous access address per PC slot
	lastWB uint64          // previous writeback line address
	lastV  graph.V
	stats  LLCStats

	// Chunked mode (NewChunkedLLCEncoder); see Encoder's chunk fields.
	cw              *ContainerWriter
	chunkBytes      int
	chunkStartEvnts uint64
	chunkFirstPC    uint64
}

// NewLLCEncoder returns an empty LLC-stream encoder. The fixed-width
// header (magic, version, and the setup-invariant totals — see
// HeaderFields in format.go) is reserved up front and filled at finalize
// time by Trace, so the event buffer never needs a copy.
func NewLLCEncoder() *LLCEncoder {
	// chunkBytes is a sentinel no buffer reaches, so the hot per-event
	// chunk check is one compare with no chunked/in-memory branch.
	e := &LLCEncoder{buf: make([]byte, llcHeaderLen, 64 << 10), chunkBytes: math.MaxInt}
	e.buf[0], e.buf[1], e.buf[2] = magic0, magicLLC1, LLCFormatVersion
	return e
}

// NewChunkedLLCEncoder returns an LLC-stream encoder that streams chunk
// frames through cw: resident encode memory stays O(one chunk) no matter
// how long the recording runs, which is what lets paper-scale streams be
// recorded straight to the corpus. Finalize with Finish (Trace is invalid
// in this mode); the owner then calls cw.Finish to seal the container.
func NewChunkedLLCEncoder(cw *ContainerWriter) *LLCEncoder {
	return &LLCEncoder{
		buf:        make([]byte, 0, cw.chunkBytes+16),
		cw:         cw,
		chunkBytes: cw.chunkBytes,
	}
}

// maybeChunk closes the current chunk once the payload passes the byte
// target; called at the end of every encoded event. The call pushes
// LLCWriteback and SetVertex past the inlining budget, which the hotpath
// baseline accepts deliberately: every hot caller reaches them through an
// interface (Hierarchy.Tap during recording, Sink via Tee), where
// inlining never applied; the only static caller is the cold rechunk
// path.
//
//popt:hot
func (e *LLCEncoder) maybeChunk() {
	// In-memory encoders carry a sentinel threshold, so no nil check of
	// e.cw is needed here — one compare per event.
	if len(e.buf) >= e.chunkBytes {
		e.flushChunk()
	}
}

// flushChunk emits the pending chunk frame and resets the per-chunk delta
// state; see Encoder.flushChunk.
//
//go:noinline
func (e *LLCEncoder) flushChunk() {
	if len(e.buf) == 0 {
		return
	}
	events := e.stats.Events() - e.chunkStartEvnts
	e.cw.writeChunk(events, e.chunkFirstPC, e.buf)
	e.buf = e.buf[:0]
	e.chunkStartEvnts = e.stats.Events()
	e.chunkFirstPC = 0
	e.last = [pcSlots]uint64{}
	e.lastWB = 0
	e.lastV = 0
}

// Finish flushes the trailing chunk and installs the stream totals —
// including the setup-invariant instruction and L1/L2 counters that the
// in-memory form carries in its header — on the container writer.
func (e *LLCEncoder) Finish(instructions uint64, l1, l2 cache.Stats) error {
	if e.cw == nil {
		panic("trace: LLCEncoder.Finish without a container writer; use Trace")
	}
	e.flushChunk()
	e.cw.setStats(encodeLLCStats(e.stats, instructions, l1, l2, e.cw.streamCRC))
	return e.cw.Err()
}

// LLCAccess implements cache.LLCTap.
//
//popt:hot
//popt:codec llc enc
func (e *LLCEncoder) LLCAccess(acc mem.Access) {
	op := lopAccessR
	if acc.Write {
		op = lopAccessW
		e.stats.Writes++
	}
	e.stats.Accesses++
	if acc.PC <= pcInline {
		e.buf = append(e.buf, op|byte(acc.PC+1)<<4)
	} else {
		e.buf = append(e.buf, op|pcEscape<<4)
		e.buf = appendUvarint(e.buf, uint64(acc.PC))
	}
	slot := acc.PC & pcSlotMask
	e.buf = appendVarint(e.buf, int64(acc.Addr-e.last[slot]))
	e.last[slot] = acc.Addr
	if e.cw != nil && e.chunkFirstPC == 0 {
		e.chunkFirstPC = uint64(acc.PC) + 1
	}
	e.maybeChunk()
}

// LLCWriteback implements cache.LLCTap.
//
//popt:hot
//popt:codec llc enc
func (e *LLCEncoder) LLCWriteback(lineAddr uint64) {
	e.stats.Writebacks++
	e.buf = append(e.buf, lopWB)
	e.buf = appendVarint(e.buf, int64(lineAddr-e.lastWB))
	e.lastWB = lineAddr
	e.maybeChunk()
}

// SetVertex implements Sink.
//
//popt:hot
//popt:codec llc enc
func (e *LLCEncoder) SetVertex(v graph.V) {
	e.stats.VertexUpdates++
	e.buf = append(e.buf, lopSetVertex)
	e.buf = appendVarint(e.buf, int64(v)-int64(e.lastV))
	e.lastV = v
	e.maybeChunk()
}

// StartIteration implements Sink.
//
//popt:codec llc enc
func (e *LLCEncoder) StartIteration() {
	e.stats.Iterations++
	e.buf = append(e.buf, lopStartIteration)
	e.maybeChunk()
}

// SetTile implements Sink.
//
//popt:codec llc enc
func (e *LLCEncoder) SetTile(t int) {
	e.stats.TileSwitches++
	e.buf = append(e.buf, lopSetTile)
	e.buf = appendUvarint(e.buf, uint64(t))
	e.maybeChunk()
}

// Trace finalizes the encoder. instructions is the recording run's
// retired-instruction total and l1, l2 its upper-level statistics; all
// three are invariant across LLC policy setups, so replays install them
// directly. They are also written into the reserved header slots so the
// encoded bytes are self-contained for the on-disk corpus (DecodeLLCTrace
// reads them back). The encoder must not be used after Trace is called.
func (e *LLCEncoder) Trace(instructions uint64, l1, l2 cache.Stats) *LLCTrace {
	if e.cw != nil {
		panic("trace: chunked LLCEncoder has no in-memory form; finalize with Finish")
	}
	putLLCHeader(e.buf, instructions, l1, l2)
	return &LLCTrace{data: e.buf, instructions: instructions, l1: l1, l2: l2, stats: e.stats}
}

// putLLCHeader fills the setup-invariant totals into the reserved header
// slots, in HeaderFields order.
func putLLCHeader(buf []byte, instructions uint64, l1, l2 cache.Stats) {
	at := 3
	put := func(x uint64) {
		binary.LittleEndian.PutUint64(buf[at:at+8], x)
		at += 8
	}
	put(instructions)
	for _, s := range [2]cache.Stats{l1, l2} {
		put(s.Accesses)
		put(s.Hits)
		put(s.Misses)
		put(s.Evictions)
		put(s.Writebacks)
	}
}

// LLCTrace is an immutable encoded LLC-visible stream plus the
// setup-invariant totals of the run that recorded it. It is safe to
// replay from multiple goroutines concurrently.
//
//popt:frozen
type LLCTrace struct {
	data         []byte
	instructions uint64
	l1, l2       cache.Stats
	stats        LLCStats
}

// Size returns the encoded size in bytes.
func (t *LLCTrace) Size() int { return len(t.data) }

// Stats returns the stream's event statistics.
func (t *LLCTrace) Stats() LLCStats { return t.stats }

// BytesPerEvent returns the encoded density.
func (t *LLCTrace) BytesPerEvent() float64 {
	n := t.stats.Events()
	if n == 0 {
		return 0
	}
	return float64(len(t.data)) / float64(n)
}

// Replay drives sim's LLC with the recorded stream and installs the
// setup-invariant totals (instructions, L1/L2 statistics), reproducing a
// live run byte-for-byte on every counter — the replay-equivalence
// golden in internal/bench pins this across the policy zoo. Decoded
// demand accesses and writebacks are collected into a fixed-size probe
// batch and issued through cache.Level.AccessBatch, which preserves
// event order and per-event semantics exactly (see its contract) while
// amortizing the set-mapping branch and statistics traffic; the batch
// mirrors cache.Hierarchy.Access's LLC branches probe for probe. Hook
// events force a flush only when the sim actually has a hook — for a
// hookless sim (the whole baseline policy zoo) they are decode-local
// no-ops and the batch runs long. The stream header is checked once up
// front: a magic or format-version mismatch fails loudly (badLLCHeader)
// instead of misdecoding bytes laid out under another version.
//
//popt:hot
//popt:codec llc dec
func (t *LLCTrace) Replay(sim *Sim) {
	h := sim.H
	llc := h.LLC
	hooked := sim.Hook != nil
	var last [pcSlots]uint64
	var lastWB uint64
	var lastV graph.V
	var batch [cache.BatchMax]cache.Probe
	n := 0
	data := t.data
	i := checkLLCHeader(data)
	for i < len(data) {
		b := data[i]
		i++
		op := b & opMask
		switch op {
		case lopAccessR, lopAccessW:
			var pc uint64
			if hi := b >> 4; hi != pcEscape {
				pc = uint64(hi - 1)
			} else {
				pc, i = uvarint(data, i)
			}
			var d int64
			if i < len(data) && data[i] < 0x80 {
				ux := uint64(data[i])
				d = int64(ux>>1) ^ -int64(ux&1)
				i++
			} else {
				d, i = varint(data, i)
			}
			slot := uint16(pc) & pcSlotMask
			addr := last[slot] + uint64(d)
			last[slot] = addr
			kind := cache.ProbeRead
			if op == lopAccessW {
				kind = cache.ProbeWrite
			}
			if n == cache.BatchMax {
				n = flushProbes(h, llc, &batch, n)
			}
			// The mask is a no-op (the flush above keeps n < BatchMax) that
			// lets the compiler drop the bounds check from the event loop.
			batch[n&(cache.BatchMax-1)] = cache.Probe{Addr: addr, PC: uint16(pc), Kind: kind}
			n++
		case lopWB:
			d, nn := varint(data, i)
			i = nn
			lastWB += uint64(d)
			if n == cache.BatchMax {
				n = flushProbes(h, llc, &batch, n)
			}
			batch[n&(cache.BatchMax-1)] = cache.Probe{Addr: lastWB, Kind: cache.ProbeWB}
			n++
		case lopSetVertex:
			d, nn := varint(data, i)
			i = nn
			lastV = graph.V(int64(lastV) + d)
			if hooked {
				n = flushProbes(h, llc, &batch, n)
				sim.SetVertex(lastV)
			}
		case lopStartIteration:
			if hooked {
				n = flushProbes(h, llc, &batch, n)
				sim.StartIteration()
			}
		case lopSetTile:
			tl, nn := uvarint(data, i)
			i = nn
			if hooked {
				n = flushProbes(h, llc, &batch, n)
				sim.SetTile(int(tl))
			}
		default:
			badOp(op, i-1)
		}
	}
	flushProbes(h, llc, &batch, n)
	sim.Instructions += t.instructions
	h.L1.Stats.Add(t.l1)
	h.L2.Stats.Add(t.l2)
}

// reencodeLLCEvents decodes the event bytes of an in-memory LLC stream
// starting at i and re-encodes each event through enc — the chunking path
// of WriteLLCContainer and `popttrace rechunk`. The decode arms mirror
// Replay opcode for opcode (codecpair holds them in lockstep); because
// the chunked encoder resets its delta state at chunk boundaries, the
// re-encoded bytes differ from the source stream's even though the event
// sequence is identical.
//
//popt:codec llc dec
func reencodeLLCEvents(data []byte, i int, enc *LLCEncoder) {
	var last [pcSlots]uint64
	var lastWB uint64
	var lastV graph.V
	for i < len(data) {
		b := data[i]
		i++
		op := b & opMask
		switch op {
		case lopAccessR, lopAccessW:
			var pc uint64
			if hi := b >> 4; hi != pcEscape {
				pc = uint64(hi - 1)
			} else {
				pc, i = uvarint(data, i)
			}
			d, nn := varint(data, i)
			i = nn
			slot := uint16(pc) & pcSlotMask
			addr := last[slot] + uint64(d)
			last[slot] = addr
			enc.LLCAccess(mem.Access{Addr: addr, PC: uint16(pc), Write: op == lopAccessW})
		case lopWB:
			d, nn := varint(data, i)
			i = nn
			lastWB += uint64(d)
			enc.LLCWriteback(lastWB)
		case lopSetVertex:
			d, nn := varint(data, i)
			i = nn
			lastV = graph.V(int64(lastV) + d)
			enc.SetVertex(lastV)
		case lopStartIteration:
			enc.StartIteration()
		case lopSetTile:
			tl, nn := uvarint(data, i)
			i = nn
			enc.SetTile(int(tl))
		default:
			badOp(op, i-1)
		}
	}
}

// flushProbes issues the pending probe batch against the LLC and folds
// the resulting DRAM traffic into the hierarchy's counters, returning
// the new (empty) batch length. A plain function taking the batch array
// by pointer — not a closure — so the batch stays on Replay's stack;
// noinline keeps its once-per-batch bounds check from folding back into
// the per-event decode loop.
//
//go:noinline
//popt:hot
func flushProbes(h *cache.Hierarchy, llc *cache.Level, batch *[cache.BatchMax]cache.Probe, n int) int {
	if n > 0 {
		dr, dw := llc.AccessBatch(batch[:n])
		h.DRAMReads += dr
		h.DRAMWrites += dw
	}
	return 0
}

// checkLLCHeader validates the LLC-stream header and returns the index of
// the first event byte; see checkTraceHeader.
//
//popt:hot
func checkLLCHeader(data []byte) int {
	if len(data) < llcHeaderLen || data[0] != magic0 || data[1] != magicLLC1 || data[2] != LLCFormatVersion {
		var m0, m1, v byte
		if len(data) >= 3 {
			m0, m1, v = data[0], data[1], data[2]
		}
		badLLCHeader(m0, m1, v)
	}
	return llcHeaderLen
}
