package trace

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"popt/internal/cache"
	"popt/internal/graph"
	"popt/internal/mem"
)

// tinyConfig is a minimal hierarchy for decode/replay parity tests; the
// shape is irrelevant, only that replay runs a real LLC datapath.
func tinyConfig() cache.Config {
	return cache.Config{
		L1Size: 1 << 10, L1Ways: 2,
		L2Size: 2 << 10, L2Ways: 2,
		LLCSize: 4 << 10, LLCWays: 4,
		LLCPolicy: func() cache.Policy { return cache.NewLRU() },
	}
}

// encodeRandomStream builds a pseudo-random full stream exercising every
// opcode, inline and escaped PCs, and merged tick+access events.
func encodeRandomStream(seed int64, n int) *Trace {
	rng := rand.New(rand.NewSource(seed))
	enc := NewEncoder()
	for i := 0; i < n; i++ {
		switch rng.Intn(10) {
		case 0:
			enc.SetVertex(graph.V(rng.Uint32()))
		case 1:
			enc.StartIteration()
		case 2:
			enc.SetTile(rng.Intn(64))
		case 3:
			enc.Mute()
			enc.Unmute()
		case 4, 5:
			enc.Tick(uint64(rng.Intn(1000)))
		default:
			enc.Access(mem.Access{
				Addr:  rng.Uint64(),
				PC:    uint16(rng.Intn(1 << 16)),
				Write: rng.Intn(2) == 0,
			})
		}
	}
	return enc.Trace()
}

// TestDecodeTraceRoundTrip pins the validating decoder against the
// encoder: decoding a real encoded stream must succeed, reproduce the
// encoder's statistics exactly, and replay the identical event sequence.
func TestDecodeTraceRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		tr := encodeRandomStream(seed, 500)
		dec, err := DecodeTrace(tr.Bytes())
		if err != nil {
			t.Fatalf("seed %d: DecodeTrace on a real stream: %v", seed, err)
		}
		if dec.Stats() != tr.Stats() {
			t.Fatalf("seed %d: recomputed stats %+v != encoder stats %+v", seed, dec.Stats(), tr.Stats())
		}
		a, b := &recordSink{}, &recordSink{}
		tr.Replay(a)
		dec.Replay(b)
		if !reflect.DeepEqual(a.evs, b.evs) {
			t.Fatalf("seed %d: decoded trace replays differently", seed)
		}
	}
}

// TestDecodeTraceRejectsCorruptInput drives the error paths that the
// panic-based hot replay deliberately does not have: every corruption
// must come back as an error naming the problem.
func TestDecodeTraceRejectsCorruptInput(t *testing.T) {
	header := []byte{magic0, magicTrace1, TraceFormatVersion}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "truncated"},
		{"short header", []byte{magic0}, "truncated"},
		{"bad magic", []byte{'x', 'y', TraceFormatVersion}, "not a trace stream"},
		{"future version", []byte{magic0, magicTrace1, TraceFormatVersion + 1}, "format version"},
		{"unknown opcode", append(append([]byte{}, header...), 0x0b), "opcode 11"},
		{"zero opcode", append(append([]byte{}, header...), 0x00), "opcode 0"},
		{"missing payload", append(append([]byte{}, header...), opSetTile), "truncated varint"},
		{"unterminated varint", append(append([]byte{}, header...), opSetTile, 0x80, 0x80), "truncated varint"},
		{"truncated access delta", append(append([]byte{}, header...), opAccessR|2<<4), "truncated varint"},
		{"truncated escaped pc", append(append([]byte{}, header...), opAccessR|pcEscape<<4), "truncated varint"},
	}
	for _, tc := range cases {
		tr, err := DecodeTrace(tc.data)
		if err == nil {
			t.Errorf("%s: DecodeTrace accepted corrupt input (stats %+v)", tc.name, tr.Stats())
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestDecodeLLCTraceRoundTrip checks the LLC decoder reads the totals
// back out of the header and that a decoded stream replays exactly like
// the original.
func TestDecodeLLCTraceRoundTrip(t *testing.T) {
	enc := NewLLCEncoder()
	enc.LLCAccess(mem.Access{Addr: 1 << 20, PC: 3})
	enc.LLCAccess(mem.Access{Addr: 1<<20 + 64, PC: 3, Write: true})
	enc.LLCAccess(mem.Access{Addr: 9999, PC: 200}) // escaped PC
	enc.LLCWriteback(1 << 14)
	enc.SetVertex(17)
	enc.StartIteration()
	enc.SetTile(5)
	l1 := cache.Stats{Accesses: 100, Hits: 90, Misses: 10, Evictions: 4, Writebacks: 2}
	l2 := cache.Stats{Accesses: 10, Hits: 5, Misses: 5, Evictions: 1, Writebacks: 1}
	tr := enc.Trace(4242, l1, l2)

	dec, err := DecodeLLCTrace(tr.Bytes())
	if err != nil {
		t.Fatalf("DecodeLLCTrace on a real stream: %v", err)
	}
	if dec.instructions != 4242 || dec.l1 != l1 || dec.l2 != l2 {
		t.Fatalf("header totals did not round trip: instructions=%d l1=%+v l2=%+v", dec.instructions, dec.l1, dec.l2)
	}
	if dec.Stats() != tr.Stats() {
		t.Fatalf("recomputed stats %+v != encoder stats %+v", dec.Stats(), tr.Stats())
	}

	simA := NewSim(cache.NewHierarchy(tinyConfig()), nil)
	simB := NewSim(cache.NewHierarchy(tinyConfig()), nil)
	tr.Replay(simA)
	dec.Replay(simB)
	if simA.Instructions != simB.Instructions ||
		simA.H.LLC.Stats != simB.H.LLC.Stats ||
		simA.H.DRAMReads != simB.H.DRAMReads || simA.H.DRAMWrites != simB.H.DRAMWrites {
		t.Fatal("decoded LLC trace replays differently from the original")
	}
}

// TestDecodeLLCTraceRejectsCorruptInput mirrors the full-stream corrupt
// cases for the LLC form, including its larger fixed-width header.
func TestDecodeLLCTraceRejectsCorruptInput(t *testing.T) {
	valid := NewLLCEncoder().Trace(1, cache.Stats{}, cache.Stats{}).Bytes()
	header := append([]byte{}, valid...) // a bare, valid header
	badVersion := append([]byte{}, header...)
	badVersion[2]++
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "truncated"},
		{"header only magic", []byte{magic0, magicLLC1, LLCFormatVersion}, "truncated"},
		{"bad magic", append([]byte{'q', 'q'}, header[2:]...), "not a llc stream"},
		{"future version", badVersion, "format version"},
		{"unknown opcode", append(append([]byte{}, header...), 0x07), "opcode 7"},
		{"missing payload", append(append([]byte{}, header...), lopWB), "truncated varint"},
		{"truncated escaped pc", append(append([]byte{}, header...), lopAccessW|pcEscape<<4), "truncated varint"},
	}
	for _, tc := range cases {
		if _, err := DecodeLLCTrace(tc.data); err == nil {
			t.Errorf("%s: DecodeLLCTrace accepted corrupt input", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestFormatVersionsRideTheHeaders pins the registry-to-wire link: the
// byte each encoder writes at the version offset is the stream's
// FormatVersions entry, and a mismatched version fails loudly — as an
// error through the validating decoder and as a panic on the hot replay
// path — rather than misdecoding.
func TestFormatVersionsRideTheHeaders(t *testing.T) {
	full := encodeRandomStream(1, 50).Bytes()
	if got := full[2]; got != FormatVersions["trace"] {
		t.Fatalf("trace header carries version %d, FormatVersions says %d", got, FormatVersions["trace"])
	}
	llc := NewLLCEncoder().Trace(0, cache.Stats{}, cache.Stats{}).Bytes()
	if got := llc[2]; got != FormatVersions["llc"] {
		t.Fatalf("llc header carries version %d, FormatVersions says %d", got, FormatVersions["llc"])
	}

	mutated := append([]byte{}, full...)
	mutated[2]++
	if _, err := DecodeTrace(mutated); err == nil || !strings.Contains(err.Error(), "format version") {
		t.Fatalf("DecodeTrace on a version-bumped stream: %v, want format-version error", err)
	}

	// The hot path must refuse too: replaying under the wrong version
	// would silently misdecode every delta that follows.
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Replay decoded a stream with a mismatched format version")
		}
		if !strings.Contains(r.(string), "header") {
			t.Fatalf("Replay panic %q does not mention the header", r)
		}
	}()
	bad := &Trace{data: mutated}
	bad.Replay(&recordSink{})
}

// TestHeaderLayoutMatchesDeclaration pins the declarative HeaderFields
// layout (what formatlock fingerprints) against the real header sizes
// the encoders reserve: a field added to one side without the other is a
// test failure here and a fingerprint drift there.
func TestHeaderLayoutMatchesDeclaration(t *testing.T) {
	width := func(fields []string) int {
		total := 0
		for _, f := range fields {
			name, kind, ok := strings.Cut(f, ":")
			if !ok {
				t.Fatalf("header field %q is not name:kind", f)
			}
			switch {
			case name == "magic" || strings.HasSuffix(name, ".magic"):
				total += len(kind)
			case kind == "u8":
				total++
			case kind == "u64":
				total += 8
			default:
				t.Fatalf("header field %q has unknown kind", f)
			}
		}
		return total
	}
	if got := width(HeaderFields["trace"]); got != traceHeaderLen {
		t.Errorf("declared trace header is %d bytes, encoder reserves %d", got, traceHeaderLen)
	}
	if got := width(HeaderFields["llc"]); got != llcHeaderLen {
		t.Errorf("declared llc header is %d bytes, encoder reserves %d", got, llcHeaderLen)
	}
	// The container's fixed-width bytes split across the two file ends:
	// fields prefixed "trailer." are the trailer, the rest the header.
	var head, tail []string
	for _, f := range HeaderFields["container"] {
		if strings.HasPrefix(f, "trailer.") {
			tail = append(tail, f)
		} else {
			head = append(head, f)
		}
	}
	if got := width(head); got != containerHeaderLen {
		t.Errorf("declared container header is %d bytes, writer emits %d", got, containerHeaderLen)
	}
	if got := width(tail); got != containerTrailerLen {
		t.Errorf("declared container trailer is %d bytes, writer emits %d", got, containerTrailerLen)
	}
	for _, stream := range []string{"trace", "llc", "container"} {
		fields := HeaderFields[stream]
		if len(fields) < 2 || !strings.HasPrefix(fields[0], "magic:p") || fields[1] != "version:u8" {
			t.Errorf("%s header must open with the magic and version fields, got %v", stream, fields)
		}
		if _, ok := FormatVersions[stream]; !ok {
			t.Errorf("stream %q has header fields but no FormatVersions entry", stream)
		}
	}
}
