package trace

import "fmt"

// Wire-format discipline (DESIGN.md §10). Every encoded stream begins
// with a fixed-width header — a two-byte magic naming the stream and a
// one-byte format version — so that bytes which outlive the process (the
// roadmap's persistent trace corpus) can be rejected instead of
// misdecoded when the layout evolves. The version constants below are the
// single source of truth: the encoders write them into the header, the
// replay paths and the validating decoders check them, and the poptlint
// wirecheck family (codecpair / formatlock / opexhaust) pins the layout
// they version — any change to an opcode's payload op sequence or a
// header field fails `poptlint -wirecheck` until the stream's entry here
// is bumped and the checked-in fingerprint baseline is regenerated with
// `poptlint -wirecheck -update`.

// Format versions, one per wire stream. Bump a stream's constant whenever
// its encoded layout changes (opcodes, payload op order, header fields);
// the formatlock analyzer refuses fingerprint drift that is not
// accompanied by a bump.
const (
	// TraceFormatVersion versions the full pre-L1 stream (record.go).
	TraceFormatVersion byte = 1
	// LLCFormatVersion versions the LLC-visible stream (llc.go).
	LLCFormatVersion byte = 1
	// ContainerFormatVersion versions the chunked on-disk container
	// (container.go): the frame markers, the chunk/stats/index/meta frame
	// payload layouts, and the fixed header/trailer. The event bytes
	// inside chunk payloads are versioned separately by the inner
	// stream's own entry, which rides in the container header.
	ContainerFormatVersion byte = 1
)

// FormatVersions is the stream-name -> current-version registry the
// wirecheck analyzers cross-check against the `//popt:codec <stream>`
// annotations. The keys are the stream names used in those annotations.
var FormatVersions = map[string]byte{
	"trace":     TraceFormatVersion,
	"llc":       LLCFormatVersion,
	"container": ContainerFormatVersion,
}

// HeaderFields declares each stream's fixed-width header layout in wire
// order. The formatlock analyzer folds these lines into the stream
// fingerprint (so header changes need version bumps like opcode changes
// do), and TestHeaderLayoutMatchesDeclaration pins the declared widths
// against the real header sizes and offsets used by the encoders.
var HeaderFields = map[string][]string{
	"trace": {"magic:pt", "version:u8"},
	"llc": {
		"magic:pl", "version:u8", "instructions:u64",
		"l1.accesses:u64", "l1.hits:u64", "l1.misses:u64", "l1.evictions:u64", "l1.writebacks:u64",
		"l2.accesses:u64", "l2.hits:u64", "l2.misses:u64", "l2.evictions:u64", "l2.writebacks:u64",
	},
	// The container's fixed-width bytes are split across the two ends of
	// the file: a 5-byte header up front (kind is 't' or 'l', naming the
	// inner event stream; inner.version is that stream's FormatVersions
	// entry at record time) and a 20-byte trailer at EOF that locates the
	// footer frames (stats/index/meta) so readers can seek without
	// scanning. Everything between is length-prefixed frames, fingerprinted
	// through the //popt:codec container annotations.
	"container": {
		"magic:pc", "version:u8", "kind:u8", "inner.version:u8",
		"trailer.footer_off:u64", "trailer.footer_len:u64",
		"trailer.magic:pc", "trailer.version:u8", "trailer.kind:u8",
	},
}

// Stream magics: 'p' plus one stream letter.
const (
	magic0          byte = 'p'
	magicTrace1     byte = 't'
	magicLLC1       byte = 'l'
	magicContainer1 byte = 'c'
)

// Container kinds: the inner event stream a container holds. The kind
// byte reuses the inner stream's magic letter so `popttrace info` output
// and hexdumps read the same way.
const (
	// KindTrace marks a container of full pre-L1 stream chunks.
	KindTrace byte = magicTrace1
	// KindLLC marks a container of LLC-visible stream chunks.
	KindLLC byte = magicLLC1
)

// traceHeaderLen is the full-stream header size: magic (2) + version (1).
const traceHeaderLen = 3

// llcHeaderLen is the LLC-stream header size: magic (2) + version (1) +
// instructions (8) + two cache.Stats blocks of five u64 counters each.
// The totals are fixed-width (not varints) so the encoder can reserve the
// space up front and fill it at finalize time without copying the event
// buffer.
const llcHeaderLen = 3 + 8 + 2*5*8

// containerHeaderLen is the container header size: magic (2) + container
// version (1) + kind (1) + inner stream version (1).
const containerHeaderLen = 5

// containerTrailerLen is the fixed trailer at EOF: footer offset (8) +
// footer length (8) + magic echo (2) + version (1) + kind (1). Readers
// seek here first, so it is fixed-width and last.
const containerTrailerLen = 20

// badTraceHeader panics on a full-stream header mismatch. Out of line so
// the replay hot loops stay escape-free, like badOp.
//
//go:noinline
func badTraceHeader(m0, m1, v byte) {
	panic(fmt.Sprintf("trace: bad stream header % x (want magic %c%c version %d); re-record the trace or decode it with DecodeTrace",
		[]byte{m0, m1, v}, magic0, magicTrace1, TraceFormatVersion))
}

// badLLCHeader panics on an LLC-stream header mismatch.
//
//go:noinline
func badLLCHeader(m0, m1, v byte) {
	panic(fmt.Sprintf("trace: bad LLC stream header % x (want magic %c%c version %d); re-record the trace or decode it with DecodeLLCTrace",
		[]byte{m0, m1, v}, magic0, magicLLC1, LLCFormatVersion))
}
