package trace

import (
	"encoding/binary"
	"fmt"

	"popt/internal/cache"
)

// This file is the untrusted-input half of the wire formats: the hot
// replay paths in record.go / llc.go assume a stream produced by this
// process's encoders and panic on corruption (badOp / badEOF /
// badTraceHeader), which is the right contract for in-memory round trips
// but not for bytes read back off disk. DecodeTrace and DecodeLLCTrace
// validate a byte stream completely — header magic, format version, every
// opcode, every varint boundary — and return errors instead of
// panicking. A successfully decoded trace is structurally sound by
// construction, so its Replay may keep using the panic-based hot loops
// unchanged. This is the robustness prerequisite for the roadmap's
// persistent trace corpus.

// Bytes returns the encoded stream, header included — the exact byte
// form DecodeTrace accepts. The slice aliases the trace's storage
// (Trace is //popt:frozen): callers persist or copy it, never mutate.
func (t *Trace) Bytes() []byte { return t.data }

// Bytes returns the encoded LLC stream, header included — the exact byte
// form DecodeLLCTrace accepts. The slice aliases the trace's storage.
func (t *LLCTrace) Bytes() []byte { return t.data }

// DecodeTrace validates data as an encoded full pre-L1 stream and
// returns it as a replayable Trace. The whole stream is scanned: a bad
// magic, an unsupported format version, an unknown opcode, or a varint
// running off the end of the buffer is an error, never a panic. Stream
// statistics are recomputed during the scan, so the result reports
// Stats/BytesPerEvent exactly like the encoder that produced the bytes.
// The returned Trace takes ownership of data; the caller must not mutate
// it afterwards.
func DecodeTrace(data []byte) (*Trace, error) {
	if err := checkHeaderErr(data, magicTrace1, TraceFormatVersion, traceHeaderLen, "trace"); err != nil {
		return nil, err
	}
	stats, err := scanTrace(data)
	if err != nil {
		return nil, err
	}
	return &Trace{data: data, stats: stats}, nil
}

// DecodeLLCTrace validates data as an encoded LLC-visible stream and
// returns it as a replayable LLCTrace, reading the setup-invariant totals
// (instructions, L1/L2 statistics) back out of the header.
func DecodeLLCTrace(data []byte) (*LLCTrace, error) {
	if err := checkHeaderErr(data, magicLLC1, LLCFormatVersion, llcHeaderLen, "llc"); err != nil {
		return nil, err
	}
	at := 3
	take := func() uint64 {
		x := binary.LittleEndian.Uint64(data[at : at+8])
		at += 8
		return x
	}
	instructions := take()
	var levels [2]cache.Stats
	for i := range levels {
		levels[i] = cache.Stats{
			Accesses:   take(),
			Hits:       take(),
			Misses:     take(),
			Evictions:  take(),
			Writebacks: take(),
		}
	}
	stats, err := scanLLC(data)
	if err != nil {
		return nil, err
	}
	return &LLCTrace{
		data:         data,
		instructions: instructions,
		l1:           levels[0],
		l2:           levels[1],
		stats:        stats,
	}, nil
}

// checkHeaderErr is the error-returning counterpart of
// checkTraceHeader/checkLLCHeader.
func checkHeaderErr(data []byte, m1, version byte, hlen int, stream string) error {
	if len(data) < hlen {
		return fmt.Errorf("trace: %s stream truncated: %d byte(s), header needs %d", stream, len(data), hlen)
	}
	if data[0] != magic0 || data[1] != m1 {
		return fmt.Errorf("trace: not a %s stream: magic % x, want %c%c", stream, data[:2], magic0, m1)
	}
	if data[2] != version {
		return fmt.Errorf("trace: %s stream is format version %d, this decoder reads version %d; re-record the trace or migrate the corpus", stream, data[2], version)
	}
	return nil
}

// scanTrace walks every event of a full-stream body, validating structure
// and recomputing the statistics the encoder would have collected.
func scanTrace(data []byte) (Stats, error) {
	return scanTraceFrom(data, traceHeaderLen)
}

// scanTraceFrom validates full-stream event bytes starting at i — the
// whole body for DecodeTrace, a single headerless chunk payload for the
// container reader. The opcode dispatch mirrors replayTraceEvents arm for
// arm; the codecpair analyzer holds every decoder to the encoder's opcode
// payloads.
//
//popt:codec trace dec
func scanTraceFrom(data []byte, i int) (Stats, error) {
	var stats Stats
	for i < len(data) {
		b := data[i]
		at := i
		i++
		op := b & opMask
		var err error
		switch op {
		case opAccessR, opAccessW, opAccessRT, opAccessWT:
			if hi := b >> 4; hi == pcEscape {
				if _, i, err = uvarintChecked(data, i); err != nil {
					return Stats{}, err
				}
			}
			if op >= opAccessRT {
				var ticks uint64
				if ticks, i, err = uvarintChecked(data, i); err != nil {
					return Stats{}, err
				}
				stats.TickEvents++
				stats.TickedInstrs += ticks
			}
			if _, i, err = varintChecked(data, i); err != nil {
				return Stats{}, err
			}
			stats.Accesses++
			if op == opAccessW || op == opAccessWT {
				stats.Writes++
			}
		case opSetVertex:
			if _, i, err = varintChecked(data, i); err != nil {
				return Stats{}, err
			}
			stats.VertexUpdates++
		case opStartIteration:
			stats.Iterations++
		case opSetTile:
			if _, i, err = uvarintChecked(data, i); err != nil {
				return Stats{}, err
			}
			stats.TileSwitches++
		case opMute:
			stats.MutedRegions++
		case opUnmute:
		case opTick:
			var ticks uint64
			if ticks, i, err = uvarintChecked(data, i); err != nil {
				return Stats{}, err
			}
			stats.TickEvents++
			stats.TickedInstrs += ticks
		default:
			return Stats{}, fmt.Errorf("trace: corrupt trace stream: opcode %d at byte %d", op, at)
		}
	}
	return stats, nil
}

// scanLLC walks every event of an LLC-stream body; see scanTrace.
func scanLLC(data []byte) (LLCStats, error) {
	return scanLLCFrom(data, llcHeaderLen)
}

// scanLLCFrom validates LLC-stream event bytes starting at i; see
// scanTraceFrom.
//
//popt:codec llc dec
func scanLLCFrom(data []byte, i int) (LLCStats, error) {
	var stats LLCStats
	for i < len(data) {
		b := data[i]
		at := i
		i++
		op := b & opMask
		var err error
		switch op {
		case lopAccessR, lopAccessW:
			if hi := b >> 4; hi == pcEscape {
				if _, i, err = uvarintChecked(data, i); err != nil {
					return LLCStats{}, err
				}
			}
			if _, i, err = varintChecked(data, i); err != nil {
				return LLCStats{}, err
			}
			stats.Accesses++
			if op == lopAccessW {
				stats.Writes++
			}
		case lopWB:
			if _, i, err = varintChecked(data, i); err != nil {
				return LLCStats{}, err
			}
			stats.Writebacks++
		case lopSetVertex:
			if _, i, err = varintChecked(data, i); err != nil {
				return LLCStats{}, err
			}
			stats.VertexUpdates++
		case lopStartIteration:
			stats.Iterations++
		case lopSetTile:
			if _, i, err = uvarintChecked(data, i); err != nil {
				return LLCStats{}, err
			}
			stats.TileSwitches++
		default:
			return LLCStats{}, fmt.Errorf("trace: corrupt llc stream: opcode %d at byte %d", op, at)
		}
	}
	return stats, nil
}

// uvarintChecked decodes a LEB128 varint at data[i:], returning an error
// (instead of uvarint's panic) when the varint runs off the buffer.
func uvarintChecked(data []byte, i int) (uint64, int, error) {
	var x uint64
	var shift uint
	for i < len(data) {
		b := data[i]
		i++
		x |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return x, i, nil
		}
		shift += 7
	}
	return 0, i, fmt.Errorf("trace: corrupt stream: truncated varint at byte %d", i)
}

// varintChecked decodes a zigzag varint with error reporting.
func varintChecked(data []byte, i int) (int64, int, error) {
	ux, n, err := uvarintChecked(data, i)
	return int64(ux>>1) ^ -int64(ux&1), n, err
}
