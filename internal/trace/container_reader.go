package trace

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"popt/internal/cache"
	"popt/internal/graph"
	"popt/internal/mem"
)

// This file is the read side of the chunked container (container.go holds
// the writer and the layout comment). A Reader seeks the fixed trailer,
// loads and validates the three footer frames, and then serves replay,
// verification, and re-chunking out of core: chunk payloads are fetched
// through the io.ReaderAt in index order and released as soon as they are
// consumed, so resident trace memory is bounded by the chunk window — not
// the stream — which is what makes paper-scale corpora replayable on
// bounded RAM. Everything here returns errors, never panics: container
// bytes come off disk, the untrusted side of the trust boundary drawn in
// decode.go (each chunk payload is structurally validated by the scan
// decoders before the panic-based hot loops touch it).

// frameHeader is one decoded frame header; only cfChunk frames populate
// events and firstPC.
type frameHeader struct {
	kind    byte
	events  uint64
	firstPC uint64
	length  uint64
	crc     uint32
}

// parseFrameHeader decodes the frame header at data[i:], returning the
// header and the index of the first payload byte. The dispatch mirrors
// the writeChunkFrame/writeStatsFrame/writeIndexFrame/writeMetaFrame
// encoders arm for arm (codecpair holds them in lockstep), and an unknown
// marker is an error, never a panic.
//
//popt:codec container dec
func parseFrameHeader(data []byte, i int) (frameHeader, int, error) {
	if i >= len(data) {
		return frameHeader{}, i, fmt.Errorf("trace: corrupt container: truncated frame at byte %d", i)
	}
	var fh frameHeader
	op := data[i]
	fh.kind = op
	at := i
	i++
	var err error
	var crc uint64
	switch op {
	case cfChunk:
		if fh.events, i, err = uvarintChecked(data, i); err != nil {
			return frameHeader{}, i, err
		}
		if fh.firstPC, i, err = uvarintChecked(data, i); err != nil {
			return frameHeader{}, i, err
		}
		if fh.length, i, err = uvarintChecked(data, i); err != nil {
			return frameHeader{}, i, err
		}
		if crc, i, err = uvarintChecked(data, i); err != nil {
			return frameHeader{}, i, err
		}
		fh.crc = uint32(crc)
	case cfStats:
		if fh.length, i, err = uvarintChecked(data, i); err != nil {
			return frameHeader{}, i, err
		}
		if crc, i, err = uvarintChecked(data, i); err != nil {
			return frameHeader{}, i, err
		}
		fh.crc = uint32(crc)
	case cfIndex:
		if fh.length, i, err = uvarintChecked(data, i); err != nil {
			return frameHeader{}, i, err
		}
		if crc, i, err = uvarintChecked(data, i); err != nil {
			return frameHeader{}, i, err
		}
		fh.crc = uint32(crc)
	case cfMeta:
		if fh.length, i, err = uvarintChecked(data, i); err != nil {
			return frameHeader{}, i, err
		}
		if crc, i, err = uvarintChecked(data, i); err != nil {
			return frameHeader{}, i, err
		}
		fh.crc = uint32(crc)
	default:
		return frameHeader{}, i, fmt.Errorf("trace: corrupt container: frame marker %d at byte %d", fh.kind, at)
	}
	return fh, i, nil
}

// Reader is an opened container: the footer frames are resident, chunk
// payloads are not. Once OpenContainer returns, the Reader's metadata is
// immutable, so one Reader may serve concurrent replays (the corpus
// shares one per entry across sweep cells); only the resident-byte
// accounting below is mutable, and it is atomic.
type Reader struct {
	r         io.ReaderAt
	size      int64
	footerOff int64
	kind      byte
	meta      Meta
	chunks    []chunkInfo
	events    uint64
	payload   int64 // total chunk payload bytes
	maxChunk  int64 // largest single chunk payload
	streamCRC uint32

	// data, when non-nil, is a zero-copy view of the whole container
	// (an mmap of the file or a caller-held byte slice): chunkPayload
	// returns subslices instead of pread copies, and the resident
	// accounting counts mapped window bytes. closeFn releases whatever
	// backs the Reader (mapping, file handle) when set.
	data    []byte
	closeFn func() error

	// Stream totals out of the cfStats frame; tstats for KindTrace,
	// the rest for KindLLC.
	tstats       Stats
	lstats       LLCStats
	instructions uint64
	l1, l2       cache.Stats

	// Out-of-core accounting: chunk payload bytes currently resident and
	// the high-water mark, maintained by every replay/verify walk. The
	// windowed-reader test pins maxResident << payload on multi-chunk
	// streams.
	resident    atomic.Int64
	maxResident atomic.Int64
}

// OpenContainer validates the fixed header, the trailer, and the three
// footer frames of the container served by r and returns a Reader over
// its chunks. Chunk payloads are not read (Verify walks them all); size
// is the container's total byte length.
func OpenContainer(r io.ReaderAt, size int64) (*Reader, error) {
	if size < containerHeaderLen+containerTrailerLen {
		return nil, fmt.Errorf("trace: container truncated: %d byte(s), need at least %d", size, containerHeaderLen+containerTrailerLen)
	}
	var hdr [containerHeaderLen]byte
	if err := readFull(r, hdr[:], 0); err != nil {
		return nil, fmt.Errorf("trace: container header: %w", err)
	}
	if hdr[0] != magic0 || hdr[1] != magicContainer1 {
		return nil, fmt.Errorf("trace: not a container: magic % x, want %c%c", hdr[:2], magic0, magicContainer1)
	}
	if hdr[2] != ContainerFormatVersion {
		return nil, fmt.Errorf("trace: container is format version %d, this reader reads version %d; re-record or migrate the corpus entry", hdr[2], ContainerFormatVersion)
	}
	kind := hdr[3]
	var innerWant byte
	switch kind {
	case KindTrace:
		innerWant = TraceFormatVersion
	case KindLLC:
		innerWant = LLCFormatVersion
	default:
		return nil, fmt.Errorf("trace: container kind %q is not %q or %q", kind, KindTrace, KindLLC)
	}
	if hdr[4] != innerWant {
		return nil, fmt.Errorf("trace: container holds inner stream version %d, this reader reads version %d; re-record or migrate the corpus entry", hdr[4], innerWant)
	}
	var tr [containerTrailerLen]byte
	if err := readFull(r, tr[:], size-containerTrailerLen); err != nil {
		return nil, fmt.Errorf("trace: container trailer: %w", err)
	}
	if tr[16] != magic0 || tr[17] != magicContainer1 || tr[18] != ContainerFormatVersion || tr[19] != kind {
		return nil, fmt.Errorf("trace: container trailer echo % x does not match header %c%c v%d kind %q (torn or truncated write)", tr[16:20], magic0, magicContainer1, ContainerFormatVersion, kind)
	}
	fo := binary.LittleEndian.Uint64(tr[0:8])
	fl := binary.LittleEndian.Uint64(tr[8:16])
	if fo < containerHeaderLen || fo+fl < fo || fo+fl != uint64(size)-containerTrailerLen {
		return nil, fmt.Errorf("trace: container footer bounds [%d,+%d) do not tile the %d-byte file", fo, fl, size)
	}
	footer := make([]byte, int(fl))
	if err := readFull(r, footer, int64(fo)); err != nil {
		return nil, fmt.Errorf("trace: container footer: %w", err)
	}
	rd := &Reader{r: r, size: size, footerOff: int64(fo), kind: kind}

	// The footer is exactly three frames in fixed order.
	var payloads [3][]byte
	i := 0
	for f, want := range [3]byte{cfStats, cfIndex, cfMeta} {
		fh, j, err := parseFrameHeader(footer, i)
		if err != nil {
			return nil, err
		}
		if fh.kind != want {
			return nil, fmt.Errorf("trace: container footer frame %d has marker %d, want %d", f, fh.kind, want)
		}
		if fh.length > uint64(len(footer)-j) {
			return nil, fmt.Errorf("trace: container footer frame %d overruns the footer (%d byte payload, %d left)", f, fh.length, len(footer)-j)
		}
		p := footer[j : j+int(fh.length)]
		if crc := crc32.ChecksumIEEE(p); crc != fh.crc {
			return nil, fmt.Errorf("trace: container footer frame %d CRC mismatch: stored %08x, computed %08x", f, fh.crc, crc)
		}
		payloads[f] = p
		i = j + int(fh.length)
	}
	if i != len(footer) {
		return nil, fmt.Errorf("trace: container footer has %d trailing byte(s) after its three frames", len(footer)-i)
	}
	if err := rd.decodeStats(payloads[0]); err != nil {
		return nil, err
	}
	if err := rd.decodeIndex(payloads[1]); err != nil {
		return nil, err
	}
	m, err := decodeMeta(payloads[2])
	if err != nil {
		return nil, err
	}
	rd.meta = m
	return rd, nil
}

// OpenContainerBytes opens a container held entirely in data (an mmap
// view or an in-memory build). Chunk payloads are served as subslices —
// zero copies — and the Reader runs in the "mapped" window mode.
func OpenContainerBytes(data []byte) (*Reader, error) {
	rd, err := OpenContainer(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return nil, err
	}
	rd.data = data
	return rd, nil
}

// OpenContainerFile opens the container at path, preferring a zero-copy
// mmap of the file; when mapping is unavailable (platform stub, empty or
// oversized file) it falls back to the bounded-window pread path over the
// open file. Either way the caller owns the Reader and must Close it.
func OpenContainerFile(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	if mp, err := mem.MapFile(f); err == nil {
		rd, err := OpenContainerBytes(mp.Data)
		if err != nil {
			mp.Close()
			f.Close()
			return nil, err
		}
		// The mapping keeps the pages; the descriptor can go now.
		f.Close()
		rd.closeFn = mp.Close
		return rd, nil
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	rd, err := OpenContainer(f, st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	rd.closeFn = f.Close
	return rd, nil
}

// WindowMode reports how chunk windows are served: "mapped" (zero-copy
// views of an mmap or in-memory container) or "copied" (pread into
// per-chunk buffers).
func (r *Reader) WindowMode() string {
	if r.data != nil {
		return "mapped"
	}
	return "copied"
}

// Close releases whatever backs the Reader (file mapping or descriptor).
// Readers over caller-owned io.ReaderAts have nothing to release and
// Close is a no-op. No replay may be in flight when Close is called: for
// a mapped Reader the chunk views die with the mapping.
func (r *Reader) Close() error {
	if r.closeFn == nil {
		return nil
	}
	fn := r.closeFn
	r.closeFn = nil
	r.data = nil
	return fn()
}

// readFull reads exactly len(p) bytes at off.
func readFull(r io.ReaderAt, p []byte, off int64) error {
	n, err := r.ReadAt(p, off)
	if n < len(p) {
		if err == nil || err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	return nil
}

// decodeStats parses the cfStats payload (the encodeTraceStats /
// encodeLLCStats layouts) and requires it to be exactly consumed.
func (r *Reader) decodeStats(p []byte) error {
	i := 0
	take := func() uint64 {
		if i < 0 {
			return 0
		}
		x, j, err := uvarintChecked(p, i)
		if err != nil {
			i = -1
			return 0
		}
		i = j
		return x
	}
	r.streamCRC = uint32(take())
	switch r.kind {
	case KindTrace:
		r.tstats = Stats{
			Accesses: take(), Writes: take(), VertexUpdates: take(),
			Iterations: take(), TileSwitches: take(), MutedRegions: take(),
			TickEvents: take(), TickedInstrs: take(),
		}
	case KindLLC:
		r.instructions = take()
		for _, lv := range [2]*cache.Stats{&r.l1, &r.l2} {
			*lv = cache.Stats{
				Accesses: take(), Hits: take(), Misses: take(),
				Evictions: take(), Writebacks: take(),
			}
		}
		r.lstats = LLCStats{
			Accesses: take(), Writes: take(), Writebacks: take(),
			VertexUpdates: take(), Iterations: take(), TileSwitches: take(),
		}
	}
	if i != len(p) {
		return fmt.Errorf("trace: container stats frame malformed (%d bytes, consumed %d)", len(p), i)
	}
	return nil
}

// decodeIndex parses the cfIndex payload into the chunk table, bounding
// every entry against the data region before any chunk is read.
func (r *Reader) decodeIndex(p []byte) error {
	count, i, err := uvarintChecked(p, 0)
	if err != nil {
		return err
	}
	// Each entry is at least five bytes of varints; reject counts the
	// payload cannot hold before allocating.
	if count > uint64(len(p)/5)+1 {
		return fmt.Errorf("trace: container index claims %d chunks in %d bytes", count, len(p))
	}
	chunks := make([]chunkInfo, 0, count)
	var off, prevEnd uint64
	for c := uint64(0); c < count; c++ {
		var d, events, firstPC, length, crc uint64
		if d, i, err = uvarintChecked(p, i); err != nil {
			return err
		}
		if events, i, err = uvarintChecked(p, i); err != nil {
			return err
		}
		if firstPC, i, err = uvarintChecked(p, i); err != nil {
			return err
		}
		if length, i, err = uvarintChecked(p, i); err != nil {
			return err
		}
		if crc, i, err = uvarintChecked(p, i); err != nil {
			return err
		}
		off += d
		if c == 0 && off != containerHeaderLen {
			return fmt.Errorf("trace: container index: first chunk at offset %d, want %d", off, containerHeaderLen)
		}
		if c > 0 && off < prevEnd {
			return fmt.Errorf("trace: container index: chunk %d at offset %d overlaps the previous chunk", c, off)
		}
		if length == 0 {
			return fmt.Errorf("trace: container index: chunk %d is empty (the writer never emits empty chunks)", c)
		}
		if off+length < off || off+length > uint64(r.footerOff) {
			return fmt.Errorf("trace: container index: chunk %d [%d,+%d) overruns the data region ending at %d", c, off, length, r.footerOff)
		}
		if events > 2*length {
			return fmt.Errorf("trace: container index: chunk %d claims %d events in %d bytes", c, events, length)
		}
		chunks = append(chunks, chunkInfo{
			off: int64(off), events: events, firstPC: firstPC,
			length: length, crc: uint32(crc),
		})
		prevEnd = off + length
		r.events += events
		r.payload += int64(length)
		if int64(length) > r.maxChunk {
			r.maxChunk = int64(length)
		}
	}
	if i != len(p) {
		return fmt.Errorf("trace: container index frame malformed (%d bytes, consumed %d)", len(p), i)
	}
	r.chunks = chunks
	return nil
}

// decodeMeta parses the cfMeta payload's length-prefixed key/value pairs.
// Unknown keys are skipped so the set can grow under the container
// version's discipline.
func decodeMeta(p []byte) (Meta, error) {
	var m Meta
	count, i, err := uvarintChecked(p, 0)
	if err != nil {
		return Meta{}, err
	}
	if count > uint64(len(p)) {
		return Meta{}, fmt.Errorf("trace: container meta frame claims %d pairs in %d bytes", count, len(p))
	}
	str := func() (string, error) {
		n, j, err := uvarintChecked(p, i)
		if err != nil {
			return "", err
		}
		if n > uint64(len(p)-j) {
			return "", fmt.Errorf("trace: container meta frame: %d-byte string overruns the %d-byte frame", n, len(p))
		}
		i = j + int(n)
		return string(p[j : j+int(n)]), nil
	}
	for c := uint64(0); c < count; c++ {
		k, err := str()
		if err != nil {
			return Meta{}, err
		}
		v, err := str()
		if err != nil {
			return Meta{}, err
		}
		switch k {
		case "workload":
			m.Workload = v
		case "schedule":
			m.Schedule = v
		case "scale":
			m.Scale = v
		case "seed":
			seed, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return Meta{}, fmt.Errorf("trace: container meta frame: bad seed %q", v)
			}
			m.Seed = seed
		}
	}
	if i != len(p) {
		return Meta{}, fmt.Errorf("trace: container meta frame malformed (%d bytes, consumed %d)", len(p), i)
	}
	return m, nil
}

// Kind returns the inner stream kind (KindTrace or KindLLC).
func (r *Reader) Kind() byte { return r.kind }

// Meta returns the identifying metadata recorded with the stream.
func (r *Reader) Meta() Meta { return r.meta }

// Chunks returns the number of chunk frames.
func (r *Reader) Chunks() int { return len(r.chunks) }

// Events returns the total event count across all chunks.
func (r *Reader) Events() uint64 { return r.events }

// Size returns the container's total byte length.
func (r *Reader) Size() int64 { return r.size }

// PayloadBytes returns the total chunk payload bytes (the encoded event
// stream, frames and footer excluded).
func (r *Reader) PayloadBytes() int64 { return r.payload }

// MaxChunkBytes returns the largest single chunk payload.
func (r *Reader) MaxChunkBytes() int64 { return r.maxChunk }

// StreamCRC returns the whole-stream CRC recorded at write time.
func (r *Reader) StreamCRC() uint32 { return r.streamCRC }

// TraceStats returns the stream totals of a KindTrace container.
func (r *Reader) TraceStats() (Stats, bool) { return r.tstats, r.kind == KindTrace }

// LLCTotals returns the stream totals of a KindLLC container: the
// setup-invariant instruction count and L1/L2 statistics the replay
// installs, plus the event statistics.
func (r *Reader) LLCTotals() (instructions uint64, l1, l2 cache.Stats, stats LLCStats, ok bool) {
	return r.instructions, r.l1, r.l2, r.lstats, r.kind == KindLLC
}

// MaxResidentBytes returns the high-water mark of simultaneously resident
// chunk payload bytes across every replay/verify walk of this Reader —
// the out-of-core bound the windowed-reader test pins.
func (r *Reader) MaxResidentBytes() int64 { return r.maxResident.Load() }

// acquire charges n payload bytes to the resident accounting.
func (r *Reader) acquire(n int64) {
	res := r.resident.Add(n)
	for {
		hw := r.maxResident.Load()
		if res <= hw || r.maxResident.CompareAndSwap(hw, res) {
			return
		}
	}
}

// release returns n payload bytes.
func (r *Reader) release(n int64) { r.resident.Add(-n) }

// chunkPayload reads, bounds-checks, and CRC-checks chunk c's payload,
// charging it to the resident accounting (the caller releases it). The
// on-disk frame header is re-parsed and cross-checked against the index
// entry, so a container whose two copies disagree is rejected however it
// is read. In mapped mode the returned slice is a zero-copy view of the
// container bytes; the accounting then counts mapped window bytes, the
// same bound with the copies removed.
func (r *Reader) chunkPayload(c int) ([]byte, error) {
	ci := r.chunks[c]
	var hdr []byte
	if r.data != nil {
		hdr = r.data[ci.off:]
	} else {
		win := r.size - ci.off
		if win > 64 {
			win = 64 // a frame header is at most 1 + 4 maximal uvarints = 41 bytes
		}
		hdr = make([]byte, win)
		if err := readFull(r.r, hdr, ci.off); err != nil {
			return nil, fmt.Errorf("trace: container chunk %d header: %w", c, err)
		}
	}
	fh, j, err := parseFrameHeader(hdr, 0)
	if err != nil {
		return nil, fmt.Errorf("trace: container chunk %d: %w", c, err)
	}
	if fh.kind != cfChunk || fh.events != ci.events || fh.firstPC != ci.firstPC || fh.length != ci.length || fh.crc != ci.crc {
		return nil, fmt.Errorf("trace: container chunk %d frame header disagrees with the seek index", c)
	}
	payloadOff := ci.off + int64(j)
	if payloadOff+int64(ci.length) > r.footerOff {
		return nil, fmt.Errorf("trace: container chunk %d payload overruns the data region", c)
	}
	r.acquire(int64(ci.length))
	var p []byte
	if r.data != nil {
		p = r.data[payloadOff : payloadOff+int64(ci.length) : payloadOff+int64(ci.length)]
	} else {
		p = make([]byte, ci.length)
		if err := readFull(r.r, p, payloadOff); err != nil {
			r.release(int64(ci.length))
			return nil, fmt.Errorf("trace: container chunk %d payload: %w", c, err)
		}
	}
	if crc := crc32.ChecksumIEEE(p); crc != ci.crc {
		r.release(int64(ci.length))
		return nil, fmt.Errorf("trace: container chunk %d CRC mismatch: stored %08x, computed %08x", c, ci.crc, crc)
	}
	return p, nil
}

// Verify walks the whole container: it checks that the chunk frames tile
// the data region exactly, re-reads every chunk (frame header vs index,
// payload CRC, full structural scan), and cross-checks the accumulated
// per-chunk statistics and stream CRC against the cfStats frame. A nil
// return means every byte between header and trailer has been validated.
func (r *Reader) Verify() error {
	expect := int64(containerHeaderLen)
	var crc uint32
	var tsum Stats
	var lsum LLCStats
	for c := range r.chunks {
		ci := r.chunks[c]
		if ci.off != expect {
			return fmt.Errorf("trace: container chunk %d at offset %d, want %d (frames must tile the data region)", c, ci.off, expect)
		}
		p, err := r.chunkPayload(c)
		if err != nil {
			return err
		}
		switch r.kind {
		case KindTrace:
			s, err := scanTraceFrom(p, 0)
			if err != nil {
				r.release(int64(len(p)))
				return fmt.Errorf("trace: container chunk %d: %w", c, err)
			}
			tsum.Accesses += s.Accesses
			tsum.Writes += s.Writes
			tsum.VertexUpdates += s.VertexUpdates
			tsum.Iterations += s.Iterations
			tsum.TileSwitches += s.TileSwitches
			tsum.MutedRegions += s.MutedRegions
			tsum.TickEvents += s.TickEvents
			tsum.TickedInstrs += s.TickedInstrs
		case KindLLC:
			s, err := scanLLCFrom(p, 0)
			if err != nil {
				r.release(int64(len(p)))
				return fmt.Errorf("trace: container chunk %d: %w", c, err)
			}
			lsum.Accesses += s.Accesses
			lsum.Writes += s.Writes
			lsum.Writebacks += s.Writebacks
			lsum.VertexUpdates += s.VertexUpdates
			lsum.Iterations += s.Iterations
			lsum.TileSwitches += s.TileSwitches
		}
		crc = crc32.Update(crc, crc32.IEEETable, p)
		// The chunk frame's on-disk header length is implied by its values;
		// recompute the end from the re-parsed header via chunkPayload's
		// bounds, i.e. the next frame starts after header+payload.
		expect = ci.off + int64(frameHeaderLen(ci)) + int64(ci.length)
		r.release(int64(len(p)))
	}
	if expect != r.footerOff {
		return fmt.Errorf("trace: container data region ends at %d but the footer starts at %d", expect, r.footerOff)
	}
	if crc != r.streamCRC {
		return fmt.Errorf("trace: container stream CRC mismatch: stored %08x, computed %08x", r.streamCRC, crc)
	}
	switch r.kind {
	case KindTrace:
		if tsum != r.tstats {
			return fmt.Errorf("trace: container stats frame %+v disagrees with the scanned chunks %+v", r.tstats, tsum)
		}
	case KindLLC:
		if lsum != r.lstats {
			return fmt.Errorf("trace: container stats frame %+v disagrees with the scanned chunks %+v", r.lstats, lsum)
		}
	}
	var sum uint64
	for c := range r.chunks {
		sum += r.chunks[c].events
	}
	if sum != r.events {
		return fmt.Errorf("trace: container index events %d disagree with total %d", sum, r.events)
	}
	return nil
}

// frameHeaderLen returns the encoded length of ci's chunk frame header:
// the marker byte plus the four uvarints writeChunkFrame emits.
func frameHeaderLen(ci chunkInfo) int {
	return 1 + uvarintLen(ci.events) + uvarintLen(ci.firstPC) + uvarintLen(ci.length) + uvarintLen(uint64(ci.crc))
}

// uvarintLen returns the LEB128-encoded byte length of x.
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// ReplayOptions bounds a container replay's parallelism and memory.
type ReplayOptions struct {
	// Workers is the number of parallel chunk decoders (KindLLC replays
	// only; the generic Sink replay is inherently sequential). Zero means
	// min(GOMAXPROCS, 8); one forces sequential decode.
	Workers int
	// Window is the maximum number of chunks resident at once — the
	// out-of-core bound. Zero means 2x Workers.
	Window int
}

// DefaultReplayWorkers returns the worker count a zero ReplayOptions
// resolves to on this host — min(GOMAXPROCS, 8) — so footprint reports
// can state the default window bound (2x workers x chunk bytes) without
// duplicating the policy.
func DefaultReplayWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	return w
}

// resolve applies the documented defaults.
func (o ReplayOptions) resolve() (workers, window int) {
	workers = o.Workers
	if workers <= 0 {
		workers = DefaultReplayWorkers()
	}
	window = o.Window
	if window <= 0 {
		window = 2 * workers
	}
	if window < 1 {
		window = 1
	}
	return workers, window
}

// llcMark is a hook event at a position in a chunk's decoded probe
// sequence: the feed stage delivers it (flushing the probe batch first)
// between probes[pos-1] and probes[pos], exactly where LLCTrace.Replay
// would.
type llcMark struct {
	pos  int
	kind byte
	val  int64
}

// llcChunk is one decoded chunk in flight between a decode worker and the
// in-order feed stage.
type llcChunk struct {
	probes []cache.Probe
	marks  []llcMark
	bytes  int64
	err    error
}

// ReplayTrace decodes a KindTrace container and delivers every event to s
// in recorded order, one windowed chunk at a time: delivery to a Sink is
// inherently sequential, so this path spends its memory bound on streaming
// (resident = one chunk) rather than parallelism. Each payload is
// structurally validated before the panic-based event decoder touches it.
func (r *Reader) ReplayTrace(s Sink, opts ReplayOptions) error {
	if r.kind != KindTrace {
		return fmt.Errorf("trace: ReplayTrace on a kind %q container", r.kind)
	}
	for c := range r.chunks {
		p, err := r.chunkPayload(c)
		if err != nil {
			return err
		}
		if _, err := scanTraceFrom(p, 0); err != nil {
			r.release(int64(len(p)))
			return fmt.Errorf("trace: container chunk %d: %w", c, err)
		}
		// Fresh per-chunk decode state reconstructs the same absolute
		// values the encoder saw: it reset its deltas at this boundary.
		replayTraceEvents(p, 0, s)
		r.release(int64(len(p)))
	}
	return nil
}

// ReplayLLC drives sim's LLC with a KindLLC container and installs the
// setup-invariant totals, reproducing LLCTrace.Replay counter for counter
// (cache.Level.AccessBatch is batching-invariant, so the different batch
// boundaries cannot show). Chunks decode on a worker pool — each chunk's
// delta state is self-contained — while the feed stage consumes them in
// recorded order; the window semaphore caps chunks in flight, so peak
// resident trace memory is O(window x chunk), not O(stream). Decode
// errors abort the replay and leave sim partially advanced; callers
// discard it on error.
func (r *Reader) ReplayLLC(sim *Sim, opts ReplayOptions) error {
	if r.kind != KindLLC {
		return fmt.Errorf("trace: ReplayLLC on a kind %q container", r.kind)
	}
	workers, window := opts.resolve()
	nc := len(r.chunks)
	h := sim.H
	llc := h.LLC
	hooked := sim.Hook != nil
	var batch [cache.BatchMax]cache.Probe
	n := 0
	var firstErr error

	if workers <= 1 || nc <= 1 {
		for c := 0; c < nc; c++ {
			ck := r.decodeLLCChunk(c)
			if ck.err != nil {
				return ck.err
			}
			n = feedLLCChunk(sim, h, llc, &batch, n, &ck, hooked)
			r.release(ck.bytes)
		}
	} else {
		results := make([]chan llcChunk, nc)
		for c := range results {
			results[c] = make(chan llcChunk, 1) // cap 1: sends never block
		}
		next := make(chan int)
		done := make(chan struct{})
		sem := make(chan struct{}, window)
		go func() {
			defer close(next)
			for c := 0; c < nc; c++ {
				select {
				case sem <- struct{}{}: // hold a window slot before dispatch
				case <-done:
					return
				}
				select {
				case next <- c:
				case <-done:
					return
				}
			}
		}()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for c := range next {
					results[c] <- r.decodeLLCChunk(c)
				}
			}()
		}
		for c := 0; c < nc; c++ {
			ck := <-results[c]
			if ck.err != nil {
				firstErr = ck.err
				break
			}
			n = feedLLCChunk(sim, h, llc, &batch, n, &ck, hooked)
			r.release(ck.bytes)
			<-sem
		}
		close(done)
		wg.Wait()
	}
	if firstErr != nil {
		return firstErr
	}
	flushProbes(h, llc, &batch, n)
	sim.Instructions += r.instructions
	h.L1.Stats.Add(r.l1)
	h.L2.Stats.Add(r.l2)
	return nil
}

// decodeLLCChunk reads and fully decodes chunk c: payload fetch + CRC,
// structural scan (so the hot decoder below never sees corrupt bytes),
// then the concrete probe/mark decode. Runs on the worker pool; the
// resident charge it takes is released by the feed stage.
func (r *Reader) decodeLLCChunk(c int) llcChunk {
	p, err := r.chunkPayload(c)
	if err != nil {
		return llcChunk{err: err}
	}
	if _, err := scanLLCFrom(p, 0); err != nil {
		r.release(int64(len(p)))
		return llcChunk{err: fmt.Errorf("trace: container chunk %d: %w", c, err)}
	}
	// Probe count <= events (every LLC event is at least one byte and none
	// expands to two probes), so the append below never grows.
	probes := make([]cache.Probe, 0, r.chunks[c].events)
	probes, marks := decodeLLCChunkEvents(p, probes)
	return llcChunk{probes: probes, marks: marks, bytes: int64(len(p))}
}

// decodeLLCChunkEvents decodes one structurally-validated chunk payload
// into its probe sequence and hook marks. The decode arms mirror
// LLCTrace.Replay opcode for opcode (codecpair holds them in lockstep);
// per-chunk delta state starts at zero because the encoder reset at the
// boundary. Allocation lives in the caller so this loop stays escape-free.
//
//popt:hot
//popt:codec llc dec
func decodeLLCChunkEvents(data []byte, probes []cache.Probe) ([]cache.Probe, []llcMark) {
	var marks []llcMark
	var last [pcSlots]uint64
	var lastWB uint64
	var lastV graph.V
	i := 0
	for i < len(data) {
		b := data[i]
		i++
		op := b & opMask
		switch op {
		case lopAccessR, lopAccessW:
			var pc uint64
			if hi := b >> 4; hi != pcEscape {
				pc = uint64(hi - 1)
			} else {
				pc, i = uvarint(data, i)
			}
			var d int64
			if i < len(data) && data[i] < 0x80 {
				ux := uint64(data[i])
				d = int64(ux>>1) ^ -int64(ux&1)
				i++
			} else {
				d, i = varint(data, i)
			}
			slot := uint16(pc) & pcSlotMask
			addr := last[slot] + uint64(d)
			last[slot] = addr
			kind := cache.ProbeRead
			if op == lopAccessW {
				kind = cache.ProbeWrite
			}
			probes = appendProbe(probes, cache.Probe{Addr: addr, PC: uint16(pc), Kind: kind})
		case lopWB:
			d, nn := varint(data, i)
			i = nn
			lastWB += uint64(d)
			probes = appendProbe(probes, cache.Probe{Addr: lastWB, Kind: cache.ProbeWB})
		case lopSetVertex:
			d, nn := varint(data, i)
			i = nn
			lastV = graph.V(int64(lastV) + d)
			marks = appendMark(marks, llcMark{pos: len(probes), kind: lopSetVertex, val: int64(lastV)})
		case lopStartIteration:
			marks = appendMark(marks, llcMark{pos: len(probes), kind: lopStartIteration})
		case lopSetTile:
			tl, nn := uvarint(data, i)
			i = nn
			marks = appendMark(marks, llcMark{pos: len(probes), kind: lopSetTile, val: int64(tl)})
		default:
			badOp(op, i-1)
		}
	}
	return probes, marks
}

// appendProbe and appendMark keep the decoded-event appends out of the
// annotated decode loop: the wire-format walker reads every append inside
// a //popt:codec function as an opcode-byte emission, and these append
// simulator values, not wire bytes.
func appendProbe(ps []cache.Probe, p cache.Probe) []cache.Probe { return append(ps, p) }

func appendMark(ms []llcMark, m llcMark) []llcMark { return append(ms, m) }

// feedLLCChunk issues one decoded chunk in recorded order through the
// persistent probe batch, delivering hook marks at their positions exactly
// like LLCTrace.Replay: the batch flushes before a mark only when the sim
// actually has a hook. Returns the new batch length; the batch carries
// across chunks so hookless replays run long batches through boundaries.
//
//popt:hot
func feedLLCChunk(sim *Sim, h *cache.Hierarchy, llc *cache.Level, batch *[cache.BatchMax]cache.Probe, n int, ck *llcChunk, hooked bool) int {
	probes := ck.probes
	pos := 0
	for m := range ck.marks {
		mk := ck.marks[m]
		for _, pr := range probes[pos:mk.pos] {
			if n == cache.BatchMax {
				n = flushProbes(h, llc, batch, n)
			}
			// The mask is a no-op (the flush above keeps n < BatchMax) that
			// lets the compiler drop the bounds check from the feed loop.
			batch[n&(cache.BatchMax-1)] = pr
			n++
		}
		pos = mk.pos
		if hooked {
			n = flushProbes(h, llc, batch, n)
			switch mk.kind {
			case lopSetVertex:
				sim.SetVertex(graph.V(mk.val))
			case lopStartIteration:
				sim.StartIteration()
			case lopSetTile:
				sim.SetTile(int(mk.val))
			}
		}
	}
	for _, pr := range probes[pos:] {
		if n == cache.BatchMax {
			n = flushProbes(h, llc, batch, n)
		}
		batch[n&(cache.BatchMax-1)] = pr
		n++
	}
	return n
}

// Rechunk rewrites the container on w with a new chunk-size target by
// decoding each chunk and re-encoding the identical event sequence
// through a fresh chunked encoder. Statistics and metadata carry over;
// the stream CRC changes with the chunk boundaries (delta state resets
// move), which is why Verify recomputes rather than compares across
// containers — equivalence is checked at the event level by the rechunk
// round-trip test.
func (r *Reader) Rechunk(w io.Writer, chunkBytes int) error {
	cw, err := NewContainerWriter(w, r.kind, r.meta)
	if err != nil {
		return err
	}
	cw.SetChunkBytes(chunkBytes)
	switch r.kind {
	case KindTrace:
		enc := NewChunkedEncoder(cw)
		if err := r.ReplayTrace(enc, ReplayOptions{}); err != nil {
			return err
		}
		if err := enc.Finish(); err != nil {
			return err
		}
	case KindLLC:
		enc := NewChunkedLLCEncoder(cw)
		for c := range r.chunks {
			p, err := r.chunkPayload(c)
			if err != nil {
				return err
			}
			if _, err := scanLLCFrom(p, 0); err != nil {
				r.release(int64(len(p)))
				return fmt.Errorf("trace: container chunk %d: %w", c, err)
			}
			reencodeLLCEvents(p, 0, enc)
			r.release(int64(len(p)))
		}
		if err := enc.Finish(r.instructions, r.l1, r.l2); err != nil {
			return err
		}
	}
	return cw.Finish()
}
