package trace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"strconv"

	"popt/internal/cache"
)

// This file is the write side of the chunked on-disk trace container
// (DESIGN.md §12) — the persistent form of both event streams. A
// container is:
//
//	header   'p' 'c' version kind innerVersion        (5 bytes)
//	frames   cfChunk ... cfChunk cfStats cfIndex cfMeta
//	trailer  footerOff:u64 footerLen:u64 'p' 'c' version kind  (20 bytes)
//
// Every frame is a marker byte plus a uvarint-described payload; chunk
// frames carry headerless event bytes whose delta state is reset at each
// chunk boundary, so any chunk decodes independently of the others — the
// property the seek index, the parallel decoder, and out-of-core
// windowed replay all rest on. The footer frames (stream statistics, the
// chunk seek index, and the identifying metadata) come last so recording
// is a single forward pass; readers find them through the fixed trailer.

// Frame markers. The block holds only the iota run: the opexhaust
// analyzer derives the decoder's opcode universe from it.
const (
	cfChunk byte = iota + 1 // events, firstPC, len, crc, then payload
	cfStats                 // len, crc, then the stream-total payload
	cfIndex                 // len, crc, then the chunk seek index
	cfMeta                  // len, crc, then identifying key/value pairs
)

// DefaultChunkBytes is the target encoded size of one chunk. At the
// measured ~2 B/event density this is the issue's ~64K events per chunk;
// chunks close at the first event boundary past the target.
const DefaultChunkBytes = 128 << 10

// Meta identifies the recorded stream a container holds: the corpus key.
// Seed is the generator seed; Scale names the input scale (and with it
// the fixed L1/L2 shape the LLC form was recorded under).
type Meta struct {
	Workload string
	Schedule string
	Scale    string
	Seed     int64
}

// chunkInfo is one chunk's seek-index entry.
type chunkInfo struct {
	off     int64  // file offset of the chunk frame's marker byte
	events  uint64 // encoded events in the chunk
	firstPC uint64 // first access PC in the chunk + 1; 0 = no access
	length  uint64 // payload bytes
	crc     uint32 // IEEE CRC-32 of the payload
}

// ContainerWriter streams one container to an io.Writer. Encoders created
// with NewChunkedEncoder / NewChunkedLLCEncoder emit chunk frames through
// it as they fill; the encoder's Finish sets the stats payload and the
// owner then calls Finish here to write the footer and trailer. Writers
// are single-goroutine, like the encoders that feed them.
type ContainerWriter struct {
	w          io.Writer
	kind       byte
	meta       Meta
	chunkBytes int
	off        int64 // bytes written so far
	chunks     []chunkInfo
	streamCRC  uint32 // running CRC over all chunk payloads, in order
	stats      []byte // set by the encoder's Finish
	scratch    []byte
	err        error
	finished   bool
}

// NewContainerWriter writes the container header for the given kind and
// returns a writer for its frames. meta is recorded verbatim in the
// footer's cfMeta frame.
func NewContainerWriter(w io.Writer, kind byte, meta Meta) (*ContainerWriter, error) {
	var inner byte
	switch kind {
	case KindTrace:
		inner = TraceFormatVersion
	case KindLLC:
		inner = LLCFormatVersion
	default:
		return nil, fmt.Errorf("trace: container kind %q is not %q or %q", kind, KindTrace, KindLLC)
	}
	cw := &ContainerWriter{w: w, kind: kind, meta: meta, chunkBytes: DefaultChunkBytes}
	cw.writeAll([]byte{magic0, magicContainer1, ContainerFormatVersion, kind, inner})
	return cw, cw.err
}

// SetChunkBytes overrides the chunk-size target; it must be called before
// the chunked encoder is created (rechunking and tests use it).
func (w *ContainerWriter) SetChunkBytes(n int) {
	if n > 0 {
		w.chunkBytes = n
	}
}

// Err returns the first write error, if any.
func (w *ContainerWriter) Err() error { return w.err }

// writeAll appends bytes to the stream, tracking the offset and latching
// the first error.
func (w *ContainerWriter) writeAll(p []byte) {
	if w.err != nil {
		return
	}
	n, err := w.w.Write(p)
	w.off += int64(n)
	if err != nil {
		w.err = err
	}
}

// writeChunk records one chunk's index entry and emits its frame. Called
// by the chunked encoders at event boundaries; empty chunks are dropped.
func (w *ContainerWriter) writeChunk(events, firstPC uint64, payload []byte) {
	if w.err != nil || len(payload) == 0 {
		return
	}
	crc := crc32.ChecksumIEEE(payload)
	w.chunks = append(w.chunks, chunkInfo{
		off: w.off, events: events, firstPC: firstPC,
		length: uint64(len(payload)), crc: crc,
	})
	w.streamCRC = crc32.Update(w.streamCRC, crc32.IEEETable, payload)
	w.writeChunkFrame(events, firstPC, payload, crc)
}

// writeChunkFrame emits one chunk frame: the marker, the uvarint header
// quad (event count, first PC, payload length, payload CRC), then the
// headerless event payload (copied out of line in writeAll).
//
//popt:codec container enc
func (w *ContainerWriter) writeChunkFrame(events, firstPC uint64, payload []byte, crc uint32) {
	hdr := w.scratch[:0]
	hdr = append(hdr, cfChunk)
	hdr = appendUvarint(hdr, events)
	hdr = appendUvarint(hdr, firstPC)
	hdr = appendUvarint(hdr, uint64(len(payload)))
	hdr = appendUvarint(hdr, uint64(crc))
	w.scratch = hdr
	w.writeAll(hdr)
	w.writeAll(payload)
}

// writeStatsFrame emits the stream-totals footer frame.
//
//popt:codec container enc
func (w *ContainerWriter) writeStatsFrame(payload []byte) {
	hdr := w.scratch[:0]
	hdr = append(hdr, cfStats)
	hdr = appendUvarint(hdr, uint64(len(payload)))
	hdr = appendUvarint(hdr, uint64(crc32.ChecksumIEEE(payload)))
	w.scratch = hdr
	w.writeAll(hdr)
	w.writeAll(payload)
}

// writeIndexFrame emits the chunk seek-index footer frame.
//
//popt:codec container enc
func (w *ContainerWriter) writeIndexFrame(payload []byte) {
	hdr := w.scratch[:0]
	hdr = append(hdr, cfIndex)
	hdr = appendUvarint(hdr, uint64(len(payload)))
	hdr = appendUvarint(hdr, uint64(crc32.ChecksumIEEE(payload)))
	w.scratch = hdr
	w.writeAll(hdr)
	w.writeAll(payload)
}

// writeMetaFrame emits the identifying-metadata footer frame.
//
//popt:codec container enc
func (w *ContainerWriter) writeMetaFrame(payload []byte) {
	hdr := w.scratch[:0]
	hdr = append(hdr, cfMeta)
	hdr = appendUvarint(hdr, uint64(len(payload)))
	hdr = appendUvarint(hdr, uint64(crc32.ChecksumIEEE(payload)))
	w.scratch = hdr
	w.writeAll(hdr)
	w.writeAll(payload)
}

// setStats installs the encoded stream-totals payload; the chunked
// encoders call it from Finish, before the owner calls ContainerWriter
// Finish.
func (w *ContainerWriter) setStats(payload []byte) { w.stats = payload }

// Finish writes the footer frames and trailer. It must run after the
// feeding encoder's Finish (which flushes the final chunk and sets the
// stats payload); Finish is idempotent and returns the first error.
func (w *ContainerWriter) Finish() error {
	if w.finished {
		return w.err
	}
	w.finished = true
	if w.stats == nil && w.err == nil {
		w.err = fmt.Errorf("trace: container finished before its encoder (stats payload missing)")
		return w.err
	}
	footerOff := w.off
	w.writeStatsFrame(w.stats)
	w.writeIndexFrame(encodeIndex(w.chunks))
	w.writeMetaFrame(encodeMeta(w.meta))
	footerLen := w.off - footerOff
	var tr [containerTrailerLen]byte
	binary.LittleEndian.PutUint64(tr[0:8], uint64(footerOff))
	binary.LittleEndian.PutUint64(tr[8:16], uint64(footerLen))
	tr[16], tr[17], tr[18], tr[19] = magic0, magicContainer1, ContainerFormatVersion, w.kind
	w.writeAll(tr[:])
	return w.err
}

// encodeIndex renders the seek index: a chunk count, then per chunk the
// frame-offset delta (first entry absolute), event count, first PC,
// payload length and payload CRC, all uvarints. The entries duplicate the
// chunk frame headers so a reader never touches a chunk it does not
// replay; Verify cross-checks the two copies.
func encodeIndex(chunks []chunkInfo) []byte {
	buf := appendUvarint(nil, uint64(len(chunks)))
	var prev int64
	for _, ci := range chunks {
		buf = appendUvarint(buf, uint64(ci.off-prev))
		prev = ci.off
		buf = appendUvarint(buf, ci.events)
		buf = appendUvarint(buf, ci.firstPC)
		buf = appendUvarint(buf, ci.length)
		buf = appendUvarint(buf, uint64(ci.crc))
	}
	return buf
}

// encodeMeta renders the identifying metadata as length-prefixed
// key/value pairs in fixed order (decodeMeta ignores unknown keys, so the
// set can grow under the container version's discipline).
func encodeMeta(m Meta) []byte {
	pairs := [4][2]string{
		{"workload", m.Workload},
		{"schedule", m.Schedule},
		{"scale", m.Scale},
		{"seed", strconv.FormatInt(m.Seed, 10)},
	}
	buf := appendUvarint(nil, uint64(len(pairs)))
	for _, p := range pairs {
		buf = appendUvarint(buf, uint64(len(p[0])))
		buf = append(buf, p[0]...)
		buf = appendUvarint(buf, uint64(len(p[1])))
		buf = append(buf, p[1]...)
	}
	return buf
}

// encodeTraceStats renders the cfStats payload of a KindTrace container:
// the whole-stream CRC then the Stats counters, all uvarints, in struct
// order.
func encodeTraceStats(s Stats, streamCRC uint32) []byte {
	buf := appendUvarint(nil, uint64(streamCRC))
	for _, x := range [8]uint64{
		s.Accesses, s.Writes, s.VertexUpdates, s.Iterations,
		s.TileSwitches, s.MutedRegions, s.TickEvents, s.TickedInstrs,
	} {
		buf = appendUvarint(buf, x)
	}
	return buf
}

// encodeLLCStats renders the cfStats payload of a KindLLC container: the
// whole-stream CRC, the setup-invariant totals (instructions, L1, L2 —
// what the in-memory form carries in its fixed header), then the LLCStats
// counters.
func encodeLLCStats(s LLCStats, instructions uint64, l1, l2 cache.Stats, streamCRC uint32) []byte {
	buf := appendUvarint(nil, uint64(streamCRC))
	buf = appendUvarint(buf, instructions)
	for _, lv := range [2]cache.Stats{l1, l2} {
		for _, x := range [5]uint64{lv.Accesses, lv.Hits, lv.Misses, lv.Evictions, lv.Writebacks} {
			buf = appendUvarint(buf, x)
		}
	}
	for _, x := range [6]uint64{
		s.Accesses, s.Writes, s.Writebacks, s.VertexUpdates, s.Iterations, s.TileSwitches,
	} {
		buf = appendUvarint(buf, x)
	}
	return buf
}

// WriteTraceContainer re-encodes an in-memory full stream as a container
// on w: replaying the trace into a chunked encoder reproduces the exact
// event sequence with fresh per-chunk delta state. Used by poptsim-style
// tools and popttrace rechunk; recording paths stream directly instead.
func WriteTraceContainer(t *Trace, w io.Writer, meta Meta, chunkBytes int) error {
	cw, err := NewContainerWriter(w, KindTrace, meta)
	if err != nil {
		return err
	}
	cw.SetChunkBytes(chunkBytes)
	enc := NewChunkedEncoder(cw)
	t.Replay(enc)
	if err := enc.Finish(); err != nil {
		return err
	}
	return cw.Finish()
}

// WriteLLCContainer re-encodes an in-memory LLC-visible stream as a
// container on w; see WriteTraceContainer.
func WriteLLCContainer(t *LLCTrace, w io.Writer, meta Meta, chunkBytes int) error {
	cw, err := NewContainerWriter(w, KindLLC, meta)
	if err != nil {
		return err
	}
	cw.SetChunkBytes(chunkBytes)
	enc := NewChunkedLLCEncoder(cw)
	reencodeLLCEvents(t.data, llcHeaderLen, enc)
	if err := enc.Finish(t.instructions, t.l1, t.l2); err != nil {
		return err
	}
	return cw.Finish()
}
