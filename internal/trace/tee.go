package trace

import (
	"popt/internal/graph"
	"popt/internal/mem"
)

// Tee fans every event out to each sink in order. The sweep engine uses it
// to piggyback recording on the first live cell of a (workload, schedule):
// the cell's Sim and an Encoder both see the one emitted stream.
type Tee struct {
	sinks []Sink
}

// NewTee builds a fan-out over sinks.
func NewTee(sinks ...Sink) *Tee {
	return &Tee{sinks: sinks}
}

// Access implements Sink.
//
//popt:hot
func (t *Tee) Access(acc mem.Access) {
	for _, s := range t.sinks {
		s.Access(acc)
	}
}

// SetVertex implements Sink.
//
//popt:hot
func (t *Tee) SetVertex(v graph.V) {
	for _, s := range t.sinks {
		s.SetVertex(v)
	}
}

// StartIteration implements Sink.
func (t *Tee) StartIteration() {
	for _, s := range t.sinks {
		s.StartIteration()
	}
}

// SetTile implements Sink.
func (t *Tee) SetTile(tile int) {
	for _, s := range t.sinks {
		s.SetTile(tile)
	}
}

// Mute implements Sink.
func (t *Tee) Mute() {
	for _, s := range t.sinks {
		s.Mute()
	}
}

// Unmute implements Sink.
func (t *Tee) Unmute() {
	for _, s := range t.sinks {
		s.Unmute()
	}
}

// Tick implements Sink.
//
//popt:hot
func (t *Tee) Tick(n uint64) {
	for _, s := range t.sinks {
		s.Tick(n)
	}
}
