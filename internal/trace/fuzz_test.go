package trace

import (
	"testing"

	"popt/internal/cache"
	"popt/internal/mem"
)

// The fuzz targets below hold the validating decoders to their contract:
// on arbitrary bytes they either return an error or return a trace whose
// replay — the panic-based hot loop — runs to completion. Seeds are real
// encoded streams plus hand-built corruptions near the interesting
// boundaries (bare header, unknown opcode, dangling varint), so mutation
// starts from well-formed structure instead of noise.

func FuzzDecodeTrace(f *testing.F) {
	enc := NewEncoder()
	enc.Tick(700)
	enc.Access(mem.Access{Addr: 1 << 30, PC: 2})                    // inline PC, merged tick
	enc.Access(mem.Access{Addr: 1<<30 + 64, PC: 300, Write: true})  // escaped PC
	enc.SetVertex(41)
	enc.StartIteration()
	enc.SetTile(7)
	enc.Mute()
	enc.Tick(3)
	enc.Unmute()
	enc.Access(mem.Access{Addr: 12, PC: 0})
	f.Add(enc.Trace().Bytes())
	f.Add([]byte{})
	f.Add([]byte{magic0, magicTrace1, TraceFormatVersion})
	f.Add([]byte{magic0, magicTrace1, TraceFormatVersion, 0x0b})
	f.Add([]byte{magic0, magicTrace1, TraceFormatVersion, opSetTile, 0x80})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeTrace(data)
		if err != nil {
			return
		}
		// A stream the decoder accepted must replay without tripping the
		// hot path's corruption panics.
		tr.Replay(&recordSink{})
	})
}

func FuzzDecodeLLCTrace(f *testing.F) {
	enc := NewLLCEncoder()
	enc.LLCAccess(mem.Access{Addr: 1 << 22, PC: 1})
	enc.LLCAccess(mem.Access{Addr: 1<<22 + 128, PC: 4000, Write: true}) // escaped PC
	enc.LLCWriteback(1 << 16)
	enc.SetVertex(9)
	enc.StartIteration()
	enc.SetTile(2)
	l1 := cache.Stats{Accesses: 7, Hits: 5, Misses: 2, Evictions: 1, Writebacks: 1}
	valid := enc.Trace(321, l1, cache.Stats{}).Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:llcHeaderLen])
	f.Add(append(append([]byte{}, valid[:llcHeaderLen]...), 0x07))
	f.Add(append(append([]byte{}, valid[:llcHeaderLen]...), lopWB, 0xff))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeLLCTrace(data)
		if err != nil {
			return
		}
		sim := NewSim(cache.NewHierarchy(tinyConfig()), nil)
		tr.Replay(sim)
	})
}
