package trace

import (
	"bytes"
	"testing"

	"popt/internal/cache"
	"popt/internal/mem"
)

// The fuzz targets below hold the validating decoders to their contract:
// on arbitrary bytes they either return an error or return a trace whose
// replay — the panic-based hot loop — runs to completion. Seeds are real
// encoded streams plus hand-built corruptions near the interesting
// boundaries (bare header, unknown opcode, dangling varint), so mutation
// starts from well-formed structure instead of noise.

func FuzzDecodeTrace(f *testing.F) {
	enc := NewEncoder()
	enc.Tick(700)
	enc.Access(mem.Access{Addr: 1 << 30, PC: 2})                    // inline PC, merged tick
	enc.Access(mem.Access{Addr: 1<<30 + 64, PC: 300, Write: true})  // escaped PC
	enc.SetVertex(41)
	enc.StartIteration()
	enc.SetTile(7)
	enc.Mute()
	enc.Tick(3)
	enc.Unmute()
	enc.Access(mem.Access{Addr: 12, PC: 0})
	f.Add(enc.Trace().Bytes())
	f.Add([]byte{})
	f.Add([]byte{magic0, magicTrace1, TraceFormatVersion})
	f.Add([]byte{magic0, magicTrace1, TraceFormatVersion, 0x0b})
	f.Add([]byte{magic0, magicTrace1, TraceFormatVersion, opSetTile, 0x80})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeTrace(data)
		if err != nil {
			return
		}
		// A stream the decoder accepted must replay without tripping the
		// hot path's corruption panics.
		tr.Replay(&recordSink{})
	})
}

func FuzzDecodeLLCTrace(f *testing.F) {
	enc := NewLLCEncoder()
	enc.LLCAccess(mem.Access{Addr: 1 << 22, PC: 1})
	enc.LLCAccess(mem.Access{Addr: 1<<22 + 128, PC: 4000, Write: true}) // escaped PC
	enc.LLCWriteback(1 << 16)
	enc.SetVertex(9)
	enc.StartIteration()
	enc.SetTile(2)
	l1 := cache.Stats{Accesses: 7, Hits: 5, Misses: 2, Evictions: 1, Writebacks: 1}
	valid := enc.Trace(321, l1, cache.Stats{}).Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:llcHeaderLen])
	f.Add(append(append([]byte{}, valid[:llcHeaderLen]...), 0x07))
	f.Add(append(append([]byte{}, valid[:llcHeaderLen]...), lopWB, 0xff))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeLLCTrace(data)
		if err != nil {
			return
		}
		sim := NewSim(cache.NewHierarchy(tinyConfig()), nil)
		tr.Replay(sim)
	})
}

// FuzzReadContainer holds the container reader to the decoder contract on
// arbitrary bytes: OpenContainer, Verify, and the replay paths must
// return errors on damage — truncated footers, corrupt CRCs, index/frame
// disagreements — and must never panic. Seeds are real containers of both
// kinds (small chunks, so mutation hits frame machinery, not just event
// bytes) plus targeted corruptions of the fixed trailer.
func FuzzReadContainer(f *testing.F) {
	meta := Meta{Workload: "fuzz", Schedule: "pull", Scale: "tiny", Seed: 1}

	enc := NewEncoder()
	enc.Tick(9)
	enc.Access(mem.Access{Addr: 1 << 28, PC: 2})
	enc.Access(mem.Access{Addr: 1<<28 + 64, PC: 500, Write: true})
	enc.SetVertex(13)
	enc.StartIteration()
	enc.Mute()
	enc.Unmute()
	enc.SetTile(3)
	var tbuf bytes.Buffer
	if err := WriteTraceContainer(enc.Trace(), &tbuf, meta, 16); err != nil {
		f.Fatal(err)
	}

	lenc := NewLLCEncoder()
	lenc.LLCAccess(mem.Access{Addr: 1 << 22, PC: 1})
	lenc.LLCAccess(mem.Access{Addr: 1<<22 + 128, PC: 4000, Write: true})
	lenc.LLCWriteback(1 << 16)
	lenc.SetVertex(9)
	lenc.StartIteration()
	lenc.SetTile(2)
	var lbuf bytes.Buffer
	if err := WriteLLCContainer(lenc.Trace(77, cache.Stats{Accesses: 3}, cache.Stats{}), &lbuf, meta, 16); err != nil {
		f.Fatal(err)
	}

	f.Add(tbuf.Bytes())
	f.Add(lbuf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{magic0, magicContainer1, ContainerFormatVersion, KindTrace, TraceFormatVersion})
	f.Add(tbuf.Bytes()[:tbuf.Len()-containerTrailerLen+3]) // truncated trailer
	flip := func(src []byte, at int) []byte {
		m := append([]byte{}, src...)
		m[at] ^= 0xff
		return m
	}
	f.Add(flip(lbuf.Bytes(), lbuf.Len()-containerTrailerLen)) // footer offset
	f.Add(flip(lbuf.Bytes(), containerHeaderLen+2))           // chunk frame header
	f.Add(flip(tbuf.Bytes(), tbuf.Len()/2))                   // mid-stream

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := OpenContainer(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return
		}
		// Whatever Open accepted must verify and replay without panicking;
		// errors are fine (chunk damage is caught lazily).
		_ = r.Verify()
		switch r.Kind() {
		case KindTrace:
			_ = r.ReplayTrace(&recordSink{}, ReplayOptions{})
		case KindLLC:
			sim := NewSim(cache.NewHierarchy(tinyConfig()), nil)
			_ = r.ReplayLLC(sim, ReplayOptions{Workers: 2, Window: 2})
		}
	})
}
