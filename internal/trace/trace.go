// Package trace makes the simulator's memory reference stream a
// first-class, replayable artifact. The paper's evaluation is
// trace-driven: Pin captures each kernel's reference stream once and every
// replacement policy replays the same stream. This package provides the
// equivalent plumbing: kernels emit a typed event stream (memory accesses,
// outer-loop progress for the update_index instruction, iteration and tile
// boundaries, mute markers for rounds excluded from sampling) into a Sink;
// the live cache simulation is one sink (Sim), a compact varint/delta
// encoder is another (Encoder), and an encoded Trace replays into any sink
// so a stream captured once can drive an entire policy zoo.
package trace

import (
	"popt/internal/graph"
	"popt/internal/mem"
)

// Sink consumes one kernel event stream. Implementations must treat each
// method call as one event in program order; the stream for a given
// (workload, schedule) is identical no matter which sink consumes it, which
// is what makes record/replay equivalent to live execution.
//
// Events:
//
//   - Access: one memory reference (the paper's ld/st stream).
//   - SetVertex: outer-loop progress, the update_index instruction P-OPT
//     and T-OPT consume.
//   - StartIteration: a fresh pass over the vertices begins (P-OPT's
//     streaming engine re-fetches the first Rereference Matrix column).
//   - SetTile: a CSR-segmented kernel moved to another tile.
//   - Mute/Unmute: the kernel entered/left a round excluded from detailed
//     simulation (direction-switching sparse rounds); no Access, SetVertex,
//     StartIteration, or Tick events arrive while muted.
//   - Tick: n non-memory instructions retired (the MPKI denominator,
//     together with one instruction per Access).
type Sink interface {
	Access(acc mem.Access)
	SetVertex(v graph.V)
	StartIteration()
	SetTile(t int)
	Mute()
	Unmute()
	Tick(n uint64)
}

// Nop is a Sink that ignores every event. Embed it to implement only the
// events a sink cares about (the capture sinks in package analysis keep
// just the accesses).
type Nop struct{}

// Access implements Sink.
func (Nop) Access(mem.Access) {}

// SetVertex implements Sink.
func (Nop) SetVertex(graph.V) {}

// StartIteration implements Sink.
func (Nop) StartIteration() {}

// SetTile implements Sink.
func (Nop) SetTile(int) {}

// Mute implements Sink.
func (Nop) Mute() {}

// Unmute implements Sink.
func (Nop) Unmute() {}

// Tick implements Sink.
func (Nop) Tick(uint64) {}
