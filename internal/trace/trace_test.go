package trace

import (
	"math/rand"
	"reflect"
	"testing"

	"popt/internal/cache"
	"popt/internal/graph"
	"popt/internal/mem"
)

// ev is one recorded event for equivalence checking.
type ev struct {
	op   string
	acc  mem.Access
	v    graph.V
	tile int
	n    uint64
}

// recordSink captures the full event stream as a slice.
type recordSink struct{ evs []ev }

func (r *recordSink) Access(acc mem.Access) { r.evs = append(r.evs, ev{op: "access", acc: acc}) }
func (r *recordSink) SetVertex(v graph.V)   { r.evs = append(r.evs, ev{op: "vertex", v: v}) }
func (r *recordSink) StartIteration()       { r.evs = append(r.evs, ev{op: "iter"}) }
func (r *recordSink) SetTile(t int)         { r.evs = append(r.evs, ev{op: "tile", tile: t}) }
func (r *recordSink) Mute()                 { r.evs = append(r.evs, ev{op: "mute"}) }
func (r *recordSink) Unmute()               { r.evs = append(r.evs, ev{op: "unmute"}) }
func (r *recordSink) Tick(n uint64)         { r.evs = append(r.evs, ev{op: "tick", n: n}) }

// coalesceTicks merges adjacent tick events and drops zero-instruction
// ticks, mirroring the encoder's only lossy-in-shape (but
// total-preserving) transforms.
func coalesceTicks(evs []ev) []ev {
	var out []ev
	for _, e := range evs {
		if e.op == "tick" {
			if len(out) > 0 && out[len(out)-1].op == "tick" {
				out[len(out)-1].n += e.n
				continue
			}
			if e.n == 0 {
				continue
			}
		}
		out = append(out, e)
	}
	return out
}

// emit delivers e to s.
func emit(s Sink, e ev) {
	switch e.op {
	case "access":
		s.Access(e.acc)
	case "vertex":
		s.SetVertex(e.v)
	case "iter":
		s.StartIteration()
	case "tile":
		s.SetTile(e.tile)
	case "mute":
		s.Mute()
	case "unmute":
		s.Unmute()
	case "tick":
		s.Tick(e.n)
	}
}

// TestEncoderRoundTrip drives pseudo-random event streams through the
// encoder and checks the replayed stream is the original with adjacent
// ticks coalesced. Addresses span the full uint64 range (delta encoding
// must survive wraparound) and PCs exceed the slot count (collisions must
// only cost size, never correctness).
func TestEncoderRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		var evs []ev
		n := 1 + rng.Intn(2000)
		for i := 0; i < n; i++ {
			switch rng.Intn(10) {
			case 0:
				evs = append(evs, ev{op: "vertex", v: graph.V(rng.Uint32())})
			case 1:
				evs = append(evs, ev{op: "iter"})
			case 2:
				evs = append(evs, ev{op: "tile", tile: rng.Intn(64)})
			case 3:
				evs = append(evs, ev{op: "mute"}, ev{op: "unmute"})
			case 4, 5:
				evs = append(evs, ev{op: "tick", n: uint64(rng.Intn(1000))})
			default:
				evs = append(evs, ev{op: "access", acc: mem.Access{
					Addr:  rng.Uint64(),
					PC:    uint16(rng.Intn(1 << 16)),
					Write: rng.Intn(2) == 0,
				}})
			}
		}
		enc := NewEncoder()
		for _, e := range evs {
			emit(enc, e)
		}
		tr := enc.Trace()
		got := &recordSink{}
		tr.Replay(got)
		want := coalesceTicks(evs)
		if !reflect.DeepEqual(got.evs, want) {
			t.Fatalf("trial %d: round trip diverged (%d events in, %d out)", trial, len(want), len(got.evs))
		}
	}
}

// TestEncoderDeltaLocality pins the compression property the format exists
// for: a strided same-PC walk must encode in ~2 bytes/event.
func TestEncoderDeltaLocality(t *testing.T) {
	enc := NewEncoder()
	for i := 0; i < 10000; i++ {
		enc.Access(mem.Access{Addr: 1 << 30 * uint64(1) + uint64(i)*4, PC: 3})
	}
	tr := enc.Trace()
	if bpe := tr.BytesPerEvent(); bpe > 3.5 {
		t.Errorf("sequential walk encodes at %.2f bytes/event, want <= 3.5", bpe)
	}
	if tr.Stats().Accesses != 10000 {
		t.Errorf("accesses = %d", tr.Stats().Accesses)
	}
}

// TestTraceReplayIsRepeatable checks a Trace carries no mutable decode
// state: two replays must deliver identical streams.
func TestTraceReplayIsRepeatable(t *testing.T) {
	enc := NewEncoder()
	enc.SetVertex(41)
	enc.Access(mem.Access{Addr: 123456, PC: 9})
	enc.Tick(7)
	enc.Access(mem.Access{Addr: 123520, PC: 9, Write: true})
	tr := enc.Trace()
	a, b := &recordSink{}, &recordSink{}
	tr.Replay(a)
	tr.Replay(b)
	if !reflect.DeepEqual(a.evs, b.evs) {
		t.Fatal("two replays of one trace diverged")
	}
	if len(a.evs) != 4 {
		t.Fatalf("replay delivered %d events, want 4", len(a.evs))
	}
}

// TestStatsEvents checks the event total matches a hand count.
func TestStatsEvents(t *testing.T) {
	enc := NewEncoder()
	enc.Access(mem.Access{Addr: 1, PC: 1})
	enc.SetVertex(1)
	enc.StartIteration()
	enc.SetTile(2)
	enc.Mute()
	enc.Unmute()
	enc.Tick(5)
	tr := enc.Trace()
	if got := tr.Stats().Events(); got != 7 {
		t.Errorf("Events() = %d, want 7", got)
	}
	if tr.Stats().TickedInstrs != 5 {
		t.Errorf("TickedInstrs = %d, want 5", tr.Stats().TickedInstrs)
	}
}

// TestSimMPKI relocates the old Hierarchy MPKI unit test: the sink owns
// the instruction counter now.
func TestSimMPKI(t *testing.T) {
	h := cache.NewHierarchy(cache.Scaled(func() cache.Policy { return cache.NewLRU() }))
	s := NewSim(h, nil)
	s.Tick(1000)
	for i := 0; i < 10; i++ {
		h.Access(mem.Access{Addr: uint64(i) * 4096 * mem.LineSize})
	}
	if got := s.MPKI(); got != 10 {
		t.Errorf("MPKI = %v, want 10", got)
	}
	if empty := (&Sim{}); empty.MPKI() != 0 {
		t.Error("hierarchy-less Sim must report 0 MPKI")
	}
}

// TestSimChargesAbsorbedAccesses pins the filter contract: an absorbed
// access retires its instruction without reaching the hierarchy.
func TestSimChargesAbsorbedAccesses(t *testing.T) {
	h := cache.NewHierarchy(cache.Scaled(func() cache.Policy { return cache.NewLRU() }))
	s := NewSim(h, nil)
	s.Filter = func(acc mem.Access) bool { return acc.Write }
	s.Access(mem.Access{Addr: 64, Write: true})
	s.Access(mem.Access{Addr: 64})
	if s.Instructions != 2 {
		t.Errorf("Instructions = %d, want 2", s.Instructions)
	}
	if h.L1.Stats.Accesses != 1 {
		t.Errorf("L1 accesses = %d, want 1", h.L1.Stats.Accesses)
	}
}

// TestTeeDeliversInOrder checks fan-out order and completeness.
func TestTeeDeliversInOrder(t *testing.T) {
	a, b := &recordSink{}, &recordSink{}
	tee := NewTee(a, b)
	tee.Access(mem.Access{Addr: 10, PC: 2})
	tee.SetVertex(3)
	tee.Tick(4)
	if !reflect.DeepEqual(a.evs, b.evs) || len(a.evs) != 3 {
		t.Fatalf("tee fan-out diverged: %v vs %v", a.evs, b.evs)
	}
}
