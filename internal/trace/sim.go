package trace

import (
	"popt/internal/cache"
	"popt/internal/core"
	"popt/internal/graph"
	"popt/internal/mem"
)

// epochResetter is implemented by P-OPT, whose streaming engine re-fetches
// the first column when a traversal restarts.
type epochResetter interface{ ResetEpoch() }

// tileSetter is implemented by tile-switching policies (core.TilePolicy).
type tileSetter interface{ SetTile(int) }

// Sim is the live-simulation sink: it threads the event stream into a
// cache hierarchy, forwards outer-loop progress to vertex-indexed policies
// (the update_index instruction), and owns the run's instruction counter —
// the MPKI denominator lives here, not in the hierarchy, so a replayed
// stream is charged exactly like a live one. A Sim with a nil hierarchy
// forwards hook events but simulates (and charges) nothing.
type Sim struct {
	H *cache.Hierarchy
	// Hook receives update_index events (P-OPT / T-OPT); nil otherwise.
	Hook core.VertexIndexed
	// Filter, when set, may absorb an access before it reaches the
	// hierarchy (returns true if absorbed). The PHI model uses this to
	// coalesce commutative updates in-cache. Absorbed accesses still
	// charge their instruction, exactly as a real coalesced store retires.
	Filter func(acc mem.Access) bool
	// Instructions counts retired instructions: one per Access event plus
	// every Tick. It is the denominator of MPKI.
	Instructions uint64
}

// NewSim builds a live sink over h. hook may be nil.
func NewSim(h *cache.Hierarchy, hook core.VertexIndexed) *Sim {
	return &Sim{H: h, Hook: hook}
}

// Access implements Sink: charge one instruction and run the reference
// through the hierarchy (unless a filter absorbs it).
//
//popt:hot
func (s *Sim) Access(acc mem.Access) {
	if s.H == nil {
		return
	}
	s.Instructions++
	if s.Filter != nil && s.Filter(acc) {
		return
	}
	s.H.Access(acc)
}

// SetVertex implements Sink: forward outer-loop progress to the hook.
//
//popt:hot
func (s *Sim) SetVertex(v graph.V) {
	if s.Hook != nil {
		s.Hook.UpdateIndex(v)
	}
}

// StartIteration implements Sink: epoch-tracking policies reset; others
// see the traversal restart as progress to vertex 0.
func (s *Sim) StartIteration() {
	if er, ok := s.Hook.(epochResetter); ok {
		er.ResetEpoch()
	} else {
		s.SetVertex(0)
	}
}

// SetTile implements Sink: forward tile switches to tile-aware policies.
func (s *Sim) SetTile(t int) {
	if ts, ok := s.Hook.(tileSetter); ok {
		ts.SetTile(t)
	}
}

// Mute implements Sink; the emitter suppresses muted traffic, so the live
// sink has nothing to do at the boundary.
func (s *Sim) Mute() {}

// Unmute implements Sink.
func (s *Sim) Unmute() {}

// Tick implements Sink: account n non-memory instructions.
//
//popt:hot
func (s *Sim) Tick(n uint64) {
	if s.H != nil {
		s.Instructions += n
	}
}

// MPKI returns LLC misses per kilo-instruction, the paper's primary
// locality metric (Fig. 2, 4).
func (s *Sim) MPKI() float64 {
	if s.H == nil || s.Instructions == 0 {
		return 0
	}
	return float64(s.H.LLC.Stats.Misses) / (float64(s.Instructions) / 1000)
}
