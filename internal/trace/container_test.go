package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"popt/internal/cache"
	"popt/internal/graph"
	"popt/internal/mem"
)

// testMeta is the identifying metadata the container tests record.
func testMeta() Meta {
	return Meta{Workload: "PR-uniform", Schedule: "pull", Scale: "tiny", Seed: 42}
}

// encodeRandomLLCStream builds a pseudo-random LLC-visible stream
// exercising every opcode, inline and escaped PCs, and full-range
// addresses (delta wraparound).
func encodeRandomLLCStream(seed int64, n int) *LLCTrace {
	rng := rand.New(rand.NewSource(seed))
	enc := NewLLCEncoder()
	feedRandomLLCEvents(rng, enc, n)
	l1 := cache.Stats{Accesses: 1000, Hits: 900, Misses: 100, Evictions: 40, Writebacks: 20}
	l2 := cache.Stats{Accesses: 100, Hits: 50, Misses: 50, Evictions: 10, Writebacks: 5}
	return enc.Trace(123456, l1, l2)
}

// feedRandomLLCEvents drives the same pseudo-random event mix into any
// LLC encoder (in-memory or chunked).
func feedRandomLLCEvents(rng *rand.Rand, enc *LLCEncoder, n int) {
	for i := 0; i < n; i++ {
		switch rng.Intn(10) {
		case 0:
			enc.SetVertex(graph.V(rng.Uint32()))
		case 1:
			enc.StartIteration()
		case 2:
			enc.SetTile(rng.Intn(64))
		case 3:
			enc.LLCWriteback(rng.Uint64())
		default:
			enc.LLCAccess(mem.Access{
				Addr:  rng.Uint64(),
				PC:    uint16(rng.Intn(1 << 12)),
				Write: rng.Intn(2) == 0,
			})
		}
	}
}

// llcCounters distills the replay-visible state of a sim for equivalence
// checks.
type llcCounters struct {
	instr      uint64
	l1, l2     cache.Stats
	llc        cache.Stats
	dramR      uint64
	dramW      uint64
}

func countersOf(sim *Sim) llcCounters {
	return llcCounters{
		instr: sim.Instructions,
		l1:    sim.H.L1.Stats, l2: sim.H.L2.Stats, llc: sim.H.LLC.Stats,
		dramR: sim.H.DRAMReads, dramW: sim.H.DRAMWrites,
	}
}

// TestTraceContainerRoundTrip pins the full-stream container against the
// in-memory form: for several chunk sizes (including ones that force many
// chunk boundaries mid-stream) the container must verify clean, report
// the encoder's statistics, and replay the identical event sequence.
func TestTraceContainerRoundTrip(t *testing.T) {
	for _, chunkBytes := range []int{48, 512, DefaultChunkBytes} {
		tr := encodeRandomStream(3, 2000)
		var buf bytes.Buffer
		if err := WriteTraceContainer(tr, &buf, testMeta(), chunkBytes); err != nil {
			t.Fatalf("chunk %d: WriteTraceContainer: %v", chunkBytes, err)
		}
		r, err := OpenContainer(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
		if err != nil {
			t.Fatalf("chunk %d: OpenContainer: %v", chunkBytes, err)
		}
		if r.Kind() != KindTrace {
			t.Fatalf("chunk %d: kind %q, want %q", chunkBytes, r.Kind(), KindTrace)
		}
		if r.Meta() != testMeta() {
			t.Fatalf("chunk %d: meta %+v did not round trip", chunkBytes, r.Meta())
		}
		if s, ok := r.TraceStats(); !ok || s != tr.Stats() {
			t.Fatalf("chunk %d: container stats %+v != encoder stats %+v", chunkBytes, s, tr.Stats())
		}
		if chunkBytes < 512 && r.Chunks() < 4 {
			t.Fatalf("chunk %d: only %d chunks; the round trip is not exercising boundaries", chunkBytes, r.Chunks())
		}
		if err := r.Verify(); err != nil {
			t.Fatalf("chunk %d: Verify on a fresh container: %v", chunkBytes, err)
		}
		a, b := &recordSink{}, &recordSink{}
		tr.Replay(a)
		if err := r.ReplayTrace(b, ReplayOptions{}); err != nil {
			t.Fatalf("chunk %d: ReplayTrace: %v", chunkBytes, err)
		}
		if !reflect.DeepEqual(a.evs, b.evs) {
			t.Fatalf("chunk %d: container replay diverges from the in-memory replay", chunkBytes)
		}
	}
}

// TestLLCContainerRoundTrip pins the LLC container against LLCTrace.Replay
// counter for counter, across chunk sizes, worker counts, and window
// sizes, hookless and hooked — the equivalence the corpus-backed sweep
// path rests on.
func TestLLCContainerRoundTrip(t *testing.T) {
	tr := encodeRandomLLCStream(5, 3000)
	want := func(hook *countingHook) llcCounters {
		sim := NewSim(cache.NewHierarchy(tinyConfig()), nil)
		if hook != nil {
			sim.Hook = hook
		}
		tr.Replay(sim)
		return countersOf(sim)
	}
	ref := want(nil)
	refHook := &countingHook{}
	refHooked := want(refHook)

	for _, chunkBytes := range []int{64, 1024, DefaultChunkBytes} {
		var buf bytes.Buffer
		if err := WriteLLCContainer(tr, &buf, testMeta(), chunkBytes); err != nil {
			t.Fatalf("chunk %d: WriteLLCContainer: %v", chunkBytes, err)
		}
		r, err := OpenContainer(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
		if err != nil {
			t.Fatalf("chunk %d: OpenContainer: %v", chunkBytes, err)
		}
		instr, l1, l2, stats, ok := r.LLCTotals()
		if !ok || instr != 123456 || stats != tr.Stats() {
			t.Fatalf("chunk %d: LLC totals did not round trip (instr %d stats %+v)", chunkBytes, instr, stats)
		}
		_, _ = l1, l2
		if err := r.Verify(); err != nil {
			t.Fatalf("chunk %d: Verify: %v", chunkBytes, err)
		}
		for _, opt := range []ReplayOptions{
			{Workers: 1, Window: 1},
			{Workers: 2, Window: 2},
			{Workers: 4},
			{},
		} {
			sim := NewSim(cache.NewHierarchy(tinyConfig()), nil)
			if err := r.ReplayLLC(sim, opt); err != nil {
				t.Fatalf("chunk %d %+v: ReplayLLC: %v", chunkBytes, opt, err)
			}
			if got := countersOf(sim); got != ref {
				t.Fatalf("chunk %d %+v: container replay %+v != in-memory replay %+v", chunkBytes, opt, got, ref)
			}
		}
		// Hooked replay: marks must fire at their recorded positions.
		hook := &countingHook{}
		sim := NewSim(cache.NewHierarchy(tinyConfig()), hook)
		if err := r.ReplayLLC(sim, ReplayOptions{Workers: 3}); err != nil {
			t.Fatalf("chunk %d hooked: ReplayLLC: %v", chunkBytes, err)
		}
		if got := countersOf(sim); got != refHooked {
			t.Fatalf("chunk %d hooked: container replay %+v != in-memory replay %+v", chunkBytes, got, refHooked)
		}
		if hook.updates != refHook.updates {
			t.Fatalf("chunk %d hooked: %d hook updates, in-memory replay saw %d", chunkBytes, hook.updates, refHook.updates)
		}
	}
}

// countingHook counts update_index deliveries.
type countingHook struct{ updates int }

func (h *countingHook) UpdateIndex(v graph.V) { h.updates++ }

// TestContainerWindowedAccounting pins the out-of-core bound: replaying a
// many-chunk container under a small window must never hold more than
// window x chunk payload bytes resident, far below the total stream size.
func TestContainerWindowedAccounting(t *testing.T) {
	tr := encodeRandomLLCStream(11, 20000)
	var buf bytes.Buffer
	if err := WriteLLCContainer(tr, &buf, testMeta(), 256); err != nil {
		t.Fatalf("WriteLLCContainer: %v", err)
	}
	r, err := OpenContainer(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatalf("OpenContainer: %v", err)
	}
	if r.Chunks() < 16 {
		t.Fatalf("only %d chunks; the accounting test needs a long stream", r.Chunks())
	}
	const window = 3
	sim := NewSim(cache.NewHierarchy(tinyConfig()), nil)
	if err := r.ReplayLLC(sim, ReplayOptions{Workers: 2, Window: window}); err != nil {
		t.Fatalf("ReplayLLC: %v", err)
	}
	peak := r.MaxResidentBytes()
	if peak == 0 {
		t.Fatal("accounting recorded no resident bytes")
	}
	if bound := int64(window) * r.MaxChunkBytes(); peak > bound {
		t.Fatalf("peak resident %d bytes exceeds the window bound %d (window %d x max chunk %d)",
			peak, bound, window, r.MaxChunkBytes())
	}
	if total := r.PayloadBytes(); peak*2 > total {
		t.Fatalf("peak resident %d bytes is not out-of-core against the %d-byte stream", peak, total)
	}
}

// TestContainerRejectsCorruption drives the open/verify error paths: a
// container damaged anywhere — truncated, bit-flipped in a chunk, in the
// footer, or in the trailer — must come back as an error naming the
// problem, never a panic or a silent misread.
func TestContainerRejectsCorruption(t *testing.T) {
	tr := encodeRandomLLCStream(7, 1500)
	var buf bytes.Buffer
	if err := WriteLLCContainer(tr, &buf, testMeta(), 128); err != nil {
		t.Fatalf("WriteLLCContainer: %v", err)
	}
	valid := buf.Bytes()
	open := func(data []byte) (*Reader, error) {
		return OpenContainer(bytes.NewReader(data), int64(len(data)))
	}
	mutate := func(at int) []byte {
		m := append([]byte{}, valid...)
		m[at] ^= 0xff
		return m
	}

	if _, err := open(nil); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Errorf("empty container: %v, want truncated error", err)
	}
	if _, err := open(valid[:containerHeaderLen]); err == nil {
		t.Error("header-only container was accepted")
	}
	if _, err := open(valid[:len(valid)-3]); err == nil {
		t.Error("container with a truncated trailer was accepted")
	}
	if _, err := open(mutate(1)); err == nil || !strings.Contains(err.Error(), "not a container") {
		t.Errorf("bad magic: %v, want not-a-container error", err)
	}
	{
		m := append([]byte{}, valid...)
		m[2]++ // container version bump
		if _, err := open(m); err == nil || !strings.Contains(err.Error(), "format version") {
			t.Errorf("future container version: %v, want format-version error", err)
		}
	}
	{
		m := append([]byte{}, valid...)
		m[4]++ // inner stream version bump
		if _, err := open(m); err == nil || !strings.Contains(err.Error(), "inner stream version") {
			t.Errorf("future inner version: %v, want inner-version error", err)
		}
	}
	if _, err := open(mutate(len(valid) - 1)); err == nil {
		t.Error("container with a corrupt trailer kind was accepted")
	}
	if _, err := open(mutate(len(valid) - containerTrailerLen)); err == nil {
		t.Error("container with a corrupt footer offset was accepted")
	}

	// Chunk payload corruption is caught at verify/replay time, not open
	// (the footer frames still check out).
	r, err := open(valid)
	if err != nil {
		t.Fatalf("OpenContainer on the valid container: %v", err)
	}
	if err := r.Verify(); err != nil {
		t.Fatalf("Verify on the valid container: %v", err)
	}
	damaged := mutate(containerHeaderLen + 32) // inside the first chunk's payload
	rd, err := open(damaged)
	if err != nil {
		t.Fatalf("OpenContainer with a damaged chunk body: %v (damage is pre-footer, open must succeed)", err)
	}
	if err := rd.Verify(); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Errorf("Verify on a damaged chunk: %v, want CRC error", err)
	}
	sim := NewSim(cache.NewHierarchy(tinyConfig()), nil)
	if err := rd.ReplayLLC(sim, ReplayOptions{Workers: 2}); err == nil {
		t.Error("ReplayLLC replayed a chunk whose CRC does not match")
	}
}

// TestContainerRechunk pins Rechunk: rewriting under a different chunk
// target preserves the event sequence, the stream totals, and the
// metadata, and the result verifies clean.
func TestContainerRechunk(t *testing.T) {
	tr := encodeRandomLLCStream(9, 2500)
	var small bytes.Buffer
	if err := WriteLLCContainer(tr, &small, testMeta(), 96); err != nil {
		t.Fatalf("WriteLLCContainer: %v", err)
	}
	rs, err := OpenContainer(bytes.NewReader(small.Bytes()), int64(small.Len()))
	if err != nil {
		t.Fatalf("OpenContainer(small): %v", err)
	}
	var big bytes.Buffer
	if err := rs.Rechunk(&big, 4096); err != nil {
		t.Fatalf("Rechunk: %v", err)
	}
	rb, err := OpenContainer(bytes.NewReader(big.Bytes()), int64(big.Len()))
	if err != nil {
		t.Fatalf("OpenContainer(rechunked): %v", err)
	}
	if rb.Chunks() >= rs.Chunks() {
		t.Fatalf("rechunk to a larger target kept %d chunks (source had %d)", rb.Chunks(), rs.Chunks())
	}
	if rb.Meta() != rs.Meta() || rb.Events() != rs.Events() {
		t.Fatalf("rechunk changed identity: meta %+v events %d, want %+v / %d", rb.Meta(), rb.Events(), rs.Meta(), rs.Events())
	}
	if err := rb.Verify(); err != nil {
		t.Fatalf("Verify(rechunked): %v", err)
	}
	a := NewSim(cache.NewHierarchy(tinyConfig()), nil)
	b := NewSim(cache.NewHierarchy(tinyConfig()), nil)
	if err := rs.ReplayLLC(a, ReplayOptions{Workers: 1}); err != nil {
		t.Fatalf("ReplayLLC(small): %v", err)
	}
	if err := rb.ReplayLLC(b, ReplayOptions{}); err != nil {
		t.Fatalf("ReplayLLC(rechunked): %v", err)
	}
	if countersOf(a) != countersOf(b) {
		t.Fatal("rechunked container replays differently from its source")
	}
}

// TestChunkedEncoderRequiresFinish pins the finalize contract both ways:
// Trace on a chunked encoder and Finish on an in-memory one are
// programming errors, and a container sealed before its encoder is an
// error, not a torn file.
func TestChunkedEncoderRequiresFinish(t *testing.T) {
	var buf bytes.Buffer
	cw, err := NewContainerWriter(&buf, KindTrace, testMeta())
	if err != nil {
		t.Fatalf("NewContainerWriter: %v", err)
	}
	if err := cw.Finish(); err == nil || !strings.Contains(err.Error(), "before its encoder") {
		t.Fatalf("Finish before the encoder's Finish: %v, want finished-before-encoder error", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Trace on a chunked encoder did not panic")
			}
		}()
		var buf2 bytes.Buffer
		cw2, _ := NewContainerWriter(&buf2, KindTrace, testMeta())
		NewChunkedEncoder(cw2).Trace()
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Finish on an in-memory encoder did not panic")
			}
		}()
		_ = NewEncoder().Finish()
	}()
	if _, err := NewContainerWriter(&buf, 'x', testMeta()); err == nil {
		t.Error("NewContainerWriter accepted an unknown kind")
	}
}
