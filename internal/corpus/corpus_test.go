package corpus

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"popt/internal/cache"
	"popt/internal/graph"
	"popt/internal/mem"
	"popt/internal/trace"
)

func testKey() Key {
	return Key{Workload: "URAND-16k", Schedule: "PR/pull", Scale: "tiny", Seed: 7}
}

// recordTestStream writes a small deterministic LLC stream through cw —
// the shape every Publish in these tests records, so racing publishers
// produce byte-identical files like the real (determinism-gated) recorder
// does.
func recordTestStream(cw *trace.ContainerWriter) error {
	cw.SetChunkBytes(64) // several chunks even for this small stream
	enc := trace.NewChunkedLLCEncoder(cw)
	addr := uint64(1 << 20)
	for i := 0; i < 500; i++ {
		if i%100 == 0 {
			enc.SetVertex(graph.V(500 + i))
		}
		enc.LLCAccess(mem.Access{Addr: addr, PC: uint16(i % 7), Write: i%3 == 0})
		addr += 64 * uint64(i%5+1)
		if i%50 == 0 {
			enc.LLCWriteback(addr ^ 0xfff)
		}
	}
	return enc.Finish(9999, cache.Stats{Accesses: 42}, cache.Stats{Accesses: 13})
}

func TestPublishLookupRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	k := testKey()
	if e := s.Lookup(k); e != nil {
		t.Fatalf("Lookup on an empty corpus returned %+v", e)
	}
	e, err := s.Publish(k, trace.KindLLC, recordTestStream)
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if e.Key != k || e.Reader().Kind() != trace.KindLLC {
		t.Fatalf("published entry %+v does not match the key", e.Key)
	}
	if err := e.Reader().Verify(); err != nil {
		t.Fatalf("Verify on a fresh entry: %v", err)
	}
	if got := s.Lookup(k); got != e {
		t.Fatalf("Lookup did not return the cached entry (got %p, want %p)", got, e)
	}
	// A second store over the same directory (a separate process, in
	// effect) sees the same bytes.
	s2, err := Open(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	e2, err := s2.Get(k)
	if err != nil {
		t.Fatalf("Get from a second store: %v", err)
	}
	if e2.Size != e.Size || e2.Reader().StreamCRC() != e.Reader().StreamCRC() {
		t.Fatal("second store reads different bytes")
	}
}

// TestConcurrentPublishSameKey races two goroutines recording the same
// key: both must succeed, and both must read back identical bytes —
// rename's atomicity plus recording determinism is the whole protocol.
// Runs under the CI race job.
func TestConcurrentPublishSameKey(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	k := testKey()
	var wg sync.WaitGroup
	entries := make([]*Entry, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			entries[i], errs[i] = s.Publish(k, trace.KindLLC, recordTestStream)
		}(i)
	}
	wg.Wait()
	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatalf("publisher %d: %v", i, errs[i])
		}
	}
	// Both publishers read the same (cached, post-rename) entry, and the
	// file on disk is exactly what a solo recording writes.
	if entries[0] != entries[1] {
		t.Fatalf("racing publishers got different entries: %p vs %p", entries[0], entries[1])
	}
	got, err := os.ReadFile(entries[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	cw, err := trace.NewContainerWriter(&want, trace.KindLLC, k.Meta())
	if err != nil {
		t.Fatal(err)
	}
	if err := recordTestStream(cw); err != nil {
		t.Fatal(err)
	}
	if err := cw.Finish(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("published file (%d bytes) differs from a solo recording (%d bytes)", len(got), want.Len())
	}
	if err := entries[0].Reader().Verify(); err != nil {
		t.Fatalf("Verify after the race: %v", err)
	}
	// No temp litter: the losing rename source was consumed by its own
	// rename (last-wins), not abandoned.
	des, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if de.Name() != filepath.Base(entries[0].Path) {
			t.Fatalf("unexpected corpus file %q after the race", de.Name())
		}
	}
}

// TestTornTempNeverVisible is the crash-safety contract: a recording that
// dies mid-write (simulated by a hand-planted temp file) is invisible to
// Lookup and Manifest, and a failed record callback leaves nothing under
// the published name.
func TestTornTempNeverVisible(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	k := testKey()

	// A torn temp: the prefix of a real recording, never renamed.
	torn := filepath.Join(s.Dir(), ".tmp-999-1-"+k.filename())
	if err := os.WriteFile(torn, []byte("pc\x01l\x01partial garbage"), 0o666); err != nil {
		t.Fatal(err)
	}
	if e := s.Lookup(k); e != nil {
		t.Fatalf("Lookup sees a torn temp file: %+v", e)
	}
	items, err := s.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 0 {
		t.Fatalf("Manifest lists %d item(s) with only a torn temp on disk", len(items))
	}

	// A failed recording must clean its temp and publish nothing.
	boom := errors.New("recorder crashed")
	if _, err := s.Publish(k, trace.KindLLC, func(cw *trace.ContainerWriter) error {
		enc := trace.NewChunkedLLCEncoder(cw)
		enc.LLCAccess(mem.Access{Addr: 4096})
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("Publish with a failing recorder: %v, want the recorder's error", err)
	}
	if e := s.Lookup(k); e != nil {
		t.Fatal("a failed Publish left a file under the published name")
	}
	des, _ := os.ReadDir(s.Dir())
	for _, de := range des {
		if de.Name() != filepath.Base(torn) {
			t.Fatalf("failed Publish left %q behind", de.Name())
		}
	}

	// Damage under the published name self-heals: Lookup misses, Publish
	// renames a good recording over it.
	bad := filepath.Join(s.Dir(), k.filename())
	if err := os.WriteFile(bad, []byte("not a container"), 0o666); err != nil {
		t.Fatal(err)
	}
	if e := s.Lookup(k); e != nil {
		t.Fatal("Lookup accepted a damaged published file")
	}
	items, err = s.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 || items[0].Err == nil {
		t.Fatalf("Manifest must flag the damaged file, got %+v", items)
	}
	e, err := s.Publish(k, trace.KindLLC, recordTestStream)
	if err != nil {
		t.Fatalf("Publish over a damaged file: %v", err)
	}
	if err := e.Reader().Verify(); err != nil {
		t.Fatalf("Verify after self-heal: %v", err)
	}
}

// TestManifestAndKeyNaming pins the filename scheme: distinct keys that
// sanitize identically still get distinct files (the hash suffix), and
// Manifest reads keys back out of container metadata, not filenames.
func TestManifestAndKeyNaming(t *testing.T) {
	a := Key{Workload: "PR/pull", Schedule: "x", Scale: "tiny", Seed: 1}
	b := Key{Workload: "PR_pull", Schedule: "x", Scale: "tiny", Seed: 1}
	if a.filename() == b.filename() {
		t.Fatalf("keys %+v and %+v alias filename %q", a, b, a.filename())
	}
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, k := range []Key{a, b} {
		if _, err := s.Publish(k, trace.KindLLC, recordTestStream); err != nil {
			t.Fatalf("Publish %+v: %v", k, err)
		}
	}
	items, err := s.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 {
		t.Fatalf("Manifest lists %d items, want 2", len(items))
	}
	seen := map[Key]bool{}
	for _, it := range items {
		if it.Err != nil {
			t.Fatalf("item %q: %v", it.File, it.Err)
		}
		if it.Kind != trace.KindLLC || it.Events == 0 || it.Chunks == 0 {
			t.Fatalf("item %q summary %+v is empty", it.File, it)
		}
		seen[it.Key] = true
	}
	if !seen[a] || !seen[b] {
		t.Fatalf("Manifest keys %v do not cover %+v and %+v", seen, a, b)
	}
	// A file renamed to another key's name is rejected by the meta check.
	if err := os.Rename(filepath.Join(s.Dir(), a.filename()), filepath.Join(s.Dir(), testKey().filename())); err != nil {
		t.Fatal(err)
	}
	if e := s.Lookup(testKey()); e != nil {
		t.Fatal("Lookup accepted a file whose metadata records another key")
	}
}
