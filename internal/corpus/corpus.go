// Package corpus manages the persistent trace corpus: a directory of
// chunked container files (internal/trace's on-disk stream form) keyed by
// the tuple that makes a recording reproducible — workload, schedule,
// scale, seed. The sweep engine records each stream once and every later
// process replays it out of core, so the corpus is the boundary where
// bytes outlive the process: publication is atomic (write to a hidden
// temp file, fsync, then rename), lookups self-heal (a damaged or
// unreadable file is a miss, and the next Publish renames a fresh
// recording over it), and open entries are shared — one *trace.Reader per
// file serves every sweep cell concurrently, which is safe because a
// Reader is immutable after open.
//
// Because recording is deterministic (the determinism gate pins the
// packages that feed it), two racing publishers of the same key write
// byte-identical files; whichever rename lands last is indistinguishable
// from the other, so the race needs no coordination beyond rename's
// atomicity. The corpus concurrency tests pin exactly that.
package corpus

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"popt/internal/trace"
)

// Ext is the corpus file extension.
const Ext = ".poptc"

// Key identifies one recorded stream: the workload (graph) name, the
// schedule (kernel/variant) name, the input scale, and the generator
// seed. Keys embed in filenames and in the container's metadata frame;
// Get cross-checks the two so a renamed file cannot impersonate another
// key.
type Key struct {
	Workload string
	Schedule string
	Scale    string
	Seed     int64
}

// Meta returns the container metadata form of the key.
func (k Key) Meta() trace.Meta {
	return trace.Meta{Workload: k.Workload, Schedule: k.Schedule, Scale: k.Scale, Seed: k.Seed}
}

// KeyOf returns the key recorded in container metadata.
func KeyOf(m trace.Meta) Key {
	return Key{Workload: m.Workload, Schedule: m.Schedule, Scale: m.Scale, Seed: m.Seed}
}

// filename renders the key as a corpus-relative filename: the sanitized
// human-readable parts for browsability, plus an FNV-64a hash of the
// exact tuple so sanitization collisions cannot alias two keys.
func (k Key) filename() string {
	h := fnv.New64a()
	for _, part := range []string{k.Workload, k.Schedule, k.Scale} {
		io.WriteString(h, part)
		h.Write([]byte{0})
	}
	io.WriteString(h, strconv.FormatInt(k.Seed, 10))
	return fmt.Sprintf("%s__%s__%s__%d-%016x%s",
		sanitize(k.Workload), sanitize(k.Schedule), sanitize(k.Scale), k.Seed, h.Sum64(), Ext)
}

// sanitize maps a key part onto the filename-safe alphabet.
func sanitize(s string) string {
	if s == "" {
		return "_"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '-':
			return r
		}
		return '_'
	}, s)
}

// Entry is one opened corpus file. Entries are immutable once Get returns
// them and are shared across goroutines; the embedded Reader carries the
// concurrency contract.
//
//popt:frozen
type Entry struct {
	Key  Key
	Path string
	Size int64

	r *trace.Reader
}

// Reader returns the entry's container reader.
func (e *Entry) Reader() *trace.Reader { return e.r }

// Store is a corpus directory plus its cache of open entries.
type Store struct {
	dir string

	mu      sync.Mutex
	open    map[string]*Entry //popt:guardedby mu
	entries []*Entry          //popt:guardedby mu (close order; maps must not be ranged in sim packages)

	tmpSeq atomic.Uint64
}

// Open opens (creating if needed) the corpus directory at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	return &Store{dir: dir, open: make(map[string]*Entry)}, nil
}

// Dir returns the corpus directory.
func (s *Store) Dir() string { return s.dir }

// Get opens the entry for k, validating the container's footer frames and
// checking that its recorded metadata matches the key. Entries are cached:
// later Gets of the same key share the open file and Reader.
func (s *Store) Get(k Key) (*Entry, error) {
	name := k.filename()
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.open[name]; ok {
		return e, nil
	}
	path := filepath.Join(s.dir, name)
	// OpenContainerFile prefers a zero-copy mmap of the container and
	// falls back to bounded-window preads; the Reader owns whichever
	// resource backs it and Store.Close releases them all.
	r, err := trace.OpenContainerFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, err
		}
		return nil, fmt.Errorf("corpus: %s: %w", name, err)
	}
	if got := KeyOf(r.Meta()); got != k {
		r.Close()
		return nil, fmt.Errorf("corpus: %s records key %+v, lookup asked for %+v", name, got, k)
	}
	e := &Entry{Key: k, Path: path, Size: r.Size(), r: r}
	s.open[name] = e
	s.entries = append(s.entries, e)
	return e, nil
}

// Lookup returns the entry for k, or nil if it is absent or unreadable: a
// damaged file is a miss, not an error, because the caller's fallback is
// to re-record and Publish — which atomically replaces the damaged bytes.
func (s *Store) Lookup(k Key) *Entry {
	e, err := s.Get(k)
	if err != nil {
		return nil
	}
	return e
}

// Publish records a stream for k by handing record a container writer
// aimed at a hidden temp file, then atomically renames the sealed file
// into place. A torn or failed recording leaves at most a temp file
// (removed on the error path, invisible to Lookup and Manifest either
// way) — never a partial file under the published name. Racing publishers
// of the same key each write their own temp file and rename last-wins;
// determinism makes the outcomes byte-identical. Returns the opened entry.
func (s *Store) Publish(k Key, kind byte, record func(cw *trace.ContainerWriter) error) (*Entry, error) {
	name := k.filename()
	tmp := filepath.Join(s.dir, fmt.Sprintf(".tmp-%d-%d-%s", os.Getpid(), s.tmpSeq.Add(1), name))
	f, err := os.Create(tmp)
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	fail := func(err error) (*Entry, error) {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	cw, err := trace.NewContainerWriter(bw, kind, k.Meta())
	if err != nil {
		return fail(err)
	}
	if err := record(cw); err != nil {
		return fail(err)
	}
	if err := cw.Finish(); err != nil {
		return fail(fmt.Errorf("corpus: recording %s: %w", name, err))
	}
	if err := bw.Flush(); err != nil {
		return fail(fmt.Errorf("corpus: %w", err))
	}
	// Sync before rename: the published name must never point at bytes
	// that could still be lost to a crash (the torn-temp test's contract).
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("corpus: %w", err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return nil, fmt.Errorf("corpus: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, name)); err != nil {
		os.Remove(tmp)
		return nil, fmt.Errorf("corpus: %w", err)
	}
	// A racing publisher may have opened its (byte-identical) file under
	// this name already; Get returns the cached entry in that case, which
	// still reads good bytes — rename replaced the directory entry, not
	// the open file.
	return s.Get(k)
}

// Item is one Manifest row. Files that fail to open are listed with Err
// set rather than dropped, so `popttrace ls` surfaces damage instead of
// hiding it.
type Item struct {
	Key    Key
	File   string
	Size   int64
	Kind   byte
	Events uint64
	Chunks int
	Err    error
}

// Manifest lists the corpus directory in name order, reading each
// container's footer (not its chunks; Verify walks those). Hidden files —
// in-flight temp recordings — are skipped.
func (s *Store) Manifest() ([]Item, error) {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	var items []Item
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || strings.HasPrefix(name, ".") || !strings.HasSuffix(name, Ext) {
			continue
		}
		it := Item{File: name}
		r, closer, err := OpenFile(filepath.Join(s.dir, name))
		if err != nil {
			it.Err = err
			items = append(items, it)
			continue
		}
		it.Key = KeyOf(r.Meta())
		it.Size = r.Size()
		it.Kind = r.Kind()
		it.Events = r.Events()
		it.Chunks = r.Chunks()
		closer.Close()
		items = append(items, it)
	}
	return items, nil
}

// OpenFile opens a single container file outside any store — the
// standalone-path form popttrace's info/verify/rechunk subcommands use.
// The reader is its own closer (it owns the mapping or descriptor behind
// it); the caller closes it when done.
func OpenFile(path string) (*trace.Reader, io.Closer, error) {
	r, err := trace.OpenContainerFile(path)
	if err != nil {
		return nil, nil, err
	}
	return r, r, nil
}

// Close releases every open entry. The store must not be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, e := range s.entries {
		if err := e.r.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.entries = nil
	s.open = make(map[string]*Entry)
	return first
}
