package sched

import (
	"popt/internal/graph"
	"popt/internal/kernels"
	"popt/internal/mem"
)

// This file builds the update-phase workloads of Fig. 14: the dominant
// Binning phase of software Propagation Blocking (Beamer et al., IPDPS
// 2017) and the direct scatter-update phase PHI accelerates. Both push one
// PageRank-style contribution per edge; they differ in where the write
// lands (sequential per-bin cursors vs. random dstData).

// UpdatePhase is a simulatable update phase over a graph.
type UpdatePhase struct {
	Name  string
	G     *graph.Graph
	Space *mem.Space
	// DstData is the scatter target; irregular for the scatter phase (PHI
	// and P-OPT manage it), nil-equivalent streaming role for binning.
	DstData *mem.Array
	// Bins is the binning buffer (binning phase only).
	Bins *mem.Array
	// NumBins is the bin count (binning phase only).
	NumBins int

	run func(r *kernels.Runner)
}

// Run simulates the phase.
func (u *UpdatePhase) Run(r *kernels.Runner) { u.run(r) }

// NewScatterPhase builds the direct scatter-update phase: for every edge
// (src, dst), read contrib[src] (streaming by src) and update
// dstData[dst] (irregular). readModifyWrite selects whether each update
// loads the old value first; PHI's in-cache aggregation removes that read,
// so PHI setups run with readModifyWrite=false plus a PHIBuffer filter.
func NewScatterPhase(g *graph.Graph, readModifyWrite bool) *UpdatePhase {
	n := g.NumVertices()
	sp := mem.NewSpace()
	contrib := sp.AllocBytes("contrib", n, 4, false)
	dst := sp.AllocBytes("dstData", n, 4, true)
	oa := sp.AllocBytes("csrOA", n+1, 8, false)
	na := sp.AllocBytes("csrNA", g.NumEdges(), 4, false)
	u := &UpdatePhase{Name: "Scatter", G: g, Space: sp, DstData: dst}
	u.run = func(r *kernels.Runner) {
		r.StartIteration()
		csrIt := g.Out.IterFrom(0)
		for src := 0; src < n; src++ {
			r.SetVertex(graph.V(src))
			r.Load(oa, src, kernels.PCOffsets)
			r.Load(contrib, src, kernels.PCStreamRead)
			dsts, lo := csrIt.Next()
			for i, d := range dsts {
				r.Load(na, int(lo)+i, kernels.PCNeighbors)
				if readModifyWrite {
					r.Load(dst, int(d), kernels.PCIrregRead)
				}
				r.Store(dst, int(d), kernels.PCIrregWrite)
				r.Tick(2)
			}
		}
	}
	return u
}

// NewBinningPhase builds PB's binning phase: contributions append to
// numBins sequential bins keyed by destination range. The bins buffer
// holds one 8 B (dst, value) record per edge.
func NewBinningPhase(g *graph.Graph, numBins int) *UpdatePhase {
	n := g.NumVertices()
	m := g.NumEdges()
	if numBins < 1 {
		numBins = 1
	}
	sp := mem.NewSpace()
	contrib := sp.AllocBytes("contrib", n, 4, false)
	bins := sp.AllocBytes("bins", m, 8, false)
	oa := sp.AllocBytes("csrOA", n+1, 8, false)
	na := sp.AllocBytes("csrNA", m, 4, false)

	binRange := (n + numBins - 1) / numBins
	// Bin start offsets by counting destinations per bin.
	binStart := make([]int, numBins+1)
	countIt := g.Out.IterFrom(0)
	for u := 0; u < n; u++ {
		ds, _ := countIt.Next()
		for _, d := range ds {
			binStart[int(d)/binRange+1]++
		}
	}
	for b := 0; b < numBins; b++ {
		binStart[b+1] += binStart[b]
	}

	u := &UpdatePhase{Name: "PB-Binning", G: g, Space: sp, Bins: bins, NumBins: numBins}
	u.run = func(r *kernels.Runner) {
		cursor := make([]int, numBins)
		r.StartIteration()
		csrIt := g.Out.IterFrom(0)
		for src := 0; src < n; src++ {
			r.SetVertex(graph.V(src))
			r.Load(oa, src, kernels.PCOffsets)
			r.Load(contrib, src, kernels.PCStreamRead)
			ds, lo := csrIt.Next()
			for i, d := range ds {
				r.Load(na, int(lo)+i, kernels.PCNeighbors)
				b := int(d) / binRange
				r.Store(bins, binStart[b]+cursor[b], kernels.PCIrregWrite)
				cursor[b]++
				r.Tick(2)
			}
		}
	}
	return u
}
