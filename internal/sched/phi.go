package sched

import (
	"container/list"

	"popt/internal/cache"
	"popt/internal/mem"
)

// PHIBuffer models PHI (Mukkara et al., MICRO 2019): commutative scatter
// updates are aggregated in a private-cache-sized coalescing buffer; only
// when an aggregated line is displaced does a single memory update issue.
// Power-law graphs repeatedly update hub vertices, so most updates coalesce
// in-buffer; uniform-degree graphs see little aggregation and PHI
// degenerates toward plain scatter (the Fig. 14 observation).
//
// The buffer installs as a Runner.Filter: writes to the target array are
// absorbed; evicted aggregates issue as writes into the hierarchy.
type PHIBuffer struct {
	h      *cache.Hierarchy
	target *mem.Array
	cap    int
	lru    *list.List               // of uint64 line addresses, front = MRU
	index  map[uint64]*list.Element // line addr -> lru node

	// Absorbed counts updates coalesced in-buffer; Spills counts
	// aggregated lines written through to the hierarchy.
	Absorbed uint64
	Spills   uint64
}

// NewPHIBuffer builds a coalescing buffer of capLines cache lines in front
// of h, intercepting writes to target.
func NewPHIBuffer(h *cache.Hierarchy, target *mem.Array, capLines int) *PHIBuffer {
	return &PHIBuffer{h: h, target: target, cap: capLines, lru: list.New(), index: make(map[uint64]*list.Element)}
}

// Filter implements the kernels.Runner filter contract: it returns true
// when the access was absorbed by the buffer.
func (p *PHIBuffer) Filter(acc mem.Access) bool {
	if !acc.Write || !p.target.Contains(acc.Addr) {
		return false
	}
	la := acc.LineAddr()
	if e, ok := p.index[la]; ok {
		p.lru.MoveToFront(e)
		p.Absorbed++
		return true
	}
	p.index[la] = p.lru.PushFront(la)
	if p.lru.Len() > p.cap {
		victim := p.lru.Back()
		p.lru.Remove(victim)
		va := victim.Value.(uint64)
		delete(p.index, va)
		p.spill(va)
	}
	return true
}

// spill writes an aggregated line's update through the hierarchy.
func (p *PHIBuffer) spill(lineAddr uint64) {
	p.Spills++
	p.h.Access(mem.Access{Addr: lineAddr, Write: true, PC: 0x7F})
}

// Flush drains every pending aggregate (end of phase).
func (p *PHIBuffer) Flush() {
	for e := p.lru.Front(); e != nil; e = e.Next() {
		p.spill(e.Value.(uint64))
	}
	p.lru.Init()
	p.index = make(map[uint64]*list.Element)
}

// CoalesceRate returns the fraction of updates absorbed without a spill.
func (p *PHIBuffer) CoalesceRate() float64 {
	total := p.Absorbed + p.Spills
	if total == 0 {
		return 0
	}
	return float64(p.Absorbed) / float64(total)
}
