package sched

import (
	"testing"

	"popt/internal/cache"
	"popt/internal/graph"
	"popt/internal/kernels"
	"popt/internal/mem"
)

func TestBDFSOrderIsPermutation(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Kron(10, 4, 1),
		graph.Mesh(15, 17),
		graph.Uniform(500, 3000, 2),
	} {
		order := BDFSOrder(g, 16)
		if !IsPermutation(order, g.NumVertices()) {
			t.Errorf("%s: BDFS order is not a permutation", g.Name)
		}
	}
}

func TestBDFSDepthBoundZeroIsIdentity(t *testing.T) {
	g := graph.Uniform(100, 500, 3)
	order := BDFSOrder(g, 0)
	for i, v := range order {
		if int(v) != i {
			t.Fatal("depth bound 0 must yield ID order")
		}
	}
}

func TestBDFSFollowsCommunities(t *testing.T) {
	// On a community graph, consecutive BDFS positions should fall in the
	// same community far more often than ID-order adjacency would for a
	// random permutation baseline... ID order is already communal here, so
	// instead verify BDFS clusters neighbors: the average |order-position
	// distance| between endpoints of an edge should shrink versus a
	// uniform random graph's BDFS.
	g := graph.Community(2048, 8, 64, 0.9, 4)
	order := BDFSOrder(g, 8)
	pos := make([]int, g.NumVertices())
	for i, v := range order {
		pos[v] = i
	}
	var withinCommunity, total int
	for i := 1; i < len(order); i++ {
		if int(order[i])/64 == int(order[i-1])/64 {
			withinCommunity++
		}
		total++
	}
	if frac := float64(withinCommunity) / float64(total); frac < 0.5 {
		t.Errorf("BDFS community coherence = %.2f, want >= 0.5 on a community graph", frac)
	}
	_ = pos
}

func TestIsPermutationRejectsBadSchedules(t *testing.T) {
	if IsPermutation([]graph.V{0, 1, 1}, 3) {
		t.Error("duplicate entry accepted")
	}
	if IsPermutation([]graph.V{0, 1}, 3) {
		t.Error("short schedule accepted")
	}
	if IsPermutation([]graph.V{0, 1, 3}, 3) {
		t.Error("out-of-range entry accepted")
	}
}

func newHierarchy() *cache.Hierarchy {
	return cache.NewHierarchy(cache.Config{
		L1Size: 1 << 10, L1Ways: 4,
		L2Size: 4 << 10, L2Ways: 4,
		LLCSize: 16 << 10, LLCWays: 16,
		LLCPolicy: func() cache.Policy { return cache.NewDRRIP(1) },
	})
}

func TestPHIBufferCoalesces(t *testing.T) {
	h := newHierarchy()
	sp := mem.NewSpace()
	target := sp.AllocBytes("dst", 1024, 4, true)
	phi := NewPHIBuffer(h, target, 8)
	// 100 updates to the same element: 1 buffered line, 99 absorbed.
	for i := 0; i < 100; i++ {
		if !phi.Filter(mem.Access{Addr: target.Addr(0), Write: true}) {
			t.Fatal("write to target must be intercepted")
		}
	}
	if phi.Absorbed != 99 || phi.Spills != 0 {
		t.Fatalf("absorbed=%d spills=%d, want 99/0", phi.Absorbed, phi.Spills)
	}
	phi.Flush()
	if phi.Spills != 1 {
		t.Fatalf("flush spills = %d, want 1", phi.Spills)
	}
	if h.L1.Stats.Accesses != 1 {
		t.Fatalf("hierarchy saw %d accesses, want 1 spill", h.L1.Stats.Accesses)
	}
}

func TestPHIBufferEvictsLRU(t *testing.T) {
	h := newHierarchy()
	sp := mem.NewSpace()
	target := sp.AllocBytes("dst", 4096, 4, true)
	phi := NewPHIBuffer(h, target, 4)
	// Touch 6 distinct lines: 2 spills of the two least recent.
	for i := 0; i < 6; i++ {
		phi.Filter(mem.Access{Addr: target.Addr(i * 16), Write: true})
	}
	if phi.Spills != 2 {
		t.Fatalf("spills = %d, want 2", phi.Spills)
	}
}

func TestPHIIgnoresReadsAndForeignWrites(t *testing.T) {
	h := newHierarchy()
	sp := mem.NewSpace()
	target := sp.AllocBytes("dst", 64, 4, true)
	other := sp.AllocBytes("other", 64, 4, false)
	phi := NewPHIBuffer(h, target, 4)
	if phi.Filter(mem.Access{Addr: target.Addr(0)}) {
		t.Error("read must pass through")
	}
	if phi.Filter(mem.Access{Addr: other.Addr(0), Write: true}) {
		t.Error("foreign write must pass through")
	}
}

func TestPHICoalescesMoreOnSkewedGraphs(t *testing.T) {
	// The Fig. 14 mechanism: hub-heavy graphs coalesce updates, uniform
	// graphs don't.
	run := func(g *graph.Graph) float64 {
		h := newHierarchy()
		phase := NewScatterPhase(g, false)
		phi := NewPHIBuffer(h, phase.DstData, 256)
		r := kernels.NewRunner(h, nil)
		r.Sim().Filter = phi.Filter
		phase.Run(r)
		phi.Flush()
		return phi.CoalesceRate()
	}
	// dstData must dwarf the 256-line buffer for the contrast to show.
	kron := run(graph.Kron(15, 8, 5))
	urand := run(graph.Uniform(1<<15, 8<<15, 5))
	t.Logf("coalesce rates: KRON %.2f, URAND %.2f", kron, urand)
	if kron <= urand+0.1 {
		t.Errorf("coalesce rate: KRON %.2f should clearly exceed URAND %.2f", kron, urand)
	}
}

func TestBinningPhaseWritesEveryEdgeOnce(t *testing.T) {
	g := graph.Uniform(512, 4096, 7)
	phase := NewBinningPhase(g, 8)
	h := newHierarchy()
	r := kernels.NewRunner(h, nil)
	phase.Run(r)
	// Writes = edges (one bin record per edge) + nothing else writes.
	var writes uint64
	writes = h.L1.Stats.Accesses // loads: oa + contrib per vertex, na per edge; stores: per edge
	wantMin := uint64(g.NumEdges()) * 2
	if writes < wantMin {
		t.Fatalf("binning produced %d accesses, want >= %d", writes, wantMin)
	}
}

func TestBinningBeatsScatterOnDRAMTraffic(t *testing.T) {
	// PB's raison d'être: sequential bin writes produce less DRAM traffic
	// than random scatter read-modify-writes.
	g := graph.Uniform(1<<13, 8<<13, 9)
	traffic := func(phase *UpdatePhase) uint64 {
		h := newHierarchy()
		r := kernels.NewRunner(h, nil)
		phase.Run(r)
		return h.DRAMReads + h.DRAMWrites
	}
	scatter := traffic(NewScatterPhase(g, true))
	binning := traffic(NewBinningPhase(g, 16))
	if binning >= scatter {
		t.Errorf("binning DRAM traffic %d should undercut scatter %d", binning, scatter)
	}
}
