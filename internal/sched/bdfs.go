// Package sched implements the scheduling- and blocking-based locality
// systems the paper compares against (Section VII-C): HATS-style bounded
// depth-first traversal scheduling, software Propagation Blocking, and a
// PHI-style in-cache commutative-update coalescing model.
package sched

import "popt/internal/graph"

// BDFSOrder computes a Bounded Depth-First Search schedule over the
// vertices, the vertex-visit order HATS-BDFS (Mukkara et al., MICRO 2018)
// generates in hardware. Starting from each unvisited vertex in ID order,
// a DFS bounded at the given depth visits neighbors; community-structured
// graphs place related vertices consecutively, improving locality, while
// structure-less graphs gain nothing (Fig. 12b). The returned permutation
// is the outer-loop processing order for a pull kernel.
func BDFSOrder(g *graph.Graph, depthBound int) []graph.V {
	n := g.NumVertices()
	order := make([]graph.V, 0, n)
	visited := make([]bool, n)
	type frame struct {
		v     graph.V
		depth int
	}
	stack := make([]frame, 0, depthBound*4)
	var scratch []graph.V
	for root := 0; root < n; root++ {
		if visited[root] {
			continue
		}
		stack = append(stack[:0], frame{graph.V(root), 0})
		for len(stack) > 0 {
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if visited[f.v] {
				continue
			}
			visited[f.v] = true
			order = append(order, f.v)
			if f.depth >= depthBound {
				continue
			}
			// Push in reverse so low-ID neighbors are visited first.
			ns := g.Out.Neighbors(f.v, &scratch)
			for i := len(ns) - 1; i >= 0; i-- {
				if !visited[ns[i]] {
					stack = append(stack, frame{ns[i], f.depth + 1})
				}
			}
		}
	}
	return order
}

// IsPermutation reports whether order visits every vertex of an n-vertex
// graph exactly once (schedule validity).
func IsPermutation(order []graph.V, n int) bool {
	if len(order) != n {
		return false
	}
	seen := make([]bool, n)
	for _, v := range order {
		if int(v) >= n || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}
