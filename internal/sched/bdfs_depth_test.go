package sched

import (
	"testing"

	"popt/internal/cache"
	"popt/internal/graph"
	"popt/internal/kernels"
)

func TestBDFSDepthSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	g := graph.Community(1<<16, 14, 1024, 0.85, 43)
	base := func(order []graph.V) uint64 {
		w := kernels.NewPageRankOrdered(g, order)
		h := cache.NewHierarchy(cache.Scaled(func() cache.Policy { return cache.NewDRRIP(1) }))
		w.Run(kernels.NewRunner(h, nil))
		return h.LLC.Stats.Misses
	}
	seq := make([]graph.V, g.NumVertices())
	for i := range seq {
		seq[i] = graph.V(i)
	}
	seqMisses := base(seq)
	for _, d := range []int{1, 2, 3, 6, 16} {
		m := base(BDFSOrder(g, d))
		t.Logf("depth %2d: misses %d (seq %d) -> reduction %+.1f%%", d, m, seqMisses, 100*(float64(seqMisses)-float64(m))/float64(seqMisses))
	}
}
