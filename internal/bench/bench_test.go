package bench

import (
	"strings"
	"testing"

	"popt/internal/cache"
	"popt/internal/core"
	"popt/internal/graph"
	"popt/internal/kernels"
)

func TestRegistryCoversEveryTableAndFigure(t *testing.T) {
	want := []string{"fig2", "fig4", "fig7", "fig10", "fig11", "fig12a", "fig12b",
		"fig13", "fig14", "fig15", "fig16", "table1", "table2", "table3", "table4"}
	got := map[string]bool{}
	for _, e := range Registry() {
		got[e.ID] = true
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
	if len(got) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(got), len(want))
	}
	if _, ok := ByID("fig10"); !ok {
		t.Error("ByID lookup failed")
	}
	if _, ok := ByID("nonsense"); ok {
		t.Error("ByID accepted an unknown id")
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{ID: "x", Title: "t", Header: []string{"a", "bbbb"}, Notes: []string{"note"}}
	r.AddRow("1", "2")
	out := r.String()
	for _, want := range []string{"== x: t ==", "note", "a", "bbbb", "1"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q:\n%s", want, out)
		}
	}
}

// TestEveryExperimentRunsAtTinyScale smoke-tests all 15 experiments
// end-to-end: each must produce a non-empty report without panicking.
func TestEveryExperimentRunsAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	c := TinyConfig()
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep := e.Run(c)
			if rep == nil || len(rep.Rows) == 0 {
				t.Fatalf("%s produced an empty report", e.ID)
			}
			if rep.ID != e.ID {
				t.Errorf("report id %q != experiment id %q", rep.ID, e.ID)
			}
			t.Log("\n" + rep.String())
		})
	}
}

// TestHeadlineShape verifies the paper's central qualitative claims at
// tiny scale on a uniform graph: P-OPT beats DRRIP on misses, T-OPT bounds
// P-OPT, and the modeled speedups follow the same order.
func TestHeadlineShape(t *testing.T) {
	c := TinyConfig()
	g := graph.Uniform(1<<12, 8<<12, 7)

	lru := RunWorkload(c, kernels.NewPageRank(g), LRUSetup())
	drrip := RunWorkload(c, kernels.NewPageRank(g), DRRIPSetup())
	popt := RunWorkload(c, kernels.NewPageRank(g), POPTSetup(core.InterIntra, 8, true))
	topt := RunWorkload(c, kernels.NewPageRank(g), TOPTSetup())

	if !(topt.H.LLC.Stats.Misses < popt.H.LLC.Stats.Misses) {
		t.Errorf("T-OPT (%d misses) must bound P-OPT (%d)", topt.H.LLC.Stats.Misses, popt.H.LLC.Stats.Misses)
	}
	if !(popt.H.LLC.Stats.Misses < drrip.H.LLC.Stats.Misses) {
		t.Errorf("P-OPT (%d misses) must beat DRRIP (%d)", popt.H.LLC.Stats.Misses, drrip.H.LLC.Stats.Misses)
	}
	lruB := lru.Breakdown()
	spPOPT := lruB.Total() / popt.Breakdown().Total()
	spDRRIP := lruB.Total() / drrip.Breakdown().Total()
	if spPOPT <= spDRRIP {
		t.Errorf("P-OPT speedup %.2fx must exceed DRRIP %.2fx", spPOPT, spDRRIP)
	}
	t.Logf("speedups vs LRU: DRRIP %.2fx, P-OPT %.2fx, T-OPT %.2fx",
		spDRRIP, spPOPT, lruB.Total()/topt.Breakdown().Total())
}

func TestMissReductionMath(t *testing.T) {
	base := Result{H: hWithMisses(1000)}
	better := Result{H: hWithMisses(750)}
	if mr := MissReduction(base, better); mr != 25 {
		t.Errorf("MissReduction = %v, want 25", mr)
	}
}

func TestPOPTSetupNames(t *testing.T) {
	cases := map[string]Setup{
		"P-OPT":            POPTSetup(core.InterIntra, 8, true),
		"P-OPT-inter-only": POPTSetup(core.InterOnly, 8, true),
		"P-OPT-SE":         POPTSetup(core.SingleEpoch, 8, true),
		"P-OPT-4b":         POPTSetup(core.InterIntra, 4, false),
		"P-OPT-16b":        POPTSetup(core.InterIntra, 16, false),
	}
	for want, s := range cases { //lint:ordered (independent name assertions)
		if s.Name != want {
			t.Errorf("setup name = %q, want %q", s.Name, want)
		}
	}
}

// hWithMisses builds a hierarchy stub carrying only an LLC miss count.
func hWithMisses(misses uint64) *cache.Hierarchy {
	h := cache.NewHierarchy(cache.Config{
		L1Size: 1 << 10, L1Ways: 4,
		L2Size: 2 << 10, L2Ways: 4,
		LLCSize: 4 << 10, LLCWays: 4,
		LLCPolicy: func() cache.Policy { return cache.NewLRU() },
	})
	h.LLC.Stats.Misses = misses //lint:allow statsdiscipline (test fixture)
	return h
}

func TestReportCSV(t *testing.T) {
	r := &Report{ID: "x", Title: "t", Header: []string{"a", "b"}}
	r.AddRow("1", `va"l,ue`)
	got := r.CSV()
	want := "a,b\n1,\"va\"\"l,ue\"\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestAllBaselineSetupsBuild(t *testing.T) {
	g := graph.Uniform(512, 2048, 3)
	for _, s := range AllBaselineSetups() {
		res := RunWorkload(TinyConfig(), kernels.NewPageRank(g), s)
		if res.H.L1.Stats.Accesses == 0 {
			t.Errorf("%s: no simulation happened", s.Name)
		}
	}
}
