package bench

import (
	"testing"

	"popt/internal/core"
	"popt/internal/graph"
	"popt/internal/mem"
)

// TestMemStatsAnalyticSizes pins the -memstats analytic formulas to the
// real artifacts they describe: the Rereference Matrix table and merged
// transpose built for a suite graph must occupy exactly the bytes the
// report claims.
func TestMemStatsAnalyticSizes(t *testing.T) {
	for _, g := range graph.Suite(graph.ScaleTiny, 42) {
		n := g.NumVertices()
		epl := mem.LineSize / 4
		tab := core.BuildTable(&g.In, n, epl, core.InterIntra, 8)
		if got, want := tab.MemBytes(), rerefTableBytes(n); got != want {
			t.Errorf("%s: Table.MemBytes() = %d, analytic %d", g.Name, got, want)
		}
		lr := core.BuildLineRefs(&g.In, epl)
		if got, want := lr.MemBytes(), lineRefsBytes(n, g.NumEdges()); got != want {
			t.Errorf("%s: LineRefs.MemBytes() = %d, analytic %d", g.Name, got, want)
		}
	}
}

// TestMemStatsReport sanity-checks the report itself: one row per suite
// graph plus a TOTAL, and a compact-layout report must show a ratio
// above 1 while plain shows exactly the plain-equivalent bytes.
func TestMemStatsReport(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = graph.ScaleTiny
	cfg.Layout = graph.LayoutCompact
	rep := MemStats(cfg)
	if want := len(graph.Suite(graph.ScaleTiny, cfg.Seed)) + 1; len(rep.Rows) != want {
		t.Fatalf("report has %d rows, want %d", len(rep.Rows), want)
	}
	total := rep.Rows[len(rep.Rows)-1]
	if total[0] != "TOTAL" {
		t.Fatalf("last row is %q, want TOTAL", total[0])
	}
	if total[3] == total[4] {
		t.Errorf("compact TOTAL adjacency %q equals plain equivalent %q", total[3], total[4])
	}
	cfg.Layout = graph.LayoutPlain
	plain := MemStats(cfg)
	ptotal := plain.Rows[len(plain.Rows)-1]
	if ptotal[3] != ptotal[4] {
		t.Errorf("plain TOTAL adjacency %q != plain equivalent %q", ptotal[3], ptotal[4])
	}
}
