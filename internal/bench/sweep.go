package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// This file is the parallel sweep engine. The paper's evaluation is a
// large cross-product — 5 kernels × 5 graphs × a policy zoo across
// fig2..fig16 — and every (workload, setup) cell is an independent
// trace-driven simulation: it builds its own Workload (own address space),
// its own Hierarchy, and its own policy instance, sharing only immutable
// inputs (suite graphs, Rereference Matrix tables, merged transposes).
// The engine fans cells across a bounded worker pool and leaves assembly
// of the report to the driver, which walks its cell results in
// enumeration order — so the rendered report is byte-identical to a
// serial run at every worker count. The determinism sweep test enforces
// that at -j 1, -j 2, and -j GOMAXPROCS against a checked-in golden.

// Cell is one independent unit of sweep work. Run executes the cell and
// stores its result into caller-owned state (typically a slot of a
// results slice indexed like the cell list — per-slot writes need no
// locking). Run must not touch other cells' state or mutate anything
// shared; shared inputs are read-only by contract.
type Cell struct {
	// Key labels the cell in progress events and failure messages,
	// e.g. "fig2/KRON-12/DRRIP".
	Key string
	Run func()
}

// CellEvent reports one completed cell to a Progress callback.
type CellEvent struct {
	// Index is the cell's position in the submitted cell list.
	Index int
	// Done and Total are the completion count including this cell and the
	// sweep size.
	Done, Total int
	// Key echoes the cell's label.
	Key string
	// Elapsed is the cell's wall-clock execution time.
	Elapsed time.Duration
}

// PhaseEvent reports one completed cell sub-phase to a Config.PhaseProgress
// callback: the heartbeat between cell completions on large-scale runs.
type PhaseEvent struct {
	// Key identifies the work, e.g. "KRON-23/PR" (graph/stream) for a
	// record, plus the setup name for a replay.
	Key string
	// Phase names the sub-phase: "record" (live kernel execution plus
	// stream encode) or "replay" (trace-driven LLC-only simulation).
	Phase string
	// Elapsed is the phase's wall-clock execution time.
	Elapsed time.Duration
}

// phaseStart returns the phase timestamp, or the zero time when no
// PhaseProgress callback is installed (the common case pays no clock
// read).
func (c Config) phaseStart() time.Time {
	if c.PhaseProgress == nil {
		return time.Time{}
	}
	return time.Now() //lint:allow determinism (host-side progress timing, not simulated state)
}

// phaseDone emits one PhaseEvent if a callback is installed.
func (c Config) phaseDone(key, phase string, start time.Time) {
	if c.PhaseProgress != nil {
		c.PhaseProgress(PhaseEvent{Key: key, Phase: phase, Elapsed: time.Since(start)}) //lint:allow determinism (host-side progress timing)
	}
}

// Sweep executes independent cells on a bounded worker pool.
type Sweep struct {
	// Workers bounds the pool; <= 0 means GOMAXPROCS.
	Workers int
	// Progress, when non-nil, receives one event per completed cell.
	// Events arrive in completion order (scheduling-dependent), never
	// concurrently; report content must not depend on them.
	Progress func(CellEvent)

	mu   sync.Mutex
	done int //popt:guardedby mu
}

// Run executes every cell and returns nil, or an error describing the
// first panicking cell (by cell order). A panic in one cell never wedges
// the pool: the panicking worker records the failure and keeps draining,
// so all other cells still complete and the pool always shuts down.
func (s *Sweep) Run(cells []Cell) error {
	s.mu.Lock()
	s.done = 0
	s.mu.Unlock()
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	errs := make([]error, len(cells))
	if workers <= 1 {
		for i := range cells {
			errs[i] = s.runCell(cells, i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				s.drain(idx, cells, errs)
			}()
		}
		for i := range cells {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("sweep: cell %d (%s): %w", i, cells[i].Key, err)
		}
	}
	return nil
}

// drain is the sweep dispatch loop each worker runs: pull the next cell
// index, execute the cell, record its outcome into the worker's own slot
// of errs. All allocation (scratch, panic boxing) lives in runCell and
// its cold helpers so this loop stays clean.
//
//popt:hot
func (s *Sweep) drain(idx <-chan int, cells []Cell, errs []error) {
	for i := range idx {
		errs[i] = s.runCell(cells, i)
	}
}

// runCell executes one cell, converting a panic into an error and
// emitting the progress event.
func (s *Sweep) runCell(cells []Cell, i int) (err error) {
	start := time.Now() //lint:allow determinism (host-side progress timing, not simulated state)
	defer func() {
		if r := recover(); r != nil {
			err = panicErr(r)
		}
		s.finish(i, len(cells), cells[i].Key, time.Since(start)) //lint:allow determinism (host-side progress timing)
	}()
	cells[i].Run()
	return nil
}

// panicErr boxes a recovered panic value; kept out of line so the
// recovery path's fmt machinery never burdens runCell's frame.
//
//go:noinline
func panicErr(r any) error { return fmt.Errorf("cell panicked: %v", r) }

// finish serializes progress accounting and the callback.
func (s *Sweep) finish(i, total int, key string, elapsed time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.done++
	if s.Progress != nil {
		s.Progress(CellEvent{Index: i, Done: s.done, Total: total, Key: key, Elapsed: elapsed})
	}
}

// runCells executes cells under c's sweep settings (Workers, Progress) and
// re-raises the first cell failure as a panic: experiment drivers have no
// error channel (Experiment.Run returns only a Report), and a cell panic
// there is a programming error exactly as it was in the serial loops.
func (c Config) runCells(cells []Cell) {
	s := &Sweep{Workers: c.Workers, Progress: c.Progress}
	if err := s.Run(cells); err != nil {
		panic(err)
	}
}
