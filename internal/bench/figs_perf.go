package bench

import (
	"fmt"

	"popt/internal/core"
	"popt/internal/graph"
	"popt/internal/kernels"
	"popt/internal/perf"
)

// Fig10 reproduces Figure 10, the headline result: speedup and LLC miss
// reduction relative to LRU for DRRIP, P-OPT and T-OPT across all five
// applications and all inputs. The paper reports P-OPT at +22% speedup and
// -24% misses vs DRRIP on average (+33%/-35% vs LRU), within 12% of T-OPT.
func Fig10(c Config) *Report {
	c = c.withArtifacts()
	rep := &Report{
		ID: "fig10", Title: "Speedups and LLC miss reductions vs LRU",
		Notes: []string{
			"Paper averages vs DRRIP: P-OPT +22% speedup, -24% misses; P-OPT within 12% of T-OPT.",
			"Radii skips the mesh input (direction switching never flips to pull there), as in the paper.",
		},
		Header: []string{"app", "graph",
			"DRRIP speedup", "P-OPT speedup", "T-OPT speedup",
			"DRRIP miss", "P-OPT miss", "T-OPT miss"},
	}
	setups := []Setup{DRRIPSetup(), POPTSetup(core.InterIntra, 8, true), TOPTSetup()}
	type agg struct {
		speedSum, missSum float64
		n                 int
	}
	// One cell per (kernel, graph): the cell runs the LRU baseline, decides
	// the skip (its note text must land in serial enumeration order), and on
	// non-skip runs the three setups against that baseline.
	type cellOut struct {
		skipped bool
		lru     Result
		res     [3]Result
	}
	benches := kernels.All()
	suite := c.Suite()
	results := make([][]cellOut, len(benches))
	var cells []Cell
	for bi, b := range benches {
		results[bi] = make([]cellOut, len(suite))
		for gi, g := range suite {
			if b.Name == "Radii" && isMesh(g) {
				continue
			}
			cells = append(cells, Cell{
				Key: "fig10/" + b.Name + "/" + g.Name,
				Run: func() {
					out := &results[bi][gi]
					if c.NoReplay {
						out.lru = RunWorkload(c, b.New(g), LRUSetup())
						if out.lru.H.LLC.Stats.Accesses < 1000 {
							out.skipped = true
							return
						}
						for i, s := range setups {
							out.res[i] = RunWorkload(c, b.New(g), s)
						}
						return
					}
					// The stream is private to this cell (no other cell pairs
					// this kernel with this graph), so record/replay is
					// cell-local: the LRU baseline records — or, on a warm
					// corpus, replays the published container — the three
					// compared setups replay, and the in-memory trace (if
					// any) is garbage the moment the cell returns instead of
					// pinning heap for the whole figure.
					lru, h := c.recordOrOpen(g, b.Name, func() *kernels.Workload { return b.New(g) }, LRUSetup())
					out.lru = lru
					if out.lru.H.LLC.Stats.Accesses < 1000 {
						// Direction switching never produced a dense pull
						// round on this input (the paper skips Radii on HBUBL
						// for the same reason); nothing was simulated. LRU's
						// LLC statistics are identical live or replayed, so
						// the skip decision is corpus-invariant.
						out.skipped = true
						return
					}
					for i, s := range setups {
						out.res[i] = c.replayStream(g, b.Name, h, s)
					}
				},
			})
		}
	}
	c.runCells(cells)
	aggs := make([]agg, len(setups))
	for bi, b := range benches {
		for gi, g := range suite {
			if b.Name == "Radii" && isMesh(g) {
				continue
			}
			out := results[bi][gi]
			if out.skipped {
				rep.Notes = append(rep.Notes, fmt.Sprintf("%s on %s skipped: no dense pull iterations", b.Name, g.Name))
				continue
			}
			lruCycles := out.lru.Breakdown()
			row := []string{b.Name, g.Name}
			var speeds, misses []string
			for i := range setups {
				res := out.res[i]
				sp := perf.Speedup(lruCycles, res.Breakdown())
				mr := MissReduction(out.lru, res)
				speeds = append(speeds, fmt.Sprintf("%.2fx", sp))
				misses = append(misses, pct(mr))
				aggs[i].speedSum += sp
				aggs[i].missSum += mr
				aggs[i].n++
			}
			rep.AddRow(append(append(row, speeds...), misses...)...)
		}
	}
	for i, s := range setups {
		rep.Notes = append(rep.Notes, fmt.Sprintf("Mean %-6s: speedup %.2fx, miss reduction %+.1f%% (vs LRU)",
			s.Name, aggs[i].speedSum/float64(aggs[i].n), aggs[i].missSum/float64(aggs[i].n)))
	}
	return rep
}

// Fig11 reproduces Figure 11: P-OPT (two resident columns) vs P-OPT-SE
// (one column, coarser lookahead) as the vertex count grows, annotated
// with reserved LLC ways. Small graphs favor P-OPT's better metadata;
// large graphs flip to P-OPT-SE once reservations eat the LLC.
func Fig11(c Config) *Report {
	rep := &Report{
		ID: "fig11", Title: "P-OPT vs P-OPT-SE across graph sizes (PageRank, miss reduction over DRRIP)",
		Notes:  []string{"Boxes in the paper annotate reserved ways; columns 'ways' below do the same."},
		Header: []string{"graph", "vertices", "P-OPT ways", "P-OPT", "P-OPT-SE ways", "P-OPT-SE"},
	}
	var sizes []int
	switch c.Scale {
	case graph.ScaleTiny:
		sizes = []int{1 << 10, 1 << 11, 1 << 12, 1 << 13}
	case graph.ScaleLarge:
		sizes = []int{1 << 21, 1 << 22, 1 << 23, 1 << 24}
	default:
		sizes = []int{1 << 15, 1 << 16, 1 << 17, 1 << 18, 1 << 19}
	}
	// One cell per size: the generated graph is private to its cell (the
	// artifact cache would otherwise pin every throwaway size forever).
	type cellOut struct {
		name           string
		base, popt, se Result
	}
	results := make([]cellOut, len(sizes))
	cells := make([]Cell, len(sizes))
	for i, n := range sizes {
		cells[i] = Cell{
			Key: fmt.Sprintf("fig11/n=%d", n),
			Run: func() {
				g := graph.Uniform(n, 4*n, c.Seed)
				// The graph is private to this cell, so record/replay is
				// cell-local: DRRIP runs live and records (or the corpus
				// supplies the stream), the P-OPT variants replay (no
				// stream cache entry to pin the throwaway graph).
				rs := c.runSetups(g, "PR", func() *kernels.Workload { return kernels.NewPageRank(g) },
					DRRIPSetup(),
					POPTSetup(core.InterIntra, 8, true),
					POPTSetup(core.SingleEpoch, 8, true))
				results[i] = cellOut{name: g.Name, base: rs[0], popt: rs[1], se: rs[2]}
			},
		}
	}
	c.runCells(cells)
	for i, n := range sizes {
		out := results[i]
		rep.AddRow(out.name, fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", out.popt.Reserved), pct(MissReduction(out.base, out.popt)),
			fmt.Sprintf("%d", out.se.Reserved), pct(MissReduction(out.base, out.se)))
	}
	return rep
}

func isMesh(g *graph.Graph) bool {
	return len(g.Name) >= 5 && g.Name[:5] == "HBUBL"
}
