package bench

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"popt/internal/cache"
	"popt/internal/core"
	"popt/internal/graph"
	"popt/internal/kernels"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/determinism.golden from this run")

// determinismMatrix simulates two kernels under two policies at tiny scale
// (with runtime contract checking on) and renders every counter that feeds
// the paper's tables. Any hidden nondeterminism — map iteration, global
// rand, wall-clock coupling — shows up as a diff here.
func determinismMatrix(t *testing.T) string {
	t.Helper()
	cfg := TinyConfig()
	cfg.CheckPolicies = true

	kernelNames := map[string]bool{"PR": true, "CC": true}
	var builders []kernels.Builder
	for _, b := range kernels.All() {
		if kernelNames[b.Name] {
			builders = append(builders, b)
		}
	}
	if len(builders) != len(kernelNames) {
		t.Fatalf("found %d of %d kernels", len(builders), len(kernelNames))
	}
	setups := []Setup{DRRIPSetup(), POPTSetup(core.InterIntra, 8, true)}

	var sb strings.Builder
	for _, b := range builders {
		for _, s := range setups {
			// Regenerate the graph per run so generator determinism is
			// under test too, not just the simulation.
			g := graph.Uniform(1<<10, 4<<10, cfg.Seed)
			w := b.New(g)
			res := RunWorkload(cfg, w, s)
			if err := w.Check(); err != nil {
				t.Fatalf("%s/%s: result verification failed: %v", b.Name, s.Name, err)
			}
			h := res.H
			fmt.Fprintf(&sb, "app=%s policy=%s", b.Name, s.Name)
			for _, e := range []struct {
				name string
				l    *cache.Level
			}{{"l1", h.L1}, {"l2", h.L2}, {"llc", h.LLC}} {
				st := e.l.Stats
				fmt.Fprintf(&sb, " %s(a=%d,h=%d,m=%d,e=%d,wb=%d)", e.name,
					st.Accesses, st.Hits, st.Misses, st.Evictions, st.Writebacks)
			}
			fmt.Fprintf(&sb, " dram(r=%d,w=%d) instr=%d reserved=%d streamed=%d\n",
				h.DRAMReads, h.DRAMWrites, res.Instructions, res.Reserved, res.Streamed)
		}
	}
	return sb.String()
}

func TestSimulationDeterminism(t *testing.T) {
	first := determinismMatrix(t)
	second := determinismMatrix(t)
	if first != second {
		t.Fatalf("two in-process runs diverged:\n--- first ---\n%s--- second ---\n%s", first, second)
	}

	goldenPath := filepath.Join("testdata", "determinism.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(first), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden (run `go test ./internal/bench -run Determinism -update` after intentional changes): %v", err)
	}
	if string(want) != first {
		t.Fatalf("stats diverge from checked-in golden (intentional change? re-run with -update):\n--- got ---\n%s--- want ---\n%s", first, want)
	}
}
