package bench

import (
	"fmt"
	"strings"
	"testing"

	"popt/internal/cache"
	"popt/internal/core"
	"popt/internal/graph"
	"popt/internal/kernels"
)

// fingerprint renders every counter a Result can report, so "byte
// identical" below means identical down to the last eviction.
func fingerprint(res Result) string {
	var sb strings.Builder
	h := res.H
	fmt.Fprintf(&sb, "policy=%s", res.Policy)
	for _, e := range []struct {
		name string
		l    *cache.Level
	}{{"l1", h.L1}, {"l2", h.L2}, {"llc", h.LLC}} {
		st := e.l.Stats
		fmt.Fprintf(&sb, " %s(a=%d,h=%d,m=%d,e=%d,wb=%d)", e.name,
			st.Accesses, st.Hits, st.Misses, st.Evictions, st.Writebacks)
	}
	fmt.Fprintf(&sb, " dram(r=%d,w=%d) instr=%d reserved=%d streamed=%d tie=%.6f",
		h.DRAMReads, h.DRAMWrites, res.Instructions, res.Reserved, res.Streamed, res.TieRate)
	return sb.String()
}

// TestReplayMatchesLiveAcrossZoo is the replay-equivalence golden: for
// every policy in the zoo (plus the paper's P-OPT/T-OPT variants), a
// replayed recorded stream must produce counters identical to a fresh live
// run — on a plain kernel (PR) and on a muting, frontier-driven one
// (Radii). Both trace forms are pinned: the full typed event stream
// (ReplayWorkload) and the LLC-visible stream the sweep engine uses
// (ReplayLLC).
func TestReplayMatchesLiveAcrossZoo(t *testing.T) {
	c := TinyConfig()
	c.CheckPolicies = true
	setups := append(AllBaselineSetups(),
		TOPTSetup(),
		POPTSetup(core.InterIntra, 8, true),
		POPTSetup(core.InterOnly, 8, true),
		POPTSetup(core.SingleEpoch, 8, true),
	)
	builders := []kernels.Builder{
		{Name: "PR", New: kernels.NewPageRank},
		{Name: "Radii", New: kernels.NewRadii},
	}
	g := graph.Uniform(1<<10, 4<<10, c.Seed)
	for _, b := range builders {
		// One recording run per trace form and kernel; LRU is arbitrary
		// (the stream is policy-independent).
		recW := b.New(g)
		_, tr := RecordWorkload(c, recW, LRUSetup())
		recWL := b.New(g)
		_, ltr := RecordLLC(c, recWL, LRUSetup())
		for _, s := range setups {
			t.Run(b.Name+"/"+s.Name, func(t *testing.T) {
				liveW := b.New(g)
				live := fingerprint(RunWorkload(c, liveW, s))
				if err := liveW.Check(); err != nil {
					t.Fatal(err)
				}
				if replayed := fingerprint(ReplayWorkload(c, recW, tr, s)); live != replayed {
					t.Errorf("full-stream replay diverged from live:\n live:   %s\n replay: %s", live, replayed)
				}
				if replayed := fingerprint(ReplayLLC(c, recWL, ltr, s)); live != replayed {
					t.Errorf("LLC replay diverged from live:\n live:   %s\n replay: %s", live, replayed)
				}
			})
		}
	}
}

// TestRunStreamPiggybacksRecording checks the sweep-side memoization: with
// an artifact cache installed, the first runStream call records and later
// calls replay, and both report counters identical to live no-cache runs.
func TestRunStreamPiggybacksRecording(t *testing.T) {
	c := TinyConfig().withArtifacts()
	plain := TinyConfig() // no cache: always live
	g := graph.Uniform(1<<10, 4<<10, c.Seed)
	setups := []Setup{DRRIPSetup(), POPTSetup(core.InterIntra, 8, true), TOPTSetup()}
	for _, s := range setups {
		got := fingerprint(c.runStream(g, "PR", kernels.NewPageRank, s))
		want := fingerprint(plain.runStream(g, "PR", kernels.NewPageRank, s))
		if got != want {
			t.Errorf("%s: cached runStream diverged from live:\n got:  %s\n want: %s", s.Name, got, want)
		}
	}
	if len(c.arts.streams) != 1 { //lint:allow lockguard (single-threaded assert)
		t.Errorf("stream cache holds %d entries, want 1", len(c.arts.streams))
	}
}

// BenchmarkLiveVsReplay contrasts a live kernel execution against a trace
// replay driving the same policy setup (the sweep engine's trade).
func BenchmarkLiveVsReplay(b *testing.B) {
	c := TinyConfig()
	g := graph.Uniform(1<<12, 4<<12, c.Seed)
	recW := kernels.NewPageRank(g)
	_, tr := RecordWorkload(c, recW, DRRIPSetup())
	b.Run("live", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			RunWorkload(c, kernels.NewPageRank(g), DRRIPSetup())
		}
	})
	b.Run("replay", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ReplayWorkload(c, recW, tr, DRRIPSetup())
		}
	})
	recWL := kernels.NewPageRank(g)
	_, ltr := RecordLLC(c, recWL, DRRIPSetup())
	b.Run("replay-llc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ReplayLLC(c, recWL, ltr, DRRIPSetup())
		}
	})
}

// TestNoReplayMatchesReplay pins that -noreplay is purely a performance
// A/B switch: both modes report the same counters.
func TestNoReplayMatchesReplay(t *testing.T) {
	g := graph.Uniform(1<<10, 4<<10, 42)
	mk := func() *kernels.Workload { return kernels.NewPageRank(g) }
	setups := []Setup{DRRIPSetup(), POPTSetup(core.InterIntra, 8, true)}
	c := TinyConfig()
	nc := c
	nc.NoReplay = true
	a := c.runSetups(g, "PR", mk, setups...)
	b := nc.runSetups(g, "PR", mk, setups...)
	for i := range a {
		if fingerprint(a[i]) != fingerprint(b[i]) {
			t.Errorf("setup %d: replay and noreplay diverge", i)
		}
	}
}
