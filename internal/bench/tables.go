package bench

import (
	"fmt"
	"time"

	"popt/internal/core"
	"popt/internal/kernels"
	"popt/internal/perf"
)

// Table1 reports the simulated platform parameters (the paper's Table I
// plus this reproduction's scaled defaults and timing-model calibration).
func Table1(c Config) *Report {
	rep := &Report{
		ID: "table1", Title: "Simulation parameters",
		Header: []string{"component", "value"},
	}
	cfg := c.cacheConfig(nil)
	p := perf.Default()
	rep.AddRow("L1", fmt.Sprintf("%d KB, %d-way, Bit-PLRU", cfg.L1Size>>10, cfg.L1Ways))
	rep.AddRow("L2", fmt.Sprintf("%d KB, %d-way, Bit-PLRU, load-to-use %v cycles", cfg.L2Size>>10, cfg.L2Ways, p.L2Latency))
	rep.AddRow("LLC", fmt.Sprintf("%d KB, %d-way, DRRIP baseline, load-to-use %v cycles", cfg.LLCSize>>10, cfg.LLCWays, p.LLCLatency))
	rep.AddRow("DRAM", fmt.Sprintf("%.0f ns base latency (%.0f cycles at %.3f GHz)", p.DRAMLatencyNs, p.DRAMCycles(), p.FreqGHz))
	rep.AddRow("core model", fmt.Sprintf("base IPC %.1f, effective MLP %.0f (calibrated to the paper's 60-80%% DRAM-bound regime)", p.BaseIPC, p.MLP))
	rep.AddRow("streaming engine", fmt.Sprintf("%.0f B/cycle for Rereference Matrix columns", p.StreamBytesPerCycle))
	rep.AddRow("line size", "64 B")
	return rep
}

// Table2 reports the application properties (the paper's Table II),
// derived from the live workload metadata rather than hardcoded.
func Table2(c Config) *Report {
	rep := &Report{
		ID: "table2", Title: "Applications",
		Header: []string{"app", "irregData elems", "execution style", "transpose", "uses frontier"},
	}
	g := c.Suite()[0]
	for _, b := range kernels.All() {
		w := b.New(g)
		elems := ""
		for i, a := range w.Irregular {
			if i > 0 {
				elems += " & "
			}
			if a.ElemBits >= 8 {
				elems += fmt.Sprintf("%dB", a.ElemBits/8)
			} else {
				elems += fmt.Sprintf("%dbit", a.ElemBits)
			}
		}
		style, transpose := "Push", "CSC"
		if w.Pull {
			style, transpose = "Pull", "CSR"
		}
		if w.UsesFrontier {
			style += "-mostly"
		} else {
			style += "-only"
		}
		frontier := "N"
		if w.UsesFrontier {
			frontier = "Y"
		}
		rep.AddRow(w.Name, elems, style, transpose, frontier)
	}
	return rep
}

// Table3 reports the input graph suite (the paper's Table III), generated
// at the configured scale.
func Table3(c Config) *Report {
	rep := &Report{
		ID: "table3", Title: "Input graphs (synthetic stand-ins; see DESIGN.md for the substitution)",
		Header: []string{"graph", "vertices", "edges", "avg degree", "max out-degree"},
	}
	for _, g := range c.Suite() {
		maxDeg, _ := g.MaxDegree()
		rep.AddRow(g.Name,
			fmt.Sprintf("%d", g.NumVertices()),
			fmt.Sprintf("%d", g.NumEdges()),
			fmt.Sprintf("%.1f", g.AvgDegree()),
			fmt.Sprintf("%d", maxDeg))
	}
	return rep
}

// Table4 reproduces Table IV: wall-clock time to build the Rereference
// Matrix versus a PageRank execution on the same machine. The paper
// measures ~19.8% of PageRank runtime on average. Both measurements here
// are real (uninstrumented) executions on the host.
func Table4(c Config) *Report {
	rep := &Report{
		ID: "table4", Title: "Rereference Matrix preprocessing cost (host wall-clock)",
		Notes:  []string{"Paper: preprocessing averages 19.8% of PageRank runtime and amortizes across kernels on the same graph."},
		Header: []string{"graph", "matrix build", "PageRank run", "ratio"},
	}
	var ratioSum float64
	for _, g := range c.Suite() {
		w := kernels.NewPageRank(g)

		t0 := time.Now() //lint:allow determinism (Table IV reports host wall-clock build cost by design)
		p := core.BuildPOPT(w.RefAdj, w.G.NumVertices(), core.InterIntra, 8, w.Irregular...)
		build := time.Since(t0)
		_ = p

		// The paper's Table IV baseline is a full PageRank execution (run
		// to convergence), not the short simulated sample.
		t1 := time.Now() //lint:allow determinism (Table IV reports host wall-clock runtime by design)
		iters := kernels.ConvergedPageRank(g, 1e-9, 50)
		prTime := time.Since(t1)
		_ = iters

		ratio := float64(build) / float64(prTime)
		ratioSum += ratio
		rep.AddRow(g.Name, build.Round(time.Microsecond).String(), prTime.Round(time.Microsecond).String(),
			fmt.Sprintf("%.1f%%", 100*ratio))
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf("Mean build/PR ratio: %.1f%%", 100*ratioSum/float64(len(c.Suite()))))
	return rep
}
