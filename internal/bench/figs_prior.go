package bench

import (
	"fmt"

	"popt/internal/cache"
	"popt/internal/core"
	"popt/internal/graph"
	"popt/internal/kernels"
	"popt/internal/sched"
)

// GRASPSetup configures GRASP to protect the high-degree prefix of the
// first irregular array (the input must be DBG-reordered for this to mean
// anything, exactly GRASP's requirement). The hot region is sized to half
// the LLC and the warm region to another half, following GRASP's pinned /
// intermediate region split.
func GRASPSetup() Setup {
	return Setup{Name: "GRASP", Make: func(_ Config, w *kernels.Workload, cfg cache.Config) (cache.Policy, core.VertexIndexed, int) {
		arr := w.Irregular[0]
		hot := uint64(cfg.LLCSize) / 2
		if hot > arr.SizeBytes() {
			hot = arr.SizeBytes()
		}
		warm := hot + uint64(cfg.LLCSize)/2
		if warm > arr.SizeBytes() {
			warm = arr.SizeBytes()
		}
		return cache.NewGRASP(arr.Base, arr.Base+hot, arr.Base+warm), nil, 0
	}}
}

// Fig12a reproduces Figure 12a: GRASP vs P-OPT (and T-OPT) on
// DBG-reordered graphs, PageRank, miss reduction over DRRIP. Paper: GRASP
// only helps on skewed graphs; P-OPT is structure-agnostic and wins
// everywhere.
func Fig12a(c Config) *Report {
	setups := []Setup{GRASPSetup(), POPTSetup(core.InterIntra, 8, true), TOPTSetup()}
	rep := &Report{
		ID: "fig12a", Title: "GRASP vs P-OPT on DBG-ordered graphs (PageRank, miss reduction over DRRIP)",
		Notes:  []string{"All runs, including the DRRIP baseline, use DBG-reordered inputs (GRASP's requirement)."},
		Header: append([]string{"graph"}, setupNames(setups)...),
	}
	// One cell per graph: the DBG reorder is preprocessing the cell owns,
	// and its output graph stays private to the cell's four runs.
	suite := c.Suite()
	type cellOut struct {
		base Result
		res  []Result
	}
	results := make([]cellOut, len(suite))
	cells := make([]Cell, len(suite))
	for gi, g0 := range suite {
		cells[gi] = Cell{
			Key: "fig12a/" + g0.Name,
			Run: func() {
				g := graph.DBG(g0).Apply(g0)
				out := &results[gi]
				out.base = RunWorkload(c, kernels.NewPageRank(g), DRRIPSetup())
				for _, s := range setups {
					out.res = append(out.res, RunWorkload(c, kernels.NewPageRank(g), s))
				}
			},
		}
	}
	c.runCells(cells)
	for gi, g0 := range suite {
		row := []string{g0.Name}
		for _, res := range results[gi].res {
			row = append(row, pct(MissReduction(results[gi].base, res)))
		}
		rep.AddRow(row...)
	}
	return rep
}

// Fig12b reproduces Figure 12b: HATS-BDFS (zero-overhead bounded-DFS
// vertex scheduling under DRRIP) vs P-OPT on the standard vertex order.
// Paper: BDFS helps only community-structured inputs and can hurt others;
// P-OPT improves consistently.
func Fig12b(c Config) *Report {
	rep := &Report{
		ID: "fig12b", Title: "HATS-BDFS vs P-OPT (PageRank, LLC miss reduction over vertex-ordered DRRIP)",
		Notes: []string{
			"BDFS is idealized: scheduling itself costs nothing, as in the paper's aggressive variant.",
			"UK-hidden is the community graph with scrambled IDs — HATS's target case, where the",
			"vertex order hides the community structure BDFS can rediscover. Our suite's UK is",
			"already community-ordered (like a crawl), so BDFS has nothing to recover there.",
			"Divergence: the paper's BDFS wins on its real crawl inputs (UK-02/ARAB); on our",
			"synthetic communities the destination-side traffic BDFS randomizes outweighs the",
			"source-side locality it finds, so BDFS never goes positive here. The structural",
			"conclusion — BDFS is input-sensitive, P-OPT is consistently positive — reproduces.",
		},
		Header: []string{"graph", "HATS-BDFS", "P-OPT", "T-OPT"},
	}
	suite := c.Suite()
	// HATS's showcase input: community structure invisible to the ID order.
	hidden := graph.Scramble(suite[1], c.Seed+99)
	hidden.Name = "UK-hidden"
	graphs := append(suite, hidden)
	// One cell per graph, BDFS-order preprocessing included.
	type cellOut struct{ base, bdfs, popt, topt Result }
	results := make([]cellOut, len(graphs))
	cells := make([]Cell, len(graphs))
	for gi, g := range graphs {
		cells[gi] = Cell{
			Key: "fig12b/" + g.Name,
			Run: func() {
				order := sched.BDFSOrder(g, 16)
				results[gi] = cellOut{
					base: RunWorkload(c, kernels.NewPageRank(g), DRRIPSetup()),
					bdfs: RunWorkload(c, kernels.NewPageRankOrdered(g, order), DRRIPSetup()),
					popt: RunWorkload(c, kernels.NewPageRank(g), POPTSetup(core.InterIntra, 8, true)),
					topt: RunWorkload(c, kernels.NewPageRank(g), TOPTSetup()),
				}
			},
		}
	}
	c.runCells(cells)
	for gi, g := range graphs {
		out := results[gi]
		rep.AddRow(g.Name, pct(MissReduction(out.base, out.bdfs)), pct(MissReduction(out.base, out.popt)), pct(MissReduction(out.base, out.topt)))
	}
	return rep
}

// Fig13 reproduces Figure 13: CSR-segmenting (tiling) composed with DRRIP
// and with P-OPT across tile counts, LLC misses normalized to the untiled
// DRRIP run. Paper: tiling shrinks P-OPT's pinned column (fewer reserved
// ways) and P-OPT reaches a given miss level with far fewer tiles.
func Fig13(c Config) *Report {
	rep := &Report{
		ID: "fig13", Title: "Tiling interaction: LLC misses normalized to untiled DRRIP (lower is better)",
		Notes:  []string{"Paper: P-OPT with 2 tiles matches DRRIP with 10 on URAND."},
		Header: []string{"graph", "tiles", "DRRIP", "P-OPT", "P-OPT ways"},
	}
	suite := c.Suite()
	graphs := []*graph.Graph{suite[3], suite[1]} // URAND-like and UK-like, per the paper's two large graphs
	tileCounts := []int{1, 2, 4, 8, 16}
	// Per graph: one untiled-baseline cell plus a cell per tile count (the
	// CSR segmentation is cell-private preprocessing). Assembly normalizes
	// every tiled run against the untiled baseline afterwards.
	untiled := make([]Result, len(graphs))
	type cellOut struct{ drrip, popt Result }
	results := make([][]cellOut, len(graphs))
	var cells []Cell
	for gi, g := range graphs {
		results[gi] = make([]cellOut, len(tileCounts))
		cells = append(cells, Cell{
			Key: "fig13/" + g.Name + "/untiled",
			Run: func() { untiled[gi] = RunWorkload(c, kernels.NewPageRank(g), DRRIPSetup()) },
		})
		for ti, tiles := range tileCounts {
			cells = append(cells, Cell{
				Key: fmt.Sprintf("fig13/%s/tiles=%d", g.Name, tiles),
				Run: func() {
					seg := graph.Segment(g, tiles)
					poptSetup := Setup{Name: "P-OPT", Make: func(_ Config, w *kernels.Workload, cfg cache.Config) (cache.Policy, core.VertexIndexed, int) {
						tp := core.NewTiledPOPT(seg, w.Irregular[0], core.InterIntra, 8)
						return tp, tp, tp.ReservedWays(cfg.LLCSize / (cfg.LLCWays * 64))
					}}
					results[gi][ti] = cellOut{
						drrip: RunWorkload(c, kernels.NewPageRankTiled(g, seg), DRRIPSetup()),
						popt:  RunWorkload(c, kernels.NewPageRankTiled(g, seg), poptSetup),
					}
				},
			})
		}
	}
	c.runCells(cells)
	for gi, g := range graphs {
		base := float64(untiled[gi].H.LLC.Stats.Misses)
		for ti, tiles := range tileCounts {
			out := results[gi][ti]
			rep.AddRow(g.Name, fmt.Sprintf("%d", tiles),
				f2(float64(out.drrip.H.LLC.Stats.Misses)/base),
				f2(float64(out.popt.H.LLC.Stats.Misses)/base),
				fmt.Sprintf("%d", out.popt.Reserved))
		}
	}
	return rep
}

// Fig14 reproduces Figure 14: the update (binning) phase under software
// Propagation Blocking and PHI-style in-cache aggregation, composed with
// DRRIP and with P-OPT. Metric: DRAM traffic per edge (reads+writes),
// which is what PB/PHI optimize. Paper: PHI beats PB on power-law inputs
// but offers little on URAND/HBUBL-like graphs, where P-OPT still helps.
func Fig14(c Config) *Report {
	c = c.withArtifacts()
	rep := &Report{
		ID: "fig14", Title: "Update phase: DRAM transfers per edge (lower is better)",
		Notes: []string{
			"PB = software binning; PHI = in-cache commutative update aggregation over direct scatter.",
			"P-OPT manages dstData for the PHI/scatter rows; binning's traffic is write-sequential already.",
		},
		Header: []string{"graph", "PB+DRRIP", "PB+P-OPT", "PHI+DRRIP", "PHI+P-OPT", "PHI coalesce"},
	}
	// One cell per (graph, variant): PB and PHI, each with and without
	// P-OPT. The serial loop reported the coalesce rate of the last PHI
	// variant it ran (PHI+P-OPT); assembly reads that cell's value to keep
	// the report byte-identical.
	suite := c.Suite()
	type cellOut struct {
		traffic  float64
		coalesce float64
	}
	results := make([][4]cellOut, len(suite))
	var cells []Cell
	variants := []struct {
		label   string
		phi     bool
		usePOPT bool
	}{
		{"PB+DRRIP", false, false},
		{"PB+P-OPT", false, true},
		{"PHI+DRRIP", true, false},
		{"PHI+P-OPT", true, true},
	}
	for gi, g := range suite {
		for vi, v := range variants {
			cells = append(cells, Cell{
				Key: "fig14/" + g.Name + "/" + v.label,
				Run: func() {
					out := &results[gi][vi]
					if v.phi {
						phase := sched.NewScatterPhase(g, false)
						out.traffic = runUpdatePhaseWithPHI(c, phase, g, v.usePOPT, &out.coalesce)
					} else {
						phase := sched.NewBinningPhase(g, 16)
						out.traffic = runUpdatePhase(c, phase, g, v.usePOPT, false)
					}
				},
			})
		}
	}
	c.runCells(cells)
	for gi, g := range suite {
		m := float64(g.NumEdges())
		row := []string{g.Name}
		for vi := range variants {
			row = append(row, f2(results[gi][vi].traffic/m))
		}
		row = append(row, fmt.Sprintf("%.0f%%", 100*results[gi][3].coalesce))
		rep.AddRow(row...)
	}
	return rep
}

// runUpdatePhase simulates an update phase and returns total DRAM traffic.
func runUpdatePhase(c Config, phase *sched.UpdatePhase, g *graph.Graph, usePOPT, rmw bool) float64 {
	var pol cache.Policy
	cfg := c.cacheConfig(func() cache.Policy { return pol })
	var hook core.VertexIndexed
	reserve := 0
	if usePOPT && phase.DstData != nil {
		p := c.buildPOPT(&g.In, g.NumVertices(), core.InterIntra, 8, phase.DstData)
		pol, hook = p, p
		reserve = p.ReservedWays(cfg.LLCSize / (cfg.LLCWays * 64))
	} else if usePOPT {
		pol = cache.NewDRRIP(1) // P-OPT defers to its tie-breaker with no irregular stream
	} else {
		pol = cache.NewDRRIP(1)
	}
	h := cache.NewHierarchy(cfg)
	if reserve > 0 && reserve < cfg.LLCWays {
		h.LLC.Reserve(reserve)
	}
	r := kernels.NewRunner(h, hook)
	phase.Run(r)
	return float64(h.DRAMReads + h.DRAMWrites)
}

// runUpdatePhaseWithPHI simulates the scatter phase behind a PHI buffer.
func runUpdatePhaseWithPHI(c Config, phase *sched.UpdatePhase, g *graph.Graph, usePOPT bool, coalesce *float64) float64 {
	var pol cache.Policy
	cfg := c.cacheConfig(func() cache.Policy { return pol })
	var hook core.VertexIndexed
	reserve := 0
	if usePOPT {
		p := c.buildPOPT(&g.In, g.NumVertices(), core.InterIntra, 8, phase.DstData)
		pol, hook = p, p
		reserve = p.ReservedWays(cfg.LLCSize / (cfg.LLCWays * 64))
	} else {
		pol = cache.NewDRRIP(1)
	}
	h := cache.NewHierarchy(cfg)
	if reserve > 0 && reserve < cfg.LLCWays {
		h.LLC.Reserve(reserve)
	}
	// PHI's aggregation buffer is private-cache sized (the L2 here).
	phi := sched.NewPHIBuffer(h, phase.DstData, cfg.L2Size/64)
	r := kernels.NewRunner(h, hook)
	r.Filter = phi.Filter
	phase.Run(r)
	phi.Flush()
	if coalesce != nil {
		*coalesce = phi.CoalesceRate()
	}
	return float64(h.DRAMReads + h.DRAMWrites)
}
