package bench

import (
	"fmt"

	"popt/internal/cache"
	"popt/internal/core"
	"popt/internal/graph"
	"popt/internal/kernels"
	"popt/internal/mem"
	"popt/internal/sched"
	"popt/internal/trace"
)

// GRASPSetup configures GRASP to protect the high-degree prefix of the
// first irregular array (the input must be DBG-reordered for this to mean
// anything, exactly GRASP's requirement). The hot region is sized to half
// the LLC and the warm region to another half, following GRASP's pinned /
// intermediate region split.
func GRASPSetup() Setup {
	return Setup{Name: "GRASP", Make: func(_ Config, w *kernels.Workload, cfg cache.Config) (cache.Policy, core.VertexIndexed, int) {
		arr := w.Irregular[0]
		hot := uint64(cfg.LLCSize) / 2
		if hot > arr.SizeBytes() {
			hot = arr.SizeBytes()
		}
		warm := hot + uint64(cfg.LLCSize)/2
		if warm > arr.SizeBytes() {
			warm = arr.SizeBytes()
		}
		return cache.NewGRASP(arr.Base, arr.Base+hot, arr.Base+warm), nil, 0
	}}
}

// Fig12a reproduces Figure 12a: GRASP vs P-OPT (and T-OPT) on
// DBG-reordered graphs, PageRank, miss reduction over DRRIP. Paper: GRASP
// only helps on skewed graphs; P-OPT is structure-agnostic and wins
// everywhere.
func Fig12a(c Config) *Report {
	setups := []Setup{GRASPSetup(), POPTSetup(core.InterIntra, 8, true), TOPTSetup()}
	rep := &Report{
		ID: "fig12a", Title: "GRASP vs P-OPT on DBG-ordered graphs (PageRank, miss reduction over DRRIP)",
		Notes:  []string{"All runs, including the DRRIP baseline, use DBG-reordered inputs (GRASP's requirement)."},
		Header: append([]string{"graph"}, setupNames(setups)...),
	}
	// One cell per graph: the DBG reorder is preprocessing the cell owns,
	// and its output graph stays private to the cell's four runs.
	suite := c.Suite()
	type cellOut struct {
		base Result
		res  []Result
	}
	results := make([]cellOut, len(suite))
	cells := make([]Cell, len(suite))
	for gi, g0 := range suite {
		cells[gi] = Cell{
			Key: "fig12a/" + g0.Name,
			Run: func() {
				g := graph.DBG(g0).Apply(g0)
				out := &results[gi]
				// The reordered graph is cell-private: the DRRIP baseline
				// records its stream, the compared setups replay it.
				rs := c.runSetups(g, "PR", func() *kernels.Workload { return kernels.NewPageRank(g) },
					append([]Setup{DRRIPSetup()}, setups...)...)
				out.base, out.res = rs[0], rs[1:]
			},
		}
	}
	c.runCells(cells)
	for gi, g0 := range suite {
		row := []string{g0.Name}
		for _, res := range results[gi].res {
			row = append(row, pct(MissReduction(results[gi].base, res)))
		}
		rep.AddRow(row...)
	}
	return rep
}

// Fig12b reproduces Figure 12b: HATS-BDFS (zero-overhead bounded-DFS
// vertex scheduling under DRRIP) vs P-OPT on the standard vertex order.
// Paper: BDFS helps only community-structured inputs and can hurt others;
// P-OPT improves consistently.
func Fig12b(c Config) *Report {
	rep := &Report{
		ID: "fig12b", Title: "HATS-BDFS vs P-OPT (PageRank, LLC miss reduction over vertex-ordered DRRIP)",
		Notes: []string{
			"BDFS is idealized: scheduling itself costs nothing, as in the paper's aggressive variant.",
			"UK-hidden is the community graph with scrambled IDs — HATS's target case, where the",
			"vertex order hides the community structure BDFS can rediscover. Our suite's UK is",
			"already community-ordered (like a crawl), so BDFS has nothing to recover there.",
			"Divergence: the paper's BDFS wins on its real crawl inputs (UK-02/ARAB); on our",
			"synthetic communities the destination-side traffic BDFS randomizes outweighs the",
			"source-side locality it finds, so BDFS never goes positive here. The structural",
			"conclusion — BDFS is input-sensitive, P-OPT is consistently positive — reproduces.",
		},
		Header: []string{"graph", "HATS-BDFS", "P-OPT", "T-OPT"},
	}
	suite := c.Suite()
	// HATS's showcase input: community structure invisible to the ID order.
	hidden := graph.Scramble(suite[1], c.Seed+99).Renamed("UK-hidden")
	graphs := append(suite, hidden)
	// One cell per graph, BDFS-order preprocessing included.
	type cellOut struct{ base, bdfs, popt, topt Result }
	results := make([]cellOut, len(graphs))
	cells := make([]Cell, len(graphs))
	for gi, g := range graphs {
		cells[gi] = Cell{
			Key: "fig12b/" + g.Name,
			Run: func() {
				order := sched.BDFSOrder(g, 16)
				// base/popt/topt share the vertex-ordered stream; BDFS runs
				// a different schedule, hence a different stream, live.
				rs := c.runSetups(g, "PR", func() *kernels.Workload { return kernels.NewPageRank(g) },
					DRRIPSetup(), POPTSetup(core.InterIntra, 8, true), TOPTSetup())
				results[gi] = cellOut{
					base: rs[0],
					bdfs: RunWorkload(c, kernels.NewPageRankOrdered(g, order), DRRIPSetup()),
					popt: rs[1],
					topt: rs[2],
				}
			},
		}
	}
	c.runCells(cells)
	for gi, g := range graphs {
		out := results[gi]
		rep.AddRow(g.Name, pct(MissReduction(out.base, out.bdfs)), pct(MissReduction(out.base, out.popt)), pct(MissReduction(out.base, out.topt)))
	}
	return rep
}

// Fig13 reproduces Figure 13: CSR-segmenting (tiling) composed with DRRIP
// and with P-OPT across tile counts, LLC misses normalized to the untiled
// DRRIP run. Paper: tiling shrinks P-OPT's pinned column (fewer reserved
// ways) and P-OPT reaches a given miss level with far fewer tiles.
func Fig13(c Config) *Report {
	rep := &Report{
		ID: "fig13", Title: "Tiling interaction: LLC misses normalized to untiled DRRIP (lower is better)",
		Notes:  []string{"Paper: P-OPT with 2 tiles matches DRRIP with 10 on URAND."},
		Header: []string{"graph", "tiles", "DRRIP", "P-OPT", "P-OPT ways"},
	}
	suite := c.Suite()
	graphs := []*graph.Graph{suite[3], suite[1]} // URAND-like and UK-like, per the paper's two large graphs
	tileCounts := []int{1, 2, 4, 8, 16}
	// Per graph: one untiled-baseline cell plus a cell per tile count (the
	// CSR segmentation is cell-private preprocessing). Assembly normalizes
	// every tiled run against the untiled baseline afterwards.
	untiled := make([]Result, len(graphs))
	type cellOut struct{ drrip, popt Result }
	results := make([][]cellOut, len(graphs))
	var cells []Cell
	for gi, g := range graphs {
		results[gi] = make([]cellOut, len(tileCounts))
		cells = append(cells, Cell{
			Key: "fig13/" + g.Name + "/untiled",
			Run: func() { untiled[gi] = RunWorkload(c, kernels.NewPageRank(g), DRRIPSetup()) },
		})
		for ti, tiles := range tileCounts {
			cells = append(cells, Cell{
				Key: fmt.Sprintf("fig13/%s/tiles=%d", g.Name, tiles),
				Run: func() {
					seg := graph.Segment(g, tiles)
					poptSetup := Setup{Name: "P-OPT", Make: func(_ Config, w *kernels.Workload, cfg cache.Config) (cache.Policy, core.VertexIndexed, int) {
						tp := core.NewTiledPOPT(seg, w.Irregular[0], core.InterIntra, 8)
						return tp, tp, tp.ReservedWays(cfg.LLCSize / (cfg.LLCWays * 64))
					}}
					// The segmentation is cell-private; DRRIP records the
					// tiled stream and P-OPT replays it.
					rs := c.runSetups(g, fmt.Sprintf("PR-tiled-%d", tiles), func() *kernels.Workload { return kernels.NewPageRankTiled(g, seg) },
						DRRIPSetup(), poptSetup)
					results[gi][ti] = cellOut{drrip: rs[0], popt: rs[1]}
				},
			})
		}
	}
	c.runCells(cells)
	for gi, g := range graphs {
		base := float64(untiled[gi].H.LLC.Stats.Misses)
		for ti, tiles := range tileCounts {
			out := results[gi][ti]
			rep.AddRow(g.Name, fmt.Sprintf("%d", tiles),
				f2(float64(out.drrip.H.LLC.Stats.Misses)/base),
				f2(float64(out.popt.H.LLC.Stats.Misses)/base),
				fmt.Sprintf("%d", out.popt.Reserved))
		}
	}
	return rep
}

// Fig14 reproduces Figure 14: the update (binning) phase under software
// Propagation Blocking and PHI-style in-cache aggregation, composed with
// DRRIP and with P-OPT. Metric: DRAM traffic per edge (reads+writes),
// which is what PB/PHI optimize. Paper: PHI beats PB on power-law inputs
// but offers little on URAND/HBUBL-like graphs, where P-OPT still helps.
func Fig14(c Config) *Report {
	c = c.withArtifacts()
	rep := &Report{
		ID: "fig14", Title: "Update phase: DRAM transfers per edge (lower is better)",
		Notes: []string{
			"PB = software binning; PHI = in-cache commutative update aggregation over direct scatter.",
			"P-OPT manages dstData for the PHI/scatter rows; binning's traffic is write-sequential already.",
		},
		Header: []string{"graph", "PB+DRRIP", "PB+P-OPT", "PHI+DRRIP", "PHI+P-OPT", "PHI coalesce"},
	}
	// One cell per (graph, phase variant): PB and PHI, each cell pairing
	// the DRRIP and P-OPT runs so DRRIP records the phase's reference
	// stream and P-OPT replays it (the PHI coalescing filter lives on the
	// sink, so both see the identical emitted stream). The serial loop
	// reported the coalesce rate of the PHI+P-OPT run; assembly reads that
	// slot's value to keep the report byte-identical.
	suite := c.Suite()
	type cellOut struct {
		traffic  float64
		coalesce float64
	}
	results := make([][4]cellOut, len(suite))
	var cells []Cell
	variants := []struct {
		label string
		phi   bool
	}{
		{"PB", false},
		{"PHI", true},
	}
	for gi, g := range suite {
		for vi, v := range variants {
			cells = append(cells, Cell{
				Key: "fig14/" + g.Name + "/" + v.label,
				Run: func() {
					mk := func() *sched.UpdatePhase {
						if v.phi {
							return sched.NewScatterPhase(g, false)
						}
						return sched.NewBinningPhase(g, 16)
					}
					base, popt := &results[gi][2*vi], &results[gi][2*vi+1]
					base.traffic, popt.traffic = runUpdatePair(c, mk, g, v.phi, &popt.coalesce)
				},
			})
		}
	}
	c.runCells(cells)
	for gi, g := range suite {
		m := float64(g.NumEdges())
		row := []string{g.Name}
		for vi := range variants {
			row = append(row, f2(results[gi][vi].traffic/m))
		}
		row = append(row, fmt.Sprintf("%.0f%%", 100*results[gi][3].coalesce))
		rep.AddRow(row...)
	}
	return rep
}

// updateRun is one built update-phase simulation: the hierarchy, its live
// sink, and (for PHI variants) the coalescing buffer wired in as the
// sink's access filter.
type updateRun struct {
	h   *cache.Hierarchy
	sim *trace.Sim
	phi *sched.PHIBuffer
}

// buildUpdateRun assembles the stack for one update-phase variant. dst is
// the phase's destination array (nil for binning phases, whose traffic is
// write-sequential and needs no irregular management); phiBuf adds PHI's
// private-cache-sized aggregation buffer.
func buildUpdateRun(c Config, g *graph.Graph, dst *mem.Array, usePOPT, phiBuf bool) updateRun {
	var pol cache.Policy
	cfg := c.cacheConfig(func() cache.Policy { return pol })
	var hook core.VertexIndexed
	reserve := 0
	if usePOPT && dst != nil {
		p := c.buildPOPT(&g.In, g.NumVertices(), core.InterIntra, 8, dst)
		pol, hook = p, p
		reserve = p.ReservedWays(cfg.LLCSize / (cfg.LLCWays * 64))
	} else {
		// Without an irregular stream P-OPT defers to its tie-breaker, so
		// both seats run DRRIP.
		pol = cache.NewDRRIP(1)
	}
	h := cache.NewHierarchy(cfg)
	if reserve > 0 && reserve < cfg.LLCWays {
		h.LLC.Reserve(reserve)
	}
	u := updateRun{h: h, sim: trace.NewSim(h, hook)}
	if phiBuf {
		// PHI's aggregation buffer is private-cache sized (the L2 here).
		u.phi = sched.NewPHIBuffer(h, dst, cfg.L2Size/64)
		u.sim.Filter = u.phi.Filter
	}
	return u
}

// finish flushes the PHI buffer (if any) and returns total DRAM traffic.
func (u updateRun) finish(coalesce *float64) float64 {
	if u.phi != nil {
		u.phi.Flush()
		if coalesce != nil {
			*coalesce = u.phi.CoalesceRate()
		}
	}
	return float64(u.h.DRAMReads + u.h.DRAMWrites)
}

// runUpdatePair simulates one update phase under DRRIP and under P-OPT
// from a single phase execution: the DRRIP run executes the phase live
// with an encoder teed on, and the P-OPT run replays the recorded stream.
// Under NoReplay both runs execute fresh phases live, as before.
func runUpdatePair(c Config, mk func() *sched.UpdatePhase, g *graph.Graph, phiBuf bool, coalesce *float64) (baseTraffic, poptTraffic float64) {
	phase := mk()
	base := buildUpdateRun(c, g, phase.DstData, false, phiBuf)
	if c.NoReplay {
		phase.Run(kernels.NewSinkRunner(base.sim))
		p2 := mk()
		popt := buildUpdateRun(c, g, p2.DstData, true, phiBuf)
		p2.Run(kernels.NewSinkRunner(popt.sim))
		return base.finish(nil), popt.finish(coalesce)
	}
	enc := trace.NewEncoder()
	phase.Run(kernels.NewSinkRunner(trace.NewTee(base.sim, enc)))
	popt := buildUpdateRun(c, g, phase.DstData, true, phiBuf)
	enc.Trace().Replay(popt.sim)
	return base.finish(nil), popt.finish(coalesce)
}
