package bench

import (
	"sync"

	"popt/internal/core"
	"popt/internal/graph"
	"popt/internal/mem"
)

// Shared-artifact memoization for sweeps. Every P-OPT cell on the same
// (transpose, encoding, bits) rebuilds the same Rereference Matrix, and
// every T-OPT cell the same merged transpose — Table IV puts matrix
// construction alone at ~20% of a PageRank run, so at sweep scale the
// rebuilds dominate. An artifact cache keyed by the immutable inputs
// builds each product once and hands every cell a cheap per-run view
// (core.Table → core.Matrix, core.LineRefs shared directly); suite graphs
// are memoized one level down in package graph. Correctness rests on two
// invariants the tests pin with checksums: cached products are never
// written after construction, and a cached build is bit-identical to a
// fresh one.
//
// The cache is per-Config (each experiment driver installs its own via
// withArtifacts), not process-global: fig11 and friends generate
// throwaway graphs per call, and a global cache keyed by their adjacency
// pointers would pin them forever. Paths that *measure* build cost
// (Table4, poptsim, direct core.BuildPOPT callers) have a nil cache and
// build fresh, unchanged.

type artifacts struct {
	mu     sync.Mutex
	tables map[tableKey]*tableEntry
	lrs    map[lrKey]*lrEntry
}

// tableKey identifies one immutable Rereference Matrix table. The
// adjacency pointer is the graph identity: suite graphs are memoized, so
// the same input yields the same pointer for every cell of a sweep.
type tableKey struct {
	adj  *graph.Adj
	nv   int
	epl  int
	kind core.Kind
	bits uint
}

type lrKey struct {
	adj *graph.Adj
	epl int
}

// Entries carry a per-key once so a thundering herd of cells needing the
// same table at sweep start builds it exactly once without serializing
// builds of *different* tables behind one lock.
type tableEntry struct {
	once sync.Once
	t    *core.Table
}

type lrEntry struct {
	once sync.Once
	lr   *core.LineRefs
}

func newArtifacts() *artifacts {
	return &artifacts{tables: make(map[tableKey]*tableEntry), lrs: make(map[lrKey]*lrEntry)}
}

// table returns the memoized Rereference Matrix table for the key,
// building it on first use.
func (a *artifacts) table(k tableKey) *core.Table {
	a.mu.Lock()
	e := a.tables[k]
	if e == nil {
		e = new(tableEntry)
		a.tables[k] = e
	}
	a.mu.Unlock()
	e.once.Do(func() { e.t = core.BuildTable(k.adj, k.nv, k.epl, k.kind, k.bits) })
	return e.t
}

// lineRefs returns the memoized merged transpose for the key.
func (a *artifacts) lineRefs(k lrKey) *core.LineRefs {
	a.mu.Lock()
	e := a.lrs[k]
	if e == nil {
		e = new(lrEntry)
		a.lrs[k] = e
	}
	a.mu.Unlock()
	e.once.Do(func() { e.lr = core.BuildLineRefs(k.adj, k.epl) })
	return e.lr
}

// withArtifacts returns a copy of c carrying a fresh artifact cache;
// drivers call it once per experiment so all cells of the sweep share
// builds.
func (c Config) withArtifacts() Config {
	c.arts = newArtifacts()
	return c
}

// buildPOPT mirrors core.BuildPOPT — one Rereference Matrix per distinct
// elements-per-line, shared across the arrays (Section V-F) — but pulls
// tables from the artifact cache when one is installed, so concurrent
// cells share the encoded entries and differ only in their per-run Matrix
// views.
func (c Config) buildPOPT(refAdj *graph.Adj, numVertices int, kind core.Kind, bits uint, arrs ...*mem.Array) *core.POPT {
	if c.arts == nil {
		return core.BuildPOPT(refAdj, numVertices, kind, bits, arrs...)
	}
	streams := make([]core.Stream, len(arrs))
	byEPL := make(map[int]*core.Matrix)
	for i, arr := range arrs {
		epl := arr.ElemsPerLine()
		m := byEPL[epl]
		if m == nil {
			m = c.arts.table(tableKey{adj: refAdj, nv: numVertices, epl: epl, kind: kind, bits: bits}).NewMatrix()
			byEPL[epl] = m
		}
		streams[i] = core.Stream{Arr: arr, M: m}
	}
	return core.NewPOPT(streams...)
}

// buildTOPT mirrors core.BuildTOPT with memoized merged transposes.
func (c Config) buildTOPT(refAdj *graph.Adj, arrs ...*mem.Array) *core.TOPT {
	if c.arts == nil {
		return core.BuildTOPT(refAdj, arrs...)
	}
	streams := make([]core.OracleStream, len(arrs))
	for i, arr := range arrs {
		streams[i] = core.OracleStream{
			Arr: arr,
			Ref: refAdj,
			LR:  c.arts.lineRefs(lrKey{adj: refAdj, epl: arr.ElemsPerLine()}),
		}
	}
	return core.NewTOPT(streams...)
}
