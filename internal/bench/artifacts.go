package bench

import (
	"fmt"
	"sync"

	"popt/internal/core"
	"popt/internal/corpus"
	"popt/internal/graph"
	"popt/internal/kernels"
	"popt/internal/mem"
	"popt/internal/trace"
)

// Shared-artifact memoization for sweeps. Every P-OPT cell on the same
// (transpose, encoding, bits) rebuilds the same Rereference Matrix, and
// every T-OPT cell the same merged transpose — Table IV puts matrix
// construction alone at ~20% of a PageRank run, so at sweep scale the
// rebuilds dominate. An artifact cache keyed by the immutable inputs
// builds each product once and hands every cell a cheap per-run view
// (core.Table → core.Matrix, core.LineRefs shared directly); suite graphs
// are memoized one level down in package graph. Correctness rests on two
// invariants the tests pin with checksums: cached products are never
// written after construction, and a cached build is bit-identical to a
// fresh one.
//
// The cache is per-Config (each experiment driver installs its own via
// withArtifacts), not process-global: fig11 and friends generate
// throwaway graphs per call, and a global cache keyed by their adjacency
// pointers would pin them forever. Paths that *measure* build cost
// (Table4, poptsim, direct core.BuildPOPT callers) have a nil cache and
// build fresh, unchanged.

type artifacts struct {
	mu      sync.Mutex
	tables  map[tableKey]*tableEntry   //popt:guardedby mu
	lrs     map[lrKey]*lrEntry         //popt:guardedby mu
	streams map[streamKey]*streamEntry //popt:guardedby mu
}

// tableKey identifies one immutable Rereference Matrix table. The
// adjacency pointer is the graph identity: suite graphs are memoized, so
// the same input yields the same pointer for every cell of a sweep.
type tableKey struct {
	adj  *graph.Adj
	nv   int
	epl  int
	kind core.Kind
	bits uint
}

type lrKey struct {
	adj *graph.Adj
	epl int
}

// Entries carry a per-key once so a thundering herd of cells needing the
// same table at sweep start builds it exactly once without serializing
// builds of *different* tables behind one lock.
//
//popt:frozen
type tableEntry struct {
	once sync.Once
	t    *core.Table //popt:guardedby once
}

//popt:frozen
type lrEntry struct {
	once sync.Once
	lr   *core.LineRefs //popt:guardedby once
}

// streamKey identifies one recorded reference stream: a graph identity
// (suite graphs are memoized, so the pointer is stable across cells) plus
// a stream name covering everything else that shapes the emitted events —
// the kernel and its schedule ("PR", "PR-BDFS", "PR-tiled-8", ...).
type streamKey struct {
	g    *graph.Graph
	name string
}

// streamEntry memoizes one recorded LLC-visible stream together with the
// consumed workload that produced it: replays need the workload's
// immutable build inputs (transpose, irregular array layout) to
// instantiate policies. The LLC form is valid for any cell whose L1/L2
// shape matches the recorder's — within one experiment only fig16 varies
// the cache at all, and it varies just the LLC, which the stream does not
// depend on. With a corpus configured the stream lives on disk as a
// container entry (ent); otherwise it stays in memory (tr). Exactly one
// of the two is set after once fires.
//
//popt:frozen
type streamEntry struct {
	once sync.Once
	w    *kernels.Workload //popt:guardedby once
	tr   *trace.LLCTrace   //popt:guardedby once
	ent  *corpus.Entry     //popt:guardedby once
}

func newArtifacts() *artifacts {
	return &artifacts{
		tables:  make(map[tableKey]*tableEntry),
		lrs:     make(map[lrKey]*lrEntry),
		streams: make(map[streamKey]*streamEntry),
	}
}

// stream returns the (possibly still-unrecorded) entry for the key.
func (a *artifacts) stream(k streamKey) *streamEntry {
	a.mu.Lock()
	e := a.streams[k]
	if e == nil {
		e = new(streamEntry)
		a.streams[k] = e
	}
	a.mu.Unlock()
	return e
}

// table returns the memoized Rereference Matrix table for the key,
// building it on first use.
func (a *artifacts) table(k tableKey) *core.Table {
	a.mu.Lock()
	e := a.tables[k]
	if e == nil {
		e = new(tableEntry)
		a.tables[k] = e
	}
	a.mu.Unlock()
	e.once.Do(func() { e.t = core.BuildTable(k.adj, k.nv, k.epl, k.kind, k.bits) })
	return e.t
}

// lineRefs returns the memoized merged transpose for the key.
func (a *artifacts) lineRefs(k lrKey) *core.LineRefs {
	a.mu.Lock()
	e := a.lrs[k]
	if e == nil {
		e = new(lrEntry)
		a.lrs[k] = e
	}
	a.mu.Unlock()
	e.once.Do(func() { e.lr = core.BuildLineRefs(k.adj, k.epl) })
	return e.lr
}

// withArtifacts returns a copy of c carrying a fresh artifact cache;
// drivers call it once per experiment so all cells of the sweep share
// builds.
func (c Config) withArtifacts() Config {
	c.arts = newArtifacts()
	return c
}

// buildPOPT mirrors core.BuildPOPT — one Rereference Matrix per distinct
// elements-per-line, shared across the arrays (Section V-F) — but pulls
// tables from the artifact cache when one is installed, so concurrent
// cells share the encoded entries and differ only in their per-run Matrix
// views.
func (c Config) buildPOPT(refAdj *graph.Adj, numVertices int, kind core.Kind, bits uint, arrs ...*mem.Array) *core.POPT {
	if c.arts == nil {
		return core.BuildPOPT(refAdj, numVertices, kind, bits, arrs...)
	}
	streams := make([]core.Stream, len(arrs))
	byEPL := make(map[int]*core.Matrix)
	for i, arr := range arrs {
		epl := arr.ElemsPerLine()
		m := byEPL[epl]
		if m == nil {
			m = c.arts.table(tableKey{adj: refAdj, nv: numVertices, epl: epl, kind: kind, bits: bits}).NewMatrix()
			byEPL[epl] = m
		}
		streams[i] = core.Stream{Arr: arr, M: m}
	}
	return core.NewPOPT(streams...)
}

// StreamKey maps a named reference stream of g onto its corpus identity:
// the workload is the graph name plus its adjacency checksum (names alone
// are not unique — fig11's Uniform(4096, 4·4096) and the suite's
// URAND-12 share a name but not an edge list), the stream name is the
// schedule, and the config's scale/seed pin the generated input family
// and the L1/L2 shape. Exported so popttrace record pre-warms a corpus
// under exactly the keys sweeps look up.
func (c Config) StreamKey(g *graph.Graph, name string) corpus.Key {
	return corpus.Key{
		Workload: fmt.Sprintf("%s@%016x", g.Name, g.Checksum()),
		Schedule: name,
		Scale:    c.Scale.String(),
		Seed:     c.Seed,
	}
}

// streamHandle is a recorded stream in whichever form it exists: a corpus
// entry (out-of-core container replay) or an in-memory LLC trace.
type streamHandle struct {
	w   *kernels.Workload
	tr  *trace.LLCTrace
	ent *corpus.Entry
}

// recordOrOpen produces the stream for (g, name), preferring the corpus:
// a warm corpus entry is opened and setup s replayed from it (no record
// phase at all — the acceptance contract for cross-process reuse); a cold
// corpus records through the chunked container encoder and publishes; no
// corpus records in memory as before. The returned handle replays the
// same stream into any later setup via replayStream. build may be called
// more than once (each call must be deterministic): a failed corpus
// publication consumes its workload mid-record, so the in-memory fallback
// records into a fresh one.
func (c Config) recordOrOpen(g *graph.Graph, name string, build func() *kernels.Workload, s Setup) (Result, streamHandle) {
	if c.Corpus != nil {
		key := c.StreamKey(g, name)
		if ent := c.Corpus.Lookup(key); ent != nil {
			w := build()
			start := c.phaseStart()
			res := ReplayLLCEntry(c, w, ent, s)
			c.phaseDone(g.Name+"/"+name+"/"+s.Name, "replay", start)
			return res, streamHandle{w: w, ent: ent}
		}
		w := build()
		start := c.phaseStart()
		res, ent, err := RecordLLCToCorpus(c, w, s, key)
		if err == nil {
			c.phaseDone(g.Name+"/"+name, "record", start)
			return res, streamHandle{w: w, ent: ent}
		}
		// Publication failed (full disk, permissions): fall through and
		// record in memory — sweep results do not depend on the corpus,
		// only its reuse does.
	}
	w := build()
	start := c.phaseStart()
	res, tr := RecordLLC(c, w, s)
	c.phaseDone(g.Name+"/"+name, "record", start)
	return res, streamHandle{w: w, tr: tr}
}

// replayStream feeds the handle's stream into setup s.
func (c Config) replayStream(g *graph.Graph, name string, h streamHandle, s Setup) Result {
	start := c.phaseStart()
	var res Result
	if h.ent != nil {
		res = ReplayLLCEntry(c, h.w, h.ent, s)
	} else {
		res = ReplayLLC(c, h.w, h.tr, s)
	}
	c.phaseDone(g.Name+"/"+name+"/"+s.Name, "replay", start)
	return res
}

// runStream simulates setup s against the named reference stream of g,
// recording the LLC-visible stream once per (graph, stream) and replaying
// it into every later setup. The first cell to arrive produces the stream
// — from the corpus when one is configured and warm (no kernel execution
// at all), else by running its kernel live with an LLC encoder tapped
// onto its hierarchy (recording piggybacks on real work); all other cells
// replay, skipping kernel re-execution and L1/L2 simulation entirely.
// Replay is byte-identical to live execution (golden-tested), so which
// cell records is irrelevant and sweep reports stay deterministic at
// every worker count. With no artifact cache (or under NoReplay) every
// cell runs live, as before the trace pipeline.
//
// build must construct the workload deterministically from g alone: the
// stream name is trusted to cover kernel identity and schedule.
func (c Config) runStream(g *graph.Graph, name string, build func(g *graph.Graph) *kernels.Workload, s Setup) Result {
	if c.arts == nil || c.NoReplay {
		return RunWorkload(c, build(g), s)
	}
	e := c.arts.stream(streamKey{g: g, name: name})
	var first *Result
	e.once.Do(func() {
		res, h := c.recordOrOpen(g, name, func() *kernels.Workload { return build(g) }, s)
		e.w, e.tr, e.ent = h.w, h.tr, h.ent
		first = &res
	})
	if first != nil {
		return *first
	}
	return c.replayStream(g, name, streamHandle{w: e.w, tr: e.tr, ent: e.ent}, s)
}

// runSetups simulates several setups of one cell against a single stream
// of the named (graph, stream) pair: the first setup produces the stream
// (corpus-open, corpus-record, or in-memory record — see recordOrOpen),
// the rest replay it. Used by drivers whose cells compare policies on a
// workload that is not shared with other cells (per-cell variants,
// throwaway graphs); the (g, name) identity exists so such streams still
// land in the corpus under a stable cross-process key. Under NoReplay
// every setup runs a fresh build(), preserving the pre-trace behavior.
func (c Config) runSetups(g *graph.Graph, name string, build func() *kernels.Workload, setups ...Setup) []Result {
	out := make([]Result, len(setups))
	if len(setups) == 0 {
		return out
	}
	if c.NoReplay {
		for i, s := range setups {
			out[i] = RunWorkload(c, build(), s)
		}
		return out
	}
	res, h := c.recordOrOpen(g, name, build, setups[0])
	out[0] = res
	for i, s := range setups[1:] {
		out[i+1] = c.replayStream(g, name, h, s)
	}
	return out
}

// buildTOPT mirrors core.BuildTOPT with memoized merged transposes.
func (c Config) buildTOPT(refAdj *graph.Adj, arrs ...*mem.Array) *core.TOPT {
	if c.arts == nil {
		return core.BuildTOPT(refAdj, arrs...)
	}
	streams := make([]core.OracleStream, len(arrs))
	for i, arr := range arrs {
		streams[i] = core.OracleStream{
			Arr: arr,
			Ref: refAdj,
			LR:  c.arts.lineRefs(lrKey{adj: refAdj, epl: arr.ElemsPerLine()}),
		}
	}
	return core.NewTOPT(streams...)
}

