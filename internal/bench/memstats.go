package bench

import (
	"fmt"

	"popt/internal/mem"
	"popt/internal/trace"
)

// MemStats reports the resident footprint of the shared artifacts a sweep
// at this config would hold: per input graph, the adjacency bytes under
// the resolved layout against the plain-CSR equivalent, plus the analytic
// sizes of the two memoized preprocessing artifacts P-OPT cells share —
// the Rereference Matrix table and the merged transpose (core.LineRefs).
// The report is what -memstats prints and what BENCH_memory.json records;
// building it costs one suite construction and no simulation.
func MemStats(c Config) *Report {
	lay := c.Layout.Resolve(c.Scale)
	workers := trace.DefaultReplayWorkers()
	rep := &Report{
		ID:    "memstats",
		Title: fmt.Sprintf("resident bytes per shared artifact (scale %s, layout %s)", c.Scale, lay),
		Notes: []string{
			"adjacency = resident Out+In bytes under the resolved layout;",
			"plain-equiv = the same adjacencies as plain CSR (8(n+1)+4m per direction);",
			"reref = Rereference Matrix table at the paper's 8-bit default;",
			"linerefs = merged transpose for 4 B irregular elements (T-OPT artifact).",
			fmt.Sprintf("Corpus replay windows are bounded separately at window x chunk = %s on this host (%d workers, 2x window, %s chunks).",
				HumanBytes(uint64(2*workers*trace.DefaultChunkBytes)), workers, HumanBytes(trace.DefaultChunkBytes)),
		},
		Header: []string{"graph", "vertices", "edges", "adjacency", "plain-equiv", "ratio", "reref", "linerefs"},
	}
	var adjTotal, plainTotal, rrTotal, lrTotal uint64
	for _, g := range c.Suite() {
		n, m := g.NumVertices(), g.NumEdges()
		adj := g.Out.MemBytes() + g.In.MemBytes()
		plain := 2 * (8*uint64(n+1) + 4*uint64(m))
		rr := rerefTableBytes(n)
		lr := lineRefsBytes(n, m)
		adjTotal += adj
		plainTotal += plain
		rrTotal += rr
		lrTotal += lr
		rep.AddRow(g.Name,
			fmt.Sprintf("%d", n), fmt.Sprintf("%d", m),
			HumanBytes(adj), HumanBytes(plain),
			fmt.Sprintf("%.2fx", float64(plain)/float64(adj)),
			HumanBytes(rr), HumanBytes(lr))
	}
	rep.AddRow("TOTAL", "", "",
		HumanBytes(adjTotal), HumanBytes(plainTotal),
		fmt.Sprintf("%.2fx", float64(plainTotal)/float64(adjTotal)),
		HumanBytes(rrTotal), HumanBytes(lrTotal))
	return rep
}

// rerefTableBytes is the analytic size of core.BuildTable's entry matrix
// at the paper's 8-bit default for a 4 B-element irregular array: one
// uint16 per (cache line of the array) x (epoch), with min(256, n)
// epochs.
func rerefTableBytes(n int) uint64 {
	epl := mem.LineSize / 4
	lines := (n + epl - 1) / epl
	epochs := 256
	if epochs > n {
		epochs = n
	}
	return 2 * uint64(lines) * uint64(epochs)
}

// lineRefsBytes is the analytic size of core.BuildLineRefs' product for a
// 4 B-element irregular array (mem.LineSize/4 vertices per line): the
// offset array plus one 4 B reference per edge.
func lineRefsBytes(n, m int) uint64 {
	epl := mem.LineSize / 4
	lines := (n + epl - 1) / epl
	return 8*uint64(lines+1) + 4*uint64(m)
}

// HumanBytes renders a byte count in binary units with two significant
// decimals, the form popttrace info and -memstats print.
func HumanBytes(b uint64) string {
	const unit = 1024
	if b < unit {
		return fmt.Sprintf("%d B", b)
	}
	div, exp := uint64(unit), 0
	for n := b / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.2f %ciB", float64(b)/float64(div), "KMGTPE"[exp])
}
