package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"popt/internal/core"
	"popt/internal/graph"
	"popt/internal/kernels"
)

// sweepMatrix renders three structurally different experiments (a plain
// grid, a base+setups grid, and a per-cell-generated-graph sweep) at the
// given worker count.
func sweepMatrix(workers int) string {
	cfg := TinyConfig()
	cfg.Workers = workers
	var sb strings.Builder
	for _, run := range []func(Config) *Report{Fig2, Fig7, Fig11} {
		sb.WriteString(run(cfg).String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestSweepWorkerInvariance is the tentpole guarantee: sweep reports are
// byte-identical at every worker count, pinned against a checked-in golden
// so a regression can't slip in by breaking serial and parallel the same
// way twice.
func TestSweepWorkerInvariance(t *testing.T) {
	serial := sweepMatrix(1)
	for _, workers := range []int{2, runtime.GOMAXPROCS(0)} {
		if got := sweepMatrix(workers); got != serial {
			t.Fatalf("report at %d workers diverges from serial:\n--- parallel ---\n%s--- serial ---\n%s", workers, got, serial)
		}
	}

	goldenPath := filepath.Join("testdata", "sweep.golden")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, []byte(serial), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden (run `go test ./internal/bench -run SweepWorkerInvariance -update` after intentional changes): %v", err)
	}
	if string(want) != serial {
		t.Fatalf("sweep reports diverge from checked-in golden (intentional change? re-run with -update):\n--- got ---\n%s--- want ---\n%s", serial, want)
	}
}

// TestSweepPanicCell pins the failure path: a panicking cell surfaces as an
// error naming the cell, every other cell still runs, and the pool shuts
// down instead of deadlocking.
func TestSweepPanicCell(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran atomic.Int32
		cells := make([]Cell, 8)
		for i := range cells {
			if i == 3 {
				cells[i] = Cell{Key: "boom", Run: func() { panic("exploded") }}
				continue
			}
			cells[i] = Cell{Key: fmt.Sprintf("ok-%d", i), Run: func() { ran.Add(1) }}
		}
		err := (&Sweep{Workers: workers}).Run(cells)
		if err == nil {
			t.Fatalf("workers=%d: panic in cell not surfaced", workers)
		}
		for _, want := range []string{"cell 3", "boom", "exploded"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("workers=%d: error %q missing %q", workers, err, want)
			}
		}
		if got := ran.Load(); got != 7 {
			t.Errorf("workers=%d: %d of 7 healthy cells ran", workers, got)
		}
	}
}

// TestSweepFirstErrorByCellOrder checks Run reports the lowest-index
// failure regardless of completion order.
func TestSweepFirstErrorByCellOrder(t *testing.T) {
	cells := []Cell{
		{Key: "a", Run: func() { panic("first") }},
		{Key: "b", Run: func() { panic("second") }},
	}
	err := (&Sweep{Workers: 2}).Run(cells)
	if err == nil || !strings.Contains(err.Error(), "cell 0") || !strings.Contains(err.Error(), "first") {
		t.Fatalf("want cell 0 failure reported first, got %v", err)
	}
}

// TestSweepProgressEvents checks every cell produces exactly one event and
// Done counts are a permutation-free 1..N sequence.
func TestSweepProgressEvents(t *testing.T) {
	var events []CellEvent
	s := &Sweep{Workers: 4, Progress: func(ev CellEvent) { events = append(events, ev) }}
	cells := make([]Cell, 10)
	for i := range cells {
		cells[i] = Cell{Key: fmt.Sprintf("c%d", i), Run: func() {}}
	}
	if err := s.Run(cells); err != nil {
		t.Fatal(err)
	}
	if len(events) != len(cells) {
		t.Fatalf("got %d events for %d cells", len(events), len(cells))
	}
	seen := make(map[int]bool)
	for i, ev := range events {
		if ev.Done != i+1 || ev.Total != len(cells) {
			t.Errorf("event %d: Done=%d Total=%d", i, ev.Done, ev.Total)
		}
		if seen[ev.Index] {
			t.Errorf("cell %d reported twice", ev.Index)
		}
		seen[ev.Index] = true
	}
}

// TestArtifactSharing checks the memoization layer: two P-OPT builds on the
// same (graph, encoding, bits) share one encoded table, and two T-OPT
// builds one merged transpose, while each policy instance stays private.
func TestArtifactSharing(t *testing.T) {
	c := TinyConfig().withArtifacts()
	g := c.Suite()[0]
	w1 := kernels.NewPageRank(g)
	w2 := kernels.NewPageRank(g)
	p1 := c.buildPOPT(w1.RefAdj, w1.G.NumVertices(), core.InterIntra, 8, w1.Irregular...)
	p2 := c.buildPOPT(w2.RefAdj, w2.G.NumVertices(), core.InterIntra, 8, w2.Irregular...)
	if p1 == p2 {
		t.Fatal("policy instances must be per-cell, not shared")
	}
	if got := len(c.arts.tables); got != 1 { //lint:allow lockguard (single-threaded assert)
		t.Fatalf("two same-key P-OPT builds created %d tables, want 1", got)
	}
	c.buildTOPT(w1.RefAdj, w1.Irregular...)
	c.buildTOPT(w2.RefAdj, w2.Irregular...)
	if got := len(c.arts.lrs); got != 1 { //lint:allow lockguard (single-threaded assert)
		t.Fatalf("two same-key T-OPT builds created %d merged transposes, want 1", got)
	}

	// A cached build must be bit-identical to a fresh one.
	//lint:allow lockguard (single-threaded assert)
	for k, e := range c.arts.tables { //lint:ordered (independent per-key comparisons)
		fresh := core.BuildTable(k.adj, k.nv, k.epl, k.kind, k.bits)
		if fresh.Checksum() != e.t.Checksum() { //lint:allow lockguard
			t.Fatal("cached table diverges from a fresh build")
		}
	}
}

// TestSweepSharedInputsImmutable hashes every shared artifact before and
// after a full parallel experiment: no cell may write through the shared
// suite graphs, encoded tables, or merged transposes.
func TestSweepSharedInputsImmutable(t *testing.T) {
	c := TinyConfig()
	c.Workers = runtime.GOMAXPROCS(0)
	suite := c.Suite()
	pre := make([]uint64, len(suite))
	for i, g := range suite {
		pre[i] = g.Checksum()
	}
	// Pre-build every artifact the sweep will use, hash them, then run a
	// parallel P-OPT + T-OPT grid against the same cache.
	arts := newArtifacts()
	for _, g := range suite {
		w := kernels.NewPageRank(g)
		arts.table(tableKey{adj: w.RefAdj, nv: g.NumVertices(), epl: w.Irregular[0].ElemsPerLine(), kind: core.InterIntra, bits: 8})
		arts.lineRefs(lrKey{adj: w.RefAdj, epl: w.Irregular[0].ElemsPerLine()})
	}
	tableSums := make(map[tableKey]uint64)
	//lint:allow lockguard (single-threaded before the sweep)
	for k, e := range arts.tables { //lint:ordered (checksums keyed, order-independent)
		tableSums[k] = e.t.Checksum() //lint:allow lockguard
	}
	lrSums := make(map[lrKey]uint64)
	//lint:allow lockguard (single-threaded before the sweep)
	for k, e := range arts.lrs { //lint:ordered (checksums keyed, order-independent)
		lrSums[k] = e.lr.Checksum() //lint:allow lockguard
	}

	cArt := c
	cArt.arts = arts
	sweepGrid(cArt, "immut", suite, []Setup{POPTSetup(core.InterIntra, 8, true), TOPTSetup()}, func(g *graph.Graph, s Setup) Result {
		return RunWorkload(cArt, kernels.NewPageRank(g), s)
	})

	for i, g := range suite {
		if g.Checksum() != pre[i] {
			t.Fatalf("suite graph %s mutated by sweep", g.Name)
		}
	}
	//lint:allow lockguard (single-threaded after the sweep joined)
	for k, e := range arts.tables { //lint:ordered (checksums keyed, order-independent)
		if e.t.Checksum() != tableSums[k] { //lint:allow lockguard
			t.Fatal("shared Rereference Matrix table mutated by sweep")
		}
	}
	//lint:allow lockguard (single-threaded after the sweep joined)
	for k, e := range arts.lrs { //lint:ordered (checksums keyed, order-independent)
		if e.lr.Checksum() != lrSums[k] { //lint:allow lockguard
			t.Fatal("shared merged transpose mutated by sweep")
		}
	}
}

// TestSuiteMemoized checks graph.Suite returns the same immutable graph
// pointers on every call, and that the returned slice itself is fresh.
func TestSuiteMemoized(t *testing.T) {
	a := graph.Suite(graph.ScaleTiny, 42)
	b := graph.Suite(graph.ScaleTiny, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("suite graph %d rebuilt instead of memoized", i)
		}
	}
	a[0] = nil
	if c := graph.Suite(graph.ScaleTiny, 42); c[0] == nil {
		t.Fatal("caller writes alias the cached suite slice")
	}
}

// BenchmarkSweep measures one full fig2 sweep at tiny scale, serial vs all
// cores; the recorded numbers live in BENCH_sweep.json.
func BenchmarkSweep(b *testing.B) {
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("fig2-j%d", workers), func(b *testing.B) {
			cfg := TinyConfig()
			cfg.Workers = workers
			for i := 0; i < b.N; i++ {
				Fig2(cfg)
			}
		})
	}
}
