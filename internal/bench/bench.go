// Package bench regenerates every table and figure of the paper's
// evaluation (Section VII). Each experiment is a named driver that builds
// workloads, runs them under the relevant policy setups, and reports the
// same rows/series the paper plots. Experiment IDs mirror the paper:
// fig2..fig16, table1..table4.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"popt/internal/cache"
	"popt/internal/core"
	"popt/internal/corpus"
	"popt/internal/graph"
	"popt/internal/kernels"
	"popt/internal/perf"
	"popt/internal/trace"
)

// Config selects the input scale and cache shape for a run.
type Config struct {
	Scale graph.Scale
	Seed  int64
	// Layout selects the adjacency storage the suite is built with:
	// LayoutAuto (zero value) resolves to compact at ScaleLarge and plain
	// elsewhere; poptbench -layout overrides it. Reports are byte-identical
	// across layouts — kernels consume the layout-neutral Adj API.
	Layout graph.Layout
	// Cache returns the hierarchy configuration for an LLC policy; when
	// nil, the scale-matched default is used.
	Cache func(llc func() cache.Policy) cache.Config
	// CheckPolicies wraps every LLC policy in cache.NewCheckedPolicy,
	// panicking on Policy-contract violations. Costs one lines-snapshot
	// per eviction; meant for tests and -check runs, not large sweeps.
	CheckPolicies bool
	// Workers bounds the sweep engine's cell parallelism: 0 means
	// GOMAXPROCS, 1 forces serial execution. Reports are byte-identical
	// at every worker count; see sweep.go.
	Workers int
	// Progress, when non-nil, receives one event per completed sweep
	// cell (poptbench -progress wires it to stderr).
	Progress func(CellEvent)
	// PhaseProgress, when non-nil, receives one event per completed
	// sub-phase of a cell — stream recording and stream replay — so
	// large-scale runs, where a single record can take minutes, show a
	// heartbeat between cell completions. Events are host-side
	// observability only; reports never depend on them. Callbacks may
	// arrive concurrently from sweep workers.
	PhaseProgress func(PhaseEvent)
	// NoReplay disables reference-stream record/replay sharing: every
	// cell re-executes its kernel live, as before the trace pipeline
	// existed. Replay is byte-identical to live execution (golden-tested),
	// so this exists only for A/B timing (poptbench -noreplay).
	NoReplay bool
	// Corpus, when non-nil, persists recorded LLC streams as chunked
	// container files keyed by (workload, schedule, scale, seed) and
	// replays them out of core across processes: a warm corpus skips every
	// record phase of a sweep. Streams are keyed by the inputs that shape
	// the recorded bytes — the scale name covers the L1/L2 shape (only
	// fig16 varies the cache within an experiment, and it varies just the
	// LLC geometry, which the stream does not depend on). Reports are
	// byte-identical with or without a corpus (golden-tested).
	Corpus *corpus.Store
	// arts memoizes immutable build products (Rereference Matrix tables,
	// merged transposes) across the cells of one experiment; nil means
	// build fresh per cell. Installed by withArtifacts.
	arts *artifacts
}

// DefaultConfig is the standard experiment configuration.
func DefaultConfig() Config { return Config{Scale: graph.ScaleDefault, Seed: 42} }

// TinyConfig is a fast configuration for tests and benchmarks.
func TinyConfig() Config { return Config{Scale: graph.ScaleTiny, Seed: 42} }

func (c Config) cacheConfig(llc func() cache.Policy) cache.Config {
	if c.Cache != nil {
		return c.Cache(llc)
	}
	switch c.Scale {
	case graph.ScaleTiny:
		return cache.Config{
			L1Size: 1 << 10, L1Ways: 4,
			L2Size: 4 << 10, L2Ways: 4,
			LLCSize: 16 << 10, LLCWays: 16,
			LLCPolicy: llc,
		}
	case graph.ScaleLarge:
		return cache.TableI(llc)
	default:
		return cache.Scaled(llc)
	}
}

// Suite returns the input graphs for the config.
func (c Config) Suite() []*graph.Graph { return graph.SuiteLayout(c.Scale, c.Seed, c.Layout) }

// Report is a rendered experiment result.
type Report struct {
	ID     string
	Title  string
	Notes  []string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// CSV renders the report as comma-separated values (header row first).
// Cells containing commas or quotes are quoted.
func (r *Report) CSV() string {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				sb.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(r.Header)
	for _, row := range r.Rows {
		writeRow(row)
	}
	return sb.String()
}

// String renders an aligned text table.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Title)
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "   %s\n", n)
	}
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	return sb.String()
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(c Config) *Report
}

// registry builds the sorted experiment list exactly once; Registry and
// ByID used to rebuild (and re-sort) it per call.
var registry = sync.OnceValue(func() []Experiment {
	exps := []Experiment{
		{"fig2", "LLC MPKI across state-of-the-art policies (PageRank)", Fig2},
		{"fig4", "T-OPT vs. state-of-the-art policies (PageRank MPKI)", Fig4},
		{"fig7", "Rereference Matrix designs vs. T-OPT (miss reduction over DRRIP)", Fig7},
		{"fig10", "Speedups and LLC miss reductions with P-OPT and T-OPT", Fig10},
		{"fig11", "P-OPT vs. P-OPT-SE across graph sizes", Fig11},
		{"fig12a", "P-OPT vs. GRASP on DBG-ordered graphs", Fig12a},
		{"fig12b", "P-OPT vs. HATS-BDFS", Fig12b},
		{"fig13", "P-OPT and CSR-segmenting (tiling) interaction", Fig13},
		{"fig14", "P-OPT with Propagation Blocking and PHI", Fig14},
		{"fig15", "Sensitivity to quantization width", Fig15},
		{"fig16", "Sensitivity to LLC size and associativity", Fig16},
		{"table1", "Simulation parameters", Table1},
		{"table2", "Applications", Table2},
		{"table3", "Input graphs", Table3},
		{"table4", "Rereference Matrix preprocessing cost", Table4},
	}
	sort.Slice(exps, func(i, j int) bool { return exps[i].ID < exps[j].ID })
	return exps
})

// byID indexes the registry for O(1) lookup.
var byID = sync.OnceValue(func() map[string]Experiment {
	m := make(map[string]Experiment, len(registry()))
	for _, e := range registry() {
		m[e.ID] = e
	}
	return m
})

// Registry returns every experiment, sorted by ID. The returned slice is
// a copy; callers may reorder it.
func Registry() []Experiment {
	exps := registry()
	out := make([]Experiment, len(exps))
	copy(out, exps)
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	e, ok := byID()[id]
	return e, ok
}

// Result captures one simulated run for reporting.
type Result struct {
	Policy string
	H      *cache.Hierarchy
	// Instructions is the retired-instruction count, owned by the run's
	// trace.Sim (identical whether the stream was live or replayed).
	Instructions uint64
	Streamed     uint64  // Rereference Matrix bytes (P-OPT only)
	Reserved     int     // reserved LLC ways
	TieRate      float64 // P-OPT tie rate
}

// MPKI returns the run's LLC misses per kilo-instruction, the paper's
// primary locality metric (Fig. 2, 4).
func (r Result) MPKI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.H.LLC.Stats.Misses) / (float64(r.Instructions) / 1000)
}

// Breakdown models the run's cycles.
func (r Result) Breakdown() perf.Breakdown {
	return perf.Model(r.H, r.Instructions, r.Streamed, perf.Default())
}

// MissReduction returns the relative LLC miss reduction of r vs. base in
// percent (positive = fewer misses).
func MissReduction(base, r Result) float64 {
	b := float64(base.H.LLC.Stats.Misses)
	if b == 0 {
		return 0
	}
	return 100 * (b - float64(r.H.LLC.Stats.Misses)) / b
}

// Setup names a policy configuration applicable to any workload.
type Setup struct {
	Name string
	// Make builds the LLC policy for workload w under the given cache
	// configuration; it returns the policy, the update_index hook (nil if
	// unused), and the number of reserved ways. The Config carries the
	// run context — in particular the sweep's artifact cache, which lets
	// P-OPT/T-OPT setups reuse memoized Rereference Matrix tables and
	// merged transposes instead of rebuilding them per cell.
	Make func(c Config, w *kernels.Workload, cfg cache.Config) (cache.Policy, core.VertexIndexed, int)
}

// Plain wraps a workload-independent policy constructor.
func Plain(name string, mk func() cache.Policy) Setup {
	return Setup{Name: name, Make: func(Config, *kernels.Workload, cache.Config) (cache.Policy, core.VertexIndexed, int) {
		return mk(), nil, 0
	}}
}

// LRUSetup and friends are the baseline policy zoo.
func LRUSetup() Setup    { return Plain("LRU", func() cache.Policy { return cache.NewLRU() }) }
func DRRIPSetup() Setup  { return Plain("DRRIP", func() cache.Policy { return cache.NewDRRIP(1) }) }
func SHiPPCSetup() Setup { return Plain("SHiP-PC", func() cache.Policy { return cache.NewSHiPPC() }) }
func SHiPMemSetup() Setup {
	return Plain("SHiP-Mem", func() cache.Policy { return cache.NewSHiPMem() })
}
func HawkeyeSetup() Setup { return Plain("Hawkeye", func() cache.Policy { return cache.NewHawkeye() }) }

// TOPTSetup builds the idealized transpose oracle.
func TOPTSetup() Setup {
	return Setup{Name: "T-OPT", Make: func(c Config, w *kernels.Workload, _ cache.Config) (cache.Policy, core.VertexIndexed, int) {
		p := c.buildTOPT(w.RefAdj, w.Irregular...)
		return p, p, 0
	}}
}

// POPTSetup builds P-OPT with the given encoding and width. When
// chargeWays is false the reserved-way capacity cost is omitted (the
// paper's limit-case studies, Fig. 7 and 15, do this).
func POPTSetup(kind core.Kind, bits uint, chargeWays bool) Setup {
	name := "P-OPT"
	switch kind {
	case core.InterOnly:
		name = "P-OPT-inter-only"
	case core.SingleEpoch:
		name = "P-OPT-SE"
	}
	if bits != 8 {
		name = fmt.Sprintf("%s-%db", name, bits)
	}
	return Setup{Name: name, Make: func(c Config, w *kernels.Workload, cfg cache.Config) (cache.Policy, core.VertexIndexed, int) {
		p := c.buildPOPT(w.RefAdj, w.G.NumVertices(), kind, bits, w.Irregular...)
		reserve := 0
		if chargeWays {
			reserve = p.ReservedWays(cfg.LLCSize / (cfg.LLCWays * 64))
		}
		return p, p, reserve
	}}
}

// builtCell is one policy setup instantiated for a workload: the
// hierarchy, the update_index hook, and the raw policy for P-OPT metric
// extraction. Live runs, recording runs, and replays all start from the
// same built cell and differ only in how events reach its Sim.
type builtCell struct {
	name    string
	h       *cache.Hierarchy
	hook    core.VertexIndexed
	rawPol  cache.Policy
	reserve int
}

// buildCell instantiates setup s for workload w under c's cache config.
func buildCell(c Config, w *kernels.Workload, s Setup) builtCell {
	var pol cache.Policy
	cfg := c.cacheConfig(func() cache.Policy { return pol })
	rawPol, hook, reserve := s.Make(c, w, cfg)
	pol = rawPol
	if c.CheckPolicies {
		// Wrap only the Policy seat: optional hook interfaces (epoch
		// resets, tile switches) are dispatched on `hook`, which stays the
		// raw policy, so checking never changes simulated behavior.
		pol = cache.NewCheckedPolicy(rawPol)
	}
	if reserve >= cfg.LLCWays {
		reserve = cfg.LLCWays - 1 // metadata would swamp the LLC; saturate
	}
	h := cache.NewHierarchy(cfg)
	if reserve > 0 {
		h.ReserveLLC(reserve)
	}
	return builtCell{name: s.Name, h: h, hook: hook, rawPol: rawPol, reserve: reserve}
}

// sim builds the cell's live sink.
func (b builtCell) sim() *trace.Sim { return trace.NewSim(b.h, b.hook) }

// finish packages the cell's state after its stream has been consumed.
func (b builtCell) finish(sim *trace.Sim) Result {
	res := Result{Policy: b.name, H: b.h, Instructions: sim.Instructions, Reserved: b.reserve}
	if p, ok := b.rawPol.(*core.POPT); ok {
		res.Streamed = p.BytesStreamed
		res.TieRate = p.TieRate()
	}
	return res
}

// RunWorkload simulates one (workload, setup) pair under c's cache config
// and returns the result. The workload must be freshly built (its state is
// consumed).
func RunWorkload(c Config, w *kernels.Workload, s Setup) Result {
	b := buildCell(c, w, s)
	sim := b.sim()
	w.Run(kernels.NewSinkRunner(sim))
	return b.finish(sim)
}

// RecordWorkload simulates one (workload, setup) pair live while encoding
// the emitted reference stream, returning both the result and the trace.
// The reference stream depends only on the workload (graph + schedule),
// never on the policy setup — hooks and filters observe the stream without
// steering kernel control flow — so the returned trace can drive any other
// setup via ReplayWorkload with results byte-identical to a live run.
func RecordWorkload(c Config, w *kernels.Workload, s Setup) (Result, *trace.Trace) {
	b := buildCell(c, w, s)
	sim := b.sim()
	enc := trace.NewEncoder()
	w.Run(kernels.NewSinkRunner(trace.NewTee(sim, enc)))
	return b.finish(sim), enc.Trace()
}

// ReplayWorkload feeds a recorded reference stream into setup s. w is only
// consulted for its immutable build inputs (graph, transpose, irregular
// array layout — what Setup.Make needs); its kernel state is not run, so
// one consumed workload can serve any number of replays.
func ReplayWorkload(c Config, w *kernels.Workload, tr *trace.Trace, s Setup) Result {
	b := buildCell(c, w, s)
	sim := b.sim()
	tr.Replay(sim)
	return b.finish(sim)
}

// RecordLLC simulates one (workload, setup) pair live while recording the
// LLC-visible stream — the paper's own trace form: the demand accesses
// that miss L2, the writebacks they push down, and the hook events
// between them. L1/L2 run fixed Bit-PLRU and are never back-invalidated,
// so this stream (and the instruction and L1/L2 statistic totals riding
// in the trace) is identical under every LLC policy; ReplayLLC feeds it
// to any other setup touching only the LLC.
func RecordLLC(c Config, w *kernels.Workload, s Setup) (Result, *trace.LLCTrace) {
	b := buildCell(c, w, s)
	sim := b.sim()
	enc := trace.NewLLCEncoder()
	b.h.Tap = enc
	w.Run(kernels.NewSinkRunner(trace.NewTee(sim, enc)))
	b.h.Tap = nil
	return b.finish(sim), enc.Trace(sim.Instructions, b.h.L1.Stats, b.h.L2.Stats)
}

// ReplayLLC feeds a recorded LLC-visible stream into setup s, simulating
// only the LLC (the trace's L1/L2 statistics and instruction totals are
// installed verbatim). Results are byte-identical to a live run — the
// replay-equivalence golden pins this across the policy zoo. As with
// ReplayWorkload, w is only consulted for immutable build inputs.
func ReplayLLC(c Config, w *kernels.Workload, tr *trace.LLCTrace, s Setup) Result {
	b := buildCell(c, w, s)
	sim := b.sim()
	tr.Replay(sim)
	return b.finish(sim)
}

// RecordLLCToCorpus is RecordLLC's persistent form: the LLC-visible
// stream goes through a chunked container encoder straight into the
// corpus (never materialized in memory as one buffer), and the published
// entry replays the same stream in this or any later process. The
// recording run's own result is returned alongside the entry.
func RecordLLCToCorpus(c Config, w *kernels.Workload, s Setup, key corpus.Key) (Result, *corpus.Entry, error) {
	var res Result
	ent, err := c.Corpus.Publish(key, trace.KindLLC, func(cw *trace.ContainerWriter) error {
		b := buildCell(c, w, s)
		sim := b.sim()
		enc := trace.NewChunkedLLCEncoder(cw)
		b.h.Tap = enc
		w.Run(kernels.NewSinkRunner(trace.NewTee(sim, enc)))
		b.h.Tap = nil
		res = b.finish(sim)
		return enc.Finish(sim.Instructions, b.h.L1.Stats, b.h.L2.Stats)
	})
	if err != nil {
		return Result{}, nil, err
	}
	return res, ent, nil
}

// ReplayLLCEntry feeds a corpus-resident LLC stream into setup s,
// decoding chunks out of core (resident memory stays bounded by the
// reader's chunk window, not the stream size). Results are byte-identical
// to ReplayLLC of the same stream: the container replay preserves the
// probe sequence and hook-mark positions exactly.
func ReplayLLCEntry(c Config, w *kernels.Workload, ent *corpus.Entry, s Setup) Result {
	b := buildCell(c, w, s)
	sim := b.sim()
	if err := ent.Reader().ReplayLLC(sim, trace.ReplayOptions{}); err != nil {
		// The entry was validated at open and Publish; damage appearing
		// between open and replay is corruption mid-run, not a condition a
		// sweep cell can recover from.
		panic(fmt.Sprintf("bench: corpus replay of %s: %v", ent.Path, err))
	}
	return b.finish(sim)
}

// pct formats a percentage.
func pct(x float64) string { return fmt.Sprintf("%+.1f%%", x) }

// f2 formats a float with two decimals.
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }

// SDBPSetup builds the dead-block-prediction baseline (related work).
func SDBPSetup() Setup { return Plain("SDBP", func() cache.Policy { return cache.NewSDBP() }) }

// DIPSetup builds the adaptive-insertion baseline.
func DIPSetup() Setup { return Plain("DIP", func() cache.Policy { return cache.NewDIP(1) }) }

// AllBaselineSetups returns the full policy zoo, useful for tools.
func AllBaselineSetups() []Setup {
	return []Setup{
		LRUSetup(), DIPSetup(), DRRIPSetup(), SHiPPCSetup(), SHiPMemSetup(),
		HawkeyeSetup(), SDBPSetup(),
	}
}
