package bench

import (
	"fmt"

	"popt/internal/cache"
	"popt/internal/core"
	"popt/internal/graph"
	"popt/internal/kernels"
)

// Fig2 reproduces Figure 2: LLC MPKI for PageRank under LRU, DRRIP,
// SHiP-PC, SHiP-Mem and Hawkeye. The paper's finding: none substantially
// beats LRU; miss rates sit at 60-70%.
func Fig2(c Config) *Report {
	c = c.withArtifacts()
	setups := []Setup{LRUSetup(), DRRIPSetup(), SHiPPCSetup(), SHiPMemSetup(), HawkeyeSetup()}
	rep := &Report{
		ID: "fig2", Title: "LLC MPKI across state-of-the-art policies (PageRank); lower is better",
		Notes:  []string{"Paper: all policies land within a few percent of LRU, 60-70% miss rates."},
		Header: append([]string{"graph"}, setupNames(setups)...),
	}
	suite := c.Suite()
	results := sweepGrid(c, "fig2", suite, setups, func(g *graph.Graph, s Setup) Result {
		return c.runStream(g, "PR", kernels.NewPageRank, s)
	})
	missRates := &Report{Header: rep.Header}
	for gi, g := range suite {
		row := []string{g.Name}
		mrRow := []string{g.Name}
		for si := range setups {
			res := results[gi][si]
			row = append(row, f2(res.MPKI()))
			mrRow = append(mrRow, fmt.Sprintf("%.0f%%", 100*res.H.LLCMissRate()))
		}
		rep.AddRow(row...)
		missRates.AddRow(mrRow...)
	}
	rep.Notes = append(rep.Notes, "LLC miss rates per policy:")
	for _, r := range missRates.Rows {
		rep.Notes = append(rep.Notes, fmt.Sprintf("  %v", r))
	}
	return rep
}

// sweepGrid fans the (graph × setup) cross-product — the shape shared by
// fig2, fig4, and the base+setups drivers — across the sweep pool. Each
// cell writes only its own [gi][si] slot, so assembly in enumeration order
// is byte-identical to the serial loops at any worker count.
func sweepGrid(c Config, id string, suite []*graph.Graph, setups []Setup, run func(*graph.Graph, Setup) Result) [][]Result {
	results := make([][]Result, len(suite))
	cells := make([]Cell, 0, len(suite)*len(setups))
	for gi, g := range suite {
		results[gi] = make([]Result, len(setups))
		for si, s := range setups {
			cells = append(cells, Cell{
				Key: id + "/" + g.Name + "/" + s.Name,
				Run: func() { results[gi][si] = run(g, s) },
			})
		}
	}
	c.runCells(cells)
	return results
}

// Fig4 reproduces Figure 4: adding the idealized T-OPT to the Figure 2
// lineup. The paper reports T-OPT cutting misses 1.67x on average vs LRU.
func Fig4(c Config) *Report {
	c = c.withArtifacts()
	setups := []Setup{LRUSetup(), DRRIPSetup(), SHiPPCSetup(), SHiPMemSetup(), HawkeyeSetup(), TOPTSetup()}
	rep := &Report{
		ID: "fig4", Title: "T-OPT vs state-of-the-art policies, PageRank LLC MPKI; lower is better",
		Notes:  []string{"Paper: T-OPT reduces misses 1.67x on average vs LRU (41% vs 60-70% miss rate)."},
		Header: append([]string{"graph"}, append(setupNames(setups), "LRU/T-OPT")...),
	}
	suite := c.Suite()
	results := sweepGrid(c, "fig4", suite, setups, func(g *graph.Graph, s Setup) Result {
		return c.runStream(g, "PR", kernels.NewPageRank, s)
	})
	var ratioSum float64
	for gi, g := range suite {
		row := []string{g.Name}
		var lruM, toptM uint64
		for si, s := range setups {
			res := results[gi][si]
			row = append(row, f2(res.MPKI()))
			switch s.Name {
			case "LRU":
				lruM = res.H.LLC.Stats.Misses
			case "T-OPT":
				toptM = res.H.LLC.Stats.Misses
			}
		}
		ratio := float64(lruM) / float64(toptM)
		ratioSum += ratio
		row = append(row, fmt.Sprintf("%.2fx", ratio))
		rep.AddRow(row...)
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf("Mean LRU/T-OPT miss ratio: %.2fx", ratioSum/float64(len(suite))))
	return rep
}

// Fig7 reproduces Figure 7: LLC miss reduction relative to DRRIP for the
// two Rereference Matrix designs and idealized T-OPT, PageRank. Reserved
// ways ARE charged for the P-OPT variants (that is Figure 7's point:
// spending LLC on metadata still wins).
func Fig7(c Config) *Report {
	c = c.withArtifacts()
	setups := []Setup{
		POPTSetup(core.InterOnly, 8, true),
		POPTSetup(core.InterIntra, 8, true),
		TOPTSetup(),
	}
	rep := &Report{
		ID: "fig7", Title: "LLC miss reduction over DRRIP, PageRank; higher is better",
		Notes:  []string{"Paper: inter+intra closely tracks the zero-overhead T-OPT; inter-only trails."},
		Header: append([]string{"graph"}, setupNames(setups)...),
	}
	suite := c.Suite()
	withBase := append([]Setup{DRRIPSetup()}, setups...)
	results := sweepGrid(c, "fig7", suite, withBase, func(g *graph.Graph, s Setup) Result {
		return c.runStream(g, "PR", kernels.NewPageRank, s)
	})
	for gi, g := range suite {
		base := results[gi][0]
		row := []string{g.Name}
		for si := range setups {
			row = append(row, pct(MissReduction(base, results[gi][si+1])))
		}
		rep.AddRow(row...)
	}
	return rep
}

// Fig15 reproduces Figure 15: P-OPT at 4-, 8- and 16-bit quantization,
// limit-case (no reserved-way cost), with replacement tie rates. The paper
// reports tie rates of ~41%, ~12% and ~0%.
func Fig15(c Config) *Report {
	c = c.withArtifacts()
	setups := []Setup{
		POPTSetup(core.InterIntra, 4, false),
		POPTSetup(core.InterIntra, 8, false),
		POPTSetup(core.InterIntra, 16, false),
		TOPTSetup(),
	}
	rep := &Report{
		ID: "fig15", Title: "Quantization sensitivity: miss reduction over DRRIP (limit case, no way cost)",
		Notes:  []string{"Paper: 8-bit closely approximates T-OPT; tie rates ~41%/12%/0% for 4/8/16 bits."},
		Header: append([]string{"graph"}, append(setupNames(setups), "ties(4b)", "ties(8b)", "ties(16b)")...),
	}
	suite := c.Suite()
	withBase := append([]Setup{DRRIPSetup()}, setups...)
	results := sweepGrid(c, "fig15", suite, withBase, func(g *graph.Graph, s Setup) Result {
		return c.runStream(g, "PR", kernels.NewPageRank, s)
	})
	var tieSums [3]float64
	for gi, g := range suite {
		base := results[gi][0]
		row := []string{g.Name}
		var ties []string
		for i, s := range setups {
			res := results[gi][i+1]
			row = append(row, pct(MissReduction(base, res)))
			if s.Name != "T-OPT" {
				ties = append(ties, fmt.Sprintf("%.0f%%", 100*res.TieRate))
				tieSums[i] += res.TieRate
			}
		}
		rep.AddRow(append(row, ties...)...)
	}
	n := float64(len(suite))
	rep.Notes = append(rep.Notes, fmt.Sprintf("Mean tie rates: 4b=%.0f%% 8b=%.0f%% 16b=%.0f%%",
		100*tieSums[0]/n, 100*tieSums[1]/n, 100*tieSums[2]/n))
	return rep
}

// Fig16 reproduces Figure 16: P-OPT's miss reduction over DRRIP as LLC
// capacity and associativity scale. The paper: the benefit grows with both.
func Fig16(c Config) *Report {
	c = c.withArtifacts()
	rep := &Report{
		ID: "fig16", Title: "Sensitivity to LLC size and associativity: P-OPT miss reduction over DRRIP (PageRank)",
		Notes:  []string{"Paper: larger LLCs shrink the metadata fraction; more ways give P-OPT more candidates."},
		Header: []string{"graph", "config", "reservedWays", "missReduction"},
	}
	base := c.cacheConfig(nil)
	type variant struct {
		label string
		size  int
		ways  int
	}
	variants := []variant{
		{"0.5x-size", base.LLCSize / 2, base.LLCWays},
		{"1x-size", base.LLCSize, base.LLCWays},
		{"2x-size", base.LLCSize * 2, base.LLCWays},
		{"8-way", base.LLCSize, 8},
		{"16-way", base.LLCSize, 16},
		{"32-way", base.LLCSize, 32},
	}
	// Sensitivity sweeps use two contrasting graphs to bound runtime.
	suite := c.Suite()
	graphs := []*graph.Graph{suite[0], suite[3]} // power-law and uniform
	type cellOut struct{ base, popt Result }
	results := make([][]cellOut, len(graphs))
	var cells []Cell
	for gi, g := range graphs {
		results[gi] = make([]cellOut, len(variants))
		for vi, v := range variants {
			vc := c
			size, ways := v.size, v.ways
			vc.Cache = func(llc func() cache.Policy) cache.Config {
				cfg := c.cacheConfig(llc)
				cfg.LLCSize, cfg.LLCWays = size, ways
				return cfg
			}
			cells = append(cells, Cell{
				Key: "fig16/" + g.Name + "/" + v.label,
				Run: func() {
					// vc shares c's artifact cache, so all cache-shape
					// variants of a graph replay one recorded stream (the
					// reference stream does not depend on the hierarchy).
					results[gi][vi] = cellOut{
						base: vc.runStream(g, "PR", kernels.NewPageRank, DRRIPSetup()),
						popt: vc.runStream(g, "PR", kernels.NewPageRank, POPTSetup(core.InterIntra, 8, true)),
					}
				},
			})
		}
	}
	c.runCells(cells)
	for gi, g := range graphs {
		for vi, v := range variants {
			out := results[gi][vi]
			rep.AddRow(g.Name, v.label, fmt.Sprintf("%d/%d", out.popt.Reserved, v.ways), pct(MissReduction(out.base, out.popt)))
		}
	}
	return rep
}

func setupNames(setups []Setup) []string {
	names := make([]string, len(setups))
	for i, s := range setups {
		names[i] = s.Name
	}
	return names
}
