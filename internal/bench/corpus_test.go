package bench

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"

	"popt/internal/corpus"
	"popt/internal/graph"
	"popt/internal/kernels"
)

// phaseLog collects PhaseEvents from concurrent sweep workers.
type phaseLog struct {
	mu     sync.Mutex
	counts map[string]int // phase name -> events
}

func (p *phaseLog) hook() func(PhaseEvent) {
	p.counts = make(map[string]int)
	return func(e PhaseEvent) {
		p.mu.Lock()
		p.counts[e.Phase]++
		p.mu.Unlock()
	}
}

func (p *phaseLog) get(phase string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.counts[phase]
}

// TestCorpusSweepMatchesInMemory is the acceptance contract for the
// persistent corpus: a sweep with -corpus produces byte-identical reports
// to the in-memory path, cold (recording through the chunked container
// encoder) and warm (replaying a corpus another process wrote). The warm
// run must additionally skip every record phase — the whole point of
// persisting streams. Fig2 exercises runStream; transitively this is
// golden-pinned, because the in-memory Fig2 CSV is itself checked against
// the sweep determinism goldens.
func TestCorpusSweepMatchesInMemory(t *testing.T) {
	base := TinyConfig()
	want := Fig2(base).CSV()
	dir := t.TempDir()

	// Cold: empty corpus, every stream records to disk.
	s1, err := corpus.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	cold := base
	cold.Corpus = s1
	var coldLog phaseLog
	cold.PhaseProgress = coldLog.hook()
	if got := Fig2(cold).CSV(); got != want {
		t.Errorf("cold-corpus Fig2 diverges from in-memory:\n--- in-memory\n%s--- corpus\n%s", want, got)
	}
	if coldLog.get("record") == 0 {
		t.Error("cold-corpus sweep recorded nothing")
	}

	// Warm: a second store over the same directory stands in for a second
	// process. Byte-identical report, zero record phases, only replays.
	s2, err := corpus.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	warm := base
	warm.Corpus = s2
	var warmLog phaseLog
	warm.PhaseProgress = warmLog.hook()
	if got := Fig2(warm).CSV(); got != want {
		t.Errorf("warm-corpus Fig2 diverges from in-memory:\n--- in-memory\n%s--- corpus\n%s", want, got)
	}
	if n := warmLog.get("record"); n != 0 {
		t.Errorf("warm-corpus sweep ran %d record phase(s); a warm corpus must only replay", n)
	}
	if warmLog.get("replay") == 0 {
		t.Error("warm-corpus sweep emitted no replay phases")
	}

	// The corpus holds one entry per suite graph (stream "PR"), all
	// verifiable.
	items, err := s2.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != len(base.Suite()) {
		t.Errorf("corpus holds %d entries after Fig2, want %d", len(items), len(base.Suite()))
	}
	for _, it := range items {
		if it.Err != nil {
			t.Errorf("corpus entry %s unreadable: %v", it.File, it.Err)
		}
		if it.Key.Schedule != "PR" || it.Key.Scale != base.Scale.String() {
			t.Errorf("corpus entry %s has unexpected key %+v", it.File, it.Key)
		}
	}
}

// TestCorpusRunSetupsMatchesInMemory covers the runSetups shape (per-cell
// streams with cell-private workloads, Fig11's pattern) the same way:
// in-memory, cold corpus, and warm corpus must agree, and the warm pass
// must not record.
func TestCorpusRunSetupsMatchesInMemory(t *testing.T) {
	g := graph.Uniform(1<<10, 4<<10, 42)
	mk := func() *kernels.Workload { return kernels.NewPageRank(g) }
	setups := []Setup{DRRIPSetup(), LRUSetup(), HawkeyeSetup()}
	c := TinyConfig()
	want := c.runSetups(g, "PR", mk, setups...)

	dir := t.TempDir()
	for pass, label := range []string{"cold", "warm"} {
		s, err := corpus.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		cc := c
		cc.Corpus = s
		var log phaseLog
		cc.PhaseProgress = log.hook()
		got := cc.runSetups(g, "PR", mk, setups...)
		for i := range want {
			if fingerprint(got[i]) != fingerprint(want[i]) {
				t.Errorf("%s corpus: setup %s diverges from in-memory", label, setups[i].Name)
			}
		}
		if pass == 1 && log.get("record") != 0 {
			t.Errorf("warm corpus ran %d record phase(s)", log.get("record"))
		}
		s.Close()
	}
}

// TestCorpusKeyNamesScale pins that corpus keys spell out the scale (the
// L1/L2 shape rides on it), so streams recorded at one scale can never be
// replayed into a sweep at another.
func TestCorpusKeyNamesScale(t *testing.T) {
	g := graph.Uniform(1<<10, 4<<10, 7)
	tiny := TinyConfig()
	big := DefaultConfig()
	kt := tiny.StreamKey(g, "PR")
	kd := big.StreamKey(g, "PR")
	if kt == kd {
		t.Fatalf("tiny and default configs share corpus key %+v", kt)
	}
	if !strings.Contains(kt.Scale, "tiny") {
		t.Errorf("tiny key scale %q does not name the scale", kt.Scale)
	}
}

// TestCorpusKeyCoversGraphContent pins the fig11 aliasing hazard: two
// graphs sharing a display name but not an edge list must get distinct
// corpus keys, or one experiment would replay the other's stream.
func TestCorpusKeyCoversGraphContent(t *testing.T) {
	c := TinyConfig()
	a := graph.Uniform(1<<12, 4<<12, c.Seed)
	b := graph.Uniform(1<<12, 8<<12, c.Seed).Renamed(a.Name)
	if a.Name != b.Name {
		t.Fatalf("test setup: names differ (%q vs %q)", a.Name, b.Name)
	}
	if c.StreamKey(a, "PR") == c.StreamKey(b, "PR") {
		t.Fatalf("same-name graphs with different edges share corpus key %+v", c.StreamKey(a, "PR"))
	}
}

// BenchmarkCorpusReplay compares the three stream paths on one PageRank
// stream: in-memory record, corpus record (chunked container encode +
// publish), in-memory replay, and out-of-core corpus replay (which also
// reports its peak resident trace bytes — the windowed-reader bound).
// POPT_CORPUS_BENCH_N selects the vertex count; BENCH_corpus.json records
// runs at 1<<23, the ScaleLarge vertex count, where the stream no longer
// fits comfortably in memory as one buffer.
func BenchmarkCorpusReplay(b *testing.B) {
	n := 1 << 12
	if s := os.Getenv("POPT_CORPUS_BENCH_N"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			b.Fatalf("POPT_CORPUS_BENCH_N: %v", err)
		}
		n = v
	}
	c := TinyConfig()
	switch {
	case n >= 1<<21:
		c.Scale = graph.ScaleLarge
	case n >= 1<<15:
		c.Scale = graph.ScaleDefault
	}
	g := graph.Uniform(n, 4*n, c.Seed)
	mk := func() *kernels.Workload { return kernels.NewPageRank(g) }

	b.Run("record-inmemory", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, tr := RecordLLC(c, mk(), DRRIPSetup())
			b.ReportMetric(float64(len(tr.Bytes())), "trace-bytes")
		}
	})

	store, err := corpus.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	cc := c
	cc.Corpus = store
	var ent *corpus.Entry
	b.Run("record-corpus", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// A distinct schedule name per iteration so every pass truly
			// records (Publish over a warm key would open, not encode).
			key := cc.StreamKey(g, fmt.Sprintf("PR#%d", i))
			_, e, err := RecordLLCToCorpus(cc, mk(), DRRIPSetup(), key)
			if err != nil {
				b.Fatal(err)
			}
			ent = e
			b.ReportMetric(float64(e.Size), "container-bytes")
		}
	})

	w := mk()
	_, tr := RecordLLC(c, w, DRRIPSetup())
	b.Run("replay-inmemory", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ReplayLLC(c, w, tr, DRRIPSetup())
		}
		b.ReportMetric(float64(len(tr.Bytes())), "resident-trace-bytes")
	})
	b.Run("replay-corpus", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ReplayLLCEntry(cc, w, ent, DRRIPSetup())
		}
		b.ReportMetric(float64(ent.Reader().MaxResidentBytes()), "resident-trace-bytes")
	})
}
