// Package popt_test holds the top-level benchmark harness: one testing.B
// target per paper table/figure (running the full experiment at tiny
// scale; use cmd/poptbench for the paper-scale runs), micro-benchmarks for
// the hot operations, and the ablation benches DESIGN.md calls out.
package popt_test

import (
	"fmt"
	"testing"

	"popt/internal/analysis"
	"popt/internal/bench"
	"popt/internal/cache"
	"popt/internal/core"
	"popt/internal/graph"
	"popt/internal/kernels"
	"popt/internal/mem"
	"popt/internal/multicore"
)

// benchExperiment runs one registered experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	c := bench.TinyConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep := e.Run(c)
		if len(rep.Rows) == 0 {
			b.Fatal("empty report")
		}
	}
}

// One bench per paper table and figure.
func BenchmarkFig2(b *testing.B)   { benchExperiment(b, "fig2") }
func BenchmarkFig4(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFig12a(b *testing.B) { benchExperiment(b, "fig12a") }
func BenchmarkFig12b(b *testing.B) { benchExperiment(b, "fig12b") }
func BenchmarkFig13(b *testing.B)  { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)  { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)  { benchExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B)  { benchExperiment(b, "fig16") }
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }

// BenchmarkBuildMatrix measures Rereference Matrix preprocessing (the
// Table IV quantity) per encoding.
func BenchmarkBuildMatrix(b *testing.B) {
	g := graph.Uniform(1<<15, 8<<15, 3)
	for _, k := range []core.Kind{core.InterOnly, core.InterIntra, core.SingleEpoch} {
		b.Run(k.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.BuildMatrix(&g.Out, g.NumVertices(), 16, k, 8)
			}
			bytesPerRun := core.BuildMatrix(&g.Out, g.NumVertices(), 16, k, 8).TotalBytes()
			b.ReportMetric(float64(bytesPerRun), "matrix-bytes")
		})
	}
}

// BenchmarkNextRef measures the Algorithm 2 lookup (the per-way work of
// the next-ref engine).
func BenchmarkNextRef(b *testing.B) {
	g := graph.Uniform(1<<15, 8<<15, 3)
	m := core.BuildMatrix(&g.Out, g.NumVertices(), 16, core.InterIntra, 8)
	n := graph.V(g.NumVertices())
	b.ReportAllocs()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += m.NextRef(i%m.NumLines, graph.V(i)%n)
	}
	_ = sink
}

// BenchmarkHierarchyAccess measures raw simulator throughput per policy.
func BenchmarkHierarchyAccess(b *testing.B) {
	for _, mk := range []struct {
		name string
		pol  func() cache.Policy
	}{
		{"LRU", func() cache.Policy { return cache.NewLRU() }},
		{"DRRIP", func() cache.Policy { return cache.NewDRRIP(1) }},
		{"SHiP-PC", func() cache.Policy { return cache.NewSHiPPC() }},
		{"Hawkeye", func() cache.Policy { return cache.NewHawkeye() }},
	} {
		b.Run(mk.name, func(b *testing.B) {
			h := cache.NewHierarchy(cache.Scaled(mk.pol))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				h.Access(mem.Access{Addr: uint64(i*577) % (1 << 24) * 64, PC: uint16(i % 8)})
			}
		})
	}
}

// BenchmarkPageRankSimulation measures end-to-end simulated kernel
// throughput (accesses per second) under DRRIP and P-OPT.
func BenchmarkPageRankSimulation(b *testing.B) {
	g := graph.Uniform(1<<14, 8<<14, 5)
	run := func(b *testing.B, s bench.Setup) {
		c := bench.TinyConfig()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w := kernels.NewPageRank(g)
			res := bench.RunWorkload(c, w, s)
			b.ReportMetric(float64(res.H.L1.Stats.Accesses), "accesses/op")
		}
	}
	b.Run("DRRIP", func(b *testing.B) { run(b, bench.DRRIPSetup()) })
	b.Run("P-OPT", func(b *testing.B) { run(b, bench.POPTSetup(core.InterIntra, 8, true)) })
	b.Run("T-OPT", func(b *testing.B) { run(b, bench.TOPTSetup()) })
}

// BenchmarkAblationTieBreak isolates the DRRIP tie-breaker (Section V-C):
// P-OPT with and without it, at the tie-heavy 4-bit quantization.
func BenchmarkAblationTieBreak(b *testing.B) {
	g := graph.Uniform(1<<14, 8<<14, 5)
	run := func(b *testing.B, tieFirst bool) {
		c := bench.TinyConfig()
		s := bench.Setup{Name: "P-OPT", Make: func(_ bench.Config, w *kernels.Workload, cfg cache.Config) (cache.Policy, core.VertexIndexed, int) {
			p := core.BuildPOPT(w.RefAdj, w.G.NumVertices(), core.InterIntra, 4, w.Irregular...)
			p.TieFirst = tieFirst
			return p, p, p.ReservedWays(cfg.LLCSize / (cfg.LLCWays * 64))
		}}
		for i := 0; i < b.N; i++ {
			res := bench.RunWorkload(c, kernels.NewPageRank(g), s)
			b.ReportMetric(float64(res.H.LLC.Stats.Misses), "LLCmisses")
			b.ReportMetric(100*res.TieRate, "tie%")
		}
	}
	b.Run("drrip-tiebreak", func(b *testing.B) { run(b, false) })
	b.Run("first-candidate", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationReservedWays isolates P-OPT's metadata capacity cost:
// identical policy with and without charging reserved ways.
func BenchmarkAblationReservedWays(b *testing.B) {
	g := graph.Uniform(1<<14, 8<<14, 5)
	for _, charge := range []bool{true, false} {
		name := "charged"
		if !charge {
			name = "free-metadata"
		}
		b.Run(name, func(b *testing.B) {
			c := bench.TinyConfig()
			for i := 0; i < b.N; i++ {
				res := bench.RunWorkload(c, kernels.NewPageRank(g), bench.POPTSetup(core.InterIntra, 8, charge))
				b.ReportMetric(float64(res.H.LLC.Stats.Misses), "LLCmisses")
			}
		})
	}
}

// BenchmarkGenerators measures suite generation cost per graph kind.
func BenchmarkGenerators(b *testing.B) {
	gens := []struct {
		name string
		gen  func(i int) *graph.Graph
	}{
		{"Kron", func(i int) *graph.Graph { return graph.Kron(13, 8, int64(i)) }},
		{"Uniform", func(i int) *graph.Graph { return graph.Uniform(1<<13, 8<<13, int64(i)) }},
		{"PowerLaw", func(i int) *graph.Graph { return graph.PowerLaw(1<<13, 8, 2.0, int64(i)) }},
		{"Community", func(i int) *graph.Graph { return graph.Community(1<<13, 8, 256, 0.85, int64(i)) }},
		{"Mesh", func(i int) *graph.Graph { return graph.Mesh(90, 91) }},
	}
	for _, ge := range gens {
		b.Run(ge.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if g := ge.gen(i); g.NumVertices() == 0 {
					b.Fatal("empty graph")
				}
			}
		})
	}
}

// BenchmarkDBGReorder measures the GRASP prerequisite preprocessing.
func BenchmarkDBGReorder(b *testing.B) {
	g := graph.Kron(13, 8, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := graph.DBG(g)
		if len(p) != g.NumVertices() {
			b.Fatal("bad permutation")
		}
	}
}

// Example of using the harness programmatically (compiles as a test).
func ExampleByID() {
	e, ok := bench.ByID("table2")
	fmt.Println(e.ID, ok)
	// Output: table2 true
}

// BenchmarkMulticore measures the 8-core parallel simulation per policy.
func BenchmarkMulticore(b *testing.B) {
	g := graph.Uniform(1<<14, 4<<14, 5)
	cfg := multicore.Default8Core()
	epochSize := (g.NumVertices() + 255) / 256
	b.Run("DRRIP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := multicore.NewMachine(cfg, cache.NewDRRIP(1), 0)
			res := multicore.ParallelPageRank(m, g, nil, 1, epochSize, false)
			b.ReportMetric(float64(res.Stats.LLCMisses), "LLCmisses")
		}
	})
	b.Run("P-OPT", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sp := mem.NewSpace()
			sp.AllocBytes("rank", g.NumVertices(), 4, false)
			contrib := sp.AllocBytes("contrib", g.NumVertices(), 4, true)
			p := core.BuildPOPT(&g.Out, g.NumVertices(), core.InterIntra, 8, contrib)
			sets := cfg.LLCSize / (cfg.LLCWays * mem.LineSize)
			m := multicore.NewMachine(cfg, p, p.ReservedWays(sets))
			res := multicore.ParallelPageRank(m, g, p, 1, epochSize, true)
			b.ReportMetric(float64(res.Stats.LLCMisses), "LLCmisses")
		}
	})
}

// BenchmarkExtensionPrefetch measures the transpose-guided prefetcher
// (future-work extension) against plain DRRIP.
func BenchmarkExtensionPrefetch(b *testing.B) {
	// The irregular working set must exceed the scaled LLC for prefetching
	// to have demand misses to cover.
	g := graph.Uniform(1<<16, 8<<16, 7)
	run := func(b *testing.B, depth int) {
		for i := 0; i < b.N; i++ {
			w := kernels.NewPageRank(g)
			var pol cache.Policy = cache.NewDRRIP(1)
			cfg := cache.Scaled(func() cache.Policy { return pol })
			h := cache.NewHierarchy(cfg)
			var hook core.VertexIndexed
			if depth > 0 {
				hook = core.NewTransposePrefetcher(h, &w.G.In, w.Irregular[0], depth)
			}
			w.Run(kernels.NewRunner(h, hook))
			b.ReportMetric(float64(h.LLC.Stats.Misses), "LLCmisses")
			b.ReportMetric(float64(h.DRAMReads), "DRAMreads")
		}
	}
	b.Run("no-prefetch", func(b *testing.B) { run(b, 0) })
	b.Run("depth-2", func(b *testing.B) { run(b, 2) })
	b.Run("depth-8", func(b *testing.B) { run(b, 8) })
}

// BenchmarkStackDistances measures the locality-analysis substrate.
func BenchmarkStackDistances(b *testing.B) {
	g := graph.Uniform(1<<13, 8<<13, 9)
	trace := analysis.Capture(kernels.NewPageRank(g), true)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := analysis.StackDistances(trace)
		if len(d) != len(trace) {
			b.Fatal("length mismatch")
		}
	}
	b.ReportMetric(float64(len(trace)), "trace-len")
}

// BenchmarkBeladyMIN measures the offline-optimal gold standard.
func BenchmarkBeladyMIN(b *testing.B) {
	g := graph.Uniform(1<<12, 8<<12, 11)
	trace := analysis.Capture(kernels.NewPageRank(g), true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := cache.NewLevel("MIN", 64*mem.LineSize, 16, cache.NewBeladyMIN(trace))
		stats := cache.SimulateTrace(l, trace)
		b.ReportMetric(float64(stats.Misses), "misses")
	}
}
