package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// regressedHot is hot.go with one regression per axis the gate tracks:
// Add loses inlining and gains a heap escape, Sum gains a bounds check.
const regressedHot = `package hotmod

var sink interface{}

// Add now escapes an argument and refuses to inline.
//
//popt:hot
//go:noinline
func Add(a, b int) int {
	sink = a
	return a + b
}

// Sum indexes with a bound the compiler cannot tie to len(xs).
//
//popt:hot
func Sum(xs []int) int {
	s := 0
	for i := 0; i < 10; i++ {
		s += xs[i]
	}
	return s
}
`

// copyModule clones a testdata module into a fresh temp dir so tests can
// mutate sources without touching the checked-in fixtures.
func copyModule(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// runCmd invokes the command body and returns (exit code, stdout, stderr).
func runCmd(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestListExitsClean(t *testing.T) {
	code, out, _ := runCmd(t, "-list")
	if code != 0 {
		t.Fatalf("-list: exit %d, want 0", code)
	}
	for _, name := range []string{"determinism", "policycontract", "borrowflow", "statsdiscipline", "sharefreeze", "lockguard", "loopcapture", "codecpair", "formatlock", "opexhaust"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out)
		}
	}
}

func TestUpdateWithoutGateIsUsageError(t *testing.T) {
	code, _, errOut := runCmd(t, "-update")
	if code != 2 {
		t.Fatalf("-update alone: exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "-update only applies with -hotpath or -wirecheck") {
		t.Errorf("stderr missing usage hint: %s", errOut)
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	code, _, errOut := runCmd(t, "-run", "nope", "./...")
	if code != 2 {
		t.Fatalf("-run nope: exit %d, want 2", code)
	}
	if !strings.Contains(errOut, `unknown analyzer "nope"`) {
		t.Errorf("stderr missing unknown-analyzer message: %s", errOut)
	}
}

func TestLoadErrorExitsTwo(t *testing.T) {
	// An empty directory has no go.mod, so the loader must fail.
	code, _, errOut := runCmd(t, "-C", t.TempDir(), "./...")
	if code != 2 {
		t.Fatalf("load error: exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "poptlint:") {
		t.Errorf("stderr missing error: %s", errOut)
	}
}

func TestFindingsExitOneWithFormattedDiagnostics(t *testing.T) {
	code, out, errOut := runCmd(t, "-C", filepath.Join("testdata", "lintmod"), "./...")
	if code != 1 {
		t.Fatalf("lintmod: exit %d, want 1 (stdout %q, stderr %q)", code, out, errOut)
	}
	// Diagnostics are file:line:col: message [analyzer].
	if !strings.Contains(out, "policy.go:") || !strings.Contains(out, "[borrowflow]") {
		t.Errorf("stdout missing formatted borrowflow finding:\n%s", out)
	}
	if !strings.Contains(out, "leaked") {
		t.Errorf("stdout does not name the leaking variable:\n%s", out)
	}
	if !strings.Contains(errOut, "finding(s)") {
		t.Errorf("stderr missing findings summary: %s", errOut)
	}
}

func TestRunSelectionSkipsAnalyzer(t *testing.T) {
	// lintmod's package path is outside lint.SimPackages, so the
	// determinism analyzer alone reports nothing there.
	code, out, errOut := runCmd(t, "-C", filepath.Join("testdata", "lintmod"), "-run", "determinism", "./...")
	if code != 0 {
		t.Fatalf("-run determinism: exit %d, want 0 (stdout %q, stderr %q)", code, out, errOut)
	}
}

func TestShareFreezeFamilyFindings(t *testing.T) {
	// freezemod seeds one violation per publish-safety analyzer; the
	// family flag must surface all three and exit 1.
	code, out, errOut := runCmd(t, "-C", filepath.Join("testdata", "freezemod"), "-sharefreeze", "./...")
	if code != 1 {
		t.Fatalf("-sharefreeze on freezemod: exit %d, want 1 (stdout %q, stderr %q)", code, out, errOut)
	}
	for _, want := range []string{
		"mutating frozen Table after publication",
		"[sharefreeze]",
		"accesses c.n without holding mu",
		"[lockguard]",
		"captures loop variable i",
		"[loopcapture]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(errOut, "finding(s)") {
		t.Errorf("stderr missing findings summary: %s", errOut)
	}
}

func TestShareFreezeExcludesOtherAnalyzers(t *testing.T) {
	// The family flag must not drag the rest of the suite along: lintmod's
	// borrowflow violation is invisible to -sharefreeze.
	code, out, errOut := runCmd(t, "-C", filepath.Join("testdata", "lintmod"), "-sharefreeze", "./...")
	if code != 0 {
		t.Fatalf("-sharefreeze on lintmod: exit %d, want 0 (stdout %q, stderr %q)", code, out, errOut)
	}
}

func TestShareFreezeAndRunAreMutuallyExclusive(t *testing.T) {
	code, _, errOut := runCmd(t, "-sharefreeze", "-run", "lockguard", "./...")
	if code != 2 {
		t.Fatalf("-sharefreeze -run: exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "mutually exclusive") {
		t.Errorf("stderr missing mutual-exclusion message: %s", errOut)
	}
}

func TestRunSingleFreezeAnalyzer(t *testing.T) {
	// -run sharefreeze alone reports the freeze violation but not the
	// guard or capture ones.
	code, out, errOut := runCmd(t, "-C", filepath.Join("testdata", "freezemod"), "-run", "sharefreeze", "./...")
	if code != 1 {
		t.Fatalf("-run sharefreeze: exit %d, want 1 (stdout %q, stderr %q)", code, out, errOut)
	}
	if !strings.Contains(out, "[sharefreeze]") {
		t.Errorf("stdout missing sharefreeze finding:\n%s", out)
	}
	for _, reject := range []string{"[lockguard]", "[loopcapture]"} {
		if strings.Contains(out, reject) {
			t.Errorf("stdout has %s finding under -run sharefreeze:\n%s", reject, out)
		}
	}
}

func TestWirecheckFamilyFindings(t *testing.T) {
	// wiremod seeds one violation per wire-format analyzer; the family
	// flag must surface all three and exit 1.
	code, out, errOut := runCmd(t, "-C", filepath.Join("testdata", "wiremod"), "-wirecheck", "-wirebaseline", "wireformat.baseline", "./...")
	if code != 1 {
		t.Fatalf("-wirecheck on wiremod: exit %d, want 1 (stdout %q, stderr %q)", code, out, errOut)
	}
	for _, want := range []string{
		`asymmetric codec for opcode aopB of stream "pair"`,
		"[codecpair]",
		`wire fingerprint of stream "drift" changed but FormatVersions["drift"] is still 1`,
		"[formatlock]",
		"opcode dispatch in replaySilent does not handle bopC",
		"default clause of the opcode dispatch in replaySilent is silent",
		"[opexhaust]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(errOut, "finding(s)") {
		t.Errorf("stderr missing findings summary: %s", errOut)
	}
}

func TestWirecheckExcludesOtherAnalyzers(t *testing.T) {
	// lintmod's borrowflow violation is invisible to -wirecheck, and a
	// module with no //popt:codec annotations is vacuously clean.
	code, out, errOut := runCmd(t, "-C", filepath.Join("testdata", "lintmod"), "-wirecheck", "./...")
	if code != 0 {
		t.Fatalf("-wirecheck on lintmod: exit %d, want 0 (stdout %q, stderr %q)", code, out, errOut)
	}
}

func TestWirecheckFlagExclusions(t *testing.T) {
	for _, args := range [][]string{
		{"-wirecheck", "-run", "codecpair", "./..."},
		{"-wirecheck", "-sharefreeze", "./..."},
		{"-wirecheck", "-hotpath"},
	} {
		code, _, errOut := runCmd(t, args...)
		if code != 2 {
			t.Errorf("%v: exit %d, want 2", args, code)
		}
		if !strings.Contains(errOut, "mutually exclusive") {
			t.Errorf("%v: stderr missing mutual-exclusion message: %s", args, errOut)
		}
	}
}

func TestWirecheckUpdateRefusesDriftWithoutBump(t *testing.T) {
	// Drift at an unchanged version must not be silently baselined: the
	// "drift" finding survives -update and the baseline file stays put.
	dir := copyModule(t, filepath.Join("testdata", "wiremod"))
	before, err := os.ReadFile(filepath.Join(dir, "wireformat.baseline"))
	if err != nil {
		t.Fatal(err)
	}
	code, out, errOut := runCmd(t, "-C", dir, "-wirecheck", "-update", "-wirebaseline", "wireformat.baseline", "./...")
	if code != 1 {
		t.Fatalf("-wirecheck -update on drifted wiremod: exit %d, want 1 (stdout %q, stderr %q)", code, out, errOut)
	}
	if !strings.Contains(out, `wire fingerprint of stream "drift" changed`) {
		t.Errorf("stdout missing surviving drift finding:\n%s", out)
	}
	after, err := os.ReadFile(filepath.Join(dir, "wireformat.baseline"))
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Errorf("-update rewrote the baseline despite refusing the drift:\n%s", after)
	}
}

func TestWirecheckUpdateAfterVersionBump(t *testing.T) {
	// Bumping FormatVersions["drift"] makes the drift legitimate: -update
	// rewrites that stream's baseline entry, the drift finding disappears,
	// and a second -update is byte-identical.
	dir := copyModule(t, filepath.Join("testdata", "wiremod"))
	src, err := os.ReadFile(filepath.Join(dir, "wire.go"))
	if err != nil {
		t.Fatal(err)
	}
	bumped := strings.Replace(string(src), `"drift":  1,`, `"drift":  2,`, 1)
	if bumped == string(src) {
		t.Fatal("failed to bump the drift version in the fixture")
	}
	if err := os.WriteFile(filepath.Join(dir, "wire.go"), []byte(bumped), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := runCmd(t, "-C", dir, "-wirecheck", "-update", "-wirebaseline", "wireformat.baseline", "./...")
	if code != 1 { // codecpair and opexhaust seeds remain
		t.Fatalf("-update after bump: exit %d, want 1 (stdout %q, stderr %q)", code, out, errOut)
	}
	if strings.Contains(out, "[formatlock]") {
		t.Errorf("formatlock finding survived a legitimate bump + -update:\n%s", out)
	}
	first, err := os.ReadFile(filepath.Join(dir, "wireformat.baseline"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(first), "stream drift version 2") || !strings.Contains(string(first), "op 1 copA varint") {
		t.Errorf("baseline not rewritten for the bumped stream:\n%s", first)
	}
	if code, _, errOut = runCmd(t, "-C", dir, "-wirecheck", "-update", "-wirebaseline", "wireformat.baseline", "./..."); code != 1 {
		t.Fatalf("second -update: exit %d, want 1 (stderr %q)", code, errOut)
	}
	second, err := os.ReadFile(filepath.Join(dir, "wireformat.baseline"))
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Errorf("-update is not idempotent:\n%s\nvs\n%s", first, second)
	}
	// The now-locked stream passes check mode too.
	code, out, _ = runCmd(t, "-C", dir, "-wirecheck", "-wirebaseline", "wireformat.baseline", "./...")
	if code != 1 || strings.Contains(out, "[formatlock]") {
		t.Fatalf("check after bump+update: exit %d with formatlock findings?\n%s", code, out)
	}
}

func TestHotpathGate(t *testing.T) {
	dir := copyModule(t, filepath.Join("testdata", "hotmod"))

	// No baseline yet: the gate must refuse with a hint, not pass.
	code, _, errOut := runCmd(t, "-C", dir, "-hotpath", "-baseline", "hot.baseline")
	if code != 2 {
		t.Fatalf("missing baseline: exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "-update") {
		t.Errorf("stderr missing -update hint: %s", errOut)
	}

	// -update creates the baseline.
	code, out, errOut := runCmd(t, "-C", dir, "-hotpath", "-update", "-baseline", "hot.baseline")
	if code != 0 {
		t.Fatalf("-update: exit %d, want 0 (stderr %q)", code, errOut)
	}
	if !strings.Contains(out, "baseline updated") || !strings.Contains(out, "2 hot function(s)") {
		t.Errorf("unexpected -update output: %s", out)
	}
	if _, err := os.Stat(filepath.Join(dir, "hot.baseline")); err != nil {
		t.Fatalf("baseline not written: %v", err)
	}

	// A clean tree matches its own baseline.
	code, out, errOut = runCmd(t, "-C", dir, "-hotpath", "-baseline", "hot.baseline")
	if code != 0 {
		t.Fatalf("clean diff: exit %d, want 0 (stdout %q, stderr %q)", code, out, errOut)
	}
	if !strings.Contains(out, "ok") {
		t.Errorf("clean run output missing ok: %s", out)
	}

	// Regress every axis and watch the gate fail.
	if err := os.WriteFile(filepath.Join(dir, "hot.go"), []byte(regressedHot), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errOut = runCmd(t, "-C", dir, "-hotpath", "-baseline", "hot.baseline")
	if code != 1 {
		t.Fatalf("regressed tree: exit %d, want 1 (stdout %q, stderr %q)", code, out, errOut)
	}
	for _, want := range []string{
		"regression: hotmod.Add: lost inlining",
		"regression: hotmod.Add: new heap escape",
		"regression: hotmod.Sum: bounds checks 0 -> 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(errOut, "regression(s)") {
		t.Errorf("stderr missing regression summary: %s", errOut)
	}

	// A deliberate -update accepts the new facts; the gate passes again.
	if code, _, errOut = runCmd(t, "-C", dir, "-hotpath", "-update", "-baseline", "hot.baseline"); code != 0 {
		t.Fatalf("re-update: exit %d, want 0 (stderr %q)", code, errOut)
	}
	if code, out, errOut = runCmd(t, "-C", dir, "-hotpath", "-baseline", "hot.baseline"); code != 0 {
		t.Fatalf("post-update diff: exit %d, want 0 (stdout %q, stderr %q)", code, out, errOut)
	}
}

func TestHotpathDriftOnRemovedAnnotation(t *testing.T) {
	dir := copyModule(t, filepath.Join("testdata", "hotmod"))
	if code, _, errOut := runCmd(t, "-C", dir, "-hotpath", "-update", "-baseline", "hot.baseline"); code != 0 {
		t.Fatalf("-update: exit %d, want 0 (stderr %q)", code, errOut)
	}

	// Dropping one //popt:hot annotation is drift, not a regression, but
	// still fails the gate until -update records it.
	src, err := os.ReadFile(filepath.Join(dir, "hot.go"))
	if err != nil {
		t.Fatal(err)
	}
	stripped := strings.Replace(string(src), "//popt:hot\nfunc Add", "func Add", 1)
	if stripped == string(src) {
		t.Fatal("failed to strip the Add annotation from the fixture")
	}
	if err := os.WriteFile(filepath.Join(dir, "hot.go"), []byte(stripped), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ := runCmd(t, "-C", dir, "-hotpath", "-baseline", "hot.baseline")
	if code != 1 {
		t.Fatalf("drift: exit %d, want 1 (stdout %q)", code, out)
	}
	if !strings.Contains(out, "baseline-drift: hotmod.Add: in baseline but no longer annotated") {
		t.Errorf("diff output missing drift line:\n%s", out)
	}
}

func TestHotpathNoHotFunctionsIsError(t *testing.T) {
	// lintmod has no //popt:hot annotations: a silently green gate over
	// zero functions would be worthless, so the command refuses.
	code, _, errOut := runCmd(t, "-C", filepath.Join("testdata", "lintmod"), "-hotpath", "-baseline", "hot.baseline")
	if code != 2 {
		t.Fatalf("no hot functions: exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "no //popt:hot functions") {
		t.Errorf("stderr missing explanation: %s", errOut)
	}
}

func TestHotpathBuildErrorExitsTwo(t *testing.T) {
	dir := copyModule(t, filepath.Join("testdata", "hotmod"))
	if err := os.WriteFile(filepath.Join(dir, "broken.go"), []byte("package hotmod\n\nfunc broken() { return 1 }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := runCmd(t, "-C", dir, "-hotpath", "-baseline", "hot.baseline")
	if code != 2 {
		t.Fatalf("broken module: exit %d, want 2 (stderr %q)", code, errOut)
	}
}
