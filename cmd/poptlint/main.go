// Command poptlint runs the repository's custom static-analysis suite
// (internal/lint) over the given packages: simulator determinism, the
// cache.Policy contract (syntactic policycontract plus the borrowflow
// dataflow analyzer), cache.Stats write discipline, the publish-safety
// family for shared sweep artifacts (sharefreeze, lockguard,
// loopcapture), and the wire-format family for the trace codecs
// (codecpair, formatlock, opexhaust). It exits nonzero when any finding
// survives the //lint directives, so it can gate CI the same way go vet
// does.
//
// With -wirecheck it runs only the wire-format family: codecpair proves
// every //popt:codec enc/dec pair encodes and decodes the same per-opcode
// payload layout, formatlock diffs each stream's canonical fingerprint
// against the checked-in baseline (drift without a FormatVersions bump
// fails; -update regenerates the baseline after a deliberate bump), and
// opexhaust requires opcode dispatch switches to cover every declared
// opcode with a loud default.
//
// With -hotpath it instead runs the hot-path performance gate
// (internal/lint/hotpath): every //popt:hot function is compiled with
// -gcflags='-m -d=ssa/check_bce/debug=1' and the escape, bounds-check,
// and inlining facts are diffed against the checked-in baseline. Any new
// heap escape, lost inline, or extra bounds check inside a hot function
// fails the gate; -update regenerates the baseline deliberately.
//
// Usage:
//
//	go run ./cmd/poptlint ./...
//	go run ./cmd/poptlint -list
//	go run ./cmd/poptlint -run determinism ./internal/cache/...
//	go run ./cmd/poptlint -sharefreeze ./...
//	go run ./cmd/poptlint -wirecheck ./...
//	go run ./cmd/poptlint -wirecheck -update ./...
//	go run ./cmd/poptlint -hotpath
//	go run ./cmd/poptlint -hotpath -update
//
// Exit codes: 0 clean, 1 findings or baseline divergence, 2 usage or
// load/build errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"popt/internal/lint"
	"popt/internal/lint/hotpath"
)

// DefaultBaseline is the checked-in hot-path baseline, relative to the
// module root.
const DefaultBaseline = "internal/lint/testdata/hotpath.baseline"

// DefaultWireBaseline is the checked-in wire-format fingerprint baseline,
// relative to the module root.
const DefaultWireBaseline = "internal/lint/testdata/wireformat.baseline"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable command body; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("poptlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	runSel := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	freezeOnly := fs.Bool("sharefreeze", false, "run only the publish-safety family: sharefreeze, lockguard, loopcapture")
	wireOnly := fs.Bool("wirecheck", false, "run only the wire-format family: codecpair, formatlock, opexhaust")
	dir := fs.String("C", "", "run as if started in this directory (module root)")
	hot := fs.Bool("hotpath", false, "run the hot-path performance gate instead of the analyzers")
	update := fs.Bool("update", false, "with -hotpath or -wirecheck, regenerate the baseline instead of diffing")
	baseline := fs.String("baseline", DefaultBaseline, "with -hotpath, baseline file (relative to -C dir)")
	wireBaseline := fs.String("wirebaseline", DefaultWireBaseline, "with -wirecheck, wire-format baseline file (relative to -C dir)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	wireBaselinePath := *wireBaseline
	if !filepath.IsAbs(wireBaselinePath) && *dir != "" {
		wireBaselinePath = filepath.Join(*dir, wireBaselinePath)
	}
	all := []*lint.Analyzer{
		lint.NewDeterminism(),
		lint.PolicyContract,
		lint.BorrowFlow,
		lint.StatsDiscipline,
		lint.NewShareFreeze(),
		lint.LockGuard,
		lint.NewLoopCapture(),
		lint.CodecPair,
		lint.NewFormatLock(wireBaselinePath, *update),
		lint.OpExhaust,
	}
	if *list {
		for _, a := range all {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	if *hot && *wireOnly {
		fmt.Fprintln(stderr, "poptlint: -hotpath and -wirecheck are mutually exclusive")
		return 2
	}
	if *hot {
		return runHotpath(*dir, *baseline, *update, fs.Args(), stdout, stderr)
	}
	if *update && !*wireOnly {
		fmt.Fprintln(stderr, "poptlint: -update only applies with -hotpath or -wirecheck")
		return 2
	}

	if *freezeOnly && *runSel != "" {
		fmt.Fprintln(stderr, "poptlint: -sharefreeze and -run are mutually exclusive")
		return 2
	}
	if *wireOnly && (*runSel != "" || *freezeOnly) {
		fmt.Fprintln(stderr, "poptlint: -wirecheck is mutually exclusive with -run and -sharefreeze")
		return 2
	}
	analyzers := all
	if *freezeOnly {
		analyzers = nil
		for _, a := range all {
			switch a.Name {
			case "sharefreeze", "lockguard", "loopcapture":
				analyzers = append(analyzers, a)
			}
		}
	}
	if *wireOnly {
		analyzers = nil
		for _, a := range all {
			switch a.Name {
			case "codecpair", "formatlock", "opexhaust":
				analyzers = append(analyzers, a)
			}
		}
	}
	if *runSel != "" {
		analyzers = nil
		for _, name := range strings.Split(*runSel, ",") {
			name = strings.TrimSpace(name)
			found := false
			for _, a := range all {
				if a.Name == name {
					analyzers = append(analyzers, a)
					found = true
				}
			}
			if !found {
				fmt.Fprintf(stderr, "poptlint: unknown analyzer %q (try -list)\n", name)
				return 2
			}
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := lint.NewLoader(*dir)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "poptlint: %v\n", err)
		return 2
	}
	findings, err := lint.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "poptlint: %v\n", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "poptlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// runHotpath runs the compiler-diagnostics gate: collect facts for every
// //popt:hot function and diff them against (or, with update, write) the
// baseline file.
func runHotpath(dir, baselinePath string, update bool, patterns []string, stdout, stderr io.Writer) int {
	report, err := hotpath.Collect(hotpath.Options{Dir: dir, Patterns: patterns})
	if err != nil {
		fmt.Fprintf(stderr, "poptlint: -hotpath: %v\n", err)
		return 2
	}
	if len(report.Functions) == 0 {
		fmt.Fprintln(stderr, "poptlint: -hotpath: no //popt:hot functions found; annotate hot functions or check the package patterns")
		return 2
	}
	if !filepath.IsAbs(baselinePath) && dir != "" {
		baselinePath = filepath.Join(dir, baselinePath)
	}
	if update {
		if err := hotpath.WriteBaselineFile(baselinePath, report.Facts); err != nil {
			fmt.Fprintf(stderr, "poptlint: -hotpath: writing baseline: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "poptlint: -hotpath: baseline updated: %d hot function(s), %d fact(s) -> %s\n",
			len(report.Functions), len(report.Facts), baselinePath)
		return 0
	}
	base, err := hotpath.ReadBaselineFile(baselinePath)
	if err != nil {
		fmt.Fprintf(stderr, "poptlint: -hotpath: reading baseline %s: %v\n(run `poptlint -hotpath -update` to create it)\n", baselinePath, err)
		return 2
	}
	diff := hotpath.Diff(base, report.Facts)
	if len(diff) == 0 {
		fmt.Fprintf(stdout, "poptlint: -hotpath: ok (%d hot function(s), %d fact(s) match baseline)\n",
			len(report.Functions), len(report.Facts))
		return 0
	}
	regressions := 0
	for _, d := range diff {
		if d.Regression {
			regressions++
		}
		fmt.Fprintln(stdout, d)
	}
	fmt.Fprintf(stderr, "poptlint: -hotpath: %d divergence(s) from baseline (%d regression(s)); fix the hot path or run -update deliberately\n",
		len(diff), regressions)
	return 1
}
