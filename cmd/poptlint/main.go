// Command poptlint runs the repository's custom static-analysis suite
// (internal/lint) over the given packages: simulator determinism, the
// cache.Policy contract, and cache.Stats write discipline. It exits
// nonzero when any finding survives the //lint directives, so it can gate
// CI the same way go vet does.
//
// Usage:
//
//	go run ./cmd/poptlint ./...
//	go run ./cmd/poptlint -list
//	go run ./cmd/poptlint -run determinism ./internal/cache/...
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"popt/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	all := []*lint.Analyzer{
		lint.NewDeterminism(),
		lint.PolicyContract,
		lint.StatsDiscipline,
	}
	if *list {
		for _, a := range all {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *run != "" {
		analyzers = nil
		for _, name := range strings.Split(*run, ",") {
			name = strings.TrimSpace(name)
			found := false
			for _, a := range all {
				if a.Name == name {
					analyzers = append(analyzers, a)
					found = true
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "poptlint: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := lint.NewLoader("")
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "poptlint: %v\n", err)
		os.Exit(2)
	}
	findings, err := lint.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "poptlint: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "poptlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
