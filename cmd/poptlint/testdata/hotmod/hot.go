// Package hotmod is a miniature module used by the poptlint command
// tests. Its hot functions are deliberately clean — inlinable, escape
// free, zero bounds checks — so the tests can regress them one axis at a
// time and watch the gate fail.
package hotmod

// Add is trivially inlinable.
//
//popt:hot
func Add(a, b int) int { return a + b }

// Sum walks the slice with a range loop, which the compiler proves in
// bounds.
//
//popt:hot
func Sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}
