// Package wiremod seeds one violation per wirecheck analyzer for the
// -wirecheck exit-code tests: stream "pair" has an asymmetric codec arm
// (codecpair), stream "silent" has a dispatch switch whose default clause
// swallows corrupt opcodes (opexhaust), and stream "drift" changed its
// payload layout without bumping FormatVersions (formatlock, against the
// checked-in wireformat.baseline next to this file).
package wiremod

var FormatVersions = map[string]byte{
	"pair":   1,
	"silent": 1,
	"drift":  1,
}

const (
	aopA byte = iota + 1
	aopB
)

const (
	bopA byte = iota + 1
	bopB
	bopC // declared but never dispatched: the uncovered-opcode seed
)

const (
	copA byte = iota + 1
)

type enc struct{ buf []byte }

func appendUvarint(buf []byte, x uint64) []byte {
	for x >= 0x80 {
		buf = append(buf, byte(x)|0x80)
		x >>= 7
	}
	return append(buf, byte(x))
}

func appendVarint(buf []byte, x int64) []byte {
	return appendUvarint(buf, uint64(x)<<1^uint64(x>>63))
}

func uvarint(data []byte, i int) (uint64, int) {
	var x uint64
	var shift uint
	for i < len(data) {
		b := data[i]
		i++
		x |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return x, i
		}
		shift += 7
	}
	panic("wiremod: truncated varint")
}

func varint(data []byte, i int) (int64, int) {
	ux, n := uvarint(data, i)
	return int64(ux>>1) ^ -int64(ux&1), n
}

// PairA and PairB encode stream "pair"; the decoder reads aopB's payload
// as one varint where PairB wrote two.
//
//popt:codec pair enc
func (e *enc) PairA(x uint64) {
	e.buf = append(e.buf, aopA)
	e.buf = appendUvarint(e.buf, x)
}

//popt:codec pair enc
func (e *enc) PairB(a, b int64) {
	e.buf = append(e.buf, aopB)
	e.buf = appendVarint(e.buf, a)
	e.buf = appendVarint(e.buf, b)
}

//popt:codec pair dec
func replayPair(data []byte) {
	i := 0
	for i < len(data) {
		op := data[i]
		i++
		switch op {
		case aopA:
			_, i = uvarint(data, i)
		case aopB:
			_, i = varint(data, i)
		default:
			panic("wiremod: bad pair opcode")
		}
	}
}

// Silent's codec arms match, but the dispatch misses the declared bopC
// and its default swallows unknown opcodes instead of failing loudly.
//
//popt:codec silent enc
func (e *enc) Silent(x uint64, d int64) {
	e.buf = append(e.buf, bopA)
	e.buf = appendUvarint(e.buf, x)
	e.buf = append(e.buf, bopB)
	e.buf = appendVarint(e.buf, d)
}

//popt:codec silent dec
func replaySilent(data []byte) {
	i := 0
	for i < len(data) {
		op := data[i]
		i++
		switch op {
		case bopA:
			_, i = uvarint(data, i)
		case bopB:
			_, i = varint(data, i)
		default:
			_ = op
		}
	}
}

// Drift's codec arms match each other, but the payload changed from the
// uvarint the baseline records to a varint while FormatVersions["drift"]
// stayed at 1.
//
//popt:codec drift enc
func (e *enc) Drift(d int64) {
	e.buf = append(e.buf, copA)
	e.buf = appendVarint(e.buf, d)
}

//popt:codec drift dec
func replayDrift(data []byte) {
	i := 0
	for i < len(data) {
		op := data[i]
		i++
		switch op {
		case copA:
			_, i = varint(data, i)
		default:
			panic("wiremod: bad drift opcode")
		}
	}
}
