// Package lintmod is a miniature module with a deliberate borrow
// violation in a cache.Policy-shaped Victim, used by the poptlint command
// tests to exercise the findings exit code and diagnostic formatting.
// It contains no //popt:hot functions, which the -hotpath tests rely on.
package lintmod

type Line struct {
	Valid bool
	Dirty bool
	Addr  uint64
}

type Geometry struct{ Sets, Ways, ReservedWays int }

type Access struct{ Addr uint64 }

var leaked []Line

type Leaky struct{ g Geometry }

func (p *Leaky) Name() string         { return "leaky" }
func (p *Leaky) Bind(g Geometry)      { p.g = g }
func (p *Leaky) OnEvict(set, way int) {}
func (p *Leaky) OnHit(set, way int)   {}
func (p *Leaky) OnFill(set, way int)  {}

func (p *Leaky) Victim(set int, lines []Line, acc Access) int {
	leaked = lines
	return p.g.ReservedWays
}
