// Package bench is a miniature sweep-shaped module with one deliberate
// violation per publish-safety analyzer, used by the poptlint command
// tests to exercise the -sharefreeze family selection and exit code. The
// module is named popt and the package lives under internal/bench so the
// scoped analyzers (loopcapture, determinism) treat it as simulator code.
package bench

import "sync"

// Table mirrors the frozen artifact shape.
//
//popt:frozen
type Table struct {
	entries []uint16
}

// BuildTable is the legal constructor.
func BuildTable(n int) *Table {
	t := &Table{entries: make([]uint16, n)}
	for i := range t.entries {
		t.entries[i] = uint16(i)
	}
	return t
}

// Corrupt mutates a published table: sharefreeze must flag it.
func Corrupt() int {
	t := BuildTable(8)
	t.entries[0] = 1
	return len(t.entries)
}

type cache struct {
	mu sync.Mutex
	n  int //popt:guardedby mu
}

// Skew reads n without holding the lock: lockguard must flag it.
func (c *cache) Skew() int {
	return c.n
}

// Fan launches workers that capture the loop variable by reference:
// loopcapture must flag it.
func Fan(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			BuildTable(i)
		}()
	}
	wg.Wait()
}
