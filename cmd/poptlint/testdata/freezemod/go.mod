module popt

go 1.22
